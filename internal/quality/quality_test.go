package quality

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical signals: %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("rmse = %v", got)
	}
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty inputs")
	}
}

func TestRMSEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic (harness bug)")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestNRMSE(t *testing.T) {
	want := []float64{0, 50, 100}
	got := []float64{0, 50, 90}
	// RMSE = sqrt(100/3), peak = 100.
	exp := 100 * math.Sqrt(100.0/3) / 100
	if v := NRMSE(got, want); math.Abs(v-exp) > 1e-9 {
		t.Fatalf("NRMSE = %v, want %v", v, exp)
	}
	if NRMSE(want, want) != 0 {
		t.Fatal("exact output has zero error")
	}
	// Zero reference falls back to a unit denominator.
	if v := NRMSE([]float64{1}, []float64{0}); v != 100 {
		t.Fatalf("zero-reference NRMSE = %v", v)
	}
}

func TestNRMSERange(t *testing.T) {
	want := []float64{100, 200}
	got := []float64{100, 190}
	// RMSE = sqrt(50), range = 100.
	exp := 100 * math.Sqrt(50) / 100
	if v := NRMSERange(got, want); math.Abs(v-exp) > 1e-9 {
		t.Fatalf("NRMSERange = %v, want %v", v, exp)
	}
	// Constant reference normalizes by |max|.
	if v := NRMSERange([]float64{90, 90}, []float64{100, 100}); math.Abs(v-10) > 1e-9 {
		t.Fatalf("constant-reference range NRMSE = %v", v)
	}
}

func TestNRMSEScaleInvariance(t *testing.T) {
	f := func(base uint16, noise uint8) bool {
		w := []float64{float64(base) + 1, float64(base) + 2, float64(base) + 100}
		g := []float64{w[0] + float64(noise), w[1], w[2]}
		a := NRMSE(g, w)
		// Scaling both signals by 8 must not change the relative error.
		ws := []float64{w[0] * 8, w[1] * 8, w[2] * 8}
		gs := []float64{g[0] * 8, g[1] * 8, g[2] * 8}
		return math.Abs(NRMSE(gs, ws)-a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMAEAndRelative(t *testing.T) {
	if v := MAE([]float64{1, 3}, []float64{2, 5}); v != 1.5 {
		t.Fatalf("MAE = %v", v)
	}
	if MAE(nil, nil) != 0 {
		t.Fatal("empty MAE")
	}
	if v := MeanRelativeError([]float64{90, 0}, []float64{100, 0}); v != 10 {
		t.Fatalf("rel err = %v (zero-reference entries are skipped)", v)
	}
	if MeanRelativeError([]float64{1}, []float64{0}) != 0 {
		t.Fatal("all-zero reference yields 0")
	}
}

func TestPSNR(t *testing.T) {
	if !math.IsInf(PSNR([]float64{5}, []float64{5}, 255), 1) {
		t.Fatal("identical images have infinite PSNR")
	}
	v := PSNR([]float64{0}, []float64{255}, 255)
	if math.Abs(v) > 1e-9 { // rmse == peak -> 0 dB
		t.Fatalf("PSNR = %v", v)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median is NaN")
	}
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 {
		t.Fatal("median must not mutate its input")
	}
}

func TestMeanGeoMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if v := GeoMean([]float64{1, 4}); v != 2 {
		t.Fatalf("geomean = %v", v)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("geomean of non-positive values is NaN")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty aggregates are NaN")
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int16{-2, 7})
	if got[0] != -2 || got[1] != 7 {
		t.Fatalf("Ints = %v", got)
	}
	g2 := Ints([]uint16{65535})
	if g2[0] != 65535 {
		t.Fatal("unsigned conversion")
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	px := []float64{0, 128, 300, -5}
	if err := WritePGM(&buf, px, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P5\n2 2\n255\n") {
		t.Fatalf("header wrong: %q", out[:12])
	}
	data := out[len(out)-4:]
	if data[0] != 0 || data[1] != 128 || data[2] != 255 || data[3] != 0 {
		t.Fatalf("pixels %v (clamping failed)", data)
	}
	if err := WritePGM(&buf, px, 3, 2); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}
