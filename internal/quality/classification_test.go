package quality

import "testing"

func TestArgmax(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int
	}{
		{nil, -1},
		{[]float64{5}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{2, 2, 2}, 0}, // ties break low
		{[]float64{0, 1, 1}, 1}, // first of the tied maxima
		{[]float64{-3, -1, -2}, 1},
	}
	for _, c := range cases {
		if got := Argmax(c.xs); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestTop1Agree(t *testing.T) {
	want := []float64{1, 9, 2, 7, 3, 1} // argmax per group of 3: 1, 0
	same := []float64{0, 5, 1, 9, 2, 0} // same argmaxes, different logits
	if got := Top1Agree(same, want, 3); got != 100 {
		t.Errorf("agreeing argmaxes scored %v, want 100", got)
	}
	half := []float64{9, 5, 1, 9, 2, 0} // first group flips to class 0
	if got := Top1Agree(half, want, 3); got != 50 {
		t.Errorf("half agreement scored %v, want 50", got)
	}
	if got := Top1Agree(want, want, 6); got != 100 {
		t.Errorf("self agreement scored %v, want 100", got)
	}
}

func TestTop1AgreePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length":  func() { Top1Agree([]float64{1}, []float64{1, 2}, 1) },
		"divide":  func() { Top1Agree(make([]float64, 4), make([]float64, 4), 3) },
		"classes": func() { Top1Agree(nil, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTileExactMatch(t *testing.T) {
	want := []float64{1, 2, 3, 4, 5, 6}
	if got := TileExactMatch(want, want, 2); got != 100 {
		t.Errorf("identical tiles scored %v, want 100", got)
	}
	oneOff := []float64{1, 2, 3, 9, 5, 6} // corrupts tile 1 of 3
	if got := TileExactMatch(oneOff, want, 2); got < 66.6 || got > 66.7 {
		t.Errorf("2/3 tiles scored %v, want ~66.67", got)
	}
	if got := TileExactMatch(oneOff, want, 6); got != 0 {
		t.Errorf("whole-output tile scored %v, want 0", got)
	}
}

func TestTileExactMatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dividing tile size did not panic")
		}
	}()
	TileExactMatch(make([]float64, 5), make([]float64, 5), 2)
}
