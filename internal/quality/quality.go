// Package quality implements the output-quality metrics of the paper's
// evaluation — chiefly NRMSE, the normalized root-mean-square error used for
// every runtime-quality curve — together with companion metrics and PGM
// image output for the visual figures.
package quality

import (
	"fmt"
	"io"
	"math"
)

// RMSE returns the root-mean-square error between got and want.
// It panics if the lengths differ (a harness bug, not a data condition).
func RMSE(got, want []float64) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("quality: length mismatch %d vs %d", len(got), len(want)))
	}
	if len(want) == 0 {
		return 0
	}
	var sum float64
	for i := range want {
		d := got[i] - want[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(want)))
}

// NRMSE returns the normalized root-mean-square error in percent — the
// metric the paper reports on every quality axis — normalizing by the peak
// magnitude of the reference output. (Peak normalization keeps the metric
// meaningful for outputs whose values cluster far from zero, such as
// averaged sensor conditions; see also NRMSERange.)
func NRMSE(got, want []float64) float64 {
	r := RMSE(got, want)
	if r == 0 {
		return 0
	}
	var peak float64
	for _, v := range want {
		peak = math.Max(peak, math.Abs(v))
	}
	if peak == 0 {
		peak = 1
	}
	return 100 * r / peak
}

// NRMSERange is NRMSE normalized by the range (max-min) of the reference
// output, the other common convention.
func NRMSERange(got, want []float64) float64 {
	r := RMSE(got, want)
	if r == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range want {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = math.Abs(hi)
	}
	if span == 0 {
		span = 1
	}
	return 100 * r / span
}

// MAE returns the mean absolute error.
func MAE(got, want []float64) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("quality: length mismatch %d vs %d", len(got), len(want)))
	}
	if len(want) == 0 {
		return 0
	}
	var sum float64
	for i := range want {
		sum += math.Abs(got[i] - want[i])
	}
	return sum / float64(len(want))
}

// MeanRelativeError returns the mean of |got-want|/|want| in percent over
// elements with non-zero reference (used for the glucose case study's
// "average error of 7.5%" style numbers).
func MeanRelativeError(got, want []float64) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("quality: length mismatch %d vs %d", len(got), len(want)))
	}
	var sum float64
	var n int
	for i := range want {
		if want[i] != 0 {
			sum += math.Abs(got[i]-want[i]) / math.Abs(want[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// PSNR returns the peak signal-to-noise ratio in dB for a given peak value.
// Identical signals return +Inf.
func PSNR(got, want []float64, peak float64) float64 {
	r := RMSE(got, want)
	if r == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(peak/r)
}

// Ints converts integer samples to float64 for the metrics above.
func Ints[T ~int | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Median returns the median of xs (the paper reports medians over the
// 3-invocation x 9-trace protocol). It copies and partially sorts.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	// Insertion sort: inputs are tiny (27 runs).
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (used for average speedups).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// WritePGM emits an 8-bit binary PGM (P5) image: the visual Conv2d outputs
// of Figures 2 and 16. Values are clamped to [0,255].
func WritePGM(w io.Writer, pixels []float64, width, height int) error {
	if len(pixels) != width*height {
		return fmt.Errorf("quality: %d pixels for %dx%d image", len(pixels), width, height)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	buf := make([]byte, len(pixels))
	for i, p := range pixels {
		v := math.Round(p)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		buf[i] = byte(v)
	}
	_, err := w.Write(buf)
	return err
}
