package quality

import "fmt"

// Argmax returns the index of the largest element (ties break to the
// lowest index, the usual classifier convention). Empty input returns -1.
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Top1Agree returns the fraction (in percent) of classification groups
// whose argmax agrees between got and want: the slices are split into
// consecutive groups of 'classes' logits each, and a group scores when
// both pick the same class. This is the NN study's accuracy proxy — the
// quantized network agrees with the exact network on the label even when
// the logits themselves drift.
func Top1Agree(got, want []float64, classes int) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("quality: length mismatch %d vs %d", len(got), len(want)))
	}
	if classes <= 0 || len(want)%classes != 0 {
		panic(fmt.Sprintf("quality: %d logits do not split into groups of %d", len(want), classes))
	}
	groups := len(want) / classes
	if groups == 0 {
		return 100
	}
	agree := 0
	for g := 0; g < groups; g++ {
		lo, hi := g*classes, (g+1)*classes
		if Argmax(got[lo:hi]) == Argmax(want[lo:hi]) {
			agree++
		}
	}
	return 100 * float64(agree) / float64(groups)
}

// TileExactMatch returns the fraction (in percent) of consecutive
// 'tile'-sized output tiles that match the reference bit-exactly — the
// tile-level commit granularity of the progress-embedded NN kernels, so
// a mid-layer power failure that corrupts even one committed tile shows
// up here as a fractional score.
func TileExactMatch(got, want []float64, tile int) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("quality: length mismatch %d vs %d", len(got), len(want)))
	}
	if tile <= 0 || len(want)%tile != 0 {
		panic(fmt.Sprintf("quality: %d elements do not split into tiles of %d", len(want), tile))
	}
	tiles := len(want) / tile
	if tiles == 0 {
		return 100
	}
	exact := 0
	for t := 0; t < tiles; t++ {
		match := true
		for i := t * tile; i < (t+1)*tile; i++ {
			if got[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			exact++
		}
	}
	return 100 * float64(exact) / float64(tiles)
}
