// Package cluster turns N wnserved-style workers into one logical sweep
// engine. A coordinator accepts the same POST /v1/jobs API a single server
// does, consistent-hashes each cell's SHA-256 spec key onto a worker ring,
// fans the shards out over hardened serve.Clients, and re-interleaves the
// per-cell results into submission order — so the reassembled output is
// byte-identical to a single local sweep.Engine run of the same specs, at
// any cluster size.
//
// The robustness substrate:
//
//   - Per-node health tracking with capped exponential backoff: a node
//     that fails dispatches is routed around until its backoff expires.
//   - Hedged re-dispatch: a shard that sits on a slow node past the hedge
//     deadline is duplicated onto the next ring node; the first complete
//     result wins and duplicates are deduped by spec key, so hedging can
//     never change the output bytes.
//   - Work stealing: an idle node drains queued shards from the most
//     backed-up peer, so one straggler cannot serialize a job.
//   - Federated caching: the coordinator caches every merged cell result
//     under its spec key, serves GET /v1/cache/{key} to workers
//     (read-through on their local miss), and short-circuits resubmitted
//     cells without dispatching at all.
//
// The commit rule (cf. privatize-and-commit in task-based intermittent
// runtimes): a shard's results are invisible until its remote job
// completes — a worker that dies mid-shard contributes nothing, and the
// shard reruns elsewhere from scratch.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a physical node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring with virtual nodes. Keys (spec
// hashes) map to the first point clockwise; virtual nodes smooth the
// per-node load to within a few percent of uniform. The ring is pure
// computation — health is layered on top by the coordinator, which walks
// Successors to route around down nodes.
type Ring struct {
	points []ringPoint
	nodes  []string // distinct, in insertion order
	vnodes int
}

// NewRing builds a ring with vnodes virtual points per node (<= 0 selects
// 64). Node names must be non-empty and distinct.
func NewRing(vnodes int, nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{vnodes: vnodes}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // deterministic tie-break
	})
	return r, nil
}

// pointHash positions virtual node v of a node on the circle.
func pointHash(node string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a spec key on the circle. The key is already a SHA-256
// hex digest; hashing it again decorrelates ring position from cache-key
// prefix without costing determinism.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring membership in insertion order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VirtualNodes reports the per-node virtual point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner maps a spec key to the node owning it: the first ring point at or
// clockwise of the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.ownerIndex(key)].node
}

func (r *Ring) ownerIndex(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}

// Successors returns every distinct node in ring order starting with the
// key's owner. This is the re-dispatch order for hedging and failover: the
// owner first, then the next distinct node clockwise, and so on — the same
// sequence every coordinator computes for the same key.
func (r *Ring) Successors(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	start := r.ownerIndex(key)
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
