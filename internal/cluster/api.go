package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// The coordinator speaks the exact wire protocol a single wnserved does —
// same request/response bodies, same NDJSON event stream, same shed
// semantics — so serve.Client (and therefore `wnbench -remote`) targets a
// coordinator URL with no flag changes. The cluster-only surface is
// GET /v1/cluster (ring membership and per-node health) and the per-node
// labels on /metrics.

// apiError is a status code plus a message for the JSON error body.
type apiError struct {
	code int
	msg  string
}

// submitRequest is the POST /v1/jobs body (wire-compatible with serve).
type submitRequest struct {
	Specs   []sweep.Spec `json:"specs"`
	Timeout string       `json:"timeout,omitempty"`
}

// submitResponse is the 202 body.
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// Handler mounts the coordinator API with request logging.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", c.handleStream)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	mux.HandleFunc("GET /v1/cache/{key}", c.handleCachePeek)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	return c.logRequests(mux)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	j, apiErr := c.submit(req)
	if apiErr != nil {
		if apiErr.code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((c.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		writeJSON(w, apiErr.code, errorResponse{Error: apiErr.msg})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:        j.id,
		State:     serve.StateQueued,
		Cells:     len(j.specs),
		StatusURL: "/v1/jobs/" + j.id,
		StreamURL: "/v1/jobs/" + j.id + "/stream",
	})
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: c.list()})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream replays the job's event log as NDJSON, resuming from
// ?cursor=N like a single server.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	cursor := 0
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad cursor %q", raw)})
			return
		}
		cursor = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		batch, done, err := j.wait(r.Context(), cursor)
		if err != nil {
			return // client went away
		}
		for _, line := range batch {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		cursor += len(batch)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}

// ClusterStatus is the GET /v1/cluster body: ring shape plus per-node
// health and dispatch counters.
type ClusterStatus struct {
	Nodes        []NodeStatus `json:"nodes"`
	VirtualNodes int          `json:"virtual_nodes"`
	ShardCells   int          `json:"shard_cells"`
	HedgeAfter   string       `json:"hedge_after"`
	Draining     bool         `json:"draining"`
}

// Status snapshots the cluster for /v1/cluster (also used by tests).
func (c *Coordinator) Status() ClusterStatus {
	st := ClusterStatus{
		VirtualNodes: c.ring.VirtualNodes(),
		ShardCells:   c.cfg.ShardCells,
		HedgeAfter:   c.cfg.HedgeAfter.String(),
		Draining:     c.Draining(),
	}
	for _, name := range c.order {
		st.Nodes = append(st.Nodes, c.nodes[name].snapshot())
	}
	return st
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// handleCachePeek serves the coordinator's federated result cache — the
// read-through target for workers that miss locally.
func (c *Coordinator) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !sweep.ValidCacheKey(key) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed cache key"})
		return
	}
	if c.cfg.Cache == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no cache configured"})
		return
	}
	b, ok := c.cfg.Cache.Get(key)
	if !ok {
		c.peekMisses.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not cached"})
		return
	}
	c.peekHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if c.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// logRequests emits one structured line per request.
func (c *Coordinator) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		c.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"bytes", sw.bytes,
			"dur", time.Since(start).Round(time.Microsecond),
			"remote", r.RemoteAddr,
		)
	})
}

// statusWriter records status and bytes for the request log and forwards
// Flush so NDJSON streaming works through the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
