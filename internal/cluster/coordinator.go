package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whatsnext/internal/sweep"
)

// Runner is what the coordinator dispatches shards through: serve.Client
// implements it over HTTP (the production path), sweep.Engine implements it
// in-process (tests), and test fakes implement it to simulate node death.
type Runner interface {
	RunContext(ctx context.Context, jobs []sweep.Job) ([]json.RawMessage, error)
}

// Worker names one cluster member and the runner that reaches it.
type Worker struct {
	// Name is the node's ring identity and metrics label — for HTTP workers
	// the base URL, so every coordinator replica computes the same ring.
	Name string
	// Runner executes shards on the node.
	Runner Runner
}

// Config assembles a Coordinator.
type Config struct {
	// Workers is the cluster membership. Required, at least one.
	Workers []Worker
	// Resolver, when non-nil, validates each submitted spec up front so a
	// bad spec fails with 400 at the coordinator instead of failing a shard
	// later. The resolved closure is discarded — only specs travel.
	Resolver func(sweep.Spec) (sweep.Job, error)
	// VirtualNodes is the ring points per worker; <= 0 selects 64.
	VirtualNodes int
	// ShardCells caps the cells per dispatched shard; <= 0 selects 4.
	// Smaller shards steal and hedge at finer granularity, larger shards
	// amortize per-dispatch overhead.
	ShardCells int
	// HedgeAfter is how long a shard may sit on one node before it is
	// duplicated onto the next ring node; <= 0 selects 10s.
	HedgeAfter time.Duration
	// BackoffBase/BackoffMax shape the capped exponential backoff a
	// failing node earns; <= 0 select 250ms and 15s.
	BackoffBase, BackoffMax time.Duration
	// Cache, when non-nil, is the coordinator's federated result cache:
	// every merged cell result is stored under its spec key, resubmitted
	// cells short-circuit without dispatching, and workers read through it
	// via GET /v1/cache/{key}.
	Cache sweep.Cache
	// QueueDepth bounds accepted-but-unstarted jobs (429 beyond); <= 0
	// selects 16.
	QueueDepth int
	// MaxCells bounds the specs in one submission (413 beyond); <= 0
	// selects 4096.
	MaxCells int
	// MaxJobsRetained bounds finished-job history; <= 0 selects 256.
	MaxJobsRetained int
	// DefaultTimeout applies to jobs submitted without one; zero = none.
	DefaultTimeout time.Duration
	// RetryAfter is the 429 hint; <= 0 selects 1s.
	RetryAfter time.Duration
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

// Coordinator fronts a worker ring with the single-server job API. Create
// with New, mount Handler, drain with Shutdown.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	nodes  map[string]*node
	order  []string // node names in ring-membership order
	health healthPolicy
	log    *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	queue    chan *job
	seq      int64
	draining bool

	rejected             atomic.Int64
	cellsTotal           atomic.Int64
	coordCacheHits       atomic.Int64 // cells short-circuited by the coordinator cache
	hedges               atomic.Int64 // hedge launches across all jobs
	steals               atomic.Int64 // chunks taken from a peer's queue
	dedup                dedupCounters
	peekHits, peekMisses atomic.Int64

	baseCtx context.Context
	cancel  context.CancelFunc
	done    chan struct{}
}

// dedupCounters aggregates duplicate-result accounting across jobs.
type dedupCounters struct {
	dropped  atomic.Int64
	mismatch atomic.Int64
}

// New builds a Coordinator and starts its dispatcher.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: Config.Workers is required")
	}
	names := make([]string, len(cfg.Workers))
	for i, w := range cfg.Workers {
		if w.Runner == nil {
			return nil, fmt.Errorf("cluster: worker %q has no runner", w.Name)
		}
		names[i] = w.Name
	}
	ring, err := NewRing(cfg.VirtualNodes, names)
	if err != nil {
		return nil, err
	}
	if cfg.ShardCells <= 0 {
		cfg.ShardCells = 4
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 10 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 15 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.MaxJobsRetained <= 0 {
		cfg.MaxJobsRetained = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		nodes:   make(map[string]*node, len(cfg.Workers)),
		order:   names,
		health:  healthPolicy{base: cfg.BackoffBase, max: cfg.BackoffMax},
		log:     cfg.Logger,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	for _, w := range cfg.Workers {
		c.nodes[w.Name] = &node{name: w.Name, runner: w.Runner}
	}
	go c.dispatch()
	return c, nil
}

// Ring exposes the hash ring (read-only; for status and tests).
func (c *Coordinator) Ring() *Ring { return c.ring }

// dispatch runs accepted jobs in FIFO order, one at a time, until Shutdown
// closes the queue. Inside one job the whole ring works in parallel; across
// jobs the coordinator is a fair FIFO exactly like a single server.
func (c *Coordinator) dispatch() {
	defer close(c.done)
	for j := range c.queue {
		c.runJob(j)
	}
}

// runJob executes one job across the ring: cache short-circuit, shard,
// dispatch with stealing and hedging, merge.
func (c *Coordinator) runJob(j *job) {
	ctx := c.baseCtx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	j.start()
	c.log.Info("job start", "job", j.id, "cells", len(j.specs))
	start := time.Now()

	// Coordinator-cache short circuit: any cell the cluster has already
	// computed (under any topology) is served without dispatching.
	var pending []int
	for i, spec := range j.specs {
		if c.cfg.Cache != nil {
			if b, ok := c.cfg.Cache.Get(spec.Hash()); ok {
				j.commitCell(i, b, true, 0)
				c.coordCacheHits.Add(1)
				continue
			}
		}
		pending = append(pending, i)
	}

	if len(pending) > 0 {
		// Shard the remaining cells by ring owner, then split into
		// steal/hedge-granularity chunks. Partition indices are positions in
		// the pending list; rewrite them to submission indices so commits
		// land in the right slot.
		pendingJobs := make([]sweep.Job, len(pending))
		for k, idx := range pending {
			pendingJobs[k] = sweep.Job{Spec: j.specs[idx]}
		}
		shards := sweep.Partition(pendingJobs, func(s sweep.Spec) string {
			return c.ring.Owner(s.Hash())
		})
		queues := newChunkQueues()
		for _, sh := range shards {
			for _, chunk := range sh.Split(c.cfg.ShardCells) {
				for k := range chunk.Indices {
					chunk.Indices[k] = pending[chunk.Indices[k]]
				}
				queues.push(chunk)
			}
		}

		var wg sync.WaitGroup
		for _, name := range c.order {
			wg.Add(1)
			go func(n *node) {
				defer wg.Done()
				c.nodeLoop(ctx, j, n, queues)
			}(c.nodes[name])
		}
		wg.Wait()
	}

	var runErr error
	if err := ctx.Err(); err != nil {
		runErr = err
	}
	j.finish(runErr)
	c.dedup.dropped.Add(j.dedupSnapshot())

	st := j.status()
	c.log.Info("job finish", "job", j.id, "state", st.State, "cells", st.Cells,
		"cache_hits", st.CacheHits, "wall", time.Since(start).Round(time.Millisecond))
}

// dedupSnapshot drains the job's dedup count into the aggregate (late
// duplicate commits after this point still land in the job and are summed
// by the metrics handler's retained-job walk).
func (j *job) dedupSnapshot() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := j.dedupDropped
	j.dedupDropped = 0
	return d
}

// nodeLoop is one node's dispatch slot: drain the node's own chunk queue,
// then steal from the most backed-up peer. A down node's slot still runs —
// runChunk routes its chunks to healthy successors.
func (c *Coordinator) nodeLoop(ctx context.Context, j *job, self *node, queues *chunkQueues) {
	for {
		if ctx.Err() != nil {
			return
		}
		chunk, stolen, ok := queues.pop(self.name)
		if !ok {
			return
		}
		if stolen {
			self.stolen.Add(1)
			c.steals.Add(1)
			// A stolen chunk runs on the thief first: it is idle, the owner
			// is backed up. Re-owner the chunk so the candidate order
			// starts here.
			chunk.Owner = self.name
		}
		if err := c.runChunk(ctx, j, chunk); err != nil {
			if ctx.Err() != nil {
				return
			}
			j.shardFailed(err)
		}
	}
}

// runChunk dispatches one chunk with failover and hedging: the owner (or
// thief) first, then each distinct ring successor — immediately on failure,
// after HedgeAfter on silence. The first complete result commits; stragglers
// are cancelled and their late results deduped. An error is returned only
// when every node failed the chunk.
func (c *Coordinator) runChunk(ctx context.Context, j *job, chunk sweep.Shard) error {
	cands := c.candidates(chunk)
	attemptCtx, cancelAttempts := context.WithCancel(ctx)
	defer cancelAttempts()

	type attempt struct {
		n   *node
		err error
	}
	resCh := make(chan attempt, len(cands))
	launched := 0
	launch := func(hedge bool) {
		n := cands[launched]
		launched++
		n.dispatched.Add(1)
		if hedge {
			n.hedgedTo.Add(1)
			c.hedges.Add(1)
		}
		go func() {
			start := time.Now()
			raws, err := n.runner.RunContext(attemptCtx, chunk.Jobs)
			if err == nil && len(raws) != len(chunk.Jobs) {
				err = fmt.Errorf("cluster: node %s returned %d results for %d cells",
					n.name, len(raws), len(chunk.Jobs))
			}
			if err == nil {
				// Commit rule: the whole chunk arrived, so its cells become
				// visible now — and feed the federation cache so peers and
				// future jobs can read through.
				wall := time.Since(start)
				n.completed.Add(1)
				n.ok()
				for k, idx := range chunk.Indices {
					if fresh := j.commitCell(idx, raws[k], false, wall); fresh && c.cfg.Cache != nil {
						c.cfg.Cache.Put(chunk.Jobs[k].Spec.Hash(), raws[k])
					}
				}
			} else {
				n.failed.Add(1)
				if attemptCtx.Err() == nil {
					// A genuine node failure, not our own cancellation.
					n.fail(c.health)
				}
			}
			resCh <- attempt{n, err}
		}()
	}

	launch(false)
	hedge := time.NewTimer(c.cfg.HedgeAfter)
	defer hedge.Stop()
	inflight := 1
	var lastErr error
	for {
		select {
		case a := <-resCh:
			inflight--
			if a.err == nil {
				return nil
			}
			lastErr = a.err
			if launched < len(cands) {
				launch(false)
				inflight++
				hedge.Reset(c.cfg.HedgeAfter)
			} else if inflight == 0 {
				return fmt.Errorf("cluster: chunk of %d cells failed on all %d nodes: %w",
					len(chunk.Jobs), len(cands), lastErr)
			}
		case <-hedge.C:
			if launched < len(cands) {
				launch(true)
				inflight++
			}
			hedge.Reset(c.cfg.HedgeAfter)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// candidates orders the nodes a chunk may run on: the ring successor
// sequence of the chunk's owner, healthy nodes first. The list always
// contains every node — when the whole ring is backing off there is nothing
// better to do than probe.
func (c *Coordinator) candidates(chunk sweep.Shard) []*node {
	var key string
	if len(chunk.Jobs) > 0 {
		key = chunk.Jobs[0].Spec.Hash()
	}
	order := c.ring.Successors(key)
	// Start from the recorded owner if it differs (stolen chunks).
	for i, name := range order {
		if name == chunk.Owner {
			order = append(append([]string(nil), order[i:]...), order[:i]...)
			break
		}
	}
	cands := make([]*node, 0, len(order))
	for _, name := range order {
		if c.nodes[name].available() {
			cands = append(cands, c.nodes[name])
		}
	}
	for _, name := range order {
		if !c.nodes[name].available() {
			cands = append(cands, c.nodes[name])
		}
	}
	return cands
}

// chunkQueues is the per-node work-stealing deque set for one job: owners
// pop their own queue from the front; an idle node steals from the back of
// the longest peer queue.
type chunkQueues struct {
	mu sync.Mutex
	q  map[string][]sweep.Shard
}

func newChunkQueues() *chunkQueues {
	return &chunkQueues{q: make(map[string][]sweep.Shard)}
}

func (cq *chunkQueues) push(ch sweep.Shard) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.q[ch.Owner] = append(cq.q[ch.Owner], ch)
}

// pop returns the next chunk for node self: its own queue first (front),
// otherwise stolen from the back of the longest peer queue (ties broken by
// name for determinism of the choice, not of the result — results are
// order-independent by construction). ok=false means no work remains.
func (cq *chunkQueues) pop(self string) (ch sweep.Shard, stolen, ok bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if own := cq.q[self]; len(own) > 0 {
		ch = own[0]
		cq.q[self] = own[1:]
		return ch, false, true
	}
	var victim string
	longest := 0
	names := make([]string, 0, len(cq.q))
	for name := range cq.q {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if l := len(cq.q[name]); l > longest {
			longest = l
			victim = name
		}
	}
	if longest == 0 {
		return sweep.Shard{}, false, false
	}
	q := cq.q[victim]
	ch = q[len(q)-1]
	cq.q[victim] = q[:len(q)-1]
	return ch, true, true
}

// submit validates, shards-checks and enqueues a request (mirrors the
// single server's admission: 400 bad specs, 413 oversize, 429 shed).
func (c *Coordinator) submit(req submitRequest) (*job, *apiError) {
	if len(req.Specs) == 0 {
		return nil, &apiError{http.StatusBadRequest, "no specs in submission"}
	}
	if len(req.Specs) > c.cfg.MaxCells {
		return nil, &apiError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d specs exceeds the %d-cell limit", len(req.Specs), c.cfg.MaxCells)}
	}
	timeout := c.cfg.DefaultTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d < 0 {
			return nil, &apiError{http.StatusBadRequest, fmt.Sprintf("bad timeout %q", req.Timeout)}
		}
		timeout = d
	}
	if c.cfg.Resolver != nil {
		for i, spec := range req.Specs {
			if _, err := c.cfg.Resolver(spec); err != nil {
				return nil, &apiError{http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err)}
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.rejected.Add(1)
		return nil, &apiError{http.StatusTooManyRequests, "coordinator is draining"}
	}
	c.seq++
	j := newJob(fmt.Sprintf("c-%06d", c.seq), req.Specs, timeout)
	select {
	case c.queue <- j:
	default:
		c.rejected.Add(1)
		return nil, &apiError{http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued)", cap(c.queue))}
	}
	c.cellsTotal.Add(int64(len(req.Specs)))
	c.jobs[j.id] = j
	c.jobOrder = append(c.jobOrder, j.id)
	c.evictLocked()
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention cap.
func (c *Coordinator) evictLocked() {
	excess := len(c.jobOrder) - c.cfg.MaxJobsRetained
	if excess <= 0 {
		return
	}
	kept := c.jobOrder[:0]
	for _, id := range c.jobOrder {
		if excess > 0 && c.jobs[id].terminal() {
			delete(c.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	c.jobOrder = kept
}

func (c *Coordinator) lookup(id string) (*job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func (c *Coordinator) list() []jobStatus {
	c.mu.Lock()
	ids := append([]string(nil), c.jobOrder...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Shutdown stops accepting jobs and waits for accepted jobs to finish;
// cancelling ctx aborts the in-flight job between shard completions and
// returns ctx.Err(). Safe to call once.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.draining = true
	close(c.queue)
	c.mu.Unlock()
	c.log.Info("draining", "queued", len(c.queue))

	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		c.cancel()
		<-c.done
		return ctx.Err()
	}
}
