package cluster

import (
	"testing"

	"whatsnext/internal/sweep"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = sweep.Spec{Experiment: "ring", TraceSeed: int64(i)}.Hash()
	}
	return keys
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(8, nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing(8, []string{"a", ""}); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := NewRing(8, []string{"a", "b", "a"}); err == nil {
		t.Error("duplicate node accepted")
	}
}

// TestRingDeterministic: two rings with the same membership agree on every
// owner — the property that lets any coordinator replica (or a worker
// checking its own ownership) compute the same assignment.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	r1, err := NewRing(64, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(64, []string{nodes[0], nodes[1], nodes[2]})
	for _, k := range testKeys(256) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("rings disagree on key %s: %s vs %s", k[:8], r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestRingBalance: with virtual nodes, no node owns a wildly outsized or
// starved share of keys.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r, err := NewRing(64, nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys (counts: %v)", n, share*100, counts)
		}
	}
}

// TestRingStabilityUnderGrowth: adding a node must not reshuffle keys
// between the surviving nodes — only moves onto the newcomer are allowed.
// This is what keeps worker-local caches warm across membership changes.
func TestRingStabilityUnderGrowth(t *testing.T) {
	small, _ := NewRing(64, []string{"n1", "n2", "n3"})
	big, _ := NewRing(64, []string{"n1", "n2", "n3", "n4"})
	moved, movedElsewhere := 0, 0
	keys := testKeys(2000)
	for _, k := range keys {
		before, after := small.Owner(k), big.Owner(k)
		if before != after {
			moved++
			if after != "n4" {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere > 0 {
		t.Errorf("%d keys moved between surviving nodes (consistent hashing violated)", movedElsewhere)
	}
	if moved == 0 {
		t.Error("no keys moved to the new node")
	}
	if share := float64(moved) / float64(len(keys)); share > 0.5 {
		t.Errorf("adding one node moved %.0f%% of keys; want roughly 1/4", share*100)
	}
}

func TestRingSuccessors(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r, _ := NewRing(32, nodes)
	for _, k := range testKeys(64) {
		succ := r.Successors(k)
		if len(succ) != len(nodes) {
			t.Fatalf("Successors returned %d nodes, want %d", len(succ), len(nodes))
		}
		if succ[0] != r.Owner(k) {
			t.Errorf("Successors[0] = %s, Owner = %s", succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("duplicate successor %s for key %s", n, k[:8])
			}
			seen[n] = true
		}
	}
}

func TestChunkQueuesStealFromLongest(t *testing.T) {
	cq := newChunkQueues()
	mk := func(owner string, n int) sweep.Shard {
		return sweep.Shard{Owner: owner, Indices: []int{n}, Jobs: []sweep.Job{{}}}
	}
	// busy has 3 chunks queued, other has 1, idle none.
	for i := 0; i < 3; i++ {
		cq.push(mk("busy", i))
	}
	cq.push(mk("other", 10))

	if ch, stolen, ok := cq.pop("other"); !ok || stolen || ch.Indices[0] != 10 {
		t.Fatalf("own pop wrong: %v %v %v", ch.Indices, stolen, ok)
	}
	// idle steals from busy's back (index 2).
	ch, stolen, ok := cq.pop("idle")
	if !ok || !stolen {
		t.Fatalf("steal failed: stolen=%v ok=%v", stolen, ok)
	}
	if ch.Indices[0] != 2 {
		t.Errorf("stole chunk %d, want back-of-queue 2", ch.Indices[0])
	}
	// busy drains its own front in order.
	if ch, _, _ := cq.pop("busy"); ch.Indices[0] != 0 {
		t.Errorf("owner pop got %d, want front 0", ch.Indices[0])
	}
	cq.pop("busy")
	if _, _, ok := cq.pop("anyone"); ok {
		t.Error("empty queues still produced work")
	}
}

func TestRingOwnerMatchesSuccessorHead(t *testing.T) {
	r, _ := NewRing(0, []string{"solo"})
	for _, k := range testKeys(8) {
		if r.Owner(k) != "solo" {
			t.Fatal("single-node ring must own everything")
		}
	}
}
