package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"time"

	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// job is one accepted submission flowing through the cluster. It keeps the
// same append-only NDJSON event log a single server keeps (the wire format
// is serve.Event, so serve.Client follows a coordinator stream unchanged)
// plus the dedup ledger: results commit per cell index, first complete
// shard wins, duplicates are counted and dropped.
type job struct {
	id      string
	specs   []sweep.Spec
	timeout time.Duration

	mu        sync.Mutex
	state     string
	errMsg    string
	results   []json.RawMessage
	committed int   // cells with a result so far
	cacheHits int64 // cells served by the coordinator's own cache
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    []json.RawMessage
	changed   chan struct{} // closed and replaced on every append

	dedupDropped   int64 // duplicate cell results discarded (hedging)
	dedupMismatch  int64 // duplicates whose bytes disagreed (determinism!)
	firstShardErr  error
	shardErrsTotal int
}

func newJob(id string, specs []sweep.Spec, timeout time.Duration) *job {
	return &job{
		id:        id,
		specs:     specs,
		timeout:   timeout,
		state:     serve.StateQueued,
		results:   make([]json.RawMessage, len(specs)),
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
}

// appendLocked adds an event line and wakes stream subscribers. Caller
// holds j.mu.
func (j *job) appendLocked(e serve.Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return // events are built from marshalable fields; unreachable
	}
	j.events = append(j.events, b)
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = serve.StateRunning
	j.started = time.Now()
}

// commitCell records one cell's bytes if the cell is still open, emitting a
// progress event; a duplicate (hedged shard losing the race) is counted
// and dropped, and a byte-disagreeing duplicate — which the determinism
// contract says cannot happen — is additionally counted as a mismatch so
// it shows up in metrics rather than vanishing. Returns true when the cell
// was fresh.
func (j *job) commitCell(idx int, raw json.RawMessage, cacheHit bool, wall time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.results[idx] != nil {
		j.dedupDropped++
		if !bytes.Equal(j.results[idx], raw) {
			j.dedupMismatch++
		}
		return false
	}
	j.results[idx] = raw
	j.committed++
	if cacheHit {
		j.cacheHits++
	}
	if j.terminalLocked() {
		return true // late commit after cancellation: keep silent
	}
	e := serve.Event{
		Type:     "progress",
		Index:    idx,
		Spec:     &j.specs[idx],
		CacheHit: cacheHit,
		WallNS:   int64(wall),
		Done:     j.committed,
		Total:    len(j.specs),
	}
	j.appendLocked(e)
	return true
}

// shardFailed records a shard that exhausted every node.
func (j *job) shardFailed(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.shardErrsTotal++
	if j.firstShardErr == nil {
		j.firstShardErr = err
	}
}

// finish closes the job: result events in submission order when every cell
// committed, otherwise the failure/cancellation terminal state.
func (j *job) finish(runErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return
	}
	j.finished = time.Now()
	switch {
	case runErr == nil && j.firstShardErr == nil && j.committed == len(j.specs):
		j.state = serve.StateDone
		for i, r := range j.results {
			j.appendLocked(serve.Event{Type: "result", Index: i, Spec: &j.specs[i], Result: r})
		}
	case runErr != nil:
		j.state = serve.StateCanceled
		j.errMsg = runErr.Error()
	default:
		j.state = serve.StateFailed
		if j.firstShardErr != nil {
			j.errMsg = j.firstShardErr.Error()
		} else {
			j.errMsg = "cluster: incomplete results"
		}
	}
	j.appendLocked(serve.Event{Type: "done", State: j.state, Error: j.errMsg, CacheHits: j.cacheHits})
}

func (j *job) terminalLocked() bool {
	return j.state == serve.StateDone || j.state == serve.StateFailed || j.state == serve.StateCanceled
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked()
}

// status snapshots the job for the JSON API (same shape as a single
// server's job status).
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:        j.id,
		State:     j.state,
		Cells:     len(j.specs),
		Done:      j.committed,
		CacheHits: j.cacheHits,
		Error:     j.errMsg,
		Submitted: j.submitted,
	}
	if j.state == serve.StateDone {
		st.Results = j.results
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// wait returns the event lines from cursor on, blocking until new events
// arrive, the job is terminal, or ctx ends (mirrors serve's stream
// contract, including ?cursor resume).
func (j *job) wait(ctx context.Context, cursor int) ([]json.RawMessage, bool, error) {
	for {
		j.mu.Lock()
		terminal := j.terminalLocked()
		if cursor < len(j.events) {
			batch := j.events[cursor:len(j.events):len(j.events)]
			done := terminal && cursor+len(batch) == len(j.events)
			j.mu.Unlock()
			return batch, done, nil
		}
		if terminal {
			j.mu.Unlock()
			return nil, true, nil
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// jobStatus is the GET /v1/jobs/{id} body.
type jobStatus struct {
	ID        string            `json:"id"`
	State     string            `json:"state"`
	Cells     int               `json:"cells"`
	Done      int               `json:"done"`
	CacheHits int64             `json:"cache_hits"`
	Error     string            `json:"error,omitempty"`
	Submitted time.Time         `json:"submitted"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	Results   []json.RawMessage `json:"results,omitempty"`
}
