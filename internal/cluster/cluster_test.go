package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"whatsnext/internal/cluster"
	"whatsnext/internal/experiments"
	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// The end-to-end acceptance check for the cluster layer: real wnserved
// workers behind real HTTP, a real coordinator in front, and the paper's
// Table I as the workload. The determinism contract extends across
// topology — any worker count must reproduce a single local engine's bytes.

// startWorker boots an in-process wnserved with the experiments resolver
// and returns its base URL.
func startWorker(t *testing.T) string {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Resolver: experiments.ResolveSpec,
		Workers:  2,
		Cache:    sweep.NewMemoryCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return ts.URL
}

// startCoordinator fronts the given worker URLs with a coordinator and
// returns its base URL plus the Coordinator for counter inspection.
func startCoordinator(t *testing.T, workerURLs []string, cache sweep.Cache) (string, *cluster.Coordinator) {
	t.Helper()
	members := make([]cluster.Worker, len(workerURLs))
	for i, u := range workerURLs {
		members[i] = cluster.Worker{Name: u, Runner: serve.NewClient(u)}
	}
	coord, err := cluster.New(cluster.Config{
		Workers:    members,
		Resolver:   experiments.ResolveSpec,
		ShardCells: 2,
		Cache:      cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		coord.Shutdown(context.Background())
	})
	return ts.URL, coord
}

// TestClusterTable1ByteIdentical runs the paper's Table I sweep three ways —
// a local engine, a 1-worker cluster, and a 3-worker cluster — through the
// unchanged serve.Client, and requires all three byte-identical.
func TestClusterTable1ByteIdentical(t *testing.T) {
	specs := experiments.Table1Specs(experiments.DefaultProtocol())
	jobs, err := experiments.ResolveSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.New(sweep.Options{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	one, _ := startCoordinator(t, []string{startWorker(t)}, nil)
	three, coord3 := startCoordinator(t,
		[]string{startWorker(t), startWorker(t), startWorker(t)}, sweep.NewMemoryCache())

	for _, tc := range []struct {
		name string
		url  string
	}{
		{"one-worker", one},
		{"three-workers", three},
	} {
		got, err := serve.NewClient(tc.url).Run(jobs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != len(local) {
			t.Fatalf("%s: %d results, want %d", tc.name, len(got), len(local))
		}
		for i := range local {
			if !bytes.Equal(got[i], local[i]) {
				t.Errorf("%s: cell %d (%s) differs from local engine\ncluster: %s\nlocal:   %s",
					tc.name, i, specs[i].Kernel, got[i], local[i])
			}
		}
	}

	// The 3-worker ring must actually have spread the shards: at least two
	// nodes completed work.
	st := coord3.Status()
	if len(st.Nodes) != 3 {
		t.Fatalf("/v1/cluster reports %d nodes, want 3", len(st.Nodes))
	}
	busy := 0
	for _, n := range st.Nodes {
		if n.Completed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of 3 nodes completed shards — ring did not spread the sweep", busy)
	}

	// Resubmission is served from the coordinator's cache without touching
	// the ring again.
	dispatchedBefore := int64(0)
	for _, n := range coord3.Status().Nodes {
		dispatchedBefore += n.Dispatched
	}
	again, err := serve.NewClient(three).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if !bytes.Equal(again[i], local[i]) {
			t.Errorf("cached rerun: cell %d differs", i)
		}
	}
	dispatchedAfter := int64(0)
	for _, n := range coord3.Status().Nodes {
		dispatchedAfter += n.Dispatched
	}
	if dispatchedAfter != dispatchedBefore {
		t.Errorf("cached rerun dispatched %d new shards, want 0", dispatchedAfter-dispatchedBefore)
	}
}

// TestClusterWireCompatibility checks the coordinator's HTTP surface against
// the bits serve.Client depends on, plus the cluster-only endpoints.
func TestClusterWireCompatibility(t *testing.T) {
	url, _ := startCoordinator(t, []string{startWorker(t)}, sweep.NewMemoryCache())

	// Bad submissions map to the single-server status codes.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"specs":[]}`, http.StatusBadRequest},
		{`{"specs":[{"experiment":"nope"}]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	// /v1/cluster and /metrics respond.
	resp, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st cluster.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /v1/cluster: %v", err)
	}
	resp.Body.Close()
	if len(st.Nodes) != 1 {
		t.Errorf("/v1/cluster: %d nodes, want 1", len(st.Nodes))
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"wn_cluster_jobs_submitted_total",
		"wn_cluster_shards_dispatched_total{node=",
		"wn_cluster_node_up{node=",
	} {
		if !bytes.Contains(body, []byte(metric)) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	// Malformed cache keys are rejected, unknown ones 404.
	for key, want := range map[string]int{
		"zz": http.StatusBadRequest,
		"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef": http.StatusNotFound,
	} {
		resp, err := http.Get(url + "/v1/cache/" + key)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET /v1/cache/%s: status %d, want %d", key, resp.StatusCode, want)
		}
	}
}

// TestClusterCacheFederation proves the full federation loop: a sweep runs
// through the cluster, the coordinator's cache fills from merged results,
// and a brand-new worker with a FederatedCache pointed at the coordinator
// serves the same specs from upstream without simulating anything.
func TestClusterCacheFederation(t *testing.T) {
	specs := experiments.Table1Specs(experiments.DefaultProtocol())
	jobs, err := experiments.ResolveSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	coordURL, _ := startCoordinator(t, []string{startWorker(t)}, sweep.NewMemoryCache())
	want, err := serve.NewClient(coordURL).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// The coordinator peek endpoint now serves every cell's bytes.
	for i, s := range specs[:3] {
		resp, err := http.Get(coordURL + "/v1/cache/" + s.Hash())
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("peek cell %d: status %d", i, resp.StatusCode)
		}
		if !bytes.Equal(b, want[i]) {
			t.Errorf("peek cell %d: bytes differ from streamed result", i)
		}
	}

	// A fresh worker federates: every cell is an upstream hit, none are
	// simulated locally beyond the read-through copy.
	fc := serve.NewFederatedCache(sweep.NewMemoryCache(), coordURL, time.Second)
	srv, err := serve.New(serve.Config{
		Resolver: experiments.ResolveSpec,
		Workers:  2,
		Cache:    fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(context.Background())
	}()

	got, err := serve.NewClient(ts.URL).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("federated worker: cell %d differs", i)
		}
	}
	hits, _, errors := fc.FederationStats()
	if hits != int64(len(specs)) {
		t.Errorf("federation hits = %d, want %d (every cell upstream)", hits, len(specs))
	}
	if errors != 0 {
		t.Errorf("federation errors = %d, want 0", errors)
	}
}
