package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// These tests drive the failure machinery — node death mid-job, hedged
// re-dispatch, duplicate dedup, health backoff — with in-process fake
// workers whose behavior is exact, so the assertions are deterministic
// where an HTTP integration test would be timing-soup. The determinism
// oracle is always the same: whatever breaks, the committed bytes must
// equal a clean local run.

// fakeResult is the pure function of the spec every fake worker computes —
// the stand-in for a deterministic simulation cell.
func fakeResult(s sweep.Spec) json.RawMessage {
	b, err := json.Marshal(map[string]any{"kernel": s.Kernel, "trace": s.TraceSeed, "hash": s.Hash()[:12]})
	if err != nil {
		panic(err)
	}
	return b
}

// fakeWorker is a Runner with fault switches.
type fakeWorker struct {
	name string
	// failFirst fails this many leading calls with a mid-stream error
	// (simulating a worker that died while streaming a shard).
	failFirst int32
	// delay stalls every answer; if ignoreCancel is set the stall and the
	// answer complete even after the coordinator cancels the attempt —
	// exactly the hedging race where two nodes answer the same spec keys.
	delay        time.Duration
	ignoreCancel bool

	calls atomic.Int32
}

func (f *fakeWorker) RunContext(ctx context.Context, jobs []sweep.Job) ([]json.RawMessage, error) {
	f.calls.Add(1)
	if f.calls.Load() <= f.failFirst {
		return nil, errors.New("connection reset mid-stream")
	}
	if f.delay > 0 {
		if f.ignoreCancel {
			time.Sleep(f.delay)
		} else {
			select {
			case <-time.After(f.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if !f.ignoreCancel && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	out := make([]json.RawMessage, len(jobs))
	for i, j := range jobs {
		out[i] = fakeResult(j.Spec)
	}
	return out, nil
}

func failSpecs(n int) []sweep.Spec {
	specs := make([]sweep.Spec, n)
	for i := range specs {
		specs[i] = sweep.Spec{Experiment: "failure", Kernel: fmt.Sprintf("k%02d", i), TraceSeed: int64(i)}
	}
	return specs
}

// localReference computes the byte-identity oracle: what any single node
// produces for the same specs, in submission order.
func localReference(t *testing.T, specs []sweep.Spec) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(specs))
	for i, s := range specs {
		out[i] = fakeResult(s)
	}
	return out
}

// runClusterJob submits specs straight to the coordinator's internal queue
// and waits for the terminal state.
func runClusterJob(t *testing.T, c *Coordinator, specs []sweep.Spec) *job {
	t.Helper()
	j, apiErr := c.submit(submitRequest{Specs: specs})
	if apiErr != nil {
		t.Fatalf("submit: %d %s", apiErr.code, apiErr.msg)
	}
	deadline := time.After(30 * time.Second)
	for !j.terminal() {
		select {
		case <-deadline:
			t.Fatalf("job %s did not finish", j.id)
		case <-time.After(2 * time.Millisecond):
		}
	}
	return j
}

func assertBytesEqual(t *testing.T, j *job, want []json.RawMessage) {
	t.Helper()
	st := j.status()
	if st.State != serve.StateDone {
		t.Fatalf("job state %s (err %q), want done", st.State, st.Error)
	}
	if len(st.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(st.Results), len(want))
	}
	for i := range want {
		if !bytes.Equal(st.Results[i], want[i]) {
			t.Errorf("cell %d: %s != %s", i, st.Results[i], want[i])
		}
	}
}

// TestWorkerDeathMidJobHedgedRecovery kills one of three workers for the
// whole job (every dispatch to it dies mid-stream); failover + hedging must
// recover every shard with byte-identical output, and the dead node must be
// marked down.
func TestWorkerDeathMidJobHedgedRecovery(t *testing.T) {
	// The healthy workers take a little wall time per chunk, as any real
	// HTTP worker does. On a single-CPU box instant workers would drain and
	// steal the whole queue before the dead node's dispatch loop is even
	// scheduled, and the fault path under test would never run.
	dead := &fakeWorker{name: "w-dead", failFirst: 1 << 30}
	alive1 := &fakeWorker{name: "w-alive1", delay: 2 * time.Millisecond}
	alive2 := &fakeWorker{name: "w-alive2", delay: 2 * time.Millisecond}
	c, err := New(Config{
		Workers: []Worker{
			{Name: dead.name, Runner: dead},
			{Name: alive1.name, Runner: alive1},
			{Name: alive2.name, Runner: alive2},
		},
		ShardCells:  2,
		HedgeAfter:  20 * time.Millisecond,
		BackoffBase: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	specs := failSpecs(12)
	j := runClusterJob(t, c, specs)
	assertBytesEqual(t, j, localReference(t, specs))

	if dead.calls.Load() == 0 {
		t.Error("dead worker was never dispatched to — ring routed around it a priori?")
	}
	st := c.Status()
	var deadStatus *NodeStatus
	for i := range st.Nodes {
		if st.Nodes[i].Name == dead.name {
			deadStatus = &st.Nodes[i]
		}
	}
	if deadStatus == nil {
		t.Fatal("dead node missing from status")
	}
	if deadStatus.Up {
		t.Error("dead node still reported up after failing every dispatch")
	}
	if deadStatus.Failed == 0 || deadStatus.Transitions == 0 {
		t.Errorf("dead node counters: failed=%d transitions=%d, want both > 0",
			deadStatus.Failed, deadStatus.Transitions)
	}
}

// TestWorkerDiesPartwayThroughJob flips a worker from healthy to dead
// between chunks: early chunks succeed on it, later ones die mid-stream and
// must be re-dispatched elsewhere without byte divergence — the exact
// "kill a worker mid-job" scenario.
func TestWorkerDiesPartwayThroughJob(t *testing.T) {
	// Dies after its first successful call: calls 2.. fail.
	flaky := &fakeWorker{name: "w-flaky"}
	other := &fakeWorker{name: "w-other"}
	wrapped := runnerFunc(func(ctx context.Context, jobs []sweep.Job) ([]json.RawMessage, error) {
		if flaky.calls.Add(1) > 1 {
			return nil, errors.New("worker killed mid-job")
		}
		out := make([]json.RawMessage, len(jobs))
		for i, j := range jobs {
			out[i] = fakeResult(j.Spec)
		}
		return out, nil
	})
	c, err := New(Config{
		Workers: []Worker{
			{Name: flaky.name, Runner: wrapped},
			{Name: other.name, Runner: other},
		},
		ShardCells:  1, // many small chunks so the flip lands mid-job
		HedgeAfter:  20 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	specs := failSpecs(16)
	j := runClusterJob(t, c, specs)
	assertBytesEqual(t, j, localReference(t, specs))
}

// runnerFunc adapts a function to Runner.
type runnerFunc func(context.Context, []sweep.Job) ([]json.RawMessage, error)

func (f runnerFunc) RunContext(ctx context.Context, jobs []sweep.Job) ([]json.RawMessage, error) {
	return f(ctx, jobs)
}

// TestHedgedDuplicateDedup makes the primary slow but unkillable, so the
// hedge completes first AND the primary completes later: two nodes answer
// the same spec keys. Exactly one result per cell may survive, the
// duplicates must be counted, and none may disagree byte-wise.
func TestHedgedDuplicateDedup(t *testing.T) {
	// fast is quick but not instant — see TestWorkerDeathMidJobHedgedRecovery
	// for why instant workers starve the path under test on one CPU.
	slow := &fakeWorker{name: "w-slow", delay: 150 * time.Millisecond, ignoreCancel: true}
	fast := &fakeWorker{name: "w-fast", delay: time.Millisecond}
	c, err := New(Config{
		Workers: []Worker{
			{Name: slow.name, Runner: slow},
			{Name: fast.name, Runner: fast},
		},
		ShardCells: 2,
		HedgeAfter: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	specs := failSpecs(10)
	// Count how many chunks the ring assigns to the slow node: those are
	// the ones that will be hedged and answered twice.
	slowCells := 0
	for _, s := range specs {
		if c.Ring().Owner(s.Hash()) == slow.name {
			slowCells++
		}
	}
	if slowCells == 0 {
		t.Skip("ring assigned nothing to the slow node for this spec set")
	}

	j := runClusterJob(t, c, specs)
	// Wait out the slow node's stragglers so their duplicate commits land.
	time.Sleep(250 * time.Millisecond)
	assertBytesEqual(t, j, localReference(t, specs))

	if c.hedges.Load() == 0 {
		t.Error("no hedges launched despite a slow primary")
	}
	j.mu.Lock()
	dropped := j.dedupDropped
	mismatch := j.dedupMismatch
	j.mu.Unlock()
	total := c.dedup.dropped.Load() + dropped
	if total == 0 {
		t.Error("no duplicates were deduped — did the slow node never finish?")
	}
	if total > int64(slowCells) {
		t.Errorf("deduped %d duplicates, but only %d cells were owned by the slow node", total, slowCells)
	}
	if mismatch != 0 || c.dedup.mismatch.Load() != 0 {
		t.Errorf("duplicate results disagreed byte-wise (mismatch=%d) — determinism violation", mismatch)
	}
}

// TestAllWorkersDeadFailsCleanly: when every node fails a chunk, the job
// must end failed (not hang), with the shard error surfaced.
func TestAllWorkersDeadFailsCleanly(t *testing.T) {
	d1 := &fakeWorker{name: "d1", failFirst: 1 << 30}
	d2 := &fakeWorker{name: "d2", failFirst: 1 << 30}
	c, err := New(Config{
		Workers:     []Worker{{Name: "d1", Runner: d1}, {Name: "d2", Runner: d2}},
		ShardCells:  4,
		HedgeAfter:  10 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	j := runClusterJob(t, c, failSpecs(4))
	st := j.status()
	if st.State != serve.StateFailed {
		t.Fatalf("job state %s, want failed", st.State)
	}
	if st.Error == "" {
		t.Error("failed job carries no error message")
	}
}

// TestCoordinatorCacheShortCircuit: a resubmitted job is served entirely
// from the coordinator's federated cache — no new dispatches reach any
// worker — and the bytes are unchanged.
func TestCoordinatorCacheShortCircuit(t *testing.T) {
	w1 := &fakeWorker{name: "w1"}
	w2 := &fakeWorker{name: "w2"}
	c, err := New(Config{
		Workers: []Worker{{Name: "w1", Runner: w1}, {Name: "w2", Runner: w2}},
		Cache:   sweep.NewMemoryCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	specs := failSpecs(8)
	want := localReference(t, specs)
	j1 := runClusterJob(t, c, specs)
	assertBytesEqual(t, j1, want)
	callsAfterFirst := w1.calls.Load() + w2.calls.Load()

	j2 := runClusterJob(t, c, specs)
	assertBytesEqual(t, j2, want)
	if got := w1.calls.Load() + w2.calls.Load(); got != callsAfterFirst {
		t.Errorf("resubmission dispatched to workers (%d calls, want %d)", got, callsAfterFirst)
	}
	if st := j2.status(); st.CacheHits != int64(len(specs)) {
		t.Errorf("resubmission cache hits = %d, want %d", st.CacheHits, len(specs))
	}
	if c.coordCacheHits.Load() != int64(len(specs)) {
		t.Errorf("coordinator cache hit counter = %d, want %d", c.coordCacheHits.Load(), len(specs))
	}
}

// TestBackoffRecovery: a node that failed comes back after its backoff
// expires and serves again.
func TestBackoffRecovery(t *testing.T) {
	flaky := &fakeWorker{name: "flaky", failFirst: 1}
	c, err := New(Config{
		Workers:     []Worker{{Name: "flaky", Runner: flaky}},
		ShardCells:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		HedgeAfter:  time.Hour, // no hedging: failover only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	specs := failSpecs(4)
	j := runClusterJob(t, c, specs)
	// Single node: first chunk dispatch fails once, chunk fails (no other
	// node), job fails — but the node must recover for the next job.
	if st := j.status(); st.State == serve.StateDone {
		// Also acceptable: the failed chunk errored, job failed. If the
		// retry-free single-node path somehow succeeded, bytes must match.
		assertBytesEqual(t, j, localReference(t, specs))
	}
	time.Sleep(5 * time.Millisecond)
	j2 := runClusterJob(t, c, specs)
	assertBytesEqual(t, j2, localReference(t, specs))
	if !c.nodes["flaky"].available() {
		t.Error("node still down after successful dispatches")
	}
}
