package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// node is the coordinator's view of one worker: its runner, health state,
// and dispatch counters. Counters are atomics because attempt goroutines
// update them while the metrics handler reads.
type node struct {
	name   string
	runner Runner

	mu           sync.Mutex
	failures     int       // consecutive dispatch failures
	backoffUntil time.Time // zero when healthy
	down         bool      // true while in backoff

	dispatched  atomic.Int64 // shards sent to this node (incl. hedges)
	completed   atomic.Int64 // shards this node finished successfully
	failed      atomic.Int64 // shards this node errored
	hedgedTo    atomic.Int64 // shards dispatched here as hedges of a slow peer
	stolen      atomic.Int64 // shards this node stole from a peer's queue
	transitions atomic.Int64 // up<->down edges
}

// healthPolicy shapes the capped exponential backoff a failing node earns.
type healthPolicy struct {
	base time.Duration // first backoff; doubles per consecutive failure
	max  time.Duration // backoff cap
}

// ok records a successful dispatch: failures reset and the node is up.
func (n *node) ok() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failures = 0
	n.backoffUntil = time.Time{}
	if n.down {
		n.down = false
		n.transitions.Add(1)
	}
}

// fail records a dispatch failure and arms the next backoff window.
func (n *node) fail(p healthPolicy) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failures++
	d := p.base << uint(n.failures-1)
	if d > p.max || d <= 0 {
		d = p.max
	}
	n.backoffUntil = time.Now().Add(d)
	if !n.down {
		n.down = true
		n.transitions.Add(1)
	}
}

// available reports whether the node should receive new dispatches now. A
// node whose backoff has expired is probed again (and marked up on
// success).
func (n *node) available() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.down || time.Now().After(n.backoffUntil)
}

// snapshot captures the health state for /v1/cluster.
func (n *node) snapshot() NodeStatus {
	n.mu.Lock()
	down := n.down
	failures := n.failures
	backoff := n.backoffUntil
	n.mu.Unlock()
	st := NodeStatus{
		Name:        n.name,
		Up:          !down,
		Failures:    failures,
		Dispatched:  n.dispatched.Load(),
		Completed:   n.completed.Load(),
		Failed:      n.failed.Load(),
		Hedged:      n.hedgedTo.Load(),
		Stolen:      n.stolen.Load(),
		Transitions: n.transitions.Load(),
	}
	if down && !backoff.IsZero() {
		st.BackoffUntil = &backoff
	}
	return st
}

// NodeStatus is one node's entry in the GET /v1/cluster report.
type NodeStatus struct {
	Name         string     `json:"name"`
	Up           bool       `json:"up"`
	Failures     int        `json:"consecutive_failures,omitempty"`
	BackoffUntil *time.Time `json:"backoff_until,omitempty"`
	Dispatched   int64      `json:"shards_dispatched"`
	Completed    int64      `json:"shards_completed"`
	Failed       int64      `json:"shards_failed"`
	Hedged       int64      `json:"shards_hedged"`
	Stolen       int64      `json:"shards_stolen"`
	Transitions  int64      `json:"transitions"`
}
