package cluster

import (
	"fmt"
	"net/http"

	"whatsnext/internal/serve"
)

// handleMetrics renders the coordinator counters in Prometheus text
// exposition format. Per-node series carry a node="..." label so a scrape
// shows exactly which worker is absorbing shards, which is being hedged
// around, and which is down.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	queued := len(c.queue)
	queueCap := cap(c.queue)
	jobsRetained := len(c.jobs)
	submitted := c.seq
	draining := 0
	if c.draining {
		draining = 1
	}
	c.mu.Unlock()

	var jobsDone, jobsFailed, jobsCanceled int64
	var lateDedup int64
	for _, st := range c.list() {
		switch st.State {
		case serve.StateDone:
			jobsDone++
		case serve.StateFailed:
			jobsFailed++
		case serve.StateCanceled:
			jobsCanceled++
		}
	}
	// Duplicates that arrived after a job's dedup snapshot still sit on the
	// retained job; fold them in so the counter never undercounts while a
	// job is retained.
	c.mu.Lock()
	for _, j := range c.jobs {
		j.mu.Lock()
		lateDedup += j.dedupDropped
		j.mu.Unlock()
	}
	c.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("wn_cluster_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", submitted)
	counter("wn_cluster_jobs_rejected_total", "Submissions shed with 429.", c.rejected.Load())
	counter("wn_cluster_jobs_done_total", "Jobs finished successfully.", jobsDone)
	counter("wn_cluster_jobs_failed_total", "Jobs ending in a shard error.", jobsFailed)
	counter("wn_cluster_jobs_canceled_total", "Jobs cancelled by deadline or shutdown.", jobsCanceled)
	counter("wn_cluster_cells_total", "Cells accepted across all jobs.", c.cellsTotal.Load())
	counter("wn_cluster_cache_hits_total", "Cells short-circuited by the coordinator's federated cache.", c.coordCacheHits.Load())
	counter("wn_cluster_cache_peek_hits_total", "Worker cache-peek requests answered from the federated cache.", c.peekHits.Load())
	counter("wn_cluster_cache_peek_misses_total", "Worker cache-peek requests that found nothing.", c.peekMisses.Load())
	counter("wn_cluster_hedges_total", "Hedged shard dispatches (slow primary, duplicate launched).", c.hedges.Load())
	counter("wn_cluster_steals_total", "Shards stolen from a backed-up peer's queue.", c.steals.Load())
	counter("wn_cluster_dedup_dropped_total", "Duplicate cell results discarded (first complete shard wins).",
		c.dedup.dropped.Load()+lateDedup)
	counter("wn_cluster_dedup_mismatch_total", "Duplicate results whose bytes disagreed — determinism violations.",
		c.dedup.mismatch.Load())
	gauge("wn_cluster_queue_depth", "Jobs accepted but not yet running.", int64(queued))
	gauge("wn_cluster_queue_capacity", "Job queue bound.", int64(queueCap))
	gauge("wn_cluster_jobs_retained", "Jobs held for status queries.", int64(jobsRetained))
	gauge("wn_cluster_draining", "1 while shutdown is draining the queue.", int64(draining))
	gauge("wn_cluster_nodes", "Cluster membership size.", int64(len(c.order)))

	labeled := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	labeled("wn_cluster_shards_dispatched_total", "Shards dispatched per node (including hedges).", "counter")
	for _, name := range c.order {
		fmt.Fprintf(w, "wn_cluster_shards_dispatched_total{node=%q} %d\n", name, c.nodes[name].dispatched.Load())
	}
	labeled("wn_cluster_shards_completed_total", "Shards completed per node.", "counter")
	for _, name := range c.order {
		fmt.Fprintf(w, "wn_cluster_shards_completed_total{node=%q} %d\n", name, c.nodes[name].completed.Load())
	}
	labeled("wn_cluster_shards_failed_total", "Shards failed per node.", "counter")
	for _, name := range c.order {
		fmt.Fprintf(w, "wn_cluster_shards_failed_total{node=%q} %d\n", name, c.nodes[name].failed.Load())
	}
	labeled("wn_cluster_shards_hedged_total", "Shards dispatched to a node as hedges of a slow peer.", "counter")
	for _, name := range c.order {
		fmt.Fprintf(w, "wn_cluster_shards_hedged_total{node=%q} %d\n", name, c.nodes[name].hedgedTo.Load())
	}
	labeled("wn_cluster_shards_stolen_total", "Shards a node stole from a peer's queue.", "counter")
	for _, name := range c.order {
		fmt.Fprintf(w, "wn_cluster_shards_stolen_total{node=%q} %d\n", name, c.nodes[name].stolen.Load())
	}
	labeled("wn_cluster_node_up", "1 while the node is accepting dispatches, 0 in backoff.", "gauge")
	for _, name := range c.order {
		up := 0
		if c.nodes[name].available() {
			up = 1
		}
		fmt.Fprintf(w, "wn_cluster_node_up{node=%q} %d\n", name, up)
	}
	labeled("wn_cluster_node_transitions_total", "Up/down health transitions per node.", "counter")
	for _, name := range c.order {
		fmt.Fprintf(w, "wn_cluster_node_transitions_total{node=%q} %d\n", name, c.nodes[name].transitions.Load())
	}
}
