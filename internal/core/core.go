// Package core is the top-level façade of the What's Next reproduction: it
// assembles a simulated energy-harvesting device (CPU, memory, supply,
// forward-progress runtime) and runs compiled kernels on it, one input at a
// time, the way the paper's harness drives its benchmarks.
package core

import (
	"fmt"

	"whatsnext/internal/compiler"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
)

// Processor selects the forward-progress runtime.
type Processor int

const (
	// ProcClank is the checkpoint-based volatile processor (Section V-B).
	ProcClank Processor = iota
	// ProcNVP is the backup-every-cycle non-volatile processor (V-C).
	ProcNVP
	// ProcUndoLog is a volatile processor using undo-log rollback instead
	// of checkpoint-on-violation (an extension beyond the paper).
	ProcUndoLog
)

func (p Processor) String() string {
	switch p {
	case ProcNVP:
		return "nvp"
	case ProcUndoLog:
		return "undolog"
	default:
		return "clank"
	}
}

// Config assembles a device.
type Config struct {
	Device      energy.DeviceConfig
	Mem         mem.Config
	Processor   Processor
	Clank       intermittent.ClankConfig
	NVP         intermittent.NVPConfig
	UndoLog     intermittent.UndoLogConfig
	Memoization bool // enable the 16-entry memo table + zero skipping
}

// DefaultConfig returns the paper-default device: 24 MHz M0+-class core,
// 10 uF capacitor, Clank checkpointing, no memoization.
func DefaultConfig() Config {
	return Config{
		Device:  energy.DefaultDeviceConfig(),
		Mem:     mem.DefaultConfig(),
		Clank:   intermittent.DefaultClankConfig(),
		NVP:     intermittent.DefaultNVPConfig(),
		UndoLog: intermittent.DefaultUndoLogConfig(),
	}
}

// System is one simulated device with a loaded kernel.
type System struct {
	Config Config
	CPU    *cpu.CPU
	Mem    *mem.Memory
	Supply *energy.Supply
	Runner *intermittent.Runner
	Policy intermittent.Policy

	compiled *compiler.Compiled
}

// NewSystem builds a device powered by the given harvest trace.
func NewSystem(cfg Config, trace *energy.Trace) *System {
	m := mem.New(cfg.Mem)
	c := cpu.New(m)
	if cfg.Memoization {
		c.Memo = cpu.NewMemoTable()
	}
	s := energy.NewSupply(cfg.Device, trace)
	var p intermittent.Policy
	switch cfg.Processor {
	case ProcNVP:
		p = intermittent.NewNVP(cfg.NVP)
	case ProcUndoLog:
		p = intermittent.NewUndoLog(cfg.UndoLog)
	default:
		p = intermittent.NewClank(cfg.Clank)
	}
	sys := &System{Config: cfg, CPU: c, Mem: m, Supply: s, Policy: p}
	sys.Runner = intermittent.NewRunner(c, m, s, p)
	return sys
}

// Load installs a compiled kernel's program image.
func (s *System) Load(c *compiler.Compiled) error {
	if err := s.Mem.LoadProgram(c.Program.Image); err != nil {
		return err
	}
	s.CPU.InvalidateDecodeCache()
	s.CPU.SetAmenablePCs(c.Program.Amenable)
	s.compiled = c
	return nil
}

// RunInput processes one input sample end to end: data memory is cleared,
// inputs are installed in the kernel's layout, the core is reset, and the
// program runs to HALT (riding through outages, honoring skim points).
func (s *System) RunInput(inputs map[string][]int64) (intermittent.Result, error) {
	if s.compiled == nil {
		return intermittent.Result{}, fmt.Errorf("core: no kernel loaded")
	}
	s.Mem.ZeroData()
	if err := s.compiled.InstallData(s.Mem, inputs); err != nil {
		return intermittent.Result{}, err
	}
	s.CPU.Reset()
	s.CPU.DisarmSkim()
	if s.CPU.Memo != nil {
		s.CPU.Memo.Invalidate()
	}
	// Re-arm the policy for the new input (fresh checkpoint at entry).
	s.Policy.Attach(s.Runner)
	return s.Runner.RunToHalt()
}

// Output extracts the named output array in display-domain values.
func (s *System) Output(name string) ([]float64, error) {
	if s.compiled == nil {
		return nil, fmt.Errorf("core: no kernel loaded")
	}
	return s.compiled.Layout.OutputValues(s.Mem, name)
}

// ContinuousTrace returns a trace with ample constant power: the device
// never browns out, which is how the runtime-quality curves of Figure 9 are
// collected.
func ContinuousTrace() *energy.Trace {
	return energy.ConstantTrace(1.0, 1000, 3600)
}
