package core

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/energy"
)

func sizedKernel(n int64) *compiler.Kernel {
	return &compiler.Kernel{
		Name: "scale",
		Arrays: []compiler.Array{
			{Name: "A", ElemBits: 16, Len: int(n), Pragma: compiler.PragmaASP, SubwordBits: 8},
			{Name: "X", ElemBits: 32, Len: int(n), Output: true},
		},
		Body: []compiler.Stmt{compiler.Loop{Var: "i", N: n, Body: []compiler.Stmt{
			compiler.Assign{Array: "X", Index: compiler.LinVar("i", 1, 0),
				Value: compiler.Bin{Op: compiler.OpMul,
					A: compiler.Const{V: 3},
					B: compiler.Load{Array: "A", Index: compiler.LinVar("i", 1, 0)}}},
		}}},
	}
}

func smallKernel() *compiler.Kernel { return sizedKernel(64) }

func sizedInputs(n int) map[string][]int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i * 1021 % 65536)
	}
	return map[string][]int64{"A": a}
}

func inputs() map[string][]int64 { return sizedInputs(64) }

func TestSystemEndToEnd(t *testing.T) {
	c, err := compiler.Compile(smallKernel(), compiler.Options{Mode: compiler.ModeSWP})
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []Processor{ProcClank, ProcNVP} {
		cfg := DefaultConfig()
		cfg.Processor = proc
		sys := NewSystem(cfg, ContinuousTrace())
		if err := sys.Load(c); err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunInput(inputs())
		if err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		if !res.Halted {
			t.Fatalf("%v: not halted", proc)
		}
		out, err := sys.Output("X")
		if err != nil {
			t.Fatal(err)
		}
		in := inputs()["A"]
		for i := range out {
			if out[i] != float64(3*in[i]) {
				t.Fatalf("%v: X[%d] = %v, want %v", proc, i, out[i], 3*in[i])
			}
		}
	}
}

func TestSystemRequiresLoad(t *testing.T) {
	sys := NewSystem(DefaultConfig(), ContinuousTrace())
	if _, err := sys.RunInput(nil); err == nil {
		t.Fatal("running without a kernel must fail")
	}
	if _, err := sys.Output("X"); err == nil {
		t.Fatal("output without a kernel must fail")
	}
}

func TestSystemRejectsUnknownInput(t *testing.T) {
	c, err := compiler.Compile(smallKernel(), compiler.Options{Mode: compiler.ModePrecise})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(DefaultConfig(), ContinuousTrace())
	if err := sys.Load(c); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunInput(map[string][]int64{"NOPE": {1}}); err == nil {
		t.Fatal("unknown input array must fail")
	}
}

func TestRepeatedInputsAreIndependent(t *testing.T) {
	c, err := compiler.Compile(smallKernel(), compiler.Options{Mode: compiler.ModeSWP})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(DefaultConfig(), energy.SyntheticWiFiTrace(5, energy.DefaultTraceConfig()))
	if err := sys.Load(c); err != nil {
		t.Fatal(err)
	}
	// Process the same input twice on the same device; the second run must
	// match the first bit for bit (data zeroed, skim disarmed, fresh
	// checkpoint) even though the supply state differs.
	var outs [2][]float64
	for round := 0; round < 2; round++ {
		if _, err := sys.RunInput(inputs()); err != nil {
			t.Fatal(err)
		}
		out, err := sys.Output("X")
		if err != nil {
			t.Fatal(err)
		}
		outs[round] = out
	}
	// Both runs rode different outage patterns, so approximate results can
	// differ — but each must be either exact or a valid MS-pass prefix;
	// with value 3*a and 8-bit subwords the MS-pass value is 3*(a&0xFF00).
	in := inputs()["A"]
	for round, out := range outs {
		for i := range out {
			exact := float64(3 * in[i])
			msOnly := float64(3 * (in[i] &^ 0xFF))
			if out[i] != exact && out[i] != msOnly {
				t.Fatalf("round %d: X[%d] = %v, want %v or %v", round, i, out[i], exact, msOnly)
			}
		}
	}
}

func TestMemoizationFlag(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Memoization = true
	sys := NewSystem(cfg, ContinuousTrace())
	if sys.CPU.Memo == nil {
		t.Fatal("memoization flag should install the memo table")
	}
	if NewSystem(DefaultConfig(), ContinuousTrace()).CPU.Memo != nil {
		t.Fatal("memoization defaults to off, as in the paper")
	}
}

func TestProcessorString(t *testing.T) {
	if ProcClank.String() != "clank" || ProcNVP.String() != "nvp" {
		t.Fatal("processor names")
	}
}

// TestMemoizationConsistentUnderOutages: the memo table is volatile and is
// invalidated at every outage; results must nevertheless match the
// memo-less run exactly (memoization is a pure timing optimization).
func TestMemoizationConsistentUnderOutages(t *testing.T) {
	const n = 4096
	c, err := compiler.Compile(sizedKernel(n), compiler.Options{Mode: compiler.ModeSWP, NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	outs := map[bool][]float64{}
	for _, memo := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Memoization = memo
		sys := NewSystem(cfg, energy.SyntheticWiFiTrace(21, energy.DefaultTraceConfig()))
		if err := sys.Load(c); err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunInput(sizedInputs(n))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outages == 0 {
			t.Fatal("expected outages")
		}
		out, err := sys.Output("X")
		if err != nil {
			t.Fatal(err)
		}
		outs[memo] = out
	}
	for i := range outs[false] {
		if outs[false][i] != outs[true][i] {
			t.Fatalf("memoization changed results at %d: %v vs %v", i, outs[false][i], outs[true][i])
		}
	}
}

// TestUndoLogSystemEndToEnd drives the undo-log processor through the
// façade like the other two runtimes.
func TestUndoLogSystemEndToEnd(t *testing.T) {
	const n = 4096
	c, err := compiler.Compile(sizedKernel(n), compiler.Options{Mode: compiler.ModeSWP, NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Processor = ProcUndoLog
	sys := NewSystem(cfg, energy.SyntheticWiFiTrace(21, energy.DefaultTraceConfig()))
	if err := sys.Load(c); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunInput(sizedInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Outages == 0 || res.Checkpoints == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	out, err := sys.Output("X")
	if err != nil {
		t.Fatal(err)
	}
	in := sizedInputs(n)["A"]
	for i := range out {
		if out[i] != float64(3*in[i]) {
			t.Fatalf("X[%d] = %v, want %v", i, out[i], 3*in[i])
		}
	}
}
