package compiler

import (
	"fmt"
	"sort"

	"whatsnext/internal/isa"
)

// codegen lowers IR statements to assembly text. Array accesses use
// strength-reduced pointer registers: one register per unique (array, index
// expression) pair per segment, incremented at loop boundaries instead of
// recomputing addresses with multiplies.
type codegen struct {
	e      *emitter
	k      *Kernel
	layout *Layout
	ra     *regalloc
	mode   Mode

	ptrs     map[string]*ptrEntry
	ptrOrder []string
	endLabel string
}

type ptrEntry struct {
	reg       isa.Reg
	lin       Lin
	stepBytes int64  // bytes per index unit
	base      uint32 // address at all-zero loop variables
}

func rowKey(array string, lin Lin) string { return "a|" + array + "|" + lin.key() }
func packKey(array string, plane int, lin Lin) string {
	return fmt.Sprintf("p|%s|%d|%s", array, plane, lin.key())
}

// newCodegen builds a generator for one kernel.
func newCodegen(e *emitter, k *Kernel, layout *Layout, mode Mode) *codegen {
	return &codegen{e: e, k: k, layout: layout, ra: &regalloc{}, mode: mode}
}

// loadConst emits code materializing a 32-bit constant.
func (cg *codegen) loadConst(r isa.Reg, v uint32) {
	cg.e.emitf("MOVI %s, #%d", r, v&0xFFFF)
	if v>>16 != 0 {
		cg.e.emitf("MOVTI %s, #%d", r, v>>16)
	}
}

// addImm adds a signed delta to a register, routing through a temporary for
// deltas outside the 16-bit immediate range.
func (cg *codegen) addImm(r isa.Reg, delta int64) error {
	if delta == 0 {
		return nil
	}
	if delta >= -32768 && delta <= 32767 {
		cg.e.emitf("ADDI %s, %s, #%d", r, r, delta)
		return nil
	}
	t, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	defer cg.ra.release(t)
	if delta > 0 {
		cg.loadConst(t, uint32(delta))
		cg.e.emitf("ADD %s, %s, %s", r, r, t)
	} else {
		cg.loadConst(t, uint32(-delta))
		cg.e.emitf("SUB %s, %s, %s", r, r, t)
	}
	return nil
}

// --- access collection ---

type accessInfo struct {
	lin       Lin
	stepBytes int64
	base      uint32
}

func (cg *codegen) collectStmts(stmts []Stmt, acc map[string]accessInfo) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case Loop:
			if err := cg.collectStmts(st.Body, acc); err != nil {
				return err
			}
		case Assign:
			if err := cg.noteRow(acc, st.Array, st.Index); err != nil {
				return err
			}
			if err := cg.collectExpr(st.Value, acc); err != nil {
				return err
			}
		case PackedAssign:
			if err := cg.notePacked(acc, st.Array, st.Plane, st.Word); err != nil {
				return err
			}
			if err := cg.collectExpr(st.Value, acc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("compiler: codegen: unknown statement %T", s)
		}
	}
	return nil
}

func (cg *codegen) collectExpr(e Expr, acc map[string]accessInfo) error {
	switch ex := e.(type) {
	case Const:
		return nil
	case Load:
		return cg.noteRow(acc, ex.Array, ex.Index)
	case Bin:
		if err := cg.collectExpr(ex.A, acc); err != nil {
			return err
		}
		return cg.collectExpr(ex.B, acc)
	case Reduce:
		return cg.collectExpr(ex.Body, acc)
	case ASPMul:
		if err := cg.noteRow(acc, ex.Array, ex.Index); err != nil {
			return err
		}
		return cg.collectExpr(ex.Other, acc)
	case ASPLoad:
		return cg.noteRow(acc, ex.Array, ex.Index)
	case ASVBin:
		if err := cg.collectExpr(ex.A, acc); err != nil {
			return err
		}
		return cg.collectExpr(ex.B, acc)
	case PackedLoad:
		return cg.notePacked(acc, ex.Array, ex.Plane, ex.Word)
	case VecReduce:
		return cg.notePacked(acc, ex.Array, ex.Plane, ex.WordStart)
	case ASPDotPacked:
		if err := cg.notePacked(acc, ex.Array, ex.Plane, ex.Word); err != nil {
			return err
		}
		return cg.noteRow(acc, ex.OtherArray, ex.OtherIndex)
	default:
		return fmt.Errorf("compiler: codegen: unknown expression %T", e)
	}
}

func (cg *codegen) noteRow(acc map[string]accessInfo, array string, lin Lin) error {
	al, err := cg.layout.Of(array)
	if err != nil {
		return err
	}
	if al.Planar {
		return fmt.Errorf("compiler: scalar access to planar array %q", array)
	}
	acc[rowKey(array, lin)] = accessInfo{lin: lin, stepBytes: int64(al.ElemBytes()), base: al.Base}
	return nil
}

func (cg *codegen) notePacked(acc map[string]accessInfo, array string, plane int, lin Lin) error {
	al, err := cg.layout.Of(array)
	if err != nil {
		return err
	}
	if !al.Planar {
		return fmt.Errorf("compiler: packed access to row-major array %q", array)
	}
	if plane < 0 || plane >= al.NumPlanes {
		return fmt.Errorf("compiler: plane %d out of range for %q", plane, array)
	}
	acc[packKey(array, plane, lin)] = accessInfo{lin: lin, stepBytes: 4, base: al.PlaneBase(plane)}
	return nil
}

// openSegment allocates and initializes pointer registers for a statement
// region (one subword pass, or the whole kernel when precise).
func (cg *codegen) openSegment(stmts []Stmt) error {
	acc := map[string]accessInfo{}
	if err := cg.collectStmts(stmts, acc); err != nil {
		return err
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cg.ptrs = make(map[string]*ptrEntry, len(keys))
	cg.ptrOrder = keys
	for _, key := range keys {
		info := acc[key]
		r, err := cg.ra.alloc()
		if err != nil {
			return fmt.Errorf("%v (while allocating %d pointer registers)", err, len(keys))
		}
		cg.ptrs[key] = &ptrEntry{reg: r, lin: info.lin, stepBytes: info.stepBytes, base: info.base}
		cg.loadConst(r, info.base+uint32(info.stepBytes*info.lin.Const))
	}
	return nil
}

func (cg *codegen) closeSegment() {
	for _, key := range cg.ptrOrder {
		cg.ra.release(cg.ptrs[key].reg)
	}
	cg.ptrs, cg.ptrOrder = nil, nil
}

func (cg *codegen) ptr(key string) (*ptrEntry, error) {
	p, ok := cg.ptrs[key]
	if !ok {
		return nil, fmt.Errorf("compiler: internal: no pointer for %s", key)
	}
	return p, nil
}

// genLoop emits a counted do-while loop over v in [0,n), maintaining every
// pointer whose index depends on v.
func (cg *codegen) genLoop(v string, n int64, body func() error) error {
	if n <= 0 {
		return fmt.Errorf("compiler: loop %q trip count %d", v, n)
	}
	ctr, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	cg.loadConst(ctr, uint32(n))
	head := cg.e.fresh("L" + v)
	cg.e.placeLabel(head)
	if err := body(); err != nil {
		return err
	}
	for _, key := range cg.ptrOrder {
		p := cg.ptrs[key]
		if c := p.lin.Coeff[v]; c != 0 {
			if err := cg.addImm(p.reg, c*p.stepBytes); err != nil {
				return err
			}
		}
	}
	// Down-counted loop with a flag-setting decrement, the M0+ SUBS idiom.
	cg.e.emitf("SUBIS %s, %s, #1", ctr, ctr)
	cg.e.emitf("BNE %s", head)
	for _, key := range cg.ptrOrder {
		p := cg.ptrs[key]
		if c := p.lin.Coeff[v]; c != 0 {
			if err := cg.addImm(p.reg, -n*c*p.stepBytes); err != nil {
				return err
			}
		}
	}
	cg.ra.release(ctr)
	return nil
}

func (cg *codegen) genStmts(stmts []Stmt) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case Loop:
			if err := cg.genLoop(st.Var, st.N, func() error { return cg.genStmts(st.Body) }); err != nil {
				return err
			}
		case Assign:
			if err := cg.genAssign(st); err != nil {
				return err
			}
		case PackedAssign:
			if err := cg.genPackedAssign(st); err != nil {
				return err
			}
		default:
			return fmt.Errorf("compiler: codegen: unknown statement %T", s)
		}
	}
	return nil
}

func (cg *codegen) arrayPragma(name string) PragmaKind {
	if a, ok := cg.k.ArrayByName(name); ok {
		return a.Pragma
	}
	return PragmaNone
}

// loadsPragma reports whether e directly loads an array with the given
// pragma (used for Table I amenable-instruction marking on precise builds).
func (cg *codegen) loadsPragma(e Expr, kind PragmaKind) bool {
	ld, ok := e.(Load)
	return ok && cg.arrayPragma(ld.Array) == kind
}

func bitwiseOp(op BinOp) string {
	switch op {
	case OpBitAnd:
		return "AND"
	case OpBitOr:
		return "ORR"
	default:
		return "EOR"
	}
}

func storeOp(bits int) string {
	switch bits {
	case 8:
		return "STRB"
	case 16:
		return "STRH"
	default:
		return "STR"
	}
}

func loadOp(bits int) string {
	switch bits {
	case 8:
		return "LDRB"
	case 16:
		return "LDRH"
	default:
		return "LDR"
	}
}

func (cg *codegen) genAssign(a Assign) error {
	v, err := cg.eval(a.Value)
	if err != nil {
		return err
	}
	p, err := cg.ptr(rowKey(a.Array, a.Index))
	if err != nil {
		return err
	}
	al := cg.layout.Arrays[a.Array]
	if a.Accumulate {
		t, err := cg.ra.alloc()
		if err != nil {
			return err
		}
		cg.e.emitf("%s %s, [%s, #0]", loadOp(al.Array.ElemBits), t, p.reg)
		cg.e.emitf("ADD %s, %s, %s", v, v, t)
		cg.ra.release(t)
	}
	if cg.mode == ModePrecise && cg.arrayPragma(a.Array) == PragmaASV {
		cg.e.amenable()
	}
	cg.e.emitf("%s %s, [%s, #0]", storeOp(al.Array.ElemBits), v, p.reg)
	cg.ra.release(v)
	return nil
}

func (cg *codegen) genPackedAssign(a PackedAssign) error {
	v, err := cg.eval(a.Value)
	if err != nil {
		return err
	}
	p, err := cg.ptr(packKey(a.Array, a.Plane, a.Word))
	if err != nil {
		return err
	}
	cg.e.amenable()
	cg.e.emitf("STR %s, [%s, #0]", v, p.reg)
	cg.ra.release(v)
	return nil
}

// eval generates code computing e into a freshly allocated register.
func (cg *codegen) eval(e Expr) (isa.Reg, error) {
	switch ex := e.(type) {
	case Const:
		r, err := cg.ra.alloc()
		if err != nil {
			return 0, err
		}
		cg.loadConst(r, uint32(ex.V))
		return r, nil

	case Load:
		r, err := cg.ra.alloc()
		if err != nil {
			return 0, err
		}
		p, err := cg.ptr(rowKey(ex.Array, ex.Index))
		if err != nil {
			return 0, err
		}
		al := cg.layout.Arrays[ex.Array]
		if cg.mode == ModePrecise && cg.arrayPragma(ex.Array) == PragmaASV {
			cg.e.amenable()
		}
		cg.e.emitf("%s %s, [%s, #0]", loadOp(al.Array.ElemBits), r, p.reg)
		return r, nil

	case Bin:
		return cg.evalBin(ex)

	case Reduce:
		acc, err := cg.ra.alloc()
		if err != nil {
			return 0, err
		}
		// Both folds start from zero: summation trivially, and the unsigned
		// maximum because every element value is non-negative.
		cg.e.emitf("MOVI %s, #0", acc)
		err = cg.genLoop(ex.Var, ex.N, func() error {
			v, err := cg.eval(ex.Body)
			if err != nil {
				return err
			}
			if cg.mode == ModePrecise && cg.loadsPragma(ex.Body, PragmaASV) {
				cg.e.amenable()
			}
			switch ex.Op {
			case OpAdd:
				cg.e.emitf("ADD %s, %s, %s", acc, acc, v)
			case OpMax:
				cg.emitMax(acc, v)
			default:
				return fmt.Errorf("compiler: reduce op %d unsupported", ex.Op)
			}
			cg.ra.release(v)
			return nil
		})
		if err != nil {
			return 0, err
		}
		return acc, nil

	case ASPMul:
		return cg.evalASPMul(ex)

	case ASPLoad:
		t, err := cg.ra.alloc()
		if err != nil {
			return 0, err
		}
		p, err := cg.ptr(rowKey(ex.Array, ex.Index))
		if err != nil {
			return 0, err
		}
		al := cg.layout.Arrays[ex.Array]
		if err := cg.emitSubwordLoad(t, p.reg, al, ex.Start, ex.Width); err != nil {
			return 0, err
		}
		if ex.Start > 0 {
			cg.e.emitf("LSLI %s, %s, #%d", t, t, ex.Start)
		}
		return t, nil

	case ASVBin:
		a, err := cg.eval(ex.A)
		if err != nil {
			return 0, err
		}
		b, err := cg.eval(ex.B)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case OpAdd:
			cg.e.amenable()
			cg.e.emitf("ADD_ASV%d %s, %s", ex.LaneBits, a, b)
		case OpSub:
			cg.e.amenable()
			cg.e.emitf("SUB_ASV%d %s, %s", ex.LaneBits, a, b)
		case OpBitAnd, OpBitOr, OpBitXor:
			// Logical operations are lane-exact with the ordinary
			// full-width instruction (Section III-B): no new hardware.
			cg.e.amenable()
			cg.e.emitf("%s %s, %s, %s", bitwiseOp(ex.Op), a, a, b)
		default:
			return 0, fmt.Errorf("compiler: ASV op must be add, sub or bitwise")
		}
		cg.ra.release(b)
		return a, nil

	case PackedLoad:
		r, err := cg.ra.alloc()
		if err != nil {
			return 0, err
		}
		p, err := cg.ptr(packKey(ex.Array, ex.Plane, ex.Word))
		if err != nil {
			return 0, err
		}
		cg.e.amenable()
		cg.e.emitf("LDR %s, [%s, #0]", r, p.reg)
		return r, nil

	case VecReduce:
		return cg.evalVecReduce(ex)

	case ASPDotPacked:
		return cg.evalASPDot(ex)

	default:
		return 0, fmt.Errorf("compiler: codegen: unknown expression %T", e)
	}
}

func (cg *codegen) evalBin(ex Bin) (isa.Reg, error) {
	a, err := cg.eval(ex.A)
	if err != nil {
		return 0, err
	}
	switch ex.Op {
	case OpShr, OpShl:
		k, ok := ex.B.(Const)
		if !ok {
			return 0, fmt.Errorf("compiler: shift amount must be constant")
		}
		mn := "LSRI"
		if ex.Op == OpShl {
			mn = "LSLI"
		}
		if k.V != 0 {
			cg.e.emitf("%s %s, %s, #%d", mn, a, a, k.V)
		}
		return a, nil
	}
	b, err := cg.eval(ex.B)
	if err != nil {
		return 0, err
	}
	switch ex.Op {
	case OpAdd:
		if cg.mode == ModePrecise && (cg.loadsPragma(ex.A, PragmaASV) || cg.loadsPragma(ex.B, PragmaASV)) {
			cg.e.amenable()
		}
		cg.e.emitf("ADD %s, %s, %s", a, a, b)
	case OpSub:
		if cg.mode == ModePrecise && (cg.loadsPragma(ex.A, PragmaASV) || cg.loadsPragma(ex.B, PragmaASV)) {
			cg.e.amenable()
		}
		cg.e.emitf("SUB %s, %s, %s", a, a, b)
	case OpMul:
		if cg.mode == ModePrecise && (cg.loadsPragma(ex.A, PragmaASP) || cg.loadsPragma(ex.B, PragmaASP)) {
			cg.e.amenable()
		}
		cg.e.emitf("MUL %s, %s, %s", a, a, b)
	case OpBitAnd, OpBitOr, OpBitXor:
		if cg.mode == ModePrecise && (cg.loadsPragma(ex.A, PragmaASV) || cg.loadsPragma(ex.B, PragmaASV)) {
			cg.e.amenable()
		}
		cg.e.emitf("%s %s, %s, %s", bitwiseOp(ex.Op), a, a, b)
	case OpMax:
		cg.emitMax(a, b)
	default:
		return 0, fmt.Errorf("compiler: unknown binary op %d", ex.Op)
	}
	cg.ra.release(b)
	return a, nil
}

// emitMax folds the unsigned maximum of v into acc (the M0+ compare-and-
// conditionally-move idiom; BHS is the unsigned >= branch).
func (cg *codegen) emitMax(acc, v isa.Reg) {
	skip := cg.e.fresh("Lmax")
	cg.e.emitf("CMP %s, %s", acc, v)
	cg.e.emitf("BHS %s", skip)
	cg.e.emitf("MOV %s, %s", acc, v)
	cg.e.placeLabel(skip)
}

// evalASPMul lowers an anytime multiply: extract the subword of the
// annotated operand, then MUL_ASP it against the full-precision operand.
func (cg *codegen) evalASPMul(ex ASPMul) (isa.Reg, error) {
	other, err := cg.eval(ex.Other)
	if err != nil {
		return 0, err
	}
	t, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	p, err := cg.ptr(rowKey(ex.Array, ex.Index))
	if err != nil {
		return 0, err
	}
	al := cg.layout.Arrays[ex.Array]
	if err := cg.emitSubwordLoad(t, p.reg, al, ex.Start, ex.Width); err != nil {
		return 0, err
	}
	cg.e.amenable()
	if ex.Start%ex.Bits == 0 {
		cg.e.emitf("MUL_ASP%d %s, %s, #%d", ex.Bits, other, t, ex.Start/ex.Bits)
	} else {
		// The MS-aligned span is not at a multiple of the subword size
		// (value width not divisible by it); shift the product into place.
		cg.e.emitf("MUL_ASP%d %s, %s, #0", ex.Bits, other, t)
		cg.e.emitf("LSLI %s, %s, #%d", other, other, ex.Start)
	}
	cg.ra.release(t)
	return other, nil
}

// emitSubwordLoad loads the subword at bit position start (width bits wide)
// of the element at [ptr] into t. Byte-aligned 8-bit subwords use a direct
// byte load (the paper's LDRB); nibble-aligned 4-bit subwords load the
// containing byte and shift/mask; anything else loads the element and
// extracts with shift+mask.
func (cg *codegen) emitSubwordLoad(t, ptr isa.Reg, al ArrayLayout, start, width int) error {
	switch {
	case width == 8 && start%8 == 0:
		cg.e.emitf("LDRB %s, [%s, #%d]", t, ptr, start/8)
	case width == 4 && start%4 == 0:
		cg.e.emitf("LDRB %s, [%s, #%d]", t, ptr, start/8)
		if start%8 == 4 {
			cg.e.emitf("LSRI %s, %s, #4", t, t)
		} else {
			cg.e.emitf("ANDI %s, %s, #15", t, t)
		}
	default:
		cg.e.emitf("%s %s, [%s, #0]", loadOp(al.Array.ElemBits), t, ptr)
		if start > 0 {
			cg.e.emitf("LSRI %s, %s, #%d", t, t, start)
		}
		cg.e.emitf("ANDI %s, %s, #%d", t, t, (1<<width)-1)
	}
	return nil
}

// evalVecReduce emits lane-parallel accumulation over packed plane words
// with periodic horizontal folds, yielding the plane's scalar contribution.
func (cg *codegen) evalVecReduce(ex VecReduce) (isa.Reg, error) {
	p, err := cg.ptr(packKey(ex.Array, ex.Plane, ex.WordStart))
	if err != nil {
		return 0, err
	}
	chunk := ex.ChunkWords
	if chunk <= 0 || chunk > ex.NumWords {
		chunk = ex.NumWords
	}
	if ex.NumWords%chunk != 0 {
		return 0, fmt.Errorf("compiler: vector reduce: chunk %d does not divide %d words", chunk, ex.NumWords)
	}
	nChunks := ex.NumWords / chunk
	lanes := 32 / ex.LaneBits
	mask := (1 << ex.LaneBits) - 1

	res, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	cg.e.emitf("MOVI %s, #0", res)
	vacc, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	t, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}

	oneChunk := func() error {
		cg.e.emitf("MOVI %s, #0", vacc)
		err := cg.genInnerCount(chunk, func() error {
			cg.e.amenable()
			cg.e.emitf("LDR %s, [%s, #0]", t, p.reg)
			cg.e.amenable()
			cg.e.emitf("ADD_ASV%d %s, %s", ex.LaneBits, vacc, t)
			cg.e.emitf("ADDI %s, %s, #4", p.reg, p.reg)
			return nil
		})
		if err != nil {
			return err
		}
		// Horizontal fold: add each lane into the scalar result.
		for l := 0; l < lanes; l++ {
			if sh := l * ex.LaneBits; sh > 0 {
				cg.e.emitf("LSRI %s, %s, #%d", t, vacc, sh)
			} else {
				cg.e.emitf("MOV %s, %s", t, vacc)
			}
			cg.e.emitf("ANDI %s, %s, #%d", t, t, mask)
			cg.e.emitf("ADD %s, %s, %s", res, res, t)
		}
		return nil
	}

	if nChunks == 1 {
		if err := oneChunk(); err != nil {
			return 0, err
		}
	} else {
		if err := cg.genInnerCount(nChunks, oneChunk); err != nil {
			return 0, err
		}
	}
	// Restore the plane pointer for the enclosing loop's own bookkeeping.
	if err := cg.addImm(p.reg, -ex.NumWords*4); err != nil {
		return 0, err
	}
	if ex.Shift > 0 {
		cg.e.emitf("LSLI %s, %s, #%d", res, res, ex.Shift)
	}
	cg.ra.release(t)
	cg.ra.release(vacc)
	return res, nil
}

// genInnerCount emits a plain counted loop without pointer maintenance
// (bodies advance pointers themselves).
func (cg *codegen) genInnerCount(n int64, body func() error) error {
	if n == 1 {
		return body()
	}
	ctr, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	cg.loadConst(ctr, uint32(n))
	head := cg.e.fresh("Lv")
	cg.e.placeLabel(head)
	if err := body(); err != nil {
		return err
	}
	cg.e.emitf("SUBIS %s, %s, #1", ctr, ctr)
	cg.e.emitf("BNE %s", head)
	cg.ra.release(ctr)
	return nil
}

// evalASPDot lowers the Figure 12 combination: one vectorized load fetches
// the subwords of several consecutive elements, each multiplied against its
// full-precision companion via MUL_ASP.
func (cg *codegen) evalASPDot(ex ASPDotPacked) (isa.Reg, error) {
	pp, err := cg.ptr(packKey(ex.Array, ex.Plane, ex.Word))
	if err != nil {
		return 0, err
	}
	op, err := cg.ptr(rowKey(ex.OtherArray, ex.OtherIndex))
	if err != nil {
		return 0, err
	}
	alA := cg.layout.Arrays[ex.Array]
	alO := cg.layout.Arrays[ex.OtherArray]
	lanes := alA.LanesPerWord()
	mask := (1 << alA.LaneBits) - 1

	packed, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	cg.e.amenable()
	cg.e.emitf("LDR %s, [%s, #0]", packed, pp.reg)
	res, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	cg.e.emitf("MOVI %s, #0", res)
	t, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	o, err := cg.ra.alloc()
	if err != nil {
		return 0, err
	}
	for l := 0; l < lanes; l++ {
		if sh := l * alA.LaneBits; sh > 0 {
			cg.e.emitf("LSRI %s, %s, #%d", t, packed, sh)
		} else {
			cg.e.emitf("MOV %s, %s", t, packed)
		}
		cg.e.emitf("ANDI %s, %s, #%d", t, t, mask)
		off := int64(l) * ex.OtherStride * int64(alO.ElemBytes())
		cg.e.emitf("%s %s, [%s, #%d]", loadOp(alO.Array.ElemBits), o, op.reg, off)
		cg.e.amenable()
		cg.e.emitf("MUL_ASP%d %s, %s, #%d", ex.Bits, o, t, ex.Sub)
		cg.e.emitf("ADD %s, %s, %s", res, res, o)
	}
	cg.ra.release(o)
	cg.ra.release(t)
	cg.ra.release(packed)
	return res, nil
}
