package compiler

import (
	"strings"
	"testing"
)

func TestDumpSourceKernel(t *testing.T) {
	out := Dump(aspKernel(8))
	for _, want := range []string{
		"kernel asp",
		"#pragma asp input(A, 8)",
		"uint16 A[8]",
		"for (i = 0; i < 8; i++)",
		"X[i] = (F[i] * A[i]);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpTransformedKernel(t *testing.T) {
	segs, _, err := swpTransform(aspKernel(8), false)
	if err != nil {
		t.Fatal(err)
	}
	k := aspKernel(8)
	k.Body = segs[0]
	out := Dump(k)
	if !strings.Contains(out, "*asp8 sub1(A[i])") {
		t.Errorf("dump should show the anytime multiply at the MS subword:\n%s", out)
	}
	if !strings.Contains(out, "X[i] +=") {
		t.Errorf("fissioned pass should accumulate:\n%s", out)
	}
}

func TestDumpASVKernel(t *testing.T) {
	k := bitwiseKernel(OpBitXor, 8, false)
	segs, aug, _, err := swvTransform(k)
	if err != nil {
		t.Fatal(err)
	}
	aug2 := *aug
	aug2.Body = segs[0]
	out := Dump(&aug2)
	for _, want := range []string{"#pragma asv input(A, 8)", ".plane0[", "^_asv"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpLinForms(t *testing.T) {
	if got := dumpLin(LinConst(0)); got != "0" {
		t.Errorf("const lin = %q", got)
	}
	if got := dumpLin(LinSum(LinVar("i", 3, 2), LinVar("j", 1, 0))); got != "3*i+j+2" {
		t.Errorf("lin = %q", got)
	}
}
