package compiler

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"whatsnext/internal/mem"
)

// --- Lin helpers ---

func TestLinBuilders(t *testing.T) {
	l := LinSum(LinVar("i", 3, 1), LinVar("j", 2, 0), LinConst(5))
	if l.Const != 6 || l.Coeff["i"] != 3 || l.Coeff["j"] != 2 {
		t.Fatalf("LinSum wrong: %+v", l)
	}
	vs := l.vars()
	if len(vs) != 2 || vs[0] != "i" || vs[1] != "j" {
		t.Fatalf("vars = %v", vs)
	}
	if LinVar("i", 1, 0).key() == LinVar("j", 1, 0).key() {
		t.Fatal("distinct lins must have distinct keys")
	}
	if LinSum(LinVar("i", 1, 2)).key() != LinSum(LinConst(2), LinVar("i", 1, 0)).key() {
		t.Fatal("equal lins must share a key")
	}
}

// --- subword spans ---

func TestSubwordSpansPartition(t *testing.T) {
	for _, vb := range []int{8, 12, 16, 20, 24, 31, 32} {
		for _, b := range []int{1, 2, 3, 4, 8} {
			spans := subwordSpans(vb, b)
			// Spans tile [0, vb) exactly, LS first, MS-aligned.
			pos := 0
			for i, sp := range spans {
				if sp.Start != pos {
					t.Fatalf("vb=%d b=%d span %d starts at %d, want %d", vb, b, i, sp.Start, pos)
				}
				if sp.Width <= 0 || sp.Width > b {
					t.Fatalf("vb=%d b=%d span %d width %d", vb, b, i, sp.Width)
				}
				pos += sp.Width
			}
			if pos != vb {
				t.Fatalf("vb=%d b=%d spans cover %d bits", vb, b, pos)
			}
			// All spans except the least significant are full width, so the
			// first anytime pass always processes b real bits.
			for i := 1; i < len(spans); i++ {
				if spans[i].Width != b {
					t.Fatalf("vb=%d b=%d non-LS span %d has width %d", vb, b, i, spans[i].Width)
				}
			}
		}
	}
}

// --- layout ---

func testKernelArrays() *Kernel {
	return &Kernel{
		Name: "t",
		Arrays: []Array{
			{Name: "P", ElemBits: 16, Len: 10},
			{Name: "V", ElemBits: 32, Len: 16, Pragma: PragmaASV, SubwordBits: 8, Provisioned: true},
			{Name: "U", ElemBits: 32, Len: 16, Pragma: PragmaASV, SubwordBits: 8},
		},
	}
}

func TestLayoutAddressing(t *testing.T) {
	k := testKernelArrays()
	l, err := BuildLayout(k, ModeSWV, false)
	if err != nil {
		t.Fatal(err)
	}
	p := l.Arrays["P"]
	if p.Planar || p.Base != mem.DataBase || p.TotalBytes != 20 {
		t.Fatalf("row-major layout wrong: %+v", p)
	}
	v := l.Arrays["V"]
	if !v.Planar || v.LaneBits != 16 || v.NumPlanes != 4 || v.LanesPerWord() != 2 {
		t.Fatalf("provisioned planar layout wrong: %+v", v)
	}
	u := l.Arrays["U"]
	if !u.Planar || u.LaneBits != 8 || u.LanesPerWord() != 4 {
		t.Fatalf("unprovisioned planar layout wrong: %+v", u)
	}
	// Arrays are placed back to back, word aligned.
	if v.Base != p.Base+uint32(p.TotalBytes) {
		t.Fatal("arrays must be contiguous")
	}
	if l.TotalBytes <= 0 {
		t.Fatal("total size")
	}
	// Plane ordering: plane 0 (most significant) lives first.
	if v.PlaneBase(0) >= v.PlaneBase(1) {
		t.Fatal("plane 0 must precede plane 1")
	}
	if v.PlaneForSub(3) != 0 || v.PlaneForSub(0) != 3 {
		t.Fatal("PlaneForSub should reverse the order")
	}
}

func TestLayoutModeSensitivity(t *testing.T) {
	k := testKernelArrays()
	l, err := BuildLayout(k, ModePrecise, false)
	if err != nil {
		t.Fatal(err)
	}
	if l.Arrays["V"].Planar {
		t.Fatal("precise mode must not transpose ASV arrays")
	}
}

func TestInstallExtractRowMajorRoundTrip(t *testing.T) {
	k := &Kernel{Name: "t", Arrays: []Array{
		{Name: "A8", ElemBits: 8, Len: 33},
		{Name: "A16", ElemBits: 16, Len: 17},
		{Name: "A32", ElemBits: 32, Len: 9},
	}}
	l, err := BuildLayout(k, ModePrecise, false)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(mem.DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	for _, a := range k.Arrays {
		vals := make([]int64, a.Len)
		for i := range vals {
			vals[i] = rng.Int63() & int64(elemMask(a.ElemBits))
		}
		if err := l.Install(m, a.Name, vals); err != nil {
			t.Fatal(err)
		}
		got, err := l.Extract(m, a.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%s[%d] = %d, want %d", a.Name, i, got[i], vals[i])
			}
		}
	}
}

// TestPlanarRoundTripProperty: subword-major encode/decode is the identity
// for every pragma configuration — the transposition of Figure 7 loses
// nothing.
func TestPlanarRoundTripProperty(t *testing.T) {
	cfgs := []struct {
		elem, bits, value int
		prov              bool
	}{
		{32, 8, 32, true}, {32, 8, 32, false},
		{32, 4, 32, true}, {32, 4, 32, false},
		{16, 8, 16, false}, {16, 4, 16, true},
		{32, 8, 31, true}, {32, 4, 24, true}, {16, 4, 12, false},
	}
	for _, cfg := range cfgs {
		k := &Kernel{Name: "t", Arrays: []Array{{
			Name: "A", ElemBits: cfg.elem, Len: 21, ValueBits: cfg.value,
			Pragma: PragmaASV, SubwordBits: cfg.bits, Provisioned: cfg.prov,
		}}}
		l, err := BuildLayout(k, ModeSWV, false)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New(mem.DefaultConfig())
		rng := rand.New(rand.NewSource(int64(cfg.elem * cfg.bits)))
		limit := int64(1) << cfg.value
		vals := make([]int64, 21)
		for i := range vals {
			vals[i] = rng.Int63n(limit)
		}
		if err := l.Install(m, "A", vals); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got, err := l.Extract(m, "A")
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%+v: A[%d] = %d, want %d", cfg, i, got[i], vals[i])
			}
		}
	}
}

func TestInstallRejectsOverflow(t *testing.T) {
	k := &Kernel{Name: "t", Arrays: []Array{{
		Name: "A", ElemBits: 16, Len: 4, ValueBits: 12,
		Pragma: PragmaASP, SubwordBits: 4,
	}}}
	l, err := BuildLayout(k, ModePrecise, false)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(mem.DefaultConfig())
	if err := l.Install(m, "A", []int64{4096}); err == nil {
		t.Fatal("values beyond the declared precision must be rejected")
	}
	if err := l.Install(m, "A", []int64{-1}); err == nil {
		t.Fatal("negative values must be rejected for annotated arrays")
	}
}

func TestInstallRejectsWrongLength(t *testing.T) {
	k := &Kernel{Name: "t", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 2}}}
	l, _ := BuildLayout(k, ModePrecise, false)
	m := mem.New(mem.DefaultConfig())
	if err := l.Install(m, "A", []int64{1, 2, 3}); err == nil {
		t.Fatal("too many values must be rejected")
	}
	if _, err := l.Of("missing"); err == nil {
		t.Fatal("unknown array must error")
	}
}

// --- validation ---

func TestKernelValidation(t *testing.T) {
	good := &Kernel{
		Name: "ok",
		Arrays: []Array{
			{Name: "A", ElemBits: 16, Len: 8, Pragma: PragmaASP, SubwordBits: 8},
			{Name: "O", ElemBits: 32, Len: 8},
		},
		Body: []Stmt{Loop{Var: "i", N: 8, Body: []Stmt{
			Assign{Array: "O", Index: LinVar("i", 1, 0),
				Value: Bin{Op: OpMul, A: Load{Array: "A", Index: LinVar("i", 1, 0)}, B: Const{V: 3}}},
		}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}

	bad := []*Kernel{
		{Name: "dup", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 1}, {Name: "A", ElemBits: 16, Len: 1}}},
		{Name: "width", Arrays: []Array{{Name: "A", ElemBits: 12, Len: 1}}},
		{Name: "len", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 0}}},
		{Name: "sub", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 1, Pragma: PragmaASP, SubwordBits: 5}}},
		{Name: "vbits", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 1, ValueBits: 20}}},
		{Name: "undeclared", Body: []Stmt{Assign{Array: "X", Index: LinConst(0), Value: Const{V: 1}}}},
		{Name: "freevar", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 4}},
			Body: []Stmt{Assign{Array: "A", Index: LinVar("i", 1, 0), Value: Const{V: 1}}}},
		{Name: "shadow", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 4}},
			Body: []Stmt{Loop{Var: "i", N: 2, Body: []Stmt{Loop{Var: "i", N: 2, Body: []Stmt{
				Assign{Array: "A", Index: LinConst(0), Value: Const{V: 1}}}}}}}},
		{Name: "badshift", Arrays: []Array{{Name: "A", ElemBits: 16, Len: 4}},
			Body: []Stmt{Assign{Array: "A", Index: LinConst(0),
				Value: Bin{Op: OpShr, A: Const{V: 4}, B: Load{Array: "A", Index: LinConst(0)}}}}},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q should fail validation", k.Name)
		}
	}
}

// --- pass structure ---

func aspKernel(bits int) *Kernel {
	return &Kernel{
		Name: "asp",
		Arrays: []Array{
			{Name: "A", ElemBits: 16, Len: 8, Pragma: PragmaASP, SubwordBits: bits},
			{Name: "F", ElemBits: 16, Len: 8},
			{Name: "X", ElemBits: 32, Len: 8},
		},
		Body: []Stmt{Loop{Var: "i", N: 8, Body: []Stmt{
			Assign{Array: "X", Index: LinVar("i", 1, 0),
				Value: Bin{Op: OpMul,
					A: Load{Array: "F", Index: LinVar("i", 1, 0)},
					B: Load{Array: "A", Index: LinVar("i", 1, 0)}}},
		}}},
	}
}

func TestSWPFissionCount(t *testing.T) {
	// "The loop is split twice for the 8-bit case and 4 times for the
	// 4-bit case" (Section III-A) for 16-bit data.
	for bits, want := range map[int]int{8: 2, 4: 4, 2: 8, 1: 16} {
		segs, numSub, err := swpTransform(aspKernel(bits), false)
		if err != nil {
			t.Fatal(err)
		}
		if numSub != want || len(segs) != want {
			t.Errorf("bits=%d: %d passes, want %d", bits, len(segs), want)
		}
		// Every pass's assignment must have become an accumulation.
		for i, seg := range segs {
			lp := seg[0].(Loop)
			as := lp.Body[0].(Assign)
			if !as.Accumulate {
				t.Errorf("bits=%d pass %d: assignment should accumulate", bits, i)
			}
			mul, ok := as.Value.(ASPMul)
			if !ok {
				t.Fatalf("bits=%d pass %d: value is %T", bits, i, as.Value)
			}
			// Most significant subword first.
			if wantSub := numSub - 1 - i; mul.Sub != wantSub {
				t.Errorf("bits=%d pass %d: sub=%d, want %d", bits, i, mul.Sub, wantSub)
			}
		}
	}
}

func TestSWPRequiresPragma(t *testing.T) {
	k := aspKernel(8)
	k.Arrays[0].Pragma = PragmaNone
	if _, _, err := swpTransform(k, false); err == nil {
		t.Fatal("SWP without an asp pragma should fail")
	}
}

func TestSWVElementwiseStructure(t *testing.T) {
	mk := func(name string) Array {
		return Array{Name: name, ElemBits: 32, Len: 16, Pragma: PragmaASV, SubwordBits: 8, Provisioned: true}
	}
	k := &Kernel{
		Name:   "swv",
		Arrays: []Array{mk("A"), mk("B"), mk("X")},
		Body: []Stmt{Loop{Var: "i", N: 16, Body: []Stmt{
			Assign{Array: "X", Index: LinVar("i", 1, 0),
				Value: Bin{Op: OpAdd,
					A: Load{Array: "A", Index: LinVar("i", 1, 0)},
					B: Load{Array: "B", Index: LinVar("i", 1, 0)}}},
		}}},
	}
	segs, aug, numSub, err := swvTransform(k)
	if err != nil {
		t.Fatal(err)
	}
	if numSub != 4 || len(segs) != 4 {
		t.Fatalf("passes = %d, want 4", len(segs))
	}
	if len(aug.Arrays) != 3 {
		t.Fatal("element-wise SWV needs no synthesized arrays")
	}
	lp := segs[0][0].(Loop)
	if lp.N != 16/2 { // provisioned 8-bit: 2 lanes per word
		t.Fatalf("packed loop trip = %d, want 8", lp.N)
	}
	pa := lp.Body[0].(PackedAssign)
	if pa.Plane != 0 {
		t.Fatal("first pass must write plane 0 (most significant)")
	}
	bin := pa.Value.(ASVBin)
	if bin.LaneBits != 16 {
		t.Fatalf("lane bits = %d, want 16 (provisioned)", bin.LaneBits)
	}
}

func TestSWVReductionSynthesizesSum(t *testing.T) {
	k := &Kernel{
		Name: "red",
		Arrays: []Array{
			{Name: "S", ElemBits: 32, Len: 64, Pragma: PragmaASV, SubwordBits: 8, Provisioned: true},
			{Name: "O", ElemBits: 32, Len: 1},
		},
		Body: []Stmt{
			Assign{Array: "O", Index: LinConst(0),
				Value: Bin{Op: OpShr,
					A: Reduce{Var: "i", N: 64, Body: Load{Array: "S", Index: LinVar("i", 1, 0)}},
					B: Const{V: 6}}},
		},
	}
	segs, aug, _, err := swvTransform(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(aug.Arrays) != 3 || aug.Arrays[2].Name != "__sum_O" {
		t.Fatalf("synthesized arrays wrong: %+v", aug.Arrays)
	}
	// Each pass: accumulate VecReduce into __sum_O, then recompute O.
	if len(segs[0]) != 2 {
		t.Fatalf("pass has %d statements, want 2", len(segs[0]))
	}
	acc := segs[0][0].(Assign)
	if acc.Array != "__sum_O" || !acc.Accumulate {
		t.Fatalf("first statement should accumulate into the sum array: %+v", acc)
	}
	vr := acc.Value.(VecReduce)
	if vr.ChunkWords <= 0 || vr.NumWords%vr.ChunkWords != 0 {
		t.Fatalf("chunking wrong: %+v", vr)
	}
	// Lane overflow safety: ChunkWords*maxSubword must fit a lane.
	if vr.ChunkWords*int64((1<<8)-1) >= 1<<vr.LaneBits {
		t.Fatalf("chunk %d can overflow %d-bit lanes", vr.ChunkWords, vr.LaneBits)
	}
	fin := segs[0][1].(Assign)
	if fin.Array != "O" || fin.Accumulate {
		t.Fatalf("second statement should recompute the output: %+v", fin)
	}
}

func TestSWVRejectsUnsupported(t *testing.T) {
	k := &Kernel{
		Name: "bad",
		Arrays: []Array{
			{Name: "S", ElemBits: 32, Len: 10, Pragma: PragmaASV, SubwordBits: 8},
			{Name: "O", ElemBits: 32, Len: 1},
		},
		Body: []Stmt{
			Assign{Array: "O", Index: LinConst(0),
				Value: Reduce{Var: "i", N: 10, // 10 elements don't fill 4-lane words
					Body: Load{Array: "S", Index: LinVar("i", 1, 0)}}},
		},
	}
	if _, _, _, err := swvTransform(k); err == nil {
		t.Fatal("non-lane-divisible reduction should be rejected")
	}
}

func TestCompileProducesSkims(t *testing.T) {
	c, err := Compile(aspKernel(8), Options{Mode: ModeSWP})
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(c.Asm, "SKM"); n != 1 {
		t.Fatalf("SKM count = %d, want 1 (between the two 8-bit passes)", n)
	}
	if !strings.Contains(c.Asm, "MUL_ASP8") {
		t.Fatal("anytime multiply missing")
	}
	c4, err := Compile(aspKernel(4), Options{Mode: ModeSWP})
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(c4.Asm, "SKM"); n != 3 {
		t.Fatalf("SKM count = %d, want 3 (between four 4-bit passes)", n)
	}
	noskim, err := Compile(aspKernel(4), Options{Mode: ModeSWP, NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noskim.Asm, "SKM") {
		t.Fatal("NoSkim must suppress skim points")
	}
}

func TestCompilePreciseHasNoWNInstructions(t *testing.T) {
	c, err := Compile(aspKernel(8), Options{Mode: ModePrecise})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"MUL_ASP", "ADD_ASV", "SKM"} {
		if strings.Contains(c.Asm, bad) {
			t.Errorf("precise build contains %s", bad)
		}
	}
	if !strings.Contains(c.Asm, ".amenable") {
		t.Error("precise build should mark amenable instructions for Table I")
	}
}

func TestCompileUnknownMode(t *testing.T) {
	if _, err := Compile(aspKernel(8), Options{Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if Mode(99).String() == "" || ModeSWP.String() != "swp" || ModePrecise.String() != "precise" || ModeSWV.String() != "swv" {
		t.Fatal("mode names")
	}
}

// TestQuickLinKeyStable: lin keys must be deterministic regardless of map
// iteration order (they drive pointer-register sharing).
func TestQuickLinKeyStable(t *testing.T) {
	f := func(a, b, c int8) bool {
		l1 := Lin{Coeff: map[string]int64{"x": int64(a), "y": int64(b)}, Const: int64(c)}
		l2 := Lin{Coeff: map[string]int64{"y": int64(b), "x": int64(a)}, Const: int64(c)}
		return l1.key() == l2.key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
