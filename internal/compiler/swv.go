package compiler

import "fmt"

// The anytime subword vectorization pass (Section III-B): arrays annotated
// with #pragma asv are transposed into subword-major planes (Figure 7), and
// the code is fissioned into one pass per subword, most significant first.
// Element-wise operations become lane-parallel ADD_ASV/SUB_ASV over packed
// words; reductions become lane-parallel accumulations with horizontal
// folds. With provisioned vectorization, lanes are allocated double width
// so carry bits are preserved and the final result is exact.

// asvParams extracts the (unique) subword parameters of ASV arrays.
func asvParams(k *Kernel) (bits, elemBits int, provisioned bool, err error) {
	found := false
	for _, a := range k.Arrays {
		if a.Pragma != PragmaASV {
			continue
		}
		if !found {
			bits, elemBits, provisioned = a.SubwordBits, a.EffectiveBits(), a.Provisioned
			found = true
			continue
		}
		if a.SubwordBits != bits || a.EffectiveBits() != elemBits || a.Provisioned != provisioned {
			return 0, 0, false, fmt.Errorf("compiler: swv: asv arrays disagree on subword/value width or provisioning")
		}
	}
	if !found {
		return 0, 0, false, fmt.Errorf("compiler: swv: kernel %q has no #pragma asv arrays", k.Name)
	}
	return bits, elemBits, provisioned, nil
}

// asvLaneBits computes the plane lane width for the given pragma
// parameters, matching BuildLayout.
func asvLaneBits(bits int, provisioned bool) int {
	lane := bits
	if provisioned {
		lane = 2 * bits
	}
	for 32%lane != 0 {
		lane++
	}
	return lane
}

// swvTransform produces one code segment per subword pass, possibly
// augmenting the kernel with synthesized 32-bit partial-sum arrays for
// reductions. It returns the augmented kernel to lay out and compile.
func swvTransform(k *Kernel) (segments [][]Stmt, aug *Kernel, numSub int, err error) {
	bits, elemBits, provisioned, err := asvParams(k)
	if err != nil {
		return nil, nil, 0, err
	}
	numSub = (elemBits + bits - 1) / bits
	augmented := &Kernel{Name: k.Name, Arrays: append([]Array(nil), k.Arrays...), Body: k.Body}
	tr := &swvRewriter{
		k: augmented, bits: bits, numSub: numSub,
		laneBits:  asvLaneBits(bits, provisioned),
		sumArrays: map[string]string{},
	}
	for sub := numSub - 1; sub >= 0; sub-- {
		tr.sub = sub
		seg, err := tr.stmts(augmented.Body)
		if err != nil {
			return nil, nil, 0, err
		}
		segments = append(segments, seg)
	}
	return segments, augmented, numSub, nil
}

type swvRewriter struct {
	k         *Kernel
	bits      int
	numSub    int
	laneBits  int
	sub       int
	sumArrays map[string]string // output array -> synthesized sum array
}

func (t *swvRewriter) isASV(name string) bool {
	a, ok := t.k.ArrayByName(name)
	return ok && a.Pragma == PragmaASV
}

func (t *swvRewriter) plane() int { return t.numSub - 1 - t.sub }

func (t *swvRewriter) lanesPerWord() int64 { return int64(32 / t.laneBits) }

func (t *swvRewriter) stmts(body []Stmt) ([]Stmt, error) {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			if packed, ok, err := t.tryElementwise(st); err != nil {
				return nil, err
			} else if ok {
				out = append(out, packed)
				continue
			}
			nb, err := t.stmts(st.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, Loop{Var: st.Var, N: st.N, Body: nb})
		case Assign:
			repl, err := t.rewriteAssign(st)
			if err != nil {
				return nil, err
			}
			out = append(out, repl...)
		default:
			return nil, fmt.Errorf("compiler: swv: unsupported statement %T", s)
		}
	}
	return out, nil
}

// tryElementwise recognizes "for i: X[i] = A[i] op B[i]" over ASV arrays and
// rewrites it into a loop over packed plane words.
func (t *swvRewriter) tryElementwise(lp Loop) (Stmt, bool, error) {
	if len(lp.Body) != 1 {
		return nil, false, nil
	}
	as, ok := lp.Body[0].(Assign)
	if !ok || as.Accumulate || !t.isASV(as.Array) {
		return nil, false, nil
	}
	bin, ok := as.Value.(Bin)
	if !ok {
		return nil, false, nil
	}
	switch bin.Op {
	case OpAdd, OpSub, OpBitAnd, OpBitOr, OpBitXor:
	default:
		return nil, false, nil
	}
	la, aok := bin.A.(Load)
	lb, bok := bin.B.(Load)
	if !aok || !bok || !t.isASV(la.Array) || !t.isASV(lb.Array) {
		return nil, false, nil
	}
	for _, lin := range []Lin{as.Index, la.Index, lb.Index} {
		if lin.Coeff[lp.Var] != 1 || len(lin.vars()) != 1 || lin.Const != 0 {
			return nil, false, nil
		}
	}
	lpw := t.lanesPerWord()
	if lp.N%lpw != 0 {
		return nil, false, fmt.Errorf("compiler: swv: trip count %d not divisible by %d lanes", lp.N, lpw)
	}
	wv := lp.Var + "_w"
	word := LinVar(wv, 1, 0)
	plane := t.plane()
	return Loop{
		Var: wv, N: lp.N / lpw,
		Body: []Stmt{PackedAssign{
			Array: as.Array, Plane: plane, Word: word,
			Value: ASVBin{
				Op:       bin.Op,
				A:        PackedLoad{Array: la.Array, Plane: plane, Word: word},
				B:        PackedLoad{Array: lb.Array, Plane: plane, Word: word},
				LaneBits: t.laneBits,
			},
		}},
	}, true, nil
}

// rewriteAssign handles reduction assignments "X[w] = f(Reduce(S))" where S
// is ASV-annotated: the plane's lane-parallel partial sum accumulates into a
// synthesized 32-bit sum array, and the output is recomputed from it each
// pass (quality therefore improves in the per-pass steps the paper
// describes for reduction kernels).
func (t *swvRewriter) rewriteAssign(as Assign) ([]Stmt, error) {
	red, found, err := findASVReduce(t.k, as.Value)
	if err != nil {
		return nil, err
	}
	if !found {
		// No vectorizable reduction: replicate verbatim (pure recompute).
		return []Stmt{as}, nil
	}
	if as.Accumulate {
		return nil, fmt.Errorf("compiler: swv: accumulate-assign reductions unsupported")
	}
	sumName, ok := t.sumArrays[as.Array]
	if !ok {
		outArr, _ := t.k.ArrayByName(as.Array)
		sumName = "__sum_" + as.Array
		t.k.Arrays = append(t.k.Arrays, Array{Name: sumName, ElemBits: 32, Len: outArr.Len})
		t.sumArrays[as.Array] = sumName
	}

	vr, err := t.vecReduce(red)
	if err != nil {
		return nil, err
	}
	acc := Assign{Array: sumName, Index: as.Index, Value: vr, Accumulate: true}
	final := Assign{
		Array: as.Array, Index: as.Index,
		Value: replaceReduce(as.Value, Load{Array: sumName, Index: as.Index}),
	}
	return []Stmt{acc, final}, nil
}

// vecReduce builds the lane-parallel partial-sum expression for one plane
// (t.sub selects the subword, hence the plane and the recombination shift)
// of a unit-stride reduction over an ASV array.
func (t *swvRewriter) vecReduce(red Reduce) (VecReduce, error) {
	ld := red.Body.(Load)
	if ld.Index.Coeff[red.Var] != 1 {
		return VecReduce{}, fmt.Errorf("compiler: swv: reduction over %q must have unit stride", ld.Array)
	}
	lpw := t.lanesPerWord()
	if red.N%lpw != 0 {
		return VecReduce{}, fmt.Errorf("compiler: swv: reduce trip %d not divisible by %d lanes", red.N, lpw)
	}
	start := Lin{Coeff: map[string]int64{}, Const: ld.Index.Const}
	if start.Const%lpw != 0 {
		return VecReduce{}, fmt.Errorf("compiler: swv: reduction base offset not lane aligned")
	}
	start.Const /= lpw
	for v, c := range ld.Index.Coeff {
		if v == red.Var {
			continue
		}
		if c%lpw != 0 {
			return VecReduce{}, fmt.Errorf("compiler: swv: index coefficient %d not divisible by %d", c, lpw)
		}
		start.Coeff[v] = c / lpw
	}
	numWords := red.N / lpw
	chunk := int64(1)
	if t.laneBits > t.bits {
		chunk = 1 << (t.laneBits - t.bits)
	}
	if chunk > numWords {
		chunk = numWords
	}
	for numWords%chunk != 0 {
		chunk--
	}
	return VecReduce{
		Array: ld.Array, Plane: t.plane(),
		WordStart: start, NumWords: numWords, ChunkWords: chunk,
		LaneBits: t.laneBits, Shift: t.bits * t.sub,
	}, nil
}

// findASVReduce locates the unique Reduce-over-ASV-load in an expression.
func findASVReduce(k *Kernel, e Expr) (Reduce, bool, error) {
	switch ex := e.(type) {
	case Reduce:
		ld, ok := ex.Body.(Load)
		if !ok {
			return Reduce{}, false, fmt.Errorf("compiler: swv: reduction body must be a plain load")
		}
		a, ok := k.ArrayByName(ld.Array)
		if !ok || a.Pragma != PragmaASV {
			return Reduce{}, false, nil
		}
		if ex.Op != OpAdd {
			return Reduce{}, false, fmt.Errorf("compiler: swv: only additive reductions vectorize")
		}
		return ex, true, nil
	case Bin:
		ra, fa, err := findASVReduce(k, ex.A)
		if err != nil {
			return Reduce{}, false, err
		}
		rb, fb, err := findASVReduce(k, ex.B)
		if err != nil {
			return Reduce{}, false, err
		}
		if fa && fb {
			return Reduce{}, false, fmt.Errorf("compiler: swv: multiple reductions in one assignment")
		}
		if fa {
			return ra, true, nil
		}
		return rb, fb, nil
	default:
		return Reduce{}, false, nil
	}
}

// replaceReduce substitutes the (unique) Reduce node with repl.
func replaceReduce(e Expr, repl Expr) Expr {
	switch ex := e.(type) {
	case Reduce:
		return repl
	case Bin:
		return Bin{Op: ex.Op, A: replaceReduce(ex.A, repl), B: replaceReduce(ex.B, repl)}
	default:
		return e
	}
}
