package compiler

import (
	"math/rand"
	"testing"

	"whatsnext/internal/cpu"
	"whatsnext/internal/mem"
)

// Differential testing: randomized kernels are compiled, assembled and run
// on the cycle-accurate simulator, and the resulting memory image must
// match the native IR interpreter bit for bit. Kernels with asp pragmas are
// additionally compiled in SWP mode and must still match exactly after all
// subword passes (the paper's exactness guarantee).

// runOnSim compiles nothing itself — it loads a compiled kernel, installs
// inputs and executes to HALT on the simulator.
func runOnSim(t *testing.T, c *Compiled, inputs map[string][]int64) *mem.Memory {
	t.Helper()
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(c.Program.Image); err != nil {
		t.Fatal(err)
	}
	for name, vals := range inputs {
		if err := c.Layout.Install(m, name, vals); err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
	}
	cp := cpu.New(m)
	for i := 0; !cp.Halted; i++ {
		if i > 50_000_000 {
			t.Fatalf("kernel %s: runaway", c.Kernel.Name)
		}
		if _, err := cp.Step(); err != nil {
			t.Fatalf("kernel %s: fault: %v\n%s", c.Kernel.Name, err, c.Asm)
		}
	}
	return m
}

func compareAllArrays(t *testing.T, label string, c *Compiled, m *mem.Memory, want map[string][]int64) {
	t.Helper()
	for _, a := range c.Kernel.Arrays {
		got, err := c.Layout.Extract(m, a.Name)
		if err != nil {
			t.Fatal(err)
		}
		w := want[a.Name]
		for i := range got {
			if got[i] != w[i] {
				t.Fatalf("%s: %s[%d] = %d, want %d\n%s", label, a.Name, i, got[i], w[i], c.Asm)
			}
		}
	}
}

// randomKernel draws a kernel from parameterized templates. When asp is
// true, the B input carries an asp pragma and appears only as a multiply
// operand (the fissionable shape).
func randomKernel(rng *rand.Rand, id int, asp bool) (*Kernel, map[string][]int64) {
	n := int64(4 + rng.Intn(13))
	m := int64(2 + rng.Intn(6))
	elemBits := []int{16, 32}[rng.Intn(2)]

	arr := func(name string, bits, length int, pragma PragmaKind) Array {
		a := Array{Name: name, ElemBits: bits, Len: length}
		if pragma != PragmaNone {
			a.Pragma = pragma
			a.SubwordBits = 8
		}
		return a
	}
	values := func(length int, bits int) []int64 {
		vs := make([]int64, length)
		for i := range vs {
			vs[i] = rng.Int63() & int64(elemMask(bits))
		}
		return vs
	}

	bPragma := PragmaNone
	if asp {
		bPragma = PragmaASP
	}
	i := LinVar("i", 1, 0)

	switch rng.Intn(4) {
	case 0: // element-wise multiply(+shift)
		k := &Kernel{
			Name: "elem",
			Arrays: []Array{
				arr("A", elemBits, int(n), PragmaNone),
				arr("B", 16, int(n), bPragma),
				arr("OUT", 32, int(n), PragmaNone),
			},
			Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
				Assign{Array: "OUT", Index: i,
					Value: Bin{Op: OpMul,
						A: Load{Array: "A", Index: i},
						B: Load{Array: "B", Index: i}}},
			}}},
		}
		return k, map[string][]int64{"A": values(int(n), elemBits), "B": values(int(n), 16)}

	case 1: // dot-product rows
		k := &Kernel{
			Name: "dot",
			Arrays: []Array{
				arr("A", elemBits, int(n*m), PragmaNone),
				arr("B", 16, int(n*m), bPragma),
				arr("OUT", 32, int(n), PragmaNone),
			},
			Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
				Assign{Array: "OUT", Index: i,
					Value: Reduce{Var: "j", N: m, Body: Bin{Op: OpMul,
						A: Load{Array: "A", Index: LinSum(LinVar("i", m, 0), LinVar("j", 1, 0))},
						B: Load{Array: "B", Index: LinSum(LinVar("i", m, 0), LinVar("j", 1, 0))}}}},
			}}},
		}
		return k, map[string][]int64{"A": values(int(n*m), elemBits), "B": values(int(n*m), 16)}

	case 2: // 1-D stencil with constant offsets
		taps := int64(1 + rng.Intn(4))
		k := &Kernel{
			Name: "stencil",
			Arrays: []Array{
				arr("C", 16, int(taps), PragmaNone),
				arr("B", 16, int(n+taps-1), bPragma),
				arr("OUT", 32, int(n), PragmaNone),
			},
			Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
				Assign{Array: "OUT", Index: i,
					Value: Reduce{Var: "t", N: taps, Body: Bin{Op: OpMul,
						A: Load{Array: "C", Index: LinVar("t", 1, 0)},
						B: Load{Array: "B", Index: LinSum(i, LinVar("t", 1, 0))}}}},
			}}},
		}
		return k, map[string][]int64{"C": values(int(taps), 16), "B": values(int(n+taps-1), 16)}

	default: // two statements: scaled square then post-processing shift
		shift := int64(rng.Intn(8))
		k := &Kernel{
			Name: "twostage",
			Arrays: []Array{
				arr("B", 16, int(n), bPragma),
				arr("SQ", 32, int(n), PragmaNone),
				arr("OUT", 32, int(n), PragmaNone),
			},
			Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
				Assign{Array: "SQ", Index: i,
					Value: Bin{Op: OpMul,
						A: Load{Array: "B", Index: i},
						B: Load{Array: "B", Index: i}}},
				Assign{Array: "OUT", Index: i,
					Value: Bin{Op: OpShr, A: Load{Array: "SQ", Index: i}, B: Const{V: shift}}},
			}}},
		}
		return k, map[string][]int64{"B": values(int(n), 16)}
	}
}

func TestDifferentialPrecise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		k, inputs := randomKernel(rng, trial, false)
		want, err := Interpret(k, inputs)
		if err != nil {
			t.Fatalf("trial %d: interpret: %v", trial, err)
		}
		c, err := Compile(k, Options{Mode: ModePrecise})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		m := runOnSim(t, c, inputs)
		compareAllArrays(t, "precise", c, m, want)
	}
}

func TestDifferentialSWPExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		k, inputs := randomKernel(rng, trial, true)
		want, err := Interpret(k, inputs)
		if err != nil {
			t.Fatalf("trial %d: interpret: %v", trial, err)
		}
		c, err := Compile(k, Options{Mode: ModeSWP})
		if err != nil {
			t.Fatalf("trial %d: compile swp: %v", trial, err)
		}
		m := runOnSim(t, c, inputs)
		compareAllArrays(t, "swp-complete", c, m, want)
	}
}

func TestSWPRejectsMixedAdditiveTerms(t *testing.T) {
	// X[i] = A[i] + B[i] with only B annotated: fissioning would re-add
	// the precise A term every pass, so the compiler must refuse.
	k := &Kernel{
		Name: "mixed",
		Arrays: []Array{
			{Name: "A", ElemBits: 16, Len: 8},
			{Name: "B", ElemBits: 16, Len: 8, Pragma: PragmaASP, SubwordBits: 8},
			{Name: "X", ElemBits: 32, Len: 8},
		},
		Body: []Stmt{Loop{Var: "i", N: 8, Body: []Stmt{
			Assign{Array: "X", Index: LinVar("i", 1, 0),
				Value: Bin{Op: OpAdd,
					A: Load{Array: "A", Index: LinVar("i", 1, 0)},
					B: Load{Array: "B", Index: LinVar("i", 1, 0)}}},
		}}},
	}
	if _, err := Compile(k, Options{Mode: ModeSWP}); err == nil {
		t.Fatal("mixed approximate/precise additive terms must be rejected")
	}
}

func TestInterpretRejectsAnytimeNodes(t *testing.T) {
	k := &Kernel{
		Name:   "bad",
		Arrays: []Array{{Name: "A", ElemBits: 16, Len: 4}},
		Body: []Stmt{
			Assign{Array: "A", Index: LinConst(0),
				Value: ASPMul{Other: Const{V: 1}, Array: "A", Index: LinConst(0), Bits: 8}},
		},
	}
	if _, err := Interpret(k, nil); err == nil {
		t.Fatal("interpreter accepts source IR only")
	}
}

func TestInterpretBoundsChecked(t *testing.T) {
	k := &Kernel{
		Name:   "oob",
		Arrays: []Array{{Name: "A", ElemBits: 16, Len: 4}},
		Body: []Stmt{Loop{Var: "i", N: 8, Body: []Stmt{
			Assign{Array: "A", Index: LinVar("i", 1, 0), Value: Const{V: 1}},
		}}},
	}
	if _, err := Interpret(k, nil); err == nil {
		t.Fatal("out-of-bounds access must be reported")
	}
}

// TestDifferentialVectorLoads: the Figure 12 packed-load lowering must be
// value-identical to the reference across random dot kernels.
func TestDifferentialVectorLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		// MatMul-shaped kernel with lane-divisible reduce trips (4-bit
		// subwords pack 8 lanes per word, so trips are multiples of 8).
		n := int64(8 * (1 + rng.Intn(3)))
		bits := []int{4, 8}[rng.Intn(2)]
		k := &Kernel{
			Name: "vdot",
			Arrays: []Array{
				{Name: "A", ElemBits: 16, Len: int(n * n), Pragma: PragmaASP, SubwordBits: bits},
				{Name: "B", ElemBits: 16, Len: int(n * n)},
				{Name: "OUT", ElemBits: 32, Len: int(n * n)},
			},
			Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
				Loop{Var: "j", N: n, Body: []Stmt{
					Assign{Array: "OUT", Index: LinSum(LinVar("i", n, 0), LinVar("j", 1, 0)),
						Value: Reduce{Var: "k", N: n, Body: Bin{Op: OpMul,
							A: Load{Array: "B", Index: LinSum(LinVar("k", n, 0), LinVar("j", 1, 0))},
							B: Load{Array: "A", Index: LinSum(LinVar("i", n, 0), LinVar("k", 1, 0))}}}},
				}},
			}}},
		}
		inputs := map[string][]int64{}
		for _, name := range []string{"A", "B"} {
			vals := make([]int64, n*n)
			for i := range vals {
				vals[i] = rng.Int63() & 0xFFFF
				if name == "B" {
					vals[i] &= 0xFF // keep 32-bit accumulators meaningful
				}
			}
			inputs[name] = vals
		}
		want, err := Interpret(k, inputs)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(k, Options{Mode: ModeSWP, VectorLoads: true})
		if err != nil {
			t.Fatalf("trial %d (n=%d bits=%d): %v", trial, n, bits, err)
		}
		m := runOnSim(t, c, inputs)
		compareAllArrays(t, "vector-loads", c, m, want)
	}
}

// TestCompileRegisterPressure: a kernel with more simultaneous access
// streams than scratch registers must fail with a clear diagnostic, not
// generate bad code.
func TestCompileRegisterPressure(t *testing.T) {
	arrays := make([]Array, 0, 14)
	var sum Expr = Const{V: 0}
	for i := 0; i < 13; i++ {
		name := string(rune('A' + i))
		arrays = append(arrays, Array{Name: name, ElemBits: 32, Len: 4})
		sum = Bin{Op: OpAdd, A: sum, B: Load{Array: name, Index: LinVar("i", 1, 0)}}
	}
	arrays = append(arrays, Array{Name: "OUT", ElemBits: 32, Len: 4})
	k := &Kernel{
		Name:   "pressure",
		Arrays: arrays,
		Body: []Stmt{Loop{Var: "i", N: 4, Body: []Stmt{
			Assign{Array: "OUT", Index: LinVar("i", 1, 0), Value: sum},
		}}},
	}
	if _, err := Compile(k, Options{Mode: ModePrecise}); err == nil {
		t.Fatal("register exhaustion should surface as a compile error")
	}
}
