package compiler

import (
	"math/rand"
	"strings"
	"testing"
)

// bitwiseKernel builds MASK[i] = A[i] op B[i] over ASV-annotated arrays —
// the Section III-B claim that logical operations vectorize with their
// ordinary full-precision instructions.
func bitwiseKernel(op BinOp, bits int, provisioned bool) *Kernel {
	const n = 32
	mk := func(name string) Array {
		return Array{Name: name, ElemBits: 32, Len: n,
			Pragma: PragmaASV, SubwordBits: bits, Provisioned: provisioned}
	}
	return &Kernel{
		Name:   "bitwise",
		Arrays: []Array{mk("A"), mk("B"), mk("MASK")},
		Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
			Assign{Array: "MASK", Index: LinVar("i", 1, 0),
				Value: Bin{Op: op,
					A: Load{Array: "A", Index: LinVar("i", 1, 0)},
					B: Load{Array: "B", Index: LinVar("i", 1, 0)}}},
		}}},
	}
}

func bitwiseInputs(rng *rand.Rand, n int) map[string][]int64 {
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63() & 0xFFFFFFFF
		b[i] = rng.Int63() & 0xFFFFFFFF
	}
	return map[string][]int64{"A": a, "B": b}
}

func TestBitwisePreciseAgainstInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range []BinOp{OpBitAnd, OpBitOr, OpBitXor} {
		k := bitwiseKernel(op, 8, false)
		in := bitwiseInputs(rng, 32)
		want, err := Interpret(k, in)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(k, Options{Mode: ModePrecise})
		if err != nil {
			t.Fatal(err)
		}
		m := runOnSim(t, c, in)
		compareAllArrays(t, "bitwise precise", c, m, want)
	}
}

func TestBitwiseSWVExactAndLaneFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, op := range []BinOp{OpBitAnd, OpBitOr, OpBitXor} {
		for _, bits := range []int{4, 8} {
			// Bitwise lanes are exact with or without provisioning: there
			// is no carry to lose.
			for _, prov := range []bool{false, true} {
				k := bitwiseKernel(op, bits, prov)
				in := bitwiseInputs(rng, 32)
				want, err := Interpret(k, in)
				if err != nil {
					t.Fatal(err)
				}
				c, err := Compile(k, Options{Mode: ModeSWV})
				if err != nil {
					t.Fatalf("op %d bits %d prov %v: %v", op, bits, prov, err)
				}
				m := runOnSim(t, c, in)
				compareAllArrays(t, "bitwise swv", c, m, want)
				// No new hardware: the SWV build must not contain ASV
				// arithmetic instructions for logical ops.
				if strings.Contains(c.Asm, "_ASV") {
					t.Errorf("bitwise SWV should use plain logical instructions:\n%s", c.Asm)
				}
				if !strings.Contains(c.Asm, "SKM") {
					t.Error("bitwise SWV should still place skim points")
				}
			}
		}
	}
}

func TestBitwiseInterpreter(t *testing.T) {
	k := &Kernel{
		Name:   "b",
		Arrays: []Array{{Name: "X", ElemBits: 32, Len: 1}},
		Body: []Stmt{
			Assign{Array: "X", Index: LinConst(0),
				Value: Bin{Op: OpBitXor,
					A: Bin{Op: OpBitAnd, A: Const{V: 0xF0F0}, B: Const{V: 0xFF00}},
					B: Bin{Op: OpBitOr, A: Const{V: 0x000F}, B: Const{V: 0x00F0}}}},
		},
	}
	out, err := Interpret(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := int64((0xF0F0 & 0xFF00) ^ (0x000F | 0x00F0))
	if out["X"][0] != want {
		t.Fatalf("X = %#x, want %#x", out["X"][0], want)
	}
}
