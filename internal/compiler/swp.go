package compiler

import "fmt"

// The anytime subword pipelining pass (Algorithm 1 of the paper): for each
// long-latency multiply whose operand is annotated with #pragma asp, the
// enclosing computation is fissioned into one pass per subword, most
// significant first. Each pass rewrites the multiply into its anytime
// MUL_ASP equivalent at that pass's subword position, and assignments that
// receive subworded products become accumulations so the passes sum to the
// precise result. A skim point is inserted after every pass.

// aspParams finds the (unique) subword parameters of the ASP-annotated
// arrays in the kernel.
func aspParams(k *Kernel) (bits, elemBits int, err error) {
	for _, a := range k.Arrays {
		if a.Pragma != PragmaASP {
			continue
		}
		if bits == 0 {
			bits, elemBits = a.SubwordBits, a.EffectiveBits()
			continue
		}
		if a.SubwordBits != bits || a.EffectiveBits() != elemBits {
			return 0, 0, fmt.Errorf("compiler: swp: asp arrays disagree on subword/value width")
		}
	}
	if bits == 0 {
		return 0, 0, fmt.Errorf("compiler: swp: kernel %q has no #pragma asp arrays", k.Name)
	}
	return bits, elemBits, nil
}

// subwordSpan is one subword's bit range within a value.
type subwordSpan struct {
	Start int
	Width int
}

// subwordSpans decomposes a valueBits-wide datum into b-bit subwords
// aligned from the most significant end, so that the first anytime pass
// always processes a full-width subword. When b does not divide valueBits,
// the least significant subword is the narrow remainder. The returned
// slice is indexed least-significant-first.
func subwordSpans(valueBits, b int) []subwordSpan {
	numSub := (valueBits + b - 1) / b
	spans := make([]subwordSpan, numSub)
	for j := range spans {
		start := valueBits - b*(numSub-j)
		width := b
		if start < 0 {
			width += start
			start = 0
		}
		spans[j] = subwordSpan{Start: start, Width: width}
	}
	return spans
}

// swpTransform produces one code segment per subword pass.
func swpTransform(k *Kernel, vectorLoads bool) (segments [][]Stmt, numSub int, err error) {
	bits, elemBits, err := aspParams(k)
	if err != nil {
		return nil, 0, err
	}
	spans := subwordSpans(elemBits, bits)
	numSub = len(spans)
	if vectorLoads && elemBits%bits != 0 {
		return nil, 0, fmt.Errorf("compiler: swp: vectorized loads require the subword size to divide the %d-bit value width", elemBits)
	}
	tr := &swpRewriter{k: k, bits: bits, numSub: numSub, spans: spans, vectorLoads: vectorLoads}
	for sub := numSub - 1; sub >= 0; sub-- {
		tr.sub = sub
		seg, err := tr.stmts(k.Body)
		if err != nil {
			return nil, 0, err
		}
		segments = append(segments, seg)
	}
	return segments, numSub, nil
}

type swpRewriter struct {
	k           *Kernel
	bits        int
	numSub      int
	spans       []subwordSpan
	sub         int
	vectorLoads bool
}

func (t *swpRewriter) aspMul(other Expr, ld Load) ASPMul {
	sp := t.spans[t.sub]
	return ASPMul{Other: other, Array: ld.Array, Index: ld.Index,
		Bits: t.bits, Sub: t.sub, Start: sp.Start, Width: sp.Width}
}

func (t *swpRewriter) isASPLoad(e Expr) (Load, bool) {
	ld, ok := e.(Load)
	if !ok {
		return Load{}, false
	}
	a, ok := t.k.ArrayByName(ld.Array)
	return ld, ok && a.Pragma == PragmaASP
}

func (t *swpRewriter) stmts(body []Stmt) ([]Stmt, error) {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			nb, err := t.stmts(st.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, Loop{Var: st.Var, N: st.N, Body: nb})
		case Assign:
			nv, err := t.expr(st.Value)
			if err != nil {
				return nil, err
			}
			na := Assign{Array: st.Array, Index: st.Index, Value: nv, Accumulate: st.Accumulate}
			if containsAnytime(nv) {
				// Subword contributions accumulate across passes into the
				// (zero-initialized) output so the final pass is exact —
				// which is only sound when every additive term of the value
				// carries a subword factor. A mixed expression like
				// A[i] + subword(B[i]) would re-add the precise term in
				// every pass.
				if !anytimeHomogeneous(nv) {
					return nil, fmt.Errorf("compiler: swp: assignment to %q mixes approximate and precise additive terms; it cannot be fissioned into subword passes", st.Array)
				}
				na.Accumulate = true
			}
			out = append(out, na)
		default:
			return nil, fmt.Errorf("compiler: swp: unsupported statement %T", s)
		}
	}
	return out, nil
}

func (t *swpRewriter) expr(e Expr) (Expr, error) {
	switch ex := e.(type) {
	case Const:
		return e, nil
	case Load:
		// A bare load of an annotated array inside a summation refines
		// pass by pass too: the identity is trivially distributive.
		if _, ok := t.isASPLoad(ex); ok {
			sp := t.spans[t.sub]
			return ASPLoad{Array: ex.Array, Index: ex.Index, Bits: t.bits,
				Sub: t.sub, Start: sp.Start, Width: sp.Width}, nil
		}
		return e, nil
	case Bin:
		if ex.Op == OpMul {
			if ld, ok := t.isASPLoad(ex.B); ok {
				other, err := t.otherOperand(ex.A)
				if err != nil {
					return nil, err
				}
				return t.aspMul(other, ld), nil
			}
			if ld, ok := t.isASPLoad(ex.A); ok {
				other, err := t.otherOperand(ex.B)
				if err != nil {
					return nil, err
				}
				return t.aspMul(other, ld), nil
			}
		}
		a, err := t.expr(ex.A)
		if err != nil {
			return nil, err
		}
		b, err := t.expr(ex.B)
		if err != nil {
			return nil, err
		}
		return Bin{Op: ex.Op, A: a, B: b}, nil
	case Reduce:
		if ex.Op != OpAdd {
			// Max folds are not distributive over subword passes; leave the
			// reduction precise (replicated verbatim in every pass).
			return e, nil
		}
		if t.vectorLoads {
			if dot, ok, err := t.tryVectorizeReduce(ex); err != nil {
				return nil, err
			} else if ok {
				return dot, nil
			}
		}
		body, err := t.expr(ex.Body)
		if err != nil {
			return nil, err
		}
		return Reduce{Var: ex.Var, N: ex.N, Body: body}, nil
	default:
		return nil, fmt.Errorf("compiler: swp: unsupported expression %T", e)
	}
}

// otherOperand rewrites the full-precision operand of an anytime multiply.
// A direct load stays a full-word load (the paper's F[i] operand is loaded
// in its entirety) even when its array happens to carry an asp pragma, as
// in Var's x*x squaring.
func (t *swpRewriter) otherOperand(e Expr) (Expr, error) {
	if _, ok := e.(Load); ok {
		return e, nil
	}
	return t.expr(e)
}

// tryVectorizeReduce applies the Figure 12 load-vectorization: a reduction
// whose body multiplies a unit-stride ASP load against another load becomes
// a reduction over packed plane words, each word feeding several MUL_ASPs.
func (t *swpRewriter) tryVectorizeReduce(ex Reduce) (Expr, bool, error) {
	mul, ok := ex.Body.(Bin)
	if !ok || mul.Op != OpMul {
		return nil, false, nil
	}
	aspLd, aok := t.isASPLoad(mul.A)
	var otherLd Load
	if aok {
		o, ok := mul.B.(Load)
		if !ok {
			return nil, false, nil
		}
		otherLd = o
	} else {
		aspLd, aok = t.isASPLoad(mul.B)
		if !aok {
			return nil, false, nil
		}
		o, ok := mul.A.(Load)
		if !ok {
			return nil, false, nil
		}
		otherLd = o
	}
	if aspLd.Index.Coeff[ex.Var] != 1 {
		return nil, false, nil
	}
	lane := t.bits
	for 32%lane != 0 {
		lane++
	}
	lpw := int64(32 / lane)
	if ex.N%lpw != 0 {
		return nil, false, fmt.Errorf("compiler: swp: reduce trip %d not divisible by %d lanes", ex.N, lpw)
	}
	// Word index = (element index with reduce var removed)/lpw + kw.
	word := Lin{Coeff: map[string]int64{}, Const: aspLd.Index.Const / lpw}
	if aspLd.Index.Const%lpw != 0 {
		return nil, false, fmt.Errorf("compiler: swp: asp base offset not lane aligned")
	}
	for v, c := range aspLd.Index.Coeff {
		if v == ex.Var {
			continue
		}
		if c%lpw != 0 {
			return nil, false, fmt.Errorf("compiler: swp: asp index coefficient %d not divisible by %d", c, lpw)
		}
		word.Coeff[v] = c / lpw
	}
	kw := ex.Var + "_w"
	word.Coeff[kw] = 1
	stride := otherLd.Index.Coeff[ex.Var]
	otherIdx := Lin{Coeff: map[string]int64{}, Const: otherLd.Index.Const}
	for v, c := range otherLd.Index.Coeff {
		if v == ex.Var {
			continue
		}
		otherIdx.Coeff[v] = c
	}
	otherIdx.Coeff[kw] = stride * lpw
	plane := t.numSub - 1 - t.sub
	return Reduce{
		Var: kw,
		N:   ex.N / lpw,
		Body: ASPDotPacked{
			Array: aspLd.Array, Plane: plane, Word: word,
			Bits: t.bits, Sub: t.sub,
			OtherArray: otherLd.Array, OtherIndex: otherIdx, OtherStride: stride,
		},
	}, true, nil
}

// anytimeHomogeneous reports whether every additive term of the expression
// carries an anytime (subworded) factor, so that summing the expression
// over all subword passes telescopes to the precise value. Shifts truncate
// per pass and are therefore not distributive over the pass sum.
func anytimeHomogeneous(e Expr) bool {
	switch ex := e.(type) {
	case ASPMul, ASPLoad, ASPDotPacked:
		return true
	case Bin:
		if ex.Op == OpAdd || ex.Op == OpSub {
			return anytimeHomogeneous(ex.A) && anytimeHomogeneous(ex.B)
		}
		return false
	case Reduce:
		return anytimeHomogeneous(ex.Body)
	}
	return false
}

// containsAnytime reports whether the expression embeds an anytime multiply.
func containsAnytime(e Expr) bool {
	switch ex := e.(type) {
	case ASPMul, ASPDotPacked, ASPLoad:
		return true
	case Bin:
		return containsAnytime(ex.A) || containsAnytime(ex.B)
	case Reduce:
		return containsAnytime(ex.Body)
	case ASVBin:
		return containsAnytime(ex.A) || containsAnytime(ex.B)
	}
	return false
}
