package compiler

import (
	"fmt"

	"whatsnext/internal/asm"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

// Options selects the compilation strategy for a kernel.
type Options struct {
	Mode Mode
	// VectorLoads applies the Figure 12 optimization in ModeSWP: the
	// ASP-annotated input is stored subword-major so one load fetches the
	// subwords of several elements.
	VectorLoads bool
	// NoSkim suppresses skim-point insertion (ablation).
	NoSkim bool
	// MaxPasses keeps only the first (most significant) n subword passes —
	// the compile-time form of skimming: the committed result is the
	// n-pass approximation and the remaining passes are never emitted.
	// Zero means all passes. Ignored in ModePrecise.
	MaxPasses int
	// ProgressEmbed lowers the kernel as one fused store-once pass whose
	// output tiles carry intrinsic progress (Kernel.Progress declares the
	// tiling): the harness pre-fills the output with the reserved sentinel
	// (see Compiled.InstallData) and the emitted prologue scans tile
	// markers to find the resume frontier, so restart needs no separate
	// NVM progress state.
	ProgressEmbed bool
	// DisableChecks skips the post-emit static verification (and the
	// certificate that comes with it). Only for compiler-internal tests
	// that deliberately construct hazardous code.
	DisableChecks bool
}

// Compiled is a fully lowered kernel: assembly text, the assembled program
// image, and the data layout used to install inputs and extract outputs.
type Compiled struct {
	Kernel      *Kernel // possibly augmented with synthesized arrays
	Options     Options
	NumSubwords int
	Asm         string
	Program     *asm.Program
	Layout      *Layout
	EndLabel    string
	// Cert is the wncheck verification certificate for the emitted image
	// (nil when Options.DisableChecks is set).
	Cert *wncheck.Certificate
}

// InstallData installs one input sample into data memory. For
// progress-embedded builds it first fills the progress-carrying output
// array with the reserved sentinel, so the emitted resume scan can tell
// committed tiles from unwritten ones; every harness (core system, fault
// injector, experiment devices) must install inputs through this method
// rather than raw Layout.Install calls.
func (c *Compiled) InstallData(m *mem.Memory, inputs map[string][]int64) error {
	if c.Options.ProgressEmbed && c.Kernel.Progress != nil {
		if err := c.Layout.Fill(m, c.Kernel.Progress.Output, c.Kernel.Progress.Sentinel); err != nil {
			return err
		}
	}
	for name, vals := range inputs {
		if err := c.Layout.Install(m, name, vals); err != nil {
			return err
		}
	}
	return nil
}

// Compile lowers a kernel under the given options.
func Compile(k *Kernel, opts Options) (*Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if opts.ProgressEmbed {
		return compileProgress(k, opts)
	}
	var (
		segments [][]Stmt
		numSub   = 1
		target   = k
		err      error
	)
	switch opts.Mode {
	case ModePrecise:
		segments = [][]Stmt{k.Body}
	case ModeSWP:
		segments, numSub, err = swpTransform(k, opts.VectorLoads)
	case ModeSWV:
		segments, target, numSub, err = swvTransform(k)
	default:
		err = fmt.Errorf("compiler: unknown mode %v", opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	if opts.MaxPasses > 0 && opts.MaxPasses < len(segments) {
		// Passes are ordered most significant first, so truncation keeps
		// the passes that carry the real content.
		segments = segments[:opts.MaxPasses]
		numSub = opts.MaxPasses
	}

	layout, err := BuildLayout(target, opts.Mode, opts.VectorLoads)
	if err != nil {
		return nil, err
	}

	e := &emitter{}
	cg := newCodegen(e, target, layout, opts.Mode)
	endLabel := "END"
	for i, seg := range segments {
		if len(segments) > 1 {
			e.comment("subword pass %d of %d (most significant first)", i+1, len(segments))
		}
		if err := cg.openSegment(seg); err != nil {
			return nil, fmt.Errorf("compiler: %s pass %d: %w", k.Name, i, err)
		}
		if err := cg.genStmts(seg); err != nil {
			return nil, fmt.Errorf("compiler: %s pass %d: %w", k.Name, i, err)
		}
		cg.closeSegment()
		if i < len(segments)-1 && !opts.NoSkim {
			// An acceptable approximation now exists: arm the skim point so
			// an outage commits the current result and moves on.
			e.emitf("SKM %s", endLabel)
		}
	}
	e.placeLabel(endLabel)
	e.emitf("HALT")

	text := e.String()
	prog, err := asm.Assemble(text)
	if err != nil {
		return nil, fmt.Errorf("compiler: %s: assembling generated code: %w", k.Name, err)
	}
	var cert *wncheck.Certificate
	if !opts.DisableChecks {
		cert, err = verifyEmitted(k.Name, prog)
		if err != nil {
			return nil, err
		}
	}
	return &Compiled{
		Kernel:      target,
		Options:     opts,
		NumSubwords: numSub,
		Asm:         text,
		Program:     prog,
		Layout:      layout,
		EndLabel:    endLabel,
		Cert:        cert,
	}, nil
}
