package compiler

import (
	"fmt"
	"strings"

	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/wncheck"
)

// emitter accumulates assembly text with fresh-label support.
type emitter struct {
	b      strings.Builder
	labelN int
}

func (e *emitter) emitf(format string, args ...any) {
	fmt.Fprintf(&e.b, "    "+format+"\n", args...)
}

// amenable marks the next emitted instruction as WN-amenable for Table I
// accounting.
func (e *emitter) amenable() {
	e.b.WriteString(".amenable\n")
}

// bound annotates the next emitted instruction's innermost loop with a
// static trip bound, for loops whose counter the verifier cannot infer
// (e.g. the progress-embedded resume loop, whose remaining-trip count is
// loaded from the non-volatile marker scan).
func (e *emitter) bound(n int64) {
	fmt.Fprintf(&e.b, ".bound %d\n", n)
}

func (e *emitter) placeLabel(l string) {
	fmt.Fprintf(&e.b, "%s:\n", l)
}

func (e *emitter) fresh(prefix string) string {
	e.labelN++
	return fmt.Sprintf("%s_%d", prefix, e.labelN)
}

func (e *emitter) comment(format string, args ...any) {
	fmt.Fprintf(&e.b, "    ; "+format+"\n", args...)
}

func (e *emitter) String() string { return e.b.String() }

// regalloc hands out scratch registers R0..R12. SP/LR/PC are reserved.
type regalloc struct {
	inUse [13]bool
}

func (ra *regalloc) alloc() (isa.Reg, error) {
	for i := range ra.inUse {
		if !ra.inUse[i] {
			ra.inUse[i] = true
			return isa.Reg(i), nil
		}
	}
	return 0, fmt.Errorf("compiler: out of registers (13 scratch registers exhausted)")
}

func (ra *regalloc) release(r isa.Reg) {
	if int(r) < len(ra.inUse) {
		ra.inUse[r] = false
	}
}

// verifyEmitted runs the static verifier — including the crash-consistency
// analysis, so every compile is self-certifying for power-failure soundness
// and returns the verification certificate alongside the image.
// Error-severity findings in generated code are compiler bugs, so they fail
// the compilation; warnings and info findings are left to wnlint.
func verifyEmitted(name string, prog *asm.Program) (*wncheck.Certificate, error) {
	res, cert, err := wncheck.Verify(prog, wncheck.Options{Crash: true, Progress: true})
	if err != nil {
		return nil, fmt.Errorf("compiler: %s: verifying generated code: %w", name, err)
	}
	errs := res.Errors()
	if len(errs) == 0 {
		return cert, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "compiler: %s: generated code fails static verification (%d errors)", name, len(errs))
	for i, d := range errs {
		if i == 3 {
			fmt.Fprintf(&b, "; and %d more", len(errs)-i)
			break
		}
		fmt.Fprintf(&b, "; %s", d)
	}
	return nil, fmt.Errorf("%s", b.String())
}
