package compiler

import (
	"fmt"
	"strings"
)

// Dump renders a kernel as readable pseudo-source with its pragma
// annotations — the inverse presentation of the paper's Listing 1/3 — for
// debugging and for the wnsim -dump-ir flag.
func Dump(k *Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s\n", k.Name)
	for _, a := range k.Arrays {
		switch a.Pragma {
		case PragmaASP:
			fmt.Fprintf(&b, "#pragma asp input(%s, %d)\n", a.Name, a.SubwordBits)
		case PragmaASV:
			extra := ""
			if a.Provisioned {
				extra = ", provisioned"
			}
			fmt.Fprintf(&b, "#pragma asv input(%s, %d%s)\n", a.Name, a.SubwordBits, extra)
		}
	}
	for _, a := range k.Arrays {
		attrs := ""
		if a.Output {
			attrs += " output"
		}
		if a.PostShift != 0 {
			attrs += fmt.Sprintf(" >>%d", a.PostShift)
		}
		if a.ValueBits != 0 && a.ValueBits != a.ElemBits {
			attrs += fmt.Sprintf(" value:%db", a.ValueBits)
		}
		fmt.Fprintf(&b, "uint%d %s[%d];%s\n", a.ElemBits, a.Name, a.Len, attrs)
	}
	dumpStmts(&b, k.Body, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func dumpStmts(b *strings.Builder, body []Stmt, depth int) {
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			indent(b, depth)
			fmt.Fprintf(b, "for (%s = 0; %s < %d; %s++) {\n", st.Var, st.Var, st.N, st.Var)
			dumpStmts(b, st.Body, depth+1)
			indent(b, depth)
			b.WriteString("}\n")
		case Assign:
			indent(b, depth)
			op := "="
			if st.Accumulate {
				op = "+="
			}
			fmt.Fprintf(b, "%s[%s] %s %s;\n", st.Array, dumpLin(st.Index), op, dumpExpr(st.Value))
		case PackedAssign:
			indent(b, depth)
			fmt.Fprintf(b, "%s.plane%d[%s] = %s;  // packed\n", st.Array, st.Plane, dumpLin(st.Word), dumpExpr(st.Value))
		default:
			indent(b, depth)
			fmt.Fprintf(b, "/* %T */\n", s)
		}
	}
}

func dumpLin(l Lin) string {
	var parts []string
	for _, v := range l.vars() {
		c := l.Coeff[v]
		if c == 1 {
			parts = append(parts, v)
		} else {
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if l.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", l.Const))
	}
	return strings.Join(parts, "+")
}

func binOpSym(op BinOp) string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpShr:
		return ">>"
	case OpShl:
		return "<<"
	case OpBitAnd:
		return "&"
	case OpBitOr:
		return "|"
	case OpBitXor:
		return "^"
	}
	return "?"
}

func dumpExpr(e Expr) string {
	switch ex := e.(type) {
	case Const:
		return fmt.Sprintf("%d", ex.V)
	case Load:
		return fmt.Sprintf("%s[%s]", ex.Array, dumpLin(ex.Index))
	case Bin:
		return fmt.Sprintf("(%s %s %s)", dumpExpr(ex.A), binOpSym(ex.Op), dumpExpr(ex.B))
	case Reduce:
		return fmt.Sprintf("sum(%s<%d: %s)", ex.Var, ex.N, dumpExpr(ex.Body))
	case ASPMul:
		return fmt.Sprintf("(%s *asp%d sub%d(%s[%s]))", dumpExpr(ex.Other), ex.Bits, ex.Sub, ex.Array, dumpLin(ex.Index))
	case ASPLoad:
		return fmt.Sprintf("sub%d(%s[%s])<<%d", ex.Sub, ex.Array, dumpLin(ex.Index), ex.Start)
	case ASVBin:
		return fmt.Sprintf("(%s %s_asv%d %s)", dumpExpr(ex.A), binOpSym(ex.Op), ex.LaneBits, dumpExpr(ex.B))
	case PackedLoad:
		return fmt.Sprintf("%s.plane%d[%s]", ex.Array, ex.Plane, dumpLin(ex.Word))
	case VecReduce:
		return fmt.Sprintf("vsum(%s.plane%d[%s..+%d], lanes=%d)<<%d",
			ex.Array, ex.Plane, dumpLin(ex.WordStart), ex.NumWords, 32/ex.LaneBits, ex.Shift)
	case ASPDotPacked:
		return fmt.Sprintf("vdot(%s.plane%d[%s], %s[%s], stride=%d, sub%d)",
			ex.Array, ex.Plane, dumpLin(ex.Word), ex.OtherArray, dumpLin(ex.OtherIndex), ex.OtherStride, ex.Sub)
	default:
		return fmt.Sprintf("/*%T*/", e)
	}
}
