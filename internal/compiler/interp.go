package compiler

import "fmt"

// Interpret evaluates a source-IR kernel natively with the simulator's
// integer semantics (32-bit wrap-around arithmetic, logical shifts,
// zero-initialized arrays) and returns the final contents of every array.
// It accepts only source IR — the anytime nodes produced by the SWP/SWV
// passes are rejected — and serves as the reference model for differential
// testing of the whole compile-assemble-execute pipeline.
func Interpret(k *Kernel, inputs map[string][]int64) (map[string][]int64, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	it := &interp{k: k, arrays: map[string][]uint32{}, vars: map[string]int64{}}
	for _, a := range k.Arrays {
		store := make([]uint32, a.Len)
		if vals, ok := inputs[a.Name]; ok {
			if len(vals) > a.Len {
				return nil, fmt.Errorf("compiler: interpret: %d values for %q of length %d", len(vals), a.Name, a.Len)
			}
			for i, v := range vals {
				store[i] = uint32(uint64(v) & elemMask(a.ElemBits))
			}
		}
		it.arrays[a.Name] = store
	}
	if err := it.stmts(k.Body); err != nil {
		return nil, err
	}
	out := make(map[string][]int64, len(it.arrays))
	for name, store := range it.arrays {
		a, _ := k.ArrayByName(name)
		vals := make([]int64, len(store))
		for i, v := range store {
			vals[i] = int64(uint64(v) & elemMask(a.ElemBits))
		}
		out[name] = vals
	}
	return out, nil
}

type interp struct {
	k      *Kernel
	arrays map[string][]uint32
	vars   map[string]int64
}

func (it *interp) index(array string, l Lin) (int, error) {
	idx := l.Const
	for v, c := range l.Coeff {
		idx += c * it.vars[v]
	}
	a, _ := it.k.ArrayByName(array)
	if idx < 0 || idx >= int64(a.Len) {
		return 0, fmt.Errorf("compiler: interpret: %s[%d] out of bounds (len %d)", array, idx, a.Len)
	}
	return int(idx), nil
}

func (it *interp) stmts(body []Stmt) error {
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			for i := int64(0); i < st.N; i++ {
				it.vars[st.Var] = i
				if err := it.stmts(st.Body); err != nil {
					return err
				}
			}
			delete(it.vars, st.Var)
		case Assign:
			v, err := it.eval(st.Value)
			if err != nil {
				return err
			}
			i, err := it.index(st.Array, st.Index)
			if err != nil {
				return err
			}
			a, _ := it.k.ArrayByName(st.Array)
			cur := it.arrays[st.Array][i]
			if st.Accumulate {
				v += cur
			}
			it.arrays[st.Array][i] = uint32(uint64(v) & elemMask(a.ElemBits))
		default:
			return fmt.Errorf("compiler: interpret: unsupported statement %T", s)
		}
	}
	return nil
}

func (it *interp) eval(e Expr) (uint32, error) {
	switch ex := e.(type) {
	case Const:
		return uint32(ex.V), nil
	case Load:
		i, err := it.index(ex.Array, ex.Index)
		if err != nil {
			return 0, err
		}
		return it.arrays[ex.Array][i], nil
	case Bin:
		a, err := it.eval(ex.A)
		if err != nil {
			return 0, err
		}
		b, err := it.eval(ex.B)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case OpAdd:
			return a + b, nil
		case OpSub:
			return a - b, nil
		case OpMul:
			return a * b, nil
		case OpShr:
			if b >= 32 {
				return 0, nil
			}
			return a >> b, nil
		case OpShl:
			if b >= 32 {
				return 0, nil
			}
			return a << b, nil
		case OpBitAnd:
			return a & b, nil
		case OpBitOr:
			return a | b, nil
		case OpBitXor:
			return a ^ b, nil
		}
		return 0, fmt.Errorf("compiler: interpret: unknown op %d", ex.Op)
	case Reduce:
		var sum uint32
		for i := int64(0); i < ex.N; i++ {
			it.vars[ex.Var] = i
			v, err := it.eval(ex.Body)
			if err != nil {
				return 0, err
			}
			sum += v
		}
		delete(it.vars, ex.Var)
		return sum, nil
	default:
		return 0, fmt.Errorf("compiler: interpret: unsupported expression %T (source IR only)", e)
	}
}
