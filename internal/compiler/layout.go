package compiler

import (
	"fmt"

	"whatsnext/internal/mem"
)

// Mode selects the compilation strategy.
type Mode int

const (
	ModePrecise Mode = iota // conventional full-precision code
	ModeSWP                 // anytime subword pipelining (Section III-A)
	ModeSWV                 // anytime subword vectorization (Section III-B)
)

func (m Mode) String() string {
	switch m {
	case ModePrecise:
		return "precise"
	case ModeSWP:
		return "swp"
	case ModeSWV:
		return "swv"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ArrayLayout records where and how one array lives in non-volatile data
// memory. Planar arrays are stored in subword-major order (Figure 7): plane
// 0 holds the most significant subword of every element, packed into
// LaneBits-wide lanes inside 32-bit words.
type ArrayLayout struct {
	Array      Array
	Base       uint32
	Planar     bool
	LaneBits   int // lane width in planes: SubwordBits, doubled if provisioned
	NumPlanes  int // subwords per element
	PlaneBytes int // bytes per plane, word-aligned
	TotalBytes int
}

// LanesPerWord returns how many lanes one 32-bit word holds.
func (al ArrayLayout) LanesPerWord() int { return 32 / al.LaneBits }

// PlaneForSub maps a least-significant-first subword index to its plane
// index (plane 0 is the most significant subword, stored first).
func (al ArrayLayout) PlaneForSub(sub int) int { return al.NumPlanes - 1 - sub }

// PlaneBase returns the address of a plane.
func (al ArrayLayout) PlaneBase(plane int) uint32 {
	return al.Base + uint32(plane*al.PlaneBytes)
}

// SubBits returns the width in bits of the given subword (the top subword
// may be narrower when SubwordBits does not divide the significant width).
func (al ArrayLayout) SubBits(sub int) int {
	b := al.Array.SubwordBits
	if rem := al.Array.EffectiveBits() - sub*b; rem < b {
		return rem
	}
	return b
}

// ElemBytes returns the element size of a row-major array.
func (al ArrayLayout) ElemBytes() int { return al.Array.ElemBits / 8 }

// Layout places every kernel array in data memory.
type Layout struct {
	Arrays     map[string]ArrayLayout
	TotalBytes int
}

// BuildLayout assigns addresses. SWV-annotated arrays become planar in
// ModeSWV; ASP-annotated arrays become planar (unprovisioned) in ModeSWP
// when vectorLoads is set — the Figure 12 load-vectorization option.
func BuildLayout(k *Kernel, mode Mode, vectorLoads bool) (*Layout, error) {
	l := &Layout{Arrays: make(map[string]ArrayLayout, len(k.Arrays))}
	addr := uint32(mem.DataBase)
	for _, a := range k.Arrays {
		al := ArrayLayout{Array: a, Base: addr}
		planar := (mode == ModeSWV && a.Pragma == PragmaASV) ||
			(mode == ModeSWP && vectorLoads && a.Pragma == PragmaASP)
		if planar {
			b := a.SubwordBits
			if b <= 0 {
				return nil, fmt.Errorf("compiler: array %q is annotated but has no subword size", a.Name)
			}
			al.Planar = true
			al.NumPlanes = (a.EffectiveBits() + b - 1) / b
			al.LaneBits = b
			if mode == ModeSWV && a.Provisioned {
				al.LaneBits = 2 * b
			}
			// Round lane width up to a divisor of 32 so lanes never
			// straddle words: 1,2,4,8,16 are fine; 3 and 6 round to 4 and 8.
			for 32%al.LaneBits != 0 {
				al.LaneBits++
			}
			lpw := 32 / al.LaneBits
			words := (a.Len + lpw - 1) / lpw
			al.PlaneBytes = words * 4
			al.TotalBytes = al.PlaneBytes * al.NumPlanes
		} else {
			al.TotalBytes = a.Len * a.ElemBits / 8
			al.TotalBytes = (al.TotalBytes + 3) &^ 3
		}
		l.Arrays[a.Name] = al
		addr += uint32(al.TotalBytes)
		// Keep arrays word-aligned.
		addr = (addr + 3) &^ 3
	}
	l.TotalBytes = int(addr - mem.DataBase)
	return l, nil
}

// Of returns the layout of a named array.
func (l *Layout) Of(name string) (ArrayLayout, error) {
	al, ok := l.Arrays[name]
	if !ok {
		return ArrayLayout{}, fmt.Errorf("compiler: no layout for array %q", name)
	}
	return al, nil
}

func elemMask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (1 << bits) - 1
}

// Install writes element values into memory in the array's layout. Values
// are truncated to the element width.
func (l *Layout) Install(m *mem.Memory, name string, vals []int64) error {
	al, err := l.Of(name)
	if err != nil {
		return err
	}
	if len(vals) > al.Array.Len {
		return fmt.Errorf("compiler: %d values for array %q of length %d", len(vals), name, al.Array.Len)
	}
	if al.Array.Pragma != PragmaNone {
		limit := int64(1) << al.Array.EffectiveBits()
		for i, v := range vals {
			if v < 0 || v >= limit {
				return fmt.Errorf("compiler: array %q element %d (%d) exceeds its declared %d-bit precision",
					name, i, v, al.Array.EffectiveBits())
			}
		}
	}
	buf := make([]byte, al.TotalBytes)
	if al.Planar {
		l.encodePlanar(al, vals, buf)
	} else {
		mask := elemMask(al.Array.ElemBits)
		switch eb := al.ElemBytes(); eb {
		case 1:
			for i, v := range vals {
				buf[i] = byte(uint64(v) & mask)
			}
		case 2:
			for i, v := range vals {
				u := uint64(v) & mask
				buf[2*i] = byte(u)
				buf[2*i+1] = byte(u >> 8)
			}
		case 4:
			for i, v := range vals {
				u := uint64(v) & mask
				buf[4*i] = byte(u)
				buf[4*i+1] = byte(u >> 8)
				buf[4*i+2] = byte(u >> 16)
				buf[4*i+3] = byte(u >> 24)
			}
		default:
			for i, v := range vals {
				u := uint64(v) & mask
				for b := 0; b < eb; b++ {
					buf[i*eb+b] = byte(u >> (8 * b))
				}
			}
		}
	}
	return m.WriteData(al.Base, buf)
}

// Fill writes the same raw element value into every slot of a row-major
// array (used to pre-fill progress-embedded outputs with the reserved
// sentinel; the value bypasses precision validation deliberately — the
// sentinel sits outside the quantized range by construction).
func (l *Layout) Fill(m *mem.Memory, name string, raw uint32) error {
	al, err := l.Of(name)
	if err != nil {
		return err
	}
	if al.Planar {
		return fmt.Errorf("compiler: cannot fill planar array %q", name)
	}
	buf := make([]byte, al.TotalBytes)
	eb := al.ElemBytes()
	for i := 0; i < al.Array.Len; i++ {
		for b := 0; b < eb; b++ {
			buf[i*eb+b] = byte(raw >> (8 * b))
		}
	}
	return m.WriteData(al.Base, buf)
}

func (l *Layout) encodePlanar(al ArrayLayout, vals []int64, buf []byte) {
	b := al.Array.SubwordBits
	lpw := al.LanesPerWord()
	for i, v := range vals {
		u := uint64(v) & elemMask(al.Array.ElemBits)
		for sub := 0; sub < al.NumPlanes; sub++ {
			sw := (u >> (b * sub)) & elemMask(al.SubBits(sub))
			plane := al.PlaneForSub(sub)
			word := i / lpw
			lane := i % lpw
			off := plane*al.PlaneBytes + word*4
			cur := uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
			cur |= uint32(sw) << (lane * al.LaneBits)
			buf[off], buf[off+1], buf[off+2], buf[off+3] = byte(cur), byte(cur>>8), byte(cur>>16), byte(cur>>24)
		}
	}
}

// Extract reads element values back out of memory, reconstructing planar
// arrays by summing lanes at their subword positions — the carry-aware
// reconstruction that makes provisioned vectorization exact.
func (l *Layout) Extract(m *mem.Memory, name string) ([]int64, error) {
	al, err := l.Of(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, al.TotalBytes)
	if err := m.ReadData(al.Base, buf); err != nil {
		return nil, err
	}
	vals := make([]int64, al.Array.Len)
	if al.Planar {
		b := al.Array.SubwordBits
		lpw := al.LanesPerWord()
		laneMask := elemMask(al.LaneBits)
		for i := range vals {
			var acc uint64
			for sub := 0; sub < al.NumPlanes; sub++ {
				plane := al.PlaneForSub(sub)
				word := i / lpw
				lane := i % lpw
				off := plane*al.PlaneBytes + word*4
				cur := uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
				lv := uint64(cur>>(lane*al.LaneBits)) & laneMask
				acc += lv << (b * sub)
			}
			vals[i] = int64(acc & elemMask(al.Array.ElemBits))
		}
	} else {
		eb := al.ElemBytes()
		for i := range vals {
			var u uint64
			for bb := 0; bb < eb; bb++ {
				u |= uint64(buf[i*eb+bb]) << (8 * bb)
			}
			vals[i] = int64(u)
		}
	}
	return vals, nil
}

// OutputValues extracts an output array and applies its PostShift scaling,
// returning display-domain values for quality metrics.
func (l *Layout) OutputValues(m *mem.Memory, name string) ([]float64, error) {
	raw, err := l.Extract(m, name)
	if err != nil {
		return nil, err
	}
	al := l.Arrays[name]
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = float64(uint64(v) >> al.Array.PostShift)
	}
	return out, nil
}
