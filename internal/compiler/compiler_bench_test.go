package compiler

import "testing"

func benchKernel() *Kernel {
	n := int64(64)
	return &Kernel{
		Name: "bench",
		Arrays: []Array{
			{Name: "A", ElemBits: 16, Len: int(n * n), Pragma: PragmaASP, SubwordBits: 4},
			{Name: "B", ElemBits: 16, Len: int(n * n)},
			{Name: "OUT", ElemBits: 32, Len: int(n * n)},
		},
		Body: []Stmt{Loop{Var: "i", N: n, Body: []Stmt{
			Loop{Var: "j", N: n, Body: []Stmt{
				Assign{Array: "OUT", Index: LinSum(LinVar("i", n, 0), LinVar("j", 1, 0)),
					Value: Reduce{Var: "k", N: n, Body: Bin{Op: OpMul,
						A: Load{Array: "B", Index: LinSum(LinVar("k", n, 0), LinVar("j", 1, 0))},
						B: Load{Array: "A", Index: LinSum(LinVar("i", n, 0), LinVar("k", 1, 0))}}}},
			}},
		}}},
	}
}

// BenchmarkCompilePrecise measures straight-line lowering + assembly.
func BenchmarkCompilePrecise(b *testing.B) {
	k := benchKernel()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(k, Options{Mode: ModePrecise}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileSWP measures the fission pass at 4 bits (4 passes).
func BenchmarkCompileSWP(b *testing.B) {
	k := benchKernel()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(k, Options{Mode: ModeSWP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpret measures the reference interpreter on the same kernel.
func BenchmarkInterpret(b *testing.B) {
	k := benchKernel()
	in := map[string][]int64{}
	for _, name := range []string{"A", "B"} {
		vals := make([]int64, 64*64)
		for i := range vals {
			vals[i] = int64(i % 65536)
		}
		in[name] = vals
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Interpret(k, in); err != nil {
			b.Fatal(err)
		}
	}
}
