package compiler

import (
	"fmt"

	"whatsnext/internal/asm"
	"whatsnext/internal/wncheck"
)

// Progress-embedded lowering (the Stateful-CNN idea, adapted to the WN
// pipeline): instead of fissioning an anytime kernel into one pass per
// subword — which commits every output element once per pass and needs the
// runtime to persist where it stopped — the kernel is fused into a single
// pass in which every output element is computed to its full (possibly
// truncated, see Options.MaxPasses) precision in registers and stored
// exactly once, tile by tile. The harness pre-fills the output array with a
// reserved sentinel, and the emitted prologue scans each tile's marker
// element (the one its iteration stores last) for that sentinel to find the
// resume frontier. Progress therefore lives intrinsically in the committed
// output features: a restart-from-entry runtime resumes bit-exactly with
// zero NVM writes outside the output region.

// compileProgress lowers a kernel under Options.ProgressEmbed.
func compileProgress(k *Kernel, opts Options) (*Compiled, error) {
	pi := k.Progress
	if pi == nil {
		return nil, fmt.Errorf("compiler: %s: ProgressEmbed requires Kernel.Progress", k.Name)
	}
	if opts.VectorLoads {
		return nil, fmt.Errorf("compiler: %s: ProgressEmbed does not support vectorized loads", k.Name)
	}
	out, ok := k.ArrayByName(pi.Output)
	if !ok {
		return nil, fmt.Errorf("compiler: %s: progress output %q undeclared", k.Name, pi.Output)
	}
	if !out.Output || out.ElemBits != 32 || out.Pragma != PragmaNone {
		return nil, fmt.Errorf("compiler: %s: progress output %q must be a plain 32-bit output array", k.Name, pi.Output)
	}
	if len(k.Body) != 1 {
		return nil, fmt.Errorf("compiler: %s: progress embedding requires a single top-level tile loop", k.Name)
	}
	tl, ok := k.Body[0].(Loop)
	if !ok || tl.Var != pi.TileVar {
		return nil, fmt.Errorf("compiler: %s: top-level statement must be a loop over tile variable %q", k.Name, pi.TileVar)
	}
	coeff := pi.Marker.Coeff[pi.TileVar]
	if coeff <= 0 || len(pi.Marker.vars()) != 1 {
		return nil, fmt.Errorf("compiler: %s: progress marker must be strictly increasing in %q alone", k.Name, pi.TileVar)
	}
	for _, t := range []int64{0, tl.N - 1} {
		if idx := coeff*t + pi.Marker.Const; idx < 0 || idx >= int64(out.Len) {
			return nil, fmt.Errorf("compiler: %s: progress marker index %d out of bounds for %q", k.Name, idx, pi.Output)
		}
	}

	var (
		seg    []Stmt
		numSub = 1
		err    error
	)
	switch opts.Mode {
	case ModePrecise:
		seg = k.Body
	case ModeSWP:
		seg, numSub, err = swpFused(k, opts.MaxPasses)
	case ModeSWV:
		seg, numSub, err = swvFused(k, opts.MaxPasses)
	default:
		err = fmt.Errorf("compiler: unknown mode %v", opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	if err := checkStoreOnce(seg, pi.Output); err != nil {
		return nil, fmt.Errorf("compiler: %s: %w", k.Name, err)
	}

	layout, err := BuildLayout(k, opts.Mode, false)
	if err != nil {
		return nil, err
	}
	e := &emitter{}
	cg := newCodegen(e, k, layout, opts.Mode)
	endLabel := "END"
	if err := cg.genProgressSegment(seg, pi, endLabel); err != nil {
		return nil, fmt.Errorf("compiler: %s: %w", k.Name, err)
	}
	e.placeLabel(endLabel)
	e.emitf("HALT")

	text := e.String()
	prog, err := asm.Assemble(text)
	if err != nil {
		return nil, fmt.Errorf("compiler: %s: assembling generated code: %w", k.Name, err)
	}
	var cert *wncheck.Certificate
	if !opts.DisableChecks {
		cert, err = verifyEmitted(k.Name, prog)
		if err != nil {
			return nil, err
		}
	}
	return &Compiled{
		Kernel:      k,
		Options:     opts,
		NumSubwords: numSub,
		Asm:         text,
		Program:     prog,
		Layout:      layout,
		EndLabel:    endLabel,
		Cert:        cert,
	}, nil
}

// checkStoreOnce enforces the embedding contract: every store targets the
// progress-carrying output and commits its element exactly once, so a
// committed non-sentinel marker proves the whole tile is final.
func checkStoreOnce(body []Stmt, output string) error {
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			if err := checkStoreOnce(st.Body, output); err != nil {
				return err
			}
		case Assign:
			if st.Array != output {
				return fmt.Errorf("progress embedding requires all stores to target %q, found store to %q", output, st.Array)
			}
			if st.Accumulate {
				return fmt.Errorf("progress embedding forbids accumulating stores to %q", output)
			}
		default:
			return fmt.Errorf("progress embedding: unsupported statement %T", s)
		}
	}
	return nil
}

// addTerm left-associates a sum so evaluation holds one accumulator
// register while each new term is materialized.
func addTerm(sum, term Expr) Expr {
	if sum == nil {
		return term
	}
	return Bin{Op: OpAdd, A: sum, B: term}
}

// swpFused rewrites every anytime multiply (and bare anytime load) into the
// register-held sum of its per-subword terms, most significant first,
// keeping the top maxPasses subwords (0 = all). The result is a single
// store-once segment: truncation trades accuracy for multiply cycles
// (MUL_ASP<b> costs b cycles against the precise MUL's 16).
func swpFused(k *Kernel, maxPasses int) ([]Stmt, int, error) {
	bits, elemBits, err := aspParams(k)
	if err != nil {
		return nil, 0, err
	}
	spans := subwordSpans(elemBits, bits)
	numSub := len(spans)
	retain := numSub
	if maxPasses > 0 && maxPasses < numSub {
		retain = maxPasses
	}
	f := &swpFuser{
		t:      &swpRewriter{k: k, bits: bits, numSub: numSub, spans: spans},
		retain: retain,
	}
	seg, err := f.stmts(k.Body)
	if err != nil {
		return nil, 0, err
	}
	return seg, retain, nil
}

type swpFuser struct {
	t      *swpRewriter
	retain int
}

// subs returns the retained subword indices, most significant first.
func (f *swpFuser) subs() []int {
	out := make([]int, 0, f.retain)
	for s := f.t.numSub - 1; s >= f.t.numSub-f.retain; s-- {
		out = append(out, s)
	}
	return out
}

func (f *swpFuser) stmts(body []Stmt) ([]Stmt, error) {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			nb, err := f.stmts(st.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, Loop{Var: st.Var, N: st.N, Body: nb})
		case Assign:
			nv, err := f.expr(st.Value)
			if err != nil {
				return nil, err
			}
			out = append(out, Assign{Array: st.Array, Index: st.Index, Value: nv, Accumulate: st.Accumulate})
		default:
			return nil, fmt.Errorf("compiler: swp: unsupported statement %T", s)
		}
	}
	return out, nil
}

func (f *swpFuser) expr(e Expr) (Expr, error) {
	switch ex := e.(type) {
	case Const:
		return e, nil
	case Load:
		if _, ok := f.t.isASPLoad(ex); ok {
			var sum Expr
			for _, s := range f.subs() {
				sp := f.t.spans[s]
				sum = addTerm(sum, ASPLoad{Array: ex.Array, Index: ex.Index,
					Bits: f.t.bits, Sub: s, Start: sp.Start, Width: sp.Width})
			}
			return sum, nil
		}
		return e, nil
	case Bin:
		if ex.Op == OpMul {
			if ld, ok := f.t.isASPLoad(ex.B); ok {
				return f.fuseMul(ex.A, ld)
			}
			if ld, ok := f.t.isASPLoad(ex.A); ok {
				return f.fuseMul(ex.B, ld)
			}
		}
		a, err := f.expr(ex.A)
		if err != nil {
			return nil, err
		}
		b, err := f.expr(ex.B)
		if err != nil {
			return nil, err
		}
		return Bin{Op: ex.Op, A: a, B: b}, nil
	case Reduce:
		body, err := f.expr(ex.Body)
		if err != nil {
			return nil, err
		}
		return Reduce{Var: ex.Var, N: ex.N, Body: body, Op: ex.Op}, nil
	default:
		return nil, fmt.Errorf("compiler: swp: unsupported expression %T", e)
	}
}

func (f *swpFuser) fuseMul(other Expr, ld Load) (Expr, error) {
	// A direct load stays a full-word load, exactly as in the per-pass
	// rewriter; compound operands are fused recursively.
	o := other
	if _, isLoad := other.(Load); !isLoad {
		var err error
		if o, err = f.expr(other); err != nil {
			return nil, err
		}
	}
	var sum Expr
	for _, s := range f.subs() {
		sp := f.t.spans[s]
		sum = addTerm(sum, ASPMul{Other: o, Array: ld.Array, Index: ld.Index,
			Bits: f.t.bits, Sub: s, Start: sp.Start, Width: sp.Width})
	}
	return sum, nil
}

// swvFused rewrites each ASV reduction into the register-held sum of its
// per-plane lane-parallel partial sums (most significant plane first,
// keeping maxPasses planes), replacing the per-pass accumulate-into-a-
// synthesized-sum-array shape — which stores every element once per pass —
// with a single store-once segment.
func swvFused(k *Kernel, maxPasses int) ([]Stmt, int, error) {
	bits, elemBits, provisioned, err := asvParams(k)
	if err != nil {
		return nil, 0, err
	}
	numSub := (elemBits + bits - 1) / bits
	retain := numSub
	if maxPasses > 0 && maxPasses < numSub {
		retain = maxPasses
	}
	tr := &swvRewriter{
		k: k, bits: bits, numSub: numSub,
		laneBits: asvLaneBits(bits, provisioned),
	}
	var fuse func(body []Stmt) ([]Stmt, error)
	fuse = func(body []Stmt) ([]Stmt, error) {
		out := make([]Stmt, 0, len(body))
		for _, s := range body {
			switch st := s.(type) {
			case Loop:
				nb, err := fuse(st.Body)
				if err != nil {
					return nil, err
				}
				out = append(out, Loop{Var: st.Var, N: st.N, Body: nb})
			case Assign:
				red, found, err := findASVReduce(k, st.Value)
				if err != nil {
					return nil, err
				}
				if !found {
					return nil, fmt.Errorf("compiler: swv: progress embedding supports reduction assignments only")
				}
				var chain Expr
				for p := 0; p < retain; p++ {
					tr.sub = numSub - 1 - p // plane p holds this subword
					vr, err := tr.vecReduce(red)
					if err != nil {
						return nil, err
					}
					chain = addTerm(chain, vr)
				}
				out = append(out, Assign{Array: st.Array, Index: st.Index,
					Value: replaceReduce(st.Value, chain)})
			default:
				return nil, fmt.Errorf("compiler: swv: unsupported statement %T", s)
			}
		}
		return out, nil
	}
	seg, err := fuse(k.Body)
	if err != nil {
		return nil, 0, err
	}
	return seg, retain, nil
}

// genProgressSegment emits the fused segment with the resume-scan prologue:
//
//	scan <- &OUT[marker(0)]; remaining <- T
//	L: if OUT[marker] == sentinel goto FOUND
//	   scan += markerStep; if --remaining != 0 goto L
//	   goto END                        ; every tile already committed
//	FOUND:
//	   each tile-dependent pointer += completed * itsTileStride
//	   run the tile loop `remaining` times
//
// The scan reads through its own dedicated register, so no store in the
// tile loop shares a base register with it (keeping the emitted image clean
// under the static WAR rules), and a fresh run finds the sentinel at tile 0
// with every pointer untouched — the golden path is the resume path.
func (cg *codegen) genProgressSegment(seg []Stmt, pi *ProgressInfo, endLabel string) error {
	lp := seg[0].(Loop)
	if err := cg.openSegment(seg); err != nil {
		return err
	}
	al, err := cg.layout.Of(pi.Output)
	if err != nil {
		return err
	}
	if al.Planar {
		return fmt.Errorf("compiler: progress output %q must be row-major", pi.Output)
	}
	elemBytes := int64(al.ElemBytes())
	markerStep := pi.Marker.Coeff[pi.TileVar] * elemBytes
	markerBase := al.Base + uint32(pi.Marker.Const*elemBytes)

	scan, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	sent, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	tmp, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	ctr, err := cg.ra.alloc()
	if err != nil {
		return err
	}
	cg.e.comment("progress-embedded resume: scan tile markers for the sentinel frontier")
	cg.loadConst(scan, markerBase)
	cg.loadConst(sent, pi.Sentinel)
	cg.loadConst(ctr, uint32(lp.N))
	head := cg.e.fresh("Lscan")
	found := cg.e.fresh("Lresume")
	cg.e.placeLabel(head)
	cg.e.emitf("LDR %s, [%s, #0]", tmp, scan)
	cg.e.emitf("CMP %s, %s", tmp, sent)
	cg.e.emitf("BEQ %s", found)
	if err := cg.addImm(scan, markerStep); err != nil {
		return err
	}
	cg.e.emitf("SUBIS %s, %s, #1", ctr, ctr)
	cg.e.emitf("BNE %s", head)
	cg.e.emitf("B %s", endLabel)
	cg.e.placeLabel(found)
	// ctr now holds the remaining tile count; advance every pointer whose
	// index depends on the tile variable past the completed tiles.
	cg.e.comment("advance pointers past %s completed tiles", pi.TileVar)
	cg.loadConst(tmp, uint32(lp.N))
	cg.e.emitf("SUB %s, %s, %s", tmp, tmp, ctr)
	for _, key := range cg.ptrOrder {
		p := cg.ptrs[key]
		c := p.lin.Coeff[lp.Var]
		if c == 0 {
			continue
		}
		if c*p.stepBytes < 0 {
			return fmt.Errorf("compiler: progress embedding requires non-negative tile strides")
		}
		cg.loadConst(sent, uint32(c*p.stepBytes))
		cg.e.emitf("MUL %s, %s, %s", sent, sent, tmp)
		cg.e.emitf("ADD %s, %s, %s", p.reg, p.reg, sent)
	}
	cg.ra.release(scan)
	cg.ra.release(sent)
	cg.ra.release(tmp)

	// The tile loop proper, entered with the preloaded remaining-trip
	// counter. No pointer rewind afterwards: HALT follows immediately.
	body := cg.e.fresh("L" + lp.Var)
	cg.e.placeLabel(body)
	// The remaining-trip counter came from the marker scan, not a constant,
	// so the verifier cannot infer this loop's trips; the full tile count is
	// a sound upper bound.
	cg.e.bound(lp.N)
	if err := cg.genStmts(lp.Body); err != nil {
		return err
	}
	for _, key := range cg.ptrOrder {
		p := cg.ptrs[key]
		if c := p.lin.Coeff[lp.Var]; c != 0 {
			if err := cg.addImm(p.reg, c*p.stepBytes); err != nil {
				return err
			}
		}
	}
	cg.e.emitf("SUBIS %s, %s, #1", ctr, ctr)
	cg.e.emitf("BNE %s", body)
	cg.ra.release(ctr)
	cg.closeSegment()
	return nil
}
