package compiler

// IR nodes produced by the SWP/SWV passes (never present in source IR).

// ASVBin is a lane-parallel add/subtract on packed subword-plane words,
// compiled to ADD_ASV/SUB_ASV with the given lane width.
type ASVBin struct {
	Op       BinOp // OpAdd or OpSub
	A, B     Expr
	LaneBits int
}

// PackedAssign stores a 32-bit packed word into a plane of a planar array.
type PackedAssign struct {
	Array string
	Plane int
	Word  Lin
	Value Expr
}

// VecReduce sums the lanes of NumWords consecutive packed words of one
// plane, using lane-parallel accumulation with a horizontal fold every
// ChunkWords words (bounding lane overflow), and yields the plane's scalar
// partial sum shifted left by Shift bits — its contribution at the plane's
// subword position.
type VecReduce struct {
	Array      string
	Plane      int
	WordStart  Lin
	NumWords   int64
	ChunkWords int64 // must divide NumWords; 0 means NumWords (single fold)
	LaneBits   int
	Shift      int
}

// ASPDotPacked computes a partial dot product from one packed subword word
// (the Figure 12 SWP+vectorized-loads optimization):
//
//	sum over lanes l of subword_lane(l) * Other[OtherIndex + l*OtherStride]
//
// with each product formed by a MUL_ASP at subword position Sub.
type ASPDotPacked struct {
	Array       string // planar ASP input
	Plane       int
	Word        Lin
	Bits        int
	Sub         int
	OtherArray  string
	OtherIndex  Lin   // element index of the lane-0 companion operand
	OtherStride int64 // element stride between consecutive lanes
}

func (ASVBin) exprNode()       {}
func (VecReduce) exprNode()    {}
func (ASPDotPacked) exprNode() {}
func (PackedAssign) stmtNode() {}
