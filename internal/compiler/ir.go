// Package compiler implements the What's Next compilation flow: a small
// loop-nest intermediate representation with asp/asv pragma annotations
// (Listings 1 and 3 of the paper), the loop-fission pass that rewrites
// long-latency multiplies into anytime subword-pipelined passes
// (Algorithm 1), the subword-vectorization pass that transposes annotated
// arrays into subword-major order and emits lane-parallel ASV code, skim
// point insertion, and code generation to the WN assembler dialect.
package compiler

import (
	"fmt"
	"sort"
)

// Pragma kinds, mirroring the paper's #pragma asp / #pragma asv directives.
type PragmaKind int

const (
	PragmaNone PragmaKind = iota
	PragmaASP             // anytime subword pipelining input/output
	PragmaASV             // anytime subword vectorization input/output
)

// Array declares a data array in non-volatile memory.
type Array struct {
	Name     string
	ElemBits int  // 8, 16 or 32
	Len      int  // element count
	Output   bool // read back by the harness as kernel output
	// PostShift is a right-shift the harness applies when interpreting the
	// array as output values (raw 32-bit accumulators carry fixed-point
	// scale). Zero for plain values.
	PostShift int

	Pragma      PragmaKind
	SubwordBits int  // asp/asv subword size from the pragma
	Provisioned bool // asv only: allocate double-width lanes for carries
	// ValueBits is the significant precision of the data (the paper's
	// pragmas declare the input precision alongside the subword size, e.g.
	// a 12-bit ADC reading stored in a 16-bit element). Subword passes
	// cover only the significant bits, so the most significant pass always
	// carries real content. Zero means ElemBits.
	ValueBits int
}

// EffectiveBits returns the significant data width used for subword
// decomposition.
func (a Array) EffectiveBits() int {
	if a.ValueBits > 0 {
		return a.ValueBits
	}
	return a.ElemBits
}

// Lin is an affine index expression over loop variables:
// Coeff["i"]*i + ... + Const, in elements.
type Lin struct {
	Coeff map[string]int64
	Const int64
}

// LinConst builds a constant index.
func LinConst(c int64) Lin { return Lin{Const: c} }

// LinVar builds the index c*v + k.
func LinVar(v string, c, k int64) Lin {
	return Lin{Coeff: map[string]int64{v: c}, Const: k}
}

// LinSum adds affine expressions.
func LinSum(ls ...Lin) Lin {
	out := Lin{Coeff: map[string]int64{}}
	for _, l := range ls {
		out.Const += l.Const
		for v, c := range l.Coeff {
			out.Coeff[v] += c
		}
	}
	return out
}

// vars returns the variables with non-zero coefficients, sorted.
func (l Lin) vars() []string {
	var vs []string
	for v, c := range l.Coeff {
		if c != 0 {
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	return vs
}

// key returns a canonical string identity for pointer-register sharing.
func (l Lin) key() string {
	s := fmt.Sprintf("%d", l.Const)
	for _, v := range l.vars() {
		s += fmt.Sprintf("+%d*%s", l.Coeff[v], v)
	}
	return s
}

// BinOp enumerates binary operators in expressions.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpShr // logical right shift by constant
	OpShl // left shift by constant
	// Bitwise operators are element-wise on the binary expansion of their
	// operands — the paper's Section III-B vectorization condition holds
	// trivially, so SWV needs no new hardware for them.
	OpBitAnd
	OpBitOr
	OpBitXor
	// OpMax is the unsigned maximum (used by pooling reductions). It is not
	// distributive over subword decomposition, so it only lowers precisely.
	OpMax
)

// Expr is an expression tree node.
type Expr interface{ exprNode() }

// Const is an integer literal.
type Const struct{ V int64 }

// Load reads Array[Index].
type Load struct {
	Array string
	Index Lin
}

// Bin applies Op to A and B. For OpShr/OpShl, B must be a Const.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Reduce combines Body over Var in [0,N) with Op (the zero value, OpAdd,
// is the ordinary summation; OpMax folds the unsigned maximum).
type Reduce struct {
	Var  string
	N    int64
	Body Expr
	Op   BinOp
}

// ASPMul is the anytime subword-pipelined multiply produced by the SWP
// pass: Other * subword(Array[Index], Sub), shifted into place. It never
// appears in source IR.
type ASPMul struct {
	Other Expr
	Array string
	Index Lin
	Bits  int
	Sub   int // subword index, 0 = least significant
	Start int // bit position of the subword within the value
	Width int // subword width in bits (the least significant subword may be narrower)
}

// ASPLoad is the anytime subword-pipelined form of a plain load of an
// annotated array: subword(Array[Index], Sub) shifted into its bit
// position. Summation is trivially distributive, so annotated loads inside
// reductions refine pass by pass like multiplies do. Produced by the SWP
// pass only.
type ASPLoad struct {
	Array string
	Index Lin
	Bits  int
	Sub   int
	Start int
	Width int
}

// PackedLoad reads a packed subword-plane word (the Figure 12
// vectorized-load optimization for SWP inputs). Produced by passes only.
type PackedLoad struct {
	Array string
	Plane int
	Word  Lin // word index within the plane
}

func (Const) exprNode()      {}
func (Load) exprNode()       {}
func (Bin) exprNode()        {}
func (Reduce) exprNode()     {}
func (ASPMul) exprNode()     {}
func (ASPLoad) exprNode()    {}
func (PackedLoad) exprNode() {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Loop iterates Var over [0,N) running Body.
type Loop struct {
	Var  string
	N    int64
	Body []Stmt
}

// Assign stores Value into Array[Index]; with Accumulate it adds to the
// existing element instead.
type Assign struct {
	Array      string
	Index      Lin
	Value      Expr
	Accumulate bool
}

func (Loop) stmtNode()   {}
func (Assign) stmtNode() {}

// ProgressInfo declares how a kernel's output encodes its own progress,
// the Stateful-CNN idea: the body is a single top-level Loop over TileVar,
// each iteration of which commits one output tile whose element at Marker
// (affine in TileVar) is stored last. Under Options.ProgressEmbed the
// prologue scans the markers for the reserved Sentinel value to locate the
// resume frontier, so no separate NVM progress word is ever written.
type ProgressInfo struct {
	Output   string // output array carrying the embedded progress
	TileVar  string // top-level tile loop variable
	Marker   Lin    // per-tile marker element index, affine in TileVar only
	Sentinel uint32 // reserved "not yet committed" value
}

// Kernel is a compilable unit: arrays plus a statement list.
type Kernel struct {
	Name   string
	Arrays []Array
	Body   []Stmt
	// Progress, when non-nil, enables progress-embedded lowering
	// (Options.ProgressEmbed); other modes ignore it.
	Progress *ProgressInfo
}

// ArrayByName finds an array declaration.
func (k *Kernel) ArrayByName(name string) (*Array, bool) {
	for i := range k.Arrays {
		if k.Arrays[i].Name == name {
			return &k.Arrays[i], true
		}
	}
	return nil, false
}

// Validate checks structural invariants: declared arrays, supported element
// widths, in-bounds constant indices, loop variables defined before use.
func (k *Kernel) Validate() error {
	names := map[string]bool{}
	for _, a := range k.Arrays {
		if names[a.Name] {
			return fmt.Errorf("compiler: duplicate array %q", a.Name)
		}
		names[a.Name] = true
		switch a.ElemBits {
		case 8, 16, 32:
		default:
			return fmt.Errorf("compiler: array %q has unsupported width %d", a.Name, a.ElemBits)
		}
		if a.Len <= 0 {
			return fmt.Errorf("compiler: array %q has length %d", a.Name, a.Len)
		}
		if a.Pragma != PragmaNone {
			switch a.SubwordBits {
			case 1, 2, 3, 4, 8:
			default:
				return fmt.Errorf("compiler: array %q pragma subword %d unsupported", a.Name, a.SubwordBits)
			}
		}
		if a.ValueBits < 0 || a.ValueBits > a.ElemBits {
			return fmt.Errorf("compiler: array %q value width %d exceeds element width %d", a.Name, a.ValueBits, a.ElemBits)
		}
	}
	vars := map[string]bool{}
	return validateStmts(k, k.Body, vars)
}

func validateStmts(k *Kernel, body []Stmt, vars map[string]bool) error {
	for _, s := range body {
		switch st := s.(type) {
		case Loop:
			if st.N <= 0 {
				return fmt.Errorf("compiler: loop %q has trip count %d", st.Var, st.N)
			}
			if vars[st.Var] {
				return fmt.Errorf("compiler: loop variable %q shadows an outer loop", st.Var)
			}
			vars[st.Var] = true
			if err := validateStmts(k, st.Body, vars); err != nil {
				return err
			}
			delete(vars, st.Var)
		case Assign:
			if _, ok := k.ArrayByName(st.Array); !ok {
				return fmt.Errorf("compiler: assign to undeclared array %q", st.Array)
			}
			if err := validateLin(st.Index, vars); err != nil {
				return err
			}
			if err := validateExpr(k, st.Value, vars); err != nil {
				return err
			}
		default:
			return fmt.Errorf("compiler: unknown statement %T", s)
		}
	}
	return nil
}

func validateLin(l Lin, vars map[string]bool) error {
	for v := range l.Coeff {
		if !vars[v] {
			return fmt.Errorf("compiler: index uses undefined variable %q", v)
		}
	}
	return nil
}

func validateExpr(k *Kernel, e Expr, vars map[string]bool) error {
	switch ex := e.(type) {
	case Const:
		return nil
	case Load:
		if _, ok := k.ArrayByName(ex.Array); !ok {
			return fmt.Errorf("compiler: load from undeclared array %q", ex.Array)
		}
		return validateLin(ex.Index, vars)
	case Bin:
		if ex.Op == OpShr || ex.Op == OpShl {
			if _, ok := ex.B.(Const); !ok {
				return fmt.Errorf("compiler: shift amount must be constant")
			}
		}
		if err := validateExpr(k, ex.A, vars); err != nil {
			return err
		}
		return validateExpr(k, ex.B, vars)
	case Reduce:
		if ex.N <= 0 {
			return fmt.Errorf("compiler: reduce %q has trip count %d", ex.Var, ex.N)
		}
		if ex.Op != OpAdd && ex.Op != OpMax {
			return fmt.Errorf("compiler: reduce %q: only add and max reductions are supported", ex.Var)
		}
		if vars[ex.Var] {
			return fmt.Errorf("compiler: reduce variable %q shadows an outer loop", ex.Var)
		}
		vars[ex.Var] = true
		defer delete(vars, ex.Var)
		return validateExpr(k, ex.Body, vars)
	case ASPMul:
		if err := validateExpr(k, ex.Other, vars); err != nil {
			return err
		}
		return validateLin(ex.Index, vars)
	case ASPLoad:
		return validateLin(ex.Index, vars)
	case PackedLoad:
		return validateLin(ex.Word, vars)
	default:
		return fmt.Errorf("compiler: unknown expression %T", e)
	}
}
