package cpu

import (
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

// Backend selects the batched executor implementation behind Run.
type Backend uint8

const (
	// BackendSuper (the zero value, so it is the default) executes fused
	// superblock closures and deoptimizes to RunUntil at every boundary the
	// runtimes observe: NV-store hooks, per-instruction cost replay over
	// store/mul blocks, skim, halt, faults, untranslated code, and the
	// budget tail.
	BackendSuper Backend = iota
	// BackendBatch forces the per-instruction batched interpreter
	// (RunUntil) unconditionally — the PR 3 engine, kept as the deopt
	// target and the A/B reference for `wnbench -backend batch`.
	BackendBatch
)

// Run dispatches one batched execution window to the selected backend. It
// has RunUntil's exact contract: same stop reasons, same overshoot bound
// (budget + MaxInstrCycles - 1), same Stats and cost replay semantics.
func (c *CPU) Run(budget uint64, costs *[]Cost) (BatchResult, error) {
	if c.Backend == BackendBatch {
		return c.RunUntil(budget, costs)
	}
	return c.RunSuper(budget, costs)
}

// translation is the per-image superblock table, indexed by instruction
// slot. Only a block's first slot carries a pointer: jumping into the middle
// of a block (computed BX targets only — every statically-known branch
// target is a CFG leader and therefore starts a block) deoptimizes.
//
// A translation depends only on the decode cache and the amenable bitset,
// never on register or memory state, so forked CPUs share one instance.
type translation struct {
	blockAt []*transBlock
}

// opCount is one (opcode, occurrences) pair of a superblock, applied to
// Stats.OpCount in O(distinct ops) instead of O(instructions) per execution.
type opCount struct {
	op isa.Opcode
	n  uint64
}

// transBlock is one fused superblock: the straight-line body as an array of
// closures executed with zero dispatch, plus the block's terminator inlined
// when it is a direct/conditional branch, BL, or BX (through a non-PC
// register). All aggregate accounting (cycles, amenable hits, op counts) is
// precomputed so a full-block execution updates Stats in O(1).
type transBlock struct {
	startPC uint32 // address of the first body instruction
	endPC   uint32 // one past the last body instruction; terminator address if fused

	fns  []func(*CPU) bool           // body; false = fault recorded in c.sbErr
	term func(*CPU) (uint32, uint32) // fused terminator: (nextPC, cycles); nil if none

	instrs     uint64 // len(fns) + 1 if term != nil
	bodyCycles uint64 // static cycle sum over fns (memo fast-hits subtract via sbAdj)
	maxCycles  uint64 // bodyCycles + worst-case terminator cycles; budget gate
	amen       uint64 // amenable marks across body + fused terminator

	// Per-body-instruction data for the partial-fault exit, which must
	// account a prefix exactly as RunUntil would have.
	ops   []isa.Opcode
	cyc   []uint32
	amens []bool
	// costs holds the per-instruction Cost records emitted on the cost-replay
	// path. Only valid when the block has neither stores nor multiplies
	// (then every cost is static with zero NV writes); the gate enforces it.
	costs []Cost

	opCounts []opCount
	hasStore bool
	hasMul   bool
}

// RunSuper is the superblock executor. At each block boundary it either
// executes a fused block — when one starts at PC, fits the remaining budget
// in the worst case, and no runtime-visibility gate applies — or hands the
// rest of the window to RunUntil. Delegation (rather than a private slow
// path) keeps the deopt semantics definitionally identical to the batched
// interpreter: every stop reason, fault message, hook interaction, and the
// overshoot bound come from the same code.
//
// Gates forcing deoptimization at a block:
//   - a BeforeStore hook is installed and the block stores (the hook must
//     observe NV-data stores at instruction granularity via StopStore);
//   - the caller wants per-instruction costs and the block stores or
//     multiplies (store costs carry NV-write counts, memoized multiplies
//     have data-dependent cycles);
//   - the block's worst-case cycles do not fit the remaining budget (the
//     interpreter must pick the exact stop instruction).
func (c *CPU) RunSuper(budget uint64, costs *[]Cost) (BatchResult, error) {
	var res BatchResult
	if c.Halted {
		res.Reason = StopHalt
		return res, nil
	}
	if err := c.ensureDecodeCache(); err != nil {
		res.Reason = StopFault
		return res, err
	}
	if c.trans == nil {
		c.buildTranslation()
	}
	if len(c.sbRuns) != len(c.trans.blockAt) {
		c.sbRuns = make([]uint64, len(c.trans.blockAt))
		c.sbDirty = c.sbDirty[:0]
	}

	var (
		tr                        = c.trans
		hook                      = c.BeforeStore != nil
		wantCosts                 = costs != nil
		regs                      = &c.Regs
		cycAcc, instrAcc, amenAcc uint64
		reason                    = StopBudget
		fault                     error
	)

	pc := regs[isa.PC]
	for cycAcc < budget {
		slot := (pc - mem.CodeBase) / isa.InstBytes
		var tb *transBlock
		if pc%isa.InstBytes == 0 && slot < uint32(len(tr.blockAt)) {
			tb = tr.blockAt[slot]
		}
		if tb == nil ||
			cycAcc+tb.maxCycles > budget ||
			(hook && tb.hasStore) ||
			(wantCosts && (tb.hasStore || tb.hasMul)) {
			// Deoptimize: the batched interpreter finishes the window.
			instrAcc, amenAcc = c.flushSuperCounts(instrAcc, amenAcc)
			sub, err := c.RunUntil(budget-cycAcc, costs)
			res.Cycles = cycAcc + sub.Cycles
			res.Instructions = instrAcc + sub.Instructions
			res.Reason = sub.Reason
			c.Stats.Cycles += cycAcc
			c.Stats.Instructions += instrAcc
			c.Stats.AmenableOps += amenAcc
			return res, err
		}

		// Execute the block — and when it is a self-loop (its terminator
		// branches back to its own head), keep iterating without repeating
		// the slot lookup and entry gates. Completed executions accumulate
		// in a local counter and flush into the deferred per-slot tally.
		runs := uint64(0)
		faultIdx := -1
		for {
			if tb.hasMul {
				c.sbAdj = 0 // memo fast-hit cycle discounts accumulate here
			}
			for i, f := range tb.fns {
				if !f(c) {
					faultIdx = i
					break
				}
			}
			if faultIdx >= 0 {
				break
			}
			blockCycles := tb.bodyCycles
			if tb.hasMul {
				blockCycles -= c.sbAdj
			}
			cycAcc += blockCycles
			runs++
			if wantCosts {
				*costs = append(*costs, tb.costs...)
			}
			if tb.term != nil {
				nextPC, tcyc := tb.term(c)
				cycAcc += uint64(tcyc)
				if wantCosts {
					*costs = append(*costs, Cost{Cycles: tcyc})
				}
				pc = nextPC
			} else {
				pc = tb.endPC
			}
			if pc != tb.startPC || cycAcc+tb.maxCycles > budget {
				break
			}
		}
		if runs > 0 {
			if c.sbRuns[slot] == 0 {
				c.sbDirty = append(c.sbDirty, slot)
			}
			c.sbRuns[slot] += runs
		}
		regs[isa.PC] = pc

		if faultIdx >= 0 {
			// A body memory access faulted at index faultIdx. Account the
			// executed prefix exactly as RunUntil: OpCount/cycles/costs for
			// instructions before the fault, the amenable mark of the
			// faulting instruction too (the interpreter tallies it before
			// executing), PC left at the faulting instruction.
			var prefix uint64
			for i := 0; i < faultIdx; i++ {
				c.Stats.OpCount[tb.ops[i]]++
				prefix += uint64(tb.cyc[i])
				if tb.amens[i] {
					amenAcc++
				}
				if wantCosts {
					*costs = append(*costs, tb.costs[i])
				}
			}
			if tb.hasMul {
				prefix -= c.sbAdj
			}
			cycAcc += prefix
			instrAcc += uint64(faultIdx)
			if tb.amens[faultIdx] {
				amenAcc++
			}
			pc = tb.startPC + uint32(faultIdx)*isa.InstBytes
			regs[isa.PC] = pc
			reason = StopFault
			fault = c.sbErr
			c.sbErr = nil
			break
		}
	}

	instrAcc, amenAcc = c.flushSuperCounts(instrAcc, amenAcc)
	res.Cycles = cycAcc
	res.Instructions = instrAcc
	res.Reason = reason
	c.Stats.Cycles += cycAcc
	c.Stats.Instructions += instrAcc
	c.Stats.AmenableOps += amenAcc
	return res, fault
}

// flushSuperCounts applies the deferred per-block run tallies to
// Stats.OpCount and folds the corresponding instruction and amenable counts
// into the window accumulators, clearing the tallies for the next window.
func (c *CPU) flushSuperCounts(instrAcc, amenAcc uint64) (uint64, uint64) {
	if len(c.sbDirty) == 0 {
		return instrAcc, amenAcc
	}
	for _, slot := range c.sbDirty {
		tb := c.trans.blockAt[slot]
		runs := c.sbRuns[slot]
		c.sbRuns[slot] = 0
		for _, oc := range tb.opCounts {
			c.Stats.OpCount[oc.op] += oc.n * runs
		}
		instrAcc += tb.instrs * runs
		amenAcc += tb.amen * runs
	}
	c.sbDirty = c.sbDirty[:0]
	return instrAcc, amenAcc
}

// buildTranslation fuses the decoded program into superblocks along the
// wncheck CFG. Block extents come from the same graph the static verifier
// reasons about (wncheck.ImageCFG), so translated boundaries cannot drift
// from the checker's.
func (c *CPU) buildTranslation() {
	cache := c.decodeCache
	tr := &translation{blockAt: make([]*transBlock, len(cache))}
	c.trans = tr
	if len(cache) == 0 {
		return
	}
	g := wncheck.ImageCFG(c.Mem.ProgramImage())
	for _, b := range g.Blocks() {
		start := int(b.Start-mem.CodeBase) / isa.InstBytes
		end := int(b.End-mem.CodeBase) / isa.InstBytes
		if start < 0 || end > len(cache) || start >= end {
			continue
		}
		if tb := buildBlock(cache, start, end); tb != nil {
			tr.blockAt[start] = tb
		}
	}
}

// TranslationBlocks returns the [start, end) instruction-address extent of
// every fused superblock in ascending order, the end covering the fused
// terminator when present. The CFG-boundary test pins these against
// wncheck's exported blocks.
func (c *CPU) TranslationBlocks() ([][2]uint32, error) {
	if err := c.ensureDecodeCache(); err != nil {
		return nil, err
	}
	if c.trans == nil {
		c.buildTranslation()
	}
	var out [][2]uint32
	for _, tb := range c.trans.blockAt {
		if tb == nil {
			continue
		}
		end := tb.endPC
		if tb.term != nil {
			end += isa.InstBytes
		}
		out = append(out, [2]uint32{tb.startPC, end})
	}
	return out, nil
}

// buildBlock fuses one CFG block [start, end) of decode-cache slots: a
// maximal translatable prefix as the body, plus the terminator when the
// prefix reaches it. Returns nil if nothing fused.
func buildBlock(cache []decoded, start, end int) *transBlock {
	tb := &transBlock{startPC: mem.CodeBase + uint32(start*isa.InstBytes)}
	counts := make(map[isa.Opcode]uint64)
	i := start
	for ; i < end; i++ {
		d := cache[i]
		fn := buildBodyFn(d.in)
		if fn == nil {
			break
		}
		tb.fns = append(tb.fns, fn)
		tb.ops = append(tb.ops, d.in.Op)
		tb.cyc = append(tb.cyc, d.cycles)
		tb.amens = append(tb.amens, d.amen)
		tb.costs = append(tb.costs, Cost{Cycles: d.cycles})
		tb.bodyCycles += uint64(d.cycles)
		if d.amen {
			tb.amen++
		}
		if d.in.Op.IsStore() {
			tb.hasStore = true
		}
		if d.in.Op.IsMul() {
			tb.hasMul = true
		}
		counts[d.in.Op]++
	}
	tb.endPC = mem.CodeBase + uint32(i*isa.InstBytes)
	tb.instrs = uint64(len(tb.fns))
	tb.maxCycles = tb.bodyCycles
	if i == end-1 {
		// The body covers everything up to the block's last instruction;
		// fuse the terminator if it is an inlinable branch.
		d := cache[i]
		if term, worst := buildTerm(d.in, mem.CodeBase+uint32(i*isa.InstBytes)); term != nil {
			tb.term = term
			tb.instrs++
			tb.maxCycles += uint64(worst)
			if d.amen {
				tb.amen++
			}
			counts[d.in.Op]++
		}
	}
	if tb.instrs == 0 {
		return nil
	}
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if n := counts[op]; n > 0 {
			tb.opCounts = append(tb.opCounts, opCount{op: op, n: n})
		}
	}
	return tb
}

// usesRn reports whether the opcode reads its Rn operand.
func usesRn(op isa.Opcode) bool {
	switch {
	case op >= isa.OpAdd && op <= isa.OpSubIS: // three-operand ALU, CMP forms
		return true
	case op == isa.OpMul:
		return true
	case op.IsLoad() || op.IsStore():
		return true
	}
	return false
}

// bodyUsesPC reports whether the instruction reads or writes PC through an
// operand it actually uses. Such instructions stay on the interpreter: the
// superblock body keeps PC in a local and only writes the register-file slot
// at block exit, so a mid-block PC operand would observe a stale value.
func bodyUsesPC(in isa.Instruction) bool {
	switch in.Op {
	case isa.OpNop:
		return false
	case isa.OpCmp:
		return in.Rn == isa.PC || in.Rm == isa.PC
	case isa.OpCmpI:
		return in.Rn == isa.PC
	}
	if in.Rd == isa.PC {
		return true
	}
	if usesRn(in.Op) && in.Rn == isa.PC {
		return true
	}
	if in.Op.HasRm() && in.Rm == isa.PC {
		return true
	}
	return false
}

// buildBodyFn compiles one straight-line instruction into a closure over its
// operand indices (masked, proving them in-range so the bounds checks
// vanish). Returns nil for instructions that must stay on the interpreter:
// branches (fused separately as terminators), HALT, SKM, invalid slots, and
// PC-relative operands. Memory faults are parked in c.sbErr and signalled by
// returning false.
//
// The closures mirror (*CPU).execute case for case — the differential and
// fuzz-corpus tests in super_test.go pin all three engines to identical
// architectural state, Stats, and cycle counts.
func buildBodyFn(in isa.Instruction) func(*CPU) bool {
	op := in.Op
	if !op.Valid() || op.IsBranch() || op == isa.OpHalt || op == isa.OpSkm {
		return nil
	}
	if bodyUsesPC(in) {
		return nil
	}
	rd := int(in.Rd) & 15
	rn := int(in.Rn) & 15
	rm := int(in.Rm) & 15
	imm := uint32(in.Imm)

	switch op {
	case isa.OpNop:
		return func(*CPU) bool { return true }

	case isa.OpMov:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rm]; return true }
	case isa.OpMovI:
		return func(c *CPU) bool { c.Regs[rd] = imm; return true }
	case isa.OpMovTI:
		hi := imm << 16
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rd]&0xFFFF | hi; return true }

	case isa.OpAdd:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] + c.Regs[rm]; return true }
	case isa.OpAddI:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] + imm; return true }
	case isa.OpSub:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] - c.Regs[rm]; return true }
	case isa.OpSubI:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] - imm; return true }
	case isa.OpAnd:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] & c.Regs[rm]; return true }
	case isa.OpAndI:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] & imm; return true }
	case isa.OpOrr:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] | c.Regs[rm]; return true }
	case isa.OpOrrI:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] | imm; return true }
	case isa.OpEor:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] ^ c.Regs[rm]; return true }
	case isa.OpEorI:
		return func(c *CPU) bool { c.Regs[rd] = c.Regs[rn] ^ imm; return true }
	case isa.OpLsl:
		return func(c *CPU) bool { c.Regs[rd] = shiftL(c.Regs[rn], c.Regs[rm]); return true }
	case isa.OpLslI:
		return func(c *CPU) bool { c.Regs[rd] = shiftL(c.Regs[rn], imm); return true }
	case isa.OpLsr:
		return func(c *CPU) bool { c.Regs[rd] = shiftR(c.Regs[rn], c.Regs[rm]); return true }
	case isa.OpLsrI:
		return func(c *CPU) bool { c.Regs[rd] = shiftR(c.Regs[rn], imm); return true }
	case isa.OpAsr:
		return func(c *CPU) bool { c.Regs[rd] = shiftAR(c.Regs[rn], c.Regs[rm]); return true }
	case isa.OpAsrI:
		return func(c *CPU) bool { c.Regs[rd] = shiftAR(c.Regs[rn], imm); return true }

	case isa.OpCmp:
		return func(c *CPU) bool { c.setFlagsSub(c.Regs[rn], c.Regs[rm]); return true }
	case isa.OpCmpI:
		return func(c *CPU) bool { c.setFlagsSub(c.Regs[rn], imm); return true }
	case isa.OpSubIS:
		return func(c *CPU) bool {
			a := c.Regs[rn]
			c.setFlagsSub(a, imm)
			c.Regs[rd] = a - imm
			return true
		}

	case isa.OpMul:
		// Static cost is 16 cycles; a memo fast hit costs 1, recorded as a
		// 15-cycle discount in sbAdj (the block subtracts it afterwards).
		return func(c *CPU) bool {
			a, b := c.Regs[rn], c.Regs[rm]
			prod := a * b
			if c.Memo != nil {
				var fast bool
				prod, fast = c.mulWithMemo(a, b)
				if fast {
					c.sbAdj += MaxInstrCycles - 1
				}
			}
			c.Regs[rd] = prod
			return true
		}

	case isa.OpMulASP1, isa.OpMulASP2, isa.OpMulASP3, isa.OpMulASP4, isa.OpMulASP8:
		sh := uint32(op.ASPBits()) * imm
		discount := uint64(op.BaseCycles() - 1)
		return func(c *CPU) bool {
			a, b := c.Regs[rd], c.Regs[rm]
			prod := a * b
			if c.Memo != nil {
				var fast bool
				prod, fast = c.mulWithMemo(a, b)
				if fast {
					c.sbAdj += discount
				}
			}
			c.Regs[rd] = shiftL(prod, sh)
			return true
		}

	case isa.OpAddASV4, isa.OpAddASV8, isa.OpAddASV16:
		lane := op.ASVLane()
		return func(c *CPU) bool {
			c.Regs[rd] = AddASV(c.Regs[rd], c.Regs[rm], lane)
			return true
		}
	case isa.OpSubASV4, isa.OpSubASV8, isa.OpSubASV16:
		lane := op.ASVLane()
		return func(c *CPU) bool {
			c.Regs[rd] = SubASV(c.Regs[rd], c.Regs[rm], lane)
			return true
		}

	case isa.OpLdr, isa.OpLdrX:
		x := op == isa.OpLdrX
		return func(c *CPU) bool {
			addr := c.Regs[rn] + imm
			if x {
				addr = c.Regs[rn] + c.Regs[rm]
			}
			if v, ok := c.Mem.TryLoadWord(addr); ok {
				c.Regs[rd] = v
			} else if v, err := c.Mem.LoadWord(addr); err != nil {
				c.sbErr = err
				return false
			} else {
				c.Regs[rd] = v
			}
			return true
		}
	case isa.OpLdrh, isa.OpLdrhX:
		x := op == isa.OpLdrhX
		return func(c *CPU) bool {
			addr := c.Regs[rn] + imm
			if x {
				addr = c.Regs[rn] + c.Regs[rm]
			}
			if v, ok := c.Mem.TryLoadHalf(addr); ok {
				c.Regs[rd] = v
			} else if v, err := c.Mem.LoadHalf(addr); err != nil {
				c.sbErr = err
				return false
			} else {
				c.Regs[rd] = v
			}
			return true
		}
	case isa.OpLdrb, isa.OpLdrbX:
		x := op == isa.OpLdrbX
		return func(c *CPU) bool {
			addr := c.Regs[rn] + imm
			if x {
				addr = c.Regs[rn] + c.Regs[rm]
			}
			if v, ok := c.Mem.TryLoadByte(addr); ok {
				c.Regs[rd] = v
			} else if v, err := c.Mem.LoadByte(addr); err != nil {
				c.sbErr = err
				return false
			} else {
				c.Regs[rd] = v
			}
			return true
		}

	case isa.OpStr, isa.OpStrX:
		x := op == isa.OpStrX
		return func(c *CPU) bool {
			addr := c.Regs[rn] + imm
			if x {
				addr = c.Regs[rn] + c.Regs[rm]
			}
			if !c.Mem.TryStoreWord(addr, c.Regs[rd]) {
				if err := c.Mem.StoreWord(addr, c.Regs[rd]); err != nil {
					c.sbErr = err
					return false
				}
			}
			return true
		}
	case isa.OpStrh, isa.OpStrhX:
		x := op == isa.OpStrhX
		return func(c *CPU) bool {
			addr := c.Regs[rn] + imm
			if x {
				addr = c.Regs[rn] + c.Regs[rm]
			}
			if !c.Mem.TryStoreHalf(addr, c.Regs[rd]) {
				if err := c.Mem.StoreHalf(addr, c.Regs[rd]); err != nil {
					c.sbErr = err
					return false
				}
			}
			return true
		}
	case isa.OpStrb, isa.OpStrbX:
		x := op == isa.OpStrbX
		return func(c *CPU) bool {
			addr := c.Regs[rn] + imm
			if x {
				addr = c.Regs[rn] + c.Regs[rm]
			}
			if !c.Mem.TryStoreByte(addr, c.Regs[rd]) {
				if err := c.Mem.StoreByte(addr, c.Regs[rd]); err != nil {
					c.sbErr = err
					return false
				}
			}
			return true
		}
	}
	return nil
}

// buildTerm compiles a block-terminating branch at pc into a closure
// returning (nextPC, cycles), plus its worst-case cycle cost for the budget
// gate. Returns nil for non-branches (HALT, SKM, fall-through splits) and
// for `BX PC`, whose operand would be stale mid-superblock.
func buildTerm(in isa.Instruction, pc uint32) (func(*CPU) (uint32, uint32), uint32) {
	op := in.Op
	base := op.BaseCycles()
	taken := base + 1 // pipeline refill on a taken conditional branch
	tgt := pc + uint32(in.Imm)
	fall := pc + isa.InstBytes

	switch op {
	case isa.OpB:
		return func(*CPU) (uint32, uint32) { return tgt, base }, base
	case isa.OpBl:
		return func(c *CPU) (uint32, uint32) {
			c.Regs[isa.LR] = fall
			return tgt, base
		}, base
	case isa.OpBx:
		if in.Rm == isa.PC {
			return nil, 0
		}
		rm := int(in.Rm) & 15
		return func(c *CPU) (uint32, uint32) { return c.Regs[rm], base }, base
	case isa.OpBeq:
		return func(c *CPU) (uint32, uint32) {
			if c.Z {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBne:
		return func(c *CPU) (uint32, uint32) {
			if !c.Z {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBlt:
		return func(c *CPU) (uint32, uint32) {
			if c.N != c.V {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBge:
		return func(c *CPU) (uint32, uint32) {
			if c.N == c.V {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBgt:
		return func(c *CPU) (uint32, uint32) {
			if !c.Z && c.N == c.V {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBle:
		return func(c *CPU) (uint32, uint32) {
			if c.Z || c.N != c.V {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBlo:
		return func(c *CPU) (uint32, uint32) {
			if !c.C {
				return tgt, taken
			}
			return fall, base
		}, taken
	case isa.OpBhs:
		return func(c *CPU) (uint32, uint32) {
			if c.C {
				return tgt, taken
			}
			return fall, base
		}, taken
	}
	return nil, 0
}

// Fork clones the core onto a forked memory for lockstep fault injection:
// architectural state (registers, flags, halt, skim) and Stats copy; the
// decode cache, decode errors, amenable bitset, and superblock translation
// are shared — they are immutable once built and depend only on the program
// image, so a thousand forked children pay translation exactly once.
//
// The BeforeStore hook is deliberately NOT carried over: it closes over the
// parent's runtime, and the forked runtime must reinstall its own. The memo
// table, when present, forks as a fresh empty table of the same size — the
// fork point is always followed by a power failure, which invalidates the
// (volatile) memo contents anyway.
func (c *CPU) Fork(m *mem.Memory) *CPU {
	n := &CPU{
		Regs:       c.Regs,
		N:          c.N,
		Z:          c.Z,
		C:          c.C,
		V:          c.V,
		Mem:        m,
		Halted:     c.Halted,
		SkimTarget: c.SkimTarget,
		SkimArmed:  c.SkimArmed,
		Stats:      c.Stats,
		Backend:    c.Backend,

		amenable:    c.amenable,
		decodeCache: c.decodeCache,
		decodeErrs:  c.decodeErrs,
		trans:       c.trans,
	}
	if c.Memo != nil {
		n.Memo = NewSizedMemoTable(c.Memo.Entries())
	}
	return n
}
