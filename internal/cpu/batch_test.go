package cpu

import (
	"reflect"
	"testing"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// diffPrograms exercises every interpreter path the batched loop duplicates
// from execute: ALU ops, flags, all load/store widths (immediate and
// register offset), multiplies, SWAR vector ops, branches, calls, and SKM.
var diffPrograms = map[string]string{
	"mixed-loop": `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #200
	loop:
		LDRH R2, [R0, #0]
		LDRB R3, [R0, #2]
		MUL_ASP8 R2, R3, #1
		ADD R4, R4, R2
		STR R4, [R0, #4]
		SUBIS R1, R1, #1
		BNE loop
		HALT
	`,
	"widths-and-offsets": `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #0x1234
		STRH R1, [R0, #0]
		STRB R1, [R0, #3]
		MOVI R2, #8
		STRX R1, [R0, R2]
		LDRX R3, [R0, R2]
		LDRHX R4, [R0, R2]
		LDRBX R5, [R0, R2]
		MUL R6, R1, R3
		ADD_ASV8 R6, R3
		SUB_ASV4 R6, R4
		HALT
	`,
	"calls-and-flags": `
		MOVI R0, #5
		BL double
		CMPI R1, #10
		BEQ ok
		MOVI R9, #1
	ok:
		HALT
	double:
		LSL R1, R0, #1
		BX LR
	`,
	"skim": `
		MOVI R0, #3
		SKM done
	spin:
		SUBIS R0, R0, #1
		BNE spin
	done:
		HALT
	`,
}

// newDiffPair assembles src onto two independent, identically prepared
// devices.
func newDiffPair(t *testing.T, src string) (ref, bat *CPU, refM, batM *mem.Memory) {
	t.Helper()
	ref, refM = device(t, src)
	bat, batM = device(t, src)
	return ref, bat, refM, batM
}

// stepRef runs the reference per-instruction loop until halt or fault,
// returning the total cycles, the per-instruction costs, and any fault.
func stepRef(t *testing.T, c *CPU) (uint64, []Cost, error) {
	t.Helper()
	var (
		cycles uint64
		costs  []Cost
	)
	for i := 0; !c.Halted; i++ {
		if i > 1_000_000 {
			t.Fatal("runaway reference program")
		}
		cost, err := c.Step()
		if err != nil {
			return cycles, costs, err
		}
		cycles += uint64(cost.Cycles)
		costs = append(costs, cost)
	}
	return cycles, costs, nil
}

// runBatched drives RunUntil in windows of the given budget until halt or
// fault, collecting the same per-instruction cost stream.
func runBatched(t *testing.T, c *CPU, budget uint64) (uint64, []Cost, error) {
	t.Helper()
	var (
		cycles uint64
		costs  []Cost
	)
	for i := 0; !c.Halted; i++ {
		if i > 1_000_000 {
			t.Fatal("runaway batched program")
		}
		res, err := c.RunUntil(budget, &costs)
		cycles += res.Cycles
		if err != nil {
			return cycles, costs, err
		}
	}
	return cycles, costs, nil
}

// assertSameState compares every piece of architectural and statistical
// state the two execution paths must agree on.
func assertSameState(t *testing.T, ref, bat *CPU, refM, batM *mem.Memory) {
	t.Helper()
	if ref.Regs != bat.Regs {
		t.Errorf("registers diverge:\nref %v\nbat %v", ref.Regs, bat.Regs)
	}
	if ref.N != bat.N || ref.Z != bat.Z || ref.C != bat.C || ref.V != bat.V {
		t.Errorf("flags diverge: ref NZCV=%v%v%v%v bat NZCV=%v%v%v%v",
			ref.N, ref.Z, ref.C, ref.V, bat.N, bat.Z, bat.C, bat.V)
	}
	if ref.Halted != bat.Halted || ref.SkimArmed != bat.SkimArmed || ref.SkimTarget != bat.SkimTarget {
		t.Errorf("halt/skim state diverges: ref (%v %v %#x) bat (%v %v %#x)",
			ref.Halted, ref.SkimArmed, ref.SkimTarget, bat.Halted, bat.SkimArmed, bat.SkimTarget)
	}
	if !reflect.DeepEqual(ref.Stats, bat.Stats) {
		t.Errorf("stats diverge:\nref %+v\nbat %+v", ref.Stats, bat.Stats)
	}
	if refM.Reads != batM.Reads || refM.Writes != batM.Writes || refM.NVWrites != batM.NVWrites {
		t.Errorf("memory counters diverge: ref (%d %d %d) bat (%d %d %d)",
			refM.Reads, refM.Writes, refM.NVWrites, batM.Reads, batM.Writes, batM.NVWrites)
	}
	n := refM.Config().DataBytes
	refData := make([]byte, n)
	batData := make([]byte, n)
	if err := refM.ReadData(mem.DataBase, refData); err != nil {
		t.Fatal(err)
	}
	if err := batM.ReadData(mem.DataBase, batData); err != nil {
		t.Fatal(err)
	}
	for i := range refData {
		if refData[i] != batData[i] {
			t.Errorf("data memory diverges at %#08x: ref %#02x bat %#02x",
				mem.DataBase+uint32(i), refData[i], batData[i])
			break
		}
	}
}

// TestRunUntilMatchesStep is the instruction-level differential: every
// program runs to halt through Step and through RunUntil at several window
// sizes (including budget=1, which forces a window per instruction), and
// all architectural state, statistics, cycle counts, and per-instruction
// cost streams must be identical.
func TestRunUntilMatchesStep(t *testing.T) {
	budgets := []uint64{1, 7, 64, 1 << 62}
	for name, src := range diffPrograms {
		for _, budget := range budgets {
			t.Run(name, func(t *testing.T) {
				ref, bat, refM, batM := newDiffPair(t, src)
				refCycles, refCosts, refErr := stepRef(t, ref)
				batCycles, batCosts, batErr := runBatched(t, bat, budget)
				if refErr != nil || batErr != nil {
					t.Fatalf("unexpected faults: ref %v bat %v", refErr, batErr)
				}
				if refCycles != batCycles {
					t.Errorf("budget %d: cycles diverge: ref %d bat %d", budget, refCycles, batCycles)
				}
				if !reflect.DeepEqual(refCosts, batCosts) {
					t.Errorf("budget %d: cost streams diverge (%d vs %d entries)",
						budget, len(refCosts), len(batCosts))
				}
				assertSameState(t, ref, bat, refM, batM)
			})
		}
	}
}

// TestRunUntilAmenableCounting pins AmenableOps parity between the paths,
// including across RunUntil window boundaries.
func TestRunUntilAmenableCounting(t *testing.T) {
	src := diffPrograms["mixed-loop"]
	marks := []uint32{mem.CodeBase + 3*isa.InstBytes, mem.CodeBase + 5*isa.InstBytes}
	ref, bat, refM, batM := newDiffPair(t, src)
	ref.SetAmenablePCs(marks)
	bat.SetAmenablePCs(marks)
	if _, _, err := stepRef(t, ref); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runBatched(t, bat, 13); err != nil {
		t.Fatal(err)
	}
	if ref.Stats.AmenableOps == 0 {
		t.Fatal("test program never hit an amenable PC")
	}
	assertSameState(t, ref, bat, refM, batM)
}

// TestRunUntilStoreHook verifies the StopStore contract: with a BeforeStore
// hook installed, RunUntil must stop before every NV-data store so the
// caller can route it through Step, and the hook must observe the same
// sequence of (pc, addr) pairs as the reference loop.
func TestRunUntilStoreHook(t *testing.T) {
	src := diffPrograms["mixed-loop"]
	type storeEvt struct {
		addr uint32
		size int
	}

	ref, bat, refM, batM := newDiffPair(t, src)
	var refEvts, batEvts []storeEvt
	ref.BeforeStore = func(addr uint32, size int) {
		refEvts = append(refEvts, storeEvt{addr, size})
	}
	bat.BeforeStore = func(addr uint32, size int) {
		batEvts = append(batEvts, storeEvt{addr, size})
	}

	if _, _, err := stepRef(t, ref); err != nil {
		t.Fatal(err)
	}
	for i := 0; !bat.Halted; i++ {
		if i > 1_000_000 {
			t.Fatal("runaway batched program")
		}
		res, err := bat.RunUntil(1<<62, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason == StopStore {
			if _, err := bat.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	if len(refEvts) == 0 {
		t.Fatal("test program never stored to NV data")
	}
	if !reflect.DeepEqual(refEvts, batEvts) {
		t.Errorf("hook sequences diverge: ref %d events, bat %d events", len(refEvts), len(batEvts))
	}
	assertSameState(t, ref, bat, refM, batM)
}

// TestRunUntilFaultParity checks that both paths fault identically: same
// error message, same final state, and the faulting instruction is not
// counted by either path.
func TestRunUntilFaultParity(t *testing.T) {
	progs := map[string]string{
		"unmapped-load": `
			MOVI R0, #0
			MOVTI R0, #0x4000
			NOP
			LDR R1, [R0, #0]
			HALT
		`,
		"fall-off-end": `
			MOVI R0, #1
			NOP
		`,
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			ref, bat, refM, batM := newDiffPair(t, src)
			_, _, refErr := stepRef(t, ref)
			_, _, batErr := runBatched(t, bat, 1<<62)
			if refErr == nil || batErr == nil {
				t.Fatalf("expected faults, got ref %v bat %v", refErr, batErr)
			}
			if refErr.Error() != batErr.Error() {
				t.Errorf("fault messages diverge:\nref %v\nbat %v", refErr, batErr)
			}
			assertSameState(t, ref, bat, refM, batM)
		})
	}
}

// TestRunUntilBudgetIsFloor pins the window contract batch schedulers rely
// on: RunUntil stops at the first instruction boundary at or past the
// budget, overshooting by strictly less than MaxInstrCycles.
func TestRunUntilBudgetIsFloor(t *testing.T) {
	c, _ := device(t, diffPrograms["mixed-loop"])
	for !c.Halted {
		res, err := c.RunUntil(100, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason == StopBudget && (res.Cycles < 100 || res.Cycles >= 100+MaxInstrCycles) {
			t.Fatalf("budget window returned %d cycles, want [100, %d)", res.Cycles, 100+MaxInstrCycles)
		}
	}
}
