package cpu

import (
	"fmt"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// StopReason tells why RunUntil returned control to the caller.
type StopReason int

const (
	// StopBudget: the accumulated cycle count reached the budget.
	StopBudget StopReason = iota
	// StopHalt: the program executed HALT (or the CPU was already halted).
	StopHalt
	// StopStore: the next instruction is a store into the non-volatile data
	// region and a BeforeStore hook is installed; the caller must execute it
	// through Step so the hook observes it.
	StopStore
	// StopSkim: an SKM instruction just executed. Callers that react to
	// skim-point arming (anytime harnesses) see it at the exact instruction
	// boundary the reference path would.
	StopSkim
	// StopFault: execution faulted; the accompanying error has the cause.
	StopFault
)

// BatchResult summarizes one RunUntil window.
type BatchResult struct {
	Cycles       uint64
	Instructions uint64
	Reason       StopReason
}

// MaxInstrCycles bounds the cycle cost of any single instruction (the
// 16-cycle iterative multiply; taken branches cost BaseCycles+1 ≤ 3).
// Batch schedulers use it to size safety slack: RunUntil stops at the first
// instruction that reaches its budget, so it overshoots by less than this.
const MaxInstrCycles = 16

// RunUntil is the batched fast path: it executes instructions in a tight
// loop — no per-step call overhead — until the accumulated cycle count
// reaches budget, the program halts or faults, an SKM arms the skim
// register, or (when a BeforeStore hook is installed) the next instruction
// would store into the non-volatile data region. Architectural state,
// Stats, and memory evolve exactly as under repeated Step calls; when costs
// is non-nil every instruction's Cost is appended so the caller can replay
// energy accounting per instruction.
//
// The hook contract differs from Step by design: RunUntil never calls
// BeforeStore. It returns StopStore *before* the store executes, and the
// caller runs that one instruction through Step. Stores outside the NV data
// region execute inline without the hook — the runtimes in
// internal/intermittent only act on NV-data stores, so runtime-visible
// behavior is identical.
// The interpreter switch below mirrors (*CPU).execute case for case. It is
// duplicated rather than shared because the call overhead of execute is the
// single largest per-instruction cost once decode is cached; the
// differential tests in internal/cpu and internal/experiments pin the two
// paths to identical architectural state, Stats, and cycle counts.
func (c *CPU) RunUntil(budget uint64, costs *[]Cost) (BatchResult, error) {
	var res BatchResult
	if c.Halted {
		res.Reason = StopHalt
		return res, nil
	}
	if err := c.ensureDecodeCache(); err != nil {
		res.Reason = StopFault
		return res, err
	}

	var (
		cache = c.decodeCache
		hook  = c.BeforeStore != nil
		memo  = c.Memo != nil
		m     = c.Mem
		regs  = &c.Regs
		// Cycle and instruction counts accumulate in scalar locals (so they
		// stay in registers through the loop) and flush to res and c.Stats
		// at the single exit below; OpCount and AmenableOps update in place.
		cycAcc, instrAcc, amenAcc uint64
		reason                    = StopBudget
		fault                     error
		dataEnd                   = mem.DataBase + uint32(m.Config().DataBytes)
	)

	// pc mirrors regs[isa.PC] in a local: the register-file slot is still
	// stored every instruction (programs may read PC as an operand), but the
	// loop never reloads it.
	pc := regs[isa.PC]
	for cycAcc < budget {
		slot := (pc - mem.CodeBase) / isa.InstBytes
		if pc%isa.InstBytes != 0 || slot >= uint32(len(cache)) {
			// Out of code memory or misaligned: decodeAt builds the precise
			// fault message.
			_, fault = c.decodeAt(pc)
			reason = StopFault
			break
		}
		d := cache[slot]
		in := d.in
		op := in.Op
		if !op.Valid() {
			_, fault = c.decodeAt(pc)
			reason = StopFault
			break
		}
		if hook && op.IsStore() {
			if addr := c.effAddr(in); addr >= mem.DataBase && addr < dataEnd {
				reason = StopStore
				break
			}
		}
		if d.amen {
			amenAcc++
		}

		var nvBefore uint64
		if costs != nil {
			nvBefore = m.NVWrites
		}

		cycles := d.cycles
		nextPC := pc + isa.InstBytes
		var err error

		switch op {
		case isa.OpNop:
		case isa.OpHalt:
			c.Halted = true
			nextPC = pc

		case isa.OpMov:
			regs[in.Rd] = regs[in.Rm]
		case isa.OpMovI:
			regs[in.Rd] = uint32(in.Imm)
		case isa.OpMovTI:
			regs[in.Rd] = regs[in.Rd]&0xFFFF | uint32(in.Imm)<<16

		case isa.OpAdd:
			regs[in.Rd] = regs[in.Rn] + regs[in.Rm]
		case isa.OpAddI:
			regs[in.Rd] = regs[in.Rn] + uint32(in.Imm)
		case isa.OpSub:
			regs[in.Rd] = regs[in.Rn] - regs[in.Rm]
		case isa.OpSubI:
			regs[in.Rd] = regs[in.Rn] - uint32(in.Imm)
		case isa.OpAnd:
			regs[in.Rd] = regs[in.Rn] & regs[in.Rm]
		case isa.OpAndI:
			regs[in.Rd] = regs[in.Rn] & uint32(in.Imm)
		case isa.OpOrr:
			regs[in.Rd] = regs[in.Rn] | regs[in.Rm]
		case isa.OpOrrI:
			regs[in.Rd] = regs[in.Rn] | uint32(in.Imm)
		case isa.OpEor:
			regs[in.Rd] = regs[in.Rn] ^ regs[in.Rm]
		case isa.OpEorI:
			regs[in.Rd] = regs[in.Rn] ^ uint32(in.Imm)
		case isa.OpLsl:
			regs[in.Rd] = shiftL(regs[in.Rn], regs[in.Rm])
		case isa.OpLslI:
			regs[in.Rd] = shiftL(regs[in.Rn], uint32(in.Imm))
		case isa.OpLsr:
			regs[in.Rd] = shiftR(regs[in.Rn], regs[in.Rm])
		case isa.OpLsrI:
			regs[in.Rd] = shiftR(regs[in.Rn], uint32(in.Imm))
		case isa.OpAsr:
			regs[in.Rd] = shiftAR(regs[in.Rn], regs[in.Rm])
		case isa.OpAsrI:
			regs[in.Rd] = shiftAR(regs[in.Rn], uint32(in.Imm))

		case isa.OpCmp:
			c.setFlagsSub(regs[in.Rn], regs[in.Rm])
		case isa.OpCmpI:
			c.setFlagsSub(regs[in.Rn], uint32(in.Imm))
		case isa.OpSubIS:
			a := regs[in.Rn]
			c.setFlagsSub(a, uint32(in.Imm))
			regs[in.Rd] = a - uint32(in.Imm)

		case isa.OpMul:
			a, b := regs[in.Rn], regs[in.Rm]
			prod := a * b
			if memo {
				var fast bool
				prod, fast = c.mulWithMemo(a, b)
				if fast {
					cycles = 1
				}
			}
			regs[in.Rd] = prod

		case isa.OpMulASP1, isa.OpMulASP2, isa.OpMulASP3, isa.OpMulASP4, isa.OpMulASP8:
			bits := op.ASPBits()
			a, b := regs[in.Rd], regs[in.Rm]
			prod := a * b
			if memo {
				var fast bool
				prod, fast = c.mulWithMemo(a, b)
				if fast {
					cycles = 1
				}
			}
			regs[in.Rd] = shiftL(prod, uint32(bits)*uint32(in.Imm))

		case isa.OpAddASV4, isa.OpAddASV8, isa.OpAddASV16:
			regs[in.Rd] = AddASV(regs[in.Rd], regs[in.Rm], op.ASVLane())
		case isa.OpSubASV4, isa.OpSubASV8, isa.OpSubASV16:
			regs[in.Rd] = SubASV(regs[in.Rd], regs[in.Rm], op.ASVLane())

		case isa.OpLdr, isa.OpLdrX:
			addr := regs[in.Rn] + uint32(in.Imm)
			if op == isa.OpLdrX {
				addr = regs[in.Rn] + regs[in.Rm]
			}
			if v, ok := m.TryLoadWord(addr); ok {
				regs[in.Rd] = v
			} else if v, lerr := m.LoadWord(addr); lerr != nil {
				err = lerr
			} else {
				regs[in.Rd] = v
			}
		case isa.OpLdrh, isa.OpLdrhX:
			addr := regs[in.Rn] + uint32(in.Imm)
			if op == isa.OpLdrhX {
				addr = regs[in.Rn] + regs[in.Rm]
			}
			if v, ok := m.TryLoadHalf(addr); ok {
				regs[in.Rd] = v
			} else if v, lerr := m.LoadHalf(addr); lerr != nil {
				err = lerr
			} else {
				regs[in.Rd] = v
			}
		case isa.OpLdrb, isa.OpLdrbX:
			addr := regs[in.Rn] + uint32(in.Imm)
			if op == isa.OpLdrbX {
				addr = regs[in.Rn] + regs[in.Rm]
			}
			if v, ok := m.TryLoadByte(addr); ok {
				regs[in.Rd] = v
			} else if v, lerr := m.LoadByte(addr); lerr != nil {
				err = lerr
			} else {
				regs[in.Rd] = v
			}

		case isa.OpStr, isa.OpStrX:
			addr := regs[in.Rn] + uint32(in.Imm)
			if op == isa.OpStrX {
				addr = regs[in.Rn] + regs[in.Rm]
			}
			if !m.TryStoreWord(addr, regs[in.Rd]) {
				err = m.StoreWord(addr, regs[in.Rd])
			}
		case isa.OpStrh, isa.OpStrhX:
			addr := regs[in.Rn] + uint32(in.Imm)
			if op == isa.OpStrhX {
				addr = regs[in.Rn] + regs[in.Rm]
			}
			if !m.TryStoreHalf(addr, regs[in.Rd]) {
				err = m.StoreHalf(addr, regs[in.Rd])
			}
		case isa.OpStrb, isa.OpStrbX:
			addr := regs[in.Rn] + uint32(in.Imm)
			if op == isa.OpStrbX {
				addr = regs[in.Rn] + regs[in.Rm]
			}
			if !m.TryStoreByte(addr, regs[in.Rd]) {
				err = m.StoreByte(addr, regs[in.Rd])
			}

		case isa.OpB:
			nextPC = pc + uint32(in.Imm)
		case isa.OpBl:
			regs[isa.LR] = pc + isa.InstBytes
			nextPC = pc + uint32(in.Imm)
		case isa.OpBx:
			nextPC = regs[in.Rm]
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBgt, isa.OpBle, isa.OpBlo, isa.OpBhs:
			if c.condTrue(op) {
				nextPC = pc + uint32(in.Imm)
				cycles++ // pipeline refill on a taken branch
			}

		case isa.OpSkm:
			c.SkimTarget = uint32(in.Imm)
			c.SkimArmed = true
			// nv accounting below covers the skim register's NV write.

		default:
			err = fmt.Errorf("cpu: unimplemented opcode %s at %#08x", op.Name(), pc)
		}
		if err != nil {
			reason = StopFault
			fault = err
			break
		}
		regs[isa.PC] = nextPC
		pc = nextPC

		c.Stats.OpCount[op]++
		cycAcc += uint64(cycles)
		instrAcc++
		if costs != nil {
			nv := int(m.NVWrites - nvBefore)
			if op == isa.OpSkm {
				nv++ // the skim register is non-volatile
			}
			*costs = append(*costs, Cost{Cycles: cycles, NVWrites: nv})
		}

		// Only OpHalt sets c.Halted inside the loop, so an opcode compare
		// (already in a register) replaces the flag load.
		if op == isa.OpHalt {
			reason = StopHalt
			break
		}
		if op == isa.OpSkm {
			reason = StopSkim
			break
		}
	}
	res.Cycles = cycAcc
	res.Instructions = instrAcc
	res.Reason = reason
	c.Stats.Cycles += cycAcc
	c.Stats.Instructions += instrAcc
	c.Stats.AmenableOps += amenAcc
	return res, fault
}
