package cpu

import (
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/mem"
)

// benchProgram is a mixed loop the interpreter spends most real time in:
// loads, an anytime multiply, ALU work, a store, and the loop epilogue.
const benchProgram = `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R1, #10000
loop:
	LDRH R2, [R0, #0]
	LDRB R3, [R0, #2]
	MUL_ASP8 R2, R3, #1
	ADD R4, R4, R2
	STR R4, [R0, #4]
	SUBIS R1, R1, #1
	BNE loop
	HALT
`

// BenchmarkStep measures raw interpreter throughput (instructions/op).
func BenchmarkStep(b *testing.B) {
	p, err := asm.Assemble(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		b.Fatal(err)
	}
	c := New(m)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		if c.Halted {
			c.Reset()
		}
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
		instrs++
	}
	b.ReportMetric(float64(instrs), "instructions")
}

// BenchmarkMul16 measures the iterative-multiplier path.
func BenchmarkMul16(b *testing.B) {
	p, _ := asm.Assemble("loop: MUL R2, R3, R4\nB loop")
	m := mem.New(mem.DefaultConfig())
	m.LoadProgram(p.Image)
	c := New(m)
	c.Regs[3], c.Regs[4] = 12345, 678
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkAddASV measures the SWAR lane adder.
func BenchmarkAddASV(b *testing.B) {
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc = AddASV(acc, 0x01020304, 8)
	}
	_ = acc
}

// BenchmarkMemoLookup measures the memo table hit path.
func BenchmarkMemoLookup(b *testing.B) {
	t := NewMemoTable()
	t.Insert(123, 456, 123*456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(123, 456)
	}
}

// BenchmarkSuperLoop measures the superblock translation backend over the
// same program as BenchmarkStepLoop: fused closures with zero per-instruction
// dispatch, deoptimizing to RunUntil only at block boundaries it cannot fuse.
func BenchmarkSuperLoop(b *testing.B) {
	p, err := asm.Assemble(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		b.Fatal(err)
	}
	c := New(m)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		c.Reset()
		for !c.Halted {
			res, err := c.RunSuper(1<<62, nil)
			if err != nil {
				b.Fatal(err)
			}
			instrs += res.Instructions
		}
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instructions/op")
}

// BenchmarkStepLoop measures the batched fast path over the same program as
// BenchmarkStep: one RunUntil call per full program execution instead of a
// Step call per instruction.
func BenchmarkStepLoop(b *testing.B) {
	p, err := asm.Assemble(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		b.Fatal(err)
	}
	c := New(m)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		c.Reset()
		for !c.Halted {
			res, err := c.RunUntil(1<<62, nil)
			if err != nil {
				b.Fatal(err)
			}
			instrs += res.Instructions
		}
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instructions/op")
}
