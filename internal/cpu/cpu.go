package cpu

import (
	"fmt"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// Snapshot is the volatile architectural state captured by a checkpoint: the
// register file (including PC) and the condition flags.
type Snapshot struct {
	Regs  [isa.NumRegs]uint32
	N     bool
	Z     bool
	C     bool
	V     bool
	Valid bool
}

// Cost reports what one executed instruction consumed.
type Cost struct {
	Cycles   uint32
	NVWrites int // non-volatile data writes performed (energy surcharge)
}

// Stats aggregates execution statistics.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	OpCount      [isa.NumOpcodes]uint64
	AmenableOps  uint64 // dynamic instructions at WN-amenable PCs
}

// CPU is the simulated core. It executes decoded instructions against a
// Memory under the M0+ cost model. The intermittent runtimes drive it
// through Step (one instruction, full hook fidelity) or RunUntil (the
// batched fast path), paying the returned Cost into the energy supply.
type CPU struct {
	Regs [isa.NumRegs]uint32
	// Condition flags, set only by CMP/CMPI.
	N, Z, C, V bool

	Mem    *mem.Memory
	Halted bool

	// Skim register (Section III-C): a dedicated non-volatile register
	// holding the restore target armed by the SKM instruction. Survives
	// power outages by construction.
	SkimTarget uint32
	SkimArmed  bool

	// Memo is the optional multiplier memoization table with zero skipping.
	// Nil disables memoization (the paper's default configuration).
	Memo *MemoTable

	// BeforeStore, when non-nil, runs before every data store with the
	// target address and size. The Clank runtime uses it to checkpoint
	// ahead of idempotency-violating writes. The batched RunUntil path
	// never invokes it: it stops ahead of any store into the non-volatile
	// data region instead, so the caller can take the slow per-step path
	// around exactly those stores.
	BeforeStore func(addr uint32, size int)

	Stats Stats

	// amenable marks WN-amenable instruction slots as a bitset indexed by
	// (PC-CodeBase)/InstBytes — a single shifted load per executed
	// instruction instead of a map probe.
	amenable []uint64

	// Backend selects the batched executor Run dispatches to. The zero
	// value is BackendSuper: translated superblocks with deopt to the
	// per-instruction path. BackendBatch forces the PR 3 interpreter.
	Backend Backend

	decodeCache []decoded     // lazily built per program image
	decodeErrs  map[int]error // slot -> original isa.Decode failure
	trans       *translation  // lazily built superblock translation
	sbErr       error         // fault raised inside a superblock closure
	sbAdj       uint64        // memo fast-hit cycle discount within one block
	// Deferred superblock accounting: sbRuns[slot] counts completed
	// executions of the block starting at slot within the current window;
	// sbDirty lists the touched slots. Both flush into Stats at every
	// window exit, so per-block bookkeeping inside the hot loop is O(1).
	// Per-CPU (not on the shared translation) so forked cores never race.
	sbRuns  []uint64
	sbDirty []uint32
}

// decoded is one predecoded instruction slot: the decoded form plus its
// base cycle cost, so the hot loop never re-derives either.
type decoded struct {
	in     isa.Instruction
	cycles uint32
	amen   bool // slot carries the compiler's amenable mark
}

// New builds a CPU over the given memory with PC at the code base.
func New(m *mem.Memory) *CPU {
	c := &CPU{Mem: m}
	c.Regs[isa.PC] = mem.CodeBase
	c.Regs[isa.SP] = mem.SRAMBase + uint32(m.Config().SRAMBytes)
	return c
}

// Reset returns the core to the boot state: PC at the code base, SP at the
// top of SRAM, flags cleared, halt cleared. The skim register is
// non-volatile and therefore NOT cleared here; use DisarmSkim explicitly.
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint32{}
	c.Regs[isa.PC] = mem.CodeBase
	c.Regs[isa.SP] = mem.SRAMBase + uint32(c.Mem.Config().SRAMBytes)
	c.N, c.Z, c.C, c.V = false, false, false, false
	c.Halted = false
}

// DisarmSkim clears the non-volatile skim register. The runtime calls this
// after consuming a skim target on restore, and the harness before starting
// a fresh input.
func (c *CPU) DisarmSkim() {
	c.SkimArmed = false
	c.SkimTarget = 0
}

// Snapshot captures the volatile architectural state for a checkpoint.
func (c *CPU) Snapshot() Snapshot {
	return Snapshot{Regs: c.Regs, N: c.N, Z: c.Z, C: c.C, V: c.V, Valid: true}
}

// Restore reinstates checkpointed state.
func (c *CPU) Restore(s Snapshot) {
	c.Regs = s.Regs
	c.N, c.Z, c.C, c.V = s.N, s.Z, s.C, s.V
	c.Halted = false
}

// PowerLoss models the loss of volatile core state at a brown-out: the
// register file and flags are destroyed, and the (volatile) memo table is
// invalidated. Non-volatile state — the skim register — survives.
func (c *CPU) PowerLoss() {
	c.Regs = [isa.NumRegs]uint32{}
	c.N, c.Z, c.C, c.V = false, false, false, false
	if c.Memo != nil {
		c.Memo.Invalidate()
	}
}

// InvalidateDecodeCache drops the cached decode of code memory (and with it
// the superblock translation, which is derived from it). Call after loading
// a new program image.
func (c *CPU) InvalidateDecodeCache() {
	c.decodeCache = nil
	c.decodeErrs = nil
	c.trans = nil
}

// SetAmenablePCs installs the instruction addresses the WN compiler marked
// as amenable to subword pipelining or vectorization; executions at these
// PCs are tallied for Table I. Nil or empty clears the set.
func (c *CPU) SetAmenablePCs(pcs []uint32) {
	if len(pcs) == 0 {
		c.amenable = nil
	} else {
		slots := c.Mem.Config().CodeBytes / isa.InstBytes
		c.amenable = make([]uint64, (slots+63)/64)
		for _, pc := range pcs {
			slot := int(pc-mem.CodeBase) / isa.InstBytes
			if slot >= 0 && slot < slots {
				c.amenable[slot/64] |= 1 << (slot % 64)
			}
		}
	}
	// The decode cache mirrors the bitset per slot so the batched loop pays
	// one flag test instead of a shifted bitset probe; re-annotate if built.
	for i := range c.decodeCache {
		c.decodeCache[i].amen = c.amenableAt(mem.CodeBase + uint32(i*isa.InstBytes))
	}
	// Superblock aggregates bake the amenable counts in; rebuild lazily.
	c.trans = nil
}

// amenableAt reports whether pc carries the compiler's amenable mark. The
// caller guarantees pc is inside code memory (decode has succeeded).
func (c *CPU) amenableAt(pc uint32) bool {
	if c.amenable == nil {
		return false
	}
	slot := (pc - mem.CodeBase) / isa.InstBytes
	w := slot >> 6
	return int(w) < len(c.amenable) && c.amenable[w]&(1<<(slot&63)) != 0
}

// ensureDecodeCache predecodes the loaded program image once. Undecodable
// words get an invalid-opcode sentinel, with the original decode failure
// kept in decodeErrs so a later fault reports the cause. Only the program
// image is decoded and cached — code memory past it is zeroed by
// LoadProgram, and decodeAt recovers the zero word's decode error lazily if
// execution ever falls off the program's end.
func (c *CPU) ensureDecodeCache() error {
	if c.decodeCache != nil {
		return nil
	}
	n := c.Mem.Config().CodeBytes / isa.InstBytes
	prog := (c.Mem.ProgramBytes() + isa.InstBytes - 1) / isa.InstBytes
	if prog > n {
		prog = n
	}
	cache := make([]decoded, prog)
	errs := make(map[int]error)
	for i := 0; i < prog; i++ {
		w, err := c.Mem.FetchWord(mem.CodeBase + uint32(i*isa.InstBytes))
		if err != nil {
			return err
		}
		in, err := isa.Decode(isa.Word(w))
		if err != nil {
			// Executing this slot faults with err as the cause.
			cache[i] = decoded{in: isa.Instruction{Op: isa.Opcode(0xFF)}}
			errs[i] = err
			continue
		}
		cache[i] = decoded{
			in:     in,
			cycles: in.Op.BaseCycles(),
			amen:   c.amenableAt(mem.CodeBase + uint32(i*isa.InstBytes)),
		}
	}
	c.decodeCache, c.decodeErrs = cache, errs
	return nil
}

func (c *CPU) decodeAt(pc uint32) (isa.Instruction, error) {
	if pc%isa.InstBytes != 0 {
		return isa.Instruction{}, fmt.Errorf("cpu: misaligned PC %#08x", pc)
	}
	if err := c.ensureDecodeCache(); err != nil {
		return isa.Instruction{}, err
	}
	if pc < mem.CodeBase || pc-mem.CodeBase >= uint32(c.Mem.Config().CodeBytes) {
		return isa.Instruction{}, fmt.Errorf("cpu: PC %#08x outside code memory", pc)
	}
	idx := int(pc-mem.CodeBase) / isa.InstBytes
	if idx >= len(c.decodeCache) {
		// Past the decoded program image: decode the raw word (zeroed by
		// LoadProgram unless the program wrote over it) so the fault names
		// the real cause.
		if w, ferr := c.Mem.FetchWord(pc); ferr == nil {
			if _, derr := isa.Decode(isa.Word(w)); derr != nil {
				return isa.Instruction{}, fmt.Errorf("cpu: illegal instruction at %#08x: %v", pc, derr)
			}
		}
		return isa.Instruction{}, fmt.Errorf("cpu: illegal instruction at %#08x", pc)
	}
	in := c.decodeCache[idx].in
	if !in.Op.Valid() {
		if derr := c.decodeErrs[idx]; derr != nil {
			return isa.Instruction{}, fmt.Errorf("cpu: illegal instruction at %#08x: %v", pc, derr)
		}
		return isa.Instruction{}, fmt.Errorf("cpu: illegal instruction at %#08x", pc)
	}
	return in, nil
}

// setFlagsSub sets NZCV for the subtraction a-b (ARM CMP semantics: C is
// the no-borrow flag).
func (c *CPU) setFlagsSub(a, b uint32) {
	r := a - b
	c.N = int32(r) < 0
	c.Z = r == 0
	c.C = a >= b
	c.V = (int32(a) < 0) != (int32(b) < 0) && (int32(r) < 0) != (int32(a) < 0)
}

func (c *CPU) condTrue(op isa.Opcode) bool {
	switch op {
	case isa.OpBeq:
		return c.Z
	case isa.OpBne:
		return !c.Z
	case isa.OpBlt:
		return c.N != c.V
	case isa.OpBge:
		return c.N == c.V
	case isa.OpBgt:
		return !c.Z && c.N == c.V
	case isa.OpBle:
		return c.Z || c.N != c.V
	case isa.OpBlo:
		return !c.C
	case isa.OpBhs:
		return c.C
	}
	return true
}

// Step executes one instruction. It returns the cost of the instruction and
// a non-nil error on a fault (illegal instruction, bad memory access). A
// halted CPU returns a zero cost.
func (c *CPU) Step() (Cost, error) {
	if c.Halted {
		return Cost{}, nil
	}
	pc := c.Regs[isa.PC]
	in, err := c.decodeAt(pc)
	if err != nil {
		return Cost{}, err
	}
	if c.amenableAt(pc) {
		c.Stats.AmenableOps++
	}

	nvBefore := c.Mem.NVWrites
	nextPC, cycles, err := c.execute(in, pc, true)
	if err != nil {
		return Cost{}, err
	}
	c.Regs[isa.PC] = nextPC

	cost := Cost{Cycles: cycles, NVWrites: int(c.Mem.NVWrites - nvBefore)}
	if in.Op == isa.OpSkm {
		cost.NVWrites++ // the skim register is non-volatile
	}
	c.Stats.Instructions++
	c.Stats.Cycles += uint64(cycles)
	c.Stats.OpCount[in.Op]++
	return cost, nil
}

// execute interprets one decoded instruction at pc and returns the next PC
// and the cycle cost. It does not advance PC or update Stats — Step and the
// batched RunUntil share it and layer their own bookkeeping on top.
// callHook gates the BeforeStore callback: Step passes true; RunUntil
// passes false because it already stopped ahead of any store the hook needs
// to observe.
func (c *CPU) execute(in isa.Instruction, pc uint32, callHook bool) (uint32, uint32, error) {
	cycles := in.Op.BaseCycles()
	nextPC := pc + isa.InstBytes
	var err error

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		c.Halted = true
		nextPC = pc

	case isa.OpMov:
		c.Regs[in.Rd] = c.Regs[in.Rm]
	case isa.OpMovI:
		c.Regs[in.Rd] = uint32(in.Imm)
	case isa.OpMovTI:
		c.Regs[in.Rd] = c.Regs[in.Rd]&0xFFFF | uint32(in.Imm)<<16

	case isa.OpAdd:
		c.Regs[in.Rd] = c.Regs[in.Rn] + c.Regs[in.Rm]
	case isa.OpAddI:
		c.Regs[in.Rd] = c.Regs[in.Rn] + uint32(in.Imm)
	case isa.OpSub:
		c.Regs[in.Rd] = c.Regs[in.Rn] - c.Regs[in.Rm]
	case isa.OpSubI:
		c.Regs[in.Rd] = c.Regs[in.Rn] - uint32(in.Imm)
	case isa.OpAnd:
		c.Regs[in.Rd] = c.Regs[in.Rn] & c.Regs[in.Rm]
	case isa.OpAndI:
		c.Regs[in.Rd] = c.Regs[in.Rn] & uint32(in.Imm)
	case isa.OpOrr:
		c.Regs[in.Rd] = c.Regs[in.Rn] | c.Regs[in.Rm]
	case isa.OpOrrI:
		c.Regs[in.Rd] = c.Regs[in.Rn] | uint32(in.Imm)
	case isa.OpEor:
		c.Regs[in.Rd] = c.Regs[in.Rn] ^ c.Regs[in.Rm]
	case isa.OpEorI:
		c.Regs[in.Rd] = c.Regs[in.Rn] ^ uint32(in.Imm)
	case isa.OpLsl:
		c.Regs[in.Rd] = shiftL(c.Regs[in.Rn], c.Regs[in.Rm])
	case isa.OpLslI:
		c.Regs[in.Rd] = shiftL(c.Regs[in.Rn], uint32(in.Imm))
	case isa.OpLsr:
		c.Regs[in.Rd] = shiftR(c.Regs[in.Rn], c.Regs[in.Rm])
	case isa.OpLsrI:
		c.Regs[in.Rd] = shiftR(c.Regs[in.Rn], uint32(in.Imm))
	case isa.OpAsr:
		c.Regs[in.Rd] = shiftAR(c.Regs[in.Rn], c.Regs[in.Rm])
	case isa.OpAsrI:
		c.Regs[in.Rd] = shiftAR(c.Regs[in.Rn], uint32(in.Imm))

	case isa.OpCmp:
		c.setFlagsSub(c.Regs[in.Rn], c.Regs[in.Rm])
	case isa.OpCmpI:
		c.setFlagsSub(c.Regs[in.Rn], uint32(in.Imm))
	case isa.OpSubIS:
		a := c.Regs[in.Rn]
		c.setFlagsSub(a, uint32(in.Imm))
		c.Regs[in.Rd] = a - uint32(in.Imm)

	case isa.OpMul:
		a, b := c.Regs[in.Rn], c.Regs[in.Rm]
		prod, fast := c.mulWithMemo(a, b)
		if fast {
			cycles = 1
		}
		c.Regs[in.Rd] = prod

	case isa.OpMulASP1, isa.OpMulASP2, isa.OpMulASP3, isa.OpMulASP4, isa.OpMulASP8:
		// Rd = (Rd * Rm) << (bits * pos). Rm holds the subword value; the
		// iterative multiplier runs only `bits` steps.
		bits := in.Op.ASPBits()
		a, b := c.Regs[in.Rd], c.Regs[in.Rm]
		prod, fast := c.mulWithMemo(a, b)
		if fast {
			cycles = 1
		}
		c.Regs[in.Rd] = shiftL(prod, uint32(bits)*uint32(in.Imm))

	case isa.OpAddASV4, isa.OpAddASV8, isa.OpAddASV16:
		c.Regs[in.Rd] = AddASV(c.Regs[in.Rd], c.Regs[in.Rm], in.Op.ASVLane())
	case isa.OpSubASV4, isa.OpSubASV8, isa.OpSubASV16:
		c.Regs[in.Rd] = SubASV(c.Regs[in.Rd], c.Regs[in.Rm], in.Op.ASVLane())

	case isa.OpLdr, isa.OpLdrh, isa.OpLdrb, isa.OpLdrX, isa.OpLdrhX, isa.OpLdrbX:
		addr := c.effAddr(in)
		var v uint32
		switch in.Op {
		case isa.OpLdr, isa.OpLdrX:
			v, err = c.Mem.LoadWord(addr)
		case isa.OpLdrh, isa.OpLdrhX:
			v, err = c.Mem.LoadHalf(addr)
		default:
			v, err = c.Mem.LoadByte(addr)
		}
		if err != nil {
			return 0, 0, err
		}
		c.Regs[in.Rd] = v

	case isa.OpStr, isa.OpStrh, isa.OpStrb, isa.OpStrX, isa.OpStrhX, isa.OpStrbX:
		addr := c.effAddr(in)
		size := 4
		switch in.Op {
		case isa.OpStrh, isa.OpStrhX:
			size = 2
		case isa.OpStrb, isa.OpStrbX:
			size = 1
		}
		if callHook && c.BeforeStore != nil {
			c.BeforeStore(addr, size)
		}
		switch size {
		case 4:
			err = c.Mem.StoreWord(addr, c.Regs[in.Rd])
		case 2:
			err = c.Mem.StoreHalf(addr, c.Regs[in.Rd])
		default:
			err = c.Mem.StoreByte(addr, c.Regs[in.Rd])
		}
		if err != nil {
			return 0, 0, err
		}

	case isa.OpB:
		nextPC = pc + uint32(in.Imm)
	case isa.OpBl:
		c.Regs[isa.LR] = pc + isa.InstBytes
		nextPC = pc + uint32(in.Imm)
	case isa.OpBx:
		nextPC = c.Regs[in.Rm]
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBgt, isa.OpBle, isa.OpBlo, isa.OpBhs:
		if c.condTrue(in.Op) {
			nextPC = pc + uint32(in.Imm)
			cycles++ // pipeline refill on a taken branch
		}

	case isa.OpSkm:
		c.SkimTarget = uint32(in.Imm)
		c.SkimArmed = true
		// The caller accounts the skim register's NV write.

	default:
		return 0, 0, fmt.Errorf("cpu: unimplemented opcode %s at %#08x", in.Op.Name(), pc)
	}

	return nextPC, cycles, nil
}

// mulWithMemo computes a*b through zero skipping and the memo table when
// enabled. fast reports a single-cycle result.
func (c *CPU) mulWithMemo(a, b uint32) (prod uint32, fast bool) {
	if c.Memo == nil {
		return a * b, false
	}
	if p, hit := c.Memo.Lookup(a, b); hit {
		return p, true
	}
	p := a * b
	c.Memo.Insert(a, b, p)
	return p, false
}

func (c *CPU) effAddr(in isa.Instruction) uint32 {
	if in.Op.HasRm() {
		return c.Regs[in.Rn] + c.Regs[in.Rm]
	}
	return c.Regs[in.Rn] + uint32(in.Imm)
}

func shiftL(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v << by
}

func shiftR(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v >> by
}

func shiftAR(v, by uint32) uint32 {
	if by >= 32 {
		by = 31
	}
	return uint32(int32(v) >> by)
}
