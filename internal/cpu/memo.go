// Package cpu implements a cycle-accurate simulator of the WN processor: an
// ARM Cortex-M0+-profile core (2-stage pipeline cost model, iterative
// 16-cycle multiplier, no caches or branch prediction) extended with the
// What's Next anytime units — subword-pipelined multiplication, the
// segmented-carry subword-vectorized adder, the non-volatile skim register,
// and an optional multiplier memoization table with zero skipping.
package cpu

// MemoEntries is the default size of the direct-mapped multiplication memo
// table. The paper empirically settles on 16 entries (Section V-E),
// occupying 40.5% of the area of the 16x16 multiplier.
const MemoEntries = 16

// MemoTable is a direct-mapped lookup table that caches multiplication
// results to shortcut the iterative multiplier. The index is formed from
// the least significant bits of both operands; an entry hit returns the
// product in a single cycle.
//
// Zero skipping is layered on top: a multiplication with a zero operand
// returns zero in a single cycle and is excluded from the table, since
// zeros dominate multiplication operands in these kernels.
type MemoTable struct {
	valid []bool
	a     []uint32
	b     []uint32
	prod  []uint32
	shift uint32 // index bits per operand

	Hits      uint64
	Misses    uint64
	ZeroSkips uint64
}

// NewMemoTable returns an empty table at the paper's 16-entry capacity.
func NewMemoTable() *MemoTable { return NewSizedMemoTable(MemoEntries) }

// NewSizedMemoTable returns an empty table with the given power-of-four
// entry count (the index concatenates an equal number of LSBs from each
// operand). Non-conforming sizes are rounded up.
func NewSizedMemoTable(entries int) *MemoTable {
	shift := uint32(1)
	for 1<<(2*shift) < entries {
		shift++
	}
	n := 1 << (2 * shift)
	return &MemoTable{
		valid: make([]bool, n),
		a:     make([]uint32, n),
		b:     make([]uint32, n),
		prod:  make([]uint32, n),
		shift: shift,
	}
}

// Entries returns the table capacity.
func (t *MemoTable) Entries() int { return len(t.valid) }

func (t *MemoTable) index(a, b uint32) int {
	mask := uint32(1)<<t.shift - 1
	return int((a&mask)<<t.shift | (b & mask))
}

// Lookup consults zero skipping and the table for the product a*b. When fast
// is true the product was produced in a single cycle; otherwise the caller
// must run the iterative multiplier and Insert the result.
func (t *MemoTable) Lookup(a, b uint32) (prod uint32, fast bool) {
	if a == 0 || b == 0 {
		t.ZeroSkips++
		return 0, true
	}
	i := t.index(a, b)
	if t.valid[i] && t.a[i] == a && t.b[i] == b {
		t.Hits++
		return t.prod[i], true
	}
	t.Misses++
	return 0, false
}

// Insert stores a computed product. Zero-operand products are never
// inserted; they are covered by zero skipping.
func (t *MemoTable) Insert(a, b, prod uint32) {
	if a == 0 || b == 0 {
		return
	}
	i := t.index(a, b)
	t.valid[i] = true
	t.a[i], t.b[i], t.prod[i] = a, b, prod
}

// Reset invalidates all entries and clears statistics.
func (t *MemoTable) Reset() {
	t.Invalidate()
	t.Hits, t.Misses, t.ZeroSkips = 0, 0, 0
}

// Invalidate clears entries but keeps statistics; the table is modeled as
// volatile, so the runtimes invalidate it on every power outage.
func (t *MemoTable) Invalidate() {
	for i := range t.valid {
		t.valid[i] = false
	}
}
