package cpu

import (
	"strings"
	"testing"
	"testing/quick"

	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// device assembles a program into a fresh CPU+memory.
func device(t *testing.T, src string) (*CPU, *mem.Memory) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		t.Fatal(err)
	}
	return New(m), m
}

// runToHalt executes until HALT and returns total cycles.
func runToHalt(t *testing.T, c *CPU) uint64 {
	t.Helper()
	var cycles uint64
	for i := 0; !c.Halted; i++ {
		if i > 1_000_000 {
			t.Fatal("runaway program")
		}
		cost, err := c.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		cycles += uint64(cost.Cycles)
	}
	return cycles
}

func TestALUBasics(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #7
		MOVI R1, #5
		ADD R2, R0, R1    ; 12
		SUB R3, R0, R1    ; 2
		AND R4, R0, R1    ; 5
		ORR R5, R0, R1    ; 7
		EOR R6, R0, R1    ; 2
		LSL R7, R0, #4    ; 112
		LSR R8, R7, #2    ; 28
		MOVI R9, #0
		SUB R9, R9, R0    ; -7
		ASR R10, R9, #1   ; -4 (arithmetic)
		HALT
	`)
	runToHalt(t, c)
	want := map[isa.Reg]uint32{
		isa.R2: 12, isa.R3: 2, isa.R4: 5, isa.R5: 7, isa.R6: 2,
		isa.R7: 112, isa.R8: 28, isa.R9: 0xFFFFFFF9, isa.R10: 0xFFFFFFFC,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestMovTIBuildsConstants(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #48879       ; 0xBEEF
		MOVTI R0, #57005      ; 0xDEAD
		HALT
	`)
	runToHalt(t, c)
	if c.Regs[isa.R0] != 0xDEADBEEF {
		t.Fatalf("R0 = %#x", c.Regs[isa.R0])
	}
}

func TestShiftSaturation(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #1
		MOVI R1, #40
		LSL R2, R0, R1   ; shift >= 32 yields 0
		MOVI R3, #65535
		MOVTI R3, #65535
		LSR R4, R3, R1   ; 0
		ASR R5, R3, R1   ; sign fill: all ones
		HALT
	`)
	runToHalt(t, c)
	if c.Regs[isa.R2] != 0 || c.Regs[isa.R4] != 0 {
		t.Error("logical shifts >= 32 should produce zero")
	}
	if c.Regs[isa.R5] != 0xFFFFFFFF {
		t.Errorf("ASR by >= 32 of a negative should saturate to sign, got %#x", c.Regs[isa.R5])
	}
}

func TestMulSemanticsAndCost(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #1000
		MOVI R1, #3000
		MUL R2, R0, R1
		HALT
	`)
	var mulCycles uint32
	for !c.Halted {
		pc := c.Regs[isa.PC]
		cost, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if pc == 2*isa.InstBytes {
			mulCycles = cost.Cycles
		}
	}
	if c.Regs[isa.R2] != 3_000_000 {
		t.Fatalf("MUL result %d", c.Regs[isa.R2])
	}
	if mulCycles != 16 {
		t.Fatalf("MUL took %d cycles, want 16 (iterative multiplier)", mulCycles)
	}
}

func TestMulASPSemantics(t *testing.T) {
	// Decompose 0xABCD * 77 into two 8-bit anytime stages and check the sum
	// matches the full product.
	c, _ := device(t, `
		MOVI R0, #77
		MOVI R1, #171      ; 0xAB, most significant byte
		MOVI R2, #205      ; 0xCD
		MOV R3, R0
		MUL_ASP8 R3, R1, #1  ; 77*0xAB << 8
		MOV R4, R0
		MUL_ASP8 R4, R2, #0  ; 77*0xCD
		ADD R5, R3, R4
		HALT
	`)
	runToHalt(t, c)
	want := uint32(77) * 0xABCD
	if c.Regs[isa.R5] != want {
		t.Fatalf("staged product %#x, want %#x", c.Regs[isa.R5], want)
	}
}

func TestMulASPCycles(t *testing.T) {
	for _, tc := range []struct {
		mn     string
		cycles uint32
	}{{"MUL_ASP1", 1}, {"MUL_ASP2", 2}, {"MUL_ASP3", 3}, {"MUL_ASP4", 4}, {"MUL_ASP8", 8}} {
		c, _ := device(t, "MOVI R0, #3\nMOVI R1, #5\n"+tc.mn+" R0, R1, #0\nHALT")
		var got uint32
		for !c.Halted {
			pc := c.Regs[isa.PC]
			cost, _ := c.Step()
			if pc == 2*isa.InstBytes {
				got = cost.Cycles
			}
		}
		if got != tc.cycles {
			t.Errorf("%s took %d cycles, want %d", tc.mn, got, tc.cycles)
		}
	}
}

func TestBranchesAndFlags(t *testing.T) {
	// Sum 1..10 with a BNE loop, then verify signed/unsigned conditions.
	c, _ := device(t, `
		MOVI R0, #10
		MOVI R1, #0
	loop:
		ADD R1, R1, R0
		SUBIS R0, R0, #1
		BNE loop

		MOVI R2, #0
		MOVI R3, #0
		SUB R3, R3, R2    ; R3 = 0
		CMPI R3, #-1      ; 0 > -1 signed
		BGT signed_ok
		MOVI R12, #1      ; poison
	signed_ok:
		MOVI R4, #0
		SUBI R4, R4, #1   ; R4 = 0xFFFFFFFF
		CMPI R5, #1       ; 0 < 1 unsigned
		BLO unsigned_ok
		MOVI R12, #2
	unsigned_ok:
		CMP R4, R5        ; 0xFFFFFFFF >= 0 unsigned
		BHS done
		MOVI R12, #3
	done:
		HALT
	`)
	runToHalt(t, c)
	if c.Regs[isa.R1] != 55 {
		t.Errorf("loop sum = %d, want 55", c.Regs[isa.R1])
	}
	if c.Regs[isa.R12] != 0 {
		t.Errorf("condition branch failed, poison %d", c.Regs[isa.R12])
	}
}

func TestTakenBranchCostsExtraCycle(t *testing.T) {
	c, _ := device(t, `
		CMPI R0, #0
		BEQ target
		NOP
	target:
		HALT
	`)
	var beqCost uint32
	for !c.Halted {
		pc := c.Regs[isa.PC]
		cost, _ := c.Step()
		if pc == 1*isa.InstBytes {
			beqCost = cost.Cycles
		}
	}
	if beqCost != 2 {
		t.Fatalf("taken BEQ cost %d cycles, want 2 (pipeline refill)", beqCost)
	}

	c2, _ := device(t, `
		CMPI R0, #1
		BEQ target
		NOP
	target:
		HALT
	`)
	for !c2.Halted {
		pc := c2.Regs[isa.PC]
		cost, _ := c2.Step()
		if pc == 1*isa.InstBytes && cost.Cycles != 1 {
			t.Fatalf("not-taken BEQ cost %d cycles, want 1", cost.Cycles)
		}
	}
}

func TestCallReturn(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #5
		BL double
		BL double
		HALT
	double:
		ADD R0, R0, R0
		BX LR
	`)
	runToHalt(t, c)
	if c.Regs[isa.R0] != 20 {
		t.Fatalf("R0 = %d, want 20", c.Regs[isa.R0])
	}
}

func TestLoadStoreWidths(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #0
		MOVTI R0, #4096       ; 0x10000000 = data base
		MOVI R1, #4660        ; 0x1234
		MOVTI R1, #22136      ; R1 = 0x56781234
		STR R1, [R0, #0]
		LDRB R2, [R0, #0]     ; 0x34
		LDRB R3, [R0, #3]     ; 0x56
		LDRH R4, [R0, #2]     ; 0x5678
		LDR  R5, [R0, #0]
		STRB R3, [R0, #4]
		LDR  R6, [R0, #4]     ; only low byte written
		HALT
	`)
	runToHalt(t, c)
	checks := map[isa.Reg]uint32{
		isa.R2: 0x34, isa.R3: 0x56, isa.R4: 0x5678, isa.R5: 0x56781234, isa.R6: 0x56,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestRegisterOffsetAddressing(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #8
		MOVI R2, #99
		STR R2, [R0, R1]
		LDR R3, [R0, R1]
		HALT
	`)
	runToHalt(t, c)
	if c.Regs[isa.R3] != 99 {
		t.Fatalf("register-offset store/load failed: %d", c.Regs[isa.R3])
	}
}

func TestSkimInstruction(t *testing.T) {
	c, _ := device(t, `
		SKM done
		MOVI R0, #1
	done:
		HALT
	`)
	cost, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !c.SkimArmed || c.SkimTarget != 2*isa.InstBytes {
		t.Fatalf("skim register not armed correctly: %v %#x", c.SkimArmed, c.SkimTarget)
	}
	if cost.NVWrites != 1 {
		t.Fatalf("SKM should count one NV write (the skim register), got %d", cost.NVWrites)
	}
	c.DisarmSkim()
	if c.SkimArmed || c.SkimTarget != 0 {
		t.Fatal("DisarmSkim did not clear")
	}
}

func TestSnapshotRestore(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #41
		CMPI R0, #41
		MOVI R1, #1
		HALT
	`)
	c.Step()
	c.Step()
	snap := c.Snapshot()
	runToHalt(t, c)
	c.Restore(snap)
	if c.Halted {
		t.Fatal("restore should clear halt")
	}
	if c.Regs[isa.R1] == 1 {
		t.Fatal("restore should rewind R1")
	}
	if !c.Z {
		t.Fatal("restore should reinstate flags")
	}
	runToHalt(t, c)
	if c.Regs[isa.R1] != 1 {
		t.Fatal("re-execution after restore failed")
	}
}

func TestPowerLossClearsVolatileState(t *testing.T) {
	c, _ := device(t, `
		SKM end
		MOVI R0, #7
		CMPI R0, #7
	end:
		HALT
	`)
	c.Memo = NewMemoTable()
	c.Memo.Insert(3, 5, 15)
	c.Step()
	c.Step()
	c.Step()
	c.PowerLoss()
	if c.Regs[isa.R0] != 0 || c.Z {
		t.Error("registers and flags are volatile and must clear")
	}
	if !c.SkimArmed {
		t.Error("the skim register is non-volatile and must survive")
	}
	if _, fast := c.Memo.Lookup(3, 5); fast {
		t.Error("memo table is volatile and must invalidate")
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram([]byte{0, 0, 0, 0xFF}); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	if _, err := c.Step(); err == nil || !strings.Contains(err.Error(), "illegal") {
		t.Fatalf("expected illegal-instruction fault, got %v", err)
	}
}

func TestMisalignedPCFaults(t *testing.T) {
	c, _ := device(t, "HALT")
	c.Regs[isa.PC] = 2
	if _, err := c.Step(); err == nil {
		t.Fatal("expected misaligned-PC fault")
	}
}

func TestPCOutsideCodeFaults(t *testing.T) {
	c, _ := device(t, "HALT")
	c.Regs[isa.PC] = 0x0FFF_0000
	if _, err := c.Step(); err == nil {
		t.Fatal("expected out-of-code fault")
	}
}

func TestUnmappedLoadFaults(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #0
		MOVTI R0, #40000
		LDR R1, [R0, #0]
		HALT
	`)
	c.Step()
	c.Step()
	if _, err := c.Step(); err == nil {
		t.Fatal("expected unmapped-access fault")
	}
}

func TestHaltedCPUStaysHalted(t *testing.T) {
	c, _ := device(t, "HALT")
	runToHalt(t, c)
	cost, err := c.Step()
	if err != nil || cost.Cycles != 0 {
		t.Fatalf("stepping a halted CPU should be free: %v %v", cost, err)
	}
}

func TestBeforeStoreHook(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #5
		STR R1, [R0, #0]
		STRH R1, [R0, #4]
		STRB R1, [R0, #6]
		HALT
	`)
	type call struct {
		addr uint32
		size int
	}
	var calls []call
	c.BeforeStore = func(addr uint32, size int) {
		calls = append(calls, call{addr, size})
	}
	runToHalt(t, c)
	want := []call{{0x10000000, 4}, {0x10000004, 2}, {0x10000006, 1}}
	if len(calls) != len(want) {
		t.Fatalf("hook calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d = %v, want %v", i, calls[i], want[i])
		}
	}
}

func TestNVWriteAccounting(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #0
		MOVTI R0, #4096   ; NV data
		MOVI R1, #0
		MOVTI R1, #8192   ; volatile SRAM
		MOVI R2, #1
		STR R2, [R0, #0]
		STR R2, [R1, #0]
		HALT
	`)
	var nv int
	for !c.Halted {
		cost, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		nv += cost.NVWrites
	}
	if nv != 1 {
		t.Fatalf("NV writes = %d, want 1 (SRAM stores are free)", nv)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #2
		MOVI R1, #3
		MUL R2, R0, R1
		HALT
	`)
	c.SetAmenablePCs([]uint32{2 * isa.InstBytes})
	cycles := runToHalt(t, c)
	if c.Stats.Instructions != 4 {
		t.Errorf("instructions = %d", c.Stats.Instructions)
	}
	if c.Stats.Cycles != cycles {
		t.Errorf("stats cycles %d != measured %d", c.Stats.Cycles, cycles)
	}
	if c.Stats.OpCount[isa.OpMul] != 1 {
		t.Errorf("MUL count = %d", c.Stats.OpCount[isa.OpMul])
	}
	if c.Stats.AmenableOps != 1 {
		t.Errorf("amenable ops = %d", c.Stats.AmenableOps)
	}
}

// --- segmented-carry adder properties ---

// refLaneAdd is the obvious per-lane reference implementation.
func refLaneAdd(a, b uint32, lane uint, sub bool) uint32 {
	mask := uint32(1)<<lane - 1
	var out uint32
	for sh := uint(0); sh < 32; sh += lane {
		la := (a >> sh) & mask
		lb := (b >> sh) & mask
		var lr uint32
		if sub {
			lr = (la - lb) & mask
		} else {
			lr = (la + lb) & mask
		}
		out |= lr << sh
	}
	return out
}

func TestAddASVAgainstReference(t *testing.T) {
	for _, lane := range []uint{4, 8, 16} {
		lane := lane
		f := func(a, b uint32) bool {
			return AddASV(a, b, lane) == refLaneAdd(a, b, lane, false)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("AddASV lane %d: %v", lane, err)
		}
	}
}

func TestSubASVAgainstReference(t *testing.T) {
	for _, lane := range []uint{4, 8, 16} {
		lane := lane
		f := func(a, b uint32) bool {
			return SubASV(a, b, lane) == refLaneAdd(a, b, lane, true)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("SubASV lane %d: %v", lane, err)
		}
	}
}

func TestASVSubInverts(t *testing.T) {
	f := func(a, b uint32) bool {
		for _, lane := range []uint{4, 8, 16} {
			if SubASV(AddASV(a, b, lane), b, lane) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestASVFullWidthFallback(t *testing.T) {
	a, b := uint32(7), uint32(9)
	if AddASV(a, b, 0) != 16 || SubASV(a, b, 32) != a-b {
		t.Error("degenerate lane widths should behave as plain 32-bit ops")
	}
}

func TestADDASVInstruction(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #511      ; 0x01FF: lanes FF and 01
		MOVI R1, #257      ; 0x0101
		ADD_ASV8 R0, R1    ; lane0: FF+01=00 (carry dropped), lane1: 01+01=02
		HALT
	`)
	runToHalt(t, c)
	if c.Regs[isa.R0] != 0x0200 {
		t.Fatalf("ADD_ASV8 = %#x, want 0x0200 (no carry across lanes)", c.Regs[isa.R0])
	}
}

// --- memoization ---

func TestMemoTableBehavior(t *testing.T) {
	mt := NewMemoTable()
	if _, fast := mt.Lookup(100, 200); fast {
		t.Fatal("empty table cannot hit")
	}
	mt.Insert(100, 200, 20000)
	if p, fast := mt.Lookup(100, 200); !fast || p != 20000 {
		t.Fatal("inserted entry should hit")
	}
	// Zero operands skip without touching the table.
	if p, fast := mt.Lookup(0, 7); !fast || p != 0 {
		t.Fatal("zero skipping failed")
	}
	mt.Insert(0, 7, 0)
	if mt.ZeroSkips != 1 || mt.Hits != 1 || mt.Misses != 1 {
		t.Fatalf("stats = %+v", *mt)
	}
	// A conflicting pair (same index) evicts.
	mt.Insert(100+4, 200+4, 1) // same two LSBs => same slot
	if _, fast := mt.Lookup(100, 200); fast {
		t.Fatal("conflicting insert should have evicted")
	}
	mt.Invalidate()
	if _, fast := mt.Lookup(104, 204); fast {
		t.Fatal("invalidate should clear entries")
	}
	if mt.Hits != 1 {
		t.Fatal("invalidate should keep statistics")
	}
	mt.Reset()
	if mt.Hits != 0 || mt.Misses == 0 {
		// Reset clears everything; the lookups above after Reset counted.
	}
}

func TestMemoizedMulCostsOneCycle(t *testing.T) {
	c, _ := device(t, `
		MOVI R0, #123
		MOVI R1, #45
		MUL R2, R0, R1
		MUL R3, R0, R1
		MUL R4, R1, R5   ; R5=0: zero skip
		HALT
	`)
	c.Memo = NewMemoTable()
	var costs []uint32
	for !c.Halted {
		pc := c.Regs[isa.PC]
		cost, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if pc >= 2*isa.InstBytes && pc <= 4*isa.InstBytes {
			costs = append(costs, cost.Cycles)
		}
	}
	if len(costs) != 3 || costs[0] != 16 || costs[1] != 1 || costs[2] != 1 {
		t.Fatalf("MUL costs = %v, want [16 1 1]", costs)
	}
	if c.Regs[isa.R3] != 123*45 || c.Regs[isa.R4] != 0 {
		t.Fatal("memoized results wrong")
	}
}

func TestResetPreservesSkim(t *testing.T) {
	c, _ := device(t, "SKM #8\nNOP\nHALT")
	c.Step()
	c.Reset()
	if !c.SkimArmed {
		t.Fatal("Reset must not clear the non-volatile skim register")
	}
	if c.Regs[isa.PC] != mem.CodeBase {
		t.Fatal("Reset should return PC to the code base")
	}
}
