package cpu

// The segmented-carry adder (Figure 8 of the paper): a 32-bit ripple adder
// with a mux after every four full adders. An ASV instruction forces zeroes
// into the carry chain at lane boundaries, turning the unit into 8x4-bit,
// 4x8-bit or 2x16-bit independent adders while retaining full 32-bit
// addition for ordinary instructions.

// laneMask returns a word with the low bit of every L-bit lane set.
func laneLowBits(lane uint) uint32 {
	switch lane {
	case 4:
		return 0x1111_1111
	case 8:
		return 0x0101_0101
	case 16:
		return 0x0001_0001
	default:
		return 1 // single 32-bit lane
	}
}

// AddASV performs lane-parallel addition with the carry chain segmented at
// lane boundaries: each L-bit lane computes (a_lane + b_lane) mod 2^L.
// Carry-outs between lanes are discarded, which is precisely the
// "unprovisioned" information loss the paper analyzes in Figure 14.
func AddASV(a, b uint32, lane uint) uint32 {
	if lane == 0 || lane >= 32 {
		return a + b
	}
	// SWAR addition: add without the top bit of each lane, then patch the
	// top bit with XOR so no carry crosses a lane boundary.
	top := laneLowBits(lane) << (lane - 1)
	low := ^top
	sum := (a & low) + (b & low)
	return sum ^ ((a ^ b) & top)
}

// SubASV performs lane-parallel subtraction: each L-bit lane computes
// (a_lane - b_lane) mod 2^L, with no borrow crossing lane boundaries.
func SubASV(a, b uint32, lane uint) uint32 {
	if lane == 0 || lane >= 32 {
		return a - b
	}
	top := laneLowBits(lane) << (lane - 1)
	low := ^top
	diff := (a | top) - (b & low)
	return diff ^ ((a ^ b ^ top) & top)
}
