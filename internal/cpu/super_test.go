package cpu

import (
	"math/rand"
	"reflect"
	"testing"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

// runSuperWindows drives the superblock backend in windows of the given
// budget until halt or fault, collecting the per-instruction cost stream —
// the RunSuper counterpart of runBatched.
func runSuperWindows(t *testing.T, c *CPU, budget uint64) (uint64, []Cost, error) {
	t.Helper()
	var (
		cycles uint64
		costs  []Cost
	)
	for i := 0; !c.Halted; i++ {
		if i > 1_000_000 {
			t.Fatal("runaway superblock program")
		}
		res, err := c.RunSuper(budget, &costs)
		cycles += res.Cycles
		if err != nil {
			return cycles, costs, err
		}
	}
	return cycles, costs, nil
}

// TestRunSuperMatchesStepAndBatch is the three-level differential for the
// translation backend: every program runs to halt through the reference
// Step loop, the batched interpreter, and the superblock executor at several
// window sizes. Cycle totals, per-instruction cost streams, and all
// architectural and statistical state must be identical across all three.
func TestRunSuperMatchesStepAndBatch(t *testing.T) {
	budgets := []uint64{1, 7, 64, 1 << 62}
	for name, src := range diffPrograms {
		for _, budget := range budgets {
			t.Run(name, func(t *testing.T) {
				ref, refM := device(t, src)
				bat, batM := device(t, src)
				sup, supM := device(t, src)

				refCycles, refCosts, refErr := stepRef(t, ref)
				batCycles, batCosts, batErr := runBatched(t, bat, budget)
				supCycles, supCosts, supErr := runSuperWindows(t, sup, budget)
				if refErr != nil || batErr != nil || supErr != nil {
					t.Fatalf("unexpected faults: ref %v bat %v sup %v", refErr, batErr, supErr)
				}
				if refCycles != batCycles || refCycles != supCycles {
					t.Errorf("budget %d: cycles diverge: ref %d bat %d sup %d",
						budget, refCycles, batCycles, supCycles)
				}
				if !reflect.DeepEqual(refCosts, supCosts) {
					t.Errorf("budget %d: cost streams diverge: ref %d entries sup %d entries",
						budget, len(refCosts), len(supCosts))
				}
				if !reflect.DeepEqual(refCosts, batCosts) {
					t.Errorf("budget %d: cost streams diverge: ref %d entries bat %d entries",
						budget, len(refCosts), len(batCosts))
				}
				assertSameState(t, ref, bat, refM, batM)
				assertSameState(t, ref, sup, refM, supM)
			})
		}
	}
}

// TestRunSuperStoreHook pins the StopStore deopt: with a BeforeStore hook
// installed the superblock backend must never execute an NV-data store
// inline — it delegates to the interpreter, which stops ahead of the store
// so the caller routes it through Step, exactly like RunUntil.
func TestRunSuperStoreHook(t *testing.T) {
	src := diffPrograms["mixed-loop"]
	type storeEvt struct {
		addr uint32
		size int
	}

	ref, refM := device(t, src)
	sup, supM := device(t, src)
	var refEvts, supEvts []storeEvt
	ref.BeforeStore = func(addr uint32, size int) {
		refEvts = append(refEvts, storeEvt{addr, size})
	}
	sup.BeforeStore = func(addr uint32, size int) {
		supEvts = append(supEvts, storeEvt{addr, size})
	}

	if _, _, err := stepRef(t, ref); err != nil {
		t.Fatal(err)
	}
	for i := 0; !sup.Halted; i++ {
		if i > 1_000_000 {
			t.Fatal("runaway superblock program")
		}
		res, err := sup.RunSuper(1<<62, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason == StopStore {
			if _, err := sup.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	if len(refEvts) == 0 {
		t.Fatal("test program never stored to NV data")
	}
	if !reflect.DeepEqual(refEvts, supEvts) {
		t.Errorf("hook sequences diverge: ref %d events, sup %d events", len(refEvts), len(supEvts))
	}
	assertSameState(t, ref, sup, refM, supM)
}

// TestRunSuperFaultParity checks fault identity against the reference for
// both deopt faults (undecodable slot, fall-off-end) and faults raised
// inside a fused superblock body, where the partial-fault exit must account
// the executed prefix exactly as the interpreter would.
func TestRunSuperFaultParity(t *testing.T) {
	progs := map[string]string{
		"unmapped-load": `
			MOVI R0, #0
			MOVTI R0, #0x4000
			NOP
			LDR R1, [R0, #0]
			HALT
		`,
		"fall-off-end": `
			MOVI R0, #1
			NOP
		`,
		// The faulting store sits mid-superblock behind translatable
		// instructions, forcing the partial-fault exit path.
		"mid-block-store-fault": `
			MOVI R0, #0
			MOVTI R0, #0x4000
			MOVI R1, #7
			ADD R2, R1, R1
			STR R2, [R0, #8]
			SUBIS R1, R1, #1
			HALT
		`,
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			ref, refM := device(t, src)
			sup, supM := device(t, src)
			_, _, refErr := stepRef(t, ref)
			_, _, supErr := runSuperWindows(t, sup, 1<<62)
			if refErr == nil || supErr == nil {
				t.Fatalf("expected faults, got ref %v sup %v", refErr, supErr)
			}
			if refErr.Error() != supErr.Error() {
				t.Errorf("fault messages diverge:\nref %v\nsup %v", refErr, supErr)
			}
			assertSameState(t, ref, sup, refM, supM)
		})
	}
}

// TestRunSuperAmenableCounting pins AmenableOps parity through superblock
// aggregate accounting, including marks on the faulting instruction of a
// partial block (the reference tallies the mark before executing).
func TestRunSuperAmenableCounting(t *testing.T) {
	src := diffPrograms["mixed-loop"]
	marks := []uint32{mem.CodeBase + 3*isa.InstBytes, mem.CodeBase + 5*isa.InstBytes}
	ref, refM := device(t, src)
	sup, supM := device(t, src)
	ref.SetAmenablePCs(marks)
	sup.SetAmenablePCs(marks)
	if _, _, err := stepRef(t, ref); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runSuperWindows(t, sup, 13); err != nil {
		t.Fatal(err)
	}
	if ref.Stats.AmenableOps == 0 {
		t.Fatal("test program never hit an amenable PC")
	}
	assertSameState(t, ref, sup, refM, supM)
}

// TestRunSuperMemoParity runs a memoization-heavy multiply loop under the
// reference and the superblock backend with memo tables installed: the
// fast-hit cycle discount (sbAdj) must reproduce the interpreter's
// data-dependent multiply costs exactly.
func TestRunSuperMemoParity(t *testing.T) {
	src := `
		MOVI R1, #300
		MOVI R2, #17
		MOVI R3, #23
	loop:
		MUL R4, R2, R3
		MUL_ASP8 R4, R2, #1
		ADD R5, R5, R4
		SUBIS R1, R1, #1
		BNE loop
		HALT
	`
	ref, refM := device(t, src)
	sup, supM := device(t, src)
	ref.Memo = NewMemoTable()
	sup.Memo = NewMemoTable()

	refCycles, _, refErr := stepRef(t, ref)
	supCycles, supErr := func() (uint64, error) {
		var cycles uint64
		for !sup.Halted {
			res, err := sup.RunSuper(1<<62, nil)
			cycles += res.Cycles
			if err != nil {
				return cycles, err
			}
		}
		return cycles, nil
	}()
	if refErr != nil || supErr != nil {
		t.Fatalf("unexpected faults: ref %v sup %v", refErr, supErr)
	}
	if refCycles != supCycles {
		t.Errorf("cycles diverge with memoization: ref %d sup %d", refCycles, supCycles)
	}
	assertSameState(t, ref, sup, refM, supM)
}

// TestRunDispatch pins the backend selector: BackendBatch must behave as
// RunUntil and the default zero value as the superblock executor, both
// producing identical results.
func TestRunDispatch(t *testing.T) {
	for _, backend := range []Backend{BackendSuper, BackendBatch} {
		ref, refM := device(t, diffPrograms["mixed-loop"])
		got, gotM := device(t, diffPrograms["mixed-loop"])
		got.Backend = backend
		if _, _, err := stepRef(t, ref); err != nil {
			t.Fatal(err)
		}
		for !got.Halted {
			if _, err := got.Run(1<<62, nil); err != nil {
				t.Fatal(err)
			}
		}
		assertSameState(t, ref, got, refM, gotM)
	}
}

// TestTranslationBoundariesMatchCFG is the satellite-1 contract: every fused
// superblock must lie inside exactly one wncheck CFG block, starting at the
// block's first instruction, and a block fused through its terminator must
// end exactly where the CFG block ends. The CFG comes from the same public
// accessor the translator consumes, so a drift in either direction fails.
func TestTranslationBoundariesMatchCFG(t *testing.T) {
	for name, src := range diffPrograms {
		t.Run(name, func(t *testing.T) {
			c, m := device(t, src)
			extents, err := c.TranslationBlocks()
			if err != nil {
				t.Fatal(err)
			}
			if len(extents) == 0 {
				t.Fatal("no superblocks fused")
			}
			g := wncheck.ImageCFG(m.ProgramImage())
			blocks := g.Blocks()
			fullFusions := 0
			for _, ext := range extents {
				idx := g.BlockAt(ext[0])
				if idx < 0 {
					t.Fatalf("superblock start %#08x is not inside any CFG block", ext[0])
				}
				b := blocks[idx]
				if ext[0] != b.Start {
					t.Errorf("superblock starts at %#08x, CFG block at %#08x", ext[0], b.Start)
				}
				if ext[1] > b.End {
					t.Errorf("superblock [%#08x,%#08x) crosses CFG block end %#08x",
						ext[0], ext[1], b.End)
				}
				// A block counts as fully fused when it reaches the CFG
				// block's end, or stops exactly one instruction short of it
				// (a non-inlinable terminator: HALT or SKM stays on the
				// interpreter by design).
				if ext[1] == b.End || ext[1]+isa.InstBytes == b.End {
					fullFusions++
				}
			}
			if fullFusions == 0 {
				t.Error("no superblock spans a full CFG block")
			}
		})
	}
}

// TestRunBudgetOvershootAllStopReasons is the satellite-2 regression: for
// every StopReason — budget, halt, store-hook, skim, and fault — and for
// both backends, a window never exceeds budget + MaxInstrCycles - 1 cycles.
// The programs are chosen so every reason is actually observed, and the test
// fails if one never occurs.
func TestRunBudgetOvershootAllStopReasons(t *testing.T) {
	progs := []string{
		diffPrograms["mixed-loop"], // stores (StopStore with hook), budget windows, halt
		diffPrograms["skim"],       // StopSkim
		`
			MOVI R0, #0
			MOVTI R0, #0x4000
			MOVI R1, #50
		spin:
			ADD R2, R2, R1
			MUL R3, R2, R1
			SUBIS R1, R1, #1
			BNE spin
			LDR R4, [R0, #0]
			HALT
		`, // StopFault after a multiply-heavy run (worst-case overshoot)
	}
	for _, backend := range []Backend{BackendSuper, BackendBatch} {
		seen := map[StopReason]bool{}
		for _, src := range progs {
			for budget := uint64(1); budget <= 40; budget++ {
				c, _ := device(t, src)
				c.Backend = backend
				c.BeforeStore = func(uint32, int) {} // arm the StopStore path
				for i := 0; !c.Halted; i++ {
					if i > 100_000 {
						t.Fatal("runaway program")
					}
					res, err := c.Run(budget, nil)
					seen[res.Reason] = true
					if res.Cycles > budget+MaxInstrCycles-1 {
						t.Fatalf("backend %d budget %d: window ran %d cycles (reason %d), want <= %d",
							backend, budget, res.Cycles, res.Reason, budget+MaxInstrCycles-1)
					}
					if err != nil {
						break // fault windows end the run
					}
					if res.Reason == StopStore {
						if _, err := c.Step(); err != nil {
							break
						}
					}
				}
			}
		}
		for _, want := range []StopReason{StopBudget, StopHalt, StopStore, StopSkim, StopFault} {
			if !seen[want] {
				t.Errorf("backend %d: StopReason %d never observed", backend, want)
			}
		}
	}
}

// fuzzSeedWords returns the valid encodable words derived from the
// FuzzEncodeDecode seed instructions — the same operand-class coverage the
// fuzz corpus starts from.
func fuzzSeedWords(t *testing.T) []uint32 {
	t.Helper()
	seeds := []isa.Instruction{
		{Op: isa.OpNop},
		{Op: isa.OpHalt},
		{Op: isa.OpMovI, Rd: 3, Imm: 0xFFFF},
		{Op: isa.OpMovTI, Rd: 3, Imm: 0x1000},
		{Op: isa.OpMov, Rd: 1, Rm: 2},
		{Op: isa.OpAdd, Rd: 1, Rn: 2, Rm: 3},
		{Op: isa.OpAddI, Rd: 1, Rn: 2, Imm: -(1 << 15)},
		{Op: isa.OpSubIS, Rd: 4, Rn: 4, Imm: 1},
		{Op: isa.OpCmpI, Rn: 5, Imm: 1<<15 - 1},
		{Op: isa.OpLdr, Rd: 6, Rn: 7, Imm: 64},
		{Op: isa.OpStrbX, Rd: 6, Rn: 7, Rm: 8},
		{Op: isa.OpB, Imm: -8},
		{Op: isa.OpBl, Imm: 400},
		{Op: isa.OpBx, Rm: 14},
		{Op: isa.OpSkm, Imm: 0x120},
		{Op: isa.OpMulASP8, Rd: 9, Rm: 10, Imm: 3},
		{Op: isa.OpAddASV16, Rd: 11, Rm: 12},
		{Op: isa.OpSubASV4, Rd: 0, Rm: 1},
	}
	var words []uint32
	for _, in := range seeds {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("seed %v does not encode: %v", in, err)
		}
		words = append(words, uint32(w))
	}
	return words
}

// randomProgram synthesizes a program of decodable words: a mix of fuzz-seed
// words with randomized operand fields and raw random words filtered through
// isa.Decode, HALT-terminated. Deterministic per rng.
func randomProgram(rng *rand.Rand, seedWords []uint32) []byte {
	n := 16 + rng.Intn(48)
	image := make([]byte, 0, (n+1)*isa.InstBytes)
	emit := func(w uint32) {
		image = append(image, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			// A fully random decodable word (rejection-sampled).
			for tries := 0; tries < 64; tries++ {
				w := rng.Uint32()
				if _, err := isa.Decode(isa.Word(w)); err == nil {
					emit(w)
					break
				}
				if tries == 63 {
					emit(seedWords[rng.Intn(len(seedWords))])
				}
			}
			continue
		}
		// A seed word with re-randomized register fields, re-checked so the
		// mutation stays decodable; fall back to the original seed word.
		base := seedWords[rng.Intn(len(seedWords))]
		in, err := isa.Decode(isa.Word(base))
		if err != nil {
			continue
		}
		in.Rd = isa.Reg(rng.Intn(13)) // keep off SP/LR/PC for denser execution
		if in.Op.HasRm() {
			in.Rm = isa.Reg(rng.Intn(13))
		}
		if w, err := isa.Encode(in); err == nil {
			emit(uint32(w))
		} else {
			emit(base)
		}
	}
	// Terminate: random programs rarely halt on their own.
	if w, err := isa.Encode(isa.Instruction{Op: isa.OpHalt}); err == nil {
		emit(uint32(w))
	}
	return image
}

// TestFuzzCorpusDifferential is the satellite-3 fuzz-style differential:
// deterministic random programs built from the FuzzEncodeDecode seed classes
// run under the reference Step loop, the batched interpreter at budget=1
// (one instruction per window — every boundary observed), and the superblock
// backend, diffing registers, flags, skim state, and NV memory at every
// instruction boundary, and full state (including Stats) at the end.
func TestFuzzCorpusDifferential(t *testing.T) {
	const (
		programs      = 40
		maxBoundaries = 3000
	)
	seedWords := fuzzSeedWords(t)
	rng := rand.New(rand.NewSource(0x574E5F50523821)) // deterministic corpus

	for pi := 0; pi < programs; pi++ {
		image := randomProgram(rng, seedWords)
		newDev := func() (*CPU, *mem.Memory) {
			m := mem.New(mem.DefaultConfig())
			if err := m.LoadProgram(image); err != nil {
				t.Fatal(err)
			}
			return New(m), m
		}
		ref, refM := newDev()
		bat, batM := newDev()

		// Phase 1: boundary-lockstep reference vs batched interpreter.
		var refErr, batErr error
		boundaries := 0
		for ; boundaries < maxBoundaries && !ref.Halted; boundaries++ {
			_, refErr = ref.Step()
			_, batErr = bat.RunUntil(1, nil)
			if (refErr == nil) != (batErr == nil) {
				t.Fatalf("program %d boundary %d: fault asymmetry ref %v bat %v",
					pi, boundaries, refErr, batErr)
			}
			if refErr != nil {
				if refErr.Error() != batErr.Error() {
					t.Fatalf("program %d boundary %d: fault messages diverge:\nref %v\nbat %v",
						pi, boundaries, refErr, batErr)
				}
				break
			}
			if ref.Regs != bat.Regs || ref.Halted != bat.Halted ||
				ref.SkimArmed != bat.SkimArmed || ref.SkimTarget != bat.SkimTarget ||
				ref.N != bat.N || ref.Z != bat.Z || ref.C != bat.C || ref.V != bat.V {
				t.Fatalf("program %d: state diverges at boundary %d", pi, boundaries)
			}
		}
		if !refM.StateEqual(batM) {
			t.Fatalf("program %d: memory diverges ref vs bat", pi)
		}

		// Phase 2: superblock backend vs the reference outcome. When the
		// reference halted or faulted the program is finite, so the
		// superblock run must reach the identical end state; when the
		// boundary cap hit, align by the exact cycle total (budgets stop at
		// instruction boundaries, so equal cycle sums mean equal positions).
		sup, supM := newDev()
		var supErr error
		if refErr != nil || ref.Halted {
			for i := 0; !sup.Halted && supErr == nil; i++ {
				if i > maxBoundaries {
					t.Fatalf("program %d: superblock run does not terminate", pi)
				}
				_, supErr = sup.RunSuper(1<<62, nil)
			}
			if (refErr == nil) != (supErr == nil) {
				t.Fatalf("program %d: fault asymmetry ref %v sup %v", pi, refErr, supErr)
			}
			if refErr != nil && refErr.Error() != supErr.Error() {
				t.Fatalf("program %d: fault messages diverge:\nref %v\nsup %v", pi, refErr, supErr)
			}
		} else {
			target := ref.Stats.Cycles
			for sup.Stats.Cycles < target && !sup.Halted {
				if _, err := sup.RunSuper(target-sup.Stats.Cycles, nil); err != nil {
					t.Fatalf("program %d: superblock faulted during aligned run: %v", pi, err)
				}
			}
		}
		if ref.Regs != sup.Regs || ref.Halted != sup.Halted ||
			ref.SkimArmed != sup.SkimArmed || ref.SkimTarget != sup.SkimTarget ||
			ref.N != sup.N || ref.Z != sup.Z || ref.C != sup.C || ref.V != sup.V {
			t.Fatalf("program %d: final state diverges ref vs sup", pi)
		}
		if !reflect.DeepEqual(ref.Stats, sup.Stats) {
			t.Fatalf("program %d: stats diverge:\nref %+v\nsup %+v", pi, ref.Stats, sup.Stats)
		}
		if !refM.StateEqual(supM) {
			t.Fatalf("program %d: memory diverges ref vs sup", pi)
		}
	}
}

// TestForkSharesTranslation pins the lockstep fork contract: a forked CPU
// reuses the parent's decode cache and translation (pointer-equal), copies
// architectural state, drops the store hook, and runs independently to a
// state identical to an unforked continuation.
func TestForkSharesTranslation(t *testing.T) {
	src := diffPrograms["mixed-loop"]
	c, m := device(t, src)
	c.BeforeStore = func(uint32, int) {}
	// Run partway in, then fork.
	if _, err := c.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	c.BeforeStore = nil
	m2 := m.Clone()
	f := c.Fork(m2)
	if f.trans != c.trans || f.decodeCache == nil {
		t.Fatal("fork must share the parent's translation and decode cache")
	}
	if f.BeforeStore != nil {
		t.Fatal("fork must not inherit the BeforeStore hook")
	}
	if f.Regs != c.Regs || f.Stats != c.Stats {
		t.Fatal("fork must copy architectural state and stats")
	}
	// Both continue to halt; they must stay identical.
	for !c.Halted {
		if _, err := c.Run(1<<62, nil); err != nil {
			t.Fatal(err)
		}
	}
	for !f.Halted {
		if _, err := f.Run(1<<62, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Regs != f.Regs || !m.StateEqual(m2) {
		t.Fatal("forked continuation diverged from the parent's")
	}
}
