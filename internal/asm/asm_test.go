package asm

import (
	"strings"
	"testing"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAt(t *testing.T, p *Program, idx int) isa.Instruction {
	t.Helper()
	off := idx * isa.InstBytes
	w := uint32(p.Image[off]) | uint32(p.Image[off+1])<<8 | uint32(p.Image[off+2])<<16 | uint32(p.Image[off+3])<<24
	in, err := isa.Decode(isa.Word(w))
	if err != nil {
		t.Fatalf("decode word %d: %v", idx, err)
	}
	return in
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		; a comment
		MOVI R0, #10
		MOVI R1, #0
	loop:
		ADD R1, R1, R0
		SUBIS R0, R0, #1
		BNE loop
		HALT
	`)
	if got := len(p.Image) / isa.InstBytes; got != 6 {
		t.Fatalf("got %d instructions, want 6", got)
	}
	if addr, ok := p.Labels["loop"]; !ok || addr != mem.CodeBase+2*isa.InstBytes {
		t.Fatalf("label loop at %#x", addr)
	}
	// The BNE at index 4 targets index 2: offset -2 instructions.
	bne := decodeAt(t, p, 4)
	if bne.Op != isa.OpBne || bne.Imm != -2*isa.InstBytes {
		t.Fatalf("BNE decoded as %+v", bne)
	}
}

func TestImmediatePromotion(t *testing.T) {
	p := mustAssemble(t, `
		ADD R0, R1, R2
		ADD R0, R1, #5
		MOV R0, R1
		MOV R0, #7
		CMP R0, R1
		CMP R0, #-3
		LSL R0, R1, #2
	`)
	wantOps := []isa.Opcode{isa.OpAdd, isa.OpAddI, isa.OpMov, isa.OpMovI, isa.OpCmp, isa.OpCmpI, isa.OpLslI}
	for i, want := range wantOps {
		if got := decodeAt(t, p, i).Op; got != want {
			t.Errorf("instruction %d: got %s, want %s", i, got.Name(), want.Name())
		}
	}
}

func TestMemoryOperandForms(t *testing.T) {
	p := mustAssemble(t, `
		LDR  R1, [R2, #8]
		LDR  R1, [R2, R3]
		LDRB R1, [R2]
		STRH R1, [R2, #-2]
		STR  R1, [R2, R3]
	`)
	want := []struct {
		op  isa.Opcode
		imm int32
	}{
		{isa.OpLdr, 8},
		{isa.OpLdrX, 0},
		{isa.OpLdrb, 0},
		{isa.OpStrh, -2},
		{isa.OpStrX, 0},
	}
	for i, w := range want {
		in := decodeAt(t, p, i)
		if in.Op != w.op || (!in.Op.HasRm() && in.Imm != w.imm) {
			t.Errorf("instruction %d: %+v, want op %s imm %d", i, in, w.op.Name(), w.imm)
		}
	}
}

func TestWNInstructions(t *testing.T) {
	p := mustAssemble(t, `
		MUL_ASP8 R4, R5, #1
		MUL_ASP4 R4, R5, #3
		ADD_ASV8 R3, R4
		SUB_ASV16 R3, R4
	end:
		SKM end
		HALT
	`)
	asp := decodeAt(t, p, 0)
	if asp.Op != isa.OpMulASP8 || asp.Rd != isa.R4 || asp.Rm != isa.R5 || asp.Imm != 1 {
		t.Errorf("MUL_ASP8 decoded as %+v", asp)
	}
	asv := decodeAt(t, p, 2)
	if asv.Op != isa.OpAddASV8 || asv.Rd != isa.R3 || asv.Rm != isa.R4 {
		t.Errorf("ADD_ASV8 decoded as %+v", asv)
	}
	skm := decodeAt(t, p, 4)
	if skm.Op != isa.OpSkm || uint32(skm.Imm) != p.Labels["end"] {
		t.Errorf("SKM decoded as %+v (end at %#x)", skm, p.Labels["end"])
	}
}

func TestAmenableDirective(t *testing.T) {
	p := mustAssemble(t, `
		MOVI R0, #1
		.amenable
		MUL R1, R0, R0
		ADD R1, R1, R0
		.amenable
		MUL R1, R0, R0
	`)
	if len(p.Amenable) != 2 {
		t.Fatalf("amenable count = %d, want 2", len(p.Amenable))
	}
	want := []uint32{mem.CodeBase + 1*isa.InstBytes, mem.CodeBase + 3*isa.InstBytes}
	for i, a := range p.Amenable {
		if a != want[i] {
			t.Errorf("amenable[%d] = %#x, want %#x", i, a, want[i])
		}
	}
	set := p.AmenableSet()
	if !set[want[0]] || !set[want[1]] || len(set) != 2 {
		t.Errorf("AmenableSet wrong: %v", set)
	}
}

func TestBoundDirective(t *testing.T) {
	p := mustAssemble(t, `
		MOVI R0, #8
	loop:
		.bound 0x40
		SUBIS R0, R0, #1
		BNE loop
		HALT
	`)
	if len(p.Bounds) != 1 {
		t.Fatalf("bounds = %v, want one entry", p.Bounds)
	}
	addr := uint32(mem.CodeBase + 1*isa.InstBytes)
	if p.Bounds[addr] != 0x40 {
		t.Errorf("Bounds[%#x] = %d, want 64", addr, p.Bounds[addr])
	}
	for _, bad := range []string{".bound", ".bound 0", ".bound -3", ".bound lots"} {
		if _, err := Assemble(bad + "\n HALT"); err == nil {
			t.Errorf("%q: expected an error", bad)
		}
	}
}

func TestWordDirective(t *testing.T) {
	p := mustAssemble(t, `
		.word 0xDEADBEEF
		.word 123
	`)
	if len(p.Image) != 8 {
		t.Fatalf("image is %d bytes", len(p.Image))
	}
	w := uint32(p.Image[0]) | uint32(p.Image[1])<<8 | uint32(p.Image[2])<<16 | uint32(p.Image[3])<<24
	if w != 0xDEADBEEF {
		t.Errorf(".word emitted %#x", w)
	}
}

func TestLabelSharingLine(t *testing.T) {
	p := mustAssemble(t, `
	a: b: MOVI R0, #1
		B a
	`)
	if p.Labels["a"] != p.Labels["b"] {
		t.Error("labels on one line should share the address")
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"undefined label":  "B nowhere",
		"duplicate label":  "x:\nx:\n HALT",
		"bad mnemonic":     "FROB R0, R1",
		"bad register":     "MOV R99, R1",
		"bad operand":      "ADD R0, R1, $5",
		"bad directive":    ".bogus",
		"imm out of range": "ADDI R0, R1, #999999",
		"skm needs target": "SKM R0",
		"mul needs regs":   "MUL R0, R1, #2",
		"unterminated mem": "LDR R0, [R1",
		"halt takes none":  "HALT R0",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected an error for %q", name, src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error should be *asm.Error, got %T", name, err)
		}
	}
}

func TestErrorCarriesLineNumber(t *testing.T) {
	_, err := Assemble("MOVI R0, #1\nMOVI R1, #2\nFROB R2\n")
	ae, ok := err.(*Error)
	if !ok || ae.Line != 3 {
		t.Fatalf("error = %v, want line 3", err)
	}
	if !strings.Contains(ae.Error(), "line 3") {
		t.Errorf("message %q should mention the line", ae.Error())
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		MOVI R0, #4096
		MOVTI R0, #4096
		LDRH R1, [R0, #0]
		MUL_ASP4 R2, R1, #3
		ADD_ASV16 R2, R1
		STR R2, [R0, #4]
		SKM #28
		B #-28
		HALT
	`
	p := mustAssemble(t, src)
	text := Disassemble(p.Image)
	// Re-assembling the disassembly must produce the identical image.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	var re strings.Builder
	for _, l := range lines {
		parts := strings.SplitN(l, ":", 2)
		re.WriteString(parts[1] + "\n")
	}
	p2, err := Assemble(re.String())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, re.String())
	}
	if string(p2.Image) != string(p.Image) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", Disassemble(p.Image), Disassemble(p2.Image))
	}
}

func TestDisassembleIllegalWord(t *testing.T) {
	img := []byte{0, 0, 0, 0xFF} // opcode byte 0xFF
	out := Disassemble(img)
	if !strings.Contains(out, ".word") {
		t.Errorf("illegal word should disassemble as .word, got %q", out)
	}
}
