package asm_test

import (
	"os"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
)

// The testdata program is the paper's Listing 2 shape written by hand. The
// integration tests run it three ways: continuously to exact completion,
// truncated at the skim point for the approximate result, and under
// injected outages where the skim point must commit the early answer.

func loadDotprod(t *testing.T) *asm.Program {
	t.Helper()
	src, err := os.ReadFile("testdata/dotprod.s")
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func installDotprodInputs(t *testing.T, m *mem.Memory) (f, a [8]uint32, exact uint32) {
	t.Helper()
	for i := 0; i < 8; i++ {
		f[i] = uint32(100 + 13*i)
		a[i] = uint32(0x1234 + 0x1111*i)
		if err := m.StoreHalf(mem.DataBase+uint32(2*i), f[i]); err != nil {
			t.Fatal(err)
		}
		if err := m.StoreHalf(mem.DataBase+16+uint32(2*i), a[i]); err != nil {
			t.Fatal(err)
		}
		exact += f[i] * a[i]
	}
	return
}

func TestDotprodExactCompletion(t *testing.T) {
	p := loadDotprod(t)
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		t.Fatal(err)
	}
	_, a, exact := installDotprodInputs(t, m)
	_ = a
	c := cpu.New(m)
	for i := 0; !c.Halted; i++ {
		if i > 100000 {
			t.Fatal("runaway")
		}
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.LoadWord(mem.DataBase + 32)
	if err != nil {
		t.Fatal(err)
	}
	if got != exact {
		t.Fatalf("X = %d, want %d", got, exact)
	}
}

func TestDotprodApproxAtSkim(t *testing.T) {
	p := loadDotprod(t)
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		t.Fatal(err)
	}
	f, a, exact := installDotprodInputs(t, m)
	c := cpu.New(m)
	for !c.Halted && !c.SkimArmed {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.LoadWord(mem.DataBase + 32)
	if err != nil {
		t.Fatal(err)
	}
	var wantMS uint32
	for i := 0; i < 8; i++ {
		wantMS += f[i] * (a[i] >> 8 << 8)
	}
	if got != wantMS {
		t.Fatalf("approximate X = %d, want the MS-byte partial %d", got, wantMS)
	}
	if rel := float64(exact-got) / float64(exact); rel < 0 || rel > 0.01 {
		t.Fatalf("MS pass should be within 1%% of exact, off by %.3f%%", 100*rel)
	}
}

func TestDotprodSkimUnderOutages(t *testing.T) {
	p := loadDotprod(t)
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		t.Fatal(err)
	}
	_, _, exact := installDotprodInputs(t, m)
	c := cpu.New(m)
	s := energy.NewSupply(energy.DefaultDeviceConfig(), energy.ConstantTrace(5e-3, 1000, 100))
	r := intermittent.NewRunner(c, m, s, intermittent.NewClank(intermittent.DefaultClankConfig()))
	// Force an outage shortly after the skim point arms.
	armed := false
	extra := 0
	r.OnProgress = func(uint64) {
		if c.SkimArmed && !armed {
			armed = true
		}
		if armed {
			if extra++; extra == 5 {
				s.ForceOutage()
			}
		}
	}
	res, err := r.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	if !res.SkimTaken {
		t.Fatal("the forced outage after the skim point should have skimmed")
	}
	got, _ := m.LoadWord(mem.DataBase + 32)
	if got == 0 || got > exact {
		t.Fatalf("skimmed X = %d, want a positive under-approximation of %d", got, exact)
	}
}
