; Hand-written anytime dot product (the paper's Listing 2 shape):
; X = sum(F[i] * A[i]) over 8 elements of 16-bit data at the data base,
; computed most-significant-byte first with MUL_ASP8 and a skim point
; between the passes.
;
; Memory layout (installed by the test):
;   0x10000000  F[8]   16-bit coefficients
;   0x10000010  A[8]   16-bit approximable input
;   0x10000020  X      32-bit accumulator (output)

	MOVI R0, #0
	MOVTI R0, #4096     ; R0 = 0x10000000 = &F[0]
	MOVI R1, #16
	ADD R1, R0, R1      ; R1 = &A[0]
	MOVI R2, #32
	ADD R2, R0, R2      ; R2 = &X

	; ---- most significant pass ----
	MOVI R4, #8         ; counter
	MOVI R5, #0         ; acc
loop_msb:
	LDRH R6, [R0, #0]   ; F[i]
	LDRB R7, [R1, #1]   ; A[i][MSb]
	.amenable
	MUL_ASP8 R6, R7, #1
	ADD R5, R5, R6
	ADDI R0, R0, #2
	ADDI R1, R1, #2
	SUBIS R4, R4, #1
	BNE loop_msb
	STR R5, [R2, #0]    ; commit the approximate result
	SKM end             ; an acceptable output now exists

	; ---- least significant pass ----
	MOVI R4, #8
	SUBI R0, R0, #16    ; rewind pointers
	SUBI R1, R1, #16
loop_lsb:
	LDRH R6, [R0, #0]
	LDRB R7, [R1, #0]   ; A[i][LSb]
	.amenable
	MUL_ASP8 R6, R7, #0
	ADD R5, R5, R6
	ADDI R0, R0, #2
	ADDI R1, R1, #2
	SUBIS R4, R4, #1
	BNE loop_lsb
	STR R5, [R2, #0]    ; now exact

end:
	HALT
