package asm

import (
	"fmt"
	"strings"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// Disassemble renders a program image back into assembler text, one
// instruction per line with its address. Words that do not decode are shown
// as .word directives.
func Disassemble(image []byte) string {
	var b strings.Builder
	for off := 0; off+isa.InstBytes <= len(image); off += isa.InstBytes {
		addr := mem.CodeBase + uint32(off)
		w := uint32(image[off]) | uint32(image[off+1])<<8 | uint32(image[off+2])<<16 | uint32(image[off+3])<<24
		in, err := isa.Decode(isa.Word(w))
		if err != nil {
			fmt.Fprintf(&b, "%08x:  .word %#08x\n", addr, w)
			continue
		}
		fmt.Fprintf(&b, "%08x:  %s\n", addr, in)
	}
	return b.String()
}
