package asm

import (
	"errors"
	"strings"
	"testing"
)

// Every emitted word — instructions and raw .word data alike — carries the
// 1-based source line it came from.
func TestLineTable(t *testing.T) {
	src := `; leading comment

	MOVI R0, #1          ; line 3
loop:                        ; line 4, label only
	ADDI R0, R0, #1      ; line 5
.word 0xDEADBEEF             ; line 6
	.amenable
	MUL_ASP8 R0, R1, #0  ; line 8
	HALT                 ; line 9
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 5, 6, 8, 9}
	if len(p.Lines) != len(want) || len(p.Source) != len(want) {
		t.Fatalf("lines = %v, source = %d entries, want %d", p.Lines, len(p.Source), len(want))
	}
	for i, ln := range want {
		if p.Lines[i] != ln {
			t.Errorf("word %d: line %d, want %d", i, p.Lines[i], ln)
		}
	}
}

// Assembly diagnostics name the file and line when the source came in via
// AssembleNamed, covering every error path: lexing, operand parsing, label
// resolution, and encoding.
func TestAssembleNamedErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
	}{
		{"unknown mnemonic", "\tFROB R0, R1\n", 1},
		{"bad operand", "\tMOVI R0, !!\n", 1},
		{"undefined label", "\tMOVI R0, #1\n\tB nowhere\n", 2},
		{"bad word directive", ".word zzz\n", 1},
		{"encode range", "\tMOVI R0, #1\n\tMOVI R0, #100000\n", 2},
		{"duplicate label", "a:\n\tHALT\na:\n\tHALT\n", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := AssembleNamed("prog.s", tc.src)
			if err == nil {
				t.Fatal("want error")
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("error %v is not an *asm.Error", err)
			}
			if ae.File != "prog.s" {
				t.Errorf("file = %q, want prog.s", ae.File)
			}
			if ae.Line != tc.line {
				t.Errorf("line = %d, want %d (%v)", ae.Line, tc.line, err)
			}
			if !strings.Contains(err.Error(), "prog.s:") {
				t.Errorf("message %q does not name the file", err.Error())
			}
		})
	}
}

func TestAssembleNamedRecordsFile(t *testing.T) {
	p, err := AssembleNamed("x.s", "\tHALT\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.File != "x.s" {
		t.Errorf("file = %q, want x.s", p.File)
	}
}
