// Package asm implements a two-pass assembler and a disassembler for the WN
// instruction set.
//
// Syntax, one instruction or directive per line:
//
//	; comment            @ comment also works
//	label:               (may share a line with an instruction)
//	    MOVI R0, #4096
//	    LDR  R1, [R0, #0]
//	    LDR  R2, [R0, R1]       ; register offset selects the X form
//	    ADD  R1, R1, #1         ; immediate operand selects the I form
//	    MUL_ASP8 R4, R5, #1     ; anytime multiply, subword position 1
//	    ADD_ASV8 R3, R4         ; anytime vector add, 8-bit lanes
//	    SKM  done               ; arm skim register with label address
//	    BNE  loop
//	    HALT
//	.amenable                   ; mark the next instruction WN-amenable
//	.bound 64                   ; assert the loop containing the next
//	                            ; instruction iterates at most 64 times
//	.word 0xDEADBEEF            ; raw data word in code memory
//
// Labels in branch positions assemble to PC-relative offsets; the SKM
// operand assembles to an absolute code address.
//
// .bound is an assumption consumed by the wncheck forward-progress
// analysis: when a loop's trip count cannot be inferred statically, the
// directive supplies the worst case and the verification certificate
// records it as an assumption. The bound attaches to the innermost loop
// containing the annotated instruction.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// Program is an assembled program image.
type Program struct {
	Image    []byte            // encoded instructions, loadable at mem.CodeBase
	Labels   map[string]uint32 // label name -> absolute byte address
	Amenable []uint32          // absolute addresses of WN-amenable instructions
	Bounds   map[uint32]uint64 // .bound trip-count assertions by instruction address
	Source   []string          // one source line per instruction word (for diagnostics)
	Lines    []int             // 1-based source line per instruction word (for diagnostics)
	File     string            // source file name, when assembled via AssembleNamed
}

// AmenableSet returns the amenable addresses as a lookup set for the CPU.
func (p *Program) AmenableSet() map[uint32]bool {
	s := make(map[uint32]bool, len(p.Amenable))
	for _, a := range p.Amenable {
		s[a] = true
	}
	return s
}

// Error is an assembly diagnostic with a line number and, when the source
// came in through AssembleNamed, the file it was read from.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("asm: %s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type item struct {
	line     int
	text     string
	amenable bool
	bound    uint64 // .bound trip assertion; 0 = none
	rawWord  uint32
	isRaw    bool
}

// AssembleNamed assembles source text read from the named file. The name is
// recorded on the Program and attached to every diagnostic, so errors render
// as "asm: file.s:12: ...".
func AssembleNamed(file, src string) (*Program, error) {
	p, err := Assemble(src)
	if err != nil {
		var ae *Error
		if errors.As(err, &ae) {
			ae.File = file
		}
		return nil, err
	}
	p.File = file
	return p, nil
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) {
	lines := strings.Split(src, "\n")
	labels := make(map[string]uint32)
	var items []item

	// Pass 1: strip comments, collect labels, list instruction items.
	pendingAmenable := false
	pendingBound := uint64(0)
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";@"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isIdent(name) {
				return nil, errf(ln+1, "invalid label %q", name)
			}
			if _, dup := labels[name]; dup {
				return nil, errf(ln+1, "duplicate label %q", name)
			}
			labels[name] = mem.CodeBase + uint32(len(items))*isa.InstBytes
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".amenable"):
			pendingAmenable = true
		case strings.HasPrefix(line, ".bound"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ".bound"))
			v, err := strconv.ParseUint(arg, 0, 64)
			if err != nil || v == 0 {
				return nil, errf(ln+1, "bad .bound operand %q: want a positive trip count", arg)
			}
			pendingBound = v
		case strings.HasPrefix(line, ".word"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ".word"))
			v, err := parseUint32(arg)
			if err != nil {
				return nil, errf(ln+1, "bad .word operand %q: %v", arg, err)
			}
			items = append(items, item{line: ln + 1, isRaw: true, rawWord: v})
		case strings.HasPrefix(line, "."):
			return nil, errf(ln+1, "unknown directive %q", line)
		default:
			items = append(items, item{line: ln + 1, text: line, amenable: pendingAmenable, bound: pendingBound})
			pendingAmenable = false
			pendingBound = 0
		}
	}

	// Pass 2: encode.
	p := &Program{Labels: labels}
	for idx, it := range items {
		addr := mem.CodeBase + uint32(idx)*isa.InstBytes
		if it.isRaw {
			p.Image = appendWord(p.Image, it.rawWord)
			p.Source = append(p.Source, fmt.Sprintf(".word %#x", it.rawWord))
			p.Lines = append(p.Lines, it.line)
			continue
		}
		in, err := parseInstruction(it.text, it.line, addr, labels)
		if err != nil {
			return nil, err
		}
		w, err := isa.Encode(in)
		if err != nil {
			return nil, errf(it.line, "%v", err)
		}
		if it.amenable {
			p.Amenable = append(p.Amenable, addr)
		}
		if it.bound != 0 {
			if p.Bounds == nil {
				p.Bounds = make(map[uint32]uint64)
			}
			p.Bounds[addr] = it.bound
		}
		p.Image = appendWord(p.Image, uint32(w))
		p.Source = append(p.Source, it.text)
		p.Lines = append(p.Lines, it.line)
	}
	return p, nil
}

func appendWord(b []byte, w uint32) []byte {
	return append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == '.' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func parseUint32(s string) (uint32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		u, uerr := strconv.ParseUint(s, 0, 32)
		if uerr != nil {
			return 0, err
		}
		return uint32(u), nil
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("value %d out of 32-bit range", v)
	}
	return uint32(v), nil
}

var mnemonics = buildMnemonicTable()

func buildMnemonicTable() map[string]isa.Opcode {
	m := make(map[string]isa.Opcode, isa.NumOpcodes)
	for op := 0; op < isa.NumOpcodes; op++ {
		m[isa.Opcode(op).Name()] = isa.Opcode(op)
	}
	return m
}

// promoteImm maps a register-form opcode to its immediate form.
var promoteImm = map[isa.Opcode]isa.Opcode{
	isa.OpMov: isa.OpMovI,
	isa.OpAdd: isa.OpAddI,
	isa.OpSub: isa.OpSubI,
	isa.OpAnd: isa.OpAndI,
	isa.OpOrr: isa.OpOrrI,
	isa.OpEor: isa.OpEorI,
	isa.OpLsl: isa.OpLslI,
	isa.OpLsr: isa.OpLsrI,
	isa.OpAsr: isa.OpAsrI,
	isa.OpCmp: isa.OpCmpI,
}

// promoteRegOffset maps an immediate-offset memory opcode to its
// register-offset form.
var promoteRegOffset = map[isa.Opcode]isa.Opcode{
	isa.OpLdr:  isa.OpLdrX,
	isa.OpLdrh: isa.OpLdrhX,
	isa.OpLdrb: isa.OpLdrbX,
	isa.OpStr:  isa.OpStrX,
	isa.OpStrh: isa.OpStrhX,
	isa.OpStrb: isa.OpStrbX,
}

type operand struct {
	isReg   bool
	reg     isa.Reg
	isImm   bool
	imm     int64
	isLabel bool
	label   string
	isMem   bool
	base    isa.Reg
	memReg  isa.Reg // register offset, valid when memHasReg
	memOff  int64
	hasReg  bool // memory operand uses register offset
}

func parseReg(s string) (isa.Reg, bool) {
	switch strings.ToUpper(s) {
	case "SP":
		return isa.SP, true
	case "LR":
		return isa.LR, true
	case "PC":
		return isa.PC, true
	}
	up := strings.ToUpper(s)
	if len(up) >= 2 && up[0] == 'R' {
		if n, err := strconv.Atoi(up[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), true
		}
	}
	return 0, false
}

func parseOperand(s string, line int) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, errf(line, "empty operand")
	}
	if r, ok := parseReg(s); ok {
		return operand{isReg: true, reg: r}, nil
	}
	if strings.HasPrefix(s, "#") {
		body := s[1:]
		if v, err := strconv.ParseInt(body, 0, 64); err == nil {
			return operand{isImm: true, imm: v}, nil
		}
		if isIdent(body) {
			return operand{isLabel: true, label: body}, nil
		}
		return operand{}, errf(line, "bad immediate %q", s)
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return operand{}, errf(line, "unterminated memory operand %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		parts := splitOperands(inner)
		if len(parts) < 1 || len(parts) > 2 {
			return operand{}, errf(line, "bad memory operand %q", s)
		}
		base, ok := parseReg(parts[0])
		if !ok {
			return operand{}, errf(line, "bad base register %q", parts[0])
		}
		op := operand{isMem: true, base: base}
		if len(parts) == 2 {
			arg := strings.TrimSpace(parts[1])
			if r, ok := parseReg(arg); ok {
				op.hasReg = true
				op.memReg = r
			} else if strings.HasPrefix(arg, "#") {
				v, err := strconv.ParseInt(arg[1:], 0, 64)
				if err != nil {
					return operand{}, errf(line, "bad memory offset %q", arg)
				}
				op.memOff = v
			} else {
				return operand{}, errf(line, "bad memory offset %q", arg)
			}
		}
		return op, nil
	}
	if isIdent(s) {
		return operand{isLabel: true, label: s}, nil
	}
	return operand{}, errf(line, "unrecognized operand %q", s)
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	var parts []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		parts = append(parts, rest)
	}
	return parts
}

func parseInstruction(text string, line int, addr uint32, labels map[string]uint32) (isa.Instruction, error) {
	fields := strings.SplitN(text, " ", 2)
	mn := strings.ToUpper(strings.TrimSpace(fields[0]))
	op, ok := mnemonics[mn]
	if !ok {
		return isa.Instruction{}, errf(line, "unknown mnemonic %q", mn)
	}
	var ops []operand
	if len(fields) == 2 {
		for _, part := range splitOperands(fields[1]) {
			o, err := parseOperand(part, line)
			if err != nil {
				return isa.Instruction{}, err
			}
			ops = append(ops, o)
		}
	}
	resolve := func(o operand) (uint32, error) {
		a, ok := labels[o.label]
		if !ok {
			return 0, errf(line, "undefined label %q", o.label)
		}
		return a, nil
	}

	in := isa.Instruction{Op: op}
	switch {
	case op == isa.OpNop || op == isa.OpHalt:
		if len(ops) != 0 {
			return in, errf(line, "%s takes no operands", mn)
		}
		return in, nil

	case op == isa.OpSkm:
		if len(ops) != 1 {
			return in, errf(line, "SKM takes one target operand")
		}
		switch {
		case ops[0].isLabel:
			a, err := resolve(ops[0])
			if err != nil {
				return in, err
			}
			in.Imm = int32(a)
		case ops[0].isImm:
			in.Imm = int32(ops[0].imm)
		default:
			return in, errf(line, "SKM target must be a label or immediate")
		}
		return in, nil

	case op == isa.OpBx:
		if len(ops) != 1 || !ops[0].isReg {
			return in, errf(line, "BX takes one register operand")
		}
		in.Rm = ops[0].reg
		return in, nil

	case op.IsBranch(): // B, BL, conditionals
		if len(ops) != 1 {
			return in, errf(line, "%s takes one target operand", mn)
		}
		switch {
		case ops[0].isLabel:
			a, err := resolve(ops[0])
			if err != nil {
				return in, err
			}
			in.Imm = int32(a) - int32(addr)
		case ops[0].isImm:
			in.Imm = int32(ops[0].imm)
		default:
			return in, errf(line, "%s target must be a label or immediate", mn)
		}
		return in, nil

	case op == isa.OpMovTI:
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isImm {
			return in, errf(line, "MOVTI takes Rd, #imm")
		}
		in.Rd = ops[0].reg
		in.Imm = int32(ops[1].imm)
		return in, nil

	case op == isa.OpMov || op == isa.OpMovI:
		if len(ops) != 2 || !ops[0].isReg {
			return in, errf(line, "%s takes Rd and a source", mn)
		}
		in.Rd = ops[0].reg
		if ops[1].isImm {
			in.Op = isa.OpMovI
			in.Imm = int32(ops[1].imm)
		} else if ops[1].isReg {
			in.Op = isa.OpMov
			in.Rm = ops[1].reg
		} else {
			return in, errf(line, "%s source must be a register or immediate", mn)
		}
		return in, nil

	case op == isa.OpCmp || op == isa.OpCmpI:
		if len(ops) != 2 || !ops[0].isReg {
			return in, errf(line, "CMP takes Rn and a source")
		}
		in.Rn = ops[0].reg
		if ops[1].isImm {
			in.Op = isa.OpCmpI
			in.Imm = int32(ops[1].imm)
		} else if ops[1].isReg {
			in.Op = isa.OpCmp
			in.Rm = ops[1].reg
		} else {
			return in, errf(line, "CMP source must be a register or immediate")
		}
		return in, nil

	case op.ASPBits() != 0:
		if len(ops) != 3 || !ops[0].isReg || !ops[1].isReg || !ops[2].isImm {
			return in, errf(line, "%s takes Rd, Rm, #pos", mn)
		}
		in.Rd = ops[0].reg
		in.Rm = ops[1].reg
		in.Imm = int32(ops[2].imm)
		return in, nil

	case op.ASVLane() != 0:
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isReg {
			return in, errf(line, "%s takes Rd, Rm", mn)
		}
		in.Rd = ops[0].reg
		in.Rm = ops[1].reg
		return in, nil

	case op == isa.OpMul:
		if len(ops) != 3 || !ops[0].isReg || !ops[1].isReg || !ops[2].isReg {
			return in, errf(line, "MUL takes Rd, Rn, Rm")
		}
		in.Rd, in.Rn, in.Rm = ops[0].reg, ops[1].reg, ops[2].reg
		return in, nil

	case op.IsLoad() || op.IsStore():
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isMem {
			return in, errf(line, "%s takes Rd, [Rn, off]", mn)
		}
		in.Rd = ops[0].reg
		in.Rn = ops[1].base
		if ops[1].hasReg {
			x, ok := promoteRegOffset[op]
			if !ok {
				x = op // already an X form? X forms share parse path
				if !op.HasRm() {
					return in, errf(line, "%s does not take a register offset", mn)
				}
			}
			in.Op = x
			in.Rm = ops[1].memReg
		} else {
			if op.HasRm() {
				return in, errf(line, "%s requires a register offset", mn)
			}
			in.Imm = int32(ops[1].memOff)
		}
		return in, nil

	default: // three-operand ALU, register or immediate form
		if len(ops) != 3 || !ops[0].isReg || !ops[1].isReg {
			return in, errf(line, "%s takes Rd, Rn, src", mn)
		}
		in.Rd = ops[0].reg
		in.Rn = ops[1].reg
		if ops[2].isReg {
			if op.HasRm() {
				in.Rm = ops[2].reg
				return in, nil
			}
			return in, errf(line, "%s takes an immediate source", mn)
		}
		if ops[2].isImm {
			if op.HasRm() {
				p, ok := promoteImm[op]
				if !ok {
					return in, errf(line, "%s has no immediate form", mn)
				}
				in.Op = p
			}
			in.Imm = int32(ops[2].imm)
			return in, nil
		}
		return in, errf(line, "%s source must be a register or immediate", mn)
	}
}
