// Package workloads defines the six Table I benchmarks of the paper as
// compiler IR kernels — Conv2d, MatMul and Var (subword pipelining) and
// MatAdd, Home and NetMotion (subword vectorization) — together with
// deterministic input generators and native golden models used for quality
// scoring.
package workloads

import (
	"fmt"
	"math/rand"

	"whatsnext/internal/compiler"
)

// Params sizes a benchmark. Zero values select the paper-scale defaults via
// the benchmark's own DefaultParams.
type Params struct {
	// Conv2d.
	ImgW, ImgH, K int
	// MatMul / MatAdd.
	N int
	// Home / Var: number of windows and window size (power of two).
	Windows, WindowSize int
	// NetMotion: number of movement samples.
	Steps int
}

// Benchmark describes one Table I kernel.
type Benchmark struct {
	Name string
	Area string
	// Mode is the WN technique the paper applies (Table I's SWP/SWV column).
	Mode compiler.Mode
	// Output is the primary output array scored for quality.
	Output string
	// DefaultParams returns the paper-scale sizes; ScaledParams returns a
	// reduced size for the heavy intermittent sweeps.
	DefaultParams func() Params
	ScaledParams  func() Params
	// Build constructs the kernel IR with pragmas at the given subword
	// size; provisioned applies to SWV benchmarks.
	Build func(p Params, subwordBits int, provisioned bool) *compiler.Kernel
	// Inputs generates deterministic inputs for a seed.
	Inputs func(p Params, seed int64) map[string][]int64
	// Golden computes the exact display-domain output natively.
	Golden func(p Params, in map[string][]int64) []float64
}

// All returns the six benchmarks in Table I order.
func All() []*Benchmark {
	return []*Benchmark{
		Conv2d(), MatMul(), MatAdd(), Home(), Var(), NetMotion(),
	}
}

// extensions holds benchmark families registered from other packages (the
// NN inference family in internal/nn registers itself here from init, so
// every resolver that looks benchmarks up by name can serve them without
// an import cycle).
var extensions []*Benchmark

// RegisterExtension adds externally defined benchmarks to the ByName
// registry. Call from init only; registration order must be deterministic.
func RegisterExtension(bs ...*Benchmark) { extensions = append(extensions, bs...) }

// Extensions returns the registered extension benchmarks.
func Extensions() []*Benchmark { return append([]*Benchmark(nil), extensions...) }

// ByName finds a benchmark by its Table I name, one of the extension
// workloads ("Mask"), or a registered extension family.
func ByName(name string) (*Benchmark, error) {
	for _, b := range append(append(All(), MaskExtension()), extensions...) {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// gaussianKernel returns an integer binomial approximation of a KxK
// Gaussian filter and the log2 of its coefficient sum.
func gaussianKernel(k int) (coef []int64, logSum int) {
	row := make([]int64, k)
	row[0] = 1
	for i := 1; i < k; i++ {
		prev := append([]int64(nil), row[:i]...)
		row[i] = 1
		for j := i - 1; j > 0; j-- {
			row[j] = prev[j] + prev[j-1]
		}
	}
	var rowSum int64
	for _, v := range row {
		rowSum += v
	}
	logSum = 0
	for s := int64(1); s < rowSum*rowSum; s <<= 1 {
		logSum++
	}
	coef = make([]int64, k*k)
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			coef[y*k+x] = row[y] * row[x]
		}
	}
	return coef, logSum
}

// Conv2d: a KxK Gaussian filter over a grayscale image held in 8.8
// fixed point (Table I: 9x9 over 128x128). The image is the #pragma asp
// input; products accumulate raw into 32-bit outputs whose display shift
// removes the coefficient sum and fixed-point scale.
func Conv2d() *Benchmark {
	return &Benchmark{
		Name:          "Conv2d",
		Area:          "Image Processing",
		Mode:          compiler.ModeSWP,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{ImgW: 128, ImgH: 128, K: 9} },
		ScaledParams:  func() Params { return Params{ImgW: 32, ImgH: 32, K: 5} },
		Build: func(p Params, bits int, _ bool) *compiler.Kernel {
			w, h, k := p.ImgW, p.ImgH, p.K
			pw := w + k - 1
			ph := h + k - 1
			_, logSum := gaussianKernel(k)
			return &compiler.Kernel{
				Name: "conv2d",
				Arrays: []compiler.Array{
					{Name: "IMG", ElemBits: 16, Len: pw * ph, Pragma: compiler.PragmaASP, SubwordBits: bits},
					{Name: "COEF", ElemBits: 16, Len: k * k},
					{Name: "OUT", ElemBits: 32, Len: w * h, Output: true, PostShift: logSum + 8},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "y", N: int64(h), Body: []compiler.Stmt{
						compiler.Loop{Var: "x", N: int64(w), Body: []compiler.Stmt{
							compiler.Assign{
								Array: "OUT",
								Index: compiler.LinSum(compiler.LinVar("y", int64(w), 0), compiler.LinVar("x", 1, 0)),
								Value: compiler.Reduce{Var: "ky", N: int64(k), Body: compiler.Reduce{
									Var: "kx", N: int64(k),
									Body: compiler.Bin{Op: compiler.OpMul,
										A: compiler.Load{Array: "COEF", Index: compiler.LinSum(compiler.LinVar("ky", int64(k), 0), compiler.LinVar("kx", 1, 0))},
										B: compiler.Load{Array: "IMG", Index: compiler.LinSum(
											compiler.LinVar("y", int64(pw), 0), compiler.LinVar("ky", int64(pw), 0),
											compiler.LinVar("x", 1, 0), compiler.LinVar("kx", 1, 0))},
									},
								}},
							},
						}},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			w, h, k := p.ImgW, p.ImgH, p.K
			pw, ph := w+k-1, h+k-1
			coef, _ := gaussianKernel(k)
			img := SyntheticImage(pw, ph, seed)
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			fixed := make([]int64, len(img))
			for i, v := range img {
				// 8.8 fixed point with quarter-LSB sensor precision in the
				// fraction, as a float-to-fixed conversion would produce.
				// Zero pixels stay exactly zero for zero skipping.
				if v != 0 {
					fixed[i] = v<<8 + int64(rng.Intn(4))<<6
				}
			}
			return map[string][]int64{"IMG": fixed, "COEF": coef}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			w, h, k := p.ImgW, p.ImgH, p.K
			pw := w + k - 1
			_, logSum := gaussianKernel(k)
			img, coef := in["IMG"], in["COEF"]
			out := make([]float64, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					var acc uint32
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							acc += uint32(coef[ky*k+kx]) * uint32(img[(y+ky)*pw+(x+kx)])
						}
					}
					out[y*w+x] = float64(acc >> uint(logSum+8))
				}
			}
			return out
		},
	}
}

// SyntheticImage renders a deterministic grayscale test scene (gradients,
// discs and noise) in [0,255]; it substitutes for the paper's test image.
func SyntheticImage(w, h int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	img := make([]int64, w*h)
	type disc struct{ cx, cy, r, v int }
	discs := make([]disc, 6)
	for i := range discs {
		discs[i] = disc{
			cx: rng.Intn(w), cy: rng.Intn(h),
			r: 2 + rng.Intn(max(2, w/4)), v: 40 + rng.Intn(215),
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Quantized background gradient with a dark (zero) corner, as a
			// camera scene with shadow would have; flat regions and zeros
			// feed the memoization and zero-skipping units.
			v := (x*255)/max(1, w-1)/2 + (y*255)/max(1, h-1)/4
			v = v &^ 0xF
			if x < w/4 && y < h/4 {
				v = 0
			}
			for _, d := range discs {
				dx, dy := x-d.cx, y-d.cy
				if dx*dx+dy*dy <= d.r*d.r {
					v = d.v
				}
			}
			if rng.Intn(100) < 15 {
				v += rng.Intn(17) - 8
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = int64(v)
		}
	}
	return img
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MatMul: OUT = A x B over NxN matrices (Table I: 64x64, 16-bit fixed
// point). A is the #pragma asp input and carries full 16-bit magnitudes; B
// holds 8-bit magnitudes so 64-term dot products fit 32-bit accumulators.
func MatMul() *Benchmark {
	return &Benchmark{
		Name:          "MatMul",
		Area:          "Data processing",
		Mode:          compiler.ModeSWP,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{N: 64} },
		ScaledParams:  func() Params { return Params{N: 32} },
		Build: func(p Params, bits int, _ bool) *compiler.Kernel {
			n := int64(p.N)
			return &compiler.Kernel{
				Name: "matmul",
				Arrays: []compiler.Array{
					{Name: "A", ElemBits: 16, Len: p.N * p.N, Pragma: compiler.PragmaASP, SubwordBits: bits},
					{Name: "B", ElemBits: 16, Len: p.N * p.N},
					{Name: "OUT", ElemBits: 32, Len: p.N * p.N, Output: true},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "i", N: n, Body: []compiler.Stmt{
						compiler.Loop{Var: "j", N: n, Body: []compiler.Stmt{
							compiler.Assign{
								Array: "OUT",
								Index: compiler.LinSum(compiler.LinVar("i", n, 0), compiler.LinVar("j", 1, 0)),
								Value: compiler.Reduce{Var: "k", N: n, Body: compiler.Bin{
									Op: compiler.OpMul,
									A:  compiler.Load{Array: "B", Index: compiler.LinSum(compiler.LinVar("k", n, 0), compiler.LinVar("j", 1, 0))},
									B:  compiler.Load{Array: "A", Index: compiler.LinSum(compiler.LinVar("i", n, 0), compiler.LinVar("k", 1, 0))},
								}},
							},
						}},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			rng := rand.New(rand.NewSource(seed))
			a := make([]int64, p.N*p.N)
			b := make([]int64, p.N*p.N)
			for i := range a {
				a[i] = int64(rng.Intn(1 << 16))
				b[i] = int64(rng.Intn(256))
			}
			return map[string][]int64{"A": a, "B": b}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			n := p.N
			a, b := in["A"], in["B"]
			out := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var acc uint32
					for k := 0; k < n; k++ {
						acc += uint32(a[i*n+k]) * uint32(b[k*n+j])
					}
					out[i*n+j] = float64(acc)
				}
			}
			return out
		},
	}
}

// MatAdd: OUT = A + B over NxN matrices of 32-bit values (Table I), the
// paper's element-wise subword-vectorization benchmark (Figure 14's
// provisioned-vs-unprovisioned study also runs on it).
func MatAdd() *Benchmark {
	return &Benchmark{
		Name:          "MatAdd",
		Area:          "Data processing",
		Mode:          compiler.ModeSWV,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{N: 64} },
		ScaledParams:  func() Params { return Params{N: 128} },
		Build: func(p Params, bits int, provisioned bool) *compiler.Kernel {
			total := int64(p.N * p.N)
			arr := func(name string, output bool) compiler.Array {
				return compiler.Array{
					Name: name, ElemBits: 32, Len: p.N * p.N, Output: output, ValueBits: 31,
					Pragma: compiler.PragmaASV, SubwordBits: bits, Provisioned: provisioned,
				}
			}
			return &compiler.Kernel{
				Name:   "matadd",
				Arrays: []compiler.Array{arr("A", false), arr("B", false), arr("OUT", true)},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "i", N: total, Body: []compiler.Stmt{
						compiler.Assign{
							Array: "OUT", Index: compiler.LinVar("i", 1, 0),
							Value: compiler.Bin{Op: compiler.OpAdd,
								A: compiler.Load{Array: "A", Index: compiler.LinVar("i", 1, 0)},
								B: compiler.Load{Array: "B", Index: compiler.LinVar("i", 1, 0)},
							},
						},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			rng := rand.New(rand.NewSource(seed))
			a := make([]int64, p.N*p.N)
			b := make([]int64, p.N*p.N)
			for i := range a {
				a[i] = int64(rng.Intn(1 << 30))
				b[i] = int64(rng.Intn(1 << 30))
			}
			return map[string][]int64{"A": a, "B": b}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			a, b := in["A"], in["B"]
			out := make([]float64, len(a))
			for i := range a {
				out[i] = float64(uint32(a[i]) + uint32(b[i]))
			}
			return out
		},
	}
}

// Home: periodic averaging of environmental sensor windows (Table I's home
// monitoring benchmark): OUT[w] = mean of 32-bit readings in window w,
// vectorized over the readings.
func Home() *Benchmark {
	return &Benchmark{
		Name:          "Home",
		Area:          "Environmental Sensing",
		Mode:          compiler.ModeSWV,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{Windows: 16, WindowSize: 64} },
		ScaledParams:  func() Params { return Params{Windows: 512, WindowSize: 64} },
		Build: func(p Params, bits int, provisioned bool) *compiler.Kernel {
			ws := int64(p.WindowSize)
			logWS := log2(p.WindowSize)
			return &compiler.Kernel{
				Name: "home",
				Arrays: []compiler.Array{
					{Name: "S", ElemBits: 32, Len: p.Windows * p.WindowSize, ValueBits: 24,
						Pragma: compiler.PragmaASV, SubwordBits: bits, Provisioned: provisioned},
					{Name: "OUT", ElemBits: 32, Len: p.Windows, Output: true},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "w", N: int64(p.Windows), Body: []compiler.Stmt{
						compiler.Assign{
							Array: "OUT", Index: compiler.LinVar("w", 1, 0),
							Value: compiler.Bin{Op: compiler.OpShr,
								A: compiler.Reduce{Var: "i", N: ws,
									Body: compiler.Load{Array: "S", Index: compiler.LinSum(compiler.LinVar("w", ws, 0), compiler.LinVar("i", 1, 0))}},
								B: compiler.Const{V: int64(logWS)},
							},
						},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			rng := rand.New(rand.NewSource(seed))
			s := make([]int64, p.Windows*p.WindowSize)
			base := int64(1<<22) + int64(rng.Intn(1<<22))
			for i := range s {
				// Slowly drifting conditions with sensor noise.
				base += int64(rng.Intn(2049)) - 1024
				if base < 0 {
					base = 0
				}
				if base >= 1<<24 {
					base = 1<<24 - 1
				}
				s[i] = base
			}
			return map[string][]int64{"S": s}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			s := in["S"]
			out := make([]float64, p.Windows)
			for w := 0; w < p.Windows; w++ {
				var acc uint32
				for i := 0; i < p.WindowSize; i++ {
					acc += uint32(s[w*p.WindowSize+i])
				}
				out[w] = float64(acc >> uint(log2(p.WindowSize)))
			}
			return out
		},
	}
}

// Var: data-logging variance of sensor windows (Table I). The sensor data
// is AC-coupled (zero baseline), so the variance is the second moment of
// the readings: OUT[w] = (sum of x^2) / WS over 12-bit deviation magnitudes
// in 16-bit storage. The squaring multiplies are the subword-pipelining
// target. (The mean-subtracted form E[x^2]-E[x]^2 is catastrophically
// ill-conditioned under one-sided subword approximation — the dropped-bits
// cross term m*E[r] dwarfs the variance — so the data-logging frontend is
// modeled as baseline-removed, which also matches the paper's always-
// positive, stepwise-improving Var curves.)
func Var() *Benchmark {
	return &Benchmark{
		Name:          "Var",
		Area:          "Environmental Sensing",
		Mode:          compiler.ModeSWP,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{Windows: 16, WindowSize: 64} },
		ScaledParams:  func() Params { return Params{Windows: 128, WindowSize: 64} },
		Build: func(p Params, bits int, _ bool) *compiler.Kernel {
			ws := int64(p.WindowSize)
			logWS := int64(log2(p.WindowSize))
			widx := compiler.LinVar("w", 1, 0)
			sidx := compiler.LinSum(compiler.LinVar("w", ws, 0), compiler.LinVar("i", 1, 0))
			return &compiler.Kernel{
				Name: "var",
				Arrays: []compiler.Array{
					{Name: "S", ElemBits: 16, Len: p.Windows * p.WindowSize, ValueBits: 12, Pragma: compiler.PragmaASP, SubwordBits: bits},
					{Name: "SQ", ElemBits: 32, Len: p.Windows},
					{Name: "OUT", ElemBits: 32, Len: p.Windows, Output: true},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "w", N: int64(p.Windows), Body: []compiler.Stmt{
						compiler.Assign{Array: "SQ", Index: widx,
							Value: compiler.Reduce{Var: "i", N: ws, Body: compiler.Bin{Op: compiler.OpMul,
								A: compiler.Load{Array: "S", Index: sidx},
								B: compiler.Load{Array: "S", Index: sidx}}}},
						compiler.Assign{Array: "OUT", Index: widx,
							Value: compiler.Bin{Op: compiler.OpShr, A: compiler.Load{Array: "SQ", Index: widx}, B: compiler.Const{V: logWS}}},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			return map[string][]int64{"S": SensorWindows(p.Windows, p.WindowSize, seed)}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			s := in["S"]
			logWS := uint(log2(p.WindowSize))
			out := make([]float64, p.Windows)
			for w := 0; w < p.Windows; w++ {
				var sq uint32
				for i := 0; i < p.WindowSize; i++ {
					x := uint32(s[w*p.WindowSize+i])
					sq += x * x
				}
				out[w] = float64(sq >> logWS)
			}
			return out
		},
	}
}

// SensorWindows generates deterministic 12-bit ADC readings with varying
// per-window spread, for the Var benchmark and the Figure 17 study.
func SensorWindows(windows, windowSize int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]int64, windows*windowSize)
	for w := 0; w < windows; w++ {
		mean := 512 + rng.Intn(2048)
		spread := 16 + rng.Intn(512)
		for i := 0; i < windowSize; i++ {
			v := mean + rng.Intn(2*spread+1) - spread
			if v < 0 {
				v = 0
			}
			if v > 4095 {
				v = 4095
			}
			s[w*windowSize+i] = int64(v)
		}
	}
	return s
}

// NetMotion: wildlife location tracking (Table I): the period is divided
// into fixed-length segments and the net movement of each segment is the
// vectorized sum of its per-step displacement magnitudes along each axis.
func NetMotion() *Benchmark {
	const segLen = 256
	return &Benchmark{
		Name:          "NetMotion",
		Area:          "Environmental Sensing",
		Mode:          compiler.ModeSWV,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{Steps: 256} },
		ScaledParams:  func() Params { return Params{Steps: 16384} },
		Build: func(p Params, bits int, provisioned bool) *compiler.Kernel {
			segs := int64(p.Steps / segLen)
			if segs == 0 {
				segs = 1
			}
			n := int64(p.Steps) / segs
			mk := func(name string) compiler.Array {
				return compiler.Array{Name: name, ElemBits: 32, Len: p.Steps, ValueBits: 20,
					Pragma: compiler.PragmaASV, SubwordBits: bits, Provisioned: provisioned}
			}
			reduce := func(arr string) compiler.Expr {
				return compiler.Reduce{Var: "i", N: n, Body: compiler.Load{Array: arr,
					Index: compiler.LinSum(compiler.LinVar("g", n, 0), compiler.LinVar("i", 1, 0))}}
			}
			return &compiler.Kernel{
				Name: "netmotion",
				Arrays: []compiler.Array{
					mk("SX"), mk("SY"),
					{Name: "OUT", ElemBits: 32, Len: int(2 * segs), Output: true},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "g", N: segs, Body: []compiler.Stmt{
						compiler.Assign{Array: "OUT", Index: compiler.LinVar("g", 2, 0), Value: reduce("SX")},
						compiler.Assign{Array: "OUT", Index: compiler.LinVar("g", 2, 1), Value: reduce("SY")},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			rng := rand.New(rand.NewSource(seed))
			sx := make([]int64, p.Steps)
			sy := make([]int64, p.Steps)
			activity := 1.0
			for i := range sx {
				if i%segLen == 0 {
					// Animal activity level varies between segments
					// (resting vs. roaming).
					activity = 0.1 + 0.9*rng.Float64()
				}
				limit := int(activity * (1 << 20))
				sx[i] = int64(rng.Intn(limit))
				sy[i] = int64(rng.Intn(limit))
			}
			return map[string][]int64{"SX": sx, "SY": sy}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			segs := p.Steps / segLen
			if segs == 0 {
				segs = 1
			}
			n := p.Steps / segs
			out := make([]float64, 2*segs)
			for g := 0; g < segs; g++ {
				var x, y uint32
				for i := 0; i < n; i++ {
					x += uint32(in["SX"][g*n+i])
					y += uint32(in["SY"][g*n+i])
				}
				out[2*g] = float64(x)
				out[2*g+1] = float64(y)
			}
			return out
		},
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
