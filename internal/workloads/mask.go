package workloads

import (
	"math/rand"

	"whatsnext/internal/compiler"
)

// MaskExtension is an extension workload (not part of Table I) exercising
// the paper's Section III-B claim that logical operations vectorize with
// their ordinary full-precision instructions: a privacy mask is applied to
// a sensor bitmap with a vectorized AND. It is used by tests and available
// to wnsim as "Mask".
func MaskExtension() *Benchmark {
	return &Benchmark{
		Name:          "Mask",
		Area:          "Image Processing (extension)",
		Mode:          compiler.ModeSWV,
		Output:        "OUT",
		DefaultParams: func() Params { return Params{N: 64} },
		ScaledParams:  func() Params { return Params{N: 64} },
		Build: func(p Params, bits int, provisioned bool) *compiler.Kernel {
			total := int64(p.N * p.N)
			mk := func(name string, out bool) compiler.Array {
				return compiler.Array{Name: name, ElemBits: 32, Len: p.N * p.N, Output: out,
					Pragma: compiler.PragmaASV, SubwordBits: bits, Provisioned: provisioned}
			}
			return &compiler.Kernel{
				Name:   "mask",
				Arrays: []compiler.Array{mk("IMG", false), mk("MASK", false), mk("OUT", true)},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "i", N: total, Body: []compiler.Stmt{
						compiler.Assign{
							Array: "OUT", Index: compiler.LinVar("i", 1, 0),
							Value: compiler.Bin{Op: compiler.OpBitAnd,
								A: compiler.Load{Array: "IMG", Index: compiler.LinVar("i", 1, 0)},
								B: compiler.Load{Array: "MASK", Index: compiler.LinVar("i", 1, 0)}},
						},
					}},
				},
			}
		},
		Inputs: func(p Params, seed int64) map[string][]int64 {
			rng := rand.New(rand.NewSource(seed))
			img := make([]int64, p.N*p.N)
			mask := make([]int64, p.N*p.N)
			for i := range img {
				img[i] = rng.Int63() & 0xFFFFFFFF
				// Rectangular privacy regions are blanked; elsewhere pass.
				if rng.Intn(4) == 0 {
					mask[i] = 0
				} else {
					mask[i] = 0xFFFFFFFF
				}
			}
			return map[string][]int64{"IMG": img, "MASK": mask}
		},
		Golden: func(p Params, in map[string][]int64) []float64 {
			img, mask := in["IMG"], in["MASK"]
			out := make([]float64, len(img))
			for i := range img {
				out[i] = float64(uint32(img[i]) & uint32(mask[i]))
			}
			return out
		},
	}
}
