package workloads

import (
	"math/rand"

	"whatsnext/internal/compiler"
)

// The Section II / Figure 3 case study: continuous blood-glucose
// monitoring on an energy-harvesting wearable. Each reading is produced by
// an FIR filter over a window of raw sensor samples; the raw samples are
// the #pragma asp input, so a 4-bit first pass yields a usable reading at a
// fraction of the precise energy.

// GlucoseWindow is the raw-sample window length per reading.
const GlucoseWindow = 64

// GlucoseKernel builds the per-reading filter: OUT[0] = sum(W[i]*RAW[i])
// >> 16, where RAW holds 8.8 fixed-point glucose samples and the weights
// sum to 256.
func GlucoseKernel(bits int) *compiler.Kernel {
	return &compiler.Kernel{
		Name: "glucose",
		Arrays: []compiler.Array{
			{Name: "RAW", ElemBits: 16, Len: GlucoseWindow, Pragma: compiler.PragmaASP, SubwordBits: bits},
			{Name: "W", ElemBits: 16, Len: GlucoseWindow},
			{Name: "OUT", ElemBits: 32, Len: 1, Output: true, PostShift: 16},
		},
		Body: []compiler.Stmt{
			compiler.Assign{Array: "OUT", Index: compiler.LinConst(0),
				Value: compiler.Reduce{Var: "i", N: GlucoseWindow, Body: compiler.Bin{Op: compiler.OpMul,
					A: compiler.Load{Array: "W", Index: compiler.LinVar("i", 1, 0)},
					B: compiler.Load{Array: "RAW", Index: compiler.LinVar("i", 1, 0)},
				}}},
		},
	}
}

// GlucoseWeights returns the FIR window weights (triangular, summing to
// 256 so the display shift stays a power of two).
func GlucoseWeights() []int64 {
	w := make([]int64, GlucoseWindow)
	var sum int64
	for i := range w {
		d := i - GlucoseWindow/2
		if d < 0 {
			d = -d
		}
		w[i] = int64(GlucoseWindow/2 - d + 1)
		sum += w[i]
	}
	// Normalize the integer weights to sum to exactly 256.
	target := int64(256)
	acc := int64(0)
	for i := range w {
		scaled := (w[i]*target + sum/2) / sum
		if scaled < 1 {
			scaled = 1
		}
		w[i] = scaled
		acc += scaled
	}
	// Distribute any rounding residue over the center taps.
	for i := GlucoseWindow / 2; acc != target && i < GlucoseWindow; i++ {
		if acc < target {
			w[i]++
			acc++
		} else if w[i] > 1 {
			w[i]--
			acc--
		}
	}
	return w
}

// GlucoseReading is one clinical sample of the 10-hour trace.
type GlucoseReading struct {
	MinuteOfDay int
	MgPerDL     float64
}

// ClinicalGlucoseTrace synthesizes the Figure 3 scenario: 15-minute
// readings from 10:48 to 20:24 with two hypoglycemic dips (below the
// 50 mg/dL danger line) at 14:30 and 18:30. It substitutes for the
// clinical data set of Enright et al. used by the paper.
func ClinicalGlucoseTrace(seed int64) []GlucoseReading {
	rng := rand.New(rand.NewSource(seed))
	const start = 10*60 + 48
	const step = 15
	const n = 40 // 10 hours of 15-minute intervals
	readings := make([]GlucoseReading, n)
	level := 150.0
	for i := range readings {
		minute := start + i*step
		// Baseline random walk between meals.
		level += rng.Float64()*24 - 12
		if level > 230 {
			level = 230
		}
		if level < 80 {
			level = 80
		}
		v := level
		// Two sharp hypoglycemic dips centered at 14:30 and 18:30. Each is
		// narrow (~20 minutes of danger), so a device that samples sparsely
		// can slide right past them.
		for _, dip := range []int{14*60 + 30, 18*60 + 30} {
			d := minute - dip
			if d < 0 {
				d = -d
			}
			if d <= 20 {
				// Sharp quadratic profile: the nearest 15-minute reading
				// (within ~7 minutes of the center) lands well below the
				// 50 mg/dL danger line.
				frac := float64(d) / 20
				depth := 1 - frac*frac
				dipV := level - depth*(level-40)
				if dipV < v {
					v = dipV
				}
			}
		}
		readings[i] = GlucoseReading{MinuteOfDay: minute, MgPerDL: v}
	}
	return readings
}

// GlucoseRawWindow expands one clinical reading into the raw 8.8
// fixed-point sensor window the device filters.
func GlucoseRawWindow(r GlucoseReading, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	raw := make([]int64, GlucoseWindow)
	for i := range raw {
		noise := rng.NormFloat64() * 2.0
		v := (r.MgPerDL + noise) * 256
		if v < 0 {
			v = 0
		}
		if v > 65535 {
			v = 65535
		}
		raw[i] = int64(v)
	}
	return raw
}

// GlucoseGolden computes the exact filtered reading for a raw window.
func GlucoseGolden(raw, weights []int64) float64 {
	var acc uint32
	for i := range raw {
		acc += uint32(weights[i]) * uint32(raw[i])
	}
	return float64(acc >> 16)
}
