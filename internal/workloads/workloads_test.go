package workloads

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
)

// runOnce compiles and runs a kernel variant under continuous power and
// returns the display-domain output.
func runOnce(t *testing.T, b *Benchmark, p Params, opts compiler.Options, bits int, provisioned bool, seed int64) []float64 {
	t.Helper()
	k := b.Build(p, bits, provisioned)
	c, err := compiler.Compile(k, opts)
	if err != nil {
		t.Fatalf("%s %v: compile: %v", b.Name, opts, err)
	}
	sys := core.NewSystem(core.DefaultConfig(), core.ContinuousTrace())
	if err := sys.Load(c); err != nil {
		t.Fatalf("%s: load: %v", b.Name, err)
	}
	res, err := sys.RunInput(b.Inputs(p, seed))
	if err != nil {
		t.Fatalf("%s %v: run: %v", b.Name, opts, err)
	}
	if !res.Halted {
		t.Fatalf("%s: did not halt", b.Name)
	}
	out, err := sys.Output(b.Output)
	if err != nil {
		t.Fatalf("%s: output: %v", b.Name, err)
	}
	return out
}

func wantEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: output length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestPreciseMatchesGolden runs every benchmark's precise binary on the
// simulator and requires bit-exact agreement with the native golden model.
func TestPreciseMatchesGolden(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.ScaledParams()
			in := b.Inputs(p, 1)
			golden := b.Golden(p, in)
			got := runOnce(t, b, p, compiler.Options{Mode: compiler.ModePrecise}, 8, false, 1)
			wantEqual(t, b.Name, got, golden)
		})
	}
}

// TestAnytimeCompletesExactly verifies the paper's exactness guarantee: a
// WN build that processes all subwords to completion produces the precise
// result (SWP always; SWV with provisioned addition).
func TestAnytimeCompletesExactly(t *testing.T) {
	for _, b := range All() {
		for _, bits := range []int{4, 8} {
			b, bits := b, bits
			t.Run(b.Name+"/bits="+string(rune('0'+bits)), func(t *testing.T) {
				p := b.ScaledParams()
				in := b.Inputs(p, 2)
				golden := b.Golden(p, in)
				got := runOnce(t, b, p, compiler.Options{Mode: b.Mode}, bits, true, 2)
				wantEqual(t, b.Name, got, golden)
			})
		}
	}
}
