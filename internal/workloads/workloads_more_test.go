package workloads

import (
	"testing"

	"whatsnext/internal/compiler"
)

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("Table I has 6 benchmarks, got %d", len(all))
	}
	names := []string{"Conv2d", "MatMul", "MatAdd", "Home", "Var", "NetMotion"}
	for i, n := range names {
		if all[i].Name != n {
			t.Errorf("benchmark %d is %s, want %s (Table I order)", i, all[i].Name, n)
		}
		b, err := ByName(n)
		if err != nil || b.Name != n {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("Nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestTableITechniqueColumn(t *testing.T) {
	want := map[string]compiler.Mode{
		"Conv2d": compiler.ModeSWP, "MatMul": compiler.ModeSWP, "Var": compiler.ModeSWP,
		"MatAdd": compiler.ModeSWV, "Home": compiler.ModeSWV, "NetMotion": compiler.ModeSWV,
	}
	for _, b := range All() {
		if b.Mode != want[b.Name] {
			t.Errorf("%s uses %v, Table I says %v", b.Name, b.Mode, want[b.Name])
		}
	}
}

func TestInputsDeterministic(t *testing.T) {
	for _, b := range All() {
		p := b.ScaledParams()
		a := b.Inputs(p, 7)
		c := b.Inputs(p, 7)
		d := b.Inputs(p, 8)
		differs := false
		for name, vals := range a {
			if len(c[name]) != len(vals) {
				t.Fatalf("%s: input %s length changed", b.Name, name)
			}
			for i := range vals {
				if c[name][i] != vals[i] {
					t.Fatalf("%s: input %s not deterministic", b.Name, name)
				}
				if d[name][i] != vals[i] {
					differs = true
				}
			}
		}
		if !differs {
			t.Errorf("%s: different seeds should produce different inputs", b.Name)
		}
	}
}

func TestInputsRespectDeclaredPrecision(t *testing.T) {
	for _, b := range All() {
		p := b.ScaledParams()
		k := b.Build(p, 8, true)
		in := b.Inputs(p, 3)
		for name, vals := range in {
			arr, ok := k.ArrayByName(name)
			if !ok {
				t.Fatalf("%s: input %s not declared", b.Name, name)
			}
			if len(vals) > arr.Len {
				t.Fatalf("%s: input %s has %d values for array of %d", b.Name, name, len(vals), arr.Len)
			}
			limit := int64(1) << arr.EffectiveBits()
			for i, v := range vals {
				if v < 0 || v >= limit {
					t.Fatalf("%s: %s[%d] = %d exceeds %d-bit precision", b.Name, name, i, v, arr.EffectiveBits())
				}
			}
		}
	}
}

func TestGoldenShapes(t *testing.T) {
	for _, b := range All() {
		p := b.ScaledParams()
		k := b.Build(p, 8, true)
		out, ok := k.ArrayByName(b.Output)
		if !ok || !out.Output {
			t.Fatalf("%s: output array %q not declared as output", b.Name, b.Output)
		}
		g := b.Golden(p, b.Inputs(p, 1))
		if len(g) != out.Len {
			t.Fatalf("%s: golden has %d values, array has %d", b.Name, len(g), out.Len)
		}
		var nonzero bool
		for _, v := range g {
			if v != 0 {
				nonzero = true
			}
			if v < 0 {
				t.Fatalf("%s: golden values are display-domain and non-negative", b.Name)
			}
		}
		if !nonzero {
			t.Fatalf("%s: golden output is all zeros", b.Name)
		}
	}
}

func TestGaussianKernel(t *testing.T) {
	for _, k := range []int{3, 5, 9} {
		coef, logSum := gaussianKernel(k)
		if len(coef) != k*k {
			t.Fatalf("k=%d: %d coefficients", k, len(coef))
		}
		var sum int64
		for _, c := range coef {
			if c <= 0 {
				t.Fatalf("k=%d: nonpositive coefficient", k)
			}
			sum += c
		}
		if sum != 1<<logSum {
			t.Fatalf("k=%d: coefficient sum %d is not 2^%d", k, sum, logSum)
		}
		// Symmetry and center peak.
		if coef[0] != coef[k*k-1] || coef[(k/2)*k+k/2] < coef[0] {
			t.Fatalf("k=%d: kernel not symmetric/peaked", k)
		}
	}
}

func TestSyntheticImageBounds(t *testing.T) {
	img := SyntheticImage(64, 48, 5)
	if len(img) != 64*48 {
		t.Fatal("image size")
	}
	var zeros int
	for _, v := range img {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %d out of range", v)
		}
		if v == 0 {
			zeros++
		}
	}
	// The dark corner feeds zero skipping; it must exist.
	if zeros < len(img)/50 {
		t.Fatalf("too few zero pixels (%d) for the zero-skipping study", zeros)
	}
}

func TestSensorWindows(t *testing.T) {
	s := SensorWindows(4, 64, 2)
	if len(s) != 256 {
		t.Fatal("length")
	}
	for _, v := range s {
		if v < 0 || v > 4095 {
			t.Fatalf("12-bit ADC value out of range: %d", v)
		}
	}
}

// TestAnytimeExactAcrossSeeds is the randomized form of the exactness
// guarantee: for arbitrary input seeds, a completed anytime run equals the
// precise result on every benchmark at both pragma sizes.
func TestAnytimeExactAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, b := range All() {
		p := b.ScaledParams()
		// Shrink the heavier benchmarks for the sweep.
		switch b.Name {
		case "Conv2d":
			p = Params{ImgW: 16, ImgH: 16, K: 3}
		case "MatMul":
			p = Params{N: 16}
		case "MatAdd":
			p = Params{N: 32}
		case "Home", "Var":
			p = Params{Windows: 8, WindowSize: 64}
		case "NetMotion":
			p = Params{Steps: 1024}
		}
		for seed := int64(10); seed < 14; seed++ {
			for _, bits := range []int{4, 8} {
				in := b.Inputs(p, seed)
				golden := b.Golden(p, in)
				got := runOnce(t, b, p, compiler.Options{Mode: b.Mode}, bits, true, seed)
				for i := range golden {
					if got[i] != golden[i] {
						t.Fatalf("%s seed %d bits %d: [%d] %v != %v", b.Name, seed, bits, i, got[i], golden[i])
					}
				}
			}
		}
	}
}

func TestGlucoseWeights(t *testing.T) {
	w := GlucoseWeights()
	if len(w) != GlucoseWindow {
		t.Fatal("weight count")
	}
	var sum int64
	for _, v := range w {
		if v < 1 {
			t.Fatal("weights must be positive")
		}
		sum += v
	}
	if sum != 256 {
		t.Fatalf("weights sum to %d, want 256 (power-of-two display shift)", sum)
	}
	// Triangular: center no smaller than edges.
	if w[GlucoseWindow/2] < w[0] {
		t.Fatal("window should peak at the center")
	}
}

func TestClinicalTraceHasTwoDips(t *testing.T) {
	tr := ClinicalGlucoseTrace(7)
	if len(tr) != 40 {
		t.Fatalf("%d readings, want 40 (10 h at 15 min)", len(tr))
	}
	dipAt := func(minute int) bool {
		for _, r := range tr {
			if r.MinuteOfDay == minute && r.MgPerDL < 50 {
				return true
			}
			if abs(r.MinuteOfDay-minute) <= 7 && r.MgPerDL < 50 {
				return true
			}
		}
		return false
	}
	if !dipAt(14*60+30) || !dipAt(18*60+30) {
		t.Fatal("the trace must dip below 50 mg/dL at 14:30 and 18:30")
	}
	for _, r := range tr {
		if r.MgPerDL < 30 || r.MgPerDL > 250 {
			t.Fatalf("implausible glucose value %.0f", r.MgPerDL)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGlucoseKernelExact(t *testing.T) {
	weights := GlucoseWeights()
	tr := ClinicalGlucoseTrace(3)
	raw := GlucoseRawWindow(tr[5], 99)
	golden := GlucoseGolden(raw, weights)
	// The filtered reading must sit near the clinical value.
	if d := golden - tr[5].MgPerDL; d > 4 || d < -4 {
		t.Fatalf("filtered %v vs clinical %v", golden, tr[5].MgPerDL)
	}
	// The precise kernel on the simulator reproduces the golden value.
	c, err := compiler.Compile(GlucoseKernel(4), compiler.Options{Mode: compiler.ModePrecise})
	if err != nil {
		t.Fatal(err)
	}
	_ = c
}

func TestMaskExtension(t *testing.T) {
	b := MaskExtension()
	if got, err := ByName("Mask"); err != nil || got.Name != "Mask" {
		t.Fatalf("ByName(Mask): %v", err)
	}
	p := b.ScaledParams()
	in := b.Inputs(p, 5)
	golden := b.Golden(p, in)
	// Precise build is bit-exact.
	got := runOnce(t, b, p, compiler.Options{Mode: compiler.ModePrecise}, 8, false, 5)
	wantEqual(t, "Mask precise", got, golden)
	// SWV builds are exact at completion for logical ops with or without
	// provisioning (no carries to lose).
	for _, bits := range []int{4, 8} {
		for _, prov := range []bool{false, true} {
			got := runOnce(t, b, p, compiler.Options{Mode: compiler.ModeSWV}, bits, prov, 5)
			wantEqual(t, "Mask swv", got, golden)
		}
	}
}
