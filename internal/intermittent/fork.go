package intermittent

import (
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/mem"
)

// ForkablePolicy is a Policy whose mid-run state can be duplicated onto a
// forked device. Fork returns an independent deep copy bound to r — its
// checkpoint snapshot, undo log, counters, and store hooks must no longer
// alias the original's. The lockstep fault injector forks a trunk device at
// every kill boundary instead of re-executing the prefix from reset.
//
// Fork must NOT re-run Attach side effects (initial checkpoint, access-set
// clearing): the forked device continues mid-run, and the cloned memory
// already carries the tracking state the policy expects.
type ForkablePolicy interface {
	Policy
	Fork(r *Runner) Policy
}

// ReplayDistancer reports how much re-execution an outage at the current
// instruction boundary costs, in pure CPU cycles (the sum of Cost.Cycles
// since the instruction the restore path resumes at). Checkpointing
// policies return the distance back to their live checkpoint; an in-place
// resume (NVP) returns 0. The lockstep injector uses it to bound how far a
// forked run must execute before it can be compared against the trunk.
type ReplayDistancer interface {
	ReplayDistance() uint64
}

// Fork duplicates the runner onto an already-cloned device. The caller
// supplies the forked CPU (cpu.Fork), memory (mem.Clone), and a fresh
// supply; the policy is deep-copied via ForkablePolicy. Returns false when
// the attached policy does not support forking, in which case the caller
// must fall back to building the target state from reset.
func (r *Runner) Fork(c *cpu.CPU, m *mem.Memory, s *energy.Supply) (*Runner, bool) {
	fp, ok := r.Policy.(ForkablePolicy)
	if !ok {
		return nil, false
	}
	n := &Runner{
		CPU:           c,
		Mem:           m,
		Supply:        s,
		MaxCycles:     r.MaxCycles,
		Reference:     r.Reference,
		pendingCycles: r.pendingCycles,
		pendingEnergy: r.pendingEnergy,
		skimTaken:     r.skimTaken,
	}
	n.Policy = fp.Fork(n)
	return n, true
}

// Fork implements ForkablePolicy: the checkpoint snapshot is a value, so a
// struct copy suffices; only the runner binding and the store hook need
// rebuilding.
func (c *Clank) Fork(r *Runner) Policy {
	n := *c
	n.r = r
	r.CPU.BeforeStore = func(addr uint32, size int) {
		if r.Mem.WouldViolate(addr, size) {
			n.takeCheckpoint()
			n.ViolationCheckpoints++
		}
	}
	return &n
}

// ReplayDistance implements ReplayDistancer: an outage rewinds to the live
// checkpoint, re-executing everything since it.
func (c *Clank) ReplayDistance() uint64 { return c.sinceCheckpoint }

// Fork implements ForkablePolicy. NVP keeps no per-run mutable state beyond
// the runner binding.
func (n *NVP) Fork(r *Runner) Policy {
	f := *n
	f.r = r
	r.CPU.BeforeStore = nil
	return &f
}

// ReplayDistance implements ReplayDistancer: NVP resumes in place.
func (n *NVP) ReplayDistance() uint64 { return 0 }

// Fork implements ForkablePolicy.
func (n *Naive) Fork(r *Runner) Policy {
	f := *n
	f.r = r
	return &f
}

// ReplayDistance implements ReplayDistancer.
func (n *Naive) ReplayDistance() uint64 { return n.sinceCheckpoint }

// Fork implements ForkablePolicy: the undo log and its dedup set are deep
// copied — the fork's rollback must not be visible to the original.
func (u *UndoLog) Fork(r *Runner) Policy {
	n := *u
	n.r = r
	n.log = append([]undoEntry(nil), u.log...)
	n.logged = make(map[uint32]struct{}, len(u.logged))
	for wa := range u.logged {
		n.logged[wa] = struct{}{}
	}
	r.CPU.BeforeStore = n.beforeStore
	return &n
}

// ReplayDistance implements ReplayDistancer.
func (u *UndoLog) ReplayDistance() uint64 { return u.sinceCheckpoint }
