package intermittent

import "whatsnext/internal/cpu"

// RestartConfig parameterizes the restart-from-entry runtime.
type RestartConfig struct {
	// RestoreCycles is the boot cost charged on every power restore.
	RestoreCycles uint32
}

// DefaultRestartConfig matches the other runtimes' restore figure.
func DefaultRestartConfig() RestartConfig { return RestartConfig{RestoreCycles: 40} }

// Restart is the zero-hardware runtime for progress-embedded programs: it
// takes no checkpoints, writes no NVM state of its own, and on every power
// restore simply resets the core to the program entry point. Forward
// progress across outages is possible only because a progress-embedded
// build rediscovers its frontier by scanning the committed output features
// in NVM — which is exactly the property the NN fault-injection campaigns
// certify. Running a conventional multi-pass anytime build under Restart
// diverges (re-accumulating completed passes), which the negative tests
// witness.
//
// Restart deliberately does not implement ForkablePolicy/ReplayDistancer:
// the replay distance after a restart is the full prefix, so lockstep
// campaigns route through the naive engine.
type Restart struct {
	cfg RestartConfig
	r   *Runner

	Restores uint64
}

// NewRestart builds the policy.
func NewRestart(cfg RestartConfig) *Restart { return &Restart{cfg: cfg} }

// Name implements Policy.
func (p *Restart) Name() string { return "restart" }

// Checkpoints implements Policy: there are never any.
func (p *Restart) Checkpoints() uint64 { return 0 }

// Attach implements Policy: nothing to prepare, nothing to track.
func (p *Restart) Attach(r *Runner) { p.r = r }

// BatchHorizon implements Policy: no watchdog, no tracking — the batched
// executor may run arbitrarily far.
func (p *Restart) BatchHorizon() (uint64, float64) { return 1 << 62, 0 }

// AfterStep implements Policy: no per-instruction overhead.
func (p *Restart) AfterStep(cpu.Cost) (uint32, float64) { return 0, 0 }

// OnOutage implements Policy: volatile state is destroyed.
func (p *Restart) OnOutage() {
	p.r.CPU.PowerLoss()
	p.r.Mem.PowerLoss()
}

// OnRestore implements Policy: reboot from the entry point. The armed skim
// state (if any) is ignored — a restart runtime has no restore path that
// could consume it.
func (p *Restart) OnRestore() (uint32, float64) {
	p.r.CPU.Reset()
	p.Restores++
	return p.cfg.RestoreCycles, 0
}
