package intermittent

import (
	"math/rand"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// accumProgram is a kernel with read-modify-write non-volatile updates —
// the access pattern whose consistency depends on the Clank idempotency
// machinery. It computes SUM[i] += i for i in 0..N across OUTER passes.
const accumProgram = `
	MOVI R10, #96       ; outer passes (long enough to span several charges)
outer:
	MOVI R0, #0
	MOVTI R0, #4096     ; &SUM[0]
	MOVI R1, #0         ; i
loop:
	LDR R2, [R0, #0]    ; read-modify-write: read first,
	ADD R2, R2, R1
	STR R2, [R0, #0]    ; then write -> idempotency violation point
	ADDI R0, R0, #4
	ADDI R1, R1, #1
	CMPI R1, #64
	BLT loop
	SUBIS R10, R10, #1
	BNE outer
	HALT
`

// expected value of SUM[i] after the program: 96*i.
func checkAccum(t *testing.T, m *mem.Memory) {
	t.Helper()
	for i := uint32(0); i < 64; i++ {
		v, err := m.LoadWord(mem.DataBase + 4*i)
		if err != nil {
			t.Fatal(err)
		}
		if v != 96*i {
			t.Fatalf("SUM[%d] = %d, want %d", i, v, 96*i)
		}
	}
}

func buildDevice(t *testing.T, src string, policy Policy, trace *energy.Trace) *Runner {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(m)
	s := energy.NewSupply(energy.DefaultDeviceConfig(), trace)
	return NewRunner(c, m, s, policy)
}

func ample() *energy.Trace { return energy.ConstantTrace(1, 1000, 3600) }

// weak returns a trace that recharges but forces many outages.
func weak() *energy.Trace { return energy.ConstantTrace(2e-3, 1000, 3600) }

func TestClankContinuousPower(t *testing.T) {
	r := buildDevice(t, accumProgram, NewClank(DefaultClankConfig()), ample())
	res, err := r.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Outages != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	checkAccum(t, r.Mem)
	if res.Checkpoints == 0 {
		t.Fatal("the RMW pattern must trigger idempotency checkpoints")
	}
}

func TestClankSurvivesOutages(t *testing.T) {
	r := buildDevice(t, accumProgram, NewClank(DefaultClankConfig()), weak())
	res, err := r.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("weak trace should force outages")
	}
	checkAccum(t, r.Mem)
	if res.CyclesOff == 0 {
		t.Fatal("outages imply recharge time")
	}
}

func TestNVPSurvivesOutages(t *testing.T) {
	r := buildDevice(t, accumProgram, NewNVP(DefaultNVPConfig()), weak())
	res, err := r.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("weak trace should force outages")
	}
	checkAccum(t, r.Mem)
	if res.Checkpoints != 0 {
		t.Fatal("NVP has no discrete checkpoints")
	}
}

// TestCrashConsistencyProperty is the load-bearing property of the whole
// intermittent substrate: with power outages injected at arbitrary points,
// both runtimes must produce exactly the memory image of an uninterrupted
// run. Clank achieves it through checkpoint+re-execution guarded by
// idempotency violations; NVP through per-cycle state retention.
func TestCrashConsistencyProperty(t *testing.T) {
	mkPolicy := map[string]func() Policy{
		"clank": func() Policy { return NewClank(DefaultClankConfig()) },
		"nvp":   func() Policy { return NewNVP(DefaultNVPConfig()) },
		"undolog": func() Policy {
			// The injected outages arrive every ~200 instructions on
			// average; the undo log has no violation checkpoints, so its
			// watchdog must advance the checkpoint faster than that (see
			// the forward-progress caveat on UndoLog).
			cfg := DefaultUndoLogConfig()
			cfg.WatchdogCycles = 256
			return NewUndoLog(cfg)
		},
	}
	for name, mk := range mkPolicy {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 30; trial++ {
				r := buildDevice(t, accumProgram, mk(), weak())
				// Inject extra forced outages at random instruction counts
				// on top of the weak supply's natural brown-outs.
				var n int
				next := 1 + rng.Intn(400)
				r.OnProgress = func(uint64) {
					n++
					if n == next {
						n = 0
						next = 1 + rng.Intn(400)
						r.Supply.ForceOutage()
					}
				}
				res, err := r.RunToHalt()
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if res.Outages == 0 {
					t.Fatalf("trial %d: no outages injected", trial)
				}
				checkAccum(t, r.Mem)
			}
		})
	}
}

func TestSkimRedirectsRestore(t *testing.T) {
	// The program arms a skim point, then spins forever; only the skim
	// path can reach HALT. Forward progress therefore proves that the
	// restore path honored the armed target (Section III-C).
	src := `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #42
		STR R1, [R0, #0]
		SKM end
	spin:
		LDR R2, [R0, #0]
		ADDI R2, R2, #0
		B spin
	end:
		MOVI R3, #7
		HALT
	`
	for name, p := range map[string]Policy{
		"clank":   NewClank(DefaultClankConfig()),
		"nvp":     NewNVP(DefaultNVPConfig()),
		"undolog": NewUndoLog(DefaultUndoLogConfig()),
	} {
		r := buildDevice(t, src, p, weak())
		res, err := r.RunToHalt()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Halted || !res.SkimTaken {
			t.Fatalf("%s: skim not taken: %+v", name, res)
		}
		if r.CPU.Regs[isa.R3] != 7 {
			t.Fatalf("%s: did not resume at the skim target", name)
		}
		if r.CPU.SkimArmed {
			t.Fatalf("%s: skim register must be disarmed after use", name)
		}
		v, _ := r.Mem.LoadWord(mem.DataBase)
		if v != 42 {
			t.Fatalf("%s: pre-skim store lost", name)
		}
	}
}

func TestWatchdogCheckpoints(t *testing.T) {
	// A long pure-compute loop (no NV writes) only checkpoints via the
	// watchdog.
	src := `
		MOVI R0, #0
		MOVTI R1, #1      ; 65536 iterations
	loop:
		ADDI R0, R0, #1
		SUBIS R1, R1, #1
		BNE loop
		HALT
	`
	cl := NewClank(DefaultClankConfig())
	r := buildDevice(t, src, cl, ample())
	if _, err := r.RunToHalt(); err != nil {
		t.Fatal(err)
	}
	if cl.WatchdogCheckpoints == 0 {
		t.Fatal("watchdog should have fired during the long loop")
	}
	if cl.ViolationCheckpoints != 0 {
		t.Fatal("no NV RMW, so no violation checkpoints expected")
	}
}

func TestViolationCheckpointResumePoint(t *testing.T) {
	// After a violation checkpoint, the checkpointed PC must be the store
	// itself so re-execution replays it.
	src := `
		MOVI R0, #0
		MOVTI R0, #4096
		LDR R1, [R0, #0]
		ADDI R1, R1, #5
		STR R1, [R0, #0]
		HALT
	`
	cl := NewClank(DefaultClankConfig())
	r := buildDevice(t, src, cl, ample())
	if _, err := r.RunToHalt(); err != nil {
		t.Fatal(err)
	}
	if cl.ViolationCheckpoints != 1 {
		t.Fatalf("violations = %d, want 1", cl.ViolationCheckpoints)
	}
	if cl.ResumePC() != 4*4 {
		t.Fatalf("checkpoint PC %#x, want the STR at %#x", cl.ResumePC(), 4*4)
	}
}

func TestOutOfPower(t *testing.T) {
	r := buildDevice(t, accumProgram, NewClank(DefaultClankConfig()),
		energy.ConstantTrace(0, 1000, 1)) // dead environment
	_, err := r.RunToHalt()
	if err != ErrOutOfPower {
		t.Fatalf("err = %v, want ErrOutOfPower", err)
	}
}

func TestCycleBudgetGuard(t *testing.T) {
	src := "spin: B spin"
	r := buildDevice(t, src, NewNVP(DefaultNVPConfig()), ample())
	r.MaxCycles = 10_000
	_, err := r.RunToHalt()
	if err != ErrCycleBudget {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
}

func TestFaultSurfaces(t *testing.T) {
	src := `
		MOVI R0, #0
		MOVTI R0, #40000   ; unmapped
		LDR R1, [R0, #0]
		HALT
	`
	r := buildDevice(t, src, NewNVP(DefaultNVPConfig()), ample())
	if _, err := r.RunToHalt(); err == nil {
		t.Fatal("memory faults must surface from RunToHalt")
	}
}

func TestRuntimeOverheadAccounting(t *testing.T) {
	// The same program under NVP must draw more energy per cycle than the
	// raw instruction cost (the backup surcharge), and Clank must spend
	// extra cycles on checkpoints.
	src := `
		MOVI R1, #1000
	loop:
		SUBIS R1, R1, #1
		BNE loop
		HALT
	`
	rn := buildDevice(t, src, NewNVP(DefaultNVPConfig()), ample())
	resN, err := rn.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	perCycle := resN.EnergyDrawn / float64(resN.CyclesOn)
	base := rn.Supply.Config().EnergyPerCycle
	if perCycle <= base*1.2 {
		t.Fatalf("NVP energy/cycle %.3g should include the backup surcharge over %.3g", perCycle, base)
	}

	rc := buildDevice(t, src, NewClank(DefaultClankConfig()), ample())
	resC, err := rc.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	if resC.CyclesOn <= resN.CyclesOn {
		t.Fatalf("clank cycles %d should exceed nvp %d (checkpoint cycles)", resC.CyclesOn, resN.CyclesOn)
	}
}

func TestResultTotals(t *testing.T) {
	res := Result{CyclesOn: 10, CyclesOff: 32}
	if res.TotalCycles() != 42 {
		t.Fatal("TotalCycles arithmetic")
	}
}

func TestUndoLogRollsBack(t *testing.T) {
	// The program overwrites SUM[0] then spins; an outage must roll memory
	// back to the checkpoint-time value so re-execution is consistent.
	src := `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #0
		MOVTI R2, #2      ; big loop bound
	loop:
		ADDI R1, R1, #1
		STR R1, [R0, #0]  ; monotone NV writes
		SUBIS R2, R2, #1
		BNE loop
		HALT
	`
	ul := NewUndoLog(DefaultUndoLogConfig())
	r := buildDevice(t, src, ul, weak())
	res, err := r.RunToHalt()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("expected outages")
	}
	if ul.RolledBack == 0 {
		t.Fatal("expected rollbacks")
	}
	v, _ := r.Mem.LoadWord(mem.DataBase)
	if v != 2<<16 {
		t.Fatalf("SUM = %d, want %d (consistent final value)", v, 2<<16)
	}
}

func TestUndoLogCapacityForcesCheckpoints(t *testing.T) {
	// Touch more distinct words than the log holds; the policy must
	// checkpoint to truncate it rather than overflow.
	src := `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #200
	loop:
		STR R1, [R0, #0]
		ADDI R0, R0, #4
		SUBIS R1, R1, #1
		BNE loop
		HALT
	`
	cfg := DefaultUndoLogConfig()
	cfg.Entries = 16
	cfg.WatchdogCycles = 1 << 30 // watchdog out of the picture
	ul := NewUndoLog(cfg)
	r := buildDevice(t, src, ul, ample())
	if _, err := r.RunToHalt(); err != nil {
		t.Fatal(err)
	}
	if ul.NumCheckpoints < 200/16 {
		t.Fatalf("checkpoints = %d, want at least %d (capacity-forced)", ul.NumCheckpoints, 200/16)
	}
}

func TestUndoLogLogsOncePerWordPerInterval(t *testing.T) {
	src := `
		MOVI R0, #0
		MOVTI R0, #4096
		MOVI R1, #100
	loop:
		STR R1, [R0, #0]   ; same word repeatedly
		SUBIS R1, R1, #1
		BNE loop
		HALT
	`
	cfg := DefaultUndoLogConfig()
	cfg.WatchdogCycles = 1 << 30
	ul := NewUndoLog(cfg)
	r := buildDevice(t, src, ul, ample())
	if _, err := r.RunToHalt(); err != nil {
		t.Fatal(err)
	}
	if ul.LoggedWords != 1 {
		t.Fatalf("logged %d words, want 1 (dedup within the interval)", ul.LoggedWords)
	}
}
