package intermittent

import (
	"whatsnext/internal/cpu"
	"whatsnext/internal/isa"
)

// ClankConfig parameterizes the checkpoint-based volatile-processor runtime.
type ClankConfig struct {
	// WatchdogCycles forces a checkpoint after this many active cycles
	// without one (Clank's periodic watchdog interrupt).
	WatchdogCycles uint64
	// CheckpointCycles is the cost of writing the architectural state
	// (16 registers + flags word) to non-volatile memory.
	CheckpointCycles uint32
	// CheckpointNVWords is the number of NV words a checkpoint writes,
	// charged at the supply's NV-write energy.
	CheckpointNVWords int
	// RestoreCycles is the cost of reloading state after an outage.
	RestoreCycles uint32
}

// DefaultClankConfig mirrors Clank's modest hardware costs: a 17-word
// checkpoint at 2 cycles per NV word plus control overhead, and a watchdog
// in the low thousands of cycles.
func DefaultClankConfig() ClankConfig {
	return ClankConfig{
		WatchdogCycles:    8192,
		CheckpointCycles:  40,
		CheckpointNVWords: 17,
		RestoreCycles:     40,
	}
}

// Clank is the checkpointing volatile-processor policy. All volatile state
// is lost at an outage; execution resumes from the last checkpoint, whose
// placement is governed by idempotency violations and the watchdog.
type Clank struct {
	cfg ClankConfig
	r   *Runner

	checkpoint       cpu.Snapshot // lives in NV memory
	sinceCheckpoint  uint64
	pendingOverheadC uint32
	pendingOverheadE float64

	NumCheckpoints         uint64
	ViolationCheckpoints   uint64
	WatchdogCheckpoints    uint64
	ReexecutedInstructions uint64 // instructions discarded by outages (diagnostic)
}

// NewClank builds the policy with the given configuration.
func NewClank(cfg ClankConfig) *Clank { return &Clank{cfg: cfg} }

// Name implements Policy.
func (c *Clank) Name() string { return "clank" }

// Checkpoints implements Policy.
func (c *Clank) Checkpoints() uint64 { return c.NumCheckpoints }

// Attach implements Policy: it enables write-after-read tracking and hooks
// store execution to checkpoint ahead of idempotency violations.
func (c *Clank) Attach(r *Runner) {
	c.r = r
	r.Mem.SetTracking(true)
	r.Mem.ClearAccessSets()
	r.CPU.BeforeStore = func(addr uint32, size int) {
		if r.Mem.WouldViolate(addr, size) {
			c.takeCheckpoint()
			c.ViolationCheckpoints++
		}
	}
	// Initial checkpoint so the first outage has something to restore.
	c.takeCheckpoint()
}

// takeCheckpoint snapshots volatile state into (modeled) non-volatile
// memory and charges the cost via the pending-overhead channel.
func (c *Clank) takeCheckpoint() {
	c.checkpoint = c.r.CPU.Snapshot()
	c.r.Mem.ClearAccessSets()
	c.sinceCheckpoint = 0
	c.NumCheckpoints++
	c.pendingOverheadC += c.cfg.CheckpointCycles
	c.pendingOverheadE += float64(c.cfg.CheckpointNVWords) * c.r.Supply.Config().NVWriteEnergy
}

// BatchHorizon implements Policy: the batched executor may run until the
// watchdog would fire (the checkpoint then lands on the window's final
// instruction, exactly as in the reference loop). AfterStep charges no
// per-cycle surcharge.
func (c *Clank) BatchHorizon() (uint64, float64) {
	if c.sinceCheckpoint >= c.cfg.WatchdogCycles {
		return 0, 0
	}
	return c.cfg.WatchdogCycles - c.sinceCheckpoint, 0
}

// AfterStep implements Policy: it applies the watchdog and surfaces any
// checkpoint overhead accrued during the instruction.
func (c *Clank) AfterStep(cost cpu.Cost) (uint32, float64) {
	c.sinceCheckpoint += uint64(cost.Cycles)
	if c.sinceCheckpoint >= c.cfg.WatchdogCycles {
		c.takeCheckpoint()
		c.WatchdogCheckpoints++
	}
	ec, ee := c.pendingOverheadC, c.pendingOverheadE
	c.pendingOverheadC, c.pendingOverheadE = 0, 0
	return ec, ee
}

// OnOutage implements Policy: volatile state is destroyed.
func (c *Clank) OnOutage() {
	c.r.CPU.PowerLoss()
	c.r.Mem.PowerLoss()
}

// OnRestore implements Policy: reload the checkpoint; if a skim point is
// armed, the restore location becomes the skim target rather than the
// checkpointed PC.
func (c *Clank) OnRestore() (uint32, float64) {
	c.r.CPU.Restore(c.checkpoint)
	c.r.Mem.ClearAccessSets()
	c.sinceCheckpoint = 0
	c.r.consumeSkim()
	return c.cfg.RestoreCycles, 0
}

// ResumePC exposes the checkpointed program counter (for tests).
func (c *Clank) ResumePC() uint32 { return c.checkpoint.Regs[isa.PC] }
