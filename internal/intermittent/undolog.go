package intermittent

import (
	"whatsnext/internal/cpu"
	"whatsnext/internal/mem"
)

// UndoLogConfig parameterizes the undo-logging volatile-processor runtime.
type UndoLogConfig struct {
	// Entries is the non-volatile undo-log capacity in word entries; a
	// full log forces a checkpoint (which truncates it).
	Entries int
	// WatchdogCycles bounds re-execution like Clank's watchdog.
	WatchdogCycles uint64
	// CheckpointCycles / CheckpointNVWords / RestoreCycles as in Clank.
	CheckpointCycles  uint32
	CheckpointNVWords int
	RestoreCycles     uint32
	// LogEntryCycles is the cost of appending one undo entry (read the old
	// word + write addr/value to the NV log).
	LogEntryCycles uint32
	// LogEntryNVWords is the NV write count per appended entry.
	LogEntryNVWords int
}

// DefaultUndoLogConfig mirrors software undo-logging systems (DINO-style):
// a modest NV log and Clank-equivalent checkpoint costs.
func DefaultUndoLogConfig() UndoLogConfig {
	return UndoLogConfig{
		Entries:           64,
		WatchdogCycles:    4096,
		CheckpointCycles:  40,
		CheckpointNVWords: 17,
		RestoreCycles:     40,
		LogEntryCycles:    6,
		LogEntryNVWords:   2,
	}
}

type undoEntry struct {
	addr uint32
	old  uint32
}

// UndoLog is an alternative consistency mechanism for volatile processors:
// instead of checkpointing ahead of idempotency-violating writes (Clank),
// every non-volatile store first records the old word in a non-volatile
// undo log. After an outage the log is rolled back in reverse, returning
// memory to its exact state at the last register checkpoint, and execution
// resumes from there. Skim points are honored identically.
//
// Forward-progress caveat: unlike Clank, whose violation checkpoints fall
// naturally inside read-modify-write loops, the undo log advances its
// checkpoint only at the watchdog or when the log fills. WatchdogCycles
// must therefore be set below the expected outage interval, or a workload
// that touches few distinct words re-executes the same window forever.
type UndoLog struct {
	cfg UndoLogConfig
	r   *Runner

	checkpoint      cpu.Snapshot
	log             []undoEntry // modeled as non-volatile
	logged          map[uint32]struct{}
	sinceCheckpoint uint64
	pendingC        uint32
	pendingE        float64

	NumCheckpoints uint64
	LoggedWords    uint64
	RolledBack     uint64
}

// NewUndoLog builds the policy.
func NewUndoLog(cfg UndoLogConfig) *UndoLog {
	return &UndoLog{cfg: cfg, logged: map[uint32]struct{}{}}
}

// Name implements Policy.
func (u *UndoLog) Name() string { return "undolog" }

// Checkpoints implements Policy.
func (u *UndoLog) Checkpoints() uint64 { return u.NumCheckpoints }

// Attach implements Policy.
func (u *UndoLog) Attach(r *Runner) {
	u.r = r
	r.Mem.SetTracking(false)
	u.log = u.log[:0]
	clear(u.logged)
	r.CPU.BeforeStore = u.beforeStore
	u.takeCheckpoint()
}

// beforeStore appends the old value of every NV word the store covers to
// the undo log (once per word per interval — later stores to the same word
// roll back to the oldest value, which is the checkpoint-time value).
func (u *UndoLog) beforeStore(addr uint32, size int) {
	first := addr &^ 3
	last := (addr + uint32(size) - 1) &^ 3
	for wa := first; wa <= last; wa += 4 {
		if wa < mem.DataBase || wa >= mem.DataBase+uint32(u.r.Mem.Config().DataBytes) {
			continue
		}
		if _, dup := u.logged[wa]; dup {
			continue
		}
		if len(u.log) >= u.cfg.Entries {
			// Log full: checkpoint truncates it, making current memory the
			// new rollback target.
			u.takeCheckpoint()
		}
		old, err := u.r.Mem.LoadWord(wa)
		if err != nil {
			continue // the store itself will fault and surface the error
		}
		u.log = append(u.log, undoEntry{addr: wa, old: old})
		u.logged[wa] = struct{}{}
		u.LoggedWords++
		u.pendingC += u.cfg.LogEntryCycles
		u.pendingE += float64(u.cfg.LogEntryNVWords) * u.r.Supply.Config().NVWriteEnergy
	}
}

func (u *UndoLog) takeCheckpoint() {
	u.checkpoint = u.r.CPU.Snapshot()
	u.log = u.log[:0]
	clear(u.logged)
	u.sinceCheckpoint = 0
	u.NumCheckpoints++
	u.pendingC += u.cfg.CheckpointCycles
	u.pendingE += float64(u.cfg.CheckpointNVWords) * u.r.Supply.Config().NVWriteEnergy
}

// BatchHorizon implements Policy: like Clank, the watchdog bounds a batch;
// log appends happen only under the store hook, which the batched executor
// routes through Step.
func (u *UndoLog) BatchHorizon() (uint64, float64) {
	if u.sinceCheckpoint >= u.cfg.WatchdogCycles {
		return 0, 0
	}
	return u.cfg.WatchdogCycles - u.sinceCheckpoint, 0
}

// AfterStep implements Policy.
func (u *UndoLog) AfterStep(cost cpu.Cost) (uint32, float64) {
	u.sinceCheckpoint += uint64(cost.Cycles)
	if u.sinceCheckpoint >= u.cfg.WatchdogCycles {
		u.takeCheckpoint()
	}
	ec, ee := u.pendingC, u.pendingE
	u.pendingC, u.pendingE = 0, 0
	return ec, ee
}

// OnOutage implements Policy: volatile state is lost; the NV undo log
// survives.
func (u *UndoLog) OnOutage() {
	u.r.CPU.PowerLoss()
	u.r.Mem.PowerLoss()
}

// OnRestore implements Policy. With a skim point armed, the result is
// taken as-is: the log is truncated without rollback (every committed word
// write is atomic, so memory is a consistent approximate state) and
// execution jumps to the skim target. Otherwise the log is rolled back
// newest-first so re-execution from the register checkpoint observes
// exactly the checkpoint-time memory.
func (u *UndoLog) OnRestore() (uint32, float64) {
	cost := u.cfg.RestoreCycles
	var rolled int
	if u.r.CPU.SkimArmed {
		u.r.CPU.Restore(u.checkpoint)
		u.r.consumeSkim()
	} else {
		for i := len(u.log) - 1; i >= 0; i-- {
			e := u.log[i]
			// Rollback writes cannot fail: the addresses were valid when
			// logged and memory never shrinks.
			_ = u.r.Mem.StoreWord(e.addr, e.old)
			u.RolledBack++
			cost += 2
		}
		rolled = len(u.log)
		u.r.CPU.Restore(u.checkpoint)
	}
	u.log = u.log[:0]
	clear(u.logged)
	u.sinceCheckpoint = 0
	return cost, float64(rolled) * u.r.Supply.Config().NVWriteEnergy
}
