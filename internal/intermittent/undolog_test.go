package intermittent

import (
	"testing"

	"whatsnext/internal/cpu"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// undoHarness builds a powered device with an UndoLog policy attached and
// no program beyond HALT: the tests below drive the policy hooks directly
// to pin down the log's edge-case semantics.
func undoHarness(t *testing.T, cfg UndoLogConfig) (*UndoLog, *Runner) {
	t.Helper()
	u := NewUndoLog(cfg)
	r := buildDevice(t, "\tHALT\n", u, ample())
	return u, r
}

func mustStore(t *testing.T, m *mem.Memory, addr, v uint32) {
	t.Helper()
	if err := m.StoreWord(addr, v); err != nil {
		t.Fatal(err)
	}
}

func mustLoad(t *testing.T, m *mem.Memory, addr uint32) uint32 {
	t.Helper()
	v, err := m.LoadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// A second store to an already-logged word must not append a second entry:
// rollback targets the checkpoint-time value, not intermediate ones.
func TestUndoLogDoubleAdd(t *testing.T) {
	u, r := undoHarness(t, DefaultUndoLogConfig())
	addr := uint32(mem.DataBase)
	mustStore(t, r.Mem, addr, 111)

	u.beforeStore(addr, 4)
	mustStore(t, r.Mem, addr, 222)
	u.beforeStore(addr, 4)
	mustStore(t, r.Mem, addr, 333)

	if u.LoggedWords != 1 {
		t.Fatalf("LoggedWords = %d, want 1 (second add of the same word is a no-op)", u.LoggedWords)
	}
	// A forced power failure rolls the word back to the checkpoint-time
	// value exactly once.
	r.ForceFailure()
	if got := mustLoad(t, r.Mem, addr); got != 111 {
		t.Fatalf("after rollback word = %d, want the checkpoint-time 111", got)
	}
	if u.RolledBack != 1 {
		t.Fatalf("RolledBack = %d, want 1", u.RolledBack)
	}
}

// Filling the log forces a checkpoint, which commits everything logged so
// far: only words touched after the forced checkpoint roll back.
func TestUndoLogCapacityOverflow(t *testing.T) {
	cfg := DefaultUndoLogConfig()
	cfg.Entries = 2
	u, r := undoHarness(t, cfg)
	a, b, c := uint32(mem.DataBase), uint32(mem.DataBase+4), uint32(mem.DataBase+8)
	mustStore(t, r.Mem, a, 1)
	mustStore(t, r.Mem, b, 2)
	mustStore(t, r.Mem, c, 3)

	u.beforeStore(a, 4)
	mustStore(t, r.Mem, a, 10)
	u.beforeStore(b, 4)
	mustStore(t, r.Mem, b, 20)
	if u.NumCheckpoints != 1 { // the Attach-time checkpoint only
		t.Fatalf("NumCheckpoints = %d before overflow, want 1", u.NumCheckpoints)
	}

	u.beforeStore(c, 4) // log is full: forces a checkpoint, then logs c
	mustStore(t, r.Mem, c, 30)
	if u.NumCheckpoints != 2 {
		t.Fatalf("NumCheckpoints = %d after overflow, want 2", u.NumCheckpoints)
	}

	r.ForceFailure()
	if got := mustLoad(t, r.Mem, a); got != 10 {
		t.Errorf("word a = %d, want 10 (committed by the forced checkpoint)", got)
	}
	if got := mustLoad(t, r.Mem, b); got != 20 {
		t.Errorf("word b = %d, want 20 (committed by the forced checkpoint)", got)
	}
	if got := mustLoad(t, r.Mem, c); got != 3 {
		t.Errorf("word c = %d, want 3 (rolled back)", got)
	}
	if u.RolledBack != 1 {
		t.Errorf("RolledBack = %d, want 1 (only the post-checkpoint word)", u.RolledBack)
	}
}

// A watchdog checkpoint truncates the log: an outage after it must not
// undo writes the checkpoint already committed.
func TestUndoLogWipeOnCheckpoint(t *testing.T) {
	cfg := DefaultUndoLogConfig()
	cfg.WatchdogCycles = 100
	u, r := undoHarness(t, cfg)
	addr := uint32(mem.DataBase)
	mustStore(t, r.Mem, addr, 7)

	u.beforeStore(addr, 4)
	mustStore(t, r.Mem, addr, 70)
	u.AfterStep(cpu.Cost{Cycles: 200}) // trips the watchdog: checkpoint + wipe
	if u.NumCheckpoints != 2 {
		t.Fatalf("NumCheckpoints = %d, want 2 (attach + watchdog)", u.NumCheckpoints)
	}

	r.ForceFailure()
	if got := mustLoad(t, r.Mem, addr); got != 70 {
		t.Fatalf("word = %d, want 70 (the watchdog checkpoint committed it)", got)
	}
	if u.RolledBack != 0 {
		t.Fatalf("RolledBack = %d, want 0 (log was wiped by the checkpoint)", u.RolledBack)
	}
}

// With a skim point armed, restore truncates the log without rollback and
// resumes at the skim target: the approximate result is taken as-is.
func TestUndoLogSkimTruncates(t *testing.T) {
	u, r := undoHarness(t, DefaultUndoLogConfig())
	addr := uint32(mem.DataBase)
	mustStore(t, r.Mem, addr, 5)

	u.beforeStore(addr, 4)
	mustStore(t, r.Mem, addr, 50)
	r.CPU.SkimArmed = true
	r.CPU.SkimTarget = 0x40

	r.ForceFailure()
	if got := mustLoad(t, r.Mem, addr); got != 50 {
		t.Fatalf("word = %d, want 50 (skim restore must not roll back)", got)
	}
	if u.RolledBack != 0 {
		t.Fatalf("RolledBack = %d, want 0", u.RolledBack)
	}
	if pc := r.CPU.Regs[isa.PC]; pc != 0x40 {
		t.Fatalf("PC = %#x, want the skim target 0x40", pc)
	}
	// The log was truncated: a later plain outage rolls back nothing.
	r.ForceFailure()
	if got := mustLoad(t, r.Mem, addr); got != 50 {
		t.Fatalf("word = %d after second failure, want 50 (log was truncated)", got)
	}
}
