package intermittent

import (
	"whatsnext/internal/cpu"
	"whatsnext/internal/isa"
)

// NaiveConfig parameterizes the naive periodic-checkpointing runtime.
type NaiveConfig struct {
	// WatchdogCycles forces a checkpoint after this many active cycles
	// without one.
	WatchdogCycles uint64
	// CheckpointCycles is the cost of writing the architectural state to
	// non-volatile memory.
	CheckpointCycles uint32
	// CheckpointNVWords is the number of NV words a checkpoint writes,
	// charged at the supply's NV-write energy.
	CheckpointNVWords int
	// RestoreCycles is the cost of reloading state after an outage.
	RestoreCycles uint32
}

// DefaultNaiveConfig uses the same cost figures as Clank with the same
// watchdog period — the only difference between the two policies is the
// missing idempotency-violation detection.
func DefaultNaiveConfig() NaiveConfig {
	return NaiveConfig{
		WatchdogCycles:    8192,
		CheckpointCycles:  40,
		CheckpointNVWords: 17,
		RestoreCycles:     40,
	}
}

// Naive is periodic checkpointing with no memory-access tracking: the
// watchdog is the only checkpoint trigger, and no store is ever inspected
// for write-after-read violations. It is the textbook baseline runtime —
// and, deliberately, an UNSOUND one: a WAR or read-modify-write between two
// checkpoints re-executes against the overwritten value after an outage.
//
// That unsoundness is the point. The certified runtimes (Clank, NVP, the
// undo log) each dynamically repair the WN102/WN106/WN108 hazard classes —
// Clank checkpoints ahead of violating stores, NVP never re-executes, the
// undo log rolls uncommitted writes back — so no injection campaign under
// them can ever witness those rules. Naive is the witness runtime: it
// replays exactly the interval the static analysis reasons about, turning
// every flagged WAR/RMW into an observable memory divergence while still
// executing hazard-free programs correctly.
type Naive struct {
	cfg NaiveConfig
	r   *Runner

	checkpoint       cpu.Snapshot // lives in NV memory
	sinceCheckpoint  uint64
	pendingOverheadC uint32
	pendingOverheadE float64

	NumCheckpoints         uint64
	WatchdogCheckpoints    uint64
	ReexecutedInstructions uint64 // instructions discarded by outages (diagnostic)
}

// NewNaive builds the policy with the given configuration.
func NewNaive(cfg NaiveConfig) *Naive { return &Naive{cfg: cfg} }

// Name implements Policy.
func (n *Naive) Name() string { return "naive" }

// Checkpoints implements Policy.
func (n *Naive) Checkpoints() uint64 { return n.NumCheckpoints }

// Attach implements Policy. No tracking, no store hook: the initial
// checkpoint is the only preparation.
func (n *Naive) Attach(r *Runner) {
	n.r = r
	n.takeCheckpoint()
}

// takeCheckpoint snapshots volatile state into (modeled) non-volatile
// memory and charges the cost via the pending-overhead channel.
func (n *Naive) takeCheckpoint() {
	n.checkpoint = n.r.CPU.Snapshot()
	n.sinceCheckpoint = 0
	n.NumCheckpoints++
	n.pendingOverheadC += n.cfg.CheckpointCycles
	n.pendingOverheadE += float64(n.cfg.CheckpointNVWords) * n.r.Supply.Config().NVWriteEnergy
}

// BatchHorizon implements Policy: the batched executor may run until the
// watchdog would fire.
func (n *Naive) BatchHorizon() (uint64, float64) {
	if n.sinceCheckpoint >= n.cfg.WatchdogCycles {
		return 0, 0
	}
	return n.cfg.WatchdogCycles - n.sinceCheckpoint, 0
}

// AfterStep implements Policy: it applies the watchdog and surfaces any
// checkpoint overhead accrued during the instruction.
func (n *Naive) AfterStep(cost cpu.Cost) (uint32, float64) {
	n.sinceCheckpoint += uint64(cost.Cycles)
	if n.sinceCheckpoint >= n.cfg.WatchdogCycles {
		n.takeCheckpoint()
		n.WatchdogCheckpoints++
	}
	ec, ee := n.pendingOverheadC, n.pendingOverheadE
	n.pendingOverheadC, n.pendingOverheadE = 0, 0
	return ec, ee
}

// OnOutage implements Policy: volatile state is destroyed.
func (n *Naive) OnOutage() {
	n.r.CPU.PowerLoss()
	n.r.Mem.PowerLoss()
}

// OnRestore implements Policy: reload the checkpoint; if a skim point is
// armed, the restore location becomes the skim target rather than the
// checkpointed PC.
func (n *Naive) OnRestore() (uint32, float64) {
	n.r.CPU.Restore(n.checkpoint)
	n.sinceCheckpoint = 0
	n.r.consumeSkim()
	return n.cfg.RestoreCycles, 0
}

// ResumePC exposes the checkpointed program counter (for tests).
func (n *Naive) ResumePC() uint32 { return n.checkpoint.Regs[isa.PC] }
