package intermittent

import (
	"math"

	"whatsnext/internal/cpu"
)

// NVPConfig parameterizes the non-volatile-processor runtime.
type NVPConfig struct {
	// BackupEnergyFactor is the per-cycle energy surcharge of backing up
	// the architectural state every cycle into non-volatile flip-flops
	// (the backup-every-cycle policy of Ma et al.). 0.3 means +30%.
	BackupEnergyFactor float64
	// WakeupCycles is the fixed cost of resuming after an outage.
	WakeupCycles uint32
}

// DefaultNVPConfig uses a 30% per-cycle backup surcharge and a short wakeup,
// consistent with published NV flip-flop overheads.
func DefaultNVPConfig() NVPConfig {
	return NVPConfig{BackupEnergyFactor: 0.3, WakeupCycles: 8}
}

// NVP is the non-volatile processor policy: architectural state persists
// across outages, so the core resumes in place. There are no checkpoints
// and no re-execution; the cost is a continuous backup energy surcharge.
type NVP struct {
	cfg NVPConfig
	r   *Runner
}

// NewNVP builds the policy with the given configuration.
func NewNVP(cfg NVPConfig) *NVP { return &NVP{cfg: cfg} }

// Name implements Policy.
func (n *NVP) Name() string { return "nvp" }

// Checkpoints implements Policy. State is implicitly checkpointed every
// cycle; the discrete count is therefore not meaningful and reported as 0.
func (n *NVP) Checkpoints() uint64 { return 0 }

// Attach implements Policy.
func (n *NVP) Attach(r *Runner) {
	n.r = r
	r.Mem.SetTracking(false)
	r.CPU.BeforeStore = nil
}

// BatchHorizon implements Policy: NVP has no watchdog, so only the energy
// headroom bounds a batch; the per-cycle backup surcharge is the drain
// bound the runner must assume.
func (n *NVP) BatchHorizon() (uint64, float64) {
	return math.MaxUint64, n.cfg.BackupEnergyFactor * n.r.Supply.Config().EnergyPerCycle
}

// AfterStep implements Policy: charge the per-cycle backup surcharge.
func (n *NVP) AfterStep(cost cpu.Cost) (uint32, float64) {
	extra := float64(cost.Cycles) * n.cfg.BackupEnergyFactor * n.r.Supply.Config().EnergyPerCycle
	return 0, extra
}

// OnOutage implements Policy: architectural state is preserved in NV
// flip-flops. Only the (volatile SRAM-based) memo table is lost.
func (n *NVP) OnOutage() {
	if n.r.CPU.Memo != nil {
		n.r.CPU.Memo.Invalidate()
	}
	n.r.Mem.PowerLoss()
}

// OnRestore implements Policy: resume in place, honoring skim points.
func (n *NVP) OnRestore() (uint32, float64) {
	n.r.consumeSkim()
	return n.cfg.WakeupCycles, 0
}
