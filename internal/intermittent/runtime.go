// Package intermittent implements the two forward-progress runtimes the
// paper evaluates WN on:
//
//   - Clank: a checkpoint-based volatile processor. Volatile register state
//     is checkpointed to non-volatile memory when a watchdog interval
//     expires or when a store is about to violate idempotency (write-after-
//     read to non-volatile data since the last checkpoint). After a power
//     outage the core restores the last checkpoint and re-executes.
//
//   - NVP: a non-volatile processor that backs up its architectural state
//     every cycle (modeled as a per-cycle energy surcharge). After an
//     outage it resumes in place with no re-execution.
//
// Both runtimes honor skim points: if the non-volatile skim register was
// armed by an SKM instruction, the restore path jumps to the armed target —
// decoupling the backup location from the restore location — so the
// application takes its current approximate result as-is and moves on.
package intermittent

import (
	"errors"
	"fmt"

	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// Policy is a forward-progress runtime strategy.
type Policy interface {
	// Name identifies the policy ("clank", "nvp").
	Name() string
	// Attach binds the policy to a device and resets its state.
	Attach(r *Runner)
	// AfterStep reports runtime overhead incurred by the instruction that
	// just executed (checkpoints, per-cycle backup).
	AfterStep(cost cpu.Cost) (extraCycles uint32, extraEnergy float64)
	// OnOutage handles a brown-out.
	OnOutage()
	// OnRestore handles power returning; it must leave the CPU ready to
	// execute and report the restore overhead.
	OnRestore() (extraCycles uint32, extraEnergy float64)
	// Checkpoints returns how many checkpoints the policy has taken.
	Checkpoints() uint64
	// BatchHorizon reports the constraints under which the batched executor
	// may run without per-instruction policy observation: no event that
	// inspects CPU state (a watchdog checkpoint) may fire strictly inside
	// the next `cycles` cycles, and `energyPerCycle` bounds the extra
	// per-cycle energy AfterStep charges within that window. A zero horizon
	// forces the runner back to the per-instruction reference path.
	BatchHorizon() (cycles uint64, energyPerCycle float64)
}

// Result summarizes a run to completion.
type Result struct {
	Halted       bool
	SkimTaken    bool   // run ended via a skim-point jump
	CyclesOn     uint64 // active execution cycles (incl. runtime overhead)
	CyclesOff    uint64 // cycles spent waiting for recharge
	Instructions uint64
	Outages      uint64
	Checkpoints  uint64
	EnergyDrawn  float64
}

// TotalCycles is wall-clock completion time in cycles.
func (r Result) TotalCycles() uint64 { return r.CyclesOn + r.CyclesOff }

// ErrOutOfPower reports that the harvest trace can no longer recharge the
// device (e.g. a zero-power tail).
var ErrOutOfPower = errors.New("intermittent: supply cannot recharge to V_on")

// ErrCycleBudget reports that the run exceeded its safety cycle budget.
var ErrCycleBudget = errors.New("intermittent: cycle budget exhausted (runaway program?)")

// Runner drives a CPU over a Supply under a Policy until the program halts.
type Runner struct {
	CPU    *cpu.CPU
	Mem    *mem.Memory
	Supply *energy.Supply
	Policy Policy

	// MaxCycles bounds total active cycles as a runaway guard; zero means
	// a generous default (2^40).
	MaxCycles uint64

	// OnProgress, when non-nil, is invoked after every instruction with
	// the running active-cycle count. Experiments use it to sample output
	// quality over time. Setting it disables the batched fast path so the
	// callback keeps its per-instruction granularity.
	OnProgress func(cyclesOn uint64)

	// Reference forces the per-instruction Step loop even where the batched
	// executor applies. The differential tests use it to prove the batched
	// path reproduces the reference byte for byte.
	Reference bool

	pendingCycles uint32
	pendingEnergy float64
	skimTaken     bool
}

// NewRunner wires a device together and attaches the policy.
func NewRunner(c *cpu.CPU, m *mem.Memory, s *energy.Supply, p Policy) *Runner {
	r := &Runner{CPU: c, Mem: m, Supply: s, Policy: p}
	p.Attach(r)
	return r
}

// consumeSkim applies an armed skim point: the restore path jumps to the
// armed target instead of the checkpoint PC (Section III-C).
func (r *Runner) consumeSkim() {
	if r.CPU.SkimArmed {
		r.CPU.Regs[isa.PC] = r.CPU.SkimTarget
		r.CPU.DisarmSkim()
		r.skimTaken = true
	}
}

// ForceFailure drives the policy through one full power-failure /
// restore round trip at the current instruction boundary, bypassing the
// supply model. The fault injector uses it to kill power at an exact
// cycle regardless of how much harvested energy the trace would have
// delivered. Restore overheads accumulate like any other policy charge
// and are applied on the next executed instruction.
func (r *Runner) ForceFailure() {
	r.Policy.OnOutage()
	ec, ee := r.Policy.OnRestore()
	r.pendingCycles += ec
	r.pendingEnergy += ee
}

// RunToHalt executes until HALT, riding through power outages per the
// policy. The caller is responsible for loading the program, installing
// inputs and resetting the CPU beforehand.
//
// Unless Reference is set or an OnProgress callback needs per-instruction
// granularity, execution goes through the batched fast path: the CPU runs
// uninterrupted windows via RunUntil sized so that no checkpoint, brown-out,
// or cycle-budget event can fall strictly inside a window, and the recorded
// per-instruction costs are replayed through the policy and supply in
// reference order. Results are byte-identical to the reference loop.
func (r *Runner) RunToHalt() (Result, error) {
	if r.Reference || r.OnProgress != nil {
		return r.runReference()
	}
	return r.runBatched()
}

// runReference is the per-instruction reference loop. Its observable
// behavior is the contract the batched path must reproduce exactly.
func (r *Runner) runReference() (Result, error) {
	maxCycles := r.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	r.skimTaken = false

	startOn := r.Supply.CyclesOn
	startOff := r.Supply.CyclesOff
	startOut := r.Supply.Outages
	startDrawn := r.Supply.EnergyDrawn
	startInst := r.CPU.Stats.Instructions

	outage := func() error {
		r.Policy.OnOutage()
		if _, ok := r.Supply.WaitForPower(); !ok {
			return ErrOutOfPower
		}
		ec, ee := r.Policy.OnRestore()
		r.pendingCycles += ec
		r.pendingEnergy += ee
		return nil
	}

	for !r.CPU.Halted {
		if r.Supply.CyclesOn-startOn > maxCycles {
			return r.result(startOn, startOff, startOut, startDrawn, startInst), ErrCycleBudget
		}
		// Pay pending runtime overhead (restore costs) first.
		if r.pendingCycles > 0 || r.pendingEnergy > 0 {
			pc, pe := r.pendingCycles, r.pendingEnergy
			r.pendingCycles, r.pendingEnergy = 0, 0
			if !r.Supply.Spend(pc, pe) {
				if err := outage(); err != nil {
					return r.result(startOn, startOff, startOut, startDrawn, startInst), err
				}
				continue
			}
		}
		cost, err := r.CPU.Step()
		if err != nil {
			return r.result(startOn, startOff, startOut, startDrawn, startInst), fmt.Errorf("intermittent: fault: %w", err)
		}
		ec, ee := r.Policy.AfterStep(cost)
		nvEnergy := float64(cost.NVWrites) * r.Supply.Config().NVWriteEnergy
		ok := r.Supply.Spend(cost.Cycles+ec, nvEnergy+ee)
		if r.OnProgress != nil {
			r.OnProgress(r.Supply.CyclesOn - startOn)
		}
		if !ok {
			if err := outage(); err != nil {
				return r.result(startOn, startOff, startOut, startDrawn, startInst), err
			}
		}
	}
	return r.result(startOn, startOff, startOut, startDrawn, startInst), nil
}

// Batched-executor window sizing. batchSlack keeps a window clear of the
// brown-out threshold: RunUntil overshoots its budget by less than
// cpu.MaxInstrCycles, and the first replayed AfterStep may surface one
// pending checkpoint (~40 cycles plus 17 NV-word writes) accrued just
// before the window. 64 cycles of worst-case drain covers both with
// margin. minBatch is the smallest window worth entering the batched
// executor for; below it the runner single-steps the reference path.
const (
	batchSlack = 64
	minBatch   = 96
)

// runBatched drives the CPU through RunUntil windows and replays the
// recorded per-instruction costs through Policy.AfterStep and Supply.Spend
// in exactly the reference order, so every energy draw, harvest charge,
// checkpoint, and outage lands on the same instruction boundary with the
// same floating-point values as runReference.
func (r *Runner) runBatched() (Result, error) {
	maxCycles := r.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	r.skimTaken = false

	startOn := r.Supply.CyclesOn
	startOff := r.Supply.CyclesOff
	startOut := r.Supply.Outages
	startDrawn := r.Supply.EnergyDrawn
	startInst := r.CPU.Stats.Instructions

	outage := func() error {
		r.Policy.OnOutage()
		if _, ok := r.Supply.WaitForPower(); !ok {
			return ErrOutOfPower
		}
		ec, ee := r.Policy.OnRestore()
		r.pendingCycles += ec
		r.pendingEnergy += ee
		return nil
	}

	cfg := r.Supply.Config()
	costs := make([]cpu.Cost, 0, 4096)

	// stepOnce is one reference-loop iteration body: Step (with hook
	// fidelity), AfterStep, Spend, outage handling.
	stepOnce := func() error {
		cost, err := r.CPU.Step()
		if err != nil {
			return fmt.Errorf("intermittent: fault: %w", err)
		}
		ec, ee := r.Policy.AfterStep(cost)
		nvEnergy := float64(cost.NVWrites) * cfg.NVWriteEnergy
		if !r.Supply.Spend(cost.Cycles+ec, nvEnergy+ee) {
			return outage()
		}
		return nil
	}

	forceStep := false
	for !r.CPU.Halted {
		if r.Supply.CyclesOn-startOn > maxCycles {
			return r.result(startOn, startOff, startOut, startDrawn, startInst), ErrCycleBudget
		}
		// Pay pending runtime overhead (restore costs) first.
		if r.pendingCycles > 0 || r.pendingEnergy > 0 {
			pc, pe := r.pendingCycles, r.pendingEnergy
			r.pendingCycles, r.pendingEnergy = 0, 0
			if !r.Supply.Spend(pc, pe) {
				if err := outage(); err != nil {
					return r.result(startOn, startOff, startOut, startDrawn, startInst), err
				}
				continue
			}
		}

		// Size a window in which nothing can interrupt the batch: the
		// policy's horizon (cycles until a watchdog checkpoint may fire),
		// the energy headroom under worst-case drain (no brown-out strictly
		// inside the window), and the runaway budget (ErrCycleBudget fires
		// at the same instruction as the reference loop).
		var budget uint64
		if !forceStep {
			horizon, surcharge := r.Policy.BatchHorizon()
			if horizon > 0 {
				drain := cfg.EnergyPerCycle + cfg.NVWriteEnergy + surcharge
				nSafe := uint64(r.Supply.Headroom() / drain)
				if nSafe > minBatch+batchSlack {
					budget = nSafe - batchSlack
					if horizon < budget {
						budget = horizon
					}
				}
			}
			if remaining := maxCycles - (r.Supply.CyclesOn - startOn); budget > remaining+1 {
				budget = remaining + 1
			}
		}
		forceStep = false

		if budget < minBatch {
			// Too close to a brown-out or checkpoint boundary, or the next
			// instruction needs the store hook: take one reference step so
			// hooks and outages land exactly where the reference loop puts
			// them.
			if err := stepOnce(); err != nil {
				return r.result(startOn, startOff, startOut, startDrawn, startInst), err
			}
			continue
		}

		costs = costs[:0]
		batch, err := r.CPU.Run(budget, &costs)
		// Replay first: the instructions before a fault (or a StopStore /
		// StopSkim boundary) executed and must pay energy in order.
		for _, cost := range costs {
			ec, ee := r.Policy.AfterStep(cost)
			nvEnergy := float64(cost.NVWrites) * cfg.NVWriteEnergy
			if !r.Supply.Spend(cost.Cycles+ec, nvEnergy+ee) {
				// By construction this can only be the window's final
				// instruction (see batchSlack); handle it like the
				// reference loop would.
				if oerr := outage(); oerr != nil {
					return r.result(startOn, startOff, startOut, startDrawn, startInst), oerr
				}
			}
		}
		if err != nil {
			return r.result(startOn, startOff, startOut, startDrawn, startInst), fmt.Errorf("intermittent: fault: %w", err)
		}
		// A store that needs the BeforeStore hook is executed through Step
		// on the next iteration, after the usual top-of-loop housekeeping.
		forceStep = batch.Reason == cpu.StopStore
	}
	return r.result(startOn, startOff, startOut, startDrawn, startInst), nil
}

func (r *Runner) result(startOn, startOff, startOut uint64, startDrawn float64, startInst uint64) Result {
	return Result{
		Halted:       r.CPU.Halted,
		SkimTaken:    r.skimTaken,
		CyclesOn:     r.Supply.CyclesOn - startOn,
		CyclesOff:    r.Supply.CyclesOff - startOff,
		Instructions: r.CPU.Stats.Instructions - startInst,
		Outages:      r.Supply.Outages - startOut,
		Checkpoints:  r.Policy.Checkpoints(),
		EnergyDrawn:  r.Supply.EnergyDrawn - startDrawn,
	}
}
