package nn_test

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/cpu"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
	"whatsnext/internal/nn"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

// tinyParams returns fault-campaign-sized dimensions per benchmark.
func tinyParams(b *workloads.Benchmark) workloads.Params {
	switch b.Name {
	case "NNConv":
		return workloads.Params{ImgW: 6, ImgH: 5, K: 3}
	case "NNFC":
		return workloads.Params{Windows: 3, N: 4, WindowSize: 8}
	default: // pooling
		return workloads.Params{ImgW: 8, ImgH: 8}
	}
}

func compileVariant(t *testing.T, b *workloads.Benchmark, p workloads.Params,
	mode compiler.Mode, bits int, opts compiler.Options) *compiler.Compiled {
	t.Helper()
	opts.Mode = mode
	c, err := compiler.Compile(b.Build(p, bits, true), opts)
	if err != nil {
		t.Fatalf("%s %v bits=%d: %v", b.Name, mode, bits, err)
	}
	return c
}

// runContinuous executes a compiled kernel to completion under unlimited
// power and returns the display-domain output.
func runContinuous(t *testing.T, c *compiler.Compiled, in map[string][]int64, out string) []float64 {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig(), core.ContinuousTrace())
	if err := sys.Load(c); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunInput(in); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Output(out)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: output[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestRegistered checks the init-time extension registration: every NN
// benchmark must resolve through the workloads registry, which is what
// lets the sweep resolvers and wnserved serve NN specs.
func TestRegistered(t *testing.T) {
	for _, b := range nn.All() {
		got, err := workloads.ByName(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != b.Name {
			t.Fatalf("ByName(%q) returned %q", b.Name, got.Name)
		}
	}
}

// TestGoldenAgreement checks that every exact lowering of every NN kernel
// — precise, precise with embedded progress, and the full-pass anytime
// modes with embedded progress — reproduces the native golden model bit
// for bit in the display domain.
func TestGoldenAgreement(t *testing.T) {
	embed := compiler.Options{ProgressEmbed: true}
	for _, b := range nn.All() {
		p := tinyParams(b)
		in := b.Inputs(p, 7)
		golden := b.Golden(p, in)

		got := runContinuous(t, compileVariant(t, b, p, compiler.ModePrecise, 8, compiler.Options{}), in, b.Output)
		assertEqual(t, b.Name+"/precise", got, golden)

		got = runContinuous(t, compileVariant(t, b, p, compiler.ModePrecise, 8, embed), in, b.Output)
		assertEqual(t, b.Name+"/precise+embed", got, golden)

		if b.Mode == compiler.ModePrecise {
			continue
		}
		for _, bits := range []int{8, 4, 2} {
			// All subword passes retained: the fused store-once build is
			// exact regardless of the subword width.
			got = runContinuous(t, compileVariant(t, b, p, b.Mode, bits, embed), in, b.Output)
			assertEqual(t, b.Name+"/full+embed", got, golden)
		}
		// A single 8-bit pass covers the whole 8-bit activation: the
		// cheapest truncated build is still exact at bits=8.
		got = runContinuous(t, compileVariant(t, b, p, b.Mode, 8,
			compiler.Options{ProgressEmbed: true, MaxPasses: 1}), in, b.Output)
		assertEqual(t, b.Name+"/p1+embed", got, golden)
	}
}

// TestTruncationDegradesMonotonically pins the accuracy-vs-energy axis:
// single-pass truncated builds get less accurate as the retained subword
// narrows (8 bits exact, then nondecreasing error), while never producing
// the reserved sentinel value.
func TestTruncationDegradesMonotonically(t *testing.T) {
	for _, b := range nn.All() {
		if b.Mode == compiler.ModePrecise {
			continue
		}
		p := tinyParams(b)
		in := b.Inputs(p, 7)
		golden := b.Golden(p, in)
		prev := -1.0
		for _, bits := range []int{8, 4, 2} {
			c := compileVariant(t, b, p, b.Mode, bits,
				compiler.Options{ProgressEmbed: true, MaxPasses: 1})
			got := runContinuous(t, c, in, b.Output)
			e := quality.NRMSE(got, golden)
			if bits == 8 && e != 0 {
				t.Fatalf("%s p1 at 8 bits: NRMSE %v, want exact", b.Name, e)
			}
			if e < prev {
				t.Fatalf("%s p1 at %d bits: NRMSE %v below wider pass %v", b.Name, bits, e, prev)
			}
			prev = e
		}
		if prev == 0 {
			t.Fatalf("%s: truncation to 2 bits introduced no error; axis is degenerate", b.Name)
		}
	}
}

// TestSentinelNeverCollides checks the reserved-value argument: no raw
// committed output of any exact build equals the progress sentinel, so a
// resume scan can never mistake data for an uncommitted element.
func TestSentinelNeverCollides(t *testing.T) {
	for _, b := range nn.All() {
		p := tinyParams(b)
		in := b.Inputs(p, 7)
		c := compileVariant(t, b, p, compiler.ModePrecise, 8, compiler.Options{ProgressEmbed: true})
		sys := core.NewSystem(core.DefaultConfig(), core.ContinuousTrace())
		if err := sys.Load(c); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunInput(in); err != nil {
			t.Fatal(err)
		}
		raw, err := c.Layout.Extract(sys.Mem, b.Output)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range raw {
			if uint32(v) == nn.Sentinel {
				t.Fatalf("%s: committed output[%d] equals the sentinel", b.Name, i)
			}
		}
	}
}

// nnRuntimes are the forward-progress runtimes the injection campaigns
// certify under, including the zero-hardware Restart runtime that relies
// exclusively on the embedded progress for resumption.
var nnRuntimes = []struct {
	name   string
	policy func() intermittent.Policy
}{
	{"clank", func() intermittent.Policy { return intermittent.NewClank(intermittent.DefaultClankConfig()) }},
	{"nvp", func() intermittent.Policy { return intermittent.NewNVP(intermittent.DefaultNVPConfig()) }},
	{"undolog", func() intermittent.Policy { return intermittent.NewUndoLog(intermittent.DefaultUndoLogConfig()) }},
	{"restart", func() intermittent.Policy { return intermittent.NewRestart(intermittent.DefaultRestartConfig()) }},
	{"naive", func() intermittent.Policy { return intermittent.NewNaive(intermittent.DefaultNaiveConfig()) }},
}

// TestFaultInjectionClean runs exhaustive power-failure campaigns over
// every progress-embedded NN build under every runtime: kills at every
// instruction boundary of the golden run (capped by even sampling), which
// includes boundaries in the middle of a tile's accumulation and between
// a tile's store and its loop back-edge. Every injected run must
// reproduce the uninterrupted NV image bit-exactly — under Restart this
// is possible only by rescanning the embedded progress markers.
func TestFaultInjectionClean(t *testing.T) {
	for _, b := range nn.All() {
		b := b
		p := tinyParams(b)
		in := b.Inputs(p, 7)
		variants := []struct {
			label string
			mode  compiler.Mode
			bits  int
			opts  compiler.Options
		}{
			{"precise+embed", compiler.ModePrecise, 8, compiler.Options{ProgressEmbed: true}},
		}
		if b.Mode != compiler.ModePrecise {
			variants = append(variants,
				struct {
					label string
					mode  compiler.Mode
					bits  int
					opts  compiler.Options
				}{"p1+embed", b.Mode, 4, compiler.Options{ProgressEmbed: true, MaxPasses: 1}})
		}
		for _, v := range variants {
			c := compileVariant(t, b, p, v.mode, v.bits, v.opts)
			target := faultinject.FromCompiled(b.Name, c, in)
			for _, rt := range nnRuntimes {
				t.Run(b.Name+"/"+v.label+"/"+rt.name, func(t *testing.T) {
					rep, err := faultinject.RunLockstep(target,
						faultinject.Config{Policy: rt.policy},
						faultinject.Schedule{Exhaustive: true, MaxPoints: 160})
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Clean() {
						t.Fatalf("%d divergences, first: %s", len(rep.Divergences), rep.Divergences[0])
					}
				})
			}
		}
	}
}

// TestRestartNeedsEmbedding is the negative witness for the progress
// embedding: a conventional multi-pass anytime build accumulates into NVM
// across passes, so restarting it from the entry point re-adds completed
// work and diverges. The same kernel with embedded progress is clean
// (proved above); the embedding is therefore load-bearing, not
// decorative.
func TestRestartNeedsEmbedding(t *testing.T) {
	b := nn.NNConv()
	p := tinyParams(b)
	in := b.Inputs(p, 7)
	c := compileVariant(t, b, p, compiler.ModeSWP, 4, compiler.Options{})
	rep, err := faultinject.Run(
		faultinject.FromCompiled(b.Name, c, in),
		faultinject.Config{Policy: nnRuntimes[3].policy},
		faultinject.Schedule{Points: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("multi-pass accumulate build survived restart-from-entry; negative witness lost")
	}
}

// TestNoSeparateProgressWrites asserts the headline claim of progress
// embedding: a progress-embedded build performs NO non-volatile data
// store outside its own output array — resumption state rides entirely
// in the committed output features. The BeforeStore hook observes every
// data store of a full run.
func TestNoSeparateProgressWrites(t *testing.T) {
	for _, b := range nn.All() {
		p := tinyParams(b)
		in := b.Inputs(p, 7)
		c := compileVariant(t, b, p, compiler.ModePrecise, 8, compiler.Options{ProgressEmbed: true})
		al, err := c.Layout.Of(b.Output)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mem.DefaultConfig()
		m := mem.New(cfg)
		if err := m.LoadProgram(c.Program.Image); err != nil {
			t.Fatal(err)
		}
		if err := c.InstallData(m, in); err != nil {
			t.Fatal(err)
		}
		cp := cpu.New(m)
		var stray []uint32
		cp.BeforeStore = func(addr uint32, size int) {
			if addr < mem.DataBase || addr >= mem.DataBase+uint32(cfg.DataBytes) {
				return // volatile scratch, not NVM
			}
			if addr < al.Base || addr >= al.Base+uint32(al.TotalBytes) {
				stray = append(stray, addr)
			}
		}
		for i := 0; !cp.Halted; i++ {
			if i > 50_000_000 {
				t.Fatalf("%s: run did not halt", b.Name)
			}
			if _, err := cp.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if len(stray) > 0 {
			t.Fatalf("%s: %d NV stores outside the output region, first at %#x",
				b.Name, len(stray), stray[0])
		}
	}
}
