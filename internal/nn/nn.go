// Package nn defines a Stateful-CNN-style neural inference benchmark
// family as tiled, fixed-point compiler kernels: a valid-region conv2d
// feature extractor, a fully-connected classifier layer, and average/max
// pooling — all over the repo's 128x128 synthetic image inputs. Every
// kernel declares an intrinsic progress marker (the last element of each
// output tile), so the progress-embedding compiler mode can lower it to a
// store-once image whose resume frontier lives in the output features
// themselves rather than in separate NVM progress words.
//
// The family registers itself with the workloads ByName registry from
// init, so the sweep resolvers, wnserved, and wncluster can serve NN specs
// unchanged.
package nn

import (
	"math"
	"math/rand"

	"whatsnext/internal/compiler"
	"whatsnext/internal/fixedpoint"
	"whatsnext/internal/workloads"
)

func init() {
	workloads.RegisterExtension(All()...)
}

// All returns the NN layer kernels in pipeline order.
func All() []*workloads.Benchmark {
	return []*workloads.Benchmark{NNConv(), NNFC(), NNPoolAvg(), NNPoolMax()}
}

// Sentinel is the reserved out-of-range output value that marks a
// not-yet-committed feature element. Every NN kernel bounds its true
// outputs far below 2^31, so the sentinel can never collide with data.
const Sentinel uint32 = 0xFFFFFFFF

// PoolWindow is the pooling tile size (a 16-element feature strip). It is
// fixed so that lanes-per-word divides the reduce trip at every subword
// width the SWV lowering supports (2, 4 and 8 bits in 32-bit lanes).
const PoolWindow = 16

// FCClasses is the classifier width of NNFC (MNIST-style 10 classes).
const FCClasses = 10

// convWeights quantizes a float KxK Gaussian to integer weights summing
// exactly to 2^logSum via the fixed-point normalizer, so the display shift
// turns the accumulator into a weighted average of 8-bit activations.
func convWeights(k int) (coef []int64, logSum int) {
	sigma := float64(k) / 3.0
	c := float64(k-1) / 2.0
	ws := make([]float64, k*k)
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			dy, dx := float64(y)-c, float64(x)-c
			ws[y*k+x] = math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
		}
	}
	logSum = 8
	coef, err := fixedpoint.NormalizeWeights(ws, logSum)
	if err != nil {
		panic(err) // Gaussian weights are strictly positive
	}
	return coef, logSum
}

// NNConv: a KxK valid-region convolution layer over 8-bit activations
// held in 16-bit storage (paper-scale: 5x5 over a 128x128 input image,
// producing 124x124 features). One output row is one committed tile; the
// row's last element is the progress marker. The image is the #pragma asp
// operand, so subword pipelining (and its single-pass truncated form)
// applies to the activation loads and multiplies.
func NNConv() *workloads.Benchmark {
	return &workloads.Benchmark{
		Name:          "NNConv",
		Area:          "Neural Inference",
		Mode:          compiler.ModeSWP,
		Output:        "OUT",
		DefaultParams: func() workloads.Params { return workloads.Params{ImgW: 124, ImgH: 124, K: 5} },
		ScaledParams:  func() workloads.Params { return workloads.Params{ImgW: 12, ImgH: 12, K: 3} },
		Build: func(p workloads.Params, bits int, _ bool) *compiler.Kernel {
			w, h, k := p.ImgW, p.ImgH, p.K
			pw := w + k - 1
			_, logSum := convWeights(k)
			return &compiler.Kernel{
				Name: "nnconv",
				Arrays: []compiler.Array{
					{Name: "IMG", ElemBits: 16, Len: pw * (h + k - 1), ValueBits: 8,
						Pragma: compiler.PragmaASP, SubwordBits: bits},
					{Name: "COEF", ElemBits: 16, Len: k * k},
					{Name: "OUT", ElemBits: 32, Len: w * h, Output: true, PostShift: logSum},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "y", N: int64(h), Body: []compiler.Stmt{
						compiler.Loop{Var: "x", N: int64(w), Body: []compiler.Stmt{
							compiler.Assign{
								Array: "OUT",
								Index: compiler.LinSum(compiler.LinVar("y", int64(w), 0), compiler.LinVar("x", 1, 0)),
								Value: compiler.Reduce{Var: "ky", N: int64(k), Body: compiler.Reduce{
									Var: "kx", N: int64(k),
									Body: compiler.Bin{Op: compiler.OpMul,
										A: compiler.Load{Array: "COEF", Index: compiler.LinSum(compiler.LinVar("ky", int64(k), 0), compiler.LinVar("kx", 1, 0))},
										B: compiler.Load{Array: "IMG", Index: compiler.LinSum(
											compiler.LinVar("y", int64(pw), 0), compiler.LinVar("ky", int64(pw), 0),
											compiler.LinVar("x", 1, 0), compiler.LinVar("kx", 1, 0))},
									},
								}},
							},
						}},
					}},
				},
				Progress: &compiler.ProgressInfo{
					Output:   "OUT",
					TileVar:  "y",
					Marker:   compiler.LinVar("y", int64(w), int64(w-1)),
					Sentinel: Sentinel,
				},
			}
		},
		Inputs: func(p workloads.Params, seed int64) map[string][]int64 {
			w, h, k := p.ImgW, p.ImgH, p.K
			coef, _ := convWeights(k)
			img := workloads.SyntheticImage(w+k-1, h+k-1, seed)
			return map[string][]int64{"IMG": img, "COEF": coef}
		},
		Golden: func(p workloads.Params, in map[string][]int64) []float64 {
			w, h, k := p.ImgW, p.ImgH, p.K
			pw := w + k - 1
			_, logSum := convWeights(k)
			img, coef := in["IMG"], in["COEF"]
			out := make([]float64, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					var acc uint32
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							acc += uint32(coef[ky*k+kx]) * uint32(img[(y+ky)*pw+(x+kx)])
						}
					}
					out[y*w+x] = float64(acc >> uint(logSum))
				}
			}
			return out
		},
	}
}

// NNFC: a fully-connected classifier layer, OUT[g][o] = W[o] . X[g] over
// G input samples, O classes and I features per sample. The activations X
// are the #pragma asp operand (8-bit values in 16-bit storage); the
// weights are UQ0.6 fixed-point quantizations of float weights. One
// sample's logit vector is one committed tile; its last class is the
// progress marker.
func NNFC() *workloads.Benchmark {
	const fracBits = 6
	return &workloads.Benchmark{
		Name:          "NNFC",
		Area:          "Neural Inference",
		Mode:          compiler.ModeSWP,
		Output:        "OUT",
		DefaultParams: func() workloads.Params { return workloads.Params{Windows: 16, N: FCClasses, WindowSize: 64} },
		ScaledParams:  func() workloads.Params { return workloads.Params{Windows: 6, N: FCClasses, WindowSize: 32} },
		Build: func(p workloads.Params, bits int, _ bool) *compiler.Kernel {
			g, o, i := int64(p.Windows), int64(p.N), int64(p.WindowSize)
			return &compiler.Kernel{
				Name: "nnfc",
				Arrays: []compiler.Array{
					{Name: "X", ElemBits: 16, Len: p.Windows * p.WindowSize, ValueBits: 8,
						Pragma: compiler.PragmaASP, SubwordBits: bits},
					{Name: "W", ElemBits: 16, Len: p.N * p.WindowSize},
					{Name: "OUT", ElemBits: 32, Len: p.Windows * p.N, Output: true, PostShift: fracBits},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "g", N: g, Body: []compiler.Stmt{
						compiler.Loop{Var: "o", N: o, Body: []compiler.Stmt{
							compiler.Assign{
								Array: "OUT",
								Index: compiler.LinSum(compiler.LinVar("g", o, 0), compiler.LinVar("o", 1, 0)),
								Value: compiler.Reduce{Var: "i", N: i, Body: compiler.Bin{
									Op: compiler.OpMul,
									A:  compiler.Load{Array: "W", Index: compiler.LinSum(compiler.LinVar("o", i, 0), compiler.LinVar("i", 1, 0))},
									B:  compiler.Load{Array: "X", Index: compiler.LinSum(compiler.LinVar("g", i, 0), compiler.LinVar("i", 1, 0))},
								}},
							},
						}},
					}},
				},
				Progress: &compiler.ProgressInfo{
					Output:   "OUT",
					TileVar:  "g",
					Marker:   compiler.LinVar("g", o, o-1),
					Sentinel: Sentinel,
				},
			}
		},
		Inputs: func(p workloads.Params, seed int64) map[string][]int64 {
			rng := rand.New(rand.NewSource(seed))
			x := make([]int64, p.Windows*p.WindowSize)
			for i := range x {
				x[i] = int64(rng.Intn(256))
			}
			// Weights are a fixed property of the model, not of the input
			// sample: quantize the same float weights for every seed.
			wrng := rand.New(rand.NewSource(0x77e16))
			wf := make([]float64, p.N*p.WindowSize)
			for i := range wf {
				wf[i] = wrng.Float64()
			}
			q := fixedpoint.Q{IntBits: 0, FracBits: fracBits}
			return map[string][]int64{"X": x, "W": fixedpoint.ConvertSlice(q, wf)}
		},
		Golden: func(p workloads.Params, in map[string][]int64) []float64 {
			g, o, n := p.Windows, p.N, p.WindowSize
			x, w := in["X"], in["W"]
			out := make([]float64, g*o)
			for s := 0; s < g; s++ {
				for c := 0; c < o; c++ {
					var acc uint32
					for i := 0; i < n; i++ {
						acc += uint32(w[c*n+i]) * uint32(x[s*n+i])
					}
					out[s*o+c] = float64(acc >> fracBits)
				}
			}
			return out
		},
	}
}

// NNPoolAvg: average pooling over 16-element feature strips of an 8-bit
// activation map, the family's subword-vectorization member. Each strip's
// mean is one committed tile (the marker is the output element itself).
func NNPoolAvg() *workloads.Benchmark {
	return &workloads.Benchmark{
		Name:          "NNPoolAvg",
		Area:          "Neural Inference",
		Mode:          compiler.ModeSWV,
		Output:        "OUT",
		DefaultParams: func() workloads.Params { return workloads.Params{ImgW: 128, ImgH: 128} },
		ScaledParams:  func() workloads.Params { return workloads.Params{ImgW: 16, ImgH: 16} },
		Build: func(p workloads.Params, bits int, provisioned bool) *compiler.Kernel {
			tiles := p.ImgW * p.ImgH / PoolWindow
			return &compiler.Kernel{
				Name: "nnpoolavg",
				Arrays: []compiler.Array{
					{Name: "S", ElemBits: 16, Len: p.ImgW * p.ImgH, ValueBits: 8,
						Pragma: compiler.PragmaASV, SubwordBits: bits, Provisioned: provisioned},
					{Name: "OUT", ElemBits: 32, Len: tiles, Output: true},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "j", N: int64(tiles), Body: []compiler.Stmt{
						compiler.Assign{
							Array: "OUT", Index: compiler.LinVar("j", 1, 0),
							Value: compiler.Bin{Op: compiler.OpShr,
								A: compiler.Reduce{Var: "i", N: PoolWindow,
									Body: compiler.Load{Array: "S", Index: compiler.LinSum(
										compiler.LinVar("j", PoolWindow, 0), compiler.LinVar("i", 1, 0))}},
								B: compiler.Const{V: 4},
							},
						},
					}},
				},
				Progress: &compiler.ProgressInfo{
					Output:   "OUT",
					TileVar:  "j",
					Marker:   compiler.LinVar("j", 1, 0),
					Sentinel: Sentinel,
				},
			}
		},
		Inputs: func(p workloads.Params, seed int64) map[string][]int64 {
			return map[string][]int64{"S": workloads.SyntheticImage(p.ImgW, p.ImgH, seed)}
		},
		Golden: func(p workloads.Params, in map[string][]int64) []float64 {
			s := in["S"]
			out := make([]float64, len(s)/PoolWindow)
			for j := range out {
				var acc uint32
				for i := 0; i < PoolWindow; i++ {
					acc += uint32(s[j*PoolWindow+i])
				}
				out[j] = float64(acc >> 4)
			}
			return out
		},
	}
}

// NNPoolMax: max pooling over the same 16-element strips. The max fold is
// not distributive over subword decomposition, so this member lowers
// precisely only (Mode is ModePrecise); it still embeds progress, since
// store-once tiling is orthogonal to the fold operator.
func NNPoolMax() *workloads.Benchmark {
	return &workloads.Benchmark{
		Name:          "NNPoolMax",
		Area:          "Neural Inference",
		Mode:          compiler.ModePrecise,
		Output:        "OUT",
		DefaultParams: func() workloads.Params { return workloads.Params{ImgW: 128, ImgH: 128} },
		ScaledParams:  func() workloads.Params { return workloads.Params{ImgW: 16, ImgH: 16} },
		Build: func(p workloads.Params, _ int, _ bool) *compiler.Kernel {
			tiles := p.ImgW * p.ImgH / PoolWindow
			return &compiler.Kernel{
				Name: "nnpoolmax",
				Arrays: []compiler.Array{
					{Name: "S", ElemBits: 16, Len: p.ImgW * p.ImgH},
					{Name: "OUT", ElemBits: 32, Len: tiles, Output: true},
				},
				Body: []compiler.Stmt{
					compiler.Loop{Var: "j", N: int64(tiles), Body: []compiler.Stmt{
						compiler.Assign{
							Array: "OUT", Index: compiler.LinVar("j", 1, 0),
							Value: compiler.Reduce{Var: "i", N: PoolWindow, Op: compiler.OpMax,
								Body: compiler.Load{Array: "S", Index: compiler.LinSum(
									compiler.LinVar("j", PoolWindow, 0), compiler.LinVar("i", 1, 0))}},
						},
					}},
				},
				Progress: &compiler.ProgressInfo{
					Output:   "OUT",
					TileVar:  "j",
					Marker:   compiler.LinVar("j", 1, 0),
					Sentinel: Sentinel,
				},
			}
		},
		Inputs: func(p workloads.Params, seed int64) map[string][]int64 {
			return map[string][]int64{"S": workloads.SyntheticImage(p.ImgW, p.ImgH, seed)}
		},
		Golden: func(p workloads.Params, in map[string][]int64) []float64 {
			s := in["S"]
			out := make([]float64, len(s)/PoolWindow)
			for j := range out {
				var m uint32
				for i := 0; i < PoolWindow; i++ {
					if v := uint32(s[j*PoolWindow+i]); v > m {
						m = v
					}
				}
				out[j] = float64(m)
			}
			return out
		},
	}
}
