package serve

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"whatsnext/internal/sweep"
)

// FederatedCache is a sweep.Cache that reads through to an upstream node's
// cache-peek endpoint (GET /v1/cache/{key}) when the local layer misses.
// This is the worker half of cluster cache federation: a worker about to
// simulate a cell first asks the coordinator — which has merged every
// result any worker has ever produced — and only simulates on a double
// miss. Writes stay local; the upstream fills itself from completed shard
// results, so federation never pushes bytes upward.
//
// Upstream lookups are best-effort: a slow or unreachable upstream degrades
// to a plain local cache (bounded by the peek timeout), never an error.
type FederatedCache struct {
	local    sweep.Cache
	upstream string
	hc       *http.Client

	hits, misses, errors atomic.Int64
}

// NewFederatedCache wraps local with read-through to the upstream base URL
// (e.g. the coordinator's "http://host:port"). timeout bounds each peek;
// <= 0 selects 2s.
func NewFederatedCache(local sweep.Cache, upstream string, timeout time.Duration) *FederatedCache {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &FederatedCache{
		local:    local,
		upstream: strings.TrimRight(upstream, "/"),
		hc:       &http.Client{Timeout: timeout},
	}
}

// Get serves from the local layer, then the upstream peek endpoint. An
// upstream hit is copied into the local layer so the next lookup is free.
func (c *FederatedCache) Get(key string) ([]byte, bool) {
	if b, ok := c.local.Get(key); ok {
		return b, true
	}
	if !sweep.ValidCacheKey(key) {
		return nil, false
	}
	resp, err := c.hc.Get(c.upstream + "/v1/cache/" + key)
	if err != nil {
		c.errors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.misses.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		c.errors.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.local.Put(key, b)
	return b, true
}

// Put stores only in the local layer.
func (c *FederatedCache) Put(key string, val []byte) error { return c.local.Put(key, val) }

// Evictions forwards the local layer's eviction count when it has one.
func (c *FederatedCache) Evictions() int64 {
	if ec, ok := c.local.(sweep.EvictionCounter); ok {
		return ec.Evictions()
	}
	return 0
}

// FederationStats reports upstream peek outcomes: hits served by the
// upstream, misses, and transport errors (upstream unreachable or slow).
func (c *FederatedCache) FederationStats() (hits, misses, errors int64) {
	return c.hits.Load(), c.misses.Load(), c.errors.Load()
}
