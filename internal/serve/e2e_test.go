package serve_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"whatsnext/internal/experiments"
	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// TestServerTable1ByteIdentical is the acceptance check for the service
// layer: a Table I sweep submitted over HTTP must return results
// byte-identical to running the same jobs through a local sweep.Engine.
// That holds because only specs travel — the server reconstructs each cell
// from the experiments resolver registry and the determinism contract makes
// the encoded result a pure function of the spec.
func TestServerTable1ByteIdentical(t *testing.T) {
	proto := experiments.DefaultProtocol()
	specs := experiments.Table1Specs(proto)
	jobs, err := experiments.ResolveSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}

	local, err := sweep.New(sweep.Options{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Resolver: experiments.ResolveSpec,
		Workers:  4,
		Cache:    sweep.NewMemoryCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	remote, err := serve.NewClient(ts.URL).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote returned %d results, local %d", len(remote), len(local))
	}
	for i := range local {
		if !bytes.Equal(remote[i], local[i]) {
			t.Errorf("cell %d (%s): remote bytes differ from local\nremote: %s\nlocal:  %s",
				i, specs[i].Kernel, remote[i], local[i])
		}
	}

	// A second submission of the same specs hits the server's cache and must
	// still return the identical bytes.
	again, err := serve.NewClient(ts.URL).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if !bytes.Equal(again[i], local[i]) {
			t.Errorf("cell %d: cached rerun bytes differ", i)
		}
	}

	// The rows must also decode into the same Table I the in-process path
	// produces, proving the resolver registry and the study enumeration
	// cannot drift apart.
	direct, err := experiments.Table1(proto)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(remote) {
		t.Fatalf("Table1 has %d rows, sweep %d", len(direct), len(remote))
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestProtocolOverHTTP wires the client into a Protocol as its Runner, so a
// whole study runs remotely, and checks it matches the local study.
func TestProtocolOverHTTP(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Resolver: experiments.ResolveSpec,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	local := experiments.DefaultProtocol()
	remote := local
	remote.Runner = serve.NewClient(ts.URL)

	want, err := experiments.Table1(local)
	if err != nil {
		t.Fatal(err)
	}
	got, err := experiments.Table1(remote)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("remote study: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d differs: remote %+v local %+v", i, got[i], want[i])
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
