package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"whatsnext/internal/sweep"
)

// Job states. A job is terminal in StateDone, StateFailed or StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Event is one NDJSON line of a job stream. Three shapes share it:
// "progress" (a cell finished: Index, Spec, CacheHit, WallNS, Done/Total),
// "result" (a cell's encoded result, emitted in submission order once the
// job completes), and "done" (the terminal event: State, Error, CacheHits).
type Event struct {
	Type      string          `json:"type"`
	Index     int             `json:"index,omitempty"`
	Spec      *sweep.Spec     `json:"spec,omitempty"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	WallNS    int64           `json:"wall_ns,omitempty"`
	Done      int             `json:"done,omitempty"`
	Total     int             `json:"total,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	State     string          `json:"state,omitempty"`
	Error     string          `json:"error,omitempty"`
	CacheHits int64           `json:"cache_hits,omitempty"`
}

// jobStatus is the GET /v1/jobs/{id} body (results only when done).
type jobStatus struct {
	ID        string            `json:"id"`
	State     string            `json:"state"`
	Cells     int               `json:"cells"`
	Done      int               `json:"done"`
	CacheHits int64             `json:"cache_hits"`
	Error     string            `json:"error,omitempty"`
	Submitted time.Time         `json:"submitted"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	Results   []json.RawMessage `json:"results,omitempty"`
}

// job is one accepted submission: its specs, the resolved closures, and an
// append-only event log that late stream subscribers replay from the start,
// so every subscriber sees the same complete, ordered stream.
type job struct {
	id      string
	specs   []sweep.Spec
	jobs    []sweep.Job
	timeout time.Duration

	mu        sync.Mutex
	state     string
	errMsg    string
	results   []json.RawMessage
	doneCells int
	cacheHits int64
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    []json.RawMessage
	changed   chan struct{} // closed and replaced on every append
}

func newJob(id string, specs []sweep.Spec, jobs []sweep.Job, timeout time.Duration) *job {
	return &job{
		id:        id,
		specs:     specs,
		jobs:      jobs,
		timeout:   timeout,
		state:     StateQueued,
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
}

// appendLocked adds an event line and wakes the stream subscribers. Caller
// holds j.mu.
func (j *job) appendLocked(e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return // events are built from marshalable fields; unreachable
	}
	j.events = append(j.events, b)
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
}

// progress records one engine progress event under job-local counters.
func (j *job) progress(p sweep.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.doneCells++
	if p.CacheHit {
		j.cacheHits++
	}
	e := Event{
		Type:     "progress",
		Index:    p.Index,
		Spec:     &p.Spec,
		CacheHit: p.CacheHit,
		WallNS:   int64(p.Wall),
		Done:     j.doneCells,
		Total:    len(j.jobs),
	}
	if p.Err != nil {
		e.Error = p.Err.Error()
	}
	j.appendLocked(e)
}

// finish records the sweep outcome: result events in submission order (on
// success), then the terminal event.
func (j *job) finish(results []json.RawMessage, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.results = results
		for i, r := range results {
			j.appendLocked(Event{Type: "result", Index: i, Spec: &j.specs[i], Result: r})
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.appendLocked(Event{Type: "done", State: j.state, Error: j.errMsg, CacheHits: j.cacheHits})
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// status snapshots the job for the JSON API.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:        j.id,
		State:     j.state,
		Cells:     len(j.jobs),
		Done:      j.doneCells,
		CacheHits: j.cacheHits,
		Error:     j.errMsg,
		Submitted: j.submitted,
		Results:   j.results,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// wait returns the event lines from cursor on, blocking until new events
// arrive, the job is terminal, or ctx ends. The second return is true when
// the stream is complete (terminal job and every event delivered).
func (j *job) wait(ctx context.Context, cursor int) ([]json.RawMessage, bool, error) {
	for {
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
		if cursor < len(j.events) {
			batch := j.events[cursor:len(j.events):len(j.events)]
			done := terminal && cursor+len(batch) == len(j.events)
			j.mu.Unlock()
			return batch, done, nil
		}
		if terminal {
			j.mu.Unlock()
			return nil, true, nil
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}
