package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// histogram is a fixed-bucket Prometheus-style histogram of per-cell wall
// times (seconds). Buckets span the simulator's range: a cache hit is ~0,
// a scaled cell is milliseconds, a paper-scale intermittent cell can take
// seconds.
type histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is +Inf
	sum     float64
	samples int64
}

func newHistogram() *histogram {
	bounds := []float64{0.001, 0.01, 0.1, 1, 10, 60}
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
}

// handleMetrics renders the engine and server counters in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	s.mu.Lock()
	queued := len(s.queue)
	queueCap := cap(s.queue)
	inflight := 0
	if s.current != nil {
		inflight = 1
	}
	jobsRetained := len(s.jobs)
	submitted := s.seq
	rejected := s.rejected
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	var jobsDone, jobsFailed, jobsCanceled int64
	for _, st := range s.list() {
		switch st.State {
		case StateDone:
			jobsDone++
		case StateFailed:
			jobsFailed++
		case StateCanceled:
			jobsCanceled++
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("wn_sweep_cells_submitted_total", "Simulation cells handed to the engine.", m.Submitted)
	counter("wn_sweep_cells_done_total", "Cells finished (simulated, cached, errored or skipped).", m.Done)
	counter("wn_sweep_cell_errors_total", "Cells whose Run returned an error.", m.Errors)
	counter("wn_sweep_cache_hits_total", "Result-cache hits.", m.CacheHits)
	counter("wn_sweep_cache_misses_total", "Result-cache misses.", m.CacheMisses)
	counter("wn_sweep_cache_evictions_total", "Entries evicted by the bounded memory cache.", m.CacheEvictions)
	counter("wn_sweep_cache_put_errors_total", "Best-effort cache persistence failures.", m.CachePutErrors)
	counter("wn_sweep_sim_cycles_total", "Simulated device cycles.", int64(m.SimCycles))
	fmt.Fprintf(w, "# HELP wn_sweep_sim_wall_seconds_total Wall-clock seconds spent inside Run closures.\n")
	fmt.Fprintf(w, "# TYPE wn_sweep_sim_wall_seconds_total counter\nwn_sweep_sim_wall_seconds_total %g\n",
		m.SimWall.Seconds())
	gauge("wn_sweep_queue_depth", "Cells submitted but not yet started.", m.QueueDepth)

	counter("wn_serve_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", submitted)
	counter("wn_serve_jobs_rejected_total", "Submissions shed with 429 (queue full or draining).", rejected)
	counter("wn_serve_jobs_done_total", "Jobs finished successfully.", jobsDone)
	counter("wn_serve_jobs_failed_total", "Jobs ending in a cell error.", jobsFailed)
	counter("wn_serve_jobs_canceled_total", "Jobs cancelled by deadline or shutdown.", jobsCanceled)
	gauge("wn_serve_queue_depth", "Jobs accepted but not yet running.", int64(queued))
	gauge("wn_serve_queue_capacity", "Job queue bound.", int64(queueCap))
	gauge("wn_serve_inflight", "Jobs executing right now (0 or 1).", int64(inflight))
	gauge("wn_serve_jobs_retained", "Jobs held for status queries.", int64(jobsRetained))
	gauge("wn_serve_draining", "1 while shutdown is draining the queue.", int64(draining))
	counter("wn_serve_cache_peek_hits_total", "Cache-peek requests answered from the result cache.", s.peekHits.Load())
	counter("wn_serve_cache_peek_misses_total", "Cache-peek requests that found nothing.", s.peekMisses.Load())

	h := s.hist
	h.mu.Lock()
	fmt.Fprintf(w, "# HELP wn_sweep_cell_wall_seconds Per-cell simulation wall time.\n")
	fmt.Fprintf(w, "# TYPE wn_sweep_cell_wall_seconds histogram\n")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "wn_sweep_cell_wall_seconds_bucket{le=\"%g\"} %d\n", b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "wn_sweep_cell_wall_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "wn_sweep_cell_wall_seconds_sum %g\n", h.sum)
	fmt.Fprintf(w, "wn_sweep_cell_wall_seconds_count %d\n", h.samples)
	h.mu.Unlock()
}
