package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// echoResolver reconstructs a trivial deterministic cell from any spec:
// the result is derived from the seeds alone.
func echoResolver(s sweep.Spec) (sweep.Job, error) {
	if s.Experiment == "" {
		return sweep.Job{}, fmt.Errorf("empty experiment")
	}
	return sweep.Job{Spec: s, Run: func() (any, error) {
		return map[string]int64{"trace": s.TraceSeed, "input": s.InputSeed}, nil
	}}, nil
}

// blockingResolver returns cells that park on release after signalling
// started, so tests can hold a job in flight.
func blockingResolver(started chan<- string, release <-chan struct{}) func(sweep.Spec) (sweep.Job, error) {
	return func(s sweep.Spec) (sweep.Job, error) {
		return sweep.Job{Spec: s, Run: func() (any, error) {
			started <- s.Experiment
			<-release
			return map[string]string{"cell": s.Experiment}, nil
		}}, nil
	}
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func submitSpecs(t *testing.T, url string, specs []sweep.Spec) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"specs": specs})
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func specN(n int) []sweep.Spec {
	specs := make([]sweep.Spec, n)
	for i := range specs {
		specs[i] = sweep.Spec{Experiment: fmt.Sprintf("cell%d", i), TraceSeed: int64(i)}
	}
	return specs
}

// TestSubmitAndResults: the happy path — submit, poll to done, ordered
// results match what the cells computed.
func TestSubmitAndResults(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 2})
	resp, sub := submitSpecs(t, ts.URL, specN(5))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := sub["id"].(string)
	st := pollDone(t, ts.URL, id)
	if st["state"] != "done" {
		t.Fatalf("state %v, want done", st["state"])
	}
	results := st["results"].([]any)
	if len(results) != 5 {
		t.Fatalf("%d results, want 5", len(results))
	}
	for i, r := range results {
		if got := r.(map[string]any)["trace"].(float64); got != float64(i) {
			t.Errorf("result %d out of order: trace=%v", i, got)
		}
	}
}

// TestStreamSequence: the NDJSON stream delivers live progress events, then
// results in submission order, then exactly one terminal event — and a late
// subscriber replays the identical stream.
func TestStreamSequence(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 4})
	_, sub := submitSpecs(t, ts.URL, specN(6))
	id := sub["id"].(string)

	read := func() []serve.Event {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var events []serve.Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e serve.Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("bad line %q: %v", sc.Text(), err)
			}
			events = append(events, e)
		}
		return events
	}
	first := read()
	second := read() // replay after completion

	if len(first) != 6+6+1 {
		t.Fatalf("%d events, want 13 (6 progress + 6 results + done)", len(first))
	}
	for i, e := range first[:6] {
		if e.Type != "progress" {
			t.Errorf("event %d type %s, want progress", i, e.Type)
		}
	}
	for i, e := range first[6:12] {
		if e.Type != "result" || e.Index != i {
			t.Errorf("result event %d: type=%s index=%d", i, e.Type, e.Index)
		}
	}
	if last := first[12]; last.Type != "done" || last.State != "done" {
		t.Errorf("terminal event %+v", last)
	}
	if len(second) != len(first) {
		t.Errorf("replayed stream has %d events, first had %d", len(second), len(first))
	}
}

// TestQueueFullShedsLoad: a full job queue rejects with 429 + Retry-After
// while the accepted jobs still complete.
func TestQueueFullShedsLoad(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	_, ts := newTestServer(t, serve.Config{
		Resolver:   blockingResolver(started, release),
		Workers:    1,
		QueueDepth: 1,
	})
	// A occupies the dispatcher...
	respA, subA := submitSpecs(t, ts.URL, specN(1))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("A status %d", respA.StatusCode)
	}
	<-started
	// ...B fills the queue...
	respB, subB := submitSpecs(t, ts.URL, specN(1))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("B status %d", respB.StatusCode)
	}
	// ...C is shed.
	respC, errC := submitSpecs(t, ts.URL, specN(1))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("C status %d, want 429", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if msg := errC["error"].(string); !strings.Contains(msg, "queue full") {
		t.Errorf("429 body %q", msg)
	}
	close(release)
	for _, sub := range []map[string]any{subA, subB} {
		if st := pollDone(t, ts.URL, sub["id"].(string)); st["state"] != "done" {
			t.Errorf("job %v state %v after release", sub["id"], st["state"])
		}
	}
}

// TestShutdownDrainsInFlight: the acceptance scenario — shutdown finishes
// the jobs already accepted while rejecting new submissions with 429.
func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	srv, ts := newTestServer(t, serve.Config{
		Resolver:   blockingResolver(started, release),
		Workers:    1,
		QueueDepth: 4,
	})
	// A in flight, B queued behind it.
	_, subA := submitSpecs(t, ts.URL, specN(1))
	<-started
	_, subB := submitSpecs(t, ts.URL, specN(1))

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	waitDraining(t, srv)

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %v %v", resp.StatusCode, err)
	}
	resp, body := submitSpecs(t, ts.URL, specN(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission during drain got %d, want 429", resp.StatusCode)
	}
	if msg := body["error"].(string); !strings.Contains(msg, "draining") {
		t.Errorf("drain rejection body %q", msg)
	}

	close(release) // let A (and then B) finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, sub := range []map[string]any{subA, subB} {
		st := getStatus(t, ts.URL, sub["id"].(string))
		if st["state"] != "done" {
			t.Errorf("job %v state %v, want done (drained)", sub["id"], st["state"])
		}
		if st["results"] == nil {
			t.Errorf("job %v drained without results", sub["id"])
		}
	}
}

// TestJobTimeout: a submission deadline cancels the job's remaining cells.
func TestJobTimeout(t *testing.T) {
	slow := func(s sweep.Spec) (sweep.Job, error) {
		return sweep.Job{Spec: s, Run: func() (any, error) {
			time.Sleep(30 * time.Millisecond)
			return "x", nil
		}}, nil
	}
	_, ts := newTestServer(t, serve.Config{Resolver: slow, Workers: 1})
	body, _ := json.Marshal(map[string]any{"specs": specN(3), "timeout": "5ms"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	st := pollDone(t, ts.URL, sub["id"].(string))
	if st["state"] != "canceled" {
		t.Errorf("state %v, want canceled after deadline", st["state"])
	}
}

// TestValidation: malformed submissions are rejected before queueing.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 1, MaxCells: 4})
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"specs":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty specs: %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"specs":[{"experiment":""}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("resolver-rejected spec: %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"specs":[{"experiment":"x"}],"timeout":"yesterday"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout: %d, want 400", resp.StatusCode)
	}
	body, _ := json.Marshal(map[string]any{"specs": specN(5)})
	if resp := post(string(body)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d, want 413", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v %v", resp.StatusCode, err)
	}
}

// TestMetricsEndpoint: the Prometheus surface carries the engine counters
// and the serve-level queue gauges.
func TestMetricsEndpoint(t *testing.T) {
	cache := sweep.NewMemoryCacheSize(2)
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 2, Cache: cache})
	_, sub := submitSpecs(t, ts.URL, specN(5))
	pollDone(t, ts.URL, sub["id"].(string))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"wn_sweep_cells_submitted_total 5",
		"wn_sweep_cells_done_total 5",
		"wn_sweep_cache_misses_total 5",
		"wn_sweep_cache_evictions_total 3",
		"wn_serve_jobs_submitted_total 1",
		"wn_serve_jobs_done_total 1",
		"wn_serve_queue_capacity 16",
		"wn_sweep_cell_wall_seconds_count 5",
		`wn_sweep_cell_wall_seconds_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz %d", resp.StatusCode)
	}
}

// TestClientAgainstServer: the Runner client round-trips result bytes and
// surfaces server-side failures.
func TestClientAgainstServer(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 2})
	client := serve.NewClient(ts.URL)
	jobs := make([]sweep.Job, 4)
	for i := range jobs {
		jobs[i] = sweep.Job{Spec: sweep.Spec{Experiment: fmt.Sprintf("c%d", i), TraceSeed: int64(i)}}
	}
	got, err := client.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.Serial().Run(mustResolveAll(t, jobs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], local[i]) {
			t.Errorf("result %d differs: remote %s local %s", i, got[i], local[i])
		}
	}
	// A bad spec comes back as the server's 400 message.
	if _, err := client.Run([]sweep.Job{{Spec: sweep.Spec{}}}); err == nil ||
		!strings.Contains(err.Error(), "empty experiment") {
		t.Errorf("bad spec error %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func mustResolveAll(t *testing.T, jobs []sweep.Job) []sweep.Job {
	t.Helper()
	out := make([]sweep.Job, len(jobs))
	for i, j := range jobs {
		r, err := echoResolver(j.Spec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func getStatus(t *testing.T, url, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollDone(t *testing.T, url, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, id)
		switch st["state"] {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func waitDraining(t *testing.T, srv *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Draining() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never started draining")
}
