package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"whatsnext/internal/sweep"
)

// Client runs sweep jobs on a remote wnserved (or wncluster coordinator)
// instance. It implements sweep.Runner, so a Protocol configured with it
// ships each study's specs over HTTP instead of simulating locally: submit
// the batch, follow the job's NDJSON stream, and reassemble the per-cell
// result bytes in submission order. The determinism contract guarantees
// those bytes match a local engine's output exactly.
//
// Resilience: with Retries > 0 the client survives the two transient
// failures a loaded or restarting server produces. A shed submission (429)
// is retried after the server's own Retry-After hint; transport errors and
// 5xx responses are retried under capped exponential backoff with a bounded
// jitter. A dropped stream is not fatal either: the client remembers how
// many event lines it has consumed and reconnects with ?cursor=N, so the
// server replays only the events it has not yet seen — the reassembled
// results are unaffected because every event is delivered exactly once
// across reconnects.
type Client struct {
	base string
	hc   *http.Client
	// Timeout, when set, is sent with each submission as the job deadline.
	Timeout time.Duration
	// Retries bounds the retry attempts (beyond the first try) for shed or
	// failed submissions and for dropped streams. 0 preserves the legacy
	// fail-fast behavior.
	Retries int
	// RetryBase and RetryMax shape the capped exponential backoff between
	// attempts; zero selects 200ms and 5s. A 429's Retry-After hint
	// overrides the computed backoff (still capped by RetryMax).
	RetryBase, RetryMax time.Duration
	// JitterCap bounds the random jitter added to each backoff; zero
	// selects 250ms. Jitter only ever shortens the worst case thundering
	// herd, never extends a wait beyond RetryMax+JitterCap.
	JitterCap time.Duration
}

// NewClient targets a wnserved base URL (e.g. "http://localhost:8080").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Base returns the server URL the client targets.
func (c *Client) Base() string { return c.base }

// retryDefaults resolves the backoff knobs.
func (c *Client) retryDefaults() (base, max, jitter time.Duration) {
	base, max, jitter = c.RetryBase, c.RetryMax, c.JitterCap
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if jitter <= 0 {
		jitter = 250 * time.Millisecond
	}
	return base, max, jitter
}

// backoff computes the capped, jittered wait before retry attempt n (0-based).
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	base, max, jitterCap := c.retryDefaults()
	d := base << uint(n)
	if d > max || d <= 0 {
		d = max
	}
	if retryAfter > 0 {
		d = retryAfter
		if d > max {
			d = max
		}
	}
	j := jitterCap
	if half := d / 2; half < j {
		j = half
	}
	if j > 0 {
		d += time.Duration(rand.Int63n(int64(j) + 1))
	}
	return d
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run implements sweep.Runner. Only each job's Spec travels; the server
// reconstructs the Run closures from its resolver registry, so experiments
// outside that registry fail with the server's 400 message.
func (c *Client) Run(jobs []sweep.Job) ([]json.RawMessage, error) {
	return c.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: the submission, the retry waits and
// the stream all abort when ctx ends. This is what lets a coordinator hedge
// a shard — dispatch it to a second node and abandon the slow attempt.
func (c *Client) RunContext(ctx context.Context, jobs []sweep.Job) ([]json.RawMessage, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	specs := make([]sweep.Spec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.Spec
	}
	req := submitRequest{Specs: specs}
	if c.Timeout > 0 {
		req.Timeout = c.Timeout.String()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encode submission: %w", err)
	}
	id, err := c.submit(ctx, body)
	if err != nil {
		return nil, err
	}
	return c.follow(ctx, id, len(jobs))
}

// submit POSTs the batch, retrying shed (429) and transient (transport,
// 5xx) failures up to Retries times, and returns the accepted job id.
func (c *Client) submit(ctx context.Context, body []byte) (string, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		id, retryAfter, err, permanent := c.submitOnce(ctx, body)
		if err == nil {
			return id, nil
		}
		if permanent || attempt >= c.Retries {
			return "", err
		}
		lastErr = err
		if err := sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return "", fmt.Errorf("serve: submit: %w (last attempt: %v)", err, lastErr)
		}
	}
}

// submitOnce performs one submission attempt. permanent marks errors a
// retry cannot fix (4xx other than 429).
func (c *Client) submitOnce(ctx context.Context, body []byte) (id string, retryAfter time.Duration, err error, permanent bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", 0, fmt.Errorf("serve: submit: %w", err), true
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("serve: submit: %w", err), ctx.Err() != nil
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var sub submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", 0, fmt.Errorf("serve: decode submission response: %w", err), true
		}
		return sub.ID, 0, nil, false
	case resp.StatusCode == http.StatusTooManyRequests:
		var ra time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			ra = time.Duration(secs) * time.Second
		}
		return "", ra, fmt.Errorf("serve: submit: %s", apiErrorString(resp)), false
	case resp.StatusCode >= 500:
		return "", 0, fmt.Errorf("serve: submit: %s", apiErrorString(resp)), false
	default:
		return "", 0, fmt.Errorf("serve: submit: %s", apiErrorString(resp)), true
	}
}

// follow streams the job and collects its ordered results, resuming a
// dropped stream from the last-seen event cursor instead of failing the
// whole job.
func (c *Client) follow(ctx context.Context, id string, cells int) ([]json.RawMessage, error) {
	results := make([]json.RawMessage, cells)
	cursor := 0
	for attempt := 0; ; {
		before := cursor
		done, err, permanent := c.streamOnce(ctx, id, cells, &cursor, results)
		if cursor > before {
			attempt = 0 // the connection made progress; restart the budget
		}
		if done {
			for i, r := range results {
				if r == nil {
					return nil, fmt.Errorf("serve: job %s: missing result %d", id, i)
				}
			}
			return results, nil
		}
		if permanent || attempt >= c.Retries {
			return nil, err
		}
		attempt++
		if serr := sleep(ctx, c.backoff(attempt-1, 0)); serr != nil {
			return nil, fmt.Errorf("serve: job %s: %w (stream dropped: %v)", id, serr, err)
		}
	}
}

// streamOnce follows one stream connection from *cursor, advancing the
// cursor per consumed event line so a reconnect never re-reads (or misses)
// an event. It returns done=true only after a successful terminal event.
func (c *Client) streamOnce(ctx context.Context, id string, cells int, cursor *int, results []json.RawMessage) (done bool, err error, permanent bool) {
	url := fmt.Sprintf("%s/v1/jobs/%s/stream?cursor=%d", c.base, id, *cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, fmt.Errorf("serve: stream %s: %w", id, err), true
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("serve: stream %s: %w", id, err), ctx.Err() != nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A missing job cannot come back; other statuses may be transient.
		return false, fmt.Errorf("serve: stream %s: %s", id, apiErrorString(resp)),
			resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusBadRequest
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // result lines carry whole encoded cells
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return false, fmt.Errorf("serve: job %s: bad stream line %q: %v", id, sc.Text(), err), true
		}
		*cursor++
		switch e.Type {
		case "result":
			if e.Index < 0 || e.Index >= cells {
				return false, fmt.Errorf("serve: job %s: result index %d out of range", id, e.Index), true
			}
			results[e.Index] = e.Result
		case "done":
			if e.State != StateDone {
				return false, fmt.Errorf("serve: job %s %s: %s", id, e.State, e.Error), true
			}
			return true, nil, false
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("serve: job %s: stream: %w", id, err), false
	}
	return false, fmt.Errorf("serve: job %s: stream ended without a terminal event", id), false
}

// apiErrorString extracts the JSON error body (or the status) of a non-2xx
// response, including the Retry-After hint on 429s.
func apiErrorString(resp *http.Response) string {
	msg := resp.Status
	var e errorResponse
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		msg += ": " + e.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		msg += " (retry after " + ra + "s)"
	}
	return msg
}
