package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"whatsnext/internal/sweep"
)

// Client runs sweep jobs on a remote wnserved instance. It implements
// sweep.Runner, so a Protocol configured with it ships each study's specs
// over HTTP instead of simulating locally: submit the batch, follow the
// job's NDJSON stream, and reassemble the per-cell result bytes in
// submission order. The determinism contract guarantees those bytes match
// a local engine's output exactly.
type Client struct {
	base string
	hc   *http.Client
	// Timeout, when set, is sent with each submission as the job deadline.
	Timeout time.Duration
}

// NewClient targets a wnserved base URL (e.g. "http://localhost:8080").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Run implements sweep.Runner. Only each job's Spec travels; the server
// reconstructs the Run closures from its resolver registry, so experiments
// outside that registry fail with the server's 400 message.
func (c *Client) Run(jobs []sweep.Job) ([]json.RawMessage, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	specs := make([]sweep.Spec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.Spec
	}
	req := submitRequest{Specs: specs}
	if c.Timeout > 0 {
		req.Timeout = c.Timeout.String()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encode submission: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("serve: submit: %s", apiErrorString(resp))
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return nil, fmt.Errorf("serve: decode submission response: %w", err)
	}
	return c.follow(sub.ID, len(jobs))
}

// follow streams the job and collects its ordered results.
func (c *Client) follow(id string, cells int) ([]json.RawMessage, error) {
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return nil, fmt.Errorf("serve: stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: stream %s: %s", id, apiErrorString(resp))
	}
	results := make([]json.RawMessage, cells)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // result lines carry whole encoded cells
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("serve: job %s: bad stream line %q: %v", id, sc.Text(), err)
		}
		switch e.Type {
		case "result":
			if e.Index < 0 || e.Index >= cells {
				return nil, fmt.Errorf("serve: job %s: result index %d out of range", id, e.Index)
			}
			results[e.Index] = e.Result
		case "done":
			if e.State != StateDone {
				return nil, fmt.Errorf("serve: job %s %s: %s", id, e.State, e.Error)
			}
			for i, r := range results {
				if r == nil {
					return nil, fmt.Errorf("serve: job %s: missing result %d", id, i)
				}
			}
			return results, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: job %s: stream: %w", id, err)
	}
	return nil, fmt.Errorf("serve: job %s: stream ended without a terminal event", id)
}

// apiErrorString extracts the JSON error body (or the status) of a non-2xx
// response, including the Retry-After hint on 429s.
func apiErrorString(resp *http.Response) string {
	msg := resp.Status
	var e errorResponse
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		msg += ": " + e.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		msg += " (retry after " + ra + "s)"
	}
	return msg
}
