// Package serve exposes the sweep engine as a long-running HTTP service:
// simulation as a service over the What's Next reproduction. A resident
// server keeps the compile cache and result cache warm across requests —
// everything a one-shot CLI invocation throws away — and lets remote
// clients sweep the paper's design space (Table I modes, speedup studies,
// capacitor/harvester ablations) against one shared backend.
//
// The API surface:
//
//	POST /v1/jobs             submit a batch of sweep.Spec cells; 202 + job id
//	GET  /v1/jobs             list retained jobs
//	GET  /v1/jobs/{id}        job status (+ ordered results once done)
//	GET  /v1/jobs/{id}/stream NDJSON: live per-cell progress, then per-cell
//	                          results in submission order, then a terminal event
//	GET  /metrics             Prometheus text format (engine + server counters)
//	GET  /healthz             process liveness
//	GET  /readyz              accepting work (503 while draining)
//
// Concurrency model: submissions land in a bounded FIFO queue and a single
// dispatcher executes them one job at a time through a shared sweep.Engine,
// so the configured worker budget is the server-wide simulation
// parallelism, shared across requests rather than multiplied by them. When
// the queue is full — or the server is draining — submissions are shed with
// 429 and a Retry-After hint. Shutdown stops intake, finishes the jobs
// already accepted, and can be cut short by cancelling the shutdown
// context, which cancels the running sweep between cells (sweep.RunContext).
//
// Determinism: the server executes exactly the closures the resolver
// reconstructs from submitted specs — the same registry the CLI studies
// enumerate through — so a server-returned result is byte-identical to a
// local sweep.Engine run of the same spec, and both share cache keys.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"whatsnext/internal/sweep"
)

// Config assembles a Server.
type Config struct {
	// Resolver turns a submitted spec into a runnable job; submissions
	// whose specs it rejects are refused with 400. Required (the binary
	// wires in experiments.ResolveSpec; tests inject fakes).
	Resolver func(sweep.Spec) (sweep.Job, error)
	// Workers is the engine pool size — the server-wide simulation worker
	// budget shared by all jobs; <= 0 selects all CPUs.
	Workers int
	// Cache, when non-nil, is the engine's result cache.
	Cache sweep.Cache
	// QueueDepth bounds the number of accepted-but-unstarted jobs; further
	// submissions are shed with 429. <= 0 selects 16.
	QueueDepth int
	// MaxCells bounds the specs in one submission (413 beyond it). <= 0
	// selects 4096.
	MaxCells int
	// DefaultTimeout applies to jobs whose submission carries no timeout;
	// zero means no deadline.
	DefaultTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; <= 0 selects 1s.
	RetryAfter time.Duration
	// MaxJobsRetained bounds the finished-job history kept for GET (oldest
	// terminal jobs are dropped first). <= 0 selects 256.
	MaxJobsRetained int
	// Logger receives structured request and job logs; nil discards them.
	Logger *slog.Logger
}

// Server is the simulation service. Create with New, mount Handler, and
// call Shutdown to drain.
type Server struct {
	cfg Config
	eng *sweep.Engine
	log *slog.Logger

	hist *histogram // per-cell wall time

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing and eviction
	queue    chan *job
	seq      int64
	draining bool
	current  *job // job whose cells the engine is running now

	rejected int64 // submissions shed with 429

	peekHits, peekMisses atomic.Int64 // GET /v1/cache/{key} outcomes

	baseCtx context.Context
	cancel  context.CancelFunc
	done    chan struct{} // dispatcher exited
}

// New builds a Server and starts its dispatcher.
func New(cfg Config) (*Server, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("serve: Config.Resolver is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxJobsRetained <= 0 {
		cfg.MaxJobsRetained = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		hist:    newHistogram(),
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	s.eng = sweep.New(sweep.Options{
		Workers:    cfg.Workers,
		Cache:      cfg.Cache,
		OnProgress: s.onProgress,
	})
	go s.dispatch()
	return s, nil
}

// Engine exposes the shared engine (for metrics and logs).
func (s *Server) Engine() *sweep.Engine { return s.eng }

// onProgress routes engine progress into the running job's event stream
// and the wall-time histogram. The engine serializes these callbacks.
func (s *Server) onProgress(p sweep.Progress) {
	s.hist.observe(p.Wall.Seconds())
	s.mu.Lock()
	j := s.current
	s.mu.Unlock()
	if j != nil {
		j.progress(p)
	}
}

// dispatch runs accepted jobs in FIFO order, one at a time, until Shutdown
// closes the queue.
func (s *Server) dispatch() {
	defer close(s.done)
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the shared engine under its deadline.
func (s *Server) runJob(j *job) {
	ctx := s.baseCtx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	s.mu.Lock()
	s.current = j
	s.mu.Unlock()
	j.start()
	s.log.Info("job start", "job", j.id, "cells", len(j.jobs))

	results, err := s.eng.RunContext(ctx, j.jobs)

	s.mu.Lock()
	s.current = nil
	s.mu.Unlock()
	j.finish(results, err)
	st := j.status()
	s.log.Info("job finish", "job", j.id, "state", st.State, "cells", st.Cells,
		"cache_hits", st.CacheHits, "wall", time.Since(st.Submitted).Round(time.Millisecond))
}

// submit validates, resolves and enqueues a request. It returns the job or
// an apiError for the handler to render.
func (s *Server) submit(req submitRequest) (*job, *apiError) {
	if len(req.Specs) == 0 {
		return nil, &apiError{http.StatusBadRequest, "no specs in submission"}
	}
	if len(req.Specs) > s.cfg.MaxCells {
		return nil, &apiError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d specs exceeds the %d-cell limit", len(req.Specs), s.cfg.MaxCells)}
	}
	timeout := s.cfg.DefaultTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d < 0 {
			return nil, &apiError{http.StatusBadRequest, fmt.Sprintf("bad timeout %q", req.Timeout)}
		}
		timeout = d
	}
	jobs := make([]sweep.Job, len(req.Specs))
	for i, spec := range req.Specs {
		j, err := s.cfg.Resolver(spec)
		if err != nil {
			return nil, &apiError{http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err)}
		}
		jobs[i] = j
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected++
		return nil, &apiError{http.StatusTooManyRequests, "server is draining"}
	}
	s.seq++
	j := newJob(fmt.Sprintf("j-%06d", s.seq), req.Specs, jobs, timeout)
	select {
	case s.queue <- j:
	default:
		s.rejected++
		return nil, &apiError{http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued)", cap(s.queue))}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention cap.
// Caller holds s.mu.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.cfg.MaxJobsRetained
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup returns a retained job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list snapshots every retained job's status in submission order.
func (s *Server) list() []jobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops accepting jobs and waits for every already-accepted job to
// finish. If ctx is cancelled first, the in-flight sweep is cancelled
// between cells and the remaining queue drains as cancelled jobs; Shutdown
// then returns ctx.Err(). Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.draining = true
	close(s.queue) // submit never sends once draining is set
	s.mu.Unlock()
	s.log.Info("draining", "queued", len(s.queue))

	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		s.cancel() // abort the running sweep between cells
		<-s.done
		return ctx.Err()
	}
}

// apiError is a status code plus a message for the JSON error body.
type apiError struct {
	code int
	msg  string
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	// Specs are the simulation cells, validated against the resolver
	// registry; results come back in this order.
	Specs []sweep.Spec `json:"specs"`
	// Timeout, when set (Go duration string, e.g. "2m"), bounds the job's
	// execution; on expiry unfinished cells are cancelled and the job ends
	// in state "canceled".
	Timeout string `json:"timeout,omitempty"`
}

// submitResponse is the 202 body.
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
