package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

// jobsOf turns specs into spec-only jobs the way a remote caller would.
func jobsOf(specs []sweep.Spec) []sweep.Job {
	jobs := make([]sweep.Job, len(specs))
	for i, s := range specs {
		jobs[i] = sweep.Job{Spec: s}
	}
	return jobs
}

// TestClientRetries429 fronts a real server with a shedding proxy that 429s
// the first submissions; a client with retries rides it out, a legacy
// client fails fast.
func TestClientRetries429(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 2})

	var sheds atomic.Int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "shed by test proxy"})
			return
		}
		resp, err := forward(ts.URL, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		copyResponse(w, resp)
	}))
	defer proxy.Close()

	legacy := serve.NewClient(proxy.URL)
	if _, err := legacy.Run(jobsOf(specN(3))); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("legacy client should fail fast on 429, got %v", err)
	}

	sheds.Store(0)
	cl := serve.NewClient(proxy.URL)
	cl.Retries = 3
	cl.RetryBase, cl.RetryMax, cl.JitterCap = time.Millisecond, 5*time.Millisecond, time.Millisecond
	results, err := cl.Run(jobsOf(specN(3)))
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if got := sheds.Load(); got < 3 {
		t.Errorf("proxy saw %d submissions, want >= 3 (2 shed + 1 accepted)", got)
	}
}

// TestClientResumesDroppedStream cuts the first stream connection after two
// event lines; the client must reconnect with ?cursor=2 and still
// reassemble every result byte-identically.
func TestClientResumesDroppedStream(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 1})

	var mu sync.Mutex
	var cursors []string
	var dropped bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			mu.Lock()
			cursors = append(cursors, r.URL.Query().Get("cursor"))
			first := !dropped
			dropped = true
			mu.Unlock()
			if first {
				// Pass through only the first two event lines, then sever.
				resp, err := forward(ts.URL, r)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadGateway)
					return
				}
				defer resp.Body.Close()
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				lines := 0
				buf := make([]byte, 1)
				for lines < 2 {
					if _, err := resp.Body.Read(buf); err != nil {
						return
					}
					w.Write(buf)
					if buf[0] == '\n' {
						lines++
					}
				}
				return // connection closes mid-stream
			}
		}
		resp, err := forward(ts.URL, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		copyResponse(w, resp)
	}))
	defer proxy.Close()

	specs := specN(4)
	local, err := sweep.New(sweep.Options{Workers: 1}).Run(mustResolve(t, specs))
	if err != nil {
		t.Fatal(err)
	}

	cl := serve.NewClient(proxy.URL)
	cl.Retries = 3
	cl.RetryBase, cl.RetryMax, cl.JitterCap = time.Millisecond, 5*time.Millisecond, time.Millisecond
	remote, err := cl.Run(jobsOf(specs))
	if err != nil {
		t.Fatalf("client did not survive the dropped stream: %v", err)
	}
	for i := range local {
		if !bytes.Equal(remote[i], local[i]) {
			t.Errorf("cell %d differs after resume: %s vs %s", i, remote[i], local[i])
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(cursors) < 2 {
		t.Fatalf("expected a reconnect, saw %d stream requests", len(cursors))
	}
	if cursors[0] != "0" {
		t.Errorf("first stream request cursor %q, want 0", cursors[0])
	}
	if cursors[1] != "2" {
		t.Errorf("resumed stream request cursor %q, want 2 (two lines were delivered)", cursors[1])
	}
}

// mustResolve builds echo-resolver jobs for a local reference run.
func mustResolve(t *testing.T, specs []sweep.Spec) []sweep.Job {
	t.Helper()
	jobs := make([]sweep.Job, len(specs))
	for i, s := range specs {
		j, err := echoResolver(s)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	return jobs
}

// TestCachePeek covers the federation read path: after a job runs, its
// cells are served raw by GET /v1/cache/{key}; bad keys 400 and unknown
// keys 404.
func TestCachePeek(t *testing.T) {
	cache := sweep.NewMemoryCache()
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 1, Cache: cache})

	specs := specN(2)
	results, err := serve.NewClient(ts.URL).Run(jobsOf(specs))
	if err != nil {
		t.Fatal(err)
	}

	for i, s := range specs {
		resp, err := http.Get(ts.URL + "/v1/cache/" + s.Hash())
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("peek %d: status %d", i, resp.StatusCode)
		}
		if !bytes.Equal(b, results[i]) {
			t.Errorf("peek %d: %s != result %s", i, b, results[i])
		}
	}

	if resp, _ := http.Get(ts.URL + "/v1/cache/not-a-hash"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", resp.StatusCode)
	}
	missing := sweep.Spec{Experiment: "never-ran"}.Hash()
	if resp, _ := http.Get(ts.URL + "/v1/cache/" + missing); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", resp.StatusCode)
	}
}

// TestFederatedCacheReadThrough: a worker-side cache that misses locally
// pulls the bytes from the upstream peek endpoint, then serves the copy
// locally.
func TestFederatedCacheReadThrough(t *testing.T) {
	upstreamCache := sweep.NewMemoryCache()
	_, ts := newTestServer(t, serve.Config{Resolver: echoResolver, Workers: 1, Cache: upstreamCache})

	spec := sweep.Spec{Experiment: "fed", TraceSeed: 7}
	key := spec.Hash()
	upstreamCache.Put(key, []byte(`{"trace":7}`))

	local := sweep.NewMemoryCache()
	fc := serve.NewFederatedCache(local, ts.URL, time.Second)

	b, ok := fc.Get(key)
	if !ok || string(b) != `{"trace":7}` {
		t.Fatalf("federated get = %q, %v; want upstream bytes", b, ok)
	}
	if _, ok := local.Get(key); !ok {
		t.Error("upstream hit was not copied into the local layer")
	}
	hits, misses, errs := fc.FederationStats()
	if hits != 1 || errs != 0 {
		t.Errorf("stats after hit: hits=%d misses=%d errors=%d", hits, misses, errs)
	}

	// A second Get must be served locally (upstream counters unchanged).
	if _, ok := fc.Get(key); !ok {
		t.Fatal("local re-read missed")
	}
	if h2, _, _ := fc.FederationStats(); h2 != 1 {
		t.Errorf("second read went upstream (hits=%d)", h2)
	}

	if _, ok := fc.Get(sweep.Spec{Experiment: "absent"}.Hash()); ok {
		t.Error("miss on both layers reported a hit")
	}
	if _, m2, _ := fc.FederationStats(); m2 != 1 {
		t.Error("upstream miss not counted")
	}
}

// forward re-issues a request against base and returns the response.
func forward(base string, r *http.Request) (*http.Response, error) {
	url := base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return http.DefaultTransport.RoundTrip(req)
}

// copyResponse relays a forwarded response to the proxy's client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// readAll drains a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
