package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"whatsnext/internal/sweep"
)

// Handler mounts the API with request logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s.logRequests(mux)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	j, apiErr := s.submit(req)
	if apiErr != nil {
		if apiErr.code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		writeJSON(w, apiErr.code, errorResponse{Error: apiErr.msg})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:        j.id,
		State:     StateQueued,
		Cells:     len(j.jobs),
		StatusURL: "/v1/jobs/" + j.id,
		StreamURL: "/v1/jobs/" + j.id + "/stream",
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: s.list()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream replays the job's event log and follows it until the
// terminal event, as NDJSON. By default it replays from the start, so a
// late subscriber sees the same complete stream an early one did; with
// ?cursor=N it resumes from the Nth event line, which is how a client that
// lost its connection picks up exactly where it stopped.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	cursor := 0
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad cursor %q", raw)})
			return
		}
		cursor = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		batch, done, err := j.wait(r.Context(), cursor)
		if err != nil {
			return // client went away
		}
		for _, line := range batch {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		cursor += len(batch)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}

// handleCachePeek serves the raw cached result bytes for a spec hash, or
// 404. This is the federation read path: a cluster worker that misses its
// local cache asks its upstream (the coordinator) here before simulating,
// and a coordinator answers from the results it has already merged. The
// bytes are exactly what the engine cached, so a federated hit is
// indistinguishable from a local one.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !sweep.ValidCacheKey(key) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed cache key"})
		return
	}
	if s.cfg.Cache == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no cache configured"})
		return
	}
	b, ok := s.cfg.Cache.Get(key)
	if !ok {
		s.peekMisses.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not cached"})
		return
	}
	s.peekHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// statusWriter records the status and byte count for the request log, and
// forwards Flush so NDJSON streaming works through the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests emits one structured line per request.
func (s *Server) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"bytes", sw.bytes,
			"dur", time.Since(start).Round(time.Microsecond),
			"remote", r.RemoteAddr,
		)
	})
}
