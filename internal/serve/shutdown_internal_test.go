package serve

import (
	"context"
	"testing"
	"time"

	"whatsnext/internal/sweep"
)

// TestShutdownCutShort: cancelling the shutdown context aborts the
// in-flight sweep between cells instead of waiting for the whole job.
// White-box so the test can wait for the server's base context to
// actually cancel before releasing the in-flight cell — otherwise the
// release races cancellation propagation and the job may simply finish.
func TestShutdownCutShort(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Resolver: func(s sweep.Spec) (sweep.Job, error) {
			return sweep.Job{Spec: s, Run: func() (any, error) {
				started <- struct{}{}
				<-release
				return "x", nil
			}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]sweep.Spec, 3)
	for i := range specs {
		specs[i] = sweep.Spec{Experiment: "cell", TraceSeed: int64(i)}
	}
	j, apiErr := srv.submit(submitRequest{Specs: specs})
	if apiErr != nil {
		t.Fatalf("submit: %v", apiErr.msg)
	}
	<-started // cell 0 in flight, cells 1-2 pending

	ctx, cancel := context.WithCancel(context.Background())
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(ctx) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-srv.baseCtx.Done() // cancellation has reached the engine's context
	close(release)       // the in-flight cell still finishes before the job ends

	if err := <-shutdownDone; err != context.Canceled {
		t.Fatalf("shutdown err %v, want context.Canceled", err)
	}
	st := j.status()
	if st.State != StateCanceled {
		t.Errorf("cut-short job state %q, want %q", st.State, StateCanceled)
	}
	if st.Done >= len(specs) {
		t.Errorf("all %d cells ran despite the aborted drain", st.Done)
	}
}
