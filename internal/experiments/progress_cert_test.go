package experiments

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/nn"
	"whatsnext/internal/workloads"
)

// TestProgressStudy runs the -exp progress study end to end: every variant
// must certify, every dynamic gap must respect its static bound (the study
// errors otherwise), and the derived sizing must be usable.
func TestProgressStudy(t *testing.T) {
	rows, err := ProgressStudy(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	want := 2*len(workloads.All()) + len(nn.All())
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.DynamicMaxGap == 0 || r.DynamicMaxGap > r.StaticRegionWCEC {
			t.Errorf("%s: gap %d outside (0, %d]", r.Variant, r.DynamicMaxGap, r.StaticRegionWCEC)
		}
		if r.MinCapacitorUF <= 0 {
			t.Errorf("%s: non-positive min capacitor %f", r.Variant, r.MinCapacitorUF)
		}
		if r.Budget <= r.StaticTotalWCEC {
			t.Errorf("%s: certified budget %d does not clear the total WCEC %d",
				r.Variant, r.Budget, r.StaticTotalWCEC)
		}
	}
}

// Every Table I kernel and every NN kernel — in precise mode, its paper
// mode, and (for the NN family) the progress-embedded lowering — must
// certify a finite per-region WCEC: the compiler's forward-progress
// analysis proves no emitted kernel can livelock on a sufficiently
// provisioned device.
func TestAllKernelsCertifyFiniteRegions(t *testing.T) {
	isNN := map[string]bool{}
	for _, b := range nn.All() {
		isNN[b.Name] = true
	}
	for _, b := range append(workloads.All(), nn.All()...) {
		p := b.ScaledParams()
		opts := []compiler.Options{{Mode: compiler.ModePrecise}, {Mode: b.Mode}}
		if isNN[b.Name] {
			opts = append(opts, compiler.Options{Mode: b.Mode, ProgressEmbed: true})
		}
		for _, o := range opts {
			c, err := compiler.Compile(b.Build(p, 8, false), o)
			if err != nil {
				t.Errorf("%s %v: %v", b.Name, o.Mode, err)
				continue
			}
			pr := c.Cert.Progress
			if pr == nil {
				t.Errorf("%s %v: certificate carries no progress info", b.Name, o.Mode)
				continue
			}
			if !pr.RegionsFinite || pr.MaxRegionWCEC == 0 {
				t.Errorf("%s %v embed=%v: per-region WCEC not finite (%+v)",
					b.Name, o.Mode, o.ProgressEmbed, pr)
			}
			if !pr.TotalFinite {
				t.Errorf("%s %v embed=%v: total WCEC not finite", b.Name, o.Mode, o.ProgressEmbed)
			}
			for _, lb := range pr.Loops {
				if lb.Source == "unbounded" {
					t.Errorf("%s %v: unbounded loop at %#x", b.Name, o.Mode, lb.Head)
				}
			}
		}
	}
}
