package experiments

import (
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/workloads"
)

func TestRuntimeQualitySmoke(t *testing.T) {
	b := workloads.MatAdd()
	c, err := RuntimeQuality(b, b.ScaledParams(), 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) < 5 {
		t.Fatalf("too few points: %d", len(c.Points))
	}
	last := c.Points[len(c.Points)-1]
	if last.NRMSE != 0 {
		t.Fatalf("final NRMSE = %v, want 0 (provisioned SWV is exact)", last.NRMSE)
	}
	if first := c.Points[0]; first.NRMSE <= last.NRMSE {
		t.Fatalf("error does not decrease: first %v last %v", first.NRMSE, last.NRMSE)
	}
	t.Logf("MatAdd 8-bit: final overhead %.2fx, first point (%.2f, %.3f%%)",
		c.FinalOverhead(), c.Points[0].NormRuntime, c.Points[0].NRMSE)
}

func TestSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("intermittent sweep")
	}
	b := workloads.Var()
	row, err := speedupOne(core.ProcClank, b, b.ScaledParams(), 4, Protocol{Traces: 2, Invocations: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Var 4-bit on clank: %.2fx speedup, %.2f%% NRMSE (%d samples)", row.Speedup, row.NRMSE, row.Samples)
	if row.Speedup <= 1.0 {
		t.Errorf("expected speedup > 1, got %.3f", row.Speedup)
	}
}

func TestTable1Smoke(t *testing.T) {
	rows, err := Table1(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s %s amenable %.2f%% cycles %d (%.2f ms)", r.Benchmark, r.Technique, r.AmenablePct, r.Cycles, r.RuntimeMs)
		if r.AmenablePct <= 0 || r.AmenablePct > 60 {
			t.Errorf("%s: implausible amenable%% %.2f", r.Benchmark, r.AmenablePct)
		}
	}
}
