package experiments

import (
	"os"
	"testing"
)

func TestAblSkim(t *testing.T) {
	rows, err := SkimAblation(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	PrintSkimAblation(os.Stdout, rows)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WithSkim <= r.WithoutSkim {
			t.Errorf("%s: skim points are the mechanism (%.2fx with vs %.2fx without)",
				r.Benchmark, r.WithSkim, r.WithoutSkim)
		}
		if r.WithoutSkim > 1.3 {
			t.Errorf("%s: without skim the anytime passes are overhead, got %.2fx", r.Benchmark, r.WithoutSkim)
		}
	}
}

func TestAblWatchdog(t *testing.T) {
	rows, err := WatchdogSweep(DefaultProtocol(), []uint64{1024, 8192, 65536})
	if err != nil {
		t.Fatal(err)
	}
	PrintWatchdogSweep(os.Stdout, rows)
	if rows[0].Checkpoints <= rows[1].Checkpoints {
		t.Error("smaller watchdog should checkpoint more")
	}
	if !rows[2].Livelocked {
		t.Error("a watchdog beyond one charge must livelock violation-free code")
	}
	if rows[0].Livelocked || rows[1].Livelocked {
		t.Error("sane intervals must complete")
	}
}

func TestAblCap(t *testing.T) {
	rows, err := CapacitorSweep(DefaultProtocol(), []float64{2, 10, 47})
	if err != nil {
		t.Fatal(err)
	}
	PrintCapacitorSweep(os.Stdout, rows)
	if !rows[0].Livelocked {
		t.Error("2 uF cannot hold a checkpoint interval and must livelock")
	}
	if rows[1].Livelocked || rows[2].Livelocked {
		t.Error("10/47 uF must complete")
	}
	if rows[1].WNSpeedup <= rows[2].WNSpeedup {
		t.Errorf("shorter actives should amplify WN: 10uF %.2fx vs 47uF %.2fx",
			rows[1].WNSpeedup, rows[2].WNSpeedup)
	}
}

func TestAblMemo(t *testing.T) {
	rows, err := MemoEntriesSweep(DefaultProtocol(), []int{4, 16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	PrintMemoEntriesSweep(os.Stdout, rows)
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRate+0.02 < rows[i-1].HitRate {
			t.Errorf("hit rate should not collapse with more entries: %+v", rows)
		}
	}
	// The paper's 16-entry sweet spot: gains beyond it are modest.
	if rows[3].Speedup > rows[1].Speedup*1.15 {
		t.Errorf("256 entries should only give modest gains over 16: %.2fx vs %.2fx",
			rows[3].Speedup, rows[1].Speedup)
	}
}

func TestAblConsistency(t *testing.T) {
	rows, err := ConsistencySweep(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	PrintConsistencySweep(os.Stdout, rows)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WNSpeedup <= 1 {
			t.Errorf("%s/%s: WN should win under both mechanisms, got %.2fx", r.Benchmark, r.Mechanism, r.WNSpeedup)
		}
		if r.Checkpoints == 0 {
			t.Errorf("%s/%s: no checkpoints recorded", r.Benchmark, r.Mechanism)
		}
	}
}
