package experiments

import (
	"fmt"

	"whatsnext/internal/cpu"
)

// ExecBackend selects which execution engine the continuous-power harnesses
// drive for A/B comparisons (`wnbench -backend {ref,batch,super}`).
type ExecBackend int

const (
	// ExecSuper (default): the superblock translation backend.
	ExecSuper ExecBackend = iota
	// ExecBatch: the per-instruction batched interpreter (the PR 3 engine).
	ExecBatch
	// ExecRef: the per-instruction reference Step loop — full hook fidelity,
	// no batching. The slowest path; useful to bound interpreter drift.
	ExecRef
)

// execBackend is the process-wide engine selection. Continuous-power
// harnesses (Table I, figure sweeps) honor all three; intermittent-power
// runs honor super/batch through cpu.Backend and treat ref as batch (the
// runtimes' reference mode is a separate, policy-level switch).
var execBackend = ExecSuper

// SetExecBackend selects the execution engine for subsequent runs. Not safe
// to call concurrently with running studies; set it once at startup.
func SetExecBackend(b ExecBackend) { execBackend = b }

// ParseBackend maps a -backend flag value to an ExecBackend.
func ParseBackend(s string) (ExecBackend, error) {
	switch s {
	case "super":
		return ExecSuper, nil
	case "batch":
		return ExecBatch, nil
	case "ref":
		return ExecRef, nil
	}
	return ExecSuper, fmt.Errorf("experiments: unknown backend %q (want ref, batch, or super)", s)
}

// applyBackend stamps the selected engine onto a freshly built device.
func applyBackend(cp *cpu.CPU) {
	if execBackend == ExecBatch {
		cp.Backend = cpu.BackendBatch
	}
}

// runWindow executes one batched window on the selected backend with
// RunUntil's stop contract. The ref backend emulates the window through
// per-instruction Step calls: it stops at the budget boundary, at halt, at
// a fault, and after an SKM newly arms the skim register.
func runWindow(cp *cpu.CPU, budget uint64) (cpu.BatchResult, error) {
	if execBackend != ExecRef {
		return cp.Run(budget, nil)
	}
	var res cpu.BatchResult
	if cp.Halted {
		res.Reason = cpu.StopHalt
		return res, nil
	}
	for res.Cycles < budget {
		armed := cp.SkimArmed
		cost, err := cp.Step()
		if err != nil {
			res.Reason = cpu.StopFault
			return res, err
		}
		res.Cycles += uint64(cost.Cycles)
		res.Instructions++
		if cp.Halted {
			res.Reason = cpu.StopHalt
			return res, nil
		}
		if !armed && cp.SkimArmed {
			res.Reason = cpu.StopSkim
			return res, nil
		}
	}
	res.Reason = cpu.StopBudget
	return res, nil
}
