package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"whatsnext/internal/core"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// This file is the spec → job registry: the inverse of each study's cell
// enumeration. A sweep.Spec fully identifies a simulation cell (that is the
// engine's determinism contract), so the cell can be reconstructed from the
// spec alone — which is what lets a remote client submit bare specs to
// wnserved and receive exactly the bytes a local sweep would produce. The
// studies route their own enumerated specs through the same resolvers, so
// the CLI path and the server path cannot drift.

// resolverEntry ties an experiment name to the function that rebuilds its
// Run closures from specs.
type resolverEntry struct {
	desc    string
	resolve func(sweep.Spec) (func() (any, error), error)
}

var specResolvers = map[string]resolverEntry{
	"table1":  {"Table I benchmark characterization, one cell per kernel", resolveTable1},
	"speedup": {"Figure 10/11 intermittent speedup, one cell per (kernel, bits, trace, input)", resolveSpeedup},
	"nn":      {"NN inference accuracy vs energy, one cell per (kernel, bits, input)", resolveNN},
}

// ResolvableExperiments lists the experiments whose specs ResolveSpec can
// reconstruct, sorted for stable error messages and API listings.
func ResolvableExperiments() []string {
	names := make([]string, 0, len(specResolvers))
	for name := range specResolvers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ExperimentDesc returns the one-line description of a resolvable
// experiment ("" if unknown).
func ExperimentDesc(name string) string { return specResolvers[name].desc }

// ResolveSpec validates a spec against the registry and reconstructs its
// runnable job. The returned job's Run closure is the same pure function of
// the spec that the study itself would enumerate.
func ResolveSpec(s sweep.Spec) (sweep.Job, error) {
	ent, ok := specResolvers[s.Experiment]
	if !ok {
		return sweep.Job{}, fmt.Errorf("experiments: unresolvable experiment %q (resolvable: %s)",
			s.Experiment, strings.Join(ResolvableExperiments(), ", "))
	}
	run, err := ent.resolve(s)
	if err != nil {
		return sweep.Job{}, fmt.Errorf("experiments: %s spec: %w", s.Experiment, err)
	}
	return sweep.Job{Spec: s, Run: run}, nil
}

// ResolveSpecs resolves a batch, naming the index of the first bad spec.
func ResolveSpecs(specs []sweep.Spec) ([]sweep.Job, error) {
	jobs := make([]sweep.Job, len(specs))
	for i, s := range specs {
		j, err := ResolveSpec(s)
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		jobs[i] = j
	}
	return jobs, nil
}

// specWorkload decodes the canonical workload size from a spec's params.
func specWorkload(s sweep.Spec) (workloads.Params, error) {
	raw, ok := s.Params["workload"]
	if !ok {
		return workloads.Params{}, fmt.Errorf("missing %q param", "workload")
	}
	var p workloads.Params
	if err := json.Unmarshal([]byte(raw), &p); err != nil {
		return workloads.Params{}, fmt.Errorf("bad workload param %q: %v", raw, err)
	}
	return p, nil
}

// specInt parses an integer spec param.
func specInt(s sweep.Spec, key string) (int, error) {
	raw, ok := s.Params[key]
	if !ok {
		return 0, fmt.Errorf("missing %q param", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %q param %q", key, raw)
	}
	return v, nil
}

// parseProcessor inverts core.Processor.String.
func parseProcessor(name string) (core.Processor, error) {
	for _, p := range []core.Processor{core.ProcClank, core.ProcNVP, core.ProcUndoLog} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown processor %q (want clank, nvp or undolog)", name)
}

// checkVariant guards against a spec whose redundant variant label
// disagrees with the fields it was reconstructed from — such a spec would
// poison shared caches with mislabeled results.
func checkVariant(s sweep.Spec, want string) error {
	if s.Variant != "" && s.Variant != want {
		return fmt.Errorf("variant %q does not match spec fields (%q)", s.Variant, want)
	}
	return nil
}

func resolveTable1(s sweep.Spec) (func() (any, error), error) {
	b, err := workloads.ByName(s.Kernel)
	if err != nil {
		return nil, err
	}
	p, err := specWorkload(s)
	if err != nil {
		return nil, err
	}
	if err := checkVariant(s, PreciseVariant(b, p).String()); err != nil {
		return nil, err
	}
	return func() (any, error) { return runTable1Cell(b, p) }, nil
}

func resolveSpeedup(s sweep.Spec) (func() (any, error), error) {
	b, err := workloads.ByName(s.Kernel)
	if err != nil {
		return nil, err
	}
	p, err := specWorkload(s)
	if err != nil {
		return nil, err
	}
	proc, err := parseProcessor(s.Processor)
	if err != nil {
		return nil, err
	}
	bits, err := specInt(s, "bits")
	if err != nil {
		return nil, err
	}
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("bits %d out of range [1,8]", bits)
	}
	if err := checkVariant(s, WNVariant(b, p, bits).String()); err != nil {
		return nil, err
	}
	traceSeed, inputSeed := s.TraceSeed, s.InputSeed
	return func() (any, error) { return runSpeedupCell(proc, b, p, bits, traceSeed, inputSeed) }, nil
}
