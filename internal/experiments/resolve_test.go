package experiments

import (
	"bytes"
	"strings"
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// TestResolveTable1RoundTrip: resolving the enumerated table1 specs
// reproduces the study's own results byte for byte.
func TestResolveTable1RoundTrip(t *testing.T) {
	proto := DefaultProtocol()
	specs := Table1Specs(proto)
	if len(specs) != len(workloads.All()) {
		t.Fatalf("%d specs, want one per benchmark", len(specs))
	}
	jobs, err := ResolveSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := sweep.Serial().Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.Results[Table1Row](resolved)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table1(proto)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(rows) {
		t.Fatalf("%d resolved cells vs %d study rows", len(cells), len(rows))
	}
	for i := range rows {
		if cells[i] != rows[i] {
			t.Errorf("row %d: resolved %+v, study %+v", i, cells[i], rows[i])
		}
		if rows[i].Benchmark != specs[i].Kernel {
			t.Errorf("row %d is %s, spec says %s", i, rows[i].Benchmark, specs[i].Kernel)
		}
	}
}

// TestResolveSpeedupRoundTrip: a resolved speedup spec reruns the exact
// cell the study enumerated.
func TestResolveSpeedupRoundTrip(t *testing.T) {
	b := workloads.Var()
	p := DefaultProtocol().params(b)
	spec := speedupSpec(core.ProcClank, b, p, 4, 1000, 1)
	j1, err := ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sweep.Serial().Run([]sweep.Job{j1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sweep.Serial().Run([]sweep.Job{j2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1[0], r2[0]) {
		t.Error("re-resolved speedup cell is not deterministic")
	}
}

// TestResolveSpecErrors: malformed specs are rejected with messages that
// name the problem (these become wnserved's 400 bodies).
func TestResolveSpecErrors(t *testing.T) {
	b := workloads.Var()
	p := DefaultProtocol().params(b)
	good := speedupSpec(core.ProcClank, b, p, 4, 1000, 1)

	cases := []struct {
		name string
		mut  func(s sweep.Spec) sweep.Spec
		want string
	}{
		{"unknown experiment", func(s sweep.Spec) sweep.Spec { s.Experiment = "fig99"; return s }, "unresolvable experiment"},
		{"unknown kernel", func(s sweep.Spec) sweep.Spec { s.Kernel = "Nope"; return s }, "unknown benchmark"},
		{"unknown processor", func(s sweep.Spec) sweep.Spec { s.Processor = "magic"; return s }, "unknown processor"},
		{"missing bits", func(s sweep.Spec) sweep.Spec {
			s.Params = map[string]string{"workload": s.Params["workload"]}
			return s
		}, `missing "bits"`},
		{"bits out of range", func(s sweep.Spec) sweep.Spec {
			s.Params = map[string]string{"workload": s.Params["workload"], "bits": "99"}
			s.Variant = ""
			return s
		}, "out of range"},
		{"bad workload json", func(s sweep.Spec) sweep.Spec {
			s.Params = map[string]string{"workload": "{", "bits": "4"}
			return s
		}, "bad workload param"},
		{"variant mismatch", func(s sweep.Spec) sweep.Spec { s.Variant = "Var/swp8"; return s }, "does not match"},
	}
	for _, tc := range cases {
		_, err := ResolveSpec(tc.mut(good))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if _, err := ResolveSpec(Table1Specs(DefaultProtocol())[0]); err != nil {
		t.Errorf("valid table1 spec rejected: %v", err)
	}
}

// TestResolvableExperiments: the registry lists its experiments sorted.
func TestResolvableExperiments(t *testing.T) {
	names := ResolvableExperiments()
	if len(names) < 2 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	for _, n := range names {
		if ExperimentDesc(n) == "" {
			t.Errorf("experiment %s has no description", n)
		}
	}
}
