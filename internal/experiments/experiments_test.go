package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/workloads"
)

// TestFigure9Shapes checks every runtime-quality curve for the paper's
// qualitative properties: early availability, monotone-trend improvement,
// exact convergence, and bounded overhead to the precise result.
func TestFigure9Shapes(t *testing.T) {
	curves, err := Figure9(DefaultProtocol(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 12 {
		t.Fatalf("%d curves, want 12 (6 benchmarks x 2 subword sizes)", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) < 10 {
			t.Errorf("%s/%d-bit: only %d points", c.Benchmark, c.Bits, len(c.Points))
			continue
		}
		last := c.Points[len(c.Points)-1]
		if last.NRMSE != 0 {
			t.Errorf("%s/%d-bit: final NRMSE %v, want exact 0", c.Benchmark, c.Bits, last.NRMSE)
		}
		if over := c.FinalOverhead(); over <= 1 || over > 4 {
			t.Errorf("%s/%d-bit: final overhead %.2fx outside (1,4]", c.Benchmark, c.Bits, over)
		}
		// Error must never *increase* by more than noise over the run: take
		// the running minimum and require the curve ends at it.
		minSeen := c.Points[0].NRMSE
		for _, p := range c.Points {
			if p.NRMSE < minSeen {
				minSeen = p.NRMSE
			}
		}
		if minSeen != 0 {
			t.Errorf("%s/%d-bit: error floor %v never reaches 0", c.Benchmark, c.Bits, minSeen)
		}
		// An approximate output exists before the precise baseline finishes.
		if _, ok := c.EarliestAcceptable(25); !ok {
			t.Errorf("%s/%d-bit: no point under 25%% NRMSE", c.Benchmark, c.Bits)
		}
	}
}

// TestSpeedupOrderings verifies the paper's cross-configuration orderings
// on the fast protocol.
func TestSpeedupOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("intermittent sweep")
	}
	clank, err := SpeedupStudy(core.ProcClank, DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	nvp, err := SpeedupStudy(core.ProcNVP, DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]SpeedupRow{clank, nvp} {
		for _, r := range rows {
			if r.Speedup <= 1 {
				t.Errorf("%s/%d-bit: speedup %.2fx, want > 1", r.Benchmark, r.Bits, r.Speedup)
			}
			if r.NRMSE < 0 || r.NRMSE > 25 {
				t.Errorf("%s/%d-bit: NRMSE %.2f%% implausible", r.Benchmark, r.Bits, r.NRMSE)
			}
		}
	}
	// 4-bit beats 8-bit on average; Clank beats NVP (re-execution savings).
	c8, _ := SpeedupSummary(clank, 8)
	c4, _ := SpeedupSummary(clank, 4)
	n8, _ := SpeedupSummary(nvp, 8)
	n4, _ := SpeedupSummary(nvp, 4)
	if c4 <= c8 || n4 <= n8 {
		t.Errorf("4-bit should outrun 8-bit: clank %.2f/%.2f nvp %.2f/%.2f", c4, c8, n4, n8)
	}
	if c8 <= n8 || c4 <= n4 {
		t.Errorf("clank speedups should exceed nvp: %.2f vs %.2f, %.2f vs %.2f", c8, n8, c4, n4)
	}
	// Per-benchmark error ordering: 8-bit at least as accurate as 4-bit.
	byKey := map[string]float64{}
	for _, r := range clank {
		byKey[r.Benchmark+string(rune('0'+r.Bits))] = r.NRMSE
	}
	for _, b := range workloads.All() {
		if byKey[b.Name+"8"] > byKey[b.Name+"4"]+0.5 {
			t.Errorf("%s: 8-bit error %.2f%% exceeds 4-bit %.2f%%", b.Name, byKey[b.Name+"8"], byKey[b.Name+"4"])
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	dir := t.TempDir()
	r, err := Figure2(DefaultProtocol(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.WNNRMSE >= r.BaselineNRMSE {
		t.Errorf("WN at the budget (%.2f%%) must beat the truncated baseline (%.2f%%)", r.WNNRMSE, r.BaselineNRMSE)
	}
	if r.WNNRMSE > 10 {
		t.Errorf("WN image should be acceptable, NRMSE %.2f%%", r.WNNRMSE)
	}
	if r.BudgetFraction <= 0.3 || r.BudgetFraction >= 1 {
		t.Errorf("budget fraction %.2f out of range", r.BudgetFraction)
	}
	if len(r.ImagePaths) != 3 {
		t.Fatalf("wrote %d images, want 3", len(r.ImagePaths))
	}
	for _, p := range r.ImagePaths {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("image %s missing or empty", p)
		}
	}
}

func TestFigure3Deterministic(t *testing.T) {
	a, err := Figure3(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure3(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Readings) != len(b.Readings) || a.AnytimeAvgErrPct != b.AnytimeAvgErrPct {
		t.Fatal("Figure 3 must be deterministic for a fixed seed")
	}
	if !a.SampledMissedDip {
		t.Error("input sampling should miss a dip (the paper's point)")
	}
	if !a.AnytimeCaughtAll {
		t.Error("anytime processing should catch both dips")
	}
	if a.AnytimeAvgErrPct <= 0 || a.AnytimeAvgErrPct > 12 {
		t.Errorf("anytime error %.2f%% outside the paper's class (~7.5%%)", a.AnytimeAvgErrPct)
	}
	if a.AnytimeCost*2 > a.PreciseCost {
		t.Errorf("anytime pass (%d) should cost well under half a precise reading (%d)", a.AnytimeCost, a.PreciseCost)
	}
}

func TestFigure12Shape(t *testing.T) {
	rows, err := Figure12(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.EarlierBy <= 1 {
			t.Errorf("%d-bit: vectorized loads should be earlier, got %.2fx", r.Bits, r.EarlierBy)
		}
		if r.PlainNRMSE != r.VectorNRMSE {
			t.Errorf("%d-bit: load vectorization must not change the computed values", r.Bits)
		}
	}
	if rows[1].EarlierBy <= rows[0].EarlierBy {
		t.Error("4-bit should benefit more from vectorized loads than 8-bit")
	}
}

func TestFigure13Shape(t *testing.T) {
	rows, err := Figure13(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WithTable < r.NoTable {
			t.Errorf("%s: memoization should not slow things down (%.2f vs %.2f)", r.Config, r.WithTable, r.NoTable)
		}
	}
	// Smaller subwords hit the table more (fewer distinct operands).
	if !(rows[2].HitRate > rows[1].HitRate && rows[1].HitRate > rows[0].HitRate) {
		t.Errorf("hit rates should grow as subwords shrink: %+v", rows)
	}
}

func TestFigure14Shape(t *testing.T) {
	prov, unprov, err := Figure14(DefaultProtocol(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if last := prov.Points[len(prov.Points)-1].NRMSE; last != 0 {
		t.Errorf("provisioned final error %v, want 0", last)
	}
	if last := unprov.Points[len(unprov.Points)-1].NRMSE; last <= 0 {
		t.Error("unprovisioned addition must keep a carry-loss error floor")
	}
}

func TestFigure15Shape(t *testing.T) {
	rows, err := Figure15(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NRMSE >= rows[i-1].NRMSE {
			t.Errorf("error should shrink with wider subwords: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%d-bit earliest output should beat the baseline", r.Bits)
		}
	}
	if rows[0].Speedup <= rows[3].Speedup {
		t.Error("1-bit earliest output should be fastest")
	}
}

func TestFigure16WritesImages(t *testing.T) {
	dir := t.TempDir()
	r, err := Figure16(DefaultProtocol(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ImagePaths) != 4 {
		t.Fatalf("wrote %d images", len(r.ImagePaths))
	}
	for _, p := range r.ImagePaths {
		if filepath.Ext(p) != ".pgm" {
			t.Errorf("unexpected image name %s", p)
		}
	}
}

func TestFigure17Shape(t *testing.T) {
	pts, avg, err := Figure17(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 24 {
		t.Fatalf("%d data sets, want 24", len(pts))
	}
	dropped := 0
	for _, p := range pts {
		if p.WN <= 0 || p.WN > p.Precise {
			t.Errorf("set %d: WN estimate %v should under-approximate precise %v", p.DataSet, p.WN, p.Precise)
		}
		if p.Missed {
			dropped++
		}
	}
	if dropped != 12 {
		t.Errorf("sampling should drop every other set, dropped %d", dropped)
	}
	if avg <= 0 || avg > 15 {
		t.Errorf("average WN error %.2f%% implausible", avg)
	}
}

func TestStreamStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("stream sweep")
	}
	rows, err := StreamStudy(DefaultProtocol(), 12)
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string][]StreamRow{}
	for _, r := range rows {
		byCfg[r.Config] = append(byCfg[r.Config], r)
	}
	for _, r := range byCfg["precise"] {
		if r.Dropped == 0 {
			t.Errorf("%s precise: the arrival rate is set so the precise build must drop inputs", r.Benchmark)
		}
		if r.NRMSE != 0 {
			t.Errorf("%s precise: processed inputs are exact", r.Benchmark)
		}
	}
	for _, r := range byCfg["wn-4bit"] {
		if r.Dropped > r.Arrivals/4 {
			t.Errorf("%s wn: dropped %d of %d", r.Benchmark, r.Dropped, r.Arrivals)
		}
		if r.NRMSE <= 0 || r.NRMSE > 20 {
			t.Errorf("%s wn: NRMSE %.2f%%", r.Benchmark, r.NRMSE)
		}
	}
}

func TestProtocolParams(t *testing.T) {
	b := workloads.Conv2d()
	fast := DefaultProtocol().params(b)
	full := FullProtocol().params(b)
	if fast.ImgW != 32 || full.ImgW != 128 {
		t.Fatalf("protocol scaling wrong: %v %v", fast, full)
	}
	if v := WNVariant(b, fast, 4); v.String() != "Conv2d/swp4" {
		t.Errorf("variant name %q", v.String())
	}
	if v := PreciseVariant(b, fast); v.String() != "Conv2d/precise" {
		t.Errorf("variant name %q", v.String())
	}
	vl := WNVariant(b, fast, 4)
	vl.VectorLoads = true
	if vl.String() != "Conv2d/swp4+vloads" {
		t.Errorf("variant name %q", vl.String())
	}
}

// TestReductionStepCurves: the paper observes that reduction kernels
// improve in steps — the output in non-volatile memory only changes when a
// pass writes it. With a single output window, Var's quality curve must be
// piecewise constant with about one level per subword pass.
func TestReductionStepCurves(t *testing.T) {
	b := workloads.Var()
	c, err := RuntimeQuality(b, workloads.Params{Windows: 1, WindowSize: 64}, 4, 150)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, pt := range c.Points {
		distinct[pt.NRMSE] = true
	}
	// 12-bit data at 4-bit subwords: 3 passes => at most ~4 levels
	// (initial 100%, one per committed pass).
	if len(distinct) > 5 {
		t.Fatalf("Var single-window curve has %d distinct error levels; expected step plateaus (<=5)", len(distinct))
	}
	if len(distinct) < 3 {
		t.Fatalf("curve has only %d levels; passes should be visible", len(distinct))
	}
}
