package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/energy"
	"whatsnext/internal/mem"
	"whatsnext/internal/workloads"
)

// Table1Row characterizes one benchmark like Table I of the paper: the
// fraction of dynamic instructions amenable to WN and the full-precision
// runtime at 24 MHz.
type Table1Row struct {
	Benchmark   string
	Area        string
	Technique   string // SWP or SWV
	AmenablePct float64
	Cycles      uint64
	RuntimeMs   float64
}

// Table1 measures every benchmark's precise build. Amenable instructions
// are those the compiler marked as targets for subword pipelining or
// vectorization.
func Table1(proto Protocol) ([]Table1Row, error) {
	clk := energy.DefaultDeviceConfig().ClockHz
	var rows []Table1Row
	// The six kernels run back to back on one wiped device, so the table
	// costs one region allocation instead of six.
	shared := mem.New(mem.DefaultConfig())
	for i, b := range workloads.All() {
		p := proto.params(b)
		c, err := PreciseVariant(b, p).Compile()
		if err != nil {
			return nil, err
		}
		in := b.Inputs(p, 1)
		if i > 0 {
			shared.Wipe()
		}
		cp, _, err := bareDeviceOn(shared, c, in, false)
		if err != nil {
			return nil, err
		}
		cp.SetAmenablePCs(c.Program.Amenable)
		var cycles uint64
		for !cp.Halted {
			res, err := cp.RunUntil(1<<62, nil)
			if err != nil {
				return nil, fmt.Errorf("table 1 %s: %w", b.Name, err)
			}
			cycles += res.Cycles
		}
		tech := "SWV"
		if b.Mode == compiler.ModeSWP {
			tech = "SWP"
		}
		rows = append(rows, Table1Row{
			Benchmark:   b.Name,
			Area:        b.Area,
			Technique:   tech,
			AmenablePct: 100 * float64(cp.Stats.AmenableOps) / float64(cp.Stats.Instructions),
			Cycles:      cycles,
			RuntimeMs:   1000 * float64(cycles) / clk,
		})
	}
	return rows, nil
}

// PrintTable1 renders the rows in the paper's column order.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I: benchmark characteristics\n")
	fmt.Fprintf(w, "%-10s %-22s %-5s %10s %12s %14s\n",
		"Benchmark", "Area", "Tech", "Insn %", "Cycles", "Runtime (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-22s %-5s %9.2f%% %12d %14.2f\n",
			r.Benchmark, r.Area, r.Technique, r.AmenablePct, r.Cycles, r.RuntimeMs)
	}
}
