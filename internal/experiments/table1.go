package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/energy"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// Table1Row characterizes one benchmark like Table I of the paper: the
// fraction of dynamic instructions amenable to WN and the full-precision
// runtime at 24 MHz.
type Table1Row struct {
	Benchmark   string
	Area        string
	Technique   string // SWP or SWV
	AmenablePct float64
	Cycles      uint64
	RuntimeMs   float64
}

// Table1Specs enumerates the study's cells — one per benchmark — as bare
// specs, the form a remote client submits to wnserved.
func Table1Specs(proto Protocol) []sweep.Spec {
	var specs []sweep.Spec
	for _, b := range workloads.All() {
		p := proto.params(b)
		specs = append(specs, sweep.Spec{
			Experiment: "table1",
			Kernel:     b.Name,
			Variant:    PreciseVariant(b, p).String(),
			InputSeed:  1,
			Params:     specParams(p),
		})
	}
	return specs
}

// Table1 measures every benchmark's precise build through the sweep engine
// (or a remote runner). Amenable instructions are those the compiler marked
// as targets for subword pipelining or vectorization.
func Table1(proto Protocol) ([]Table1Row, error) {
	jobs, err := ResolveSpecs(Table1Specs(proto))
	if err != nil {
		return nil, err
	}
	rows, err := runSweep[Table1Row](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	return rows, nil
}

// runTable1Cell measures one benchmark: run the precise build to halt under
// continuous power, counting amenable dynamic instructions.
func runTable1Cell(b *workloads.Benchmark, p workloads.Params) (Table1Row, error) {
	clk := energy.DefaultDeviceConfig().ClockHz
	c, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return Table1Row{}, err
	}
	cp, _, err := bareDevice(c, b.Inputs(p, 1), false)
	if err != nil {
		return Table1Row{}, err
	}
	cp.SetAmenablePCs(c.Program.Amenable)
	var cycles uint64
	for !cp.Halted {
		res, err := runWindow(cp, 1<<62)
		if err != nil {
			return Table1Row{}, fmt.Errorf("%s fault: %w", b.Name, err)
		}
		cycles += res.Cycles
	}
	tech := "SWV"
	if b.Mode == compiler.ModeSWP {
		tech = "SWP"
	}
	return Table1Row{
		Benchmark:   b.Name,
		Area:        b.Area,
		Technique:   tech,
		AmenablePct: 100 * float64(cp.Stats.AmenableOps) / float64(cp.Stats.Instructions),
		Cycles:      cycles,
		RuntimeMs:   1000 * float64(cycles) / clk,
	}, nil
}

// PrintTable1 renders the rows in the paper's column order.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I: benchmark characteristics\n")
	fmt.Fprintf(w, "%-10s %-22s %-5s %10s %12s %14s\n",
		"Benchmark", "Area", "Tech", "Insn %", "Cycles", "Runtime (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-22s %-5s %9.2f%% %12d %14.2f\n",
			r.Benchmark, r.Area, r.Technique, r.AmenablePct, r.Cycles, r.RuntimeMs)
	}
}
