// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V): the runtime-quality curves, the intermittent
// speedup studies on both processor types, the design-exploration case
// studies, and the motivating examples of Section II. Each experiment
// returns structured results that cmd/wnbench prints in the paper's layout
// and bench_test.go exercises as Go benchmarks.
package experiments

import (
	"fmt"
	"sync"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/mem"
	"whatsnext/internal/quality"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// Protocol controls experiment effort. The paper invokes each application
// 3 times on 9 distinct voltage traces and reports medians; the default
// here is a lighter 1x3 protocol so the whole suite runs in seconds, with
// Full() restoring the paper's protocol.
type Protocol struct {
	Traces      int  // distinct harvest-trace seeds
	Invocations int  // input seeds per trace
	PaperScale  bool // paper-size inputs instead of scaled ones

	// Engine, when non-nil, runs each study's independent simulation cells
	// through the given sweep engine (worker pool + result cache). Nil
	// selects a serial, uncached engine whose output is the reference: any
	// parallel engine reproduces it byte for byte.
	Engine *sweep.Engine

	// Runner, when non-nil, overrides Engine with an arbitrary job runner —
	// in particular internal/serve's HTTP client, which ships each study's
	// specs to a shared wnserved instance instead of simulating locally.
	// The determinism contract makes the two indistinguishable byte for
	// byte (for experiments the server can resolve; see ResolveSpec).
	Runner sweep.Runner
}

// DefaultProtocol returns the fast protocol used by tests and benches.
func DefaultProtocol() Protocol { return Protocol{Traces: 3, Invocations: 1} }

// FullProtocol returns the paper's 3x9 protocol at paper input sizes.
func FullProtocol() Protocol { return Protocol{Traces: 9, Invocations: 3, PaperScale: true} }

func (p Protocol) params(b *workloads.Benchmark) workloads.Params {
	if p.PaperScale {
		return b.DefaultParams()
	}
	return b.ScaledParams()
}

// Variant names one compiled configuration of a benchmark.
type Variant struct {
	Bench       *workloads.Benchmark
	Params      workloads.Params
	Mode        compiler.Mode
	Bits        int
	Provisioned bool
	VectorLoads bool
	// ProgressEmbed selects the fused store-once lowering with the
	// Stateful-style resume scan (requires the kernel to declare
	// Progress); MaxPasses truncates to the most significant subword
	// passes (the NN study's accuracy-vs-energy axis).
	ProgressEmbed bool
	MaxPasses     int
}

// WNVariant returns the benchmark's anytime configuration at a subword
// size, using provisioned addition (the paper's SWV default).
func WNVariant(b *workloads.Benchmark, p workloads.Params, bits int) Variant {
	return Variant{Bench: b, Params: p, Mode: b.Mode, Bits: bits, Provisioned: true}
}

// PreciseVariant returns the conventional full-precision configuration.
func PreciseVariant(b *workloads.Benchmark, p workloads.Params) Variant {
	return Variant{Bench: b, Params: p, Mode: compiler.ModePrecise, Bits: 8}
}

// compileKey is the value identity of a Variant: two variants with equal
// keys compile to identical programs (compilation is deterministic).
type compileKey struct {
	bench         string
	params        workloads.Params
	mode          compiler.Mode
	bits          int
	provisioned   bool
	vectorLoads   bool
	progressEmbed bool
	maxPasses     int
}

// compileCache memoizes Variant.Compile. The studies compile the same
// handful of variants hundreds of times — once per trace seed, invocation,
// and sweep cell — and the Compiled result is immutable after construction,
// so one compilation serves them all.
var compileCache sync.Map // compileKey -> *compiler.Compiled

// Compile lowers the variant, reusing a prior identical compilation.
func (v Variant) Compile() (*compiler.Compiled, error) {
	key := compileKey{
		bench:         v.Bench.Name,
		params:        v.Params,
		mode:          v.Mode,
		bits:          v.Bits,
		provisioned:   v.Provisioned,
		vectorLoads:   v.VectorLoads,
		progressEmbed: v.ProgressEmbed,
		maxPasses:     v.MaxPasses,
	}
	if c, ok := compileCache.Load(key); ok {
		return c.(*compiler.Compiled), nil
	}
	k := v.Bench.Build(v.Params, v.Bits, v.Provisioned)
	c, err := compiler.Compile(k, compiler.Options{
		Mode:          v.Mode,
		VectorLoads:   v.VectorLoads,
		ProgressEmbed: v.ProgressEmbed,
		MaxPasses:     v.MaxPasses,
	})
	if err != nil {
		return nil, err
	}
	compileCache.Store(key, c)
	return c, nil
}

func (v Variant) String() string {
	var s string
	if v.Mode == compiler.ModePrecise {
		s = v.Bench.Name + "/precise"
	} else {
		s = fmt.Sprintf("%s/%s%d", v.Bench.Name, v.Mode, v.Bits)
	}
	if v.VectorLoads {
		s += "+vloads"
	}
	if v.MaxPasses > 0 {
		s += fmt.Sprintf("+p%d", v.MaxPasses)
	}
	if v.ProgressEmbed {
		s += "+embed"
	}
	return s
}

// bareDevice builds a CPU+memory with the program and inputs installed,
// without a power supply — for continuous-power runs driven cycle by cycle.
func bareDevice(c *compiler.Compiled, inputs map[string][]int64, memo bool) (*cpu.CPU, *mem.Memory, error) {
	return bareDeviceOn(mem.New(mem.DefaultConfig()), c, inputs, memo)
}

// bareDeviceOn installs the program and inputs on an existing (wiped)
// memory, letting serial harnesses reuse one region set across programs.
func bareDeviceOn(m *mem.Memory, c *compiler.Compiled, inputs map[string][]int64, memo bool) (*cpu.CPU, *mem.Memory, error) {
	if err := m.LoadProgram(c.Program.Image); err != nil {
		return nil, nil, err
	}
	if err := c.InstallData(m, inputs); err != nil {
		return nil, nil, err
	}
	cp := cpu.New(m)
	if memo {
		cp.Memo = cpu.NewMemoTable()
	}
	applyBackend(cp)
	return cp, m, nil
}

// contOptions controls a continuous (always-powered) run.
type contOptions struct {
	memo        bool
	stopAtSkim  bool   // stop when the first skim point arms
	cycleBudget uint64 // stop after this many cycles (0 = none)
	sampleEvery uint64 // invoke sample() at this cycle period (0 = never)
	sample      func(cycles uint64, m *mem.Memory)
}

// contResult is the outcome of a continuous run.
type contResult struct {
	Cycles       uint64
	Instructions uint64
	Halted       bool
	SkimArmed    bool
}

// runContinuous executes the program under uninterrupted power through the
// batched executor. Windows are sized to the next observable boundary — a
// quality sample or the cycle budget — and RunUntil stops at the first
// instruction that crosses it (and at every SKM), so samples, skim stops,
// and budget stops land on exactly the instruction boundaries the
// per-instruction reference loop would produce.
func runContinuous(c *compiler.Compiled, inputs map[string][]int64, opt contOptions) (contResult, *mem.Memory, error) {
	cp, m, err := bareDevice(c, inputs, opt.memo)
	if err != nil {
		return contResult{}, nil, err
	}
	var cycles, instrs uint64
	nextSample := opt.sampleEvery
	for !cp.Halted {
		budget := uint64(1) << 62
		if opt.sampleEvery != 0 && nextSample-cycles < budget {
			budget = nextSample - cycles
		}
		if opt.cycleBudget != 0 && opt.cycleBudget-cycles < budget {
			budget = opt.cycleBudget - cycles
		}
		res, err := runWindow(cp, budget)
		if err != nil {
			return contResult{}, nil, fmt.Errorf("experiments: %s fault: %w", c.Kernel.Name, err)
		}
		cycles += res.Cycles
		instrs += res.Instructions
		if opt.sampleEvery != 0 && cycles >= nextSample {
			opt.sample(cycles, m)
			nextSample += opt.sampleEvery
		}
		if opt.stopAtSkim && cp.SkimArmed {
			break
		}
		if opt.cycleBudget != 0 && cycles >= opt.cycleBudget {
			break
		}
	}
	return contResult{Cycles: cycles, Instructions: instrs, Halted: cp.Halted, SkimArmed: cp.SkimArmed}, m, nil
}

// outputNRMSE scores the current output of a memory against golden values.
func outputNRMSE(c *compiler.Compiled, m *mem.Memory, output string, golden []float64) (float64, error) {
	got, err := c.Layout.OutputValues(m, output)
	if err != nil {
		return 0, err
	}
	return quality.NRMSE(got, golden), nil
}

// preciseCycles measures the baseline full-precision runtime in cycles.
func preciseCycles(b *workloads.Benchmark, p workloads.Params, seed int64) (uint64, error) {
	c, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return 0, err
	}
	res, _, err := runContinuous(c, b.Inputs(p, seed), contOptions{})
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// intermittentSystem builds a powered device on a seeded synthetic Wi-Fi
// trace for the given processor kind.
func intermittentSystem(proc core.Processor, traceSeed int64, memo bool) *core.System {
	cfg := core.DefaultConfig()
	cfg.Processor = proc
	cfg.Memoization = memo
	trace := energy.SyntheticWiFiTrace(traceSeed, energy.DefaultTraceConfig())
	return core.NewSystem(cfg, trace)
}
