package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/mem"
	"whatsnext/internal/quality"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// earliestCell is the raw measurement shared by the design-space studies:
// cycles to a stopping point (earliest output or completion) and the output
// error at that moment.
type earliestCell struct {
	Cycles uint64
	NRMSE  float64
}

func (c earliestCell) SimulatedCycles() uint64 { return c.Cycles }

// --- Figure 12: combining vectorization and pipelining (MatMul) ---

// Fig12Row compares SWP MatMul with and without vectorized loads at one
// subword size: the cycle count to the earliest available output.
type Fig12Row struct {
	Bits             int
	PlainCycles      uint64 // first output, scalar subword loads
	VectorLoadCycles uint64 // first output, packed subword-major loads
	EarlierBy        float64
	PlainNRMSE       float64
	VectorNRMSE      float64
}

// Figure12 measures how much earlier MatMul's first approximate output is
// available when the ASP input is stored subword-major so one load fetches
// several subwords (the paper reports 1.08x and 1.24x for 8- and 4-bit).
// The four (bits, loads) builds are independent sweep jobs.
func Figure12(proto Protocol) ([]Fig12Row, error) {
	b := workloads.MatMul()
	p := proto.params(b)
	var jobs []sweep.Job
	for _, bits := range []int{8, 4} {
		for _, vec := range []bool{false, true} {
			v := WNVariant(b, p, bits)
			v.VectorLoads = vec
			jobs = append(jobs, sweep.Job{
				Spec: sweep.Spec{
					Experiment: "fig12",
					Kernel:     b.Name,
					Variant:    v.String(),
					InputSeed:  1,
					Params:     specParams(p),
				},
				Run: func() (any, error) { return runEarliestOutput(b, p, v) },
			})
		}
	}
	cells, err := runSweep[earliestCell](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("figure 12: %w", err)
	}
	var rows []Fig12Row
	for i, bits := range []int{8, 4} {
		plain, vload := cells[2*i], cells[2*i+1]
		rows = append(rows, Fig12Row{
			Bits:             bits,
			PlainCycles:      plain.Cycles,
			VectorLoadCycles: vload.Cycles,
			EarlierBy:        float64(plain.Cycles) / float64(vload.Cycles),
			PlainNRMSE:       plain.NRMSE,
			VectorNRMSE:      vload.NRMSE,
		})
	}
	return rows, nil
}

// runEarliestOutput runs a variant under continuous power to its first skim
// point and scores the output available there.
func runEarliestOutput(b *workloads.Benchmark, p workloads.Params, v Variant) (earliestCell, error) {
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	c, err := v.Compile()
	if err != nil {
		return earliestCell{}, err
	}
	res, m, err := runContinuous(c, in, contOptions{stopAtSkim: true})
	if err != nil {
		return earliestCell{}, err
	}
	nr, err := outputNRMSE(c, m, b.Output, golden)
	if err != nil {
		return earliestCell{}, err
	}
	return earliestCell{Cycles: res.Cycles, NRMSE: nr}, nil
}

// PrintFigure12 renders the comparison.
func PrintFigure12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "Figure 12: MatMul SWP with/without subword-vectorized loads (earliest output)\n")
	fmt.Fprintf(w, "%4s %16s %16s %10s %12s %12s\n", "Bits", "plain cycles", "vload cycles", "earlier", "plain err%", "vload err%")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %16d %16d %9.2fx %12.3f %12.3f\n",
			r.Bits, r.PlainCycles, r.VectorLoadCycles, r.EarlierBy, r.PlainNRMSE, r.VectorNRMSE)
	}
}

// --- Figure 13: memoization and zero skipping (Conv2d) ---

// Fig13Row reports earliest-output speedup with and without the 16-entry
// memo table + zero skipping, normalized to the precise no-table baseline.
type Fig13Row struct {
	Config    string // "precise", "8-bit", "4-bit"
	NoTable   float64
	WithTable float64
	HitRate   float64 // memo hit + zero-skip rate among multiplies
}

// fig13Cell is one (config, memo) measurement.
type fig13Cell struct {
	Cycles                  uint64
	Hits, Misses, ZeroSkips uint64
}

func (c fig13Cell) SimulatedCycles() uint64 { return c.Cycles }

// Figure13 reproduces the memoization case study: speedups of Conv2d when
// the earliest available output is taken, normalized to the precise case
// without memoization (paper: precise 1.11x; 8-bit 1.31->1.42x; 4-bit
// 1.7->1.97x). The six (config, table) runs are independent sweep jobs;
// speedups are derived from the decoded cycle counts.
func Figure13(proto Protocol) ([]Fig13Row, error) {
	b := workloads.Conv2d()
	p := proto.params(b)

	type cfg struct {
		name string
		mode compiler.Mode
		bits int
	}
	cfgs := []cfg{
		{"precise", compiler.ModePrecise, 8},
		{"8-bit", compiler.ModeSWP, 8},
		{"4-bit", compiler.ModeSWP, 4},
	}
	var jobs []sweep.Job
	for _, cf := range cfgs {
		for _, memo := range []bool{false, true} {
			v := Variant{Bench: b, Params: p, Mode: cf.mode, Bits: cf.bits, Provisioned: true}
			jobs = append(jobs, sweep.Job{
				Spec: sweep.Spec{
					Experiment: "fig13",
					Kernel:     b.Name,
					Variant:    v.String(),
					InputSeed:  1,
					Params:     specParams(p, "memo", fmt.Sprint(memo)),
				},
				Run: func() (any, error) { return runFig13Cell(b, p, v, memo) },
			})
		}
	}
	cells, err := runSweep[fig13Cell](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("figure 13: %w", err)
	}
	baseline := float64(cells[0].Cycles) // precise, no table
	var rows []Fig13Row
	for i, cf := range cfgs {
		plain, memo := cells[2*i], cells[2*i+1]
		row := Fig13Row{
			Config:    cf.name,
			NoTable:   baseline / float64(plain.Cycles),
			WithTable: baseline / float64(memo.Cycles),
		}
		if total := memo.Hits + memo.Misses + memo.ZeroSkips; total > 0 {
			row.HitRate = float64(memo.Hits+memo.ZeroSkips) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runFig13Cell measures Conv2d to its earliest output (or completion for
// the precise build) with or without the memo table.
func runFig13Cell(b *workloads.Benchmark, p workloads.Params, v Variant, memo bool) (fig13Cell, error) {
	in := b.Inputs(p, 1)
	c, err := v.Compile()
	if err != nil {
		return fig13Cell{}, err
	}
	cp, _, err := bareDevice(c, in, memo)
	if err != nil {
		return fig13Cell{}, err
	}
	var cycles uint64
	for !cp.Halted {
		cost, err := cp.Step()
		if err != nil {
			return fig13Cell{}, err
		}
		cycles += uint64(cost.Cycles)
		if v.Mode == compiler.ModeSWP && cp.SkimArmed {
			break
		}
	}
	cell := fig13Cell{Cycles: cycles}
	if memo {
		cell.Hits, cell.Misses, cell.ZeroSkips = cp.Memo.Hits, cp.Memo.Misses, cp.Memo.ZeroSkips
	}
	return cell, nil
}

// PrintFigure13 renders the memoization study.
func PrintFigure13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintf(w, "Figure 13: Conv2d earliest-output speedup with memoization + zero skipping\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "Config", "no table", "16-entry", "hit rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9.2fx %9.2fx %9.1f%%\n", r.Config, r.NoTable, r.WithTable, 100*r.HitRate)
	}
}

// --- Figure 14: provisioned vs unprovisioned vectorized addition ---

// Figure14 reproduces the provisioning study on MatAdd with 8-bit subwords:
// the unprovisioned build drops inter-lane carries and its error plateaus,
// while the provisioned build reaches the precise result. The two curves
// are independent sweep jobs (each computes its own precise baseline).
func Figure14(proto Protocol, samples int) (provisioned, unprovisioned QualityCurve, err error) {
	b := workloads.MatAdd()
	p := proto.params(b)
	var jobs []sweep.Job
	for _, prov := range []bool{true, false} {
		v := WNVariant(b, p, 8)
		v.Provisioned = prov
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "fig14",
				Kernel:     b.Name,
				Variant:    fmt.Sprintf("%s/prov=%t", v.String(), prov),
				InputSeed:  1,
				Params:     specParams(p, "samples", itoa(samples)),
			},
			Run: func() (any, error) { return runFig14Curve(b, p, v, samples) },
		})
	}
	curves, err := runSweep[QualityCurve](proto.runner(), jobs)
	if err != nil {
		return QualityCurve{}, QualityCurve{}, fmt.Errorf("figure 14: %w", err)
	}
	return curves[0], curves[1], nil
}

func runFig14Curve(b *workloads.Benchmark, p workloads.Params, v Variant, samples int) (QualityCurve, error) {
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	base, err := preciseCycles(b, p, 1)
	if err != nil {
		return QualityCurve{}, err
	}
	c, err := v.Compile()
	if err != nil {
		return QualityCurve{}, err
	}
	return traceQuality(c, b, in, golden, base, samples)
}

// PrintFigure14 renders the two curves.
func PrintFigure14(w io.Writer, prov, unprov QualityCurve) {
	fmt.Fprintf(w, "Figure 14: MatAdd 8-bit SWV, provisioned vs unprovisioned addition\n")
	fmt.Fprintf(w, "provisioned final NRMSE:   %.6f%% at %.2fx runtime\n",
		prov.Points[len(prov.Points)-1].NRMSE, prov.FinalOverhead())
	fmt.Fprintf(w, "unprovisioned final NRMSE: %.6f%% at %.2fx runtime (carry loss floor)\n",
		unprov.Points[len(unprov.Points)-1].NRMSE, unprov.FinalOverhead())
	for _, c := range []struct {
		name  string
		curve QualityCurve
	}{{"provisioned", prov}, {"unprovisioned", unprov}} {
		fmt.Fprintf(w, "# %s\nnorm_runtime,nrmse_pct\n", c.name)
		for _, pt := range c.curve.Points {
			fmt.Fprintf(w, "%.4f,%.6g\n", pt.NormRuntime, pt.NRMSE)
		}
	}
}

// traceQuality collects a quality curve for an already compiled kernel.
func traceQuality(c *compiler.Compiled, b *workloads.Benchmark, in map[string][]int64, golden []float64, base uint64, samples int) (QualityCurve, error) {
	if samples <= 0 {
		samples = 120
	}
	curve := QualityCurve{Benchmark: b.Name, Bits: 0, BaselineCycles: base}
	period := 3 * base / uint64(samples)
	if period == 0 {
		period = 1
	}
	var sampleErr error
	res, m, err := runContinuous(c, in, contOptions{
		sampleEvery: period,
		sample: func(cycles uint64, mm *mem.Memory) {
			nr, err := outputNRMSE(c, mm, b.Output, golden)
			if err != nil {
				sampleErr = err
				return
			}
			curve.Points = append(curve.Points, QualityPoint{NormRuntime: float64(cycles) / float64(base), NRMSE: nr})
		},
	})
	if err != nil {
		return QualityCurve{}, err
	}
	if sampleErr != nil {
		return QualityCurve{}, sampleErr
	}
	curve.FinalCycles = res.Cycles
	final, err := outputNRMSE(c, m, b.Output, golden)
	if err != nil {
		return QualityCurve{}, err
	}
	curve.Points = append(curve.Points, QualityPoint{NormRuntime: float64(res.Cycles) / float64(base), NRMSE: final})
	return curve, nil
}

// --- Figure 15: pipelining with small subwords (Conv2d) ---

// Fig15Row is the earliest-output speedup and error for a small subword.
type Fig15Row struct {
	Bits    int
	Speedup float64
	NRMSE   float64
	Cycles  uint64
}

// Figure15 sweeps 1-, 2-, 3- and 4-bit subword pipelining on Conv2d,
// taking the earliest available output (paper: error rises and speedup
// grows as subwords shrink; 1-bit reaches 2.26x). The precise baseline and
// the four subword builds are five independent sweep jobs.
func Figure15(proto Protocol) ([]Fig15Row, error) {
	b := workloads.Conv2d()
	p := proto.params(b)
	allBits := []int{1, 2, 3, 4}
	jobs := []sweep.Job{{
		Spec: sweep.Spec{
			Experiment: "fig15",
			Kernel:     b.Name,
			Variant:    PreciseVariant(b, p).String(),
			InputSeed:  1,
			Params:     specParams(p),
		},
		Run: func() (any, error) {
			cycles, err := preciseCycles(b, p, 1)
			return earliestCell{Cycles: cycles}, err
		},
	}}
	for _, bits := range allBits {
		v := WNVariant(b, p, bits)
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "fig15",
				Kernel:     b.Name,
				Variant:    v.String(),
				InputSeed:  1,
				Params:     specParams(p),
			},
			Run: func() (any, error) { return runEarliestOutput(b, p, v) },
		})
	}
	cells, err := runSweep[earliestCell](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("figure 15: %w", err)
	}
	base := cells[0].Cycles
	var rows []Fig15Row
	for i, bits := range allBits {
		c := cells[i+1]
		rows = append(rows, Fig15Row{
			Bits:    bits,
			Speedup: float64(base) / float64(c.Cycles),
			NRMSE:   c.NRMSE,
			Cycles:  c.Cycles,
		})
	}
	return rows, nil
}

// PrintFigure15 renders the sweep.
func PrintFigure15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintf(w, "Figure 15: Conv2d earliest output with small subwords\n")
	fmt.Fprintf(w, "%5s %10s %10s %14s\n", "Bits", "Speedup", "NRMSE %", "Cycles")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %9.2fx %10.3f %14d\n", r.Bits, r.Speedup, r.NRMSE, r.Cycles)
	}
}

// --- Figure 17: WN vs input sampling on Var ---

// Fig17Point is one data set's variance under the three schemes.
type Fig17Point struct {
	DataSet int
	Precise float64 // exact variance of the data set
	WN      float64 // first-pass anytime estimate (all sets processed)
	Sampled float64 // precise value, but only every other set is processed
	Missed  bool    // the sampling scheme dropped this set
}

// fig17Cell is one data set's pair of exact and first-pass values.
type fig17Cell struct {
	Precise float64
	WN      float64
}

// Figure17 reproduces the Var case study: 24 sensor data sets arrive in a
// stream; the precise implementation at 4-bit-pass energy cost can only
// keep up with every other set (sampling), while WN produces a first-pass
// estimate for every set (paper: 1.53% average measured-value error, peaks
// and troughs all captured). Each data set is one sweep job.
func Figure17(proto Protocol) ([]Fig17Point, float64, error) {
	b := workloads.Var()
	const sets = 24
	p := workloads.Params{Windows: 1, WindowSize: 64}
	// The paper's framing: Var's first 4-bit estimate is ready in roughly
	// half the precise time, so WN can process about two samples for every
	// sample the precise implementation completes at the same energy. Each
	// set is scored at its first skim point (earliest available output).
	var jobs []sweep.Job
	for d := 0; d < sets; d++ {
		inputSeed := int64(100 + d)
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "fig17",
				Kernel:     b.Name,
				Variant:    WNVariant(b, p, 4).String(),
				InputSeed:  inputSeed,
				Params:     specParams(p),
			},
			Run: func() (any, error) { return runFig17Set(b, p, inputSeed) },
		})
	}
	cells, err := runSweep[fig17Cell](proto.runner(), jobs)
	if err != nil {
		return nil, 0, fmt.Errorf("figure 17: %w", err)
	}
	var points []Fig17Point
	var relErrs []float64
	for d, c := range cells {
		points = append(points, Fig17Point{
			DataSet: d,
			Precise: c.Precise,
			WN:      c.WN,
			Sampled: c.Precise,
			Missed:  d%2 == 1, // precise can only process every other set
		})
		if c.Precise != 0 {
			relErrs = append(relErrs, 100*abs(c.WN-c.Precise)/c.Precise)
		}
	}
	return points, quality.Mean(relErrs), nil
}

// runFig17Set computes one data set's exact variance and its first-pass
// 4-bit estimate.
func runFig17Set(b *workloads.Benchmark, p workloads.Params, inputSeed int64) (fig17Cell, error) {
	c, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return fig17Cell{}, err
	}
	in := b.Inputs(p, inputSeed)
	golden := b.Golden(p, in)
	_, m, err := runContinuous(c, in, contOptions{stopAtSkim: true})
	if err != nil {
		return fig17Cell{}, err
	}
	got, err := c.Layout.OutputValues(m, b.Output)
	if err != nil {
		return fig17Cell{}, err
	}
	return fig17Cell{Precise: golden[0], WN: got[0]}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PrintFigure17 renders the stream comparison.
func PrintFigure17(w io.Writer, points []Fig17Point, avgErr float64) {
	fmt.Fprintf(w, "Figure 17: Var — WN vs input sampling over %d data sets (avg WN error %.2f%%)\n", len(points), avgErr)
	fmt.Fprintf(w, "%4s %12s %12s %12s\n", "set", "precise", "WN(4-bit)", "sampled")
	for _, p := range points {
		sampled := fmt.Sprintf("%12.0f", p.Sampled)
		if p.Missed {
			sampled = fmt.Sprintf("%12s", "(dropped)")
		}
		fmt.Fprintf(w, "%4d %12.0f %12.0f %s\n", p.DataSet, p.Precise, p.WN, sampled)
	}
}
