package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/mem"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

// --- Figure 12: combining vectorization and pipelining (MatMul) ---

// Fig12Row compares SWP MatMul with and without vectorized loads at one
// subword size: the cycle count to the earliest available output.
type Fig12Row struct {
	Bits             int
	PlainCycles      uint64 // first output, scalar subword loads
	VectorLoadCycles uint64 // first output, packed subword-major loads
	EarlierBy        float64
	PlainNRMSE       float64
	VectorNRMSE      float64
}

// Figure12 measures how much earlier MatMul's first approximate output is
// available when the ASP input is stored subword-major so one load fetches
// several subwords (the paper reports 1.08x and 1.24x for 8- and 4-bit).
func Figure12(proto Protocol) ([]Fig12Row, error) {
	b := workloads.MatMul()
	p := proto.params(b)
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	var rows []Fig12Row
	for _, bits := range []int{8, 4} {
		row := Fig12Row{Bits: bits}
		for _, vec := range []bool{false, true} {
			v := WNVariant(b, p, bits)
			v.VectorLoads = vec
			c, err := v.Compile()
			if err != nil {
				return nil, err
			}
			res, m, err := runContinuous(c, in, contOptions{stopAtSkim: true})
			if err != nil {
				return nil, err
			}
			nr, err := outputNRMSE(c, m, b.Output, golden)
			if err != nil {
				return nil, err
			}
			if vec {
				row.VectorLoadCycles, row.VectorNRMSE = res.Cycles, nr
			} else {
				row.PlainCycles, row.PlainNRMSE = res.Cycles, nr
			}
		}
		row.EarlierBy = float64(row.PlainCycles) / float64(row.VectorLoadCycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure12 renders the comparison.
func PrintFigure12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "Figure 12: MatMul SWP with/without subword-vectorized loads (earliest output)\n")
	fmt.Fprintf(w, "%4s %16s %16s %10s %12s %12s\n", "Bits", "plain cycles", "vload cycles", "earlier", "plain err%", "vload err%")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %16d %16d %9.2fx %12.3f %12.3f\n",
			r.Bits, r.PlainCycles, r.VectorLoadCycles, r.EarlierBy, r.PlainNRMSE, r.VectorNRMSE)
	}
}

// --- Figure 13: memoization and zero skipping (Conv2d) ---

// Fig13Row reports earliest-output speedup with and without the 16-entry
// memo table + zero skipping, normalized to the precise no-table baseline.
type Fig13Row struct {
	Config    string // "precise", "8-bit", "4-bit"
	NoTable   float64
	WithTable float64
	HitRate   float64 // memo hit + zero-skip rate among multiplies
}

// Figure13 reproduces the memoization case study: speedups of Conv2d when
// the earliest available output is taken, normalized to the precise case
// without memoization (paper: precise 1.11x; 8-bit 1.31->1.42x; 4-bit
// 1.7->1.97x).
func Figure13(proto Protocol) ([]Fig13Row, error) {
	b := workloads.Conv2d()
	p := proto.params(b)
	in := b.Inputs(p, 1)

	type cfg struct {
		name string
		mode compiler.Mode
		bits int
	}
	cfgs := []cfg{
		{"precise", compiler.ModePrecise, 8},
		{"8-bit", compiler.ModeSWP, 8},
		{"4-bit", compiler.ModeSWP, 4},
	}
	var baseline float64
	var rows []Fig13Row
	for i, cf := range cfgs {
		v := Variant{Bench: b, Params: p, Mode: cf.mode, Bits: cf.bits, Provisioned: true}
		c, err := v.Compile()
		if err != nil {
			return nil, err
		}
		row := Fig13Row{Config: cf.name}
		for _, memo := range []bool{false, true} {
			cp, m, err := bareDevice(c, in, memo)
			if err != nil {
				return nil, err
			}
			_ = m
			var cycles uint64
			for !cp.Halted {
				cost, err := cp.Step()
				if err != nil {
					return nil, err
				}
				cycles += uint64(cost.Cycles)
				if cf.mode == compiler.ModeSWP && cp.SkimArmed {
					break
				}
			}
			if i == 0 && !memo {
				baseline = float64(cycles)
			}
			sp := baseline / float64(cycles)
			if memo {
				row.WithTable = sp
				total := cp.Memo.Hits + cp.Memo.Misses + cp.Memo.ZeroSkips
				if total > 0 {
					row.HitRate = float64(cp.Memo.Hits+cp.Memo.ZeroSkips) / float64(total)
				}
			} else {
				row.NoTable = sp
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure13 renders the memoization study.
func PrintFigure13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintf(w, "Figure 13: Conv2d earliest-output speedup with memoization + zero skipping\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "Config", "no table", "16-entry", "hit rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9.2fx %9.2fx %9.1f%%\n", r.Config, r.NoTable, r.WithTable, 100*r.HitRate)
	}
}

// --- Figure 14: provisioned vs unprovisioned vectorized addition ---

// Figure14 reproduces the provisioning study on MatAdd with 8-bit subwords:
// the unprovisioned build drops inter-lane carries and its error plateaus,
// while the provisioned build reaches the precise result.
func Figure14(proto Protocol, samples int) (provisioned, unprovisioned QualityCurve, err error) {
	b := workloads.MatAdd()
	p := proto.params(b)
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	base, err := preciseCycles(b, p, 1)
	if err != nil {
		return QualityCurve{}, QualityCurve{}, err
	}
	run := func(prov bool) (QualityCurve, error) {
		v := WNVariant(b, p, 8)
		v.Provisioned = prov
		c, err := v.Compile()
		if err != nil {
			return QualityCurve{}, err
		}
		return traceQuality(c, b, in, golden, base, samples)
	}
	if provisioned, err = run(true); err != nil {
		return
	}
	unprovisioned, err = run(false)
	return
}

// PrintFigure14 renders the two curves.
func PrintFigure14(w io.Writer, prov, unprov QualityCurve) {
	fmt.Fprintf(w, "Figure 14: MatAdd 8-bit SWV, provisioned vs unprovisioned addition\n")
	fmt.Fprintf(w, "provisioned final NRMSE:   %.6f%% at %.2fx runtime\n",
		prov.Points[len(prov.Points)-1].NRMSE, prov.FinalOverhead())
	fmt.Fprintf(w, "unprovisioned final NRMSE: %.6f%% at %.2fx runtime (carry loss floor)\n",
		unprov.Points[len(unprov.Points)-1].NRMSE, unprov.FinalOverhead())
	for _, c := range []struct {
		name  string
		curve QualityCurve
	}{{"provisioned", prov}, {"unprovisioned", unprov}} {
		fmt.Fprintf(w, "# %s\nnorm_runtime,nrmse_pct\n", c.name)
		for _, pt := range c.curve.Points {
			fmt.Fprintf(w, "%.4f,%.6g\n", pt.NormRuntime, pt.NRMSE)
		}
	}
}

// traceQuality collects a quality curve for an already compiled kernel.
func traceQuality(c *compiler.Compiled, b *workloads.Benchmark, in map[string][]int64, golden []float64, base uint64, samples int) (QualityCurve, error) {
	if samples <= 0 {
		samples = 120
	}
	curve := QualityCurve{Benchmark: b.Name, Bits: 0, BaselineCycles: base}
	period := 3 * base / uint64(samples)
	if period == 0 {
		period = 1
	}
	var sampleErr error
	res, m, err := runContinuous(c, in, contOptions{
		sampleEvery: period,
		sample: func(cycles uint64, mm *mem.Memory) {
			nr, err := outputNRMSE(c, mm, b.Output, golden)
			if err != nil {
				sampleErr = err
				return
			}
			curve.Points = append(curve.Points, QualityPoint{NormRuntime: float64(cycles) / float64(base), NRMSE: nr})
		},
	})
	if err != nil {
		return QualityCurve{}, err
	}
	if sampleErr != nil {
		return QualityCurve{}, sampleErr
	}
	curve.FinalCycles = res.Cycles
	final, err := outputNRMSE(c, m, b.Output, golden)
	if err != nil {
		return QualityCurve{}, err
	}
	curve.Points = append(curve.Points, QualityPoint{NormRuntime: float64(res.Cycles) / float64(base), NRMSE: final})
	return curve, nil
}

// --- Figure 15: pipelining with small subwords (Conv2d) ---

// Fig15Row is the earliest-output speedup and error for a small subword.
type Fig15Row struct {
	Bits    int
	Speedup float64
	NRMSE   float64
	Cycles  uint64
}

// Figure15 sweeps 1-, 2-, 3- and 4-bit subword pipelining on Conv2d,
// taking the earliest available output (paper: error rises and speedup
// grows as subwords shrink; 1-bit reaches 2.26x).
func Figure15(proto Protocol) ([]Fig15Row, error) {
	b := workloads.Conv2d()
	p := proto.params(b)
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	base, err := preciseCycles(b, p, 1)
	if err != nil {
		return nil, err
	}
	var rows []Fig15Row
	for _, bits := range []int{1, 2, 3, 4} {
		c, err := WNVariant(b, p, bits).Compile()
		if err != nil {
			return nil, err
		}
		res, m, err := runContinuous(c, in, contOptions{stopAtSkim: true})
		if err != nil {
			return nil, err
		}
		nr, err := outputNRMSE(c, m, b.Output, golden)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig15Row{
			Bits:    bits,
			Speedup: float64(base) / float64(res.Cycles),
			NRMSE:   nr,
			Cycles:  res.Cycles,
		})
	}
	return rows, nil
}

// PrintFigure15 renders the sweep.
func PrintFigure15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintf(w, "Figure 15: Conv2d earliest output with small subwords\n")
	fmt.Fprintf(w, "%5s %10s %10s %14s\n", "Bits", "Speedup", "NRMSE %", "Cycles")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %9.2fx %10.3f %14d\n", r.Bits, r.Speedup, r.NRMSE, r.Cycles)
	}
}

// --- Figure 17: WN vs input sampling on Var ---

// Fig17Point is one data set's variance under the three schemes.
type Fig17Point struct {
	DataSet int
	Precise float64 // exact variance of the data set
	WN      float64 // first-pass anytime estimate (all sets processed)
	Sampled float64 // precise value, but only every other set is processed
	Missed  bool    // the sampling scheme dropped this set
}

// Figure17 reproduces the Var case study: 24 sensor data sets arrive in a
// stream; the precise implementation at 4-bit-pass energy cost can only
// keep up with every other set (sampling), while WN produces a first-pass
// estimate for every set (paper: 1.53% average measured-value error, peaks
// and troughs all captured).
func Figure17(proto Protocol) ([]Fig17Point, float64, error) {
	b := workloads.Var()
	const sets = 24
	p := workloads.Params{Windows: 1, WindowSize: 64}
	c, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return nil, 0, err
	}
	// The paper's framing: Var's first 4-bit estimate is ready in roughly
	// half the precise time, so WN can process about two samples for every
	// sample the precise implementation completes at the same energy. Each
	// set is scored at its first skim point (earliest available output).
	var points []Fig17Point
	var relErrs []float64
	for d := 0; d < sets; d++ {
		in := b.Inputs(p, int64(100+d))
		golden := b.Golden(p, in)
		res, m, err := runContinuous(c, in, contOptions{stopAtSkim: true})
		if err != nil {
			return nil, 0, err
		}
		_ = res
		got, err := c.Layout.OutputValues(m, b.Output)
		if err != nil {
			return nil, 0, err
		}
		pt := Fig17Point{
			DataSet: d,
			Precise: golden[0],
			WN:      got[0],
			Sampled: golden[0],
			Missed:  d%2 == 1, // precise can only process every other set
		}
		points = append(points, pt)
		if golden[0] != 0 {
			relErrs = append(relErrs, 100*abs(got[0]-golden[0])/golden[0])
		}
	}
	return points, quality.Mean(relErrs), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PrintFigure17 renders the stream comparison.
func PrintFigure17(w io.Writer, points []Fig17Point, avgErr float64) {
	fmt.Fprintf(w, "Figure 17: Var — WN vs input sampling over %d data sets (avg WN error %.2f%%)\n", len(points), avgErr)
	fmt.Fprintf(w, "%4s %12s %12s %12s\n", "set", "precise", "WN(4-bit)", "sampled")
	for _, p := range points {
		sampled := fmt.Sprintf("%12.0f", p.Sampled)
		if p.Missed {
			sampled = fmt.Sprintf("%12s", "(dropped)")
		}
		fmt.Fprintf(w, "%4d %12.0f %12.0f %s\n", p.DataSet, p.Precise, p.WN, sampled)
	}
}
