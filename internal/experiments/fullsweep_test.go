package experiments

import (
	"os"
	"testing"

	"whatsnext/internal/core"
)

// TestSpeedupSweep prints the full Figure 10/11 tables under the default
// protocol. Run with -run SpeedupSweep -v to inspect shapes.
func TestSpeedupSweep(t *testing.T) {
	if os.Getenv("WN_SWEEP") == "" {
		t.Skip("set WN_SWEEP=1 to run the full sweep")
	}
	for _, proc := range []core.Processor{core.ProcClank, core.ProcNVP} {
		rows, err := SpeedupStudy(proc, DefaultProtocol())
		if err != nil {
			t.Fatal(err)
		}
		PrintSpeedup(os.Stdout, "Speedup on "+proc.String(), rows)
	}
}
