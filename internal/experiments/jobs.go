package experiments

import (
	"encoding/json"
	"strconv"

	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// This file is the bridge between the studies and the sweep engine: each
// experiment enumerates its independent simulation cells as sweep.Jobs
// (spec + self-contained Run closure), submits them in one batch, and
// decodes the results back into its row types. Every Run closure compiles
// its own variants and builds its own device, so cells share no mutable
// state and the engine may run them on any number of workers.

// runner returns the protocol's job runner: an explicit Runner (e.g. a
// remote wnserved client) wins, then the configured engine, then a serial
// uncached engine.
func (p Protocol) runner() sweep.Runner {
	if p.Runner != nil {
		return p.Runner
	}
	if p.Engine != nil {
		return p.Engine
	}
	return sweep.Serial()
}

// runSweep submits a homogeneous job list and decodes each result.
func runSweep[T any](r sweep.Runner, jobs []sweep.Job) ([]T, error) {
	raws, err := r.Run(jobs)
	if err != nil {
		return nil, err
	}
	return sweep.Results[T](raws)
}

// encodeParams canonicalizes a workload size for inclusion in a job spec;
// two cells with different input sizes must never share a cache key.
func encodeParams(p workloads.Params) string {
	b, err := json.Marshal(p)
	if err != nil {
		panic("experiments: unmarshalable params: " + err.Error())
	}
	return string(b)
}

// specParams builds the Params map of a spec from alternating key, value
// strings plus the workload size.
func specParams(p workloads.Params, kv ...string) map[string]string {
	m := map[string]string{"workload": encodeParams(p)}
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func itoa(v int) string { return strconv.Itoa(v) }
