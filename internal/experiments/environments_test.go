package experiments

import (
	"os"
	"testing"
)

func TestEnvironmentStudy(t *testing.T) {
	rows, err := EnvironmentStudy(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	PrintEnvironments(os.Stdout, rows)
	if len(rows) != 4 {
		t.Fatalf("%d environments", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0.5 {
			t.Errorf("%s: speedup %.2f implausible", r.Source, r.Speedup)
		}
		if r.NRMSE < 0 || r.NRMSE > 15 {
			t.Errorf("%s: NRMSE %.2f implausible", r.Source, r.NRMSE)
		}
	}
}
