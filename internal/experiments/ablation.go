package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/quality"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// Ablation studies for the design choices the paper motivates but does not
// sweep exhaustively: the value of skim points themselves, the watchdog
// interval of the Clank runtime, the storage capacitor size, and the memo
// table capacity (the paper's footnote: "more entries only provides modest
// additional improvements"). Each sweep point is an independent sweep job.

// SkimAblationRow compares a WN build with and without skim points under
// harvested power.
type SkimAblationRow struct {
	Benchmark    string
	WithSkim     float64 // speedup vs precise
	WithoutSkim  float64
	SkimNRMSE    float64
	NoSkimCycles uint64
}

// SkimAblation isolates the contribution of skim points: the same subword-
// pipelined/vectorized binary is run with and without SKM insertion. With
// no skim point the application must always run to the precise result, so
// the anytime passes become pure overhead.
func SkimAblation(proto Protocol) ([]SkimAblationRow, error) {
	var jobs []sweep.Job
	for _, b := range workloads.All() {
		p := proto.params(b)
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "ablation/skim",
				Kernel:     b.Name,
				Variant:    fmt.Sprintf("%s/%s4", b.Name, b.Mode),
				Processor:  core.ProcClank.String(),
				Source:     string(energy.SourceWiFi),
				TraceSeed:  77,
				InputSeed:  1,
				Params:     specParams(p),
			},
			Run: func() (any, error) { return runSkimAblation(b, p) },
		})
	}
	rows, err := runSweep[SkimAblationRow](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("skim ablation: %w", err)
	}
	return rows, nil
}

func runSkimAblation(b *workloads.Benchmark, p workloads.Params) (SkimAblationRow, error) {
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)

	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return SkimAblationRow{}, err
	}
	k := b.Build(p, 4, true)
	withSkim, err := compiler.Compile(k, compiler.Options{Mode: b.Mode})
	if err != nil {
		return SkimAblationRow{}, err
	}
	noSkim, err := compiler.Compile(k, compiler.Options{Mode: b.Mode, NoSkim: true})
	if err != nil {
		return SkimAblationRow{}, err
	}

	run := func(c *compiler.Compiled) (uint64, []float64, error) {
		sys := intermittentSystem(core.ProcClank, 77, false)
		if err := sys.Load(c); err != nil {
			return 0, nil, err
		}
		res, err := sys.RunInput(in)
		if err != nil {
			return 0, nil, err
		}
		out, err := sys.Output(b.Output)
		return res.TotalCycles(), out, err
	}
	pc, _, err := run(precise)
	if err != nil {
		return SkimAblationRow{}, err
	}
	sc, sout, err := run(withSkim)
	if err != nil {
		return SkimAblationRow{}, err
	}
	nc, _, err := run(noSkim)
	if err != nil {
		return SkimAblationRow{}, err
	}
	return SkimAblationRow{
		Benchmark:    b.Name,
		WithSkim:     float64(pc) / float64(sc),
		WithoutSkim:  float64(pc) / float64(nc),
		SkimNRMSE:    quality.NRMSE(sout, golden),
		NoSkimCycles: nc,
	}, nil
}

// PrintSkimAblation renders the study.
func PrintSkimAblation(w io.Writer, rows []SkimAblationRow) {
	fmt.Fprintf(w, "Ablation: skim points (4-bit WN builds on the checkpointing processor)\n")
	fmt.Fprintf(w, "%-10s %12s %14s %12s\n", "Benchmark", "with skim", "without skim", "skim NRMSE%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.2fx %13.2fx %12.3f\n", r.Benchmark, r.WithSkim, r.WithoutSkim, r.SkimNRMSE)
	}
}

// WatchdogRow is one point of the Clank watchdog-interval sweep.
type WatchdogRow struct {
	WatchdogCycles uint64
	PreciseCycles  uint64 // wall-clock completion of the precise build
	Checkpoints    uint64
	// Livelocked reports that the configuration cannot make forward
	// progress: with no idempotency violations to force checkpoints, a
	// watchdog interval longer than one capacitor charge re-executes the
	// same window after every outage, forever.
	Livelocked bool
}

// SimulatedCycles reports the run length for sweep accounting.
func (r WatchdogRow) SimulatedCycles() uint64 { return r.PreciseCycles }

// WatchdogSweep quantifies the re-execution/checkpoint-overhead trade-off
// that sets the Clank baseline: small intervals checkpoint constantly,
// large intervals re-execute large windows after every outage.
func WatchdogSweep(proto Protocol, intervals []uint64) ([]WatchdogRow, error) {
	b := workloads.Var()
	p := proto.params(b)
	var jobs []sweep.Job
	for _, wd := range intervals {
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "ablation/watchdog",
				Kernel:     b.Name,
				Variant:    PreciseVariant(b, p).String(),
				Processor:  core.ProcClank.String(),
				Source:     string(energy.SourceWiFi),
				TraceSeed:  5,
				InputSeed:  1,
				Params:     specParams(p, "watchdog_cycles", fmt.Sprint(wd)),
			},
			Run: func() (any, error) { return runWatchdogPoint(b, p, wd) },
		})
	}
	rows, err := runSweep[WatchdogRow](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("watchdog sweep: %w", err)
	}
	return rows, nil
}

func runWatchdogPoint(b *workloads.Benchmark, p workloads.Params, wd uint64) (WatchdogRow, error) {
	in := b.Inputs(p, 1)
	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return WatchdogRow{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Clank.WatchdogCycles = wd
	sys := core.NewSystem(cfg, energy.SyntheticWiFiTrace(5, energy.DefaultTraceConfig()))
	if err := sys.Load(precise); err != nil {
		return WatchdogRow{}, err
	}
	sys.Runner.MaxCycles = certifiedBudget(precise)
	res, err := sys.RunInput(in)
	row := WatchdogRow{WatchdogCycles: wd, PreciseCycles: res.TotalCycles(), Checkpoints: res.Checkpoints}
	switch err {
	case nil:
	case intermittent.ErrCycleBudget:
		row.Livelocked = true
	default:
		return WatchdogRow{}, err
	}
	return row, nil
}

// livelockBudget is the blind fallback bound for runs that cannot make
// forward progress, used only when a kernel's certificate carries no finite
// whole-run WCEC.
const livelockBudget = 50_000_000

// certifiedBudget derives the runaway guard from the kernel's
// forward-progress certificate: 64x the certified whole-run WCEC plus
// slack. The factor absorbs runtime overhead charges and outage replay
// (each recharge re-executes at most one region), while detecting a
// genuine livelock orders of magnitude sooner than the blind constant.
func certifiedBudget(c *compiler.Compiled) uint64 {
	if c != nil && c.Cert != nil && c.Cert.Progress != nil && c.Cert.Progress.TotalFinite {
		return 64*c.Cert.Progress.TotalWCEC + 65536
	}
	return livelockBudget
}

// PrintWatchdogSweep renders the sweep.
func PrintWatchdogSweep(w io.Writer, rows []WatchdogRow) {
	fmt.Fprintf(w, "Ablation: Clank watchdog interval (precise Var under harvested power)\n")
	fmt.Fprintf(w, "%12s %16s %12s\n", "watchdog", "wall cycles", "checkpoints")
	for _, r := range rows {
		if r.Livelocked {
			fmt.Fprintf(w, "%12d %16s %12d  (no forward progress: interval exceeds one charge)\n",
				r.WatchdogCycles, "LIVELOCK", r.Checkpoints)
			continue
		}
		fmt.Fprintf(w, "%12d %16d %12d\n", r.WatchdogCycles, r.PreciseCycles, r.Checkpoints)
	}
}

// CapacitorRow is one point of the storage-capacitor sweep.
type CapacitorRow struct {
	CapacitanceuF float64
	ActiveMs      float64 // active period per charge
	WNSpeedup     float64 // 4-bit WN vs precise on Clank
	WNNRMSE       float64
	Livelocked    bool // capacitor too small for the checkpoint interval
}

// CapacitorSweep varies the storage capacitor: bigger capacitors lengthen
// active periods, letting WN complete more subword passes (better quality,
// less speedup); tiny capacitors amplify the benefit of committing early.
func CapacitorSweep(proto Protocol, uFs []float64) ([]CapacitorRow, error) {
	b := workloads.Var()
	p := proto.params(b)
	var jobs []sweep.Job
	for _, uf := range uFs {
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "ablation/capacitor",
				Kernel:     b.Name,
				Variant:    WNVariant(b, p, 4).String(),
				Processor:  core.ProcClank.String(),
				Source:     string(energy.SourceWiFi),
				TraceSeed:  5,
				InputSeed:  1,
				Params:     specParams(p, "capacitance_uF", fmt.Sprint(uf)),
			},
			Run: func() (any, error) { return runCapacitorPoint(b, p, uf) },
		})
	}
	rows, err := runSweep[CapacitorRow](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("capacitor sweep: %w", err)
	}
	return rows, nil
}

func runCapacitorPoint(b *workloads.Benchmark, p workloads.Params, uf float64) (CapacitorRow, error) {
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return CapacitorRow{}, err
	}
	wn, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return CapacitorRow{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Device.CapacitanceF = uf * 1e-6
	run := func(c *compiler.Compiled) (uint64, []float64, error) {
		sys := core.NewSystem(cfg, energy.SyntheticWiFiTrace(5, energy.DefaultTraceConfig()))
		if err := sys.Load(c); err != nil {
			return 0, nil, err
		}
		sys.Runner.MaxCycles = certifiedBudget(c)
		res, err := sys.RunInput(in)
		if err != nil {
			return 0, nil, err
		}
		out, err := sys.Output(b.Output)
		return res.TotalCycles(), out, err
	}
	row := CapacitorRow{
		CapacitanceuF: uf,
		ActiveMs:      1e3 * float64(cfg.Device.CyclesPerCharge()) / cfg.Device.ClockHz,
	}
	pc, _, err := run(precise)
	if err == nil {
		var wc uint64
		var wout []float64
		wc, wout, err = run(wn)
		if err == nil {
			row.WNSpeedup = float64(pc) / float64(wc)
			row.WNNRMSE = quality.NRMSE(wout, golden)
		}
	}
	if err == intermittent.ErrCycleBudget {
		row.Livelocked = true
	} else if err != nil {
		return CapacitorRow{}, err
	}
	return row, nil
}

// PrintCapacitorSweep renders the sweep.
func PrintCapacitorSweep(w io.Writer, rows []CapacitorRow) {
	fmt.Fprintf(w, "Ablation: storage capacitor (Var, 4-bit WN vs precise on Clank)\n")
	fmt.Fprintf(w, "%10s %12s %12s %12s\n", "uF", "active ms", "speedup", "NRMSE %")
	for _, r := range rows {
		if r.Livelocked {
			fmt.Fprintf(w, "%10.1f %12.3f %12s  (charge shorter than the checkpoint interval)\n",
				r.CapacitanceuF, r.ActiveMs, "LIVELOCK")
			continue
		}
		fmt.Fprintf(w, "%10.1f %12.3f %11.2fx %12.3f\n", r.CapacitanceuF, r.ActiveMs, r.WNSpeedup, r.WNNRMSE)
	}
}

// MemoEntriesRow is one point of the memo-capacity sweep.
type MemoEntriesRow struct {
	Entries int
	HitRate float64 // hits+zero-skips over all multiplies
	Speedup float64 // Conv2d 4-bit earliest output vs no table
}

// memoCell is the raw measurement of one memo-sweep job: cycles to the
// earliest output plus the table counters. Entries 0 is the no-table base.
type memoCell struct {
	Cycles                  uint64
	Hits, Misses, ZeroSkips uint64
}

func (c memoCell) SimulatedCycles() uint64 { return c.Cycles }

// MemoEntriesSweep varies the memo-table capacity on Conv2d's 4-bit build,
// reproducing the paper's footnote that entries beyond 16 give only modest
// gains at extra area. The no-table baseline and every capacity point are
// independent jobs; speedups are derived from the decoded cycle counts.
func MemoEntriesSweep(proto Protocol, entries []int) ([]MemoEntriesRow, error) {
	b := workloads.Conv2d()
	p := proto.params(b)
	sizes := append([]int{0}, entries...) // job 0 is the no-table baseline
	var jobs []sweep.Job
	for _, n := range sizes {
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "ablation/memo",
				Kernel:     b.Name,
				Variant:    WNVariant(b, p, 4).String(),
				InputSeed:  1,
				Params:     specParams(p, "memo_entries", itoa(n)),
			},
			Run: func() (any, error) { return runMemoPoint(b, p, n) },
		})
	}
	cells, err := runSweep[memoCell](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("memo sweep: %w", err)
	}
	base := cells[0]
	var rows []MemoEntriesRow
	for i, c := range cells[1:] {
		total := c.Hits + c.Misses + c.ZeroSkips
		rows = append(rows, MemoEntriesRow{
			Entries: entries[i],
			HitRate: float64(c.Hits+c.ZeroSkips) / float64(total),
			Speedup: float64(base.Cycles) / float64(c.Cycles),
		})
	}
	return rows, nil
}

// runMemoPoint measures Conv2d's earliest 4-bit output with an n-entry memo
// table (n == 0: no table).
func runMemoPoint(b *workloads.Benchmark, p workloads.Params, n int) (memoCell, error) {
	in := b.Inputs(p, 1)
	c, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return memoCell{}, err
	}
	cp, _, err := bareDevice(c, in, false)
	if err != nil {
		return memoCell{}, err
	}
	if n > 0 {
		cp.Memo = cpu.NewSizedMemoTable(n)
	}
	var cycles uint64
	for !cp.Halted {
		cost, err := cp.Step()
		if err != nil {
			return memoCell{}, err
		}
		cycles += uint64(cost.Cycles)
		if cp.SkimArmed {
			break
		}
	}
	cell := memoCell{Cycles: cycles}
	if cp.Memo != nil {
		cell.Hits, cell.Misses, cell.ZeroSkips = cp.Memo.Hits, cp.Memo.Misses, cp.Memo.ZeroSkips
	}
	return cell, nil
}

// PrintMemoEntriesSweep renders the sweep.
func PrintMemoEntriesSweep(w io.Writer, rows []MemoEntriesRow) {
	fmt.Fprintf(w, "Ablation: memo table capacity (Conv2d 4-bit earliest output)\n")
	fmt.Fprintf(w, "%10s %12s %12s\n", "entries", "hit rate", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %11.1f%% %11.2fx\n", r.Entries, 100*r.HitRate, r.Speedup)
	}
}

// ConsistencyRow compares forward-progress mechanisms on one benchmark.
type ConsistencyRow struct {
	Benchmark string
	Mechanism string
	// WallCycles to exact completion of the precise build under power.
	WallCycles  uint64
	Checkpoints uint64
	// WNSpeedup of the 4-bit anytime build against this same mechanism's
	// precise baseline.
	WNSpeedup float64
}

// SimulatedCycles reports the run length for sweep accounting.
func (r ConsistencyRow) SimulatedCycles() uint64 { return r.WallCycles }

// ConsistencySweep is an extension study comparing the volatile-processor
// consistency mechanisms: Clank's checkpoint-on-violation vs undo-log
// rollback. Clank pays checkpoints on every read-modify-write; the undo
// log pays per-first-touch logging plus rollback work after each outage.
func ConsistencySweep(proto Protocol) ([]ConsistencyRow, error) {
	var jobs []sweep.Job
	for _, b := range []*workloads.Benchmark{workloads.Var(), workloads.MatAdd()} {
		p := proto.params(b)
		for _, proc := range []core.Processor{core.ProcClank, core.ProcUndoLog} {
			jobs = append(jobs, sweep.Job{
				Spec: sweep.Spec{
					Experiment: "ablation/consistency",
					Kernel:     b.Name,
					Variant:    WNVariant(b, p, 4).String(),
					Processor:  proc.String(),
					Source:     string(energy.SourceWiFi),
					TraceSeed:  33,
					InputSeed:  1,
					Params:     specParams(p),
				},
				Run: func() (any, error) { return runConsistencyPoint(b, p, proc) },
			})
		}
	}
	rows, err := runSweep[ConsistencyRow](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("consistency sweep: %w", err)
	}
	return rows, nil
}

func runConsistencyPoint(b *workloads.Benchmark, p workloads.Params, proc core.Processor) (ConsistencyRow, error) {
	in := b.Inputs(p, 1)
	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return ConsistencyRow{}, err
	}
	wn, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return ConsistencyRow{}, err
	}
	run := func(c *compiler.Compiled) (uint64, uint64, error) {
		sys := intermittentSystem(proc, 33, false)
		if err := sys.Load(c); err != nil {
			return 0, 0, err
		}
		sys.Runner.MaxCycles = certifiedBudget(c)
		res, err := sys.RunInput(in)
		if err != nil {
			return 0, 0, err
		}
		return res.TotalCycles(), res.Checkpoints, nil
	}
	pc, cps, err := run(precise)
	if err != nil {
		return ConsistencyRow{}, err
	}
	wc, _, err := run(wn)
	if err != nil {
		return ConsistencyRow{}, err
	}
	return ConsistencyRow{
		Benchmark:   b.Name,
		Mechanism:   proc.String(),
		WallCycles:  pc,
		Checkpoints: cps,
		WNSpeedup:   float64(pc) / float64(wc),
	}, nil
}

// PrintConsistencySweep renders the mechanism comparison.
func PrintConsistencySweep(w io.Writer, rows []ConsistencyRow) {
	fmt.Fprintf(w, "Ablation: consistency mechanisms (precise wall time and 4-bit WN speedup)\n")
	fmt.Fprintf(w, "%-10s %-9s %14s %12s %10s\n", "Benchmark", "mech", "precise wall", "checkpoints", "WN speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-9s %14d %12d %9.2fx\n",
			r.Benchmark, r.Mechanism, r.WallCycles, r.Checkpoints, r.WNSpeedup)
	}
}
