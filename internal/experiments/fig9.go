package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"whatsnext/internal/mem"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// QualityPoint is one sample on a runtime-quality curve.
type QualityPoint struct {
	NormRuntime float64 // runtime / precise-baseline runtime
	NRMSE       float64 // percent error if halted at this moment
}

// QualityCurve is one Figure 9 series: a benchmark's output error over
// normalized runtime for a subword size.
type QualityCurve struct {
	Benchmark      string
	Bits           int
	BaselineCycles uint64
	FinalCycles    uint64
	Points         []QualityPoint
}

// FinalOverhead is the WN runtime to the precise result, relative to the
// baseline (the >1 tail of each Figure 9 curve).
func (q QualityCurve) FinalOverhead() float64 {
	return float64(q.FinalCycles) / float64(q.BaselineCycles)
}

// SimulatedCycles reports the curve's run length for sweep accounting.
func (q QualityCurve) SimulatedCycles() uint64 {
	return q.BaselineCycles + q.FinalCycles
}

// EarliestAcceptable returns the first point at or below the NRMSE
// threshold, in normalized runtime.
func (q QualityCurve) EarliestAcceptable(maxNRMSE float64) (QualityPoint, bool) {
	for _, p := range q.Points {
		if p.NRMSE <= maxNRMSE {
			return p, true
		}
	}
	return QualityPoint{}, false
}

// RuntimeQuality reproduces one series of Figure 9: the benchmark's WN
// variant runs to completion under continuous power while the harness
// periodically scores the output in non-volatile memory against the golden
// result — the error the application would ship if a power outage forced a
// skim at that moment.
func RuntimeQuality(b *workloads.Benchmark, p workloads.Params, bits int, samples int) (QualityCurve, error) {
	seed := int64(1)
	in := b.Inputs(p, seed)
	golden := b.Golden(p, in)

	base, err := preciseCycles(b, p, seed)
	if err != nil {
		return QualityCurve{}, err
	}
	c, err := WNVariant(b, p, bits).Compile()
	if err != nil {
		return QualityCurve{}, err
	}
	curve := QualityCurve{Benchmark: b.Name, Bits: bits, BaselineCycles: base}
	if samples <= 0 {
		samples = 120
	}
	// Sample over an expected span of ~3x the baseline.
	period := 3 * base / uint64(samples)
	if period == 0 {
		period = 1
	}
	var sampleErr error
	res, m, err := runContinuous(c, in, contOptions{
		sampleEvery: period,
		sample: func(cycles uint64, mm *mem.Memory) {
			// The memory is live during the run; score a snapshot.
			nr, err := outputNRMSE(c, mm, b.Output, golden)
			if err != nil {
				sampleErr = err
				return
			}
			curve.Points = append(curve.Points, QualityPoint{
				NormRuntime: float64(cycles) / float64(base),
				NRMSE:       nr,
			})
		},
	})
	if err != nil {
		return QualityCurve{}, err
	}
	if sampleErr != nil {
		return QualityCurve{}, sampleErr
	}
	curve.FinalCycles = res.Cycles
	final, err := outputNRMSE(c, m, b.Output, golden)
	if err != nil {
		return QualityCurve{}, err
	}
	curve.Points = append(curve.Points, QualityPoint{
		NormRuntime: float64(res.Cycles) / float64(base),
		NRMSE:       final,
	})
	return curve, nil
}

// Figure9 runs the runtime-quality curves for all six benchmarks at 4- and
// 8-bit subwords. Each curve is one sweep job (a full continuous run with
// periodic output scoring), so the twelve series collect concurrently.
func Figure9(proto Protocol, samples int) ([]QualityCurve, error) {
	var jobs []sweep.Job
	for _, b := range workloads.All() {
		for _, bits := range []int{4, 8} {
			p := proto.params(b)
			jobs = append(jobs, sweep.Job{
				Spec: sweep.Spec{
					Experiment: "fig9",
					Kernel:     b.Name,
					Variant:    WNVariant(b, p, bits).String(),
					InputSeed:  1,
					Params:     specParams(p, "samples", itoa(samples)),
				},
				Run: func() (any, error) { return RuntimeQuality(b, p, bits, samples) },
			})
		}
	}
	curves, err := runSweep[QualityCurve](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("figure 9: %w", err)
	}
	return curves, nil
}

// PrintFigure9 renders the curves as CSV-ish series blocks.
func PrintFigure9(w io.Writer, curves []QualityCurve) {
	for _, c := range curves {
		fmt.Fprintf(w, "# Figure 9: %s, %d-bit (baseline %d cycles, final %.2fx)\n",
			c.Benchmark, c.Bits, c.BaselineCycles, c.FinalOverhead())
		fmt.Fprintf(w, "norm_runtime,nrmse_pct\n")
		for _, p := range c.Points {
			fmt.Fprintf(w, "%.4f,%.6g\n", p.NormRuntime, p.NRMSE)
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure9CSV writes each curve as a plot-ready CSV in outDir and
// returns the file paths.
func WriteFigure9CSV(outDir string, curves []QualityCurve) ([]string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, c := range curves {
		path := filepath.Join(outDir, fmt.Sprintf("fig9_%s_%dbit.csv", c.Benchmark, c.Bits))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(f, "norm_runtime,nrmse_pct\n")
		for _, p := range c.Points {
			fmt.Fprintf(f, "%.6f,%.8g\n", p.NormRuntime, p.NRMSE)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
