package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/nn"
	"whatsnext/internal/quality"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// NNRow is one (layer kernel, build) row of the NN accuracy-vs-energy
// study: the continuous-power runtime of a progress-embedded build against
// its classification quality relative to the exact float golden model.
type NNRow struct {
	Benchmark string
	Variant   string
	Bits      int    // 0 = precise baseline
	Cycles    uint64 // median continuous-power runtime (the energy proxy)
	NRMSE     float64
	Top1      float64 // argmax agreement with the golden model, percent
	TileMatch float64 // bit-exact output tiles, percent
	Samples   int
}

// nnCell is one (build, input seed) measurement.
type nnCell struct {
	Cycles    uint64
	NRMSE     float64
	Top1      float64
	TileMatch float64
}

func (c nnCell) SimulatedCycles() uint64 { return c.Cycles }

// nnBits enumerates the study's builds per kernel: the precise baseline
// (0) plus single-pass truncated anytime builds at three subword widths —
// each cheaper and less accurate than the last, which is the study's
// energy-accuracy axis. All builds embed progress.
func nnBits(b *workloads.Benchmark) []int {
	if b.Mode == compiler.ModePrecise {
		return []int{0} // max pooling does not decompose over subwords
	}
	return []int{0, 8, 4, 2}
}

// NNVariant returns the progress-embedded build of an NN kernel at a
// subword width (0 selects the precise baseline). Anytime builds retain
// only the most significant pass: the compile-time form of skimming, and
// the knob that trades accuracy for energy.
func NNVariant(b *workloads.Benchmark, p workloads.Params, bits int) Variant {
	if bits == 0 {
		return Variant{Bench: b, Params: p, Mode: compiler.ModePrecise, Bits: 8, ProgressEmbed: true}
	}
	return Variant{Bench: b, Params: p, Mode: b.Mode, Bits: bits, Provisioned: true,
		ProgressEmbed: true, MaxPasses: 1}
}

// nnMetricShape returns the classification-group and commit-tile sizes of
// a kernel's output: FC logits group by sample, the conv feature map is
// one group committed a row at a time, and pooling commits element-wise.
func nnMetricShape(b *workloads.Benchmark, p workloads.Params) (classes, tile int) {
	switch b.Name {
	case "NNFC":
		return p.N, p.N
	case "NNConv":
		return p.ImgW * p.ImgH, p.ImgW
	default:
		tiles := p.ImgW * p.ImgH / nn.PoolWindow
		return tiles, 1
	}
}

// NNStudy sweeps the NN layer kernels across subword widths under
// continuous power, reporting runtime against accuracy. Every cell is an
// independent job routed through the spec resolver, so the study runs
// identically on the serial engine, a parallel engine, or a remote
// wnserved instance.
func NNStudy(proto Protocol) ([]NNRow, error) {
	type group struct {
		b    *workloads.Benchmark
		bits int
		n    int
	}
	var jobs []sweep.Job
	var groups []group
	for _, b := range nn.All() {
		p := proto.params(b)
		for _, bits := range nnBits(b) {
			gj, err := nnJobs(b, p, bits, proto)
			if err != nil {
				return nil, err
			}
			groups = append(groups, group{b, bits, len(gj)})
			jobs = append(jobs, gj...)
		}
	}
	cells, err := runSweep[nnCell](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("nn study: %w", err)
	}
	var rows []NNRow
	off := 0
	for _, g := range groups {
		rows = append(rows, nnRow(g.b, proto.params(g.b), g.bits, cells[off:off+g.n]))
		off += g.n
	}
	return rows, nil
}

// nnSpec names one (build, input seed) cell for the resolver registry.
func nnSpec(b *workloads.Benchmark, p workloads.Params, bits int, inputSeed int64) sweep.Spec {
	return sweep.Spec{
		Experiment: "nn",
		Kernel:     b.Name,
		Variant:    NNVariant(b, p, bits).String(),
		InputSeed:  inputSeed,
		Params:     specParams(p, "bits", itoa(bits)),
	}
}

// nnJobs enumerates one row's cells through ResolveSpec, one per input
// seed (the study runs under continuous power, so harvest traces do not
// apply).
func nnJobs(b *workloads.Benchmark, p workloads.Params, bits int, proto Protocol) ([]sweep.Job, error) {
	var jobs []sweep.Job
	for inv := 0; inv < proto.Invocations; inv++ {
		j, err := ResolveSpec(nnSpec(b, p, bits, int64(1+inv)))
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// runNNCell measures one build on one input: runtime to completion under
// continuous power, and output quality against the golden model.
func runNNCell(b *workloads.Benchmark, p workloads.Params, bits int, inputSeed int64) (nnCell, error) {
	c, err := NNVariant(b, p, bits).Compile()
	if err != nil {
		return nnCell{}, err
	}
	in := b.Inputs(p, inputSeed)
	golden := b.Golden(p, in)
	res, m, err := runContinuous(c, in, contOptions{})
	if err != nil {
		return nnCell{}, err
	}
	got, err := c.Layout.OutputValues(m, b.Output)
	if err != nil {
		return nnCell{}, err
	}
	classes, tile := nnMetricShape(b, p)
	return nnCell{
		Cycles:    res.Cycles,
		NRMSE:     quality.NRMSE(got, golden),
		Top1:      quality.Top1Agree(got, golden, classes),
		TileMatch: quality.TileExactMatch(got, golden, tile),
	}, nil
}

// nnRow aggregates a build's cells (medians, like the paper's protocol).
func nnRow(b *workloads.Benchmark, p workloads.Params, bits int, cells []nnCell) NNRow {
	var cyc, er, top1, tm []float64
	for _, c := range cells {
		cyc = append(cyc, float64(c.Cycles))
		er = append(er, c.NRMSE)
		top1 = append(top1, c.Top1)
		tm = append(tm, c.TileMatch)
	}
	return NNRow{
		Benchmark: b.Name,
		Variant:   NNVariant(b, p, bits).String(),
		Bits:      bits,
		Cycles:    uint64(quality.Median(cyc)),
		NRMSE:     quality.Median(er),
		Top1:      quality.Median(top1),
		TileMatch: quality.Median(tm),
		Samples:   len(cells),
	}
}

// resolveNN rebuilds an NN cell from its spec (the "nn" registry entry).
func resolveNN(s sweep.Spec) (func() (any, error), error) {
	b, err := workloads.ByName(s.Kernel)
	if err != nil {
		return nil, err
	}
	p, err := specWorkload(s)
	if err != nil {
		return nil, err
	}
	bits, err := specInt(s, "bits")
	if err != nil {
		return nil, err
	}
	if bits < 0 || bits > 8 {
		return nil, fmt.Errorf("bits %d out of range [0,8]", bits)
	}
	if bits != 0 && b.Mode == compiler.ModePrecise {
		return nil, fmt.Errorf("kernel %s lowers precisely only (bits must be 0)", b.Name)
	}
	if err := checkVariant(s, NNVariant(b, p, bits).String()); err != nil {
		return nil, err
	}
	inputSeed := s.InputSeed
	return func() (any, error) { return runNNCell(b, p, bits, inputSeed) }, nil
}

// PrintNN renders the accuracy-vs-energy table.
func PrintNN(w io.Writer, rows []NNRow) {
	fmt.Fprintf(w, "NN inference: accuracy vs energy across subword widths (progress-embedded builds)\n")
	fmt.Fprintf(w, "%-10s %-26s %12s %9s %8s %10s %8s\n",
		"kernel", "variant", "cycles", "NRMSE %", "top-1 %", "tile-ex %", "samples")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-26s %12d %9.3f %8.1f %10.1f %8d\n",
			r.Benchmark, r.Variant, r.Cycles, r.NRMSE, r.Top1, r.TileMatch, r.Samples)
	}
}
