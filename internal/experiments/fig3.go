package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

// Fig3Reading is one point of the glucose monitoring comparison.
type Fig3Reading struct {
	MinuteOfDay int
	Clinical    float64 // ground-truth glucose level
	Sampled     float64 // precise device, NaN-like -1 when the sample was dropped
	Anytime     float64 // WN device, 4-bit first pass, every sample
}

// Fig3Result summarizes the Section II glucose case study.
type Fig3Result struct {
	Readings []Fig3Reading

	PreciseCost uint64 // cycles for one precise reading
	AnytimeCost uint64 // cycles for one 4-bit first-pass reading

	SampledProcessed int
	SampledMissedDip bool // sampling missed at least one hypoglycemic dip
	AnytimeCaughtAll bool // anytime flagged both dips
	AnytimeAvgErrPct float64
}

// dangerLine is the hypoglycemia detection threshold in mg/dL.
const dangerLine = 55.0

// Figure3 reproduces the blood-glucose motivation study: readings arrive
// every 15 minutes; harvested energy per interval covers one anytime
// first-pass but only half of a precise filter evaluation. The precise
// device therefore drops every other reading (input sampling), while the
// WN device produces an approximate reading for all of them.
func Figure3(seed int64) (Fig3Result, error) {
	weights := workloads.GlucoseWeights()
	trace := workloads.ClinicalGlucoseTrace(seed)

	precise, err := compiler.Compile(workloads.GlucoseKernel(4), compiler.Options{Mode: compiler.ModePrecise})
	if err != nil {
		return Fig3Result{}, err
	}
	anytime, err := compiler.Compile(workloads.GlucoseKernel(4), compiler.Options{Mode: compiler.ModeSWP, VectorLoads: true})
	if err != nil {
		return Fig3Result{}, err
	}

	// Measure the per-reading costs once.
	raw0 := workloads.GlucoseRawWindow(trace[0], seed)
	in0 := map[string][]int64{"RAW": raw0, "W": weights}
	pres, _, err := runContinuous(precise, in0, contOptions{})
	if err != nil {
		return Fig3Result{}, err
	}
	ares, _, err := runContinuous(anytime, in0, contOptions{stopAtSkim: true})
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{PreciseCost: pres.Cycles, AnytimeCost: ares.Cycles}

	// The harvested energy budget per 15-minute interval: enough for one
	// anytime first pass (with a small margin), but well short of a precise
	// evaluation, which therefore takes several intervals of accumulation.
	budgetPerInterval := ares.Cycles + ares.Cycles/50

	var sampledBudget uint64
	var relErrs []float64
	dipsTruth := map[int]bool{}
	dipsSampled := map[int]bool{}
	dipsAnytime := map[int]bool{}

	for i, r := range trace {
		raw := workloads.GlucoseRawWindow(r, seed+int64(i))
		in := map[string][]int64{"RAW": raw, "W": weights}
		golden := workloads.GlucoseGolden(raw, weights)
		if r.MgPerDL < dangerLine {
			dipsTruth[i] = true
		}

		reading := Fig3Reading{MinuteOfDay: r.MinuteOfDay, Clinical: r.MgPerDL, Sampled: -1}

		// Input sampling: accumulate budget; process when a precise
		// evaluation is affordable, dropping the readings in between.
		sampledBudget += budgetPerInterval
		if sampledBudget >= pres.Cycles {
			sampledBudget -= pres.Cycles
			reading.Sampled = golden
			res.SampledProcessed++
			if golden < dangerLine {
				dipsSampled[i] = true
			}
		}

		// Anytime processing: every reading gets a first-pass result.
		_, m, err := runContinuous(anytime, in, contOptions{stopAtSkim: true})
		if err != nil {
			return Fig3Result{}, err
		}
		got, err := anytime.Layout.OutputValues(m, "OUT")
		if err != nil {
			return Fig3Result{}, err
		}
		reading.Anytime = got[0]
		if golden > 0 {
			relErrs = append(relErrs, 100*abs(got[0]-golden)/golden)
		}
		if got[0] < dangerLine {
			dipsAnytime[i] = true
		}
		res.Readings = append(res.Readings, reading)
	}

	res.AnytimeAvgErrPct = quality.Mean(relErrs)
	res.AnytimeCaughtAll = true
	for i := range dipsTruth {
		if !dipsAnytime[i] {
			res.AnytimeCaughtAll = false
		}
		if !dipsSampled[i] {
			res.SampledMissedDip = true
		}
	}
	return res, nil
}

// PrintFigure3 renders the comparison series and summary.
func PrintFigure3(w io.Writer, r Fig3Result) {
	fmt.Fprintf(w, "Figure 3: glucose monitoring — input sampling vs anytime processing\n")
	fmt.Fprintf(w, "precise reading cost: %d cycles; anytime first pass: %d cycles\n", r.PreciseCost, r.AnytimeCost)
	fmt.Fprintf(w, "time,clinical,sampled,anytime\n")
	for _, p := range r.Readings {
		sampled := ""
		if p.Sampled >= 0 {
			sampled = fmt.Sprintf("%.0f", p.Sampled)
		}
		fmt.Fprintf(w, "%02d:%02d,%.0f,%s,%.0f\n", p.MinuteOfDay/60, p.MinuteOfDay%60, p.Clinical, sampled, p.Anytime)
	}
	fmt.Fprintf(w, "sampling processed %d/%d readings, missed a dip: %v\n",
		r.SampledProcessed, len(r.Readings), r.SampledMissedDip)
	fmt.Fprintf(w, "anytime processed %d/%d readings, caught all dips: %v, avg error %.2f%%\n",
		len(r.Readings), len(r.Readings), r.AnytimeCaughtAll, r.AnytimeAvgErrPct)
}
