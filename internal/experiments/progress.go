package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/energy"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/nn"
	"whatsnext/internal/workloads"
)

// ProgressRow is one kernel variant of the forward-progress study: the
// certified static bounds, the measured dynamic worst commit gap, and the
// device sizing the certificate implies.
type ProgressRow struct {
	Variant string
	// StaticRegionWCEC is the certified worst-case cycle count between
	// consecutive commit boundaries; StaticTotalWCEC bounds the whole run.
	StaticRegionWCEC uint64
	StaticTotalWCEC  uint64
	// DynamicMaxGap is the worst inter-commit gap measured in an
	// uninterrupted golden run; GoldenCycles is that run's total. The gap
	// exceeding the static bound would be an analyzer soundness bug, so
	// ProgressStudy fails rather than reporting it.
	DynamicMaxGap uint64
	GoldenCycles  uint64
	// MinCapacitorUF is the smallest storage capacitor (microfarads) whose
	// single VOn→VOff discharge covers the worst region — the provisioning
	// at which the certificate guarantees livelock-freedom.
	MinCapacitorUF float64
	// Budget is the certified runaway guard the ablations use in place of
	// the old blind 50M-cycle constant.
	Budget uint64
}

// ProgressStudy certifies and measures every Table I kernel (precise and
// anytime builds) plus the progress-embedded NN baselines: the static
// per-region WCEC from the verification certificate against the dynamic
// worst inter-commit gap of a golden run, and the minimum capacitor that
// makes the certified worst region survivable on one charge.
func ProgressStudy(proto Protocol) ([]ProgressRow, error) {
	var variants []Variant
	for _, b := range workloads.All() {
		p := proto.params(b)
		variants = append(variants, PreciseVariant(b, p), WNVariant(b, p, 8))
	}
	for _, b := range nn.All() {
		variants = append(variants, NNVariant(b, proto.params(b), 0))
	}

	dev := energy.DefaultDeviceConfig()
	window := dev.VOn*dev.VOn - dev.VOff*dev.VOff
	rows := make([]ProgressRow, 0, len(variants))
	for _, v := range variants {
		c, err := v.Compile()
		if err != nil {
			return nil, err
		}
		pr := c.Cert.Progress
		if pr == nil || !pr.RegionsFinite || !pr.TotalFinite {
			return nil, fmt.Errorf("progress: %s: certificate carries no finite WCEC", v)
		}
		t := faultinject.FromCompiled(v.String(), c, v.Bench.Inputs(v.Params, 1))
		gap, total, err := faultinject.GoldenProgress(t, faultinject.Config{})
		if err != nil {
			return nil, fmt.Errorf("progress: %s: %w", v, err)
		}
		if gap > pr.MaxRegionWCEC {
			return nil, fmt.Errorf("progress: %s: dynamic gap %d exceeds certified bound %d",
				v, gap, pr.MaxRegionWCEC)
		}
		rows = append(rows, ProgressRow{
			Variant:          v.String(),
			StaticRegionWCEC: pr.MaxRegionWCEC,
			StaticTotalWCEC:  pr.TotalWCEC,
			DynamicMaxGap:    gap,
			GoldenCycles:     total,
			MinCapacitorUF:   1e6 * 2 * float64(pr.MaxRegionWCEC) * dev.EnergyPerCycle / window,
			Budget:           certifiedBudget(c),
		})
	}
	return rows, nil
}

// PrintProgress renders the study.
func PrintProgress(w io.Writer, rows []ProgressRow) {
	fmt.Fprintf(w, "Forward-progress certification: static per-region WCEC vs measured worst commit gap\n")
	fmt.Fprintf(w, "%-24s %14s %14s %10s %10s %14s\n",
		"variant", "static region", "dynamic gap", "tight", "min cap", "total WCEC")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %14d %14d %9.1f%% %8.2fuF %14d\n",
			r.Variant, r.StaticRegionWCEC, r.DynamicMaxGap,
			100*float64(r.DynamicMaxGap)/float64(r.StaticRegionWCEC),
			r.MinCapacitorUF, r.StaticTotalWCEC)
	}
}
