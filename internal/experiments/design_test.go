package experiments

import (
	"os"
	"testing"
)

func TestDesignSpaceSmoke(t *testing.T) {
	proto := DefaultProtocol()
	if rows, err := Figure12(proto); err != nil {
		t.Fatal(err)
	} else {
		PrintFigure12(os.Stdout, rows)
	}
	if rows, err := Figure13(proto); err != nil {
		t.Fatal(err)
	} else {
		PrintFigure13(os.Stdout, rows)
	}
	if prov, unprov, err := Figure14(proto, 0); err != nil {
		t.Fatal(err)
	} else {
		last := func(c QualityCurve) float64 { return c.Points[len(c.Points)-1].NRMSE }
		t.Logf("fig14 provisioned final %.4f%%, unprovisioned final %.4f%%", last(prov), last(unprov))
		if last(prov) != 0 || last(unprov) <= 0 {
			t.Errorf("provisioning study wrong shape")
		}
	}
	if rows, err := Figure15(proto); err != nil {
		t.Fatal(err)
	} else {
		PrintFigure15(os.Stdout, rows)
	}
	if r, err := Figure2(proto, ""); err != nil {
		t.Fatal(err)
	} else {
		PrintFigure2(os.Stdout, r)
	}
	if pts, avg, err := Figure17(proto); err != nil {
		t.Fatal(err)
	} else {
		t.Logf("fig17: %d sets, avg WN err %.2f%%", len(pts), avg)
	}
	if r, err := Figure3(7); err != nil {
		t.Fatal(err)
	} else {
		t.Logf("fig3: sampled %d/%d missedDip=%v; anytime caughtAll=%v err=%.2f%%",
			r.SampledProcessed, len(r.Readings), r.SampledMissedDip, r.AnytimeCaughtAll, r.AnytimeAvgErrPct)
	}
}
