package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/quality"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// EnvironmentRow reports WN behaviour under one harvest environment.
type EnvironmentRow struct {
	Source      energy.SourceKind
	MeanPowerUW float64
	DutyPct     float64 // active fraction for the precise run
	Speedup     float64 // 4-bit WN vs precise on Clank
	NRMSE       float64
	Outages     uint64
}

// EnvironmentStudy is an extension experiment: the same kernel (Var, 4-bit
// SWP) across the harvest environments energy-harvesting deployments use —
// bursty Wi-Fi RF, smooth solar, steady thermal, spiky motion. Skim points
// matter most where outages are frequent and unpredictable. Each source is
// one sweep job (the seeded trace is regenerated inside the job, which is
// exactly the determinism the cache key relies on).
func EnvironmentStudy(proto Protocol) ([]EnvironmentRow, error) {
	b := workloads.Var()
	p := proto.params(b)
	var jobs []sweep.Job
	for _, src := range energy.Sources() {
		jobs = append(jobs, sweep.Job{
			Spec: sweep.Spec{
				Experiment: "env",
				Kernel:     b.Name,
				Variant:    WNVariant(b, p, 4).String(),
				Processor:  core.ProcClank.String(),
				Source:     string(src),
				TraceSeed:  9,
				InputSeed:  1,
				Params:     specParams(p),
			},
			Run: func() (any, error) { return runEnvironmentPoint(b, p, src) },
		})
	}
	rows, err := runSweep[EnvironmentRow](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("environment study: %w", err)
	}
	return rows, nil
}

func runEnvironmentPoint(b *workloads.Benchmark, p workloads.Params, src energy.SourceKind) (EnvironmentRow, error) {
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return EnvironmentRow{}, err
	}
	wn, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return EnvironmentRow{}, err
	}
	trace := energy.TraceFor(src, 9, energy.DefaultTraceConfig())
	row := EnvironmentRow{Source: src, MeanPowerUW: 1e6 * trace.MeanPower()}

	runOne := func(c *compiler.Compiled) (uint64, []float64, uint64, float64, error) {
		sys := core.NewSystem(core.DefaultConfig(), trace)
		if err := sys.Load(c); err != nil {
			return 0, nil, 0, 0, err
		}
		sys.Runner.MaxCycles = livelockBudget
		res, err := sys.RunInput(in)
		if err != nil {
			return 0, nil, 0, 0, err
		}
		out, err := sys.Output(b.Output)
		duty := 100 * float64(res.CyclesOn) / float64(res.TotalCycles())
		return res.TotalCycles(), out, res.Outages, duty, err
	}
	pc, _, _, duty, err := runOne(precise)
	if err != nil {
		return EnvironmentRow{}, err
	}
	wc, wout, outages, _, err := runOne(wn)
	if err != nil {
		return EnvironmentRow{}, err
	}
	row.DutyPct = duty
	row.Speedup = float64(pc) / float64(wc)
	row.NRMSE = quality.NRMSE(wout, golden)
	row.Outages = outages
	return row, nil
}

// PrintEnvironments renders the study.
func PrintEnvironments(w io.Writer, rows []EnvironmentRow) {
	fmt.Fprintf(w, "Extension: harvest environments (Var, 4-bit WN vs precise on Clank)\n")
	fmt.Fprintf(w, "%-9s %12s %9s %10s %10s %9s\n", "source", "mean uW", "duty %", "speedup", "NRMSE %", "outages")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %12.1f %9.2f %9.2fx %10.3f %9d\n",
			r.Source, r.MeanPowerUW, r.DutyPct, r.Speedup, r.NRMSE, r.Outages)
	}
}
