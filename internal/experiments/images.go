package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

// Fig2Result reports the Conv2d output-quality comparison of Figure 2.
type Fig2Result struct {
	BaselineCycles uint64
	Budget         uint64  // shared cycle budget (the WN earliest output)
	BudgetFraction float64 // budget / baseline runtime
	BaselineNRMSE  float64 // precise build halted at the budget
	WNNRMSE        float64 // 4-bit SWP build at the same budget
	ImagePaths     []string
}

// Figure2 reproduces the motivating image comparison: at the cycle budget
// where the 4-bit WN build has its first complete approximate image, the
// precise build has only processed part of the frame and the rest is
// missing. When outDir is non-empty, PGM images are written.
func Figure2(proto Protocol, outDir string) (Fig2Result, error) {
	b := workloads.Conv2d()
	p := proto.params(b)
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)

	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return Fig2Result{}, err
	}
	full, _, err := runContinuous(precise, in, contOptions{})
	if err != nil {
		return Fig2Result{}, err
	}

	wn, err := WNVariant(b, p, 4).Compile()
	if err != nil {
		return Fig2Result{}, err
	}
	wnRun, m, err := runContinuous(wn, in, contOptions{stopAtSkim: true})
	if err != nil {
		return Fig2Result{}, err
	}
	res := Fig2Result{
		BaselineCycles: full.Cycles,
		Budget:         wnRun.Cycles,
		BudgetFraction: float64(wnRun.Cycles) / float64(full.Cycles),
	}
	if res.WNNRMSE, err = outputNRMSE(wn, m, b.Output, golden); err != nil {
		return Fig2Result{}, err
	}
	wnImg, err := wn.Layout.OutputValues(m, b.Output)
	if err != nil {
		return Fig2Result{}, err
	}

	imgs := map[string][]float64{"fig2a_baseline": golden, "fig2c_wn_budget": wnImg}

	_, m, err = runContinuous(precise, in, contOptions{cycleBudget: res.Budget})
	if err != nil {
		return Fig2Result{}, err
	}
	if res.BaselineNRMSE, err = outputNRMSE(precise, m, b.Output, golden); err != nil {
		return Fig2Result{}, err
	}
	half, err := precise.Layout.OutputValues(m, b.Output)
	if err != nil {
		return Fig2Result{}, err
	}
	imgs["fig2b_baseline_budget"] = half

	if outDir != "" {
		for name, px := range imgs {
			path, err := writePGM(outDir, name, px, p.ImgW, p.ImgH)
			if err != nil {
				return Fig2Result{}, err
			}
			res.ImagePaths = append(res.ImagePaths, path)
		}
	}
	return res, nil
}

// PrintFigure2 renders the summary.
func PrintFigure2(w io.Writer, r Fig2Result) {
	fmt.Fprintf(w, "Figure 2: Conv2d at a %.0f%%-runtime cycle budget (baseline %d cycles)\n",
		100*r.BudgetFraction, r.BaselineCycles)
	fmt.Fprintf(w, "baseline halted at budget: NRMSE %.2f%% (bottom of the image missing)\n", r.BaselineNRMSE)
	fmt.Fprintf(w, "WN 4-bit at same budget:   NRMSE %.2f%% (complete approximate image)\n", r.WNNRMSE)
	for _, p := range r.ImagePaths {
		fmt.Fprintf(w, "wrote %s\n", p)
	}
}

// Fig16Result is the small-subword visual study.
type Fig16Result struct {
	Rows       []Fig15Row
	ImagePaths []string
}

// Figure16 writes the earliest-available Conv2d outputs for 1-, 2- and
// 3-bit subword pipelining (plus the 4-bit reference) as PGM images.
func Figure16(proto Protocol, outDir string) (Fig16Result, error) {
	b := workloads.Conv2d()
	p := proto.params(b)
	in := b.Inputs(p, 1)
	golden := b.Golden(p, in)
	base, err := preciseCycles(b, p, 1)
	if err != nil {
		return Fig16Result{}, err
	}
	var res Fig16Result
	for _, bits := range []int{1, 2, 3, 4} {
		c, err := WNVariant(b, p, bits).Compile()
		if err != nil {
			return Fig16Result{}, err
		}
		run, m, err := runContinuous(c, in, contOptions{stopAtSkim: true})
		if err != nil {
			return Fig16Result{}, err
		}
		nr, err := outputNRMSE(c, m, b.Output, golden)
		if err != nil {
			return Fig16Result{}, err
		}
		res.Rows = append(res.Rows, Fig15Row{
			Bits: bits, Speedup: float64(base) / float64(run.Cycles), NRMSE: nr, Cycles: run.Cycles,
		})
		if outDir != "" {
			px, err := c.Layout.OutputValues(m, b.Output)
			if err != nil {
				return Fig16Result{}, err
			}
			path, err := writePGM(outDir, fmt.Sprintf("fig16_%dbit", bits), px, p.ImgW, p.ImgH)
			if err != nil {
				return Fig16Result{}, err
			}
			res.ImagePaths = append(res.ImagePaths, path)
		}
	}
	return res, nil
}

// PrintFigure16 renders the study.
func PrintFigure16(w io.Writer, r Fig16Result) {
	fmt.Fprintf(w, "Figure 16: Conv2d earliest outputs with small subwords (images)\n")
	fmt.Fprintf(w, "%5s %10s %10s %14s\n", "Bits", "Speedup", "NRMSE %", "Cycles")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5d %9.2fx %10.3f %14d\n", row.Bits, row.Speedup, row.NRMSE, row.Cycles)
	}
	for _, p := range r.ImagePaths {
		fmt.Fprintf(w, "wrote %s\n", p)
	}
}

func writePGM(outDir, name string, px []float64, w, h int) (string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(outDir, name+".pgm")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := writePGMTo(f, px, w, h); err != nil {
		return "", err
	}
	return path, nil
}

// writePGMTo delegates to the quality package's PGM encoder.
func writePGMTo(w io.Writer, px []float64, width, height int) error {
	return quality.WritePGM(w, px, width, height)
}
