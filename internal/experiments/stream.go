package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

// The Figure 1 scenario: inputs arrive continuously while the device rides
// power outages. A conventional build must finish each input exactly and
// falls behind the arrival rate, dropping inputs (input F arrives while
// the device is still processing D); the WN build commits an acceptable
// approximation at the first outage past a skim point and keeps up.

// StreamRow summarizes one build's behaviour on the input stream.
type StreamRow struct {
	Benchmark string
	Config    string // "precise" or "wn-4bit"
	Arrivals  int
	Processed int
	Dropped   int
	MedianLag float64 // completion lag in units of the arrival period
	NRMSE     float64 // median output error over processed inputs
}

// StreamStudy runs an input stream against both builds of each benchmark.
// A new input lands every arrival period (chosen per benchmark as ~60% of
// the precise build's expected wall completion, so the conventional build
// cannot keep up); inputs arriving while the device is busy are dropped.
func StreamStudy(proto Protocol, arrivals int) ([]StreamRow, error) {
	if arrivals <= 0 {
		arrivals = 16
	}
	var rows []StreamRow
	for _, b := range workloads.All() {
		p := proto.params(b)
		precise, err := PreciseVariant(b, p).Compile()
		if err != nil {
			return nil, err
		}
		wn, err := WNVariant(b, p, 4).Compile()
		if err != nil {
			return nil, err
		}
		// Calibrate the arrival period from the precise build's wall
		// completion time on a reference trace.
		ref := intermittentSystem(core.ProcClank, 55, false)
		if err := ref.Load(precise); err != nil {
			return nil, err
		}
		res, err := ref.RunInput(b.Inputs(p, 1))
		if err != nil {
			return nil, err
		}
		period := res.TotalCycles() * 6 / 10

		for _, cfg := range []struct {
			name string
			c    *compiler.Compiled
		}{{"precise", precise}, {"wn-4bit", wn}} {
			row, err := streamOne(b, p, cfg.c, period, arrivals)
			if err != nil {
				return nil, err
			}
			row.Config = cfg.name
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func streamOne(b *workloads.Benchmark, p workloads.Params, c *compiler.Compiled, period uint64, arrivals int) (StreamRow, error) {
	sys := core.NewSystem(core.DefaultConfig(), energy.SyntheticWiFiTrace(55, energy.DefaultTraceConfig()))
	if err := sys.Load(c); err != nil {
		return StreamRow{}, err
	}
	row := StreamRow{Benchmark: b.Name, Arrivals: arrivals}
	var lags, errs []float64
	now := uint64(0) // wall-clock in cycles, tracked via the supply
	for k := 0; k < arrivals; k++ {
		arrival := uint64(k) * period
		if now > arrival {
			// Device still busy with an older input: this one is lost.
			row.Dropped++
			continue
		}
		in := b.Inputs(p, int64(200+k))
		golden := b.Golden(p, in)
		res, err := sys.RunInput(in)
		if err != nil {
			return StreamRow{}, err
		}
		out, err := sys.Output(b.Output)
		if err != nil {
			return StreamRow{}, err
		}
		now = arrival + res.TotalCycles()
		row.Processed++
		lags = append(lags, float64(res.TotalCycles())/float64(period))
		errs = append(errs, quality.NRMSE(out, golden))
	}
	row.MedianLag = quality.Median(lags)
	row.NRMSE = quality.Median(errs)
	return row, nil
}

// PrintStream renders the study.
func PrintStream(w io.Writer, rows []StreamRow) {
	fmt.Fprintf(w, "Figure 1 scenario: streaming inputs under harvested power (arrival period = 60%% of precise completion)\n")
	fmt.Fprintf(w, "%-10s %-9s %9s %10s %9s %12s %10s\n",
		"Benchmark", "Config", "arrivals", "processed", "dropped", "median lag", "NRMSE %")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-9s %9d %10d %9d %11.2fx %10.3f\n",
			r.Benchmark, r.Config, r.Arrivals, r.Processed, r.Dropped, r.MedianLag, r.NRMSE)
	}
}
