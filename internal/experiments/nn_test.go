package experiments

import (
	"reflect"
	"strings"
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/nn"
	"whatsnext/internal/sweep"
)

// TestNNStudyShape pins the study's table: one row per (kernel, build),
// exact precise baselines, and a real accuracy-vs-energy axis — truncated
// builds get monotonically cheaper and no more accurate as the retained
// subword narrows.
func TestNNStudyShape(t *testing.T) {
	rows, err := NNStudy(DefaultProtocol())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, b := range nn.All() {
		want += len(nnBits(b))
	}
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	byBench := map[string][]NNRow{}
	for _, r := range rows {
		byBench[r.Benchmark] = append(byBench[r.Benchmark], r)
	}
	for _, b := range nn.All() {
		rs := byBench[b.Name]
		if len(rs) == 0 {
			t.Fatalf("no rows for %s", b.Name)
		}
		// Row 0 is the precise baseline: bit-exact by construction.
		if rs[0].Bits != 0 || rs[0].NRMSE != 0 || rs[0].Top1 != 100 || rs[0].TileMatch != 100 {
			t.Errorf("%s precise row not exact: %+v", b.Name, rs[0])
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Cycles >= rs[i-1].Cycles {
				t.Errorf("%s %s (%d cycles) not cheaper than %s (%d cycles)",
					b.Name, rs[i].Variant, rs[i].Cycles, rs[i-1].Variant, rs[i-1].Cycles)
			}
			if rs[i].NRMSE < rs[i-1].NRMSE {
				t.Errorf("%s %s error %v below wider build %v",
					b.Name, rs[i].Variant, rs[i].NRMSE, rs[i-1].NRMSE)
			}
		}
		if b.Mode != compiler.ModePrecise && rs[len(rs)-1].NRMSE == 0 {
			t.Errorf("%s narrowest build introduced no error; axis is degenerate", b.Name)
		}
	}
}

// TestNNStudyParallelDeterminism: the study's rows are identical on the
// serial reference engine and an 8-worker engine (the determinism
// contract that also makes remote wnserved runs byte-identical).
func TestNNStudyParallelDeterminism(t *testing.T) {
	proto := Protocol{Traces: 1, Invocations: 2}
	serial, err := NNStudy(proto)
	if err != nil {
		t.Fatal(err)
	}
	proto.Engine = sweep.New(sweep.Options{Workers: 8})
	parallel, err := NNStudy(proto)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and 8-worker rows differ:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// TestResolveNNRoundTrip: a resolved nn spec reruns the exact cell the
// study enumerated, deterministically.
func TestResolveNNRoundTrip(t *testing.T) {
	b := nn.NNConv()
	p := DefaultProtocol().params(b)
	spec := nnSpec(b, p, 4, 1)
	j, err := ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sweep.Serial().Run([]sweep.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.Results[nnCell](r1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runNNCell(b, p, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0] != direct {
		t.Fatalf("resolved cell %+v != direct cell %+v", cells[0], direct)
	}
}

// TestResolveNNErrors: malformed nn specs are rejected with messages that
// name the problem.
func TestResolveNNErrors(t *testing.T) {
	conv := nn.NNConv()
	p := DefaultProtocol().params(conv)
	good := nnSpec(conv, p, 4, 1)
	cases := []struct {
		name string
		mut  func(s sweep.Spec) sweep.Spec
		want string
	}{
		{"unknown kernel", func(s sweep.Spec) sweep.Spec { s.Kernel = "NNBogus"; return s }, "unknown benchmark"},
		{"bits out of range", func(s sweep.Spec) sweep.Spec {
			s.Params = map[string]string{"workload": s.Params["workload"], "bits": "-1"}
			s.Variant = ""
			return s
		}, "out of range"},
		{"variant mismatch", func(s sweep.Spec) sweep.Spec { s.Variant = "NNConv/swp8"; return s }, "does not match"},
		{"missing bits", func(s sweep.Spec) sweep.Spec {
			s.Params = map[string]string{"workload": s.Params["workload"]}
			return s
		}, `missing "bits"`},
	}
	for _, tc := range cases {
		_, err := ResolveSpec(tc.mut(good))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	// Max pooling has no subword decomposition: nonzero bits are rejected.
	pool := nn.NNPoolMax()
	pp := DefaultProtocol().params(pool)
	bad := nnSpec(pool, pp, 0, 1)
	bad.Params["bits"] = "4"
	bad.Variant = ""
	if _, err := ResolveSpec(bad); err == nil || !strings.Contains(err.Error(), "precisely only") {
		t.Errorf("nonzero bits for NNPoolMax: err = %v, want precise-only rejection", err)
	}
}
