package experiments

import (
	"strings"
	"testing"
)

func TestFaultStudyCleanCells(t *testing.T) {
	rows, err := FaultStudy(DefaultProtocol(), []string{"MatAdd", "Home"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 benchmarks x {clank, nvp}
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Benchmark+"/"+r.Runtime] = true
		if r.Divergences != 0 {
			t.Errorf("%s/%s: %d divergences; first: %s", r.Benchmark, r.Runtime, r.Divergences, r.FirstWitness)
		}
		if r.Points != 6 || r.StrideCycles == 0 || r.GoldenCycles == 0 {
			t.Errorf("%s/%s: implausible row %+v", r.Benchmark, r.Runtime, r)
		}
	}
	for _, want := range []string{"MatAdd/clank", "MatAdd/nvp", "Home/clank", "Home/nvp"} {
		if !seen[want] {
			t.Errorf("missing cell %s", want)
		}
	}
	if !FaultsClean(rows) {
		t.Error("FaultsClean must agree with per-row divergence counts")
	}

	var b strings.Builder
	PrintFaults(&b, rows)
	if !strings.Contains(b.String(), "MatAdd") || !strings.Contains(b.String(), "clank") {
		t.Errorf("PrintFaults output missing expected cells:\n%s", b.String())
	}
}
