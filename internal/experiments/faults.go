package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/faultinject"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// FaultRow is one (benchmark, runtime) cell of the fault-injection study.
type FaultRow struct {
	Benchmark    string
	Runtime      string
	Points       int    // kill points injected
	StrideCycles uint64 // mean distance between kill points
	GoldenCycles uint64
	Divergences  int
	FirstWitness string // empty when clean
}

// faultRuntimes are the runtime models the study injects under.
var faultRuntimes = []struct {
	name   string
	policy func() intermittent.Policy
}{
	{"clank", func() intermittent.Policy { return intermittent.NewClank(intermittent.DefaultClankConfig()) }},
	{"nvp", func() intermittent.Policy { return intermittent.NewNVP(intermittent.DefaultNVPConfig()) }},
}

// FaultStudy runs strided power-failure injection over the Table I kernels
// (precise variants — skim builds commit approximate results on the resume
// path by design, so only precise runs owe bit-exactness) under the Clank
// and NVP runtimes. Every cell should report zero divergences: the
// benchmarks are certified crash-consistent by wncheck's static analysis
// at compile time, and this study is the dynamic half of that contract.
//
// points is the kill-point count per cell (0 means 32); benches filters by
// benchmark name (empty means all six).
func FaultStudy(proto Protocol, benches []string, points int) ([]FaultRow, error) {
	if points <= 0 {
		points = 32
	}
	want := map[string]bool{}
	for _, b := range benches {
		want[b] = true
	}
	var jobs []sweep.Job
	for _, b := range workloads.All() {
		if len(want) > 0 && !want[b.Name] {
			continue
		}
		b := b
		p := proto.params(b)
		for _, rt := range faultRuntimes {
			rt := rt
			jobs = append(jobs, sweep.Job{
				Spec: sweep.Spec{
					Experiment: "faults",
					Kernel:     b.Name,
					Variant:    PreciseVariant(b, p).String(),
					Processor:  rt.name,
					InputSeed:  1,
					Params:     specParams(p, "points", itoa(points)),
				},
				Run: func() (any, error) { return runFaultCell(b, p, rt.name, rt.policy, points) },
			})
		}
	}
	rows, err := runSweep[FaultRow](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("fault study: %w", err)
	}
	return rows, nil
}

func runFaultCell(b *workloads.Benchmark, p workloads.Params, rtName string,
	policy func() intermittent.Policy, points int) (FaultRow, error) {
	c, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return FaultRow{}, err
	}
	target := faultinject.FromCompiled(b.Name, c, b.Inputs(p, 1))
	rep, err := faultinject.RunLockstep(target,
		faultinject.Config{Policy: policy},
		faultinject.Schedule{Points: points})
	if err != nil {
		return FaultRow{}, err
	}
	row := FaultRow{
		Benchmark:    b.Name,
		Runtime:      rtName,
		Points:       rep.Points,
		StrideCycles: rep.StrideCycles,
		GoldenCycles: rep.GoldenCycles,
		Divergences:  len(rep.Divergences),
	}
	if !rep.Clean() {
		row.FirstWitness = rep.Divergences[0].String()
	}
	return row, nil
}

// FaultsClean reports whether every cell survived injection, for callers
// that want a pass/fail answer (CI).
func FaultsClean(rows []FaultRow) bool {
	for _, r := range rows {
		if r.Divergences > 0 {
			return false
		}
	}
	return true
}

// PrintFaults renders the study.
func PrintFaults(w io.Writer, rows []FaultRow) {
	fmt.Fprintf(w, "Fault injection: strided power failures vs uninterrupted golden run (precise variants)\n")
	fmt.Fprintf(w, "%-10s %-8s %8s %10s %12s %11s\n", "benchmark", "runtime", "points", "stride", "golden cyc", "divergent")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %8d %10d %12d %11d\n",
			r.Benchmark, r.Runtime, r.Points, r.StrideCycles, r.GoldenCycles, r.Divergences)
		if r.FirstWitness != "" {
			fmt.Fprintf(w, "    first witness: %s\n", r.FirstWitness)
		}
	}
}
