package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/core"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

// SpeedupRow is one bar pair of Figures 10 and 11: a benchmark's speedup
// and output error at a subword size on a processor type.
type SpeedupRow struct {
	Benchmark string
	Bits      int
	Speedup   float64 // median over (trace, invocation) samples
	NRMSE     float64 // median output error of the WN runs
	Samples   int
}

// SpeedupStudy reproduces Figure 10 (ProcClank) or Figure 11 (ProcNVP):
// each benchmark processes inputs under harvested power on 'proto.Traces'
// distinct synthetic Wi-Fi traces with 'proto.Invocations' input seeds.
// The WN build takes its result as-is at the first outage past a skim
// point; the precise build must resume across outages until exact
// completion. Speedup compares wall-clock completion times per input.
func SpeedupStudy(proc core.Processor, proto Protocol) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, b := range workloads.All() {
		p := proto.params(b)
		for _, bits := range []int{8, 4} {
			row, err := speedupOne(proc, b, p, bits, proto)
			if err != nil {
				return nil, fmt.Errorf("speedup %s/%d-bit on %s: %w", b.Name, bits, proc, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func speedupOne(proc core.Processor, b *workloads.Benchmark, p workloads.Params, bits int, proto Protocol) (SpeedupRow, error) {
	wn, err := WNVariant(b, p, bits).Compile()
	if err != nil {
		return SpeedupRow{}, err
	}
	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return SpeedupRow{}, err
	}
	var speedups, errors []float64
	for t := 0; t < proto.Traces; t++ {
		traceSeed := int64(1000 + 17*t)
		for inv := 0; inv < proto.Invocations; inv++ {
			inputSeed := int64(1 + inv)
			in := b.Inputs(p, inputSeed)
			golden := b.Golden(p, in)

			wnSys := intermittentSystem(proc, traceSeed, false)
			if err := wnSys.Load(wn); err != nil {
				return SpeedupRow{}, err
			}
			wnRes, err := wnSys.RunInput(in)
			if err != nil {
				return SpeedupRow{}, err
			}
			wnOut, err := wnSys.Output(b.Output)
			if err != nil {
				return SpeedupRow{}, err
			}

			prSys := intermittentSystem(proc, traceSeed, false)
			if err := prSys.Load(precise); err != nil {
				return SpeedupRow{}, err
			}
			prRes, err := prSys.RunInput(in)
			if err != nil {
				return SpeedupRow{}, err
			}

			speedups = append(speedups, float64(prRes.TotalCycles())/float64(wnRes.TotalCycles()))
			errors = append(errors, quality.NRMSE(wnOut, golden))
		}
	}
	return SpeedupRow{
		Benchmark: b.Name,
		Bits:      bits,
		Speedup:   quality.Median(speedups),
		NRMSE:     quality.Median(errors),
		Samples:   len(speedups),
	}, nil
}

// SpeedupSummary averages the per-benchmark rows for one subword size, as
// quoted in the paper's abstract (e.g. 1.78x/3.02x on Clank).
func SpeedupSummary(rows []SpeedupRow, bits int) (speedup, nrmse float64) {
	var sp, er []float64
	for _, r := range rows {
		if r.Bits == bits {
			sp = append(sp, r.Speedup)
			er = append(er, r.NRMSE)
		}
	}
	return quality.GeoMean(sp), quality.Mean(er)
}

// PrintSpeedup renders a Figure 10/11-style table.
func PrintSpeedup(w io.Writer, title string, rows []SpeedupRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %6s %10s %10s %8s\n", "Benchmark", "Bits", "Speedup", "NRMSE %", "Samples")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %9.2fx %10.3f %8d\n", r.Benchmark, r.Bits, r.Speedup, r.NRMSE, r.Samples)
	}
	for _, bits := range []int{8, 4} {
		sp, er := SpeedupSummary(rows, bits)
		fmt.Fprintf(w, "average (%d-bit): %.2fx speedup, %.2f%% NRMSE\n", bits, sp, er)
	}
}
