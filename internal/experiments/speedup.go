package experiments

import (
	"fmt"
	"io"

	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/quality"
	"whatsnext/internal/sweep"
	"whatsnext/internal/workloads"
)

// SpeedupRow is one bar pair of Figures 10 and 11: a benchmark's speedup
// and output error at a subword size on a processor type.
type SpeedupRow struct {
	Benchmark string
	Bits      int
	Speedup   float64 // median over (trace, invocation) samples
	NRMSE     float64 // median output error of the WN runs
	Samples   int
}

// speedupCell is the structured result of one (trace, invocation) cell:
// both builds run to completion on the same trace, and the ratio and error
// are aggregated afterwards.
type speedupCell struct {
	WNCycles      uint64
	PreciseCycles uint64
	NRMSE         float64
}

func (c speedupCell) SimulatedCycles() uint64 { return c.WNCycles + c.PreciseCycles }

// SpeedupStudy reproduces Figure 10 (ProcClank) or Figure 11 (ProcNVP):
// each benchmark processes inputs under harvested power on 'proto.Traces'
// distinct synthetic Wi-Fi traces with 'proto.Invocations' input seeds.
// The WN build takes its result as-is at the first outage past a skim
// point; the precise build must resume across outages until exact
// completion. Speedup compares wall-clock completion times per input.
//
// Every (benchmark, bits, trace, invocation) cell is an independent job;
// the whole study is submitted to the sweep engine as one batch so all
// cells across all benchmarks run concurrently.
func SpeedupStudy(proc core.Processor, proto Protocol) ([]SpeedupRow, error) {
	type group struct {
		b    *workloads.Benchmark
		bits int
		n    int
	}
	var jobs []sweep.Job
	var groups []group
	for _, b := range workloads.All() {
		p := proto.params(b)
		for _, bits := range []int{8, 4} {
			gj, err := speedupJobs(proc, b, p, bits, proto)
			if err != nil {
				return nil, err
			}
			groups = append(groups, group{b, bits, len(gj)})
			jobs = append(jobs, gj...)
		}
	}
	cells, err := runSweep[speedupCell](proto.runner(), jobs)
	if err != nil {
		return nil, fmt.Errorf("speedup on %s: %w", proc, err)
	}
	var rows []SpeedupRow
	off := 0
	for _, g := range groups {
		rows = append(rows, speedupRow(g.b, g.bits, cells[off:off+g.n]))
		off += g.n
	}
	return rows, nil
}

// speedupSpec names one (trace, invocation) cell. Every knob the cell
// depends on is a spec field or param, so ResolveSpec can rebuild it — the
// same spec a remote client would submit.
func speedupSpec(proc core.Processor, b *workloads.Benchmark, p workloads.Params, bits int, traceSeed, inputSeed int64) sweep.Spec {
	return sweep.Spec{
		Experiment: "speedup",
		Kernel:     b.Name,
		Variant:    WNVariant(b, p, bits).String(),
		Processor:  proc.String(),
		Source:     string(energy.SourceWiFi),
		TraceSeed:  traceSeed,
		InputSeed:  inputSeed,
		Params:     specParams(p, "bits", itoa(bits)),
	}
}

// speedupJobs enumerates the (trace, invocation) cells of one bar pair,
// routing each spec through the resolver registry so the CLI runs exactly
// the closures a server would reconstruct.
func speedupJobs(proc core.Processor, b *workloads.Benchmark, p workloads.Params, bits int, proto Protocol) ([]sweep.Job, error) {
	var jobs []sweep.Job
	for t := 0; t < proto.Traces; t++ {
		traceSeed := int64(1000 + 17*t)
		for inv := 0; inv < proto.Invocations; inv++ {
			j, err := ResolveSpec(speedupSpec(proc, b, p, bits, traceSeed, int64(1+inv)))
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// runSpeedupCell simulates one cell: the WN and precise builds on the same
// seeded trace and input. It is self-contained (compiles its own binaries)
// so cells can run on any worker.
func runSpeedupCell(proc core.Processor, b *workloads.Benchmark, p workloads.Params, bits int, traceSeed, inputSeed int64) (speedupCell, error) {
	wn, err := WNVariant(b, p, bits).Compile()
	if err != nil {
		return speedupCell{}, err
	}
	precise, err := PreciseVariant(b, p).Compile()
	if err != nil {
		return speedupCell{}, err
	}
	in := b.Inputs(p, inputSeed)
	golden := b.Golden(p, in)

	wnSys := intermittentSystem(proc, traceSeed, false)
	if err := wnSys.Load(wn); err != nil {
		return speedupCell{}, err
	}
	wnRes, err := wnSys.RunInput(in)
	if err != nil {
		return speedupCell{}, err
	}
	wnOut, err := wnSys.Output(b.Output)
	if err != nil {
		return speedupCell{}, err
	}

	prSys := intermittentSystem(proc, traceSeed, false)
	if err := prSys.Load(precise); err != nil {
		return speedupCell{}, err
	}
	prRes, err := prSys.RunInput(in)
	if err != nil {
		return speedupCell{}, err
	}
	return speedupCell{
		WNCycles:      wnRes.TotalCycles(),
		PreciseCycles: prRes.TotalCycles(),
		NRMSE:         quality.NRMSE(wnOut, golden),
	}, nil
}

// speedupRow aggregates a bar pair's cells into the published medians.
func speedupRow(b *workloads.Benchmark, bits int, cells []speedupCell) SpeedupRow {
	var speedups, errors []float64
	for _, c := range cells {
		speedups = append(speedups, float64(c.PreciseCycles)/float64(c.WNCycles))
		errors = append(errors, c.NRMSE)
	}
	return SpeedupRow{
		Benchmark: b.Name,
		Bits:      bits,
		Speedup:   quality.Median(speedups),
		NRMSE:     quality.Median(errors),
		Samples:   len(speedups),
	}
}

// speedupOne runs a single bar pair through the engine (used by tests).
func speedupOne(proc core.Processor, b *workloads.Benchmark, p workloads.Params, bits int, proto Protocol) (SpeedupRow, error) {
	jobs, err := speedupJobs(proc, b, p, bits, proto)
	if err != nil {
		return SpeedupRow{}, err
	}
	cells, err := runSweep[speedupCell](proto.runner(), jobs)
	if err != nil {
		return SpeedupRow{}, fmt.Errorf("speedup %s/%d-bit on %s: %w", b.Name, bits, proc, err)
	}
	return speedupRow(b, bits, cells), nil
}

// SpeedupSummary averages the per-benchmark rows for one subword size, as
// quoted in the paper's abstract (e.g. 1.78x/3.02x on Clank).
func SpeedupSummary(rows []SpeedupRow, bits int) (speedup, nrmse float64) {
	var sp, er []float64
	for _, r := range rows {
		if r.Bits == bits {
			sp = append(sp, r.Speedup)
			er = append(er, r.NRMSE)
		}
	}
	return quality.GeoMean(sp), quality.Mean(er)
}

// PrintSpeedup renders a Figure 10/11-style table.
func PrintSpeedup(w io.Writer, title string, rows []SpeedupRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %6s %10s %10s %8s\n", "Benchmark", "Bits", "Speedup", "NRMSE %", "Samples")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %9.2fx %10.3f %8d\n", r.Benchmark, r.Bits, r.Speedup, r.NRMSE, r.Samples)
	}
	for _, bits := range []int{8, 4} {
		sp, er := SpeedupSummary(rows, bits)
		fmt.Fprintf(w, "average (%d-bit): %.2fx speedup, %.2f%% NRMSE\n", bits, sp, er)
	}
}
