package experiments

import (
	"reflect"
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/mem"
	"whatsnext/internal/workloads"
)

// dataImage reads the full NV data region.
func dataImage(t *testing.T, m *mem.Memory) []byte {
	t.Helper()
	buf := make([]byte, m.Config().DataBytes)
	if err := m.ReadData(mem.DataBase, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestBatchedContinuousMatchesReference runs every Table I kernel's precise
// build to halt twice — once per-instruction through Step, once through the
// batched RunUntil path — and requires identical final data memory, CPU
// statistics, and cycle counts.
func TestBatchedContinuousMatchesReference(t *testing.T) {
	for _, b := range workloads.All() {
		t.Run(b.Name, func(t *testing.T) {
			p := b.ScaledParams()
			c, err := PreciseVariant(b, p).Compile()
			if err != nil {
				t.Fatal(err)
			}
			in := b.Inputs(p, 1)

			refCPU, refMem, err := bareDevice(c, in, false)
			if err != nil {
				t.Fatal(err)
			}
			refCPU.SetAmenablePCs(c.Program.Amenable)
			var refCycles uint64
			for !refCPU.Halted {
				cost, err := refCPU.Step()
				if err != nil {
					t.Fatalf("reference fault: %v", err)
				}
				refCycles += uint64(cost.Cycles)
			}

			batCPU, batMem, err := bareDevice(c, in, false)
			if err != nil {
				t.Fatal(err)
			}
			batCPU.SetAmenablePCs(c.Program.Amenable)
			var batCycles uint64
			for !batCPU.Halted {
				res, err := batCPU.RunUntil(1<<62, nil)
				if err != nil {
					t.Fatalf("batched fault: %v", err)
				}
				batCycles += res.Cycles
			}

			if refCycles != batCycles {
				t.Errorf("cycles diverge: reference %d, batched %d", refCycles, batCycles)
			}
			if !reflect.DeepEqual(refCPU.Stats, batCPU.Stats) {
				t.Errorf("stats diverge:\nreference %+v\nbatched   %+v", refCPU.Stats, batCPU.Stats)
			}
			if refMem.NVWrites != batMem.NVWrites || refMem.Reads != batMem.Reads || refMem.Writes != batMem.Writes {
				t.Errorf("memory counters diverge: reference (%d %d %d), batched (%d %d %d)",
					refMem.Reads, refMem.Writes, refMem.NVWrites, batMem.Reads, batMem.Writes, batMem.NVWrites)
			}
			refData := dataImage(t, refMem)
			batData := dataImage(t, batMem)
			for i := range refData {
				if refData[i] != batData[i] {
					t.Fatalf("data memory diverges at %#08x: reference %#02x, batched %#02x",
						mem.DataBase+uint32(i), refData[i], batData[i])
				}
			}
		})
	}
}

// TestBatchedIntermittentMatchesReference is the end-to-end differential
// under power failures: every Table I kernel runs on both processor types
// (Clank checkpointing and NVP backup-every-cycle) over a seeded harvest
// trace, once with the runner's per-instruction reference loop and once with
// the batched loop. The Result structs — cycles on and off, instructions,
// outages, checkpoints, energy drawn — and the final data memory must match
// exactly.
func TestBatchedIntermittentMatchesReference(t *testing.T) {
	procs := []core.Processor{core.ProcClank, core.ProcNVP}
	for _, b := range workloads.All() {
		for _, proc := range procs {
			t.Run(b.Name+"/"+proc.String(), func(t *testing.T) {
				p := b.ScaledParams()
				c, err := WNVariant(b, p, 4).Compile()
				if err != nil {
					t.Fatal(err)
				}
				in := b.Inputs(p, 1)

				run := func(reference bool) (res anyResult, data []byte) {
					sys := intermittentSystem(proc, 42, false)
					if err := sys.Load(c); err != nil {
						t.Fatal(err)
					}
					sys.Runner.Reference = reference
					r, err := sys.RunInput(in)
					if err != nil {
						t.Fatalf("reference=%v: %v", reference, err)
					}
					return anyResult{r.Halted, r.SkimTaken, r.CyclesOn, r.CyclesOff,
						r.Instructions, r.Outages, r.Checkpoints, r.EnergyDrawn}, dataImage(t, sys.Mem)
				}

				refRes, refData := run(true)
				batRes, batData := run(false)

				if refRes != batRes {
					t.Errorf("results diverge:\nreference %+v\nbatched   %+v", refRes, batRes)
				}
				if refRes.outages == 0 {
					t.Logf("note: trace produced no outages for %s/%s", b.Name, proc)
				}
				for i := range refData {
					if refData[i] != batData[i] {
						t.Fatalf("data memory diverges at %#08x: reference %#02x, batched %#02x",
							mem.DataBase+uint32(i), refData[i], batData[i])
					}
				}
			})
		}
	}
}

// anyResult is a comparable flattening of intermittent.Result.
type anyResult struct {
	halted      bool
	skimTaken   bool
	cyclesOn    uint64
	cyclesOff   uint64
	instrs      uint64
	outages     uint64
	checkpoints uint64
	energy      float64
}
