package energy

import (
	"bytes"
	"math"
	"testing"
)

func TestDeviceConfigDerived(t *testing.T) {
	d := DefaultDeviceConfig()
	// Usable energy: 1/2 C (Von^2 - Voff^2).
	want := 0.5 * d.CapacitanceF * (d.VOn*d.VOn - d.VOff*d.VOff)
	if got := d.UsableEnergy(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("usable energy %g, want %g", got, want)
	}
	// A charge must sustain a millisecond-scale active period at 24 MHz —
	// the operating point the paper describes.
	cycles := d.CyclesPerCharge()
	ms := 1e3 * float64(cycles) / d.ClockHz
	if ms < 0.1 || ms > 10 {
		t.Fatalf("active period %.3f ms is outside the paper's regime", ms)
	}
}

func TestSupplyDrainAndOutage(t *testing.T) {
	d := DefaultDeviceConfig()
	s := NewSupply(d, ConstantTrace(0, 1000, 10)) // no harvest
	if !s.Powered() {
		t.Fatal("supply starts charged")
	}
	perCharge := d.CyclesPerCharge()
	var spent uint64
	for s.Spend(64, 0) {
		spent += 64
	}
	spent += 64 // the failing call still consumed
	if diff := math.Abs(float64(spent) - float64(perCharge)); diff > 128 {
		t.Fatalf("drained after %d cycles, expected about %d", spent, perCharge)
	}
	if s.Powered() || s.Outages != 1 {
		t.Fatal("brown-out should power down and count an outage")
	}
	// Without harvest the supply can never recover.
	if _, ok := s.WaitForPower(); ok {
		t.Fatal("zero-power trace cannot recharge")
	}
}

func TestSupplyRecharge(t *testing.T) {
	d := DefaultDeviceConfig()
	s := NewSupply(d, ConstantTrace(5e-3, 1000, 100)) // 5 mW harvest
	for s.Spend(64, 0) {
	}
	waited, ok := s.WaitForPower()
	if !ok || waited == 0 {
		t.Fatal("recharge failed")
	}
	if !s.Powered() {
		t.Fatal("powered after recharge")
	}
	// Hysteresis: voltage must be back at VOn.
	if v := s.Voltage(); v < d.VOn-0.01 {
		t.Fatalf("voltage %.3f below V_on", v)
	}
	// Expected recharge time ~= usable energy / (harvest * efficiency).
	sec := float64(waited) / d.ClockHz
	want := d.UsableEnergy() / (5e-3 * d.HarvestEff)
	if sec < want*0.8 || sec > want*1.3 {
		t.Fatalf("recharge took %.4f s, expected about %.4f s", sec, want)
	}
}

func TestSpendExtraEnergy(t *testing.T) {
	d := DefaultDeviceConfig()
	a := NewSupply(d, ConstantTrace(0, 1000, 10))
	b := NewSupply(d, ConstantTrace(0, 1000, 10))
	var ca, cb uint64
	for a.Spend(64, 0) {
		ca++
	}
	for b.Spend(64, float64(64)*d.EnergyPerCycle) { // double draw
		cb++
	}
	if cb >= ca {
		t.Fatalf("extra energy should drain faster: %d vs %d", cb, ca)
	}
}

func TestForceOutage(t *testing.T) {
	s := NewSupply(DefaultDeviceConfig(), ConstantTrace(1e-3, 1000, 10))
	s.ForceOutage()
	if s.Powered() || s.Outages != 1 {
		t.Fatal("forced outage should power down")
	}
	s.ForceOutage() // idempotent while off
	if s.Outages != 1 {
		t.Fatal("forcing an outage while off should not double count")
	}
}

func TestVoltageMonotoneWithEnergy(t *testing.T) {
	s := NewSupply(DefaultDeviceConfig(), ConstantTrace(0, 1000, 10))
	v0 := s.Voltage()
	s.Spend(1000, 0)
	if s.Voltage() >= v0 {
		t.Fatal("voltage should fall as energy drains")
	}
}

func TestSyntheticTraceDeterminism(t *testing.T) {
	cfg := DefaultTraceConfig()
	a := SyntheticWiFiTrace(7, cfg)
	b := SyntheticWiFiTrace(7, cfg)
	c := SyntheticWiFiTrace(8, cfg)
	if len(a.Power) != len(b.Power) {
		t.Fatal("length mismatch")
	}
	same := true
	diff := false
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			same = false
		}
		if a.Power[i] != c.Power[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must reproduce the same trace")
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestSyntheticTraceStatistics(t *testing.T) {
	cfg := DefaultTraceConfig()
	tr := SyntheticWiFiTrace(3, cfg)
	if got := tr.Duration(); math.Abs(got-cfg.Seconds) > 1 {
		t.Fatalf("duration %.1f", got)
	}
	mean := tr.MeanPower()
	if mean <= cfg.BasePower {
		t.Fatal("bursts should raise the mean above the floor")
	}
	if mean > cfg.BasePower+cfg.BurstPower {
		t.Fatal("mean power implausibly high")
	}
	for i, p := range tr.Power {
		if p < 0 {
			t.Fatalf("negative power at %d", i)
		}
	}
}

func TestTraceWrapAround(t *testing.T) {
	d := DefaultDeviceConfig()
	// A very short trace: the supply must wrap and keep harvesting.
	s := NewSupply(d, ConstantTrace(5e-3, 1000, 0.01))
	for i := 0; i < 3; i++ {
		for s.Spend(64, 0) {
		}
		if _, ok := s.WaitForPower(); !ok {
			t.Fatal("wrap-around recharge failed")
		}
	}
	if s.Outages != 3 {
		t.Fatalf("outages = %d", s.Outages)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := SyntheticWiFiTrace(5, TraceConfig{
		SampleHz: 1000, Seconds: 0.25, BasePower: 1e-4,
		BurstPower: 1e-3, BurstProb: 0.1, BurstLen: 4, Jitter: 0.3,
	})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.SampleHz-tr.SampleHz) > 1 {
		t.Fatalf("sample rate %.1f", got.SampleHz)
	}
	if len(got.Power) != len(tr.Power) {
		t.Fatalf("length %d vs %d", len(got.Power), len(tr.Power))
	}
	for i := range tr.Power {
		if math.Abs(got.Power[i]-tr.Power[i]) > 1e-12 {
			t.Fatalf("sample %d: %g vs %g", i, got.Power[i], tr.Power[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time_s,power_w\n0,1\n",              // too short
		"time_s,power_w\nx,1\n0.001,1\n",     // bad timestamp
		"time_s,power_w\n0,x\n0.001,1\n",     // bad power
		"time_s,power_w\n0.002,1\n0.001,1\n", // non-increasing
	}
	for _, src := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(src)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", src)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := NewSupply(DefaultDeviceConfig(), ConstantTrace(1e-3, 1000, 10))
	t0 := s.Now()
	s.Spend(24000, 0) // 1 ms at 24 MHz
	if dt := s.Now() - t0; math.Abs(dt-0.001) > 1e-6 {
		t.Fatalf("time advanced %.6f s, want 0.001", dt)
	}
}

func TestSourceGenerators(t *testing.T) {
	cfg := DefaultTraceConfig()
	for _, kind := range Sources() {
		tr := TraceFor(kind, 3, cfg)
		if len(tr.Power) != int(cfg.SampleHz*cfg.Seconds) {
			t.Errorf("%s: wrong length", kind)
		}
		for i, p := range tr.Power {
			if p < 0 {
				t.Fatalf("%s: negative power at %d", kind, i)
			}
		}
		if tr.MeanPower() <= 0 {
			t.Errorf("%s: zero mean power", kind)
		}
		// Determinism per seed.
		tr2 := TraceFor(kind, 3, cfg)
		for i := range tr.Power {
			if tr.Power[i] != tr2.Power[i] {
				t.Fatalf("%s: non-deterministic", kind)
			}
		}
	}
}

// TestSourceCharacters verifies each environment's signature shape:
// thermal is the steadiest, motion the burstiest.
func TestSourceCharacters(t *testing.T) {
	cfg := DefaultTraceConfig()
	cv := func(tr *Trace) float64 { // coefficient of variation
		mean := tr.MeanPower()
		var sq float64
		for _, p := range tr.Power {
			d := p - mean
			sq += d * d
		}
		return (sq / float64(len(tr.Power))) / (mean * mean)
	}
	thermal := cv(SyntheticThermalTrace(1, cfg))
	solar := cv(SyntheticSolarTrace(1, cfg))
	motion := cv(SyntheticMotionTrace(1, cfg))
	if !(thermal < solar && solar < motion) {
		t.Fatalf("variance ordering wrong: thermal %.3f solar %.3f motion %.3f", thermal, solar, motion)
	}
}
