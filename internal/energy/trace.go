// Package energy models the power environment of an energy-harvesting
// device: a harvested-power trace sampled at 1 kHz (the paper feeds its
// simulator Wi-Fi harvest traces at that rate), a small storage capacitor
// (10 uF in the paper), and a supply that turns the processor on and off
// with voltage hysteresis as the capacitor charges and discharges.
//
// The processor draws a constant energy per cycle — the paper validates this
// constant-energy-per-instruction assumption on MSP430 hardware — plus
// explicit surcharges for non-volatile writes and checkpoints.
package energy

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// Trace is a harvested-power trace: Power[i] is the instantaneous harvested
// power (watts) during sample i, at SampleHz samples per second. The supply
// wraps around when the trace is exhausted, so any finite trace models a
// stationary environment.
type Trace struct {
	SampleHz float64
	Power    []float64
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 {
	if t.SampleHz == 0 {
		return 0
	}
	return float64(len(t.Power)) / t.SampleHz
}

// MeanPower returns the average harvested power over the trace, in watts.
func (t *Trace) MeanPower() float64 {
	if len(t.Power) == 0 {
		return 0
	}
	var sum float64
	for _, p := range t.Power {
		sum += p
	}
	return sum / float64(len(t.Power))
}

// TraceConfig parameterizes the synthetic RF-harvest trace generator.
type TraceConfig struct {
	SampleHz   float64 // sample rate; the paper uses 1 kHz traces
	Seconds    float64 // trace duration
	BasePower  float64 // ambient harvested power, watts
	BurstPower float64 // mean additional power during an RF burst, watts
	BurstProb  float64 // per-sample probability that a burst begins
	BurstLen   float64 // mean burst length in samples (geometric)
	Jitter     float64 // multiplicative amplitude jitter in [0,1)
}

// DefaultTraceConfig returns burst statistics that produce millisecond-scale
// active periods on the default device (10 uF capacitor, 300 pJ/cycle at
// 24 MHz), matching the paper's "up to a few milliseconds at a time"
// characterization of harvested supplies.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		SampleHz:   1000,
		Seconds:    40,
		BasePower:  120e-6,
		BurstPower: 2.4e-3,
		BurstProb:  0.06,
		BurstLen:   9,
		Jitter:     0.45,
	}
}

// SyntheticWiFiTrace generates a deterministic, seeded RF-burst harvest
// trace. It substitutes for the captured Wi-Fi traces of Furlong et al. used
// by the paper: bursty packet-scale energy arrivals over a weak ambient
// floor. Distinct seeds play the role of the paper's 9 distinct traces.
func SyntheticWiFiTrace(seed int64, cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(cfg.SampleHz * cfg.Seconds)
	power := make([]float64, n)
	burstLeft := 0
	burstAmp := 0.0
	for i := range power {
		if burstLeft == 0 && rng.Float64() < cfg.BurstProb {
			// Geometric burst length with the configured mean.
			burstLeft = 1 + int(rng.ExpFloat64()*cfg.BurstLen)
			burstAmp = cfg.BurstPower * (1 + cfg.Jitter*(2*rng.Float64()-1))
		}
		p := cfg.BasePower * (1 + cfg.Jitter*(2*rng.Float64()-1))
		if burstLeft > 0 {
			p += burstAmp * (1 + 0.2*(2*rng.Float64()-1))
			burstLeft--
		}
		power[i] = math.Max(0, p)
	}
	return &Trace{SampleHz: cfg.SampleHz, Power: power}
}

// ConstantTrace returns a trace with fixed harvested power. Useful for
// continuous-power experiments (the runtime-quality curves of Figure 9) and
// for tests.
func ConstantTrace(watts, sampleHz, seconds float64) *Trace {
	n := int(sampleHz * seconds)
	power := make([]float64, n)
	for i := range power {
		power[i] = watts
	}
	return &Trace{SampleHz: sampleHz, Power: power}
}

// WriteCSV writes the trace as "time_s,power_w" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "power_w"}); err != nil {
		return err
	}
	for i, p := range t.Power {
		row := []string{
			strconv.FormatFloat(float64(i)/t.SampleHz, 'g', -1, 64),
			strconv.FormatFloat(p, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The sample rate is inferred
// from the first two timestamps.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 3 {
		return nil, fmt.Errorf("energy: trace CSV needs a header and at least two samples")
	}
	rows = rows[1:] // drop header
	t0, err := strconv.ParseFloat(rows[0][0], 64)
	if err != nil {
		return nil, fmt.Errorf("energy: bad timestamp %q: %v", rows[0][0], err)
	}
	t1, err := strconv.ParseFloat(rows[1][0], 64)
	if err != nil {
		return nil, fmt.Errorf("energy: bad timestamp %q: %v", rows[1][0], err)
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("energy: non-increasing timestamps in trace")
	}
	tr := &Trace{SampleHz: 1 / (t1 - t0)}
	for i, row := range rows {
		if len(row) < 2 {
			return nil, fmt.Errorf("energy: row %d is short", i+2)
		}
		p, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("energy: bad power %q: %v", row[1], err)
		}
		tr.Power = append(tr.Power, p)
	}
	return tr, nil
}
