package energy

import (
	"math"
	"math/rand"
)

// Beyond the Wi-Fi RF bursts the paper's traces capture, energy-harvesting
// deployments draw from solar, thermal and motion sources (the paper's
// introduction and its NVP citations). These generators produce the
// characteristic power shapes of each source so the runtimes can be studied
// across environments.

// SyntheticSolarTrace models indoor/outdoor light harvesting: a slow
// illumination envelope (sweeping across the trace like a cloud passing or
// a lamp duty cycle) with flicker noise. Power varies smoothly on a scale
// of seconds, unlike RF's millisecond bursts.
func SyntheticSolarTrace(seed int64, cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(cfg.SampleHz * cfg.Seconds)
	power := make([]float64, n)
	peak := cfg.BasePower + cfg.BurstPower
	phase := rng.Float64() * 2 * math.Pi
	cloudiness := 0.3 + 0.4*rng.Float64()
	for i := range power {
		t := float64(i) / cfg.SampleHz
		// Diurnal-style envelope compressed into the trace length plus a
		// slower cloud oscillation.
		envelope := 0.5 + 0.5*math.Sin(2*math.Pi*t/cfg.Seconds+phase)
		cloud := 1 - cloudiness*0.5*(1+math.Sin(2*math.Pi*t/7.3+2*phase))
		p := cfg.BasePower + peak*envelope*cloud
		p *= 1 + 0.05*(2*rng.Float64()-1)
		power[i] = math.Max(0, p)
	}
	return &Trace{SampleHz: cfg.SampleHz, Power: power}
}

// SyntheticThermalTrace models a thermoelectric source: a steady gradient
// with slow drift — low variance, no bursts.
func SyntheticThermalTrace(seed int64, cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(cfg.SampleHz * cfg.Seconds)
	power := make([]float64, n)
	level := cfg.BasePower + 0.5*cfg.BurstPower
	for i := range power {
		level += (cfg.BasePower + 0.5*cfg.BurstPower - level) * 0.001 // mean reversion
		level += cfg.BasePower * 0.01 * (2*rng.Float64() - 1)
		power[i] = math.Max(0, level)
	}
	return &Trace{SampleHz: cfg.SampleHz, Power: power}
}

// SyntheticMotionTrace models kinetic harvesting (the paper's wildlife
// scenario): long dead intervals punctuated by large energy spikes when
// the animal moves.
func SyntheticMotionTrace(seed int64, cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(cfg.SampleHz * cfg.Seconds)
	power := make([]float64, n)
	spikeLeft := 0
	amp := 0.0
	for i := range power {
		if spikeLeft == 0 && rng.Float64() < cfg.BurstProb/4 {
			spikeLeft = 1 + int(rng.ExpFloat64()*cfg.BurstLen*3)
			amp = cfg.BurstPower * (4 + 4*rng.Float64())
		}
		p := cfg.BasePower * 0.2
		if spikeLeft > 0 {
			p += amp * (0.7 + 0.6*rng.Float64())
			spikeLeft--
		}
		power[i] = math.Max(0, p)
	}
	return &Trace{SampleHz: cfg.SampleHz, Power: power}
}

// SourceKind names a harvest environment.
type SourceKind string

// The supported environments.
const (
	SourceWiFi    SourceKind = "wifi"
	SourceSolar   SourceKind = "solar"
	SourceThermal SourceKind = "thermal"
	SourceMotion  SourceKind = "motion"
)

// Sources lists all environments in a stable order.
func Sources() []SourceKind {
	return []SourceKind{SourceWiFi, SourceSolar, SourceThermal, SourceMotion}
}

// TraceFor builds a trace for the named environment with the default
// configuration statistics.
func TraceFor(kind SourceKind, seed int64, cfg TraceConfig) *Trace {
	switch kind {
	case SourceSolar:
		return SyntheticSolarTrace(seed, cfg)
	case SourceThermal:
		return SyntheticThermalTrace(seed, cfg)
	case SourceMotion:
		return SyntheticMotionTrace(seed, cfg)
	default:
		return SyntheticWiFiTrace(seed, cfg)
	}
}
