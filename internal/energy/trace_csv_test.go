package energy

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceCSVExactRoundTrip: WriteCSV→ReadCSV must reproduce the trace
// exactly, not approximately. WriteCSV formats with strconv's shortest
// round-trippable representation ('g', -1), so every power sample must come
// back bit-identical, and at the paper's 1 kHz rate the inferred sample rate
// is exact too (1/0.001 is representable).
func TestTraceCSVExactRoundTrip(t *testing.T) {
	tr := SyntheticWiFiTrace(11, DefaultTraceConfig())
	tr.Power = tr.Power[:2000] // keep the test fast; still 2 s of samples

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleHz != tr.SampleHz {
		t.Fatalf("SampleHz %v, want exactly %v", got.SampleHz, tr.SampleHz)
	}
	if len(got.Power) != len(tr.Power) {
		t.Fatalf("%d samples, want %d", len(got.Power), len(tr.Power))
	}
	for i := range tr.Power {
		if got.Power[i] != tr.Power[i] {
			t.Fatalf("sample %d: %v, want exactly %v", i, got.Power[i], tr.Power[i])
		}
	}

	// Re-encoding the parsed trace must be byte-identical to the first
	// encoding — the property that makes trace files stable artifacts.
	var again bytes.Buffer
	if err := got.WriteCSV(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Fatal("re-encoded CSV differs from original encoding")
	}
}

// TestTraceCSVFileRoundTrip exercises the same path through a real file,
// the way wntrace and the experiment harness use it.
func TestTraceCSVFileRoundTrip(t *testing.T) {
	tr := ConstantTrace(2.5e-4, 1000, 0.05)
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleHz != 1000 || len(got.Power) != 50 || got.Power[17] != 2.5e-4 {
		t.Fatalf("file round trip: hz=%v n=%d p17=%v", got.SampleHz, len(got.Power), got.Power[17])
	}
}

// TestReadCSVMalformed pins each malformed-input error path to its message,
// so a regression can't silently reroute one failure mode into another.
func TestReadCSVMalformed(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "at least two samples"},
		{"header only", "time_s,power_w\n", "at least two samples"},
		{"one sample", "time_s,power_w\n0,1e-4\n", "at least two samples"},
		{"bad first timestamp", "time_s,power_w\nx,1e-4\n0.001,1e-4\n", "bad timestamp"},
		{"bad second timestamp", "time_s,power_w\n0,1e-4\nx,1e-4\n", "bad timestamp"},
		{"equal timestamps", "time_s,power_w\n0.001,1e-4\n0.001,1e-4\n", "non-increasing"},
		{"decreasing timestamps", "time_s,power_w\n0.002,1e-4\n0.001,1e-4\n", "non-increasing"},
		{"bad power", "time_s,power_w\n0,1e-4\n0.001,oops\n", "bad power"},
		// A one-column header relaxes the csv reader's field-count check, so
		// this reaches ReadCSV's own short-row guard.
		{"short row", "time_s\n0\n0.001\n", "is short"},
		// With the standard two-column header the csv layer itself rejects a
		// row with the wrong number of fields.
		{"ragged row", "time_s,power_w\n0,1e-4\n0.001\n", "wrong number of fields"},
		{"bare quote", "time_s,power_w\n0,\"1e-4\n0.001,1e-4\n", "quote"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("ReadCSV(%q) succeeded, want error containing %q", tc.src, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadCSV(%q) error %q, want it to contain %q", tc.src, err, tc.wantErr)
			}
		})
	}
}

// TestReadCSVCRLF: traces exported from other tooling often carry Windows
// line endings; the csv layer must absorb them.
func TestReadCSVCRLF(t *testing.T) {
	src := "time_s,power_w\r\n0,1e-4\r\n0.001,3e-4\r\n0.002,2e-4\r\n"
	tr, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SampleHz != 1000 || len(tr.Power) != 3 || tr.Power[1] != 3e-4 {
		t.Fatalf("CRLF parse: hz=%v n=%d p1=%v", tr.SampleHz, len(tr.Power), tr.Power[1])
	}
}

// failAfter errors once n bytes have been accepted, to prove WriteCSV
// propagates sink failures instead of dropping samples silently.
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteCSVPropagatesWriteError(t *testing.T) {
	tr := ConstantTrace(1e-4, 1000, 1)
	if err := tr.WriteCSV(&failAfter{n: 64}); err == nil {
		t.Fatal("WriteCSV into a failing writer returned nil")
	}
}
