package energy

import (
	"math"
	"testing"
)

// TestTraceSeedStability is the invariant the sweep engine's cache key
// relies on: a harvest trace is a pure function of (source, seed, config).
// Generating the same trace twice with one seed must be sample-identical,
// and distinct seeds must produce different traces.
func TestTraceSeedStability(t *testing.T) {
	cfg := DefaultTraceConfig()
	for _, src := range Sources() {
		t.Run(string(src), func(t *testing.T) {
			a := TraceFor(src, 42, cfg)
			b := TraceFor(src, 42, cfg)
			if len(a.Power) == 0 {
				t.Fatal("empty trace")
			}
			if len(a.Power) != len(b.Power) {
				t.Fatalf("lengths differ: %d vs %d", len(a.Power), len(b.Power))
			}
			for i := range a.Power {
				if a.Power[i] != b.Power[i] {
					t.Fatalf("sample %d differs for seed 42: %v vs %v", i, a.Power[i], b.Power[i])
				}
			}
			c := TraceFor(src, 43, cfg)
			same := true
			for i := range a.Power {
				if a.Power[i] != c.Power[i] {
					same = false
					break
				}
			}
			if same {
				t.Error("seeds 42 and 43 produced identical traces")
			}
			for i, p := range a.Power {
				if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("sample %d is not a sane power value: %v", i, p)
				}
			}
		})
	}
}
