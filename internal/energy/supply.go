package energy

import "math"

// DeviceConfig describes the electrical parameters of the simulated device.
type DeviceConfig struct {
	ClockHz        float64 // processor clock; the paper runs the M0+ at 24 MHz
	CapacitanceF   float64 // storage capacitor; 10 uF in the paper
	VMax           float64 // capacitor ceiling (harvester clamp)
	VOn            float64 // turn-on threshold (hysteresis upper bound)
	VOff           float64 // brown-out threshold
	EnergyPerCycle float64 // joules per processor cycle (constant, per paper)
	NVWriteEnergy  float64 // extra joules per non-volatile data write
	HarvestEff     float64 // harvester conversion efficiency in (0,1]
}

// DefaultDeviceConfig returns the parameters used throughout the
// reproduction: 24 MHz clock, 10 uF capacitor with a 1.8-3.0 V operating
// window and 2 nJ/cycle (MSP430/M0+-class energy at 3 V including the NV
// memory system), which yields roughly 19k cycles (about 0.8 ms) per full
// charge — the paper's millisecond-scale active periods.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		ClockHz:        24e6,
		CapacitanceF:   10e-6,
		VMax:           3.3,
		VOn:            3.0,
		VOff:           1.8,
		EnergyPerCycle: 2e-9,
		NVWriteEnergy:  500e-12,
		HarvestEff:     0.7,
	}
}

// UsableEnergy returns the joules available between VOn and VOff.
func (c DeviceConfig) UsableEnergy() float64 {
	return 0.5 * c.CapacitanceF * (c.VOn*c.VOn - c.VOff*c.VOff)
}

// CyclesPerCharge estimates how many cycles a full charge sustains with no
// concurrent harvesting.
func (c DeviceConfig) CyclesPerCharge() uint64 {
	return uint64(c.UsableEnergy() / c.EnergyPerCycle)
}

// Supply combines a harvest trace with a capacitor and exposes the
// charge/discharge process at cycle granularity to the intermittent
// runtimes.
type Supply struct {
	cfg   DeviceConfig
	trace *Trace

	energy   float64 // joules currently stored
	maxE     float64
	onE      float64 // stored energy at VOn
	offE     float64 // stored energy at VOff
	powered  bool
	cycleSec float64 // seconds per cycle

	// Totals.
	CyclesOn      uint64 // cycles executed while powered
	CyclesOff     uint64 // cycles spent waiting for charge
	Outages       uint64 // number of brown-outs observed
	EnergyDrawn   float64
	EnergyCharged float64
}

// NewSupply builds a supply from a device config and a harvest trace. The
// capacitor starts full so the first active period begins at cycle zero.
func NewSupply(cfg DeviceConfig, trace *Trace) *Supply {
	s := &Supply{
		cfg:      cfg,
		trace:    trace,
		maxE:     0.5 * cfg.CapacitanceF * cfg.VMax * cfg.VMax,
		onE:      0.5 * cfg.CapacitanceF * cfg.VOn * cfg.VOn,
		offE:     0.5 * cfg.CapacitanceF * cfg.VOff * cfg.VOff,
		cycleSec: 1 / cfg.ClockHz,
	}
	s.energy = s.onE
	s.powered = true
	return s
}

// Config returns the device parameters.
func (s *Supply) Config() DeviceConfig { return s.cfg }

// Voltage returns the current capacitor voltage.
func (s *Supply) Voltage() float64 {
	return math.Sqrt(2 * s.energy / s.cfg.CapacitanceF)
}

// Powered reports whether the device is currently on.
func (s *Supply) Powered() bool { return s.powered }

// Headroom returns the joules stored above the brown-out threshold. Batch
// schedulers divide it by a worst-case per-cycle drain to bound how many
// cycles can run without a brown-out.
func (s *Supply) Headroom() float64 { return s.energy - s.offE }

// Now returns the simulated time in seconds.
func (s *Supply) Now() float64 {
	return float64(s.CyclesOn+s.CyclesOff) * s.cycleSec
}

// TotalCycles returns elapsed wall-clock time in cycle units (on + off).
func (s *Supply) TotalCycles() uint64 { return s.CyclesOn + s.CyclesOff }

// harvestPower returns the harvested power at the current simulated time,
// wrapping the trace.
func (s *Supply) harvestPower() float64 {
	if s.trace == nil || len(s.trace.Power) == 0 {
		return 0
	}
	idx := uint64(s.Now() * s.trace.SampleHz)
	return s.trace.Power[idx%uint64(len(s.trace.Power))] * s.cfg.HarvestEff
}

// charge adds harvested energy for n cycles of elapsed time.
func (s *Supply) charge(n uint64) {
	in := s.harvestPower() * float64(n) * s.cycleSec
	s.EnergyCharged += in
	s.energy = math.Min(s.maxE, s.energy+in)
}

// Spend advances simulated time by cycles of execution, drawing
// cycles*EnergyPerCycle+extra joules while also harvesting. It returns false
// when the capacitor crosses VOff: the device browns out and the caller must
// WaitForPower before executing again.
func (s *Supply) Spend(cycles uint32, extra float64) bool {
	if !s.powered {
		return false
	}
	s.charge(uint64(cycles))
	draw := float64(cycles)*s.cfg.EnergyPerCycle + extra
	s.EnergyDrawn += draw
	s.energy -= draw
	s.CyclesOn += uint64(cycles)
	if s.energy <= s.offE {
		s.energy = math.Max(s.energy, 0)
		s.powered = false
		s.Outages++
		return false
	}
	return true
}

// WaitForPower advances simulated time until the capacitor recharges to VOn,
// returning the number of cycles spent off. With a zero-power trace it gives
// up after the equivalent of ten trace durations and returns false.
func (s *Supply) WaitForPower() (waited uint64, ok bool) {
	if s.powered {
		return 0, true
	}
	// Step at one trace-sample granularity for fidelity to the 1 kHz trace.
	step := uint64(s.cfg.ClockHz / s.trace.SampleHz)
	if step == 0 {
		step = 1
	}
	var limit uint64 = math.MaxUint64
	if s.trace != nil && len(s.trace.Power) > 0 {
		limit = uint64(10*s.trace.Duration()*s.cfg.ClockHz) + s.TotalCycles()
	}
	for s.energy < s.onE {
		s.charge(step)
		s.CyclesOff += step
		waited += step
		if s.TotalCycles() > limit {
			return waited, false
		}
	}
	s.powered = true
	return waited, true
}

// ForceOutage models an externally induced brown-out (used in failure
// injection tests): the capacitor is drained to VOff.
func (s *Supply) ForceOutage() {
	if !s.powered {
		return
	}
	s.energy = s.offE
	s.powered = false
	s.Outages++
}
