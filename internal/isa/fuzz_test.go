package isa

import "testing"

// FuzzEncodeDecode checks the two encoding round-trip invariants:
//
//  1. Any word that decodes either re-encodes to exactly the same word, or
//     is rejected by Encode (a word carrying payload bits the instruction
//     cannot express, e.g. immediate bits on a register-form ALU op).
//  2. Any Instruction that encodes must decode back to an identical
//     Instruction (the image is the source of truth for the verifier and
//     disassembler, so encoding must never lose a field).
//
// The raw word drives property 1; the unpacked fields drive property 2.
func FuzzEncodeDecode(f *testing.F) {
	// One seed per operand-encoding class, plus edge immediates.
	seeds := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMovI, Rd: 3, Imm: 0xFFFF},            // unsigned 16-bit imm
		{Op: OpMovTI, Rd: 3, Imm: 0x1000},           // high-half move
		{Op: OpMov, Rd: 1, Rm: 2},                   // register form
		{Op: OpAdd, Rd: 1, Rn: 2, Rm: 3},            // three-register ALU
		{Op: OpAddI, Rd: 1, Rn: 2, Imm: -(1 << 15)}, // signed imm, min
		{Op: OpSubIS, Rd: 4, Rn: 4, Imm: 1},         // flag-setting sub
		{Op: OpCmpI, Rn: 5, Imm: 1<<15 - 1},         // signed imm, max
		{Op: OpLdr, Rd: 6, Rn: 7, Imm: 64},          // imm-offset load
		{Op: OpStrbX, Rd: 6, Rn: 7, Rm: 8},          // reg-offset store
		{Op: OpB, Imm: -8},                          // backward branch
		{Op: OpBl, Imm: 400},                        // call
		{Op: OpBx, Rm: 14},                          // indirect through LR
		{Op: OpSkm, Imm: 0x120},                     // absolute skim target
		{Op: OpMulASP8, Rd: 9, Rm: 10, Imm: 3},      // subword multiply
		{Op: OpMulASP3, Rd: 9, Rm: 10, Imm: 9},      // odd subword width
		{Op: OpAddASV16, Rd: 11, Rm: 12},            // vector lanes
		{Op: OpSubASV4, Rd: 0, Rm: 1},               // vector lanes
		{Op: OpMulASP1, Rd: 2, Rm: 3, Imm: 31},      // max position
	}
	for _, in := range seeds {
		w, err := Encode(in)
		if err != nil {
			f.Fatalf("seed %v does not encode: %v", in, err)
		}
		f.Add(uint32(w), uint8(in.Op), uint8(in.Rd), uint8(in.Rn), uint8(in.Rm), in.Imm)
	}
	// Undecodable and payload-carrying raw words.
	f.Add(uint32(0xFF000000), uint8(0), uint8(0), uint8(0), uint8(0), int32(0))
	f.Add(uint32(0x05120230), uint8(0xFF), uint8(15), uint8(15), uint8(15), int32(-1))

	f.Fuzz(func(t *testing.T, word uint32, op, rd, rn, rm uint8, imm int32) {
		// Property 1: decode(word) -> encode is the identity or a rejection.
		if in, err := Decode(Word(word)); err == nil {
			back, err := Encode(in)
			if err == nil && uint32(back) != word {
				t.Errorf("decode(%#08x) = %v re-encodes to %#08x", word, in, uint32(back))
			}
			// Decoded instructions always carry in-range register fields.
			if in.Rd >= NumRegs || in.Rn >= NumRegs || in.Rm >= NumRegs {
				t.Errorf("decode(%#08x) = %v has an out-of-range register", word, in)
			}
		}

		// Property 2: encode(in) -> decode is the identity.
		in := Instruction{Op: Opcode(op), Rd: Reg(rd), Rn: Reg(rn), Rm: Reg(rm), Imm: imm}
		w, err := Encode(in)
		if err != nil {
			return
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("encode(%v) = %#08x does not decode: %v", in, uint32(w), err)
		}
		// Fields the encoding has no slot for decode as zero: Rm on
		// immediate-form instructions, and the immediate on register-form
		// instructions (except MUL_ASP, which packs both). Everything else
		// must round-trip exactly.
		norm := in
		if opTable[in.Op].hasRm {
			if in.Op.ASPBits() == 0 {
				norm.Imm = 0
			}
		} else {
			norm.Rm = 0
		}
		if got != norm {
			t.Errorf("decode(encode(%v)) = %v", in, got)
		}
	})
}
