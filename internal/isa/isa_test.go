package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterNames(t *testing.T) {
	cases := map[Reg]string{
		R0: "R0", R7: "R7", R12: "R12", SP: "SP", LR: "LR", PC: "PC",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpcodeTableComplete(t *testing.T) {
	for op := 0; op < NumOpcodes; op++ {
		o := Opcode(op)
		if o.Name() == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if o.BaseCycles() == 0 {
			t.Errorf("opcode %s has zero cycle cost", o.Name())
		}
	}
}

func TestOpcodeNamesUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := 0; op < NumOpcodes; op++ {
		name := Opcode(op).Name()
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share mnemonic %q", prev, op, name)
		}
		seen[name] = Opcode(op)
	}
}

func TestCycleCosts(t *testing.T) {
	cases := map[Opcode]uint32{
		OpAdd:     1,
		OpLdr:     2,
		OpStr:     2,
		OpMul:     16, // the M0+ iterative multiplier
		OpMulASP1: 1,
		OpMulASP2: 2,
		OpMulASP3: 3,
		OpMulASP4: 4,
		OpMulASP8: 8,
		OpAddASV8: 1,
		OpSkm:     1,
	}
	for op, want := range cases {
		if got := op.BaseCycles(); got != want {
			t.Errorf("%s costs %d cycles, want %d", op.Name(), got, want)
		}
	}
}

func TestASPHelpers(t *testing.T) {
	for _, bits := range []uint{1, 2, 3, 4, 8} {
		op, err := MulASPOp(bits)
		if err != nil {
			t.Fatalf("MulASPOp(%d): %v", bits, err)
		}
		if op.ASPBits() != bits {
			t.Errorf("MulASPOp(%d).ASPBits() = %d", bits, op.ASPBits())
		}
		if op.BaseCycles() != uint32(bits) {
			t.Errorf("MUL_ASP%d costs %d cycles, want %d (one per subword bit)", bits, op.BaseCycles(), bits)
		}
		if !op.IsMul() {
			t.Errorf("%s should report IsMul", op.Name())
		}
	}
	if _, err := MulASPOp(5); err == nil {
		t.Error("MulASPOp(5) should fail")
	}
	if OpAdd.ASPBits() != 0 {
		t.Error("ADD is not an anytime multiply")
	}
}

func TestASVHelpers(t *testing.T) {
	for _, lane := range []uint{4, 8, 16} {
		add, err := AddASVOp(lane)
		if err != nil {
			t.Fatalf("AddASVOp(%d): %v", lane, err)
		}
		sub, err := SubASVOp(lane)
		if err != nil {
			t.Fatalf("SubASVOp(%d): %v", lane, err)
		}
		if add.ASVLane() != lane || sub.ASVLane() != lane {
			t.Errorf("lane mismatch for %d-bit ASV ops", lane)
		}
	}
	if _, err := AddASVOp(2); err == nil {
		t.Error("AddASVOp(2) should fail")
	}
	if _, err := SubASVOp(32); err == nil {
		t.Error("SubASVOp(32) should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < NumOpcodes; op++ {
		o := Opcode(op)
		for trial := 0; trial < 200; trial++ {
			in := Instruction{
				Op: o,
				Rd: Reg(rng.Intn(NumRegs)),
				Rn: Reg(rng.Intn(NumRegs)),
			}
			switch {
			case o.HasRm():
				in.Rm = Reg(rng.Intn(NumRegs))
				if o.ASPBits() != 0 {
					in.Imm = int32(rng.Intn(0x1000))
				}
			case o.SignedImm():
				in.Imm = int32(rng.Intn(1<<16)) - 1<<15
			default:
				in.Imm = int32(rng.Intn(1 << 16))
			}
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("%s: encode %+v: %v", o.Name(), in, err)
			}
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("%s: decode: %v", o.Name(), err)
			}
			// Fields not carried by the encoding are zeroed on decode.
			want := in
			if !o.HasRm() {
				want.Rm = 0
			}
			if got != want {
				t.Fatalf("%s round trip: got %+v want %+v", o.Name(), got, want)
			}
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Instruction{
		{Op: OpAddI, Rd: R0, Rn: R1, Imm: 40000},     // over signed 16-bit
		{Op: OpAddI, Rd: R0, Rn: R1, Imm: -40000},    // under signed 16-bit
		{Op: OpMovI, Rd: R0, Imm: -1},                // negative unsigned
		{Op: OpMovI, Rd: R0, Imm: 1 << 16},           // over unsigned 16-bit
		{Op: Opcode(0xFE)},                           // invalid opcode
		{Op: OpAdd, Rd: R0, Rn: R1, Rm: R2, Imm: 7},  // stray immediate on register form
		{Op: OpMulASP8, Rd: R0, Rm: R1, Imm: 0x1000}, // position too large
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) should fail", in)
		}
	}
}

func TestDecodeRejectsIllegalOpcode(t *testing.T) {
	if _, err := Decode(Word(0xFF) << 24); err == nil {
		t.Error("decoding an undefined opcode byte should fail")
	}
}

// TestDecodeTotal uses testing/quick to establish that Decode never panics
// and that every successfully decoded instruction re-encodes to the same
// word (decode is a partial inverse of encode).
func TestDecodeTotal(t *testing.T) {
	f := func(raw uint32) bool {
		in, err := Decode(Word(raw))
		if err != nil {
			return true // illegal opcodes are allowed to fail
		}
		w, err := Encode(in)
		if err != nil {
			// Decoded instructions with junk in unused field bits may not
			// re-encode (e.g. stray imm bits on a register form); decode
			// masks what it uses, so only assert when re-encoding works.
			return true
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpNop}, "NOP"},
		{Instruction{Op: OpHalt}, "HALT"},
		{Instruction{Op: OpMovI, Rd: R3, Imm: 42}, "MOVI R3, #42"},
		{Instruction{Op: OpMov, Rd: R1, Rm: R2}, "MOV R1, R2"},
		{Instruction{Op: OpAdd, Rd: R1, Rn: R2, Rm: R3}, "ADD R1, R2, R3"},
		{Instruction{Op: OpAddI, Rd: R1, Rn: R2, Imm: -4}, "ADDI R1, R2, #-4"},
		{Instruction{Op: OpCmp, Rn: R5, Rm: R6}, "CMP R5, R6"},
		{Instruction{Op: OpMul, Rd: R1, Rn: R2, Rm: R3}, "MUL R1, R2, R3"},
		{Instruction{Op: OpLdr, Rd: R1, Rn: R2, Imm: 8}, "LDR R1, [R2, #8]"},
		{Instruction{Op: OpLdrX, Rd: R1, Rn: R2, Rm: R3}, "LDRX R1, [R2, R3]"},
		{Instruction{Op: OpMulASP8, Rd: R4, Rm: R5, Imm: 1}, "MUL_ASP8 R4, R5, #1"},
		{Instruction{Op: OpAddASV8, Rd: R3, Rm: R4}, "ADD_ASV8 R3, R4"},
		{Instruction{Op: OpSkm, Imm: 64}, "SKM #64"},
		{Instruction{Op: OpB, Imm: -8}, "B #-8"},
		{Instruction{Op: OpBx, Rm: LR}, "BX LR"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !OpLdrb.IsLoad() || OpLdrb.IsStore() {
		t.Error("LDRB should be a load")
	}
	if !OpStrhX.IsStore() || OpStrhX.IsLoad() {
		t.Error("STRHX should be a store")
	}
	for _, op := range []Opcode{OpB, OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpBlo, OpBhs, OpBl, OpBx} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op.Name())
		}
	}
	if OpAdd.IsBranch() || OpAdd.IsLoad() || OpAdd.IsMul() {
		t.Error("ADD misclassified")
	}
	if !strings.HasPrefix(Opcode(200).Name(), "OP(") {
		t.Error("out-of-range opcode should render as OP(n)")
	}
}
