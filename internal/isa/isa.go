// Package isa defines the instruction set of the WN processor: a compact,
// ARMv6-M-profile register machine extended with the What's Next anytime
// instructions (subword-pipelined multiply MUL_ASP, subword-vectorized
// add/subtract ADD_ASV/SUB_ASV, and the skim-point instruction SKM).
//
// The encoding is a fixed-width 32-bit word:
//
//	bits 31..24  opcode
//	bits 23..20  Rd
//	bits 19..16  Rn
//	bits 15..0   Imm (16-bit immediate, signed or unsigned per opcode),
//	             or Rm in bits 3..0 for register forms.
//
// The cycle costs attached to each opcode follow the ARM Cortex-M0+ profile
// used by the paper: single-cycle ALU operations, 2-cycle loads, stores and
// taken branches, and a 16-cycle iterative multiplier. MUL_ASP with a B-bit
// subword takes B cycles.
package isa

import "fmt"

// Reg identifies one of the 16 architectural registers.
type Reg uint8

// Register aliases. SP, LR and PC follow the ARM convention.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13: stack pointer
	LR // R14: link register
	PC // R15: program counter
)

// NumRegs is the number of architectural registers.
const NumRegs = 16

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "SP"
	case LR:
		return "LR"
	case PC:
		return "PC"
	default:
		return fmt.Sprintf("R%d", uint8(r))
	}
}

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes. The *I suffix marks immediate forms; the X suffix on
// memory operations marks register-offset addressing.
const (
	OpNop Opcode = iota
	OpHalt

	// Data movement.
	OpMov   // MOV   Rd, Rm
	OpMovI  // MOVI  Rd, #imm16         (Rd = zero-extended imm)
	OpMovTI // MOVTI Rd, #imm16         (Rd[31:16] = imm, low half kept)

	// ALU, register and immediate forms. Flags are set only by CMP/CMPI.
	OpAdd  // ADD Rd, Rn, Rm
	OpAddI // ADDI Rd, Rn, #imm (sign-extended)
	OpSub
	OpSubI
	OpAnd
	OpAndI
	OpOrr
	OpOrrI
	OpEor
	OpEorI
	OpLsl
	OpLslI
	OpLsr
	OpLsrI
	OpAsr
	OpAsrI
	OpCmp   // CMP Rn, Rm   (flags = Rn - Rm)
	OpCmpI  // CMPI Rn, #imm
	OpSubIS // SUBIS Rd, Rn, #imm (subtract and set flags, like ARM SUBS)

	// Multiplication. MUL uses the iterative 16-cycle multiplier.
	OpMul // MUL Rd, Rn, Rm (Rd = low 32 bits of Rn*Rm)

	// Memory. Immediate-offset and register-offset forms.
	OpLdr   // LDR  Rd, [Rn, #imm]
	OpLdrh  // LDRH Rd, [Rn, #imm]
	OpLdrb  // LDRB Rd, [Rn, #imm]
	OpStr   // STR  Rd, [Rn, #imm]
	OpStrh  // STRH Rd, [Rn, #imm]
	OpStrb  // STRB Rd, [Rn, #imm]
	OpLdrX  // LDRX  Rd, [Rn, Rm]
	OpLdrhX // LDRHX Rd, [Rn, Rm]
	OpLdrbX // LDRBX Rd, [Rn, Rm]
	OpStrX  // STRX  Rd, [Rn, Rm]
	OpStrhX // STRHX Rd, [Rn, Rm]
	OpStrbX // STRBX Rd, [Rn, Rm]

	// Control flow. Branch targets are PC-relative byte offsets except for
	// SKM, which records an absolute byte address in the skim register.
	OpB   // B   #off
	OpBeq // BEQ #off
	OpBne
	OpBlt // signed <
	OpBge // signed >=
	OpBgt // signed >
	OpBle // signed <=
	OpBlo // unsigned <
	OpBhs // unsigned >=
	OpBl  // BL #off  (LR = return address)
	OpBx  // BX Rm    (branch to register; BX LR returns)

	// --- What's Next extension ---

	// Anytime subword-pipelined multiply (Section III-A of the paper):
	//   MUL_ASP<B> Rd, Rm, #pos   =>   Rd = (Rd * Rm) << (B*pos)
	// Rm holds a B-bit subword of the approximable operand; the iterative
	// multiplier runs only B steps, so the instruction costs B cycles.
	OpMulASP1
	OpMulASP2
	OpMulASP3
	OpMulASP4
	OpMulASP8

	// Anytime subword-vectorized add/sub (Section III-B): lane-parallel
	// arithmetic with the carry chain segmented at lane boundaries.
	//   ADD_ASV<L> Rd, Rm   =>   Rd = Rd +(L-bit lanes) Rm
	OpAddASV4
	OpAddASV8
	OpAddASV16
	OpSubASV4
	OpSubASV8
	OpSubASV16

	// Skim point (Section III-C): arm the non-volatile skim register with an
	// absolute target address. After a power outage, the restore path jumps
	// to the armed target instead of the checkpointed PC.
	OpSkm

	numOpcodes // sentinel
)

// NumOpcodes is the count of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Instruction is a decoded instruction.
type Instruction struct {
	Op  Opcode
	Rd  Reg
	Rn  Reg
	Rm  Reg   // register forms only (low 4 bits of the imm field)
	Imm int32 // sign- or zero-extended immediate per opcode
}

// Word is an encoded instruction.
type Word uint32

// InstBytes is the size in bytes of one encoded instruction.
const InstBytes = 4

type opInfo struct {
	name     string
	cycles   uint32
	signed   bool // immediate is sign-extended
	hasRm    bool // register operand in the imm field
	isBranch bool
	isLoad   bool
	isStore  bool
}

var opTable = [NumOpcodes]opInfo{
	OpNop:  {name: "NOP", cycles: 1},
	OpHalt: {name: "HALT", cycles: 1},

	OpMov:   {name: "MOV", cycles: 1, hasRm: true},
	OpMovI:  {name: "MOVI", cycles: 1},
	OpMovTI: {name: "MOVTI", cycles: 1},

	OpAdd:   {name: "ADD", cycles: 1, hasRm: true},
	OpAddI:  {name: "ADDI", cycles: 1, signed: true},
	OpSub:   {name: "SUB", cycles: 1, hasRm: true},
	OpSubI:  {name: "SUBI", cycles: 1, signed: true},
	OpAnd:   {name: "AND", cycles: 1, hasRm: true},
	OpAndI:  {name: "ANDI", cycles: 1},
	OpOrr:   {name: "ORR", cycles: 1, hasRm: true},
	OpOrrI:  {name: "ORRI", cycles: 1},
	OpEor:   {name: "EOR", cycles: 1, hasRm: true},
	OpEorI:  {name: "EORI", cycles: 1},
	OpLsl:   {name: "LSL", cycles: 1, hasRm: true},
	OpLslI:  {name: "LSLI", cycles: 1},
	OpLsr:   {name: "LSR", cycles: 1, hasRm: true},
	OpLsrI:  {name: "LSRI", cycles: 1},
	OpAsr:   {name: "ASR", cycles: 1, hasRm: true},
	OpAsrI:  {name: "ASRI", cycles: 1},
	OpCmp:   {name: "CMP", cycles: 1, hasRm: true},
	OpCmpI:  {name: "CMPI", cycles: 1, signed: true},
	OpSubIS: {name: "SUBIS", cycles: 1, signed: true},

	OpMul: {name: "MUL", cycles: 16, hasRm: true},

	OpLdr:   {name: "LDR", cycles: 2, signed: true, isLoad: true},
	OpLdrh:  {name: "LDRH", cycles: 2, signed: true, isLoad: true},
	OpLdrb:  {name: "LDRB", cycles: 2, signed: true, isLoad: true},
	OpStr:   {name: "STR", cycles: 2, signed: true, isStore: true},
	OpStrh:  {name: "STRH", cycles: 2, signed: true, isStore: true},
	OpStrb:  {name: "STRB", cycles: 2, signed: true, isStore: true},
	OpLdrX:  {name: "LDRX", cycles: 2, hasRm: true, isLoad: true},
	OpLdrhX: {name: "LDRHX", cycles: 2, hasRm: true, isLoad: true},
	OpLdrbX: {name: "LDRBX", cycles: 2, hasRm: true, isLoad: true},
	OpStrX:  {name: "STRX", cycles: 2, hasRm: true, isStore: true},
	OpStrhX: {name: "STRHX", cycles: 2, hasRm: true, isStore: true},
	OpStrbX: {name: "STRBX", cycles: 2, hasRm: true, isStore: true},

	OpB:   {name: "B", cycles: 2, signed: true, isBranch: true},
	OpBeq: {name: "BEQ", cycles: 1, signed: true, isBranch: true},
	OpBne: {name: "BNE", cycles: 1, signed: true, isBranch: true},
	OpBlt: {name: "BLT", cycles: 1, signed: true, isBranch: true},
	OpBge: {name: "BGE", cycles: 1, signed: true, isBranch: true},
	OpBgt: {name: "BGT", cycles: 1, signed: true, isBranch: true},
	OpBle: {name: "BLE", cycles: 1, signed: true, isBranch: true},
	OpBlo: {name: "BLO", cycles: 1, signed: true, isBranch: true},
	OpBhs: {name: "BHS", cycles: 1, signed: true, isBranch: true},
	OpBl:  {name: "BL", cycles: 2, signed: true, isBranch: true},
	OpBx:  {name: "BX", cycles: 2, hasRm: true, isBranch: true},

	OpMulASP1: {name: "MUL_ASP1", cycles: 1, hasRm: true},
	OpMulASP2: {name: "MUL_ASP2", cycles: 2, hasRm: true},
	OpMulASP3: {name: "MUL_ASP3", cycles: 3, hasRm: true},
	OpMulASP4: {name: "MUL_ASP4", cycles: 4, hasRm: true},
	OpMulASP8: {name: "MUL_ASP8", cycles: 8, hasRm: true},

	OpAddASV4:  {name: "ADD_ASV4", cycles: 1, hasRm: true},
	OpAddASV8:  {name: "ADD_ASV8", cycles: 1, hasRm: true},
	OpAddASV16: {name: "ADD_ASV16", cycles: 1, hasRm: true},
	OpSubASV4:  {name: "SUB_ASV4", cycles: 1, hasRm: true},
	OpSubASV8:  {name: "SUB_ASV8", cycles: 1, hasRm: true},
	OpSubASV16: {name: "SUB_ASV16", cycles: 1, hasRm: true},

	OpSkm: {name: "SKM", cycles: 1},
}

// Name returns the assembler mnemonic of the opcode.
func (op Opcode) Name() string {
	if int(op) < NumOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// BaseCycles returns the cycle cost of the opcode, excluding dynamic effects
// (taken-branch penalty, memoization hits).
func (op Opcode) BaseCycles() uint32 { return opTable[op].cycles }

// SignedImm reports whether the immediate field is sign-extended.
func (op Opcode) SignedImm() bool { return opTable[op].signed }

// HasRm reports whether the instruction carries a register in the imm field.
func (op Opcode) HasRm() bool { return opTable[op].hasRm }

// IsBranch reports whether the opcode is a control-flow instruction.
func (op Opcode) IsBranch() bool { return opTable[op].isBranch }

// IsLoad reports whether the opcode reads data memory.
func (op Opcode) IsLoad() bool { return opTable[op].isLoad }

// IsStore reports whether the opcode writes data memory.
func (op Opcode) IsStore() bool { return opTable[op].isStore }

// IsMul reports whether the opcode uses the iterative multiplier (precise or
// anytime subword-pipelined form).
func (op Opcode) IsMul() bool {
	switch op {
	case OpMul, OpMulASP1, OpMulASP2, OpMulASP3, OpMulASP4, OpMulASP8:
		return true
	}
	return false
}

// ASPBits returns the subword width of an anytime multiply, or 0 if op is
// not a MUL_ASP instruction.
func (op Opcode) ASPBits() uint {
	switch op {
	case OpMulASP1:
		return 1
	case OpMulASP2:
		return 2
	case OpMulASP3:
		return 3
	case OpMulASP4:
		return 4
	case OpMulASP8:
		return 8
	}
	return 0
}

// ASVLane returns the lane width of an anytime vector add/sub, or 0 if op is
// not an ASV instruction.
func (op Opcode) ASVLane() uint {
	switch op {
	case OpAddASV4, OpSubASV4:
		return 4
	case OpAddASV8, OpSubASV8:
		return 8
	case OpAddASV16, OpSubASV16:
		return 16
	}
	return 0
}

// MulASPOp returns the MUL_ASP opcode for a subword width.
func MulASPOp(bits uint) (Opcode, error) {
	switch bits {
	case 1:
		return OpMulASP1, nil
	case 2:
		return OpMulASP2, nil
	case 3:
		return OpMulASP3, nil
	case 4:
		return OpMulASP4, nil
	case 8:
		return OpMulASP8, nil
	}
	return OpNop, fmt.Errorf("isa: no MUL_ASP variant for %d-bit subwords", bits)
}

// AddASVOp returns the ADD_ASV opcode for a lane width.
func AddASVOp(lane uint) (Opcode, error) {
	switch lane {
	case 4:
		return OpAddASV4, nil
	case 8:
		return OpAddASV8, nil
	case 16:
		return OpAddASV16, nil
	}
	return OpNop, fmt.Errorf("isa: no ADD_ASV variant for %d-bit lanes", lane)
}

// SubASVOp returns the SUB_ASV opcode for a lane width.
func SubASVOp(lane uint) (Opcode, error) {
	switch lane {
	case 4:
		return OpSubASV4, nil
	case 8:
		return OpSubASV8, nil
	case 16:
		return OpSubASV16, nil
	}
	return OpNop, fmt.Errorf("isa: no SUB_ASV variant for %d-bit lanes", lane)
}

// Encode packs an instruction into its 32-bit representation. It returns an
// error if a field is out of range (immediate overflow, bad register).
func Encode(in Instruction) (Word, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rn >= NumRegs || in.Rm >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %s", in.Op.Name())
	}
	info := opTable[in.Op]
	var imm uint32
	if info.hasRm {
		if in.Imm != 0 {
			// Register-form instructions with a meaningful immediate:
			// MUL_ASP carries the subword position alongside Rm.
			if in.Op.ASPBits() == 0 {
				return 0, fmt.Errorf("isa: %s does not take an immediate", in.Op.Name())
			}
			if in.Imm < 0 || in.Imm > 0xFFF {
				return 0, fmt.Errorf("isa: %s position %d out of range", in.Op.Name(), in.Imm)
			}
		}
		imm = uint32(in.Rm) | uint32(in.Imm)<<4
	} else if info.signed {
		if in.Imm < -(1<<15) || in.Imm >= 1<<15 {
			return 0, fmt.Errorf("isa: %s immediate %d out of signed 16-bit range", in.Op.Name(), in.Imm)
		}
		imm = uint32(uint16(in.Imm))
	} else {
		if in.Imm < 0 || in.Imm > 0xFFFF {
			return 0, fmt.Errorf("isa: %s immediate %d out of unsigned 16-bit range", in.Op.Name(), in.Imm)
		}
		imm = uint32(in.Imm)
	}
	w := uint32(in.Op)<<24 | uint32(in.Rd)<<20 | uint32(in.Rn)<<16 | imm&0xFFFF
	return Word(w), nil
}

// Decode unpacks a 32-bit instruction word. Unknown opcodes yield an error,
// which the CPU reports as an illegal-instruction fault.
func Decode(w Word) (Instruction, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: illegal opcode byte %#02x", uint8(op))
	}
	info := opTable[op]
	in := Instruction{
		Op: op,
		Rd: Reg(w >> 20 & 0xF),
		Rn: Reg(w >> 16 & 0xF),
	}
	raw := uint32(w & 0xFFFF)
	switch {
	case info.hasRm:
		in.Rm = Reg(raw & 0xF)
		in.Imm = int32(raw >> 4)
	case info.signed:
		in.Imm = int32(int16(raw))
	default:
		in.Imm = int32(raw)
	}
	return in, nil
}

// String renders the instruction in assembler syntax.
func (in Instruction) String() string {
	name := in.Op.Name()
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return name
	case in.Op == OpMov:
		return fmt.Sprintf("%s %s, %s", name, in.Rd, in.Rm)
	case in.Op == OpMovI || in.Op == OpMovTI:
		return fmt.Sprintf("%s %s, #%d", name, in.Rd, in.Imm)
	case in.Op == OpCmp:
		return fmt.Sprintf("%s %s, %s", name, in.Rn, in.Rm)
	case in.Op == OpCmpI:
		return fmt.Sprintf("%s %s, #%d", name, in.Rn, in.Imm)
	case in.Op == OpMul:
		return fmt.Sprintf("%s %s, %s, %s", name, in.Rd, in.Rn, in.Rm)
	case in.Op.ASPBits() != 0:
		return fmt.Sprintf("%s %s, %s, #%d", name, in.Rd, in.Rm, in.Imm)
	case in.Op.ASVLane() != 0:
		return fmt.Sprintf("%s %s, %s", name, in.Rd, in.Rm)
	case in.Op.IsLoad() || in.Op.IsStore():
		if in.Op.HasRm() {
			return fmt.Sprintf("%s %s, [%s, %s]", name, in.Rd, in.Rn, in.Rm)
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", name, in.Rd, in.Rn, in.Imm)
	case in.Op == OpBx:
		return fmt.Sprintf("%s %s", name, in.Rm)
	case in.Op == OpSkm:
		return fmt.Sprintf("%s #%d", name, in.Imm)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s #%d", name, in.Imm)
	case in.Op.HasRm():
		return fmt.Sprintf("%s %s, %s, %s", name, in.Rd, in.Rn, in.Rm)
	default:
		return fmt.Sprintf("%s %s, %s, #%d", name, in.Rd, in.Rn, in.Imm)
	}
}
