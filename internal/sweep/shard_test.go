package sweep

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func shardTestJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Spec: Spec{Experiment: "shardtest", Kernel: fmt.Sprintf("k%02d", i)}}
	}
	return jobs
}

func TestValidCacheKey(t *testing.T) {
	good := Spec{Experiment: "x"}.Hash()
	if !ValidCacheKey(good) {
		t.Fatalf("spec hash %q rejected", good)
	}
	for _, bad := range []string{
		"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64),
		strings.Repeat("0", 63), strings.Repeat("0", 65), "../../../../etc/passwd",
	} {
		if ValidCacheKey(bad) {
			t.Errorf("ValidCacheKey(%q) = true, want false", bad)
		}
	}
}

func TestPartitionPreservesOrder(t *testing.T) {
	jobs := shardTestJobs(10)
	// Assign round-robin across three owners by index parity-of-3.
	owner := func(s Spec) string {
		var i int
		fmt.Sscanf(s.Kernel, "k%d", &i)
		return fmt.Sprintf("n%d", i%3)
	}
	shards := Partition(jobs, owner)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	// First-appearance order: n0, n1, n2.
	for si, sh := range shards {
		if want := fmt.Sprintf("n%d", si); sh.Owner != want {
			t.Errorf("shard %d owner %q, want %q", si, sh.Owner, want)
		}
		for k := 1; k < len(sh.Indices); k++ {
			if sh.Indices[k] <= sh.Indices[k-1] {
				t.Errorf("shard %s indices not increasing: %v", sh.Owner, sh.Indices)
			}
		}
		for k, idx := range sh.Indices {
			if sh.Jobs[k].Spec.Kernel != jobs[idx].Spec.Kernel {
				t.Errorf("shard %s job %d misaligned with index %d", sh.Owner, k, idx)
			}
		}
	}
}

func TestSplitChunks(t *testing.T) {
	sh := Partition(shardTestJobs(7), func(Spec) string { return "solo" })[0]
	chunks := sh.Split(3)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	var n int
	for _, c := range chunks {
		if len(c.Jobs) > 3 {
			t.Errorf("chunk has %d cells, cap 3", len(c.Jobs))
		}
		if len(c.Jobs) != len(c.Indices) {
			t.Errorf("chunk jobs/indices misaligned: %d vs %d", len(c.Jobs), len(c.Indices))
		}
		n += len(c.Jobs)
	}
	if n != 7 {
		t.Errorf("chunks cover %d cells, want 7", n)
	}
	if got := sh.Split(0); len(got) != 1 || len(got[0].Jobs) != 7 {
		t.Errorf("Split(0) should return the shard whole")
	}
}

func TestMergeShardsRoundTrip(t *testing.T) {
	jobs := shardTestJobs(9)
	shards := Partition(jobs, func(s Spec) string { return s.Hash()[:1] })
	results := make([][]json.RawMessage, len(shards))
	for si, sh := range shards {
		results[si] = make([]json.RawMessage, len(sh.Jobs))
		for k, idx := range sh.Indices {
			results[si][k] = json.RawMessage(fmt.Sprintf(`{"cell":%d}`, idx))
		}
	}
	merged, err := MergeShards(len(jobs), shards, results)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range merged {
		if want := fmt.Sprintf(`{"cell":%d}`, i); string(r) != want {
			t.Errorf("merged[%d] = %s, want %s", i, r, want)
		}
	}
}

func TestMergeShardsErrors(t *testing.T) {
	jobs := shardTestJobs(4)
	shards := Partition(jobs, func(Spec) string { return "a" })
	ok := [][]json.RawMessage{{
		json.RawMessage(`0`), json.RawMessage(`1`), json.RawMessage(`2`), json.RawMessage(`3`),
	}}

	if _, err := MergeShards(4, shards, nil); err == nil {
		t.Error("mismatched shard/result slice counts not rejected")
	}
	if _, err := MergeShards(4, shards, [][]json.RawMessage{{json.RawMessage(`0`)}}); err == nil {
		t.Error("short shard result not rejected")
	}
	// Duplicate index across shards.
	dup := append([]Shard(nil), shards...)
	dup = append(dup, Shard{Owner: "b", Indices: []int{1}, Jobs: jobs[1:2]})
	if _, err := MergeShards(4, dup, append(ok, []json.RawMessage{json.RawMessage(`9`)})); err == nil {
		t.Error("duplicate index not rejected")
	}
	// Gap: total larger than covered cells.
	if _, err := MergeShards(5, shards, ok); err == nil {
		t.Error("uncovered index not rejected")
	}
	if _, err := MergeShards(4, shards, ok); err != nil {
		t.Errorf("clean merge rejected: %v", err)
	}
}
