package sweep_test

import (
	"fmt"
	"runtime"
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/experiments"
	"whatsnext/internal/sweep"
)

// BenchmarkSweepParallel measures the wall-clock effect of the worker pool
// on a Figure 10-style multi-trace speedup sweep (every benchmark, 8- and
// 4-bit, 4 Wi-Fi traces — 48 independent cells). On a multi-core host the
// 4+ worker configurations should complete the identical job set at least
// 2x faster than workers=1; results are byte-identical regardless
// (TestExperimentDeterminism enforces that).
//
//	go test -bench SweepParallel -benchtime 2x ./internal/sweep/
func BenchmarkSweepParallel(b *testing.B) {
	workerCounts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sweep.New(sweep.Options{Workers: workers})
				proto := experiments.Protocol{Traces: 4, Invocations: 1, Engine: eng}
				rows, err := experiments.SpeedupStudy(core.ProcClank, proto)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					sp, _ := experiments.SpeedupSummary(rows, 4)
					b.ReportMetric(sp, "wn_speedup_4bit")
					m := eng.Metrics()
					b.ReportMetric(float64(m.Done), "jobs")
					b.ReportMetric(float64(m.SimCycles)/1e6, "sim_Mcycles")
				}
			}
		})
	}
}

// BenchmarkSweepCached measures the warm-cache path: the same sweep served
// entirely from the in-memory result cache.
func BenchmarkSweepCached(b *testing.B) {
	cache := sweep.NewMemoryCache()
	run := func() error {
		eng := sweep.New(sweep.Options{Workers: 1, Cache: cache})
		proto := experiments.Protocol{Traces: 4, Invocations: 1, Engine: eng}
		_, err := experiments.SpeedupStudy(core.ProcClank, proto)
		return err
	}
	if err := run(); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}
