// Package sweep is the simulation-job engine under the experiment harness:
// a deterministic worker pool that fans independent, seeded simulations out
// across cores, a content-addressed result cache that lets repeated wnbench
// runs skip already-simulated cells, and an observability layer (per-job
// wall time, simulated cycles, cache hit/miss counters, queue depth, and a
// progress callback).
//
// The determinism contract: a Job's Spec fully identifies its simulation —
// kernel, variant, processor, harvest source, trace seed, input seed, and
// any extra knobs — and the Run closure is a pure function of that spec
// (every RNG it uses is seeded from spec fields; no shared mutable state).
// Results are JSON-encoded once, collected in submission order, and returned
// as raw bytes, so the output of Engine.Run is bit-identical at any worker
// count, and a cached byte slice is indistinguishable from a fresh run.
// The cache key is a SHA-256 over the canonical encoding of the Spec, which
// is exactly why the key is sound: same spec, same bytes, always.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// specVersion is folded into every hash so that incompatible changes to the
// result encoding or simulation semantics can invalidate old caches by
// bumping one string.
const specVersion = "wnsweep/v1"

// Spec identifies one simulation cell. Every field that influences the
// result must appear here (directly or via Params); the engine hashes the
// canonical JSON encoding to key the result cache.
type Spec struct {
	// Experiment names the study this cell belongs to ("speedup", "fig9",
	// "ablation/watchdog", ...).
	Experiment string `json:"experiment"`
	// Kernel is the benchmark name (Table I), when applicable.
	Kernel string `json:"kernel,omitempty"`
	// Variant is the compiled configuration ("Conv2d/swp4", "Var/precise").
	Variant string `json:"variant,omitempty"`
	// Processor is the forward-progress runtime ("clank", "nvp", "undolog").
	Processor string `json:"processor,omitempty"`
	// Source is the harvest environment ("wifi", "solar", ...).
	Source string `json:"source,omitempty"`
	// TraceSeed seeds the synthetic harvest trace.
	TraceSeed int64 `json:"trace_seed,omitempty"`
	// InputSeed seeds the benchmark's input generator.
	InputSeed int64 `json:"input_seed,omitempty"`
	// Params carries any remaining knobs (workload sizes, watchdog cycles,
	// capacitance, sample counts) as canonical strings. encoding/json
	// serializes map keys in sorted order, keeping the encoding stable.
	Params map[string]string `json:"params,omitempty"`
}

// Canonical returns the stable byte encoding of the spec that the cache key
// is computed over.
func (s Spec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec contains only strings, ints and a string map; Marshal
		// cannot fail on it.
		panic("sweep: unmarshalable spec: " + err.Error())
	}
	return append([]byte(specVersion+"\n"), b...)
}

// Hash returns the content address of the spec: a hex SHA-256 of the
// canonical encoding. It is the cache key and the determinism fingerprint.
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// String renders a compact human-readable label for progress lines.
func (s Spec) String() string {
	out := s.Experiment
	if s.Variant != "" {
		out += " " + s.Variant
	} else if s.Kernel != "" {
		out += " " + s.Kernel
	}
	return out
}

// Job pairs a spec with the closure that simulates it. Run must be a pure
// function of the spec: it returns a JSON-marshalable result (typically a
// small struct of cycle counts and error metrics) computed only from seeded
// state. If the result implements CycleReporter, the engine accounts its
// simulated cycles in the metrics.
type Job struct {
	Spec Spec
	Run  func() (any, error)
}

// CycleReporter lets a job result report how many simulated device cycles
// it covered, for the engine's throughput accounting.
type CycleReporter interface {
	SimulatedCycles() uint64
}
