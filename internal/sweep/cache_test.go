package sweep

import (
	"bytes"
	"fmt"
	"testing"
)

// TestMemoryCacheLRU: the entry cap evicts least-recently-used entries and
// counts the evictions; recently-touched entries survive.
func TestMemoryCacheLRU(t *testing.T) {
	c := NewMemoryCacheSize(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", []byte{3})
	if c.Len() != 3 {
		t.Errorf("len=%d, want 3", c.Len())
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if n := c.Evictions(); n != 1 {
		t.Errorf("evictions=%d, want 1", n)
	}
	// Overwriting an existing key must not evict.
	c.Put("k2", []byte{42})
	if n := c.Evictions(); n != 1 {
		t.Errorf("evictions after overwrite=%d, want 1", n)
	}
	if v, _ := c.Get("k2"); !bytes.Equal(v, []byte{42}) {
		t.Errorf("overwrite lost: %v", v)
	}
}

// TestMemoryCacheUnbounded: the default cache never evicts.
func TestMemoryCacheUnbounded(t *testing.T) {
	c := NewMemoryCache()
	for i := 0; i < 10000; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{1})
	}
	if c.Len() != 10000 || c.Evictions() != 0 {
		t.Errorf("len=%d evictions=%d, want 10000/0", c.Len(), c.Evictions())
	}
}

// TestEngineEvictionMetrics: a bounded cache's evictions surface in the
// engine's Metrics snapshot.
func TestEngineEvictionMetrics(t *testing.T) {
	e := New(Options{Workers: 2, Cache: NewMemoryCacheSize(4)})
	if _, err := e.Run(fakeJobs(20)); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.CacheEvictions != 16 {
		t.Errorf("CacheEvictions=%d, want 16 (20 puts into a 4-entry cache)", m.CacheEvictions)
	}
}

// TestDiskCacheBoundedMem: the disk layer keeps every entry even when the
// memory layer evicts, and forwards the eviction count.
func TestDiskCacheBoundedMem(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCacheSize(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, Cache: c})
	first, err := e.Run(fakeJobs(10))
	if err != nil {
		t.Fatal(err)
	}
	if c.Evictions() == 0 {
		t.Error("memory layer never evicted under a 2-entry cap")
	}
	// Every result must still be served — from memory or from disk.
	e2 := New(Options{Workers: 1, Cache: c})
	second, err := e2.Run(fakeJobs(10))
	if err != nil {
		t.Fatal(err)
	}
	if m := e2.Metrics(); m.CacheHits != 10 {
		t.Errorf("hits=%d, want 10 (disk retains evicted entries)", m.CacheHits)
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("result %d differs after memory eviction", i)
		}
	}
}
