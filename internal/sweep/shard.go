package sweep

import (
	"encoding/json"
	"fmt"
)

// This file holds the sharding vocabulary a distributed deployment builds
// on: split a job list into per-owner shards by any assignment of spec
// hashes to owners (internal/cluster uses a consistent-hash ring), run the
// shards anywhere, and merge the per-shard result slices back into
// submission order. Because results are keyed by original index, the merged
// slice is byte-identical to what a single Engine.Run over the whole list
// would have produced — sharding is invisible in the output.

// ValidCacheKey reports whether key has the shape of a spec hash (lowercase
// hex SHA-256). Cache implementations and HTTP cache-peek endpoints use it
// to guard the filesystem and URL space against arbitrary keys.
func ValidCacheKey(key string) bool {
	if len(key) != 2*32 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Shard is the subset of a submission owned by one executor: the jobs in
// submission order plus their original indices, so results can be merged
// back without ambiguity.
type Shard struct {
	// Owner is the executor this shard is assigned to (a ring node name).
	Owner string
	// Indices[i] is the position of Jobs[i] in the original submission.
	Indices []int
	// Jobs are the shard's cells, preserving submission order.
	Jobs []Job
}

// Partition splits jobs into per-owner shards using the supplied assignment
// of specs to owner names. Submission order is preserved within each shard,
// and shards come back in order of first appearance, so the partition is
// deterministic for a deterministic owner function.
func Partition(jobs []Job, owner func(Spec) string) []Shard {
	index := make(map[string]int)
	var shards []Shard
	for i, j := range jobs {
		o := owner(j.Spec)
		si, ok := index[o]
		if !ok {
			si = len(shards)
			index[o] = si
			shards = append(shards, Shard{Owner: o})
		}
		shards[si].Indices = append(shards[si].Indices, i)
		shards[si].Jobs = append(shards[si].Jobs, j)
	}
	return shards
}

// Split cuts a shard into chunks of at most cells jobs each (cells <= 0
// means one chunk). Chunking is what gives work stealing and hedged
// re-dispatch a useful granularity: a straggler holds up one chunk, not a
// whole node's worth of cells.
func (s Shard) Split(cells int) []Shard {
	if cells <= 0 || len(s.Jobs) <= cells {
		return []Shard{s}
	}
	var out []Shard
	for start := 0; start < len(s.Jobs); start += cells {
		end := start + cells
		if end > len(s.Jobs) {
			end = len(s.Jobs)
		}
		out = append(out, Shard{
			Owner:   s.Owner,
			Indices: s.Indices[start:end:end],
			Jobs:    s.Jobs[start:end:end],
		})
	}
	return out
}

// MergeShards re-interleaves per-shard result slices into submission order:
// results[i] corresponds to shards[i] and must be index-aligned with its
// Jobs. It errors on length mismatches, duplicate indices, and gaps, so a
// merged slice is complete by construction.
func MergeShards(total int, shards []Shard, results [][]json.RawMessage) ([]json.RawMessage, error) {
	if len(results) != len(shards) {
		return nil, fmt.Errorf("sweep: merge: %d result slices for %d shards", len(results), len(shards))
	}
	merged := make([]json.RawMessage, total)
	seen := make([]bool, total)
	for si, sh := range shards {
		if len(results[si]) != len(sh.Jobs) {
			return nil, fmt.Errorf("sweep: merge: shard %d (%s) returned %d results for %d jobs",
				si, sh.Owner, len(results[si]), len(sh.Jobs))
		}
		for k, idx := range sh.Indices {
			if idx < 0 || idx >= total {
				return nil, fmt.Errorf("sweep: merge: shard %d (%s) index %d out of range [0,%d)",
					si, sh.Owner, idx, total)
			}
			if seen[idx] {
				return nil, fmt.Errorf("sweep: merge: duplicate result for index %d", idx)
			}
			seen[idx] = true
			merged[idx] = results[si][k]
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("sweep: merge: no shard produced result %d", i)
		}
	}
	return merged, nil
}
