package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner abstracts "run these jobs, return their encoded results in
// submission order". Engine implements it locally; internal/serve's Client
// implements it against a remote wnserved instance, which is how the same
// study code can execute on a shared simulation server.
type Runner interface {
	Run(jobs []Job) ([]json.RawMessage, error)
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; <= 0 selects runtime.NumCPU().
	Workers int
	// Cache, when non-nil, short-circuits jobs whose spec hash it already
	// holds and stores every fresh result.
	Cache Cache
	// OnProgress, when non-nil, is invoked (serialized) after each job.
	OnProgress func(Progress)
}

// Engine runs simulation jobs on a fixed-size worker pool. It is safe for
// sequential reuse across many Run calls (metrics accumulate over its
// lifetime); concurrent Run calls are also safe, each with its own pool.
type Engine struct {
	workers    int
	cache      Cache
	onProgress func(Progress)

	m          metrics
	progressMu sync.Mutex
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return &Engine{workers: w, cache: opts.Cache, onProgress: opts.OnProgress}
}

// Serial returns a one-worker, uncached engine — the drop-in replacement
// for the old inline experiment loops, and the reference output that any
// parallel configuration must reproduce byte for byte.
func Serial() *Engine { return New(Options{Workers: 1}) }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Metrics snapshots the engine's lifetime counters. When the configured
// cache reports evictions (a bounded MemoryCache or a DiskCache over one),
// the snapshot includes them.
func (e *Engine) Metrics() Metrics {
	m := e.m.snapshot()
	if ec, ok := e.cache.(EvictionCounter); ok {
		m.CacheEvictions = ec.Evictions()
	}
	return m
}

// errSkipped marks jobs abandoned because an earlier job failed; it is
// never surfaced to callers.
var errSkipped = errors.New("sweep: skipped after earlier failure")

// Run executes the jobs and returns their encoded results in submission
// order — index i of the returned slice is job i's result, regardless of
// completion order, so output is bit-identical at any worker count. On the
// first job error the remaining queue is drained without simulating and the
// error is returned (wrapped with the job's spec label).
func (e *Engine) Run(jobs []Job) ([]json.RawMessage, error) {
	return e.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) the jobs not yet started are marked skipped without
// simulating, in-flight jobs finish their current cell, and ctx.Err() is
// returned. Cancellation granularity is one job — a Run closure is never
// interrupted mid-simulation, so a cached or returned result is always a
// complete one. This is what gives a resident server per-request deadlines
// and drain-on-shutdown.
func (e *Engine) RunContext(ctx context.Context, jobs []Job) ([]json.RawMessage, error) {
	n := len(jobs)
	if n == 0 {
		return nil, ctx.Err()
	}
	e.m.submitted.Add(int64(n))
	e.m.enqueue(int64(n))

	results := make([]json.RawMessage, n)
	errs := make([]error, n)
	idx := make(chan int)
	var aborted atomic.Bool

	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				e.m.queueDepth.Add(-1)
				if aborted.Load() || ctx.Err() != nil {
					errs[i] = errSkipped
					e.m.done.Add(1)
					continue
				}
				raw, hit, wall, err := e.runOne(jobs[i])
				if err != nil {
					errs[i] = err
					aborted.Store(true)
				} else {
					results[i] = raw
				}
				done := e.m.done.Add(1)
				e.notify(Progress{
					Spec:      jobs[i].Spec,
					Index:     i,
					CacheHit:  hit,
					Err:       err,
					Wall:      wall,
					Done:      done,
					Total:     e.m.submitted.Load(),
					CacheHits: e.m.cacheHits.Load(),
				})
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Report the lowest-index real failure so the error is stable-ish and
	// names the cell that actually broke.
	for i, err := range errs {
		if err != nil && !errors.Is(err, errSkipped) {
			return nil, fmt.Errorf("sweep: job %d (%s): %w", i, jobs[i].Spec, err)
		}
	}
	return results, nil
}

// runOne serves one job from the cache or simulates it and encodes the
// result.
func (e *Engine) runOne(j Job) (raw json.RawMessage, hit bool, wall time.Duration, err error) {
	var key string
	if e.cache != nil {
		key = j.Spec.Hash()
		if b, ok := e.cache.Get(key); ok {
			e.m.cacheHits.Add(1)
			return b, true, 0, nil
		}
		e.m.cacheMisses.Add(1)
	}
	start := time.Now() //wnvet:allow wall-clock metric only, never in results
	v, err := j.Run()
	wall = time.Since(start) //wnvet:allow wall-clock metric only, never in results
	e.m.wallNanos.Add(int64(wall))
	if err != nil {
		e.m.errors.Add(1)
		return nil, false, wall, err
	}
	if cr, ok := v.(CycleReporter); ok {
		e.m.simCycles.Add(cr.SimulatedCycles())
	}
	raw, err = json.Marshal(v)
	if err != nil {
		e.m.errors.Add(1)
		return nil, false, wall, fmt.Errorf("encode result: %w", err)
	}
	if e.cache != nil {
		if err := e.cache.Put(key, raw); err != nil {
			e.m.cachePutErr.Add(1) // best-effort persistence
		}
	}
	return raw, false, wall, nil
}

func (e *Engine) notify(p Progress) {
	if e.onProgress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.onProgress(p)
}

// Results decodes a slice of encoded results into typed values — the
// companion of Run for callers that submit homogeneous job lists.
func Results[T any](raws []json.RawMessage) ([]T, error) {
	out := make([]T, len(raws))
	for i, r := range raws {
		if err := json.Unmarshal(r, &out[i]); err != nil {
			return nil, fmt.Errorf("sweep: decode result %d: %w", i, err)
		}
	}
	return out, nil
}
