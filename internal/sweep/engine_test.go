package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeResult is a deterministic stand-in for a simulation result.
type fakeResult struct {
	Index  int
	Value  int64
	Cycles uint64
}

func (r fakeResult) SimulatedCycles() uint64 { return r.Cycles }

// fakeJob derives its result purely from its seed, like a real seeded
// simulation cell.
func fakeJob(i int) Job {
	seed := int64(1000 + i)
	return Job{
		Spec: Spec{
			Experiment: "fake",
			Kernel:     fmt.Sprintf("k%d", i%7),
			TraceSeed:  seed,
			InputSeed:  int64(i),
		},
		Run: func() (any, error) {
			rng := rand.New(rand.NewSource(seed))
			var v int64
			for j := 0; j < 100+i%13; j++ {
				v += rng.Int63n(1000)
			}
			return fakeResult{Index: i, Value: v, Cycles: uint64(100 + i)}, nil
		},
	}
}

func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = fakeJob(i)
	}
	return jobs
}

// TestRunOrderAndDeterminism: results come back in submission order and are
// byte-identical at every worker count.
func TestRunOrderAndDeterminism(t *testing.T) {
	const n = 200
	ref, err := Serial().Run(fakeJobs(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != n {
		t.Fatalf("%d results, want %d", len(ref), n)
	}
	for i, raw := range ref {
		want := fmt.Sprintf(`{"Index":%d,`, i)
		if !bytes.HasPrefix(raw, []byte(want)) {
			t.Fatalf("result %d out of order: %s", i, raw)
		}
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, err := New(Options{Workers: workers}).Run(fakeJobs(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if !bytes.Equal(ref[i], got[i]) {
				t.Fatalf("workers=%d: result %d differs:\nserial:   %s\nparallel: %s",
					workers, i, ref[i], got[i])
			}
		}
	}
}

// TestSpecHashStable: the hash is stable across map insertion orders,
// distinguishes distinct specs, and survives a round trip.
func TestSpecHashStable(t *testing.T) {
	a := Spec{Experiment: "x", Kernel: "k", TraceSeed: 3,
		Params: map[string]string{"alpha": "1", "beta": "2", "gamma": "3"}}
	b := Spec{Experiment: "x", Kernel: "k", TraceSeed: 3,
		Params: map[string]string{"gamma": "3", "beta": "2", "alpha": "1"}}
	if a.Hash() != b.Hash() {
		t.Error("hash must not depend on Params insertion order")
	}
	c := a
	c.TraceSeed = 4
	if a.Hash() == c.Hash() {
		t.Error("distinct trace seeds must hash differently")
	}
	d := a
	d.Params = map[string]string{"alpha": "1", "beta": "2", "gamma": "4"}
	if a.Hash() == d.Hash() {
		t.Error("distinct params must hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

// TestCacheHit: a second run against the same cache simulates nothing and
// returns identical bytes.
func TestCacheHit(t *testing.T) {
	cache := NewMemoryCache()
	jobs := fakeJobs(30)
	e1 := New(Options{Workers: 4, Cache: cache})
	first, err := e1.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m := e1.Metrics(); m.CacheHits != 0 || m.CacheMisses != 30 {
		t.Fatalf("cold cache: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	var ran atomic.Int32
	rejobs := fakeJobs(30)
	for i := range rejobs {
		run := rejobs[i].Run
		rejobs[i].Run = func() (any, error) { ran.Add(1); return run() }
	}
	e2 := New(Options{Workers: 4, Cache: cache})
	second, err := e2.Run(rejobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("warm cache simulated %d jobs, want 0", n)
	}
	if m := e2.Metrics(); m.CacheHits != 30 || m.CacheMisses != 0 {
		t.Errorf("warm cache: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("cached result %d differs", i)
		}
	}
}

// TestDiskCacheRoundTrip: results persist across engine (process) lifetimes
// and a fresh DiskCache on the same directory serves them.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Options{Workers: 2, Cache: c1})
	first, err := e1.Run(fakeJobs(10))
	if err != nil {
		t.Fatal(err)
	}
	// A new cache instance on the same dir models a second process.
	c2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Workers: 2, Cache: c2})
	second, err := e2.Run(fakeJobs(10))
	if err != nil {
		t.Fatal(err)
	}
	if m := e2.Metrics(); m.CacheHits != 10 {
		t.Errorf("disk cache hits=%d, want 10", m.CacheHits)
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("disk-cached result %d differs", i)
		}
	}
	if got, ok := c2.Get("../../../etc/passwd"); ok {
		t.Errorf("invalid key must miss, got %q", got)
	}
}

// TestErrorPropagation: a failing job surfaces its spec in the error and
// the engine drains the rest of the queue without wedging.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("supply browned out")
	jobs := fakeJobs(50)
	jobs[17].Run = func() (any, error) { return nil, boom }
	_, err := New(Options{Workers: 4}).Run(jobs)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	m := New(Options{Workers: 4})
	jobs = fakeJobs(50)
	jobs[0].Run = func() (any, error) { return nil, boom }
	if _, err := m.Run(jobs); err == nil {
		t.Fatal("want error")
	}
	if snap := m.Metrics(); snap.Done != 50 {
		t.Errorf("done=%d, want all 50 accounted (simulated or skipped)", snap.Done)
	}
}

// TestProgressAndMetrics: every job produces exactly one progress event,
// callbacks are serialized, and the counters add up.
func TestProgressAndMetrics(t *testing.T) {
	var mu sync.Mutex
	var events int
	var lastDone int64
	e := New(Options{
		Workers: 8,
		OnProgress: func(p Progress) {
			// The engine serializes callbacks; mu guards the test's own
			// variables against the final read below.
			mu.Lock()
			events++
			lastDone = p.Done
			mu.Unlock()
		},
	})
	if _, err := e.Run(fakeJobs(64)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if events != 64 {
		t.Errorf("%d progress events, want 64", events)
	}
	if lastDone != 64 {
		t.Errorf("last Done=%d, want 64", lastDone)
	}
	m := e.Metrics()
	if m.Submitted != 64 || m.Done != 64 || m.Errors != 0 {
		t.Errorf("metrics %+v", m)
	}
	if m.SimCycles == 0 {
		t.Error("SimCycles not accounted from CycleReporter results")
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", m.QueueDepth)
	}
	if m.MaxQueueDepth < 1 {
		t.Errorf("max queue depth %d, want >= 1", m.MaxQueueDepth)
	}
	if m.SimWall <= 0 {
		t.Error("SimWall not accounted")
	}
}

// TestResultsDecode: the typed decode helper round-trips values.
func TestResultsDecode(t *testing.T) {
	raws, err := Serial().Run(fakeJobs(5))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Results[fakeResult](raws)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.Index != i {
			t.Errorf("result %d decoded Index %d", i, v.Index)
		}
	}
}

// TestEmptyRun: zero jobs is a no-op.
func TestEmptyRun(t *testing.T) {
	res, err := Serial().Run(nil)
	if err != nil || res != nil {
		t.Fatalf("empty run: %v %v", res, err)
	}
}
