package sweep_test

import (
	"encoding/json"
	"sort"
	"sync"
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/experiments"
	"whatsnext/internal/sweep"
)

// hashRecorder collects the spec hash of every completed job.
type hashRecorder struct {
	mu     sync.Mutex
	hashes []string
}

func (h *hashRecorder) onProgress(p sweep.Progress) {
	h.mu.Lock()
	h.hashes = append(h.hashes, p.Spec.Hash())
	h.mu.Unlock()
}

func (h *hashRecorder) sorted() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]string(nil), h.hashes...)
	sort.Strings(out)
	return out
}

// TestExperimentDeterminism is the regression guard for the engine's core
// contract: the same experiment run serially (-parallel 1) and with 8
// workers must produce byte-identical structured results and identical
// job-spec hashes. A failure here means shared-RNG or map-iteration
// nondeterminism leaked into a sweep cell.
func TestExperimentDeterminism(t *testing.T) {
	proto := experiments.Protocol{Traces: 2, Invocations: 1}

	type study struct {
		name string
		run  func(p experiments.Protocol) (any, error)
	}
	studies := []study{
		{"speedup-clank", func(p experiments.Protocol) (any, error) {
			return experiments.SpeedupStudy(core.ProcClank, p)
		}},
		{"environments", func(p experiments.Protocol) (any, error) {
			return experiments.EnvironmentStudy(p)
		}},
		{"fig15", func(p experiments.Protocol) (any, error) {
			return experiments.Figure15(p)
		}},
	}
	for _, s := range studies {
		t.Run(s.name, func(t *testing.T) {
			collect := func(workers int) ([]byte, []string) {
				rec := &hashRecorder{}
				p := proto
				p.Engine = sweep.New(sweep.Options{Workers: workers, OnProgress: rec.onProgress})
				rows, err := s.run(p)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				b, err := json.Marshal(rows)
				if err != nil {
					t.Fatal(err)
				}
				return b, rec.sorted()
			}
			serial, serialHashes := collect(1)
			parallel, parallelHashes := collect(8)
			if string(serial) != string(parallel) {
				t.Errorf("results differ between 1 and 8 workers:\nserial:   %s\nparallel: %s",
					serial, parallel)
			}
			if len(serialHashes) != len(parallelHashes) {
				t.Fatalf("hash count differs: %d vs %d", len(serialHashes), len(parallelHashes))
			}
			for i := range serialHashes {
				if serialHashes[i] != parallelHashes[i] {
					t.Fatalf("job-spec hash sets differ at %d: %s vs %s",
						i, serialHashes[i], parallelHashes[i])
				}
			}
		})
	}
}

// TestCachedExperimentIdentical: running a study against a warm disk cache
// must reproduce the cold-run rows byte for byte while simulating nothing.
func TestCachedExperimentIdentical(t *testing.T) {
	cache, err := sweep.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]byte, sweep.Metrics) {
		eng := sweep.New(sweep.Options{Workers: 4, Cache: cache})
		proto := experiments.Protocol{Traces: 2, Invocations: 1, Engine: eng}
		rows, err := experiments.Figure15(proto)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return b, eng.Metrics()
	}
	cold, coldM := run()
	if coldM.CacheHits != 0 {
		t.Errorf("cold run had %d cache hits", coldM.CacheHits)
	}
	warm, warmM := run()
	if warmM.CacheHits != warmM.Done || warmM.CacheHits == 0 {
		t.Errorf("warm run: %d hits of %d jobs, want all", warmM.CacheHits, warmM.Done)
	}
	if string(cold) != string(warm) {
		t.Errorf("warm-cache rows differ from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
}
