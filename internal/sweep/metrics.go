package sweep

import (
	"fmt"
	"sync/atomic"
	"time"
)

// metrics is the engine's internal counter block. All fields are updated
// with atomics from worker goroutines.
type metrics struct {
	submitted   atomic.Int64
	done        atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cachePutErr atomic.Int64
	errors      atomic.Int64
	queueDepth  atomic.Int64
	maxQueue    atomic.Int64
	wallNanos   atomic.Int64
	simCycles   atomic.Uint64
}

func (m *metrics) enqueue(n int64) {
	depth := m.queueDepth.Add(n)
	for {
		max := m.maxQueue.Load()
		if depth <= max || m.maxQueue.CompareAndSwap(max, depth) {
			return
		}
	}
}

// Metrics is a point-in-time snapshot of an engine's lifetime counters,
// accumulated across every Run call.
type Metrics struct {
	// Submitted and Done count jobs handed to Run and jobs finished
	// (simulated, served from cache, errored, or skipped after a failure).
	Submitted, Done int64
	// CacheHits / CacheMisses count lookups when a cache is configured.
	CacheHits, CacheMisses int64
	// CachePutErrors counts best-effort persistence failures.
	CachePutErrors int64
	// CacheEvictions counts entries dropped by a bounded memory cache to
	// stay under its entry cap (zero for unbounded caches).
	CacheEvictions int64
	// Errors counts jobs whose Run returned an error.
	Errors int64
	// QueueDepth is the current number of submitted-but-unstarted jobs;
	// MaxQueueDepth is the high-water mark.
	QueueDepth, MaxQueueDepth int64
	// SimWall is the summed wall-clock time spent inside Run closures
	// (CPU-seconds of simulation, not elapsed time).
	SimWall time.Duration
	// SimCycles sums the simulated device cycles reported by results
	// implementing CycleReporter. Cache hits contribute nothing: nothing
	// was simulated for them.
	SimCycles uint64
}

func (m *metrics) snapshot() Metrics {
	return Metrics{
		Submitted:      m.submitted.Load(),
		Done:           m.done.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		CachePutErrors: m.cachePutErr.Load(),
		Errors:         m.errors.Load(),
		QueueDepth:     m.queueDepth.Load(),
		MaxQueueDepth:  m.maxQueue.Load(),
		SimWall:        time.Duration(m.wallNanos.Load()),
		SimCycles:      m.simCycles.Load(),
	}
}

// String renders the one-line summary wnbench prints after a sweep.
func (m Metrics) String() string {
	return fmt.Sprintf("%d jobs (%d simulated, %d cache hits), %d Mcycles simulated in %v",
		m.Done, m.Done-m.CacheHits, m.CacheHits, m.SimCycles/1e6, m.SimWall.Round(time.Millisecond))
}

// Progress is delivered to the engine's OnProgress callback after each job
// completes. Callbacks are serialized by the engine, so they may update
// shared state (a terminal line, a log) without locking.
type Progress struct {
	// Spec identifies the job that just finished.
	Spec Spec
	// Index is the job's position in the slice handed to the Run call it
	// belongs to, letting stream consumers reassemble submission order from
	// completion-ordered events.
	Index int
	// CacheHit reports that the result was served from the cache.
	CacheHit bool
	// Err is the job's error, if it failed.
	Err error
	// Wall is the time spent simulating this job (zero for cache hits).
	Wall time.Duration
	// Done and Total are engine-lifetime completion counters: jobs
	// finished and jobs submitted so far (Total grows as later studies
	// submit more work).
	Done, Total int64
	// CacheHits is the engine-lifetime hit counter, for "n cached" lines.
	CacheHits int64
}
