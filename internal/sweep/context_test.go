package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunContextCancel: cancelling mid-sweep skips the unstarted jobs,
// returns ctx.Err(), and leaves the counters balanced.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 40
	var started atomic.Int32
	release := make(chan struct{})
	jobs := fakeJobs(n)
	for i := range jobs {
		run := jobs[i].Run
		jobs[i].Run = func() (any, error) {
			if started.Add(1) == 1 {
				cancel()       // first cell cancels the sweep...
				close(release) // ...and lets the test observe it
			}
			<-release // every started cell sees the cancelled context
			return run()
		}
	}
	e := New(Options{Workers: 2})
	res, err := e.RunContext(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled run returned results")
	}
	// At most the two in-flight cells simulated; the rest were skipped.
	if s := started.Load(); s > 2 {
		t.Errorf("%d cells started after cancel, want <= workers", s)
	}
	if m := e.Metrics(); m.Done != n {
		t.Errorf("done=%d, want all %d accounted (simulated or skipped)", m.Done, n)
	}
}

// TestRunContextDeadline: an already-expired context simulates nothing.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := fakeJobs(10)
	for i := range jobs {
		jobs[i].Run = func() (any, error) { ran.Add(1); return fakeResult{}, nil }
	}
	_, err := New(Options{Workers: 4}).RunContext(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d cells simulated under a dead context, want 0", n)
	}
}

// TestRunContextBackground: RunContext with a background context is Run.
func TestRunContextBackground(t *testing.T) {
	ref, err := Serial().Run(fakeJobs(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(Options{Workers: 4}).RunContext(context.Background(), fakeJobs(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if string(ref[i]) != string(got[i]) {
			t.Fatalf("result %d differs", i)
		}
	}
}

// TestProgressIndex: progress events carry the submission index of their
// cell, whatever order they complete in.
func TestProgressIndex(t *testing.T) {
	seen := make(map[int]bool)
	e := New(Options{Workers: 8, OnProgress: func(p Progress) {
		if p.Index < 0 || p.Index >= 32 {
			t.Errorf("index %d out of range", p.Index)
		}
		if p.Spec.InputSeed != int64(p.Index) {
			t.Errorf("index %d does not match spec seed %d", p.Index, p.Spec.InputSeed)
		}
		seen[p.Index] = true
	}})
	if _, err := e.Run(fakeJobs(32)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 32 {
		t.Errorf("saw %d distinct indices, want 32", len(seen))
	}
}
