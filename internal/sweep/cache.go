package sweep

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache stores encoded job results under their spec hash. Implementations
// must be safe for concurrent use by the engine's workers. Put is
// best-effort: the engine ignores persistence failures (the result is still
// returned to the caller) but counts them in the metrics.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// EvictionCounter is implemented by caches that drop entries to stay under
// a size bound; the engine folds the count into its Metrics snapshot.
type EvictionCounter interface {
	Evictions() int64
}

// MemoryCache is an in-process result cache. It makes repeated sweeps in
// one run (e.g. the same precise baseline appearing in several studies)
// free, and backs the read path of the disk cache. With a positive entry
// cap it evicts least-recently-used entries, which is what keeps a
// resident server's heap bounded across an unbounded job stream; the
// default (no cap) preserves the CLI behaviour where a single run's
// working set is the right lifetime.
type MemoryCache struct {
	mu        sync.Mutex
	max       int // 0 = unbounded
	m         map[string]*list.Element
	ll        *list.List // front = most recently used
	evictions atomic.Int64
}

// memEntry is the list payload: the key is carried so eviction of the back
// element can delete its map slot.
type memEntry struct {
	key string
	val []byte
}

// NewMemoryCache returns an empty, unbounded in-memory cache.
func NewMemoryCache() *MemoryCache { return NewMemoryCacheSize(0) }

// NewMemoryCacheSize returns an in-memory cache holding at most max entries
// (LRU eviction); max <= 0 means unbounded.
func NewMemoryCacheSize(max int) *MemoryCache {
	if max < 0 {
		max = 0
	}
	return &MemoryCache{max: max, m: make(map[string]*list.Element), ll: list.New()}
}

// Get returns the cached bytes for key, marking it most recently used.
func (c *MemoryCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put stores val under key. The caller must not mutate val afterwards.
func (c *MemoryCache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*memEntry).val = val
		c.ll.MoveToFront(el)
		return nil
	}
	c.m[key] = c.ll.PushFront(&memEntry{key: key, val: val})
	if c.max > 0 && c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*memEntry).key)
		c.evictions.Add(1)
	}
	return nil
}

// Len reports the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Evictions reports how many entries the cap has dropped.
func (c *MemoryCache) Evictions() int64 { return c.evictions.Load() }

// DiskCache persists results as one JSON file per spec hash in a directory,
// with an in-memory layer in front, so a second wnbench run against the same
// -cache directory skips every already-simulated cell.
type DiskCache struct {
	dir string
	mem *MemoryCache
	seq atomic.Int64 // unique temp-file suffix for atomic writes
}

// NewDiskCache opens (creating if needed) a cache directory with an
// unbounded memory layer.
func NewDiskCache(dir string) (*DiskCache, error) {
	return NewDiskCacheSize(dir, 0)
}

// NewDiskCacheSize opens a cache directory whose in-memory layer holds at
// most maxMem entries (<= 0 for unbounded). Disk entries are never evicted;
// a memory miss just re-reads the file.
func NewDiskCacheSize(dir string, maxMem int) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &DiskCache{dir: dir, mem: NewMemoryCacheSize(maxMem)}, nil
}

// Dir returns the backing directory.
func (c *DiskCache) Dir() string { return c.dir }

// Evictions reports the memory layer's eviction count.
func (c *DiskCache) Evictions() int64 { return c.mem.Evictions() }

// validKey guards the filesystem against keys that are not spec hashes.
func validKey(key string) bool { return ValidCacheKey(key) }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached bytes for key, reading through to disk.
func (c *DiskCache) Get(key string) ([]byte, bool) {
	if v, ok := c.mem.Get(key); ok {
		return v, true
	}
	if !validKey(key) {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	c.mem.Put(key, b)
	return b, true
}

// Put stores val under key in memory and on disk (atomically, via a
// temp-file rename, so a crashed run never leaves a torn entry).
func (c *DiskCache) Put(key string, val []byte) error {
	c.mem.Put(key, val)
	if !validKey(key) {
		return fmt.Errorf("sweep: invalid cache key %q", key)
	}
	tmp := filepath.Join(c.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), c.seq.Add(1)))
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
