package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache stores encoded job results under their spec hash. Implementations
// must be safe for concurrent use by the engine's workers. Put is
// best-effort: the engine ignores persistence failures (the result is still
// returned to the caller) but counts them in the metrics.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// MemoryCache is an in-process result cache. It makes repeated sweeps in
// one run (e.g. the same precise baseline appearing in several studies)
// free, and backs the read path of the disk cache.
type MemoryCache struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemoryCache returns an empty in-memory cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: make(map[string][]byte)}
}

// Get returns the cached bytes for key.
func (c *MemoryCache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Put stores val under key. The caller must not mutate val afterwards.
func (c *MemoryCache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
	return nil
}

// Len reports the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DiskCache persists results as one JSON file per spec hash in a directory,
// with an in-memory layer in front, so a second wnbench run against the same
// -cache directory skips every already-simulated cell.
type DiskCache struct {
	dir string
	mem *MemoryCache
	seq atomic.Int64 // unique temp-file suffix for atomic writes
}

// NewDiskCache opens (creating if needed) a cache directory.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &DiskCache{dir: dir, mem: NewMemoryCache()}, nil
}

// Dir returns the backing directory.
func (c *DiskCache) Dir() string { return c.dir }

// validKey guards the filesystem against keys that are not spec hashes.
func validKey(key string) bool {
	if len(key) != 2*32 { // hex sha256
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached bytes for key, reading through to disk.
func (c *DiskCache) Get(key string) ([]byte, bool) {
	if v, ok := c.mem.Get(key); ok {
		return v, true
	}
	if !validKey(key) {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	c.mem.Put(key, b)
	return b, true
}

// Put stores val under key in memory and on disk (atomically, via a
// temp-file rename, so a crashed run never leaves a torn entry).
func (c *DiskCache) Put(key string, val []byte) error {
	c.mem.Put(key, val)
	if !validKey(key) {
		return fmt.Errorf("sweep: invalid cache key %q", key)
	}
	tmp := filepath.Join(c.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), c.seq.Add(1)))
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
