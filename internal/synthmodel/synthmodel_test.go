package synthmodel

import (
	"strings"
	"testing"
)

func TestAdderModelMatchesPaper(t *testing.T) {
	a := DefaultAdder()
	if a.NumMuxes() != 7 {
		t.Fatalf("muxes = %d, want 7 (one per 4 full adders in a 32-bit chain)", a.NumMuxes())
	}
	// The paper reports ~0.02% core area and ~4% adder power.
	if pct := a.AreaOverheadPct(); pct < 0.005 || pct > 0.05 {
		t.Errorf("area overhead %.4f%%, expected ~0.02%%", pct)
	}
	if pct := a.PowerOverheadPct(); pct < 2 || pct > 6 {
		t.Errorf("power overhead %.2f%%, expected ~4%%", pct)
	}
}

func TestFmaxClearsOperatingPoint(t *testing.T) {
	a := DefaultAdder()
	tech := TSMC65()
	f := a.FmaxGHz(tech)
	// The paper synthesizes to 1.12 GHz; the model should land in the
	// same GHz class and tower over 24 MHz.
	if f < 0.5 || f > 3 {
		t.Errorf("Fmax %.2f GHz out of the expected class", f)
	}
	if !a.MeetsTiming(tech, 24e6) {
		t.Error("24 MHz must be met trivially")
	}
	if a.MeetsTiming(tech, 100e9) {
		t.Error("100 GHz should not be met")
	}
}

func TestMemoTableRelativeArea(t *testing.T) {
	m := DefaultMemoTable()
	// The paper's CACTI estimate: 40.5% of a 16x16 multiplier.
	if pct := m.RelativeToMultiplierPct(); pct < 30 || pct > 55 {
		t.Errorf("memo table is %.1f%% of the multiplier, expected ~40%%", pct)
	}
}

func TestMemoAreaScalesWithEntries(t *testing.T) {
	small := MemoTableModel{Entries: 16, TagBits: 28, DataBits: 32}
	big := MemoTableModel{Entries: 64, TagBits: 26, DataBits: 32}
	if big.GE() <= small.GE() {
		t.Error("more entries must cost more area")
	}
}

func TestMultiplierAreaScales(t *testing.T) {
	if MultiplierGE(32) <= MultiplierGE(16) {
		t.Error("wider multipliers must be larger")
	}
}

func TestEvaluateReport(t *testing.T) {
	r := Evaluate(24e6)
	if !r.TimingOK || r.AdderMuxes != 7 {
		t.Fatalf("report = %+v", r)
	}
	s := r.String()
	for _, want := range []string{"muxes", "Fmax", "memo table", "tsmc65"} {
		if !strings.Contains(s, want) {
			t.Errorf("report text missing %q:\n%s", want, s)
		}
	}
}
