// Package synthmodel reproduces the area/power analysis of Section V-D
// with an analytical gate-level model in place of the paper's Synopsys /
// Cadence / CACTI flow. The model counts gates in the modified units,
// calibrates total core area against the published 65 nm Cortex-M0+
// subsystem the paper cites [Myers et al., ISSCC 2015], and reports the
// four quantities the paper measures:
//
//   - the carry-chain muxes add ~0.02% core area,
//   - the adder's power rises ~4%,
//   - the modified adder's Fmax (~1 GHz class at 65 nm) is far above the
//     24 MHz operating point, so the muxes do not affect performance,
//   - the 16-entry memo table occupies ~40% of a 16x16 multiplier.
package synthmodel

import "fmt"

// TechNode models a process corner with per-gate-equivalent area and an
// FO4-style delay unit.
type TechNode struct {
	Name        string
	GateAreaUm2 float64 // area of one NAND2-equivalent gate
	FO4DelayPs  float64 // fanout-of-4 inverter delay
}

// TSMC65 approximates TSMC's 65 nm (nominal) process used by the paper.
func TSMC65() TechNode {
	return TechNode{Name: "tsmc65", GateAreaUm2: 1.44, FO4DelayPs: 25}
}

// Gate-equivalent costs of the standard cells involved.
const (
	geFullAdder  = 6.0  // mirror full adder
	geMux2       = 1.1  // 2:1 transmission-gate mux (pass-gate, ~2 GE/2)
	geFlipFlop   = 6.0  // DFF with reset
	geSRAMBitGE  = 0.15 // compiled 6T SRAM macro bit in NAND2 equivalents
	geComparator = 1.5  // per-bit XNOR+AND of a tag comparator
)

// CoreM0PlusGE is the gate-equivalent count of a Cortex-M0+ subsystem,
// calibrated to the 65 nm implementation the paper compares against.
const CoreM0PlusGE = 60000

// AdderModel describes the 32-bit ripple adder with SWV support
// (Figure 8): a mux is inserted after every four full adders.
type AdderModel struct {
	Bits        int
	MuxInterval int
}

// DefaultAdder returns the paper's configuration.
func DefaultAdder() AdderModel { return AdderModel{Bits: 32, MuxInterval: 4} }

// NumMuxes returns the number of carry-chain muxes (7 for 32/4).
func (a AdderModel) NumMuxes() int { return a.Bits/a.MuxInterval - 1 }

// BaseGE returns the plain adder's gate equivalents.
func (a AdderModel) BaseGE() float64 { return float64(a.Bits) * geFullAdder }

// MuxGE returns the gate equivalents added by SWV support.
func (a AdderModel) MuxGE() float64 { return float64(a.NumMuxes()) * geMux2 }

// AreaOverheadPct returns the added adder area relative to the whole core,
// in percent — the paper reports 0.02%.
func (a AdderModel) AreaOverheadPct() float64 {
	return 100 * a.MuxGE() / CoreM0PlusGE
}

// PowerOverheadPct returns the adder's own power increase in percent — the
// paper reports 4%. Dynamic power scales with switched capacitance, which
// scales with gate equivalents on the active carry path.
func (a AdderModel) PowerOverheadPct() float64 {
	return 100 * a.MuxGE() / a.BaseGE()
}

// FmaxGHz estimates the modified adder's maximum frequency: the critical
// path is the 32-bit ripple carry chain plus the inserted muxes.
func (a AdderModel) FmaxGHz(t TechNode) float64 {
	// One full-adder carry hop is roughly one FO4; each mux adds ~0.6 FO4.
	carryPs := float64(a.Bits)*t.FO4DelayPs + float64(a.NumMuxes())*0.6*t.FO4DelayPs
	return 1e3 / carryPs // GHz
}

// MeetsTiming reports whether the modified adder clears the target clock
// with its critical path (the paper: Fmax 1.12 GHz >> 24 MHz).
func (a AdderModel) MeetsTiming(t TechNode, clockHz float64) bool {
	return a.FmaxGHz(t)*1e9 >= clockHz
}

// MultiplierGE returns the gate equivalents of an NxN iterative multiplier
// (adder + operand/result registers + control).
func MultiplierGE(n int) float64 {
	return float64(n)*geFullAdder + // accumulate adder
		3*float64(n)*geFlipFlop + // multiplicand, multiplier, product regs
		0.15*float64(n)*geFullAdder + // shift/control
		200 // FSM
}

// MemoTableModel sizes the direct-mapped multiplication memo table of
// Section V-E.
type MemoTableModel struct {
	Entries  int
	TagBits  int
	DataBits int
}

// DefaultMemoTable is the paper's 16-entry table for 16-bit operands: the
// index is 4 bits (2 LSBs of each operand), the tag is the remaining 28
// operand bits, and each entry holds a 32-bit product.
func DefaultMemoTable() MemoTableModel {
	return MemoTableModel{Entries: 16, TagBits: 28, DataBits: 32}
}

// GE returns the table's gate equivalents (storage as SRAM-class bits plus
// a tag comparator and valid bits).
func (m MemoTableModel) GE() float64 {
	bits := float64(m.Entries) * float64(m.TagBits+m.DataBits+1)
	return bits*geSRAMBitGE + float64(m.TagBits)*geComparator + 60
}

// RelativeToMultiplierPct returns the table's area as a percentage of the
// 16x16 multiplier — the paper's CACTI estimate is 40.5%.
func (m MemoTableModel) RelativeToMultiplierPct() float64 {
	return 100 * m.GE() / MultiplierGE(16)
}

// Report aggregates the Section V-D numbers.
type Report struct {
	Tech                 TechNode
	AdderMuxes           int
	AdderAreaOverheadPct float64
	AdderPowerPct        float64
	FmaxGHz              float64
	TimingOK             bool
	MemoVsMultiplierPct  float64
}

// Evaluate produces the full report at the default configuration.
func Evaluate(clockHz float64) Report {
	t := TSMC65()
	a := DefaultAdder()
	m := DefaultMemoTable()
	return Report{
		Tech:                 t,
		AdderMuxes:           a.NumMuxes(),
		AdderAreaOverheadPct: a.AreaOverheadPct(),
		AdderPowerPct:        a.PowerOverheadPct(),
		FmaxGHz:              a.FmaxGHz(t),
		TimingOK:             a.MeetsTiming(t, clockHz),
		MemoVsMultiplierPct:  m.RelativeToMultiplierPct(),
	}
}

// String renders the report like the paper's prose.
func (r Report) String() string {
	return fmt.Sprintf(
		"Section V-D area/power model (%s):\n"+
			"  SWV carry-chain muxes: %d, core area overhead %.3f%%\n"+
			"  adder power overhead:  %.1f%%\n"+
			"  modified adder Fmax:   %.2f GHz (meets 24 MHz: %v)\n"+
			"  16-entry memo table:   %.1f%% of a 16x16 multiplier",
		r.Tech.Name, r.AdderMuxes, r.AdderAreaOverheadPct,
		r.AdderPowerPct, r.FmaxGHz, r.TimingOK, r.MemoVsMultiplierPct)
}
