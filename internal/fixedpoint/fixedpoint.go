// Package fixedpoint provides the Q-format fixed-point arithmetic used to
// port the paper's originally floating-point kernels onto the integer-only
// WN processor. The paper converts each benchmark to fixed point "keeping
// the error between the two to under 1%"; the helpers here perform those
// conversions and the tests verify the same bound against float references.
package fixedpoint

import (
	"fmt"
	"math"
)

// Q describes a signed or unsigned fixed-point format with IntBits integer
// bits and FracBits fractional bits.
type Q struct {
	IntBits  int
	FracBits int
	Signed   bool
}

// U8x8 is the unsigned 8.8 format the Conv2d image pixels use.
var U8x8 = Q{IntBits: 8, FracBits: 8}

// U4x12 is a high-precision unsigned format for coefficients in [0,16).
var U4x12 = Q{IntBits: 4, FracBits: 12}

// Bits returns the total storage width.
func (q Q) Bits() int {
	b := q.IntBits + q.FracBits
	if q.Signed {
		b++
	}
	return b
}

// One returns the fixed-point representation of 1.0.
func (q Q) One() int64 { return 1 << q.FracBits }

// Max returns the largest representable value.
func (q Q) Max() float64 {
	return float64((int64(1)<<(q.IntBits+q.FracBits))-1) / float64(q.One())
}

// Min returns the smallest representable value.
func (q Q) Min() float64 {
	if !q.Signed {
		return 0
	}
	return -float64(int64(1)<<(q.IntBits+q.FracBits)) / float64(q.One())
}

// FromFloat converts with round-to-nearest and saturation.
func (q Q) FromFloat(v float64) int64 {
	scaled := math.Round(v * float64(q.One()))
	lo := q.Min() * float64(q.One())
	hi := q.Max() * float64(q.One())
	if scaled < lo {
		scaled = lo
	}
	if scaled > hi {
		scaled = hi
	}
	return int64(scaled)
}

// ToFloat converts back to floating point.
func (q Q) ToFloat(v int64) float64 {
	return float64(v) / float64(q.One())
}

// Quantize rounds a float through the format (the conversion error a port
// to fixed point incurs).
func (q Q) Quantize(v float64) float64 { return q.ToFloat(q.FromFloat(v)) }

// String renders the format conventionally (e.g. "UQ8.8").
func (q Q) String() string {
	s := "UQ"
	if q.Signed {
		s = "Q"
	}
	return fmt.Sprintf("%s%d.%d", s, q.IntBits, q.FracBits)
}

// Mul multiplies two fixed-point values of the same format, keeping the
// format (truncating the extra fractional bits like the hardware shift in
// the generated kernels does).
func (q Q) Mul(a, b int64) int64 {
	return a * b >> q.FracBits
}

// ConvertSlice quantizes a float slice into the format.
func ConvertSlice(q Q, vs []float64) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = q.FromFloat(v)
	}
	return out
}

// MaxRelativeError returns the worst-case |quantize(v)-v|/|v| over the
// samples (ignoring zeros), in percent — the paper's conversion-fidelity
// metric.
func MaxRelativeError(q Q, vs []float64) float64 {
	worst := 0.0
	for _, v := range vs {
		if v == 0 {
			continue
		}
		if rel := math.Abs(q.Quantize(v)-v) / math.Abs(v); rel > worst {
			worst = rel
		}
	}
	return 100 * worst
}

// NormalizeWeights scales a positive float kernel so its quantized integer
// weights sum to exactly a power of two (enabling shift-based division on
// a processor with no divider) and returns the weights plus log2 of the
// sum. This is the transformation applied to the Gaussian and FIR kernels
// of the benchmarks.
func NormalizeWeights(ws []float64, logSum int) ([]int64, error) {
	var sum float64
	for _, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("fixedpoint: negative weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("fixedpoint: zero weight sum")
	}
	target := int64(1) << logSum
	out := make([]int64, len(ws))
	var acc int64
	for i, w := range ws {
		out[i] = int64(math.Round(w / sum * float64(target)))
		if out[i] < 1 {
			out[i] = 1
		}
		acc += out[i]
	}
	// Spread the rounding residue over the largest weights.
	for acc != target {
		idx := 0
		for i := range out {
			if out[i] > out[idx] {
				idx = i
			}
		}
		if acc < target {
			out[idx]++
			acc++
		} else if out[idx] > 1 {
			out[idx]--
			acc--
		} else {
			return nil, fmt.Errorf("fixedpoint: cannot normalize weights to 2^%d", logSum)
		}
	}
	return out, nil
}
