package fixedpoint

import (
	"math"
	"testing"
)

// TestSaturationAtBothRails pins the exact clamp values at and beyond both
// representable extremes, for signed and unsigned formats — the NN weight
// quantization relies on out-of-range floats landing exactly on the rail.
func TestSaturationAtBothRails(t *testing.T) {
	uq := Q{IntBits: 0, FracBits: 6} // the NNFC weight format, UQ0.6
	if got := uq.FromFloat(uq.Max()); got != 63 {
		t.Errorf("UQ0.6 at the upper rail: %d, want 63", got)
	}
	for _, v := range []float64{1.0, 2.0, 1e18, math.Inf(1)} {
		if got := uq.FromFloat(v); got != 63 {
			t.Errorf("UQ0.6 beyond the upper rail (%v): %d, want 63", v, got)
		}
	}
	for _, v := range []float64{0, -0.001, -5, math.Inf(-1)} {
		if got := uq.FromFloat(v); got != 0 {
			t.Errorf("UQ0.6 at/below the lower rail (%v): %d, want 0", v, got)
		}
	}

	sq := Q{IntBits: 3, FracBits: 4, Signed: true}
	if got := sq.FromFloat(1e18); got != 127 {
		t.Errorf("Q3.4 beyond the upper rail: %d, want 127", got)
	}
	if got := sq.FromFloat(-1e18); got != -128 {
		t.Errorf("Q3.4 beyond the lower rail: %d, want -128", got)
	}
	if got := sq.FromFloat(sq.Min()); got != -128 {
		t.Errorf("Q3.4 at its own Min(): %d, want -128", got)
	}
	// One LSB inside each rail must NOT clamp.
	if got := sq.FromFloat(sq.Max() - 1.0/16); got != 126 {
		t.Errorf("Q3.4 one LSB under the rail: %d, want 126", got)
	}
	if got := sq.FromFloat(sq.Min() + 1.0/16); got != -127 {
		t.Errorf("Q3.4 one LSB over the lower rail: %d, want -127", got)
	}
}

// TestRoundHalfAwayFromZero pins the tie-breaking of FromFloat: exact
// half-LSB values round away from zero (math.Round semantics), in both
// directions, so quantization is symmetric around zero.
func TestRoundHalfAwayFromZero(t *testing.T) {
	q := Q{IntBits: 7, FracBits: 1, Signed: true}
	cases := []struct {
		v    float64
		want int64
	}{
		{0.25, 1},   // +half LSB rounds up
		{-0.25, -1}, // -half LSB rounds down (away from zero)
		{0.75, 2},   // not banker's rounding: 1.5 -> 2
		{1.25, 3},   // 2.5 -> 3, away from zero again
		{-0.75, -2},
		{0.249, 0}, // just under the tie truncates
		{-0.249, 0},
	}
	for _, c := range cases {
		if got := q.FromFloat(c.v); got != c.want {
			t.Errorf("Q7.1 FromFloat(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestNarrowestWidths exercises the degenerate formats: a single unsigned
// bit, a sign-only signed format, and fraction-only formats.
func TestNarrowestWidths(t *testing.T) {
	u1 := Q{IntBits: 1, FracBits: 0}
	if u1.Bits() != 1 || u1.One() != 1 || u1.Max() != 1 || u1.Min() != 0 {
		t.Fatalf("UQ1.0 basics wrong: bits=%d one=%d max=%v min=%v", u1.Bits(), u1.One(), u1.Max(), u1.Min())
	}
	if got := u1.FromFloat(0.5); got != 1 { // half rounds away from zero
		t.Errorf("UQ1.0 FromFloat(0.5) = %d, want 1", got)
	}
	if got := u1.FromFloat(7); got != 1 {
		t.Errorf("UQ1.0 FromFloat(7) = %d, want 1", got)
	}

	// Sign-only: representable values are exactly {-1, 0}.
	s0 := Q{IntBits: 0, FracBits: 0, Signed: true}
	if s0.Bits() != 1 || s0.Max() != 0 || s0.Min() != -1 {
		t.Fatalf("Q0.0 basics wrong: bits=%d max=%v min=%v", s0.Bits(), s0.Max(), s0.Min())
	}
	if got := s0.FromFloat(0.9); got != 0 {
		t.Errorf("Q0.0 FromFloat(0.9) = %d, want 0 (saturated)", got)
	}
	if got := s0.FromFloat(-0.9); got != -1 {
		t.Errorf("Q0.0 FromFloat(-0.9) = %d, want -1", got)
	}

	// Fraction-only: quantization error bounded by half an LSB inside range.
	f3 := Q{IntBits: 0, FracBits: 3}
	for v := 0.0; v < f3.Max(); v += 0.01 {
		if e := math.Abs(f3.Quantize(v) - v); e > 1.0/16+1e-12 {
			t.Fatalf("UQ0.3 quantize(%v) error %v exceeds half LSB", v, e)
		}
	}
}

// TestMulFloorsNegativeProducts pins that fixed-point Mul truncates via an
// arithmetic right shift — flooring, not rounding toward zero — exactly
// like the hardware shift in the generated kernels.
func TestMulFloorsNegativeProducts(t *testing.T) {
	q := Q{IntBits: 7, FracBits: 1, Signed: true}
	// (-3) * 1 in raw units = -3; >>1 floors to -2, not -1.
	if got := q.Mul(-3, q.One()); got != -3 {
		t.Errorf("Mul(-3, one) = %d, want -3", got)
	}
	if got := q.Mul(-3, 1); got != -2 {
		t.Errorf("Mul(-3, half) = %d, want -2 (floored)", got)
	}
	if got := q.Mul(3, 1); got != 1 {
		t.Errorf("Mul(3, half) = %d, want 1 (truncated)", got)
	}
}

// TestNormalizeWeightsEdges exercises the residue spreading at its limits:
// a single weight takes the whole target, tiny weights are floored to 1,
// and an impossible target (fewer units than weights) is an error.
func TestNormalizeWeightsEdges(t *testing.T) {
	one, err := NormalizeWeights([]float64{3.7}, 4)
	if err != nil || len(one) != 1 || one[0] != 16 {
		t.Errorf("single weight: %v, %v; want [16]", one, err)
	}

	ws := []float64{1e-12, 1e-12, 1}
	out, err := NormalizeWeights(ws, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, w := range out {
		if w < 1 {
			t.Errorf("weight %d floored below 1: %d", i, w)
		}
		sum += w
	}
	if sum != 8 {
		t.Errorf("weights sum to %d, want 8", sum)
	}

	if _, err := NormalizeWeights(make([]float64, 8, 8), 2); err == nil {
		t.Error("zero-sum weights did not error")
	}
	eight := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if _, err := NormalizeWeights(eight, 2); err == nil {
		t.Error("8 weights into 4 units did not error")
	}
}
