package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

func TestFormatBasics(t *testing.T) {
	if U8x8.Bits() != 16 || U8x8.One() != 256 {
		t.Fatal("UQ8.8 geometry")
	}
	if U8x8.String() != "UQ8.8" {
		t.Fatalf("name %q", U8x8.String())
	}
	sq := Q{IntBits: 3, FracBits: 4, Signed: true}
	if sq.Bits() != 8 || sq.String() != "Q3.4" {
		t.Fatalf("signed geometry: %d %s", sq.Bits(), sq.String())
	}
	if sq.Min() >= 0 {
		t.Fatal("signed formats have a negative range")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := U8x8.ToFloat(int64(raw))
		return U8x8.FromFloat(v) == int64(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSaturation(t *testing.T) {
	if got := U8x8.FromFloat(1e9); got != int64(1)<<16-1 {
		t.Fatalf("positive saturation: %d", got)
	}
	if got := U8x8.FromFloat(-5); got != 0 {
		t.Fatalf("unsigned negative saturation: %d", got)
	}
	sq := Q{IntBits: 3, FracBits: 4, Signed: true}
	if got := sq.FromFloat(-1e9); got != -(1 << 7) {
		t.Fatalf("signed saturation: %d", got)
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// Any value of at least 1.0 quantizes in UQ8.8 with relative error
	// below 2^-9/1 < 0.2%.
	rng := rand.New(rand.NewSource(1))
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = 1 + rng.Float64()*254
	}
	if worst := MaxRelativeError(U8x8, vs); worst > 0.2 {
		t.Fatalf("worst quantization error %.4f%%", worst)
	}
}

func TestMulTruncates(t *testing.T) {
	a := U8x8.FromFloat(1.5)
	b := U8x8.FromFloat(2.25)
	if got := U8x8.ToFloat(U8x8.Mul(a, b)); math.Abs(got-3.375) > 1.0/256 {
		t.Fatalf("1.5*2.25 = %v", got)
	}
}

func TestNormalizeWeights(t *testing.T) {
	ws := []float64{1, 2, 3, 4, 6, 4, 3, 2, 1}
	out, err := NormalizeWeights(ws, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, w := range out {
		if w < 1 {
			t.Fatal("weights must stay positive")
		}
		sum += w
	}
	if sum != 256 {
		t.Fatalf("sum = %d", sum)
	}
	if _, err := NormalizeWeights([]float64{-1, 2}, 8); err == nil {
		t.Fatal("negative weights rejected")
	}
	if _, err := NormalizeWeights([]float64{0, 0}, 8); err == nil {
		t.Fatal("zero sum rejected")
	}
}

// TestConv2dFixedPointFidelity reproduces the paper's conversion claim for
// the image kernel: the integer fixed-point Conv2d output differs from a
// float-weighted reference by well under 1%.
func TestConv2dFixedPointFidelity(t *testing.T) {
	b := workloads.Conv2d()
	p := b.ScaledParams()
	in := b.Inputs(p, 4)
	fixed := b.Golden(p, in)

	// Float reference: normalized float Gaussian over the same 8.8 pixels.
	k := p.K
	pw := p.ImgW + k - 1
	sigma := float64(k) / 4
	weights := make([]float64, k*k)
	var wsum float64
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			dy, dx := float64(y-k/2), float64(x-k/2)
			weights[y*k+x] = math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
			wsum += weights[y*k+x]
		}
	}
	img := in["IMG"]
	ref := make([]float64, p.ImgW*p.ImgH)
	for y := 0; y < p.ImgH; y++ {
		for x := 0; x < p.ImgW; x++ {
			var acc float64
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					acc += weights[ky*k+kx] / wsum * float64(img[(y+ky)*pw+(x+kx)]) / 256
				}
			}
			ref[y*p.ImgW+x] = acc
		}
	}
	// The integer build uses binomial (not true Gaussian) weights and
	// truncating shifts; the paper's port bound is 1%.
	if nr := quality.NRMSE(fixed, ref); nr > 1.0 {
		t.Fatalf("fixed-point Conv2d differs from the float reference by %.3f%% NRMSE (paper bound: 1%%)", nr)
	}
}

// TestGlucoseFixedPointFidelity: the FIR glucose filter ported to integer
// weights stays within 1% of a float FIR.
func TestGlucoseFixedPointFidelity(t *testing.T) {
	weights := workloads.GlucoseWeights()
	trace := workloads.ClinicalGlucoseTrace(3)
	var fixed, ref []float64
	for i, r := range trace {
		raw := workloads.GlucoseRawWindow(r, int64(40+i))
		fixed = append(fixed, workloads.GlucoseGolden(raw, weights))
		var acc float64
		for j, v := range raw {
			acc += float64(weights[j]) / 256 * float64(v) / 256
		}
		ref = append(ref, acc)
	}
	if nr := quality.NRMSE(fixed, ref); nr > 1.0 {
		t.Fatalf("fixed-point glucose filter differs from float reference by %.3f%% (paper bound: 1%%)", nr)
	}
}

func TestConvertSlice(t *testing.T) {
	got := ConvertSlice(U8x8, []float64{0, 0.5, 1, 255})
	want := []int64{0, 128, 256, 255 * 256}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("convert[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
