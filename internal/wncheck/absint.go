package wncheck

import (
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// regVal is the constant-propagation lattice for one register: unknown or a
// known 32-bit constant.
type regVal struct {
	known bool
	v     uint32
}

// readInfo records one outstanding read of a non-volatile word.
type readInfo struct {
	idx int // instruction index of the earliest read
	// tainted is set when an amenable (anytime) instruction executes while
	// the read is outstanding: overwriting the word then makes replayed
	// anytime work consume a different input, so the interval is not
	// idempotent in value — a checkpoint cannot repair it.
	tainted bool
}

// dfState is the forward abstract state at a program point.
type dfState struct {
	regs [isa.NumRegs]regVal
	// reads maps word-aligned non-volatile data addresses that were read
	// (before being written) since the last skim point to information about
	// the earliest such read. May-analysis: merged by union.
	reads map[uint32]readInfo
	// written holds word addresses stored to since the last skim point.
	// Must-analysis (merged by intersection): a read only escapes the
	// read-first set if the word was written on every incoming path.
	written map[uint32]bool
	// armed is true when a SKM has executed on every path from entry.
	armed bool
	// amen is true when an amenable instruction may have executed since
	// the last skim point.
	amen bool
	// sramStores maps word-aligned SRAM addresses that were stored at a
	// statically known address to the earliest store site. Unlike reads,
	// this set is never cleared: no commit boundary — skim point or
	// checkpoint — persists SRAM, so a stored volatile word stays
	// vulnerable until the program halts. nil unless Options.Crash.
	sramStores map[uint32]int
	// inputReads maps word-aligned input-location addresses to the earliest
	// read site. Never cleared — not even by a skim point: the external
	// world advances across reboots regardless of commit boundaries, so a
	// sampled input stays repeated-read-hazardous until the program halts.
	// nil unless Options.Crash and Options.Input are both set.
	inputReads map[uint32]int
	// prov tracks, per register, the non-volatile word the register's value
	// was loaded (or derived) from, for the read-modify-write rule (WN108).
	// Cleared at skim points: a commit boundary ends the re-execution
	// interval the rule reasons about. Only maintained under Options.Crash.
	prov [isa.NumRegs]provVal
	// valid marks states that have been reached at least once.
	valid bool
}

// provVal is the value-provenance lattice for one register: unknown, or
// "derived from the NV word at word, first loaded at loadIdx".
type provVal struct {
	word    uint32
	loadIdx int
	known   bool
}

func newEntryState(cfg mem.Config) dfState {
	s := dfState{
		reads:   map[uint32]readInfo{},
		written: map[uint32]bool{},
		valid:   true,
	}
	// The boot state pins SP to the top of SRAM (see cpu.New).
	s.regs[isa.SP] = regVal{known: true, v: mem.SRAMBase + uint32(cfg.SRAMBytes)}
	return s
}

func (s *dfState) clone() dfState {
	out := *s
	out.reads = make(map[uint32]readInfo, len(s.reads))
	for k, v := range s.reads {
		out.reads[k] = v
	}
	out.written = make(map[uint32]bool, len(s.written))
	for k := range s.written {
		out.written[k] = true
	}
	if s.sramStores != nil {
		out.sramStores = make(map[uint32]int, len(s.sramStores))
		for k, v := range s.sramStores {
			out.sramStores[k] = v
		}
	}
	if s.inputReads != nil {
		out.inputReads = make(map[uint32]int, len(s.inputReads))
		for k, v := range s.inputReads {
			out.inputReads[k] = v
		}
	}
	return out
}

// merge joins another state into s, returning true when s changed.
func (s *dfState) merge(o *dfState) bool {
	if !o.valid {
		return false
	}
	if !s.valid {
		*s = o.clone()
		return true
	}
	changed := false
	for r := range s.regs {
		if s.regs[r].known && (!o.regs[r].known || o.regs[r].v != s.regs[r].v) {
			s.regs[r] = regVal{}
			changed = true
		}
	}
	for a, ri := range o.reads {
		cur, ok := s.reads[a]
		if !ok {
			s.reads[a] = ri
			changed = true
			continue
		}
		next := cur
		if ri.idx < next.idx {
			next.idx = ri.idx
		}
		if ri.tainted {
			next.tainted = true
		}
		if next != cur {
			s.reads[a] = next
			changed = true
		}
	}
	for a := range s.written {
		if !o.written[a] {
			delete(s.written, a)
			changed = true
		}
	}
	for a, oi := range o.sramStores {
		if s.sramStores == nil {
			s.sramStores = map[uint32]int{}
		}
		cur, ok := s.sramStores[a]
		if !ok || oi < cur {
			s.sramStores[a] = oi
			changed = true
		}
	}
	for a, oi := range o.inputReads {
		if s.inputReads == nil {
			s.inputReads = map[uint32]int{}
		}
		cur, ok := s.inputReads[a]
		if !ok || oi < cur {
			s.inputReads[a] = oi
			changed = true
		}
	}
	for r := range s.prov {
		p, q := s.prov[r], o.prov[r]
		if !p.known {
			continue
		}
		switch {
		case !q.known || q.word != p.word:
			s.prov[r] = provVal{}
			changed = true
		case q.loadIdx < p.loadIdx:
			s.prov[r].loadIdx = q.loadIdx
			changed = true
		}
	}
	if s.armed && !o.armed {
		s.armed = false
		changed = true
	}
	if !s.amen && o.amen {
		s.amen = true
		changed = true
	}
	return changed
}

func shiftLc(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v << by
}

func shiftRc(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v >> by
}

func shiftARc(v, by uint32) uint32 {
	if by >= 32 {
		by = 31
	}
	return uint32(int32(v) >> by)
}

// accessSize returns the byte width of a memory opcode.
func accessSize(op isa.Opcode) int {
	switch op {
	case isa.OpLdrh, isa.OpStrh, isa.OpLdrhX, isa.OpStrhX:
		return 2
	case isa.OpLdrb, isa.OpStrb, isa.OpLdrbX, isa.OpStrbX:
		return 1
	}
	return 4
}

// effAddr resolves the effective address of a memory instruction when the
// operands are statically known.
func (s *dfState) effAddr(in isa.Instruction) (uint32, bool) {
	base := s.regs[in.Rn]
	if !base.known {
		return 0, false
	}
	if in.Op.HasRm() {
		off := s.regs[in.Rm]
		if !off.known {
			return 0, false
		}
		return base.v + off.v, true
	}
	return base.v + uint32(in.Imm), true
}

// coveredWords mirrors mem.coveredWords: the first and last word-aligned
// addresses a size-byte access touches. Callers walk first..last in 4-byte
// strides, so a single-word access is processed exactly once (the old
// two-element form visited it twice).
func coveredWords(addr uint32, size int) (first, last uint32) {
	first = addr &^ 3
	last = (addr + uint32(size) - 1) &^ 3
	return first, last
}

// step advances the abstract state across one instruction. When check is
// true, per-instruction diagnostics are reported as side effects.
func (c *checker) step(s *dfState, idx int, check bool) {
	ins := c.ins[idx]
	if !ins.ok {
		if check {
			c.report(CodeIllegalOp, Error, idx,
				"word %#08x does not decode to a WN instruction", ins.word)
		}
		return
	}
	in := ins.in
	op := in.Op

	if check {
		c.checkInstr(s, idx)
	}

	// Memory effects come first: loads and stores read their operands
	// before the destination register changes.
	memAddr, memOK := uint32(0), false
	if op.IsLoad() || op.IsStore() {
		if addr, ok := s.effAddr(in); ok {
			memAddr, memOK = addr, true
			size := accessSize(op)
			dataEnd := uint32(mem.DataBase) + uint32(c.opts.Mem.DataBytes)
			inData := addr >= mem.DataBase && addr < dataEnd
			if op.IsLoad() && inData {
				first, last := coveredWords(addr, size)
				for w := first; w <= last; w += 4 {
					if !s.written[w] {
						if _, ok := s.reads[w]; !ok {
							s.reads[w] = readInfo{idx: idx}
						}
					}
				}
			}
			if op.IsStore() && inData {
				first, last := coveredWords(addr, size)
				if check {
					for w := first; w <= last; w += 4 {
						if ri, ok := s.reads[w]; ok {
							c.reportWAR(idx, ri, w)
						}
						if c.opts.Crash {
							if p := s.prov[in.Rd]; p.known && p.word == w {
								c.reportRMW(idx, p, w)
							}
						}
					}
				}
				for w := first; w <= last; w += 4 {
					s.written[w] = true
				}
			}
			if c.opts.Crash {
				c.stepCrash(s, idx, in, addr, size, check)
				if op.IsLoad() && len(c.opts.Input) > 0 {
					c.stepInput(s, idx, addr, size, check)
				}
			}
		} else if check && c.opts.Crash && op.IsLoad() {
			// The address is statically unknown: constant propagation
			// cannot feed the WN101/WN102 WAR tracking, so follow the
			// read→write chain symbolically instead (WN106).
			c.warCrossFrom(idx)
		}
	}

	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpCmp, isa.OpCmpI,
		isa.OpStr, isa.OpStrh, isa.OpStrb, isa.OpStrX, isa.OpStrhX, isa.OpStrbX,
		isa.OpB, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBgt,
		isa.OpBle, isa.OpBlo, isa.OpBhs, isa.OpBx:
		// No register state changes.

	case isa.OpBl:
		// Assume the callee may clobber every register.
		for r := range s.regs {
			s.regs[r] = regVal{}
		}

	case isa.OpSkm:
		s.armed = true
		s.amen = false
		s.reads = map[uint32]readInfo{}
		s.written = map[uint32]bool{}

	case isa.OpMov:
		s.regs[in.Rd] = s.regs[in.Rm]
	case isa.OpMovI:
		s.regs[in.Rd] = regVal{known: true, v: uint32(in.Imm)}
	case isa.OpMovTI:
		if d := s.regs[in.Rd]; d.known {
			s.regs[in.Rd] = regVal{known: true, v: d.v&0xFFFF | uint32(in.Imm)<<16}
		} else {
			s.regs[in.Rd] = regVal{}
		}

	case isa.OpLdr, isa.OpLdrh, isa.OpLdrb, isa.OpLdrX, isa.OpLdrhX, isa.OpLdrbX:
		// Memory contents are not modeled.
		s.regs[in.Rd] = regVal{}

	case isa.OpMul, isa.OpMulASP1, isa.OpMulASP2, isa.OpMulASP3,
		isa.OpMulASP4, isa.OpMulASP8,
		isa.OpAddASV4, isa.OpAddASV8, isa.OpAddASV16,
		isa.OpSubASV4, isa.OpSubASV8, isa.OpSubASV16:
		// Products and lane arithmetic never feed addresses in well-formed
		// code; treat the result as unknown.
		s.regs[in.Rd] = regVal{}

	default:
		s.regs[in.Rd] = c.evalALU(s, in)
	}

	if c.opts.Crash {
		c.stepProv(s, in, idx, memAddr, memOK)
	}

	if ins.amen {
		s.amen = true
		// Anytime work consumed the outstanding reads: overwriting any of
		// those words before the next skim point breaks value-idempotency.
		for w, ri := range s.reads {
			if !ri.tainted {
				ri.tainted = true
				s.reads[w] = ri
			}
		}
	}
}

// stepProv advances the per-register value-provenance used by the
// read-modify-write rule (WN108). A load from a known non-volatile data word
// tags the destination with that word; MOV and ALU results inherit the tag
// from any tagged source operand; everything else clears it. A skim point
// clears all tags — the commit boundary ends the re-execution interval the
// rule reasons about — and a call clears them because the callee's effects
// are unmodeled.
func (c *checker) stepProv(s *dfState, in isa.Instruction, idx int, memAddr uint32, memOK bool) {
	op := in.Op
	switch {
	case op == isa.OpBl:
		for r := range s.prov {
			s.prov[r] = provVal{}
		}
	case op == isa.OpSkm:
		for r := range s.prov {
			s.prov[r] = provVal{}
		}
	case op.IsLoad():
		s.prov[in.Rd] = provVal{}
		if memOK && locClassOf(memAddr, c.opts.Mem, c.opts.Input) == ClassNV {
			s.prov[in.Rd] = provVal{word: memAddr &^ 3, loadIdx: idx, known: true}
		}
	case op == isa.OpMov:
		s.prov[in.Rd] = s.prov[in.Rm]
	default:
		d, ok := defOf(in)
		if !ok {
			return
		}
		next := provVal{}
		if op != isa.OpMovI && op != isa.OpMovTI {
			for _, u := range usesOf(in) {
				if p := s.prov[u]; p.known {
					next = p
					break
				}
			}
		}
		s.prov[d] = next
	}
}

// evalALU folds two-input ALU operations over known constants.
func (c *checker) evalALU(s *dfState, in isa.Instruction) regVal {
	a := s.regs[in.Rn]
	var b regVal
	if in.Op.HasRm() {
		b = s.regs[in.Rm]
	} else {
		b = regVal{known: true, v: uint32(in.Imm)}
	}
	if !a.known || !b.known {
		return regVal{}
	}
	var v uint32
	switch in.Op {
	case isa.OpAdd, isa.OpAddI:
		v = a.v + b.v
	case isa.OpSub, isa.OpSubI, isa.OpSubIS:
		v = a.v - b.v
	case isa.OpAnd, isa.OpAndI:
		v = a.v & b.v
	case isa.OpOrr, isa.OpOrrI:
		v = a.v | b.v
	case isa.OpEor, isa.OpEorI:
		v = a.v ^ b.v
	case isa.OpLsl, isa.OpLslI:
		v = shiftLc(a.v, b.v)
	case isa.OpLsr, isa.OpLsrI:
		v = shiftRc(a.v, b.v)
	case isa.OpAsr, isa.OpAsrI:
		v = shiftARc(a.v, b.v)
	default:
		return regVal{}
	}
	return regVal{known: true, v: v}
}

// runForward computes the converged in-state of every reachable block, then
// replays each block once with checking enabled.
func (c *checker) runForward() {
	if len(c.blocks) == 0 {
		return
	}
	c.inStates = make([]dfState, len(c.blocks))
	c.inStates[0] = newEntryState(c.opts.Mem)

	work := []int{0}
	inWork := make([]bool, len(c.blocks))
	inWork[0] = true
	for iter := 0; len(work) > 0; iter++ {
		if iter > 100*len(c.blocks)+1000 {
			break // fixpoint safety net; lattice descent bounds this anyway
		}
		id := work[0]
		work = work[1:]
		inWork[id] = false
		b := c.blocks[id]
		s := c.inStates[id].clone()
		for i := b.start; i < b.end; i++ {
			c.step(&s, i, false)
		}
		for _, succ := range b.succs {
			if c.inStates[succ].merge(&s) && !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	for _, b := range c.blocks {
		if !b.reachable || !c.inStates[b.id].valid {
			continue
		}
		s := c.inStates[b.id].clone()
		for i := b.start; i < b.end; i++ {
			c.step(&s, i, true)
		}
	}
}

func (c *checker) reportWAR(storeIdx int, ri readInfo, word uint32) {
	readLoc := c.siteRef(ri.idx)
	if ri.tainted {
		c.report(CodeWARAmenable, Error, storeIdx,
			"non-volatile word %#08x is read (%s), consumed by anytime work, and overwritten with no skim point in between; replaying the interval after a power failure re-runs the anytime work on the overwritten value", word, readLoc)
	} else {
		c.report(CodeWARPlain, Info, storeIdx,
			"non-volatile word %#08x is read (%s) and overwritten with no skim point in between; the Clank runtime forces a checkpoint before this store (a cost, not a safety issue)", word, readLoc)
	}
}
