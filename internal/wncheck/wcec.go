package wncheck

import (
	"sort"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// This file is the forward-progress / WCEC analyzer (WN201–WN203).
//
// Intermittent execution only makes progress if the code between two
// consecutive commit boundaries — skim points, plus program entry and halt —
// fits in one capacitor charge. The analyzer computes a static upper bound
// on the worst-case execution cycles (WCEC) of every such region:
//
//  1. every natural loop gets a trip bound, either inferred by simulating
//     the compiler's counted-loop idiom over the constant lattice, or taken
//     from a `.bound N` assembler annotation;
//  2. loops are collapsed innermost-first into summary supernodes, leaving
//     a DAG whose longest paths are computed by dynamic programming;
//  3. every boundary-to-boundary stretch becomes a region candidate, and
//     the program total is the longest entry-to-exit path.
//
// Cycle costs are the static worst case: memoization hits are not
// discounted, and every conditional branch pays the taken-branch pipeline
// refill. Saturating arithmetic in uint64 represents "unbounded" as
// infCycles.

// LoopBound records the analyzer's verdict for one natural loop.
type LoopBound struct {
	Head  uint32 `json:"head"`  // address of the loop header's first instruction
	Start uint32 `json:"start"` // lowest instruction address in the loop
	End   uint32 `json:"end"`   // highest instruction address in the loop
	// Bound is the maximum trip count; zero when Source is "unbounded".
	Bound uint64 `json:"bound,omitempty"`
	// Source is "inferred" (constant-lattice simulation), "annotated"
	// (.bound directive), or "unbounded".
	Source string `json:"source"`
	// Boundary reports whether the loop body contains a commit boundary
	// (a skim point), which keeps per-region bounds finite even when the
	// trip count is unknown.
	Boundary bool `json:"boundary"`
}

// ProgressRegion is the worst-case cycle count of one commit-delimited
// code region [Start, End] (absolute instruction addresses, inclusive).
type ProgressRegion struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
	WCEC  uint64 `json:"wcec"`
}

// ProgressInfo is the outcome of the forward-progress analysis.
type ProgressInfo struct {
	Loops   []LoopBound      `json:"loops,omitempty"`
	Regions []ProgressRegion `json:"regions,omitempty"`
	// MaxRegionWCEC is the worst finite region bound; meaningful only when
	// RegionsFinite is true.
	MaxRegionWCEC uint64 `json:"max_region_wcec,omitempty"`
	// TotalWCEC bounds the whole program; meaningful only when TotalFinite.
	TotalWCEC uint64 `json:"total_wcec,omitempty"`
	// RegionsFinite is true when every commit-to-commit region has a finite
	// static bound: the program cannot livelock on a device whose per-charge
	// budget covers MaxRegionWCEC.
	RegionsFinite bool `json:"regions_finite"`
	// TotalFinite is true when the whole program has a finite bound.
	TotalFinite bool `json:"total_finite"`
	// Budget echoes Options.Budget (cycles per charge; zero = unchecked).
	Budget uint64 `json:"budget,omitempty"`
}

// infCycles is the saturating "unbounded" cycle count.
const infCycles = ^uint64(0)

func satAdd(a, b uint64) uint64 {
	if a == infCycles || b == infCycles || a+b < a {
		return infCycles
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == infCycles || b == infCycles || a > infCycles/b {
		return infCycles
	}
	return a * b
}

// stretch is a boundary-free run of cycles with the code extent it covers
// (absolute instruction addresses, inclusive). The zero stretch is empty.
type stretch struct {
	cyc  uint64
	s, e uint32
	ext  bool
}

// seqS concatenates two stretches executed in sequence.
func seqS(a, b stretch) stretch {
	out := stretch{cyc: satAdd(a.cyc, b.cyc)}
	switch {
	case a.ext && b.ext:
		out.s, out.e, out.ext = a.s, b.e, true
	case a.ext:
		out.s, out.e, out.ext = a.s, a.e, true
	case b.ext:
		out.s, out.e, out.ext = b.s, b.e, true
	}
	return out
}

// maxS keeps the costlier of two alternative stretches.
func maxS(a, b stretch) stretch {
	if b.cyc > a.cyc {
		return b
	}
	return a
}

// scaleS repeats a stretch k times.
func scaleS(a stretch, k uint64) stretch {
	a.cyc = satMul(a.cyc, k)
	return a
}

// summary is the WCEC abstraction of a node (block, or collapsed loop):
// worst-case cycles through it, decomposed around commit boundaries.
//
// When hasB is false the node is boundary-free and freeIn, freeOut and
// through all equal total. When hasB is true: freeIn is the worst stretch
// from node entry to the first boundary, freeOut from the last boundary to
// node exit, inside the worst boundary-to-boundary stretch wholly inside,
// and through the worst boundary-free entry-to-exit path (meaningful only
// when allB is false, i.e. some path avoids every boundary).
type summary struct {
	total   stretch
	freeIn  stretch
	freeOut stretch
	through stretch
	inside  stretch
	hasB    bool
	allB    bool
}

// isCondBranch reports whether the opcode is a conditional branch, which
// pays the pipeline-refill cycle when taken (the static worst case).
func isCondBranch(op isa.Opcode) bool {
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge,
		isa.OpBgt, isa.OpBle, isa.OpBlo, isa.OpBhs:
		return true
	}
	return false
}

// worstCost is the static worst-case cycle cost of one instruction.
func worstCost(ins instr) uint64 {
	if !ins.ok {
		return 1
	}
	c := uint64(ins.in.Op.BaseCycles())
	if isCondBranch(ins.in.Op) {
		c++ // taken-branch pipeline refill
	}
	return c
}

// blockSummary computes the WCEC summary of one basic block. Skim points
// are the commit boundaries; the skim instruction's own cost is charged to
// the stretch it terminates.
func (c *checker) blockSummary(b *block) summary {
	var sum summary
	var cur, tot stretch
	for i := b.start; i < b.end; i++ {
		ins := c.ins[i]
		st := stretch{cyc: worstCost(ins), s: ins.addr, e: ins.addr, ext: true}
		cur = seqS(cur, st)
		tot = seqS(tot, st)
		if ins.ok && ins.in.Op == isa.OpSkm {
			if !sum.hasB {
				sum.hasB = true
				sum.freeIn = cur
			} else {
				sum.inside = maxS(sum.inside, cur)
			}
			cur = stretch{}
		}
	}
	sum.total = tot
	if sum.hasB {
		sum.allB = true
		sum.freeOut = cur
	} else {
		sum.freeIn, sum.freeOut, sum.through = tot, tot, tot
	}
	return sum
}

// wnode is one node of the collapsing WCEC graph: initially one basic
// block, later possibly a whole loop folded into a summary.
type wnode struct {
	id     int
	sum    summary
	succs  []int
	blocks []int // original block ids this node covers
	lo, hi uint32
}

// dagResult is the outcome of aggregating a DAG of nodes.
type dagResult struct {
	agg   summary
	cands []stretch // complete boundary-to-boundary region candidates
	ok    bool
}

// aggregateDAG folds the node summaries of a subgraph into one summary by
// longest-path dynamic programming in topological order. Edges into
// skipEntry (the loop back edges) are treated as subgraph exits; pass -1
// for a plain DAG. ok is false when a cycle remains (an uncollapsed loop).
func aggregateDAG(nodes map[int]*wnode, members []int, entry, skipEntry int) dagResult {
	inSet := make(map[int]bool, len(members))
	for _, id := range members {
		inSet[id] = true
	}
	succsOf := func(id int) []int {
		var out []int
		for _, s := range nodes[id].succs {
			if inSet[s] && s != skipEntry {
				out = append(out, s)
			}
		}
		return out
	}

	reach := map[int]bool{entry: true}
	queue := []int{entry}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, s := range succsOf(id) {
			if !reach[s] {
				reach[s] = true
				queue = append(queue, s)
			}
		}
	}

	indeg := map[int]int{}
	for id := range reach {
		indeg[id] += 0
		for _, s := range succsOf(id) {
			indeg[s]++
		}
	}
	var ready []int
	for id := range indeg {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	var order []int
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var newly []int
		for _, s := range succsOf(id) {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		sort.Ints(newly)
		ready = append(ready, newly...)
	}
	if len(order) != len(reach) {
		return dagResult{}
	}

	// Per-node in-values: fin is the worst free stretch since the last
	// boundary (valid once some path crossed one), ein the worst free
	// stretch since subgraph entry with no boundary yet, tin the worst
	// total cycles from entry.
	type inVal struct {
		fin   stretch
		finOK bool
		ein   stretch
		einOK bool
		tin   uint64
	}
	in := make(map[int]*inVal, len(reach))
	for id := range reach {
		in[id] = &inVal{}
	}
	in[entry].einOK = true

	res := dagResult{ok: true}
	agg := &res.agg
	var lo, hi uint32
	extSet := false
	throughExists := false

	for _, id := range order {
		n := nodes[id]
		iv := in[id]
		if !extSet || n.lo < lo {
			lo = n.lo
		}
		if !extSet || n.hi > hi {
			hi = n.hi
		}
		extSet = true

		if n.sum.hasB {
			agg.hasB = true
			if iv.finOK {
				res.cands = append(res.cands, seqS(iv.fin, n.sum.freeIn))
			}
			if iv.einOK {
				agg.freeIn = maxS(agg.freeIn, seqS(iv.ein, n.sum.freeIn))
			}
		}
		if n.sum.inside.cyc > 0 || n.sum.inside.ext {
			res.cands = append(res.cands, n.sum.inside)
		}

		var outB stretch
		outBOK := false
		if n.sum.hasB {
			outB, outBOK = n.sum.freeOut, true
		}
		if iv.finOK && !n.sum.allB {
			outB, outBOK = maxS(outB, seqS(iv.fin, n.sum.through)), true
		}
		var outE stretch
		outEOK := false
		if iv.einOK && !n.sum.allB {
			outE, outEOK = seqS(iv.ein, n.sum.through), true
		}
		outT := satAdd(iv.tin, n.sum.total.cyc)

		succ := succsOf(id)
		isExit := len(succ) == 0
		for _, s := range nodes[id].succs {
			if !inSet[s] || (skipEntry >= 0 && s == skipEntry) {
				isExit = true
			}
		}
		if isExit {
			if outBOK {
				agg.freeOut = maxS(agg.freeOut, outB)
			}
			if outEOK {
				agg.through = maxS(agg.through, outE)
				throughExists = true
			}
			agg.total = maxS(agg.total, stretch{cyc: outT})
		}
		for _, s := range succ {
			sv := in[s]
			if outBOK {
				if !sv.finOK {
					sv.fin, sv.finOK = outB, true
				} else {
					sv.fin = maxS(sv.fin, outB)
				}
			}
			if outEOK {
				if !sv.einOK {
					sv.ein, sv.einOK = outE, true
				} else {
					sv.ein = maxS(sv.ein, outE)
				}
			}
			if outT > sv.tin {
				sv.tin = outT
			}
		}
	}

	agg.total.s, agg.total.e, agg.total.ext = lo, hi, extSet
	if agg.hasB {
		agg.allB = !throughExists
		for _, cd := range res.cands {
			agg.inside = maxS(agg.inside, cd)
		}
	} else {
		agg.freeIn, agg.freeOut, agg.through = agg.total, agg.total, agg.total
		agg.inside = stretch{}
	}
	return res
}

// loopSummary lifts a one-iteration body summary to the whole loop under a
// trip bound. lo..hi is the loop's code extent, used for unbounded results.
func loopSummary(it summary, bound uint64, known bool, lo, hi uint32) summary {
	inf := stretch{cyc: infCycles, s: lo, e: hi, ext: true}
	var out summary
	if !it.hasB {
		tot := inf
		if known {
			tot = scaleS(it.total, bound)
		}
		out.total = tot
		out.freeIn, out.freeOut, out.through = tot, tot, tot
		return out
	}
	out.hasB = true
	switch {
	case known:
		out.total = scaleS(it.total, bound)
		if it.allB {
			out.allB = true
			out.freeIn = it.freeIn
			out.freeOut = it.freeOut
			out.inside = it.inside
			if bound >= 2 {
				// Wraparound: last free stretch of one iteration plus the
				// first of the next.
				out.inside = maxS(out.inside, seqS(it.freeOut, it.freeIn))
			}
		} else {
			// Up to bound-1 boundary-free iterations may precede the first
			// boundary or follow the last one.
			out.freeIn = seqS(scaleS(it.through, bound-1), it.freeIn)
			out.freeOut = seqS(it.freeOut, scaleS(it.through, bound-1))
			out.through = scaleS(it.through, bound)
			out.inside = it.inside
			if bound >= 2 {
				wrap := seqS(seqS(it.freeOut, scaleS(it.through, bound-2)), it.freeIn)
				out.inside = maxS(out.inside, wrap)
			}
		}
	case it.allB:
		// Trip count unknown, but every iteration commits: the per-region
		// bounds survive even though the total is unbounded.
		out.allB = true
		out.total = inf
		out.freeIn = it.freeIn
		out.freeOut = it.freeOut
		out.inside = maxS(it.inside, seqS(it.freeOut, it.freeIn))
	default:
		// Unknown trips and boundary-free iterations: everything diverges.
		out.total = inf
		out.freeIn, out.freeOut, out.through, out.inside = inf, inf, inf, inf
	}
	return out
}

// condTaken mirrors the CPU's flag semantics for a compare of a against b
// (flags = a - b, as setFlagsSub) followed by a conditional branch.
func condTaken(op isa.Opcode, a, b uint32) bool {
	r := a - b
	n := int32(r) < 0
	z := r == 0
	cc := a >= b
	v := (int32(a) < 0) != (int32(b) < 0) && (int32(r) < 0) != (int32(a) < 0)
	switch op {
	case isa.OpBeq:
		return z
	case isa.OpBne:
		return !z
	case isa.OpBlt:
		return n != v
	case isa.OpBge:
		return n == v
	case isa.OpBgt:
		return !z && n == v
	case isa.OpBle:
		return z || n != v
	case isa.OpBlo:
		return !cc
	case isa.OpBhs:
		return cc
	}
	return true
}

// preheaderConst resolves the value of register r on entry to the loop:
// every out-of-loop predecessor of the header must leave r at the same
// statically known constant.
func (c *checker) preheaderConst(l loopInfo, set map[int]bool, r isa.Reg) (uint32, bool) {
	head := c.blocks[l.head]
	var val uint32
	have := false
	consider := func(rv regVal) bool {
		if !rv.known || (have && rv.v != val) {
			return false
		}
		val, have = rv.v, true
		return true
	}
	if l.head == 0 {
		es := newEntryState(c.opts.Mem)
		if !consider(es.regs[r]) {
			return 0, false
		}
	}
	for _, pid := range head.preds {
		if set[pid] {
			continue
		}
		pb := c.blocks[pid]
		if !pb.reachable {
			continue
		}
		if pid >= len(c.inStates) || !c.inStates[pid].valid {
			return 0, false
		}
		s := c.inStates[pid].clone()
		for i := pb.start; i < pb.end; i++ {
			c.step(&s, i, false)
		}
		if !consider(s.regs[r]) {
			return 0, false
		}
	}
	return val, have
}

// tripCap bounds the trip-count simulation; loops beyond it are treated as
// unprovable rather than iterated to exhaustion.
const tripCap = 1 << 20

// inferTrips recognizes the compiler's counted-loop idioms and simulates
// the counter to an exact trip count:
//
//	SUBIS ctr, ctr, #step ; B<cc> head     (down-counted do-while)
//	ADDI/SUBI ctr ; CMP(I) ctr, limit ; B<cc> head
//
// The loop must have a single latch ending in a conditional branch to the
// header whose fall-through leaves the loop, the counter must have exactly
// one in-loop definition, and its initial value must be a preheader
// constant.
func (c *checker) inferTrips(l loopInfo, set map[int]bool) (uint64, bool) {
	head := c.blocks[l.head]
	latch := -1
	for _, p := range head.preds {
		if set[p] {
			if latch >= 0 {
				return 0, false
			}
			latch = p
		}
	}
	if latch < 0 {
		return 0, false
	}
	lb := c.blocks[latch]
	last := lb.end - 1
	li := c.ins[last]
	if !li.ok || !isCondBranch(li.in.Op) || c.branchTargetIndex(last) != head.start {
		return 0, false
	}
	if lb.end >= len(c.ins) || set[c.blockOf[lb.end]] {
		return 0, false
	}
	for _, id := range l.blocks {
		b := c.blocks[id]
		for i := b.start; i < b.end; i++ {
			if !c.ins[i].ok || c.ins[i].in.Op == isa.OpBl {
				return 0, false
			}
		}
	}

	setter := -1
	for i := last - 1; i >= lb.start; i-- {
		switch c.ins[i].in.Op {
		case isa.OpCmp, isa.OpCmpI, isa.OpSubIS:
			setter = i
		}
		if setter >= 0 {
			break
		}
	}
	if setter < 0 {
		return 0, false
	}
	st := c.ins[setter].in
	br := li.in.Op

	defsOf := func(r isa.Reg) []int {
		var out []int
		for _, id := range l.blocks {
			b := c.blocks[id]
			for i := b.start; i < b.end; i++ {
				if d, ok := defOf(c.ins[i].in); ok && d == r {
					out = append(out, i)
				}
			}
		}
		return out
	}
	simulate := func(step func(v uint32) (a, b, next uint32), init uint32) (uint64, bool) {
		v := init
		var trips uint64
		for {
			trips++
			if trips > tripCap {
				return 0, false
			}
			a, b, next := step(v)
			v = next
			if !condTaken(br, a, b) {
				return trips, true
			}
		}
	}

	switch st.Op {
	case isa.OpSubIS:
		if st.Rd != st.Rn {
			return 0, false
		}
		ctr := st.Rd
		stepv := uint32(int32(st.Imm))
		if stepv == 0 {
			return 0, false
		}
		defs := defsOf(ctr)
		if len(defs) != 1 || defs[0] != setter {
			return 0, false
		}
		init, ok := c.preheaderConst(l, set, ctr)
		if !ok {
			return 0, false
		}
		return simulate(func(v uint32) (uint32, uint32, uint32) {
			return v, stepv, v - stepv
		}, init)

	case isa.OpCmpI, isa.OpCmp:
		ctr := st.Rn
		var limit uint32
		limKnown := false
		ctrIsA := true
		if st.Op == isa.OpCmpI {
			limit, limKnown = uint32(int32(st.Imm)), true
		} else {
			rnDefs, rmDefs := defsOf(st.Rn), defsOf(st.Rm)
			switch {
			case len(rnDefs) == 1 && len(rmDefs) == 0:
				ctr, ctrIsA = st.Rn, true
				limit, limKnown = c.preheaderConst(l, set, st.Rm)
			case len(rmDefs) == 1 && len(rnDefs) == 0:
				ctr, ctrIsA = st.Rm, false
				limit, limKnown = c.preheaderConst(l, set, st.Rn)
			default:
				return 0, false
			}
		}
		if !limKnown {
			return 0, false
		}
		defs := defsOf(ctr)
		if len(defs) != 1 {
			return 0, false
		}
		inc := defs[0]
		if c.blockOf[inc] != latch || inc >= setter {
			return 0, false
		}
		ii := c.ins[inc].in
		if ii.Rd != ctr || ii.Rn != ctr {
			return 0, false
		}
		var delta uint32
		switch ii.Op {
		case isa.OpAddI:
			delta = uint32(int32(ii.Imm))
		case isa.OpSubI:
			delta = -uint32(int32(ii.Imm))
		default:
			return 0, false
		}
		if delta == 0 {
			return 0, false
		}
		init, ok := c.preheaderConst(l, set, ctr)
		if !ok {
			return 0, false
		}
		return simulate(func(v uint32) (uint32, uint32, uint32) {
			nv := v + delta
			if ctrIsA {
				return nv, limit, nv
			}
			return limit, nv, nv
		}, init)
	}
	return 0, false
}

// runProgress is the forward-progress analysis driver. Requires the
// converged forward states from runForward.
func (c *checker) runProgress() {
	if !c.opts.Progress {
		return
	}
	p := &ProgressInfo{Budget: c.opts.Budget}
	c.progress = p
	if len(c.blocks) == 0 || !c.blocks[0].reachable {
		p.RegionsFinite, p.TotalFinite = true, true
		return
	}

	// Build the initial node graph over the reachable blocks.
	nodes := map[int]*wnode{}
	blockNode := make([]int, len(c.blocks))
	for i := range blockNode {
		blockNode[i] = -1
	}
	for _, b := range c.blocks {
		if !b.reachable {
			continue
		}
		n := &wnode{
			id:     b.id,
			sum:    c.blockSummary(b),
			blocks: []int{b.id},
			lo:     c.ins[b.start].addr,
			hi:     c.ins[b.end-1].addr,
		}
		seen := map[int]bool{}
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				n.succs = append(n.succs, s)
			}
		}
		nodes[b.id] = n
		blockNode[b.id] = b.id
	}
	nextID := len(c.blocks)

	// Attach each .bound annotation to the innermost loop containing it.
	loopSize := make([]int, len(c.loops))
	for li, l := range c.loops {
		for _, id := range l.blocks {
			loopSize[li] += c.blocks[id].end - c.blocks[id].start
		}
	}
	annBound := map[int]uint64{}
	for addr, bnd := range c.prog.Bounds {
		if addr < mem.CodeBase || (addr-mem.CodeBase)%isa.InstBytes != 0 {
			continue
		}
		idx := int(addr-mem.CodeBase) / isa.InstBytes
		if idx >= len(c.ins) {
			continue
		}
		blk := c.blockOf[idx]
		best := -1
		for li, l := range c.loops {
			member := false
			for _, id := range l.blocks {
				if id == blk {
					member = true
				}
			}
			if !member {
				continue
			}
			if best < 0 || loopSize[li] < loopSize[best] ||
				(loopSize[li] == loopSize[best] && l.head < c.loops[best].head) {
				best = li
			}
		}
		if best >= 0 && bnd > annBound[best] {
			annBound[best] = bnd
		}
	}

	// Collapse loops innermost-first (fewest instructions first).
	jobs := make([]int, 0, len(c.loops))
	for li := range c.loops {
		jobs = append(jobs, li)
	}
	sort.Slice(jobs, func(i, j int) bool {
		if loopSize[jobs[i]] != loopSize[jobs[j]] {
			return loopSize[jobs[i]] < loopSize[jobs[j]]
		}
		return c.loops[jobs[i]].head < c.loops[jobs[j]].head
	})

	var cands []stretch
	collapsed := true
	for _, li := range jobs {
		l := c.loops[li]
		head := c.blocks[l.head]
		if !head.reachable {
			continue
		}
		set := make(map[int]bool, len(l.blocks))
		lo, hi := c.ins[head.start].addr, c.ins[head.start].addr
		boundary := false
		for _, id := range l.blocks {
			set[id] = true
			b := c.blocks[id]
			if a := c.ins[b.start].addr; a < lo {
				lo = a
			}
			if a := c.ins[b.end-1].addr; a > hi {
				hi = a
			}
			for i := b.start; i < b.end; i++ {
				if c.ins[i].ok && c.ins[i].in.Op == isa.OpSkm {
					boundary = true
				}
			}
		}

		bound, source := uint64(0), "unbounded"
		if b, ok := annBound[li]; ok {
			bound, source = b, "annotated"
		} else if t, ok := c.inferTrips(l, set); ok {
			bound, source = t, "inferred"
		}
		known := source != "unbounded"
		p.Loops = append(p.Loops, LoopBound{
			Head:     c.ins[head.start].addr,
			Start:    lo,
			End:      hi,
			Bound:    bound,
			Source:   source,
			Boundary: boundary,
		})
		if !known {
			if !boundary {
				c.reportRegion(CodeLivelock, Error, head.start, lo, hi,
					"loop at %#08x has no commit boundary inside and no finite trip bound; the region %#08x..%#08x can re-execute forever under intermittent power (add a skim point or a .bound directive)",
					c.ins[head.start].addr, lo, hi)
			} else {
				c.reportRegion(CodeLoopBound, Warning, head.start, lo, hi,
					"loop at %#08x: trip count is neither inferable from the constant lattice nor annotated; add `.bound N` to bound the total worst-case energy",
					c.ins[head.start].addr)
			}
		}

		memberSet := map[int]bool{}
		for _, id := range l.blocks {
			if blockNode[id] >= 0 {
				memberSet[blockNode[id]] = true
			}
		}
		entryNode := blockNode[l.head]
		okCollapse := entryNode >= 0
		for nid := range memberSet {
			for _, blk := range nodes[nid].blocks {
				if !set[blk] {
					okCollapse = false
				}
			}
		}
		if okCollapse {
			var nodeIDs []int
			for nid := range nodes {
				nodeIDs = append(nodeIDs, nid)
			}
			sort.Ints(nodeIDs)
			for _, nid := range nodeIDs {
				if memberSet[nid] {
					continue
				}
				for _, s := range nodes[nid].succs {
					if memberSet[s] && s != entryNode {
						okCollapse = false
					}
				}
			}
		}
		var dag dagResult
		if okCollapse {
			members := make([]int, 0, len(memberSet))
			for nid := range memberSet {
				members = append(members, nid)
			}
			sort.Ints(members)
			dag = aggregateDAG(nodes, members, entryNode, entryNode)
			okCollapse = dag.ok
		}
		if !okCollapse {
			collapsed = false
			c.reportRegion(CodeLoopBound, Warning, head.start, lo, hi,
				"loop at %#08x has irreducible or multi-entry control flow; no trip bound can be applied",
				c.ins[head.start].addr)
			continue
		}
		cands = append(cands, dag.cands...)

		sup := &wnode{id: nextID, sum: loopSummary(dag.agg, bound, known, lo, hi), lo: lo, hi: hi}
		nextID++
		memberIDs := make([]int, 0, len(memberSet))
		for nid := range memberSet {
			memberIDs = append(memberIDs, nid)
		}
		sort.Ints(memberIDs)
		seenSucc := map[int]bool{}
		for _, nid := range memberIDs {
			n := nodes[nid]
			sup.blocks = append(sup.blocks, n.blocks...)
			for _, s := range n.succs {
				if !memberSet[s] && !seenSucc[s] {
					seenSucc[s] = true
					sup.succs = append(sup.succs, s)
				}
			}
			delete(nodes, nid)
		}
		sort.Ints(sup.blocks)
		sort.Ints(sup.succs)
		nodes[sup.id] = sup
		for _, blk := range sup.blocks {
			blockNode[blk] = sup.id
		}
		var nodeIDs []int
		for nid := range nodes {
			nodeIDs = append(nodeIDs, nid)
		}
		sort.Ints(nodeIDs)
		for _, nid := range nodeIDs {
			n := nodes[nid]
			changed := false
			for i, s := range n.succs {
				if memberSet[s] {
					n.succs[i] = sup.id
					changed = true
				}
			}
			if changed {
				seen := map[int]bool{}
				var out []int
				for _, s := range n.succs {
					if !seen[s] {
						seen[s] = true
						out = append(out, s)
					}
				}
				n.succs = out
			}
		}
	}

	sort.Slice(p.Loops, func(i, j int) bool { return p.Loops[i].Head < p.Loops[j].Head })

	// Final longest-path pass over the collapsed graph.
	members := make([]int, 0, len(nodes))
	for nid := range nodes {
		members = append(members, nid)
	}
	sort.Ints(members)
	top := aggregateDAG(nodes, members, blockNode[0], -1)

	var finals []stretch
	certified := collapsed && top.ok
	if certified {
		cands = append(cands, top.cands...)
		finals = append(finals, cands...)
		// Program entry and halt act as commit boundaries.
		if top.agg.hasB {
			finals = append(finals, top.agg.freeIn, top.agg.freeOut)
			if !top.agg.allB {
				finals = append(finals, top.agg.through)
			}
		} else {
			finals = append(finals, top.agg.total)
		}
		p.RegionsFinite = true
		for _, s := range finals {
			if s.cyc == infCycles {
				p.RegionsFinite = false
			} else if p.RegionsFinite && s.cyc > p.MaxRegionWCEC {
				p.MaxRegionWCEC = s.cyc
			}
		}
		if !p.RegionsFinite {
			p.MaxRegionWCEC = 0
		}
		if top.agg.total.cyc != infCycles {
			p.TotalFinite = true
			p.TotalWCEC = top.agg.total.cyc
		}
	} else {
		finals = cands
	}

	// Publish the finite, extent-carrying regions, deduplicated by extent.
	best := map[[2]uint32]uint64{}
	for _, s := range finals {
		if s.cyc == 0 || s.cyc == infCycles || !s.ext {
			continue
		}
		k := [2]uint32{s.s, s.e}
		if s.cyc > best[k] {
			best[k] = s.cyc
		}
	}
	keys := make([][2]uint32, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		p.Regions = append(p.Regions, ProgressRegion{Start: k[0], End: k[1], WCEC: best[k]})
	}

	// WN202: regions that cannot complete within the per-charge budget.
	if c.opts.Budget > 0 {
		imgEnd := mem.CodeBase + uint32(len(c.ins)*isa.InstBytes)
		for _, s := range finals {
			if s.cyc <= c.opts.Budget || !s.ext || s.e < mem.CodeBase || s.e >= imgEnd {
				continue
			}
			idx := int(s.e-mem.CodeBase) / isa.InstBytes
			if s.cyc == infCycles {
				c.reportRegion(CodeRegionBudget, Error, idx, s.s, s.e,
					"region %#08x..%#08x has unbounded worst-case cycles; no per-charge budget covers it",
					s.s, s.e)
			} else {
				c.reportRegion(CodeRegionBudget, Error, idx, s.s, s.e,
					"region %#08x..%#08x needs %d cycles in the worst case, exceeding the per-charge budget of %d",
					s.s, s.e, s.cyc, c.opts.Budget)
			}
		}
	}
}
