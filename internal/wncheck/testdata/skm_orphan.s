; A skim point that no anytime work justifies.
;
; Nothing amenable executes before the SKM, so there is no approximate
; result for an outage to commit: skipping to the target would publish
; whatever the output held before (WN212, warning). The store after the SKM
; is clean: the skim point closes the WAR interval opened by the load.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	LDR R1, [R0, #0]
	ADDI R1, R1, #1
	SKM end              ; WN212: no amenable work reaches this skim
	STR R1, [R0, #0]
end:
	HALT
