; An amenable loop that only one path into protects with a skim point.
;
; The hot path commits a seed approximation and arms a skim point before the
; loop; the cold path branches straight in. The loop performs anytime work,
; is not covered on every entry path, and no skim point is reachable from
; it, so an outage mid-loop discards all of its anytime work (WN211, error).

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	MOVI R4, #8          ; trip count
	MOVI R5, #0          ; accumulator
	MOVI R7, #3          ; coefficient
	LDRH R6, [R0, #32]
	.amenable
	MUL_ASP8 R6, R7, #0  ; seed approximation
	CMPI R6, #0
	BEQ loop             ; cold path: enters the loop with no skim armed
	STRH R6, [R0, #36]   ; commit the seed
	SKM loop             ; hot path arms a skim point
loop:
	LDRH R6, [R0, #0]    ; WN211 reported at the loop head
	.amenable
	MUL_ASP8 R6, R7, #1
	ADD R5, R5, R6
	ADDI R0, R0, #2
	SUBIS R4, R4, #1
	BNE loop
	STR R5, [R0, #0]
	HALT
