; WAR hazards: anytime-consumed input vs the checkpoint-coalescible idiom.
;
; The first store overwrites a word that anytime work already consumed, so
; replaying the interval after a power failure re-runs the MUL_ASP on the
; new value (WN101, error). The second store is the plain read-modify-write
; idiom the Clank runtime repairs with a forced checkpoint (WN102, info).

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = 0x10000000 (data base)
	MOVI R2, #3
	LDR R1, [R0, #0]     ; outstanding read of the input word
	.amenable
	MUL_ASP8 R1, R2, #0  ; anytime work consumes the read
	STR R1, [R0, #0]     ; WN101: in-place overwrite of the consumed input
	SKM done
	LDR R3, [R0, #4]
	ADDI R3, R3, #1
	STR R3, [R0, #4]     ; WN102: Clank forces a checkpoint here
done:
	HALT
