; ISA-invariant violations: subword positions, anytime operands, skim targets.

start:
	MOVI R1, #5
	MOVI R2, #7
	.amenable
	MUL_ASP8 R1, R2, #4  ; WN301: 8-bit subwords at position 4 shift by 32
	MUL_ASP4 R1, R2, #8  ; WN301: 4-bit subwords at position 8 shift by 32
	ADD_ASV8 R1, SP      ; WN304: vector add on the stack pointer
	SKM #6               ; WN213: target is not instruction-aligned
	SKM start            ; WN213: target does not advance past the skim
	HALT
