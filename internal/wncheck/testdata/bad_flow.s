; Control-flow and memory-safety violations.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = 0x10000000 (data base)
	BEQ #1000            ; WN402: target is outside the image
	LDR R3, [R0, #2]     ; WN303: word load at a half-aligned address
	MOVI R2, #0
	MOVTI R2, #12288     ; R2 = 0x30000000, beyond every region
	LDR R4, [R2, #0]     ; WN403: no region maps this address
	MOVI R5, #0
	STR R3, [R5, #0]     ; WN404: store into instruction memory
	CMPI R3, #0
	BEQ tail
	.word 0xFF000000     ; WN302: does not decode; execution faults here
	MOVI R6, #1          ; WN401: unreachable after the fault
tail:
	ADDI R7, R3, #1      ; WN405: execution runs off the image end
