package wncheck

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// This file states the formal model behind the crash-consistency analyses
// and derives the machine-readable verification certificate from a run.
//
// # Event model
//
// Following Surbatovich et al. ("Towards a Formal Foundation of Intermittent
// Computing"), every instruction is modeled as a sequence of observe and
// persist events over four location classes:
//
//	NV     non-volatile FRAM data words. Persist events take effect
//	       immediately and survive every reboot.
//	SRAM   volatile scratch words. Persist events are erased by a reboot;
//	       no runtime restores them.
//	Reg    architectural registers. Erased by a reboot; restored to
//	       checkpoint-time values (Clank, undo log) or interruption-time
//	       values (NVP), and redirected by an armed skim point.
//	Input  sensor/IO locations. Observe events sample the external world,
//	       which advances across a reboot; there is no persist event a
//	       program can issue against an input location.
//
// A power failure may occur at any instruction boundary. An intermittent
// execution is a sequence of execution fragments separated by reboots; the
// runtime decides where each fragment resumes (checkpoint, in-place, or
// skim target). Correctness is *memory consistency*: the final NV state
// must equal the final NV state of SOME uninterrupted execution of the
// program against a single world. Each WN10x rule is a sufficient static
// condition for one way that property can fail:
//
//	war-atomicity      An NV location observed and later persisted within
//	                   one re-execution interval makes replay observe the
//	                   new value (WN101/WN102 at constant addresses,
//	                   WN106 at congruent symbolic addresses).
//	volatile-boundary  A SRAM persist observed after a possible reboot
//	                   reads erased state (WN103).
//	resume-state       Registers observed on the skim-resume path must
//	                   hold fall-through values (WN104).
//	repeated-input     An input location observed on both sides of a
//	                   possible reboot samples two different worlds; if
//	                   both samples reach NV persists the final state is
//	                   consistent with neither world (WN105).
//	commit-order       An NV persist inside an armed skim interval is
//	                   visible at the skim target even when the interval
//	                   did not complete, inverting the commit order
//	                   (WN107).
//	idempotent-replay  An NV persist whose value derives from an observe
//	                   of the same location double-applies under replay
//	                   without privatization (WN108).
//
// Rules outside the WN10x family are engineering invariants of the WN ISA
// and toolchain, not instances of a formal condition; the table below marks
// them "engineering".

// LocClass partitions addresses into the formal model's location classes.
type LocClass int

const (
	ClassNV LocClass = iota
	ClassSRAM
	ClassReg
	ClassInput
	ClassNone // outside every modeled region
)

func (l LocClass) String() string {
	switch l {
	case ClassNV:
		return "nv"
	case ClassSRAM:
		return "sram"
	case ClassReg:
		return "reg"
	case ClassInput:
		return "input"
	}
	return "none"
}

// AddrRange is a half-open address interval [Start, End).
type AddrRange struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
}

// Contains reports whether addr falls inside the range.
func (r AddrRange) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// locClassOf classifies a data address. Input ranges take precedence over
// the memory region that backs them: a sensor FIFO mapped into the data
// region is still an input location.
func locClassOf(addr uint32, cfg mem.Config, input []AddrRange) LocClass {
	for _, r := range input {
		if r.Contains(addr) {
			return ClassInput
		}
	}
	switch {
	case addr >= mem.DataBase && addr < mem.DataBase+uint32(cfg.DataBytes):
		return ClassNV
	case addr >= mem.SRAMBase && addr < mem.SRAMBase+uint32(cfg.SRAMBytes):
		return ClassSRAM
	}
	return ClassNone
}

// EventKind is one side of the formal access relation.
type EventKind int

const (
	Observe EventKind = iota // the instruction reads the location
	Persist                  // the instruction writes the location
)

// Event is one observe/persist effect of an instruction against a location
// class. Register events carry the register; memory events carry the class
// the effective address resolved to.
type Event struct {
	Kind  EventKind
	Class LocClass
	Reg   isa.Reg // valid when Class == ClassReg
}

// InstrEvents lists the events of one instruction under the formal model.
// memClass resolves the instruction's effective address to a location class
// and may be nil when the address is statically unknown (the memory events
// are then reported against ClassNone, the analyses' "could be anything"
// value). The slice orders observe events before persist events, matching
// execution order.
func InstrEvents(in isa.Instruction, memClass func() LocClass) []Event {
	var evs []Event
	for _, u := range usesOf(in) {
		evs = append(evs, Event{Kind: Observe, Class: ClassReg, Reg: u})
	}
	cls := ClassNone
	if memClass != nil {
		cls = memClass()
	}
	if in.Op.IsLoad() {
		evs = append(evs, Event{Kind: Observe, Class: cls})
	}
	if in.Op.IsStore() {
		evs = append(evs, Event{Kind: Persist, Class: cls})
	}
	if d, ok := defOf(in); ok {
		evs = append(evs, Event{Kind: Persist, Class: ClassReg, Reg: d})
	}
	return evs
}

// Condition names for the rule table and certificates.
const (
	CondWARAtomicity     = "war-atomicity"
	CondVolatileBoundary = "volatile-boundary"
	CondResumeState      = "resume-state"
	CondRepeatedInput    = "repeated-input"
	CondCommitOrder      = "commit-order"
	CondIdempotentReplay = "idempotent-replay"
	CondForwardProgress  = "forward-progress"
	CondEngineering      = "engineering"
)

// RuleInfo documents one diagnostic code: the formal condition it is a
// sufficient check for (or "engineering"), and a one-line statement.
type RuleInfo struct {
	Code      string
	Condition string
	Crash     bool // only runs under Options.Crash
	Progress  bool // only runs under Options.Progress
	Statement string
}

// ruleTable is the authoritative code -> condition mapping, in code order.
var ruleTable = []RuleInfo{
	{CodeWARAmenable, CondWARAtomicity, false, false, "NV word read, consumed by anytime work, then overwritten with no skim point in between"},
	{CodeWARPlain, CondWARAtomicity, false, false, "NV word read then overwritten; repaired by a forced Clank checkpoint at a cost"},
	{CodeVolatileCross, CondVolatileBoundary, true, false, "volatile SRAM word written then read across a possible power failure"},
	{CodeSkimStaleReg, CondResumeState, true, false, "register live at a skim-resume target and written while the skim is armed"},
	{CodeRepeatedInput, CondRepeatedInput, true, false, "input location read on both sides of a possible reboot"},
	{CodeWARCross, CondWARAtomicity, true, false, "cross-block WAR at a congruent symbolic address (reaching-defs generalization of WN101/WN102)"},
	{CodeCommitOrder, CondCommitOrder, true, false, "NV word written inside an armed skim interval and observed at the skim target"},
	{CodeNonIdempotent, CondIdempotentReplay, true, false, "NV write whose value derives from a read of the same word (read-modify-write without privatization)"},
	{CodeLivelock, CondForwardProgress, false, true, "loop with no commit boundary inside and no finite trip bound: livelock under any finite cycle budget"},
	{CodeRegionBudget, CondForwardProgress, false, true, "region worst-case cycles exceed the configured per-charge cycle budget"},
	{CodeLoopBound, CondForwardProgress, false, true, "loop trip count neither inferable nor annotated with .bound"},
	{CodeSkimMissing, CondEngineering, false, false, "amenable loop with no skim coverage"},
	{CodeSkimOrphan, CondEngineering, false, false, "skim point no anytime work reaches"},
	{CodeSkimTarget, CondEngineering, false, false, "invalid skim target"},
	{CodeASPPosition, CondEngineering, false, false, "MUL_ASP position overflows the result"},
	{CodeIllegalOp, CondEngineering, false, false, "reachable word does not decode"},
	{CodeMisaligned, CondEngineering, false, false, "misaligned access at known address"},
	{CodeAnytimeReg, CondEngineering, false, false, "ASP/ASV on SP/LR/PC"},
	{CodeUnreachable, CondEngineering, false, false, "unreachable block"},
	{CodeBranchRange, CondEngineering, false, false, "branch target outside the image"},
	{CodeOOBAccess, CondEngineering, false, false, "access outside every memory region"},
	{CodeCodeWrite, CondEngineering, false, false, "store into instruction memory"},
	{CodeMissingHalt, CondEngineering, false, false, "execution runs off the image end"},
	{CodeDeadWrite, CondEngineering, false, false, "register write never read"},
	{CodeUninitRead, CondEngineering, false, false, "register read before any write"},
}

// Rules returns the full rule table in code order.
func Rules() []RuleInfo {
	out := make([]RuleInfo, len(ruleTable))
	copy(out, ruleTable)
	return out
}

// ConditionOf returns the formal condition a code checks, or
// CondEngineering for codes outside the WN10x family.
func ConditionOf(code string) string {
	for _, r := range ruleTable {
		if r.Code == code {
			return r.Condition
		}
	}
	return CondEngineering
}

// Region is one contiguous code interval [Start, End] (absolute instruction
// addresses, inclusive) in a certificate. Flagged regions carry the code of
// the finding that voided them.
type Region struct {
	Code  string `json:"code,omitempty"`
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
}

// RuleReport records one rule's participation in a verification run.
type RuleReport struct {
	Code      string `json:"code"`
	Condition string `json:"condition"`
	Enabled   bool   `json:"enabled"`
	Findings  int    `json:"findings"`
}

// Certificate is the machine-readable outcome of Verify: which rules ran,
// which code regions carry crash-consistency findings (flagged), which are
// free of them (proven), and the assumptions the proof rests on.
// internal/faultinject's CrossValidate consumes it as the contract for the
// dynamic oracle: power failures at boundaries inside proven territory must
// leave NV memory bit-exact, while every flagged region must be witnessable.
type Certificate struct {
	Name         string       `json:"name,omitempty"`
	ImageSHA256  string       `json:"image_sha256"`
	Instructions int          `json:"instructions"`
	Crash        bool         `json:"crash"`
	Input        []AddrRange  `json:"input,omitempty"`
	Rules        []RuleReport `json:"rules"`
	Flagged      []Region     `json:"flagged_regions"`
	Proven       []Region     `json:"proven_regions"`
	// Progress is the forward-progress analysis outcome: loop trip bounds
	// and per-region WCEC. Nil when Options.Progress was off.
	Progress    *ProgressInfo `json:"progress,omitempty"`
	Assumptions []string      `json:"assumptions"`
}

// Encode renders the certificate as deterministic, indented JSON: encoding
// the same certificate twice is byte-identical (slices are sorted when the
// certificate is built, and encoding/json emits struct fields in order).
func (c *Certificate) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeCertificate parses a certificate produced by Encode.
func DecodeCertificate(b []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("wncheck: decoding certificate: %w", err)
	}
	return &c, nil
}

// Verify is Check plus a verification certificate for the run.
func Verify(p *asm.Program, opts Options) (*Result, *Certificate, error) {
	res, err := Check(p, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, buildCertificate(p, opts, res), nil
}

func buildCertificate(p *asm.Program, opts Options, res *Result) *Certificate {
	sum := sha256.Sum256(p.Image)
	cert := &Certificate{
		Name:         p.File,
		ImageSHA256:  hex.EncodeToString(sum[:]),
		Instructions: res.NumInstructions,
		Crash:        opts.Crash,
		Input:        append([]AddrRange(nil), opts.Input...),
	}

	disabled := map[string]bool{}
	for _, c := range opts.Disable {
		disabled[c] = true
	}
	only := map[string]bool{}
	for _, c := range opts.Only {
		only[c] = true
	}
	findings := map[string]int{}
	for _, d := range res.Diags {
		findings[d.Code] += d.Count
	}
	for _, r := range ruleTable {
		enabled := !disabled[r.Code]
		if len(only) > 0 && !only[r.Code] {
			enabled = false
		}
		if r.Crash && !opts.Crash {
			enabled = false
		}
		if r.Progress && !opts.Progress {
			enabled = false
		}
		if r.Code == CodeRegionBudget && opts.Budget == 0 {
			enabled = false
		}
		if r.Code == CodeRepeatedInput && len(opts.Input) == 0 {
			enabled = false
		}
		cert.Rules = append(cert.Rules, RuleReport{
			Code:      r.Code,
			Condition: r.Condition,
			Enabled:   enabled,
			Findings:  findings[r.Code],
		})
	}

	// Flagged regions: the vulnerable intervals of crash-consistency
	// findings at warning severity and above, deduplicated and sorted.
	// Info-level findings (e.g. the untainted WN106 WAR that Clank repairs
	// with a forced checkpoint) stay out: the certified runtimes fix them
	// dynamically, so no injection campaign under those runtimes could
	// witness them — they are cost notes, not certificate holes.
	seen := map[Region]bool{}
	for _, d := range res.Diags {
		if d.RegionStart == 0 && d.RegionEnd == 0 {
			continue
		}
		if d.Severity < Warning {
			continue
		}
		// Forward-progress regions are livelock extents, not crash-
		// consistency holes: no injection campaign witnesses them as a
		// memory divergence, so they stay out of the flagged/proven split
		// and live in cert.Progress instead.
		if ConditionOf(d.Code) == CondForwardProgress {
			continue
		}
		r := Region{Code: d.Code, Start: d.RegionStart, End: d.RegionEnd}
		if !seen[r] {
			seen[r] = true
			cert.Flagged = append(cert.Flagged, r)
		}
	}
	sort.Slice(cert.Flagged, func(i, j int) bool {
		a, b := cert.Flagged[i], cert.Flagged[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Code < b.Code
	})

	// Proven regions: the complement of the flagged union over the image.
	imgEnd := mem.CodeBase + uint32(res.NumInstructions*isa.InstBytes)
	if res.NumInstructions > 0 {
		cur := uint32(mem.CodeBase)
		for _, f := range cert.Flagged {
			if f.Start > cur {
				cert.Proven = append(cert.Proven, Region{Start: cur, End: f.Start - isa.InstBytes})
			}
			if next := f.End + isa.InstBytes; next > cur {
				cur = next
			}
		}
		if cur < imgEnd {
			cert.Proven = append(cert.Proven, Region{Start: cur, End: imgEnd - isa.InstBytes})
		}
	}

	cert.Assumptions = []string{
		"registers boot to zero; SP is pinned to the top of SRAM",
		"BL may clobber every register; callee memory effects are not modeled",
		"accesses at statically unresolved addresses are covered only by the WN106 congruence rule",
		"NV data persists are word-atomic and immediately durable",
	}
	if len(opts.Input) == 0 {
		cert.Assumptions = append(cert.Assumptions, "no input locations declared: WN105 is vacuous")
	} else {
		cert.Assumptions = append(cert.Assumptions, "input locations advance monotonically across reboots and are never written by the program")
	}
	if opts.Progress && res.Progress != nil {
		cert.Progress = res.Progress
		cert.Assumptions = append(cert.Assumptions,
			"cycle costs are the static worst case: memoization hits are not discounted and every conditional branch pays the taken-branch pipeline refill")
		for _, lb := range res.Progress.Loops {
			if lb.Source == "annotated" {
				cert.Assumptions = append(cert.Assumptions,
					fmt.Sprintf("loop at %#08x: trip count assumed at most %d (.bound directive)", lb.Head, lb.Bound))
			}
		}
	}
	return cert
}
