package wncheck_test

import (
	"bytes"
	"sort"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

func verify(t *testing.T, src string, opts wncheck.Options) (*wncheck.Result, *wncheck.Certificate) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, cert, err := wncheck.Verify(p, opts)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return res, cert
}

func findCode(res *wncheck.Result, code string) *wncheck.Diagnostic {
	for i, d := range res.Diags {
		if d.Code == code {
			return &res.Diags[i]
		}
	}
	return nil
}

// WN105 fires only when input ranges are declared, and only on the second
// read of the same input word across a possible boundary.
func TestRepeatedInputRule(t *testing.T) {
	src := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	STR R1, [R0, #4]
	LDR R2, [R0, #0]
	STR R2, [R0, #8]
	HALT
`
	input := []wncheck.AddrRange{{Start: mem.DataBase, End: mem.DataBase + 4}}
	res := check(t, src, wncheck.Options{Crash: true, Input: input})
	d := findCode(res, wncheck.CodeRepeatedInput)
	if d == nil {
		t.Fatalf("want WN105, got %v", codes(res))
	}
	if d.Severity != wncheck.Error {
		t.Errorf("WN105 severity = %v, want error", d.Severity)
	}
	// The region spans first read (instruction 2, addr 0x8) to second
	// (instruction 4, addr 0x10).
	if d.RegionStart != 0x8 || d.RegionEnd != 0x10 {
		t.Errorf("WN105 region = [%#x, %#x], want [0x8, 0x10]", d.RegionStart, d.RegionEnd)
	}

	if res := check(t, src, wncheck.Options{Crash: true}); hasCode(res, wncheck.CodeRepeatedInput) {
		t.Errorf("WN105 without declared inputs: want none, got %v", codes(res))
	}
	single := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	STR R1, [R0, #4]
	STR R1, [R0, #8]
	HALT
`
	if res := check(t, single, wncheck.Options{Crash: true, Input: input}); hasCode(res, wncheck.CodeRepeatedInput) {
		t.Errorf("single input read: want no WN105, got %v", codes(res))
	}
}

// WN106 follows the congruent-address chain the constant propagator cannot
// resolve: tainted paths are errors, untainted info, and any redefinition of
// the address registers breaks the chain.
func TestWARCrossRule(t *testing.T) {
	tainted := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R9, [R0, #16]
	LDRX R2, [R0, R9]
	.amenable
	ADDI R2, R2, #5
	STRX R2, [R0, R9]
	HALT
`
	res := check(t, tainted, wncheck.Options{Crash: true})
	d := findCode(res, wncheck.CodeWARCross)
	if d == nil {
		t.Fatalf("want WN106, got %v", codes(res))
	}
	if d.Severity != wncheck.Error {
		t.Errorf("tainted WN106 severity = %v, want error", d.Severity)
	}
	// Region spans the LDRX (instruction 3, addr 0xc) to the STRX
	// (instruction 5, addr 0x14).
	if d.RegionStart != 0xc || d.RegionEnd != 0x14 {
		t.Errorf("WN106 region = [%#x, %#x], want [0xc, 0x14]", d.RegionStart, d.RegionEnd)
	}

	plain := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R9, [R0, #16]
	LDRX R2, [R0, R9]
	ADDI R2, R2, #5
	STRX R2, [R0, R9]
	HALT
`
	res = check(t, plain, wncheck.Options{Crash: true, Info: true})
	if d := findCode(res, wncheck.CodeWARCross); d == nil {
		t.Fatalf("untainted congruent WAR: want WN106 info, got %v", codes(res))
	} else if d.Severity != wncheck.Info {
		t.Errorf("untainted WN106 severity = %v, want info", d.Severity)
	}

	broken := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R9, [R0, #16]
	LDRX R2, [R0, R9]
	ADDI R9, R9, #4
	ADDI R2, R2, #5
	STRX R2, [R0, R9]
	HALT
`
	if res := check(t, broken, wncheck.Options{Crash: true, Info: true}); hasCode(res, wncheck.CodeWARCross) {
		t.Errorf("index redefined between load and store: want no WN106, got %v", codes(res))
	}
}

// WN107 intersects the armed interval's NV persists with the skim target's
// NV observes.
func TestCommitOrderRule(t *testing.T) {
	hazard := `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R4, #5
	SKM commit
	STR R4, [R0, #0]
commit:
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	STR R1, [R0, #12]
	HALT
`
	res := check(t, hazard, wncheck.Options{Crash: true})
	d := findCode(res, wncheck.CodeCommitOrder)
	if d == nil {
		t.Fatalf("want WN107, got %v", codes(res))
	}
	if d.Severity != wncheck.Error {
		t.Errorf("WN107 severity = %v, want error", d.Severity)
	}
	// Region spans the SKM (instruction 3, addr 0xc) to the target
	// (instruction 5, addr 0x14).
	if d.RegionStart != 0xc || d.RegionEnd != 0x14 {
		t.Errorf("WN107 region = [%#x, %#x], want [0xc, 0x14]", d.RegionStart, d.RegionEnd)
	}

	clean := `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R4, #5
	SKM commit
	STR R4, [R0, #8]
commit:
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	STR R1, [R0, #12]
	HALT
`
	if res := check(t, clean, wncheck.Options{Crash: true}); hasCode(res, wncheck.CodeCommitOrder) {
		t.Errorf("store not observed at target: want no WN107, got %v", codes(res))
	}
}

// WN108 needs the stored register's value to PROVABLY derive from a load of
// the same word; storing elsewhere, or storing a fresh value, is clean.
func TestNonIdempotentRule(t *testing.T) {
	rmw := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	ADDI R1, R1, #1
	STR R1, [R0, #0]
	HALT
`
	res := check(t, rmw, wncheck.Options{Crash: true})
	d := findCode(res, wncheck.CodeNonIdempotent)
	if d == nil {
		t.Fatalf("want WN108, got %v", codes(res))
	}
	if d.Severity != wncheck.Warning {
		t.Errorf("WN108 severity = %v, want warning", d.Severity)
	}
	if d.RegionStart != 0x8 || d.RegionEnd != 0x10 {
		t.Errorf("WN108 region = [%#x, %#x], want [0x8, 0x10]", d.RegionStart, d.RegionEnd)
	}

	privatized := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	ADDI R1, R1, #1
	STR R1, [R0, #4]
	HALT
`
	if res := check(t, privatized, wncheck.Options{Crash: true}); hasCode(res, wncheck.CodeNonIdempotent) {
		t.Errorf("store to a different word: want no WN108, got %v", codes(res))
	}
	fresh := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	MOVI R1, #7
	STR R1, [R0, #0]
	HALT
`
	if res := check(t, fresh, wncheck.Options{Crash: true}); hasCode(res, wncheck.CodeNonIdempotent) {
		t.Errorf("stored value does not derive from the load: want no WN108, got %v", codes(res))
	}
}

// Options.Only restricts region-carrying diagnostics to the listed codes.
func TestOnlyFilter(t *testing.T) {
	src := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	ADDI R1, R1, #1
	STR R1, [R0, #0]
	LDR R9, [R0, #16]
	LDRX R2, [R0, R9]
	.amenable
	ADDI R2, R2, #5
	STRX R2, [R0, R9]
	HALT
`
	res := check(t, src, wncheck.Options{Crash: true, Only: []string{wncheck.CodeWARCross}})
	if !hasCode(res, wncheck.CodeWARCross) {
		t.Fatalf("want WN106 under Only, got %v", codes(res))
	}
	if hasCode(res, wncheck.CodeNonIdempotent) {
		t.Errorf("Only=[WN106]: want WN108 suppressed, got %v", codes(res))
	}
}

// The certificate must round-trip through Encode/Decode byte-stably, and
// two independent Verify runs over the same source must produce identical
// bytes — the determinism contract CI and the cross-validator rely on.
func TestCertificateByteStable(t *testing.T) {
	src := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	ADDI R1, R1, #1
	STR R1, [R0, #0]
	LDR R9, [R0, #16]
	LDRX R2, [R0, R9]
	.amenable
	ADDI R2, R2, #5
	STRX R2, [R0, R9]
	HALT
`
	opts := wncheck.Options{Crash: true, Input: []wncheck.AddrRange{{Start: mem.DataBase + 16, End: mem.DataBase + 20}}}
	_, cert1 := verify(t, src, opts)
	_, cert2 := verify(t, src, opts)
	b1, err := cert1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cert2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two Verify runs differ:\n%s\n----\n%s", b1, b2)
	}

	dec, err := wncheck.DecodeCertificate(b1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatalf("certificate does not round-trip byte-stably:\n%s\n----\n%s", b1, b3)
	}

	if len(cert1.Flagged) == 0 {
		t.Fatal("expected flagged regions in the certificate")
	}
	if len(cert1.Proven) == 0 {
		t.Fatal("expected proven regions in the certificate")
	}
}

// Diagnostics come out sorted by (address, code): the determinism the
// double-run JSON diff in CI depends on.
func TestDiagnosticsSorted(t *testing.T) {
	src := `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	ADDI R1, R1, #1
	STR R1, [R0, #0]
	LDR R9, [R0, #16]
	LDRX R2, [R0, R9]
	.amenable
	ADDI R2, R2, #5
	STRX R2, [R0, R9]
	HALT
`
	res := check(t, src, wncheck.Options{Crash: true, Info: true})
	if len(res.Diags) < 2 {
		t.Fatalf("want several diagnostics, got %v", codes(res))
	}
	ordered := sort.SliceIsSorted(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Code < b.Code
	})
	if !ordered {
		t.Errorf("diagnostics not sorted by (addr, code): %v", codes(res))
	}
}

// Every diagnostic code the checker can emit has exactly one entry in the
// rule table, and the WN10x family all map to a formal condition.
func TestRuleTableComplete(t *testing.T) {
	seen := map[string]int{}
	for _, r := range wncheck.Rules() {
		seen[r.Code]++
		if r.Code < "WN200" && r.Condition == wncheck.CondEngineering {
			t.Errorf("%s is a crash-consistency rule but maps to %q", r.Code, r.Condition)
		}
	}
	for code, n := range seen {
		if n != 1 {
			t.Errorf("%s appears %d times in the rule table", code, n)
		}
	}
	for _, code := range []string{
		wncheck.CodeRepeatedInput, wncheck.CodeWARCross,
		wncheck.CodeCommitOrder, wncheck.CodeNonIdempotent,
	} {
		if seen[code] != 1 {
			t.Errorf("new rule %s missing from the rule table", code)
		}
		if c := wncheck.ConditionOf(code); c == wncheck.CondEngineering || c == "" {
			t.Errorf("ConditionOf(%s) = %q, want a formal condition", code, c)
		}
	}
}
