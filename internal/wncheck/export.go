package wncheck

import (
	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// CFGBlock is one basic block of an image's control-flow graph in address
// form: instructions [Start, End) at InstBytes granularity, plus the indices
// of the successor blocks in CFG.Blocks() order. Blocks are emitted in
// ascending address order, so block i covers the instructions between
// Blocks()[i].Start and Blocks()[i].End.
type CFGBlock struct {
	Start uint32 // address of the block's first instruction
	End   uint32 // one past the last instruction's address
	Succs []int  // successor block indices; empty for exits (HALT, BX, fault)
	// FallsOff marks a block whose fall-through leaves the decoded image.
	FallsOff bool
}

// CFG is the public form of the per-image control-flow graph the checker
// builds. It is the single source of block extents for every consumer: the
// static analyses derive it internally during Check, and the CPU's
// superblock translation backend requests it through ImageCFG so translated
// block boundaries can never drift from the verifier's.
type CFG struct {
	blocks []CFGBlock
}

// Blocks returns the basic blocks in ascending address order. The returned
// slice is owned by the CFG; callers must not mutate it.
func (g *CFG) Blocks() []CFGBlock { return g.blocks }

// BlockAt returns the index of the block containing the instruction at addr,
// or -1 if addr is outside the decoded image or misaligned.
func (g *CFG) BlockAt(addr uint32) int {
	if addr%isa.InstBytes != 0 {
		return -1
	}
	lo, hi := 0, len(g.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		switch b := g.blocks[mid]; {
		case addr < b.Start:
			hi = mid
		case addr >= b.End:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// ImageCFG decodes a raw program image and returns its control-flow graph:
// leaders at the entry, at every branch target, and after every terminator
// (branches, HALT, undecodable words), exactly as the checker's analyses see
// it. An empty image yields an empty CFG.
func ImageCFG(image []byte) *CFG {
	c := &checker{prog: &asm.Program{Image: image}}
	c.decode()
	c.buildCFG()
	return exportCFG(c)
}

// exportCFG converts the checker's internal block list to the public form.
func exportCFG(c *checker) *CFG {
	g := &CFG{}
	for _, b := range c.blocks {
		g.blocks = append(g.blocks, CFGBlock{
			Start:    mem.CodeBase + uint32(b.start*isa.InstBytes),
			End:      mem.CodeBase + uint32(b.end*isa.InstBytes),
			Succs:    append([]int(nil), b.succs...),
			FallsOff: b.fallsOff,
		})
	}
	return g
}
