package wncheck

import (
	"sort"
	"strings"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// Crash-consistency analysis (Options.Crash): the failure-atomicity tier on
// top of the single-run dataflow checks.
//
// The runtimes in internal/intermittent make non-volatile data
// failure-atomic between commit boundaries: Clank checkpoints ahead of
// idempotency-violating stores, the undo log rolls uncommitted NV writes
// back, and NVP never re-executes at all. Volatile SRAM enjoys no such
// boundary — mem.PowerLoss wipes it on every outage, register checkpoints
// do not cover it, and nothing restores it — so a value that crosses an
// instruction boundary through SRAM is corrupted by an outage at that
// boundary under every runtime model (WN103). The second hazard class is
// the skim-resume path: an outage while a skim point is armed restores
// registers from the checkpoint (Clank, undo log) or the interruption
// point (NVP) and then jumps to the skim target, so registers the target
// path consumes carry restore-time values, not the fall-through values
// (WN104).
//
// Both findings name the vulnerable interval (Diagnostic.RegionStart ..
// RegionEnd); internal/faultinject is the dynamic oracle that turns each
// into a witnessed divergence by killing power inside that interval.

// stepCrash extends the forward transfer function with volatile-crossing
// tracking. Called from step for every load/store whose effective address
// resolved statically, only when Options.Crash is set.
func (c *checker) stepCrash(s *dfState, idx int, in isa.Instruction, addr uint32, size int, check bool) {
	sramEnd := uint32(mem.SRAMBase) + uint32(c.opts.Mem.SRAMBytes)
	if addr < mem.SRAMBase || addr >= sramEnd {
		return
	}
	first, last := coveredWords(addr, size)
	if in.Op.IsStore() {
		if s.sramStores == nil {
			s.sramStores = map[uint32]int{}
		}
		for w := first; w <= last; w += 4 {
			if _, ok := s.sramStores[w]; !ok {
				s.sramStores[w] = idx
			}
		}
		return
	}
	if !check {
		return
	}
	for w := first; w <= last; w += 4 {
		if si, ok := s.sramStores[w]; ok {
			c.reportRegion(CodeVolatileCross, Error, idx,
				c.ins[si].addr, c.ins[idx].addr,
				"volatile SRAM word %#08x is written (%s) and read (%s) with a possible power failure in between; an outage wipes SRAM under every runtime — NVP resumes past the lost store, Clank/undo-log re-execution from a mid-interval checkpoint re-reads the wiped word — so this load observes zeros", w, c.siteRef(si), c.siteRef(idx))
		}
	}
}

// stepInput extends the forward transfer function with repeated-input
// tracking (WN105). Called from step for every load whose effective address
// resolved statically, only when Options.Crash is set and input locations
// are declared. The read set is never cleared — a skim point commits
// program state, not the external world, so a sampled input stays hazardous
// until the program halts.
func (c *checker) stepInput(s *dfState, idx int, addr uint32, size int, check bool) {
	first, last := coveredWords(addr, size)
	for w := first; w <= last; w += 4 {
		overlaps := false
		for _, r := range c.opts.Input {
			if r.Start < w+4 && r.End > w {
				overlaps = true
				break
			}
		}
		if !overlaps {
			continue
		}
		if prior, ok := s.inputReads[w]; ok {
			if check {
				c.reportRegion(CodeRepeatedInput, Error, idx,
					c.ins[prior].addr, c.ins[idx].addr,
					"input word %#08x is read (%s) and read again (%s) with a possible power failure in between; the external world advances across a reboot, so re-execution observes a different sample than an uninterrupted run — the final state can be consistent with no single world", w, c.siteRef(prior), c.siteRef(idx))
			}
			if idx < prior {
				s.inputReads[w] = idx
			}
		} else {
			if s.inputReads == nil {
				s.inputReads = map[uint32]int{}
			}
			s.inputReads[w] = idx
		}
	}
}

// reportRMW files the non-idempotent re-execution finding (WN108): the
// stored value derives from a load of the same non-volatile word. Warning,
// not error: Clank repairs the replay with a forced checkpoint and the undo
// log by rollback (both at a cost), but any runtime that replays without
// WAR detection double-applies the update.
func (c *checker) reportRMW(storeIdx int, p provVal, word uint32) {
	c.reportRegion(CodeNonIdempotent, Warning, storeIdx,
		c.ins[p.loadIdx].addr, c.ins[storeIdx].addr,
		"non-volatile word %#08x is stored with a value derived from its own prior value (loaded at %s) — a read-modify-write without privatization; re-executing the interval after a power failure double-applies the update under replay-based runtimes without WAR detection", word, c.siteRef(p.loadIdx))
}

// runCrash reports WN104: registers that are live at a skim-resume target
// and written while the skim is armed. The approximation is deliberate and
// one-sided in the direction the fault injector can witness: a register
// mutated after the SKM observably diverges (NVP resumes with the
// mid-flight value, Clank/undo-log restore a checkpoint predating the
// write), while registers untouched since before the arming hold the same
// value in every checkpoint the restore could load.
func (c *checker) runCrash() {
	if !c.opts.Crash || len(c.blocks) == 0 {
		return
	}
	for _, b := range c.blocks {
		if !b.reachable {
			continue
		}
		for i := b.start; i < b.end; i++ {
			ins := c.ins[i]
			if !ins.ok || ins.in.Op != isa.OpSkm {
				continue
			}
			c.checkSkimResume(i)
		}
	}
}

// checkSkimResume analyzes one reachable SKM instruction.
func (c *checker) checkSkimResume(idx int) {
	target := uint32(c.ins[idx].in.Imm)
	if target%isa.InstBytes != 0 || target < mem.CodeBase {
		return // WN213 already covers malformed targets
	}
	t := int(target-mem.CodeBase) / isa.InstBytes
	if t < 0 || t >= len(c.ins) {
		return
	}

	hazard := c.liveAtInstr(t)
	hazard &= c.writtenFrom(idx + 1)
	hazard.remove(isa.SP) // pinned at boot, identical in every checkpoint
	hazard.remove(isa.PC) // the restore path sets it to the target
	if hazard == 0 {
		return
	}

	var names []string
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if hazard.has(r) {
			names = append(names, r.String())
		}
	}
	c.reportRegion(CodeSkimStaleReg, Error, idx,
		c.ins[idx].addr, target,
		"skim restore jumps to %#08x with stale register state: %s live at the target and written while the skim is armed; after an outage Clank and the undo log restore checkpoint-time values and NVP resumes with interruption-time values, so the committed result differs from the fall-through path", target, strings.Join(names, ", "))
}

// runCommitOrder reports WN107: a non-volatile word written while a skim
// point is armed and read on the path from the skim target. In program
// order the write precedes the target's read, but an outage inside the
// armed interval resumes at the target without (or with only part of) the
// interval's writes, so the read observes a state the commit order forbids.
func (c *checker) runCommitOrder() {
	if !c.opts.Crash || len(c.blocks) == 0 {
		return
	}
	for _, b := range c.blocks {
		if !b.reachable {
			continue
		}
		for i := b.start; i < b.end; i++ {
			ins := c.ins[i]
			if !ins.ok || ins.in.Op != isa.OpSkm {
				continue
			}
			c.checkCommitOrder(i)
		}
	}
}

// checkCommitOrder analyzes one reachable SKM instruction.
func (c *checker) checkCommitOrder(idx int) {
	target := uint32(c.ins[idx].in.Imm)
	if target%isa.InstBytes != 0 || target < mem.CodeBase {
		return // WN213 already covers malformed targets
	}
	t := int(target-mem.CodeBase) / isa.InstBytes
	if t < 0 || t >= len(c.ins) {
		return
	}

	// Known-address NV stores inside the armed interval: from the SKM to
	// the target, stopping at re-arming skim points and control exits.
	stores := map[uint32]int{}
	c.walkFrom(idx+1, func(i int, s *dfState) bool {
		if i == t {
			return false
		}
		ins := c.ins[i]
		if !ins.ok {
			return false
		}
		switch ins.in.Op {
		case isa.OpSkm, isa.OpHalt, isa.OpBx:
			return false
		}
		if ins.in.Op.IsStore() {
			if addr, ok := s.effAddr(ins.in); ok && locClassOf(addr, c.opts.Mem, c.opts.Input) == ClassNV {
				first, last := coveredWords(addr, accessSize(ins.in.Op))
				for w := first; w <= last; w += 4 {
					if cur, ok := stores[w]; !ok || i < cur {
						stores[w] = i
					}
				}
			}
		}
		return true
	})
	if len(stores) == 0 {
		return
	}

	// Known-address NV loads observable from the target.
	reads := map[uint32]int{}
	c.walkFrom(t, func(i int, s *dfState) bool {
		ins := c.ins[i]
		if !ins.ok {
			return false
		}
		if ins.in.Op == isa.OpSkm {
			return false // a new armed interval; its commit is its own story
		}
		if ins.in.Op.IsLoad() {
			if addr, ok := s.effAddr(ins.in); ok && locClassOf(addr, c.opts.Mem, c.opts.Input) == ClassNV {
				first, last := coveredWords(addr, accessSize(ins.in.Op))
				for w := first; w <= last; w += 4 {
					if cur, ok := reads[w]; !ok || i < cur {
						reads[w] = i
					}
				}
			}
		}
		return true
	})

	var words []uint32
	for w := range stores {
		if _, ok := reads[w]; ok {
			words = append(words, w)
		}
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for _, w := range words {
		si, ri := stores[w], reads[w]
		c.reportRegion(CodeCommitOrder, Error, si,
			c.ins[idx].addr, target,
			"non-volatile word %#08x is written while the skim point at %s is armed and observed at the skim target (read at %s); an outage inside the armed interval resumes at %#08x with the interval's writes missing or partial, inverting the visible order relative to the commit point", w, c.siteRef(idx), c.siteRef(ri), target)
	}
}

// walkFrom drives visit over every instruction reachable from index `from`
// (inclusive), in abstract-state context: visit receives the forward state
// just before the instruction and returns false to stop the walk along that
// path. Mid-block entry points replay the block prefix from the converged
// block in-state to recover the state at the entry.
func (c *checker) walkFrom(from int, visit func(i int, s *dfState) bool) {
	if from < 0 || from >= len(c.ins) || c.inStates == nil {
		return
	}
	visited := make([]bool, len(c.ins))
	stack := []int{from}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[i] {
			continue
		}
		b := c.blocks[c.blockOf[i]]
		if !c.inStates[b.id].valid {
			continue
		}
		s := c.inStates[b.id].clone()
		for j := b.start; j < i; j++ {
			c.step(&s, j, false)
		}
		cont := true
		for j := i; j < b.end; j++ {
			if visited[j] {
				cont = false
				break
			}
			visited[j] = true
			if !visit(j, &s) {
				cont = false
				break
			}
			c.step(&s, j, false)
		}
		if cont {
			for _, succ := range b.succs {
				if si := c.blocks[succ].start; !visited[si] {
					stack = append(stack, si)
				}
			}
		}
	}
}

// writtenFrom returns the registers that may be written by any instruction
// reachable from index start (inclusive), following the CFG.
func (c *checker) writtenFrom(start int) regSet {
	if start >= len(c.ins) {
		return 0
	}
	var written regSet
	seenBlock := make([]bool, len(c.blocks))
	scan := func(from, to int) {
		for i := from; i < to; i++ {
			ins := c.ins[i]
			if !ins.ok {
				continue
			}
			if ins.in.Op == isa.OpBl {
				written = allRegs // the callee may clobber anything
				continue
			}
			if d, ok := defOf(ins.in); ok {
				written.add(d)
			}
		}
	}

	first := c.blocks[c.blockOf[start]]
	scan(start, first.end)
	stack := append([]int(nil), first.succs...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenBlock[id] {
			continue
		}
		seenBlock[id] = true
		b := c.blocks[id]
		scan(b.start, b.end)
		stack = append(stack, b.succs...)
	}
	return written
}

// liveAtInstr computes the registers live just before instruction idx:
// read before being written on some path from idx. Skim targets are not
// block leaders (SKM is not a branch), so the block-level solution is
// refined by walking the containing block backward to idx.
func (c *checker) liveAtInstr(idx int) regSet {
	c.ensureLiveness()
	b := c.blocks[c.blockOf[idx]]
	live := c.liveOut[b.id]
	if len(b.succs) == 0 && b.end > b.start {
		if last := c.ins[b.end-1]; last.ok && last.in.Op == isa.OpBx {
			live = allRegs
		}
	}
	for i := b.end - 1; i >= idx; i-- {
		live = stepLiveBack(live, c.ins[i])
	}
	return live
}

// stepLiveBack is the backward per-instruction liveness transfer.
func stepLiveBack(live regSet, ins instr) regSet {
	if !ins.ok {
		return live
	}
	if ins.in.Op == isa.OpBx {
		// Indirect branch: the continuation is unknown, assume everything
		// is live.
		live = allRegs
	}
	if d, ok := defOf(ins.in); ok {
		live.remove(d)
	}
	for _, u := range usesOf(ins.in) {
		live.add(u)
	}
	return live
}

// ensureLiveness computes the block-level liveness fixpoint once.
func (c *checker) ensureLiveness() {
	if c.liveDone {
		return
	}
	c.liveDone = true
	c.liveIn = make([]regSet, len(c.blocks))
	c.liveOut = make([]regSet, len(c.blocks))

	transfer := func(b *block, out regSet) regSet {
		live := out
		for i := b.end - 1; i >= b.start; i-- {
			live = stepLiveBack(live, c.ins[i])
		}
		return live
	}

	changed := true
	for changed {
		changed = false
		for id := len(c.blocks) - 1; id >= 0; id-- {
			b := c.blocks[id]
			var out regSet
			for _, s := range b.succs {
				out |= c.liveIn[s]
			}
			if len(b.succs) == 0 && b.end > b.start {
				if last := c.ins[b.end-1]; last.ok && last.in.Op == isa.OpBx {
					out = allRegs
				}
			}
			in := transfer(b, out)
			if in != c.liveIn[id] || out != c.liveOut[id] {
				c.liveIn[id], c.liveOut[id] = in, out
				changed = true
			}
		}
	}
}
