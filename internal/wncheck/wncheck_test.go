package wncheck_test

import (
	"strings"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/wncheck"
)

func check(t *testing.T, src string, opts wncheck.Options) *wncheck.Result {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := wncheck.Check(p, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return res
}

func codes(res *wncheck.Result) []string {
	var out []string
	for _, d := range res.Diags {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(res *wncheck.Result, code string) bool {
	for _, d := range res.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestCFGShape(t *testing.T) {
	res := check(t, `
	MOVI R0, #4
loop:
	SUBIS R0, R0, #1
	BNE loop
	HALT
`, wncheck.Options{})
	if res.NumInstructions != 4 {
		t.Errorf("instructions = %d, want 4", res.NumInstructions)
	}
	if res.NumBlocks != 3 {
		t.Errorf("blocks = %d, want 3", res.NumBlocks)
	}
	if res.NumLoops != 1 {
		t.Errorf("loops = %d, want 1", res.NumLoops)
	}
	if res.UnreachableIns != 0 {
		t.Errorf("unreachable = %d, want 0", res.UnreachableIns)
	}
	if len(res.Diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", codes(res))
	}
}

// The skim point closes the WAR interval: read, SKM, overwrite is clean.
func TestSkimClearsWARInterval(t *testing.T) {
	base := `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R2, #3
	LDR R1, [R0, #0]
	.amenable
	MUL_ASP8 R1, R2, #0
	%s
	STR R1, [R0, #0]
end:
	HALT
`
	hazard := check(t, strings.Replace(base, "%s", "", 1), wncheck.Options{})
	if !hasCode(hazard, wncheck.CodeWARAmenable) {
		t.Errorf("without SKM: want WN101, got %v", codes(hazard))
	}
	clean := check(t, strings.Replace(base, "%s", "SKM end", 1), wncheck.Options{})
	if hasCode(clean, wncheck.CodeWARAmenable) || hasCode(clean, wncheck.CodeWARPlain) {
		t.Errorf("with SKM: want no WAR diagnostics, got %v", codes(clean))
	}
}

// A WAR through a statically unknown pointer is not flagged: the checker
// only trusts addresses it can resolve.
func TestWARNeedsKnownAddress(t *testing.T) {
	res := check(t, `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R2, [R0, #64]   ; R2 = runtime pointer, unknown
	MOVI R3, #3
	LDR R1, [R2, #0]
	.amenable
	MUL_ASP8 R1, R3, #0
	STR R1, [R2, #0]
	HALT
`, wncheck.Options{})
	if hasCode(res, wncheck.CodeWARAmenable) || hasCode(res, wncheck.CodeWARPlain) {
		t.Errorf("want no WAR diagnostics through unknown pointer, got %v", codes(res))
	}
}

// A write that the forward analysis proves happened on every path masks the
// subsequent read from the WAR set (write-then-read-then-write is one
// hazard, not two).
func TestWrittenWordsMaskReads(t *testing.T) {
	res := check(t, `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R1, #7
	STR R1, [R0, #0]    ; word is written first
	LDR R2, [R0, #0]    ; this read is of our own write
	.amenable
	MUL_ASP8 R2, R1, #0
	STR R2, [R0, #0]
	HALT
`, wncheck.Options{})
	if hasCode(res, wncheck.CodeWARAmenable) || hasCode(res, wncheck.CodeWARPlain) {
		t.Errorf("want no WAR diagnostics after a dominating write, got %v", codes(res))
	}
}

func TestSkimPolicies(t *testing.T) {
	// An amenable loop with no skim anywhere.
	noSkim := `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R3, #3
	MOVI R4, #4
loop:
	LDRH R1, [R0, #0]
	.amenable
	MUL_ASP8 R1, R3, #0
	ADDI R0, R0, #2
	SUBIS R4, R4, #1
	BNE loop
	HALT
`
	if res := check(t, noSkim, wncheck.Options{Skim: wncheck.SkimAuto}); hasCode(res, wncheck.CodeSkimMissing) {
		t.Errorf("SkimAuto without SKM: want no WN211 (program never opted in), got %v", codes(res))
	}
	if res := check(t, noSkim, wncheck.Options{Skim: wncheck.SkimRequire}); !hasCode(res, wncheck.CodeSkimMissing) {
		t.Errorf("SkimRequire: want WN211, got %v", codes(res))
	}

	// An orphan skim point, policy off.
	orphan := `
	MOVI R0, #1
	SKM end
	ADDI R0, R0, #1
end:
	HALT
`
	if res := check(t, orphan, wncheck.Options{Skim: wncheck.SkimOff}); hasCode(res, wncheck.CodeSkimOrphan) {
		t.Errorf("SkimOff: want no WN212, got %v", codes(res))
	}
	if res := check(t, orphan, wncheck.Options{}); !hasCode(res, wncheck.CodeSkimOrphan) {
		t.Errorf("SkimAuto with orphan SKM: want WN212, got %v", codes(res))
	}
}

// The boot state pins SP to the top of SRAM, so stack accesses are bounds-
// checked statically: a store at [SP, #0] runs past the region.
func TestStackBoundsThroughKnownSP(t *testing.T) {
	res := check(t, `
	MOVI R1, #1
	STR R1, [SP, #-4]
	STR R1, [SP, #0]
	HALT
`, wncheck.Options{})
	var oob []int
	for _, d := range res.Diags {
		if d.Code == wncheck.CodeOOBAccess {
			oob = append(oob, d.Line)
		}
	}
	if len(oob) != 1 || oob[0] != 4 {
		t.Errorf("want exactly one WN403 at line 4, got %v (%v)", oob, codes(res))
	}
}

func TestInfoFindings(t *testing.T) {
	src := `
	MOVI R1, #1
	ADD R4, R2, R3
	HALT
`
	quiet := check(t, src, wncheck.Options{})
	if len(quiet.Diags) != 0 {
		t.Errorf("info off: want no diagnostics, got %v", codes(quiet))
	}
	loud := check(t, src, wncheck.Options{Info: true})
	if !hasCode(loud, wncheck.CodeDeadWrite) {
		t.Errorf("want WN901 for MOVI R1 (never read), got %v", codes(loud))
	}
	if !hasCode(loud, wncheck.CodeUninitRead) {
		t.Errorf("want WN902 for ADD reading boot values, got %v", codes(loud))
	}
}

func TestDisable(t *testing.T) {
	src := `
	MOVI R1, #5
	MOVI R2, #7
	MUL_ASP8 R1, R2, #4
	HALT
`
	if res := check(t, src, wncheck.Options{}); !hasCode(res, wncheck.CodeASPPosition) {
		t.Fatalf("want WN301, got %v", codes(res))
	}
	res := check(t, src, wncheck.Options{Disable: []string{wncheck.CodeASPPosition}})
	if hasCode(res, wncheck.CodeASPPosition) {
		t.Errorf("WN301 disabled but still reported: %v", codes(res))
	}
}

func TestSeverityHelpers(t *testing.T) {
	res := check(t, `
	MOVI R1, #5
	MOVI R2, #7
	MUL_ASP8 R1, R2, #4
	B skip
	MOVI R3, #1
skip:
	HALT
`, wncheck.Options{})
	if got := res.Count(wncheck.Error); got != 1 {
		t.Errorf("Count(Error) = %d, want 1", got)
	}
	if got := res.Count(wncheck.Warning); got != 2 {
		t.Errorf("Count(Warning) = %d, want 2 (WN301 + WN401)", got)
	}
	errs := res.Errors()
	if len(errs) != 1 || errs[0].Code != wncheck.CodeASPPosition {
		t.Errorf("Errors() = %v", errs)
	}
}

func TestMalformedInput(t *testing.T) {
	if _, err := wncheck.Check(nil, wncheck.Options{}); err == nil {
		t.Error("nil program: want error")
	}
	p := &asm.Program{Image: []byte{1, 2, 3}}
	if _, err := wncheck.Check(p, wncheck.Options{}); err == nil {
		t.Error("ragged image: want error")
	}
	// An empty image is well-formed and clean.
	res, err := wncheck.Check(&asm.Program{}, wncheck.Options{})
	if err != nil {
		t.Fatalf("empty image: %v", err)
	}
	if len(res.Diags) != 0 || res.NumInstructions != 0 {
		t.Errorf("empty image: diags=%v n=%d", codes(res), res.NumInstructions)
	}
}

// Diagnostics carry the address, index, line, and source text of the
// offending instruction.
func TestDiagnosticAnchoring(t *testing.T) {
	res := check(t, `
	MOVI R1, #5
	MOVI R2, #7
	MUL_ASP8 R1, R2, #4
	HALT
`, wncheck.Options{})
	if len(res.Diags) != 1 {
		t.Fatalf("want one diagnostic, got %v", codes(res))
	}
	d := res.Diags[0]
	if d.Index != 2 || d.Addr != 8 || d.Line != 4 {
		t.Errorf("anchor = index %d addr %#x line %d, want 2 0x8 4", d.Index, d.Addr, d.Line)
	}
	if !strings.Contains(d.Source, "MUL_ASP8") {
		t.Errorf("source = %q, want the MUL_ASP8 text", d.Source)
	}
	if !strings.Contains(d.String(), "WN301") {
		t.Errorf("String() = %q", d.String())
	}
	if got := d.Format("x.s"); !strings.HasPrefix(got, "x.s:4: WN301 error:") {
		t.Errorf("Format() = %q", got)
	}
}
