package wncheck

import (
	"fmt"

	"whatsnext/internal/isa"
)

// WN106: cross-checkpoint WAR at a congruent symbolic address — the
// reaching-definitions generalization of the WN101/WN102 region scan.
//
// The WN101/WN102 tracking keys the read-first set by statically-known
// effective addresses, so a WAR through an address that constant
// propagation cannot resolve (a base register loaded from memory, a
// data-dependent index) is invisible to it. This pass covers that hole
// symbolically: from each load whose effective address is unknown, follow
// every CFG path forward looking for a store through the *same address
// expression* — same base register, same index register or immediate —
// with neither register redefined in between. Under those conditions the
// two effective addresses are provably equal whatever they are, so the
// pair is a WAR on the same (unknown) location: the formal war-atomicity
// condition, free of the constant-address restriction.
//
// A path ends at a skim point (commit boundary: re-execution resumes past
// it), at a matching store (the write kills the read), at a redefinition of
// the base or index register (congruence lost), at a call (the callee may
// clobber anything), and at HALT/BX/illegal words. Amenable instructions on
// the path taint the pair exactly as in WN101: replaying anytime work on
// the overwritten value is not repairable by a checkpoint (error), while an
// untainted pair is repaired by Clank's forced checkpoint at a cost
// (info, the WN102 analogue).

// warCrossFrom follows read→write chains from the unknown-address load at
// loadIdx. Called from the checked forward replay, so each reachable load
// is analyzed exactly once.
func (c *checker) warCrossFrom(loadIdx int) {
	load := c.ins[loadIdx].in
	base := load.Rn
	hasRm := load.Op.HasRm()
	idxReg := load.Rm

	storeMatches := func(in isa.Instruction) bool {
		if !in.Op.IsStore() || in.Op.HasRm() != hasRm || in.Rn != base {
			return false
		}
		if hasRm {
			return in.Rm == idxReg
		}
		return in.Imm == load.Imm
	}
	clobbersAddr := func(in isa.Instruction) bool {
		if in.Op == isa.OpBl {
			return true
		}
		d, ok := defOf(in)
		if !ok {
			return false
		}
		return d == base || (hasRm && d == idxReg)
	}

	type node struct {
		idx   int
		taint bool
	}
	var visited [2][]bool
	visited[0] = make([]bool, len(c.ins))
	visited[1] = make([]bool, len(c.ins))
	stack := []node{{loadIdx + 1, false}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i, taint := n.idx, n.taint
		if i >= len(c.ins) {
			continue
		}
		ti := 0
		if taint {
			ti = 1
		}
		if visited[ti][i] {
			continue
		}
		visited[ti][i] = true

		ins := c.ins[i]
		if !ins.ok {
			continue
		}
		op := ins.in.Op
		if op == isa.OpSkm || op == isa.OpHalt {
			continue
		}
		if ins.amen {
			taint = true
		}
		if storeMatches(ins.in) {
			c.reportWARCross(loadIdx, i, taint)
			continue // the store kills the read along this path
		}
		if clobbersAddr(ins.in) {
			continue
		}

		b := c.blocks[c.blockOf[i]]
		if i == b.end-1 {
			for _, succ := range b.succs {
				stack = append(stack, node{c.blocks[succ].start, taint})
			}
		} else {
			stack = append(stack, node{i + 1, taint})
		}
	}
}

// addrExpr renders the shared address expression of a WN106 pair.
func (c *checker) addrExpr(loadIdx int) string {
	in := c.ins[loadIdx].in
	if in.Op.HasRm() {
		return fmt.Sprintf("[%s, %s]", in.Rn, in.Rm)
	}
	return fmt.Sprintf("[%s, #%d]", in.Rn, in.Imm)
}

func (c *checker) reportWARCross(loadIdx, storeIdx int, taint bool) {
	rs, re := c.ins[loadIdx].addr, c.ins[storeIdx].addr
	if re < rs {
		rs, re = re, rs
	}
	expr := c.addrExpr(loadIdx)
	if taint {
		c.reportRegion(CodeWARCross, Error, storeIdx, rs, re,
			"non-volatile location %s is read (%s), consumed by anytime work, and overwritten through the same address expression with no skim point or redefinition of the address registers in between; the addresses are equal whatever they resolve to, so replaying the interval after a power failure re-runs the anytime work on the overwritten value", expr, c.siteRef(loadIdx))
	} else {
		c.reportRegion(CodeWARCross, Info, storeIdx, rs, re,
			"non-volatile location %s is read (%s) and overwritten through the same address expression with no skim point in between; the addresses are equal whatever they resolve to — the same WAR the Clank runtime repairs with a forced checkpoint, at an address constant propagation cannot see", expr, c.siteRef(loadIdx))
	}
}
