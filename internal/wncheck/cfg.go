package wncheck

import (
	"sort"

	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// instr is one decoded image word with its static annotations.
type instr struct {
	addr uint32
	word uint32
	in   isa.Instruction
	ok   bool // word decodes to a valid instruction
	amen bool // marked .amenable by the assembler
}

// block is a basic block: instructions [start,end) with CFG edges.
type block struct {
	id         int
	start, end int
	succs      []int // successor block ids
	preds      []int
	fallsOff   bool // control can leave the image past the last instruction
	reachable  bool
}

// checker carries all per-run analysis state.
type checker struct {
	prog     *asm.Program
	opts     Options
	disabled map[string]bool
	only     map[string]bool

	ins      []instr
	blocks   []*block
	blockOf  []int // instruction index -> block id
	loops    []loopInfo
	numLoops int

	inStates []dfState // converged forward in-state per block

	// Block-level liveness, computed lazily (runLiveness and the crash
	// analysis share it).
	liveIn, liveOut []regSet
	liveDone        bool

	// progress is the forward-progress analysis outcome (runProgress),
	// nil unless Options.Progress.
	progress *ProgressInfo

	diags []Diagnostic
	seen  map[diagKey]int // (code, instruction) -> 1-based index into diags
}

func (c *checker) decode() {
	img := c.prog.Image
	n := len(img) / isa.InstBytes
	c.ins = make([]instr, n)
	amen := make(map[uint32]bool, len(c.prog.Amenable))
	for _, a := range c.prog.Amenable {
		amen[a] = true
	}
	for i := 0; i < n; i++ {
		off := i * isa.InstBytes
		w := uint32(img[off]) | uint32(img[off+1])<<8 | uint32(img[off+2])<<16 | uint32(img[off+3])<<24
		addr := mem.CodeBase + uint32(off)
		in, err := isa.Decode(isa.Word(w))
		c.ins[i] = instr{addr: addr, word: w, in: in, ok: err == nil, amen: amen[addr]}
	}
}

// endsBlock reports whether the instruction terminates a basic block.
func endsBlock(ins instr) bool {
	if !ins.ok {
		return true // a fault: control does not continue
	}
	switch {
	case ins.in.Op == isa.OpHalt:
		return true
	case ins.in.Op.IsBranch():
		return true
	}
	return false
}

// branchTargetIndex resolves a PC-relative branch to an instruction index,
// or -1 when the target is outside the image or misaligned.
func (c *checker) branchTargetIndex(idx int) int {
	in := c.ins[idx].in
	target := c.ins[idx].addr + uint32(in.Imm)
	if target%isa.InstBytes != 0 || target < mem.CodeBase {
		return -1
	}
	t := int(target-mem.CodeBase) / isa.InstBytes
	if t < 0 || t >= len(c.ins) {
		return -1
	}
	return t
}

func (c *checker) buildCFG() {
	n := len(c.ins)
	if n == 0 {
		return
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, ins := range c.ins {
		if !endsBlock(ins) {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		if !ins.ok || !ins.in.Op.IsBranch() || ins.in.Op == isa.OpBx {
			continue
		}
		if t := c.branchTargetIndex(i); t >= 0 {
			leader[t] = true
		}
	}

	c.blockOf = make([]int, n)
	for i := 0; i < n; i++ {
		if leader[i] {
			b := &block{id: len(c.blocks), start: i}
			c.blocks = append(c.blocks, b)
		}
		c.blockOf[i] = len(c.blocks) - 1
	}
	for _, b := range c.blocks {
		b.end = n
		if b.id+1 < len(c.blocks) {
			b.end = c.blocks[b.id+1].start
		}
	}

	addEdge := func(from *block, toIdx int) {
		to := c.blocks[c.blockOf[toIdx]]
		from.succs = append(from.succs, to.id)
		to.preds = append(to.preds, from.id)
	}
	for _, b := range c.blocks {
		last := c.ins[b.end-1]
		switch {
		case !last.ok:
			// Illegal instruction: execution faults, no successors.
		case last.in.Op == isa.OpHalt:
			// Terminal.
		case last.in.Op == isa.OpBx:
			// Indirect branch: target unknown, treated as an exit.
		case last.in.Op == isa.OpB:
			if t := c.branchTargetIndex(b.end - 1); t >= 0 {
				addEdge(b, t)
			}
		case last.in.Op.IsBranch():
			// Conditional branches and BL: target plus fall-through (a
			// call is assumed to return to the next instruction).
			if t := c.branchTargetIndex(b.end - 1); t >= 0 {
				addEdge(b, t)
			}
			if b.end < len(c.ins) {
				addEdge(b, b.end)
			} else {
				b.fallsOff = true
			}
		default:
			if b.end < len(c.ins) {
				addEdge(b, b.end)
			} else {
				b.fallsOff = true
			}
		}
	}
}

func (c *checker) markReachable() {
	if len(c.blocks) == 0 {
		return
	}
	var stack []int
	c.blocks[0].reachable = true
	stack = append(stack, 0)
	for len(stack) > 0 {
		b := c.blocks[stack[len(stack)-1]]
		stack = stack[:len(stack)-1]
		for _, s := range b.succs {
			if !c.blocks[s].reachable {
				c.blocks[s].reachable = true
				stack = append(stack, s)
			}
		}
	}
}

// loopInfo is one natural loop discovered from a DFS back edge.
type loopInfo struct {
	head   int   // block id of the loop header
	blocks []int // block ids in the loop body (including head)
}

// findLoops discovers back edges by DFS from the entry and derives the
// natural loop of each: the header plus every node that reaches the back
// edge source without passing through the header.
func (c *checker) findLoops() {
	c.loops = nil
	if len(c.blocks) == 0 {
		return
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(c.blocks))
	type backEdge struct{ from, to int }
	var backs []backEdge

	var dfs func(id int)
	dfs = func(id int) {
		color[id] = gray
		for _, s := range c.blocks[id].succs {
			switch color[s] {
			case white:
				dfs(s)
			case gray:
				backs = append(backs, backEdge{from: id, to: s})
			}
		}
		color[id] = black
	}
	dfs(0)

	heads := map[int]map[int]bool{} // header -> loop body set
	for _, be := range backs {
		body := heads[be.to]
		if body == nil {
			body = map[int]bool{be.to: true}
			heads[be.to] = body
		}
		// Walk predecessors back from the edge source, bounded by the header.
		stack := []int{be.from}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body[id] {
				continue
			}
			body[id] = true
			stack = append(stack, c.blocks[id].preds...)
		}
	}
	for head, body := range heads {
		l := loopInfo{head: head}
		for id := range body {
			l.blocks = append(l.blocks, id)
		}
		sort.Ints(l.blocks)
		c.loops = append(c.loops, l)
	}
	// heads is a map: fix the loop order (and with it downstream diagnostic
	// order) independent of map iteration.
	sort.Slice(c.loops, func(i, j int) bool { return c.loops[i].head < c.loops[j].head })
	c.numLoops = len(c.loops)
}

// reachesSkim reports whether any block reachable from start (inclusive)
// contains a decodable SKM instruction.
func (c *checker) reachesSkim(start int) bool {
	seen := make([]bool, len(c.blocks))
	stack := []int{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		b := c.blocks[id]
		for i := b.start; i < b.end; i++ {
			if c.ins[i].ok && c.ins[i].in.Op == isa.OpSkm {
				return true
			}
		}
		stack = append(stack, b.succs...)
	}
	return false
}

// hasSkim reports whether any reachable instruction is a SKM.
func (c *checker) hasSkim() bool {
	for _, b := range c.blocks {
		if !b.reachable {
			continue
		}
		for i := b.start; i < b.end; i++ {
			if c.ins[i].ok && c.ins[i].in.Op == isa.OpSkm {
				return true
			}
		}
	}
	return false
}
