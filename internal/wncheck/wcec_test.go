package wncheck_test

import (
	"bytes"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

func progressCheck(t *testing.T, src string, opts wncheck.Options) *wncheck.Result {
	t.Helper()
	opts.Progress = true
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := wncheck.Check(p, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Progress == nil {
		t.Fatal("Options.Progress set but Result.Progress is nil")
	}
	return res
}

func codesOf(res *wncheck.Result) map[string]int {
	out := map[string]int{}
	for _, d := range res.Diags {
		out[d.Code] += d.Count
	}
	return out
}

// A down-counted do-while in the compiler's idiom: the trip count is
// inferred by simulating SUBIS/BNE over the preheader constant.
func TestWCECInferredSubisLoop(t *testing.T) {
	res := progressCheck(t, `
		MOVI R0, #8
	loop:
		ADD R1, R1, R0
		SUBIS R0, R0, #1
		BNE loop
		HALT
	`, wncheck.Options{})
	p := res.Progress
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %+v, want one", p.Loops)
	}
	lb := p.Loops[0]
	if lb.Source != "inferred" || lb.Bound != 8 || lb.Boundary {
		t.Errorf("loop bound = %+v, want inferred 8 without boundary", lb)
	}
	if lb.Head != mem.CodeBase+1*isa.InstBytes {
		t.Errorf("loop head = %#x", lb.Head)
	}
	// MOVI(1) + 8*(ADD 1 + SUBIS 1 + BNE 1+1 refill) + HALT(1) = 34.
	if !p.TotalFinite || p.TotalWCEC != 34 {
		t.Errorf("total = %d (finite %v), want 34", p.TotalWCEC, p.TotalFinite)
	}
	if !p.RegionsFinite || p.MaxRegionWCEC != 34 {
		t.Errorf("max region = %d (finite %v), want 34", p.MaxRegionWCEC, p.RegionsFinite)
	}
	if n := codesOf(res)["WN201"] + codesOf(res)["WN203"]; n != 0 {
		t.Errorf("bounded loop raised progress diagnostics: %v", res.Diags)
	}
}

// An up-counted loop: ADDI then CMPI then a conditional branch.
func TestWCECInferredCmpiLoop(t *testing.T) {
	res := progressCheck(t, `
		MOVI R0, #0
	loop:
		ADD R1, R1, R0
		ADDI R0, R0, #1
		CMP R0, #10
		BLT loop
		HALT
	`, wncheck.Options{})
	p := res.Progress
	if len(p.Loops) != 1 || p.Loops[0].Source != "inferred" || p.Loops[0].Bound != 10 {
		t.Fatalf("loops = %+v, want one inferred bound of 10", p.Loops)
	}
	// MOVI(1) + 10*(ADD 1 + ADDI 1 + CMPI 1 + BLT 2) + HALT(1) = 52.
	if !p.TotalFinite || p.TotalWCEC != 52 {
		t.Errorf("total = %d (finite %v), want 52", p.TotalWCEC, p.TotalFinite)
	}
}

// A loop whose counter comes from memory is unprovable; a .bound directive
// caps it and the certificate records the assumption.
func TestWCECAnnotatedBound(t *testing.T) {
	src := `
		MOVI R1, #4096
		MOVTI R1, #2
		LDR R0, [R1]
	loop:
		.bound 16
		ADD R2, R2, R0
		SUBIS R0, R0, #1
		BNE loop
		HALT
	`
	res := progressCheck(t, src, wncheck.Options{})
	p := res.Progress
	if len(p.Loops) != 1 || p.Loops[0].Source != "annotated" || p.Loops[0].Bound != 16 {
		t.Fatalf("loops = %+v, want one annotated bound of 16", p.Loops)
	}
	if !p.TotalFinite || !p.RegionsFinite {
		t.Error("annotated loop should certify finite bounds")
	}
	// MOVI 1 + MOVTI 1 + LDR 2 + 16*(1+1+2) + HALT 1 = 69.
	if p.TotalWCEC != 69 {
		t.Errorf("total = %d, want 69", p.TotalWCEC)
	}
	if n := codesOf(res)["WN203"]; n != 0 {
		t.Errorf("annotated loop still raised WN203: %v", res.Diags)
	}

	// Without the annotation the same loop livelocks statically.
	pr, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	_, cert, err := wncheck.Verify(pr, wncheck.Options{Progress: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range cert.Assumptions {
		if a == "loop at 0x0000000c: trip count assumed at most 16 (.bound directive)" {
			found = true
		}
	}
	if !found {
		t.Errorf("certificate is missing the .bound assumption: %q", cert.Assumptions)
	}
}

// WN201: an unbounded loop with no commit boundary inside is a livelock,
// and the diagnostic carries the exact loop extent.
func TestWCECLivelockWN201(t *testing.T) {
	res := progressCheck(t, `
		MOVI R1, #4096
		MOVTI R1, #2
	loop:
		LDR R0, [R1]
		CMPI R0, #0
		BEQ loop
		HALT
	`, wncheck.Options{})
	var d *wncheck.Diagnostic
	for i := range res.Diags {
		if res.Diags[i].Code == wncheck.CodeLivelock {
			d = &res.Diags[i]
		}
	}
	if d == nil {
		t.Fatalf("no WN201 in %v", res.Diags)
	}
	if d.Severity != wncheck.Error {
		t.Errorf("WN201 severity = %v, want error", d.Severity)
	}
	wantLo := uint32(mem.CodeBase + 2*isa.InstBytes)
	wantHi := uint32(mem.CodeBase + 4*isa.InstBytes)
	if d.RegionStart != wantLo || d.RegionEnd != wantHi {
		t.Errorf("WN201 region = %#x..%#x, want %#x..%#x", d.RegionStart, d.RegionEnd, wantLo, wantHi)
	}
	p := res.Progress
	if p.RegionsFinite || p.TotalFinite {
		t.Errorf("livelocking program certified finite: %+v", p)
	}
	if len(p.Loops) != 1 || p.Loops[0].Source != "unbounded" {
		t.Errorf("loops = %+v", p.Loops)
	}
}

// WN203: when every iteration commits through a skim point, an unknown trip
// count only forfeits the total bound; the per-region bounds survive.
func TestWCECUnboundedButCommitting(t *testing.T) {
	res := progressCheck(t, `
		MOVI R1, #4096
		MOVTI R1, #2
	loop:
		.amenable
		MUL R2, R2, R2
		SKM after
		LDR R0, [R1]
		CMPI R0, #0
		BEQ loop
	after:
		HALT
	`, wncheck.Options{})
	codes := codesOf(res)
	if codes["WN203"] == 0 {
		t.Fatalf("want WN203, got %v", res.Diags)
	}
	if codes["WN201"] != 0 {
		t.Fatalf("committing loop flagged as livelock: %v", res.Diags)
	}
	p := res.Progress
	if !p.RegionsFinite {
		t.Errorf("regions should stay finite when every iteration commits: %+v", p)
	}
	if p.TotalFinite {
		t.Error("total should be unbounded without a trip bound")
	}
	if len(p.Loops) != 1 || !p.Loops[0].Boundary {
		t.Errorf("loops = %+v, want one with a boundary", p.Loops)
	}
}

// WN202: a region that cannot complete within the configured budget.
func TestWCECBudgetWN202(t *testing.T) {
	src := `
		MUL R1, R0, R0
		MUL R2, R1, R1
		MUL R3, R2, R2
		HALT
	`
	// 3 MULs at 16 cycles + HALT = 49 cycles total.
	res := progressCheck(t, src, wncheck.Options{Budget: 48})
	if codesOf(res)["WN202"] == 0 {
		t.Fatalf("want WN202 under a 48-cycle budget, got %v", res.Diags)
	}
	res = progressCheck(t, src, wncheck.Options{Budget: 49})
	if codesOf(res)["WN202"] != 0 {
		t.Fatalf("49-cycle budget should cover the program, got %v", res.Diags)
	}
	if res.Progress.MaxRegionWCEC != 49 {
		t.Errorf("max region = %d, want 49", res.Progress.MaxRegionWCEC)
	}
}

// Skim points split a straight-line program into separately budgeted regions.
func TestWCECSkimSplitsRegions(t *testing.T) {
	res := progressCheck(t, `
		MUL R1, R0, R0
	mid:
		SKM mid2
		MUL R2, R1, R1
	mid2:
		SKM end
		ADD R3, R2, R1
	end:
		HALT
	`, wncheck.Options{})
	p := res.Progress
	// Regions: entry..first SKM = 16+1 = 17; SKM..SKM = 16+1 = 17;
	// SKM..halt = 1+1 = 2. Total = 36.
	if !p.RegionsFinite || p.MaxRegionWCEC != 17 {
		t.Errorf("max region = %d (finite %v), want 17", p.MaxRegionWCEC, p.RegionsFinite)
	}
	if !p.TotalFinite || p.TotalWCEC != 36 {
		t.Errorf("total = %d, want 36", p.TotalWCEC)
	}
	if len(p.Regions) < 3 {
		t.Errorf("regions = %+v, want at least 3", p.Regions)
	}
}

// Satellite: findLoops coverage — nested loops collapse innermost-first and
// both trip counts multiply into the total.
func TestWCECNestedLoops(t *testing.T) {
	res := progressCheck(t, `
		MOVI R0, #3
	outer:
		MOVI R1, #4
	inner:
		ADD R2, R2, R1
		SUBIS R1, R1, #1
		BNE inner
		SUBIS R0, R0, #1
		BNE outer
		HALT
	`, wncheck.Options{})
	if res.NumLoops != 2 {
		t.Fatalf("NumLoops = %d, want 2", res.NumLoops)
	}
	p := res.Progress
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %+v, want 2", p.Loops)
	}
	// Sorted by head address: outer (head 0x04) before inner (head 0x08).
	if p.Loops[0].Bound != 3 || p.Loops[1].Bound != 4 {
		t.Errorf("bounds = %d, %d, want 3, 4", p.Loops[0].Bound, p.Loops[1].Bound)
	}
	// MOVI 1 + 3*(MOVI 1 + 4*(1+1+2) + SUBIS 1 + BNE 2) + HALT 1 = 62.
	if !p.TotalFinite || p.TotalWCEC != 62 {
		t.Errorf("total = %d (finite %v), want 62", p.TotalWCEC, p.TotalFinite)
	}
}

// Satellite: findLoops coverage — two back edges to one header merge into a
// single natural loop with two latches, which defeats trip inference.
func TestWCECSharedHeaderLoops(t *testing.T) {
	res := progressCheck(t, `
		MOVI R0, #10
	loop:
		SUBIS R0, R0, #1
		BEQ done
		CMPI R0, #5
		BNE loop
		B loop
	done:
		HALT
	`, wncheck.Options{})
	if res.NumLoops != 1 {
		t.Fatalf("NumLoops = %d, want 1 (shared header merges)", res.NumLoops)
	}
	p := res.Progress
	if len(p.Loops) != 1 || p.Loops[0].Source != "unbounded" {
		t.Fatalf("loops = %+v, want one unbounded", p.Loops)
	}
	if codesOf(res)["WN201"] == 0 {
		t.Errorf("multi-latch unbounded loop should raise WN201: %v", res.Diags)
	}
}

// Satellite: findLoops coverage — an irreducible CFG (a branch into the
// loop body) degrades conservatively instead of mis-certifying.
func TestWCECIrreducibleCFG(t *testing.T) {
	res := progressCheck(t, `
		MOVI R0, #1
		CMPI R0, #0
		BEQ b
	a:
		ADD R1, R1, R1
	b:
		SUB R1, R1, R0
		CMPI R1, #0
		BNE a
		HALT
	`, wncheck.Options{})
	if res.NumLoops == 0 {
		t.Fatal("irreducible corpus found no loops")
	}
	p := res.Progress
	if p.TotalFinite {
		t.Errorf("irreducible CFG must not certify a finite total: %+v", p)
	}
	codes := codesOf(res)
	if codes["WN201"]+codes["WN203"] == 0 {
		t.Errorf("irreducible CFG raised no progress diagnostics: %v", res.Diags)
	}
}

// A rotated loop whose latch has no conditional branch (it falls through to
// the header) is outside the idiom and must not be mis-inferred.
func TestWCECRotatedLoopNotInferred(t *testing.T) {
	res := progressCheck(t, `
		MOVI R0, #4
		B mid
	loop:
		ADD R1, R1, R0
	mid:
		SUBIS R0, R0, #1
		BNE loop
		HALT
	`, wncheck.Options{})
	p := res.Progress
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %+v", p.Loops)
	}
	if p.Loops[0].Source == "inferred" {
		t.Errorf("rotated loop must not be inferred: %+v", p.Loops[0])
	}
}

// Certificates carrying progress info must encode byte-identically across
// two independent runs.
func TestWCECCertificateByteStable(t *testing.T) {
	src := `
		MOVI R0, #6
	loop:
		.bound 32
		MUL R1, R0, R0
		SKM cont
	cont:
		SUBIS R0, R0, #1
		BNE loop
		HALT
	`
	encode := func() []byte {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		_, cert, err := wncheck.Verify(p, wncheck.Options{Progress: true, Budget: 1 << 20, Crash: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cert.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Errorf("certificate encoding is not byte-stable:\n%s\nvs\n%s", a, b)
	}
	cert, err := wncheck.DecodeCertificate(a)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Progress == nil || !cert.Progress.RegionsFinite {
		t.Errorf("round-tripped certificate lost progress info: %+v", cert.Progress)
	}
	if cert.Progress.Budget != 1<<20 {
		t.Errorf("budget = %d", cert.Progress.Budget)
	}
}

// The WN202 rule must report as disabled without a budget and enabled with
// one; WN201/WN203 report as enabled exactly under Options.Progress.
func TestWCECRuleGating(t *testing.T) {
	p, err := asm.Assemble("HALT")
	if err != nil {
		t.Fatal(err)
	}
	enabled := func(opts wncheck.Options) map[string]bool {
		_, cert, err := wncheck.Verify(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, r := range cert.Rules {
			out[r.Code] = r.Enabled
		}
		return out
	}
	off := enabled(wncheck.Options{})
	if off["WN201"] || off["WN202"] || off["WN203"] {
		t.Errorf("progress rules enabled without Options.Progress: %v", off)
	}
	on := enabled(wncheck.Options{Progress: true})
	if !on["WN201"] || !on["WN203"] || on["WN202"] {
		t.Errorf("progress on, no budget: %v", on)
	}
	budget := enabled(wncheck.Options{Progress: true, Budget: 1000})
	if !budget["WN202"] {
		t.Errorf("WN202 disabled despite budget: %v", budget)
	}
}

// Forward-progress regions must not leak into the crash-consistency
// flagged/proven split consumed by the fault-injection oracle.
func TestWCECRegionsStayOutOfFlagged(t *testing.T) {
	p, err := asm.Assemble(`
		MOVI R1, #4096
		MOVTI R1, #2
	loop:
		LDR R0, [R1]
		CMPI R0, #0
		BEQ loop
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, cert, err := wncheck.Verify(p, wncheck.Options{Progress: true})
	if err != nil {
		t.Fatal(err)
	}
	has201 := false
	for _, d := range res.Diags {
		if d.Code == wncheck.CodeLivelock {
			has201 = true
		}
	}
	if !has201 {
		t.Fatal("expected WN201")
	}
	for _, f := range cert.Flagged {
		if f.Code == wncheck.CodeLivelock {
			t.Errorf("WN201 region leaked into flagged_regions: %+v", f)
		}
	}
}
