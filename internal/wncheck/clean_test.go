package wncheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/compiler"
	"whatsnext/internal/nn"
	"whatsnext/internal/wncheck"
	"whatsnext/internal/workloads"
)

// TestBenchmarksClean compiles the six Table I benchmarks in every mode the
// experiments exercise and asserts the verifier finds nothing at warning
// severity or above. Compile itself already fails on error-severity
// findings (the post-emit hook), so this test tightens that to warnings.
func TestBenchmarksClean(t *testing.T) {
	for _, b := range workloads.All() {
		variants := []compiler.Options{
			{Mode: compiler.ModePrecise},
			{Mode: b.Mode},
			{Mode: b.Mode, NoSkim: true},
		}
		if b.Mode == compiler.ModeSWP {
			variants = append(variants, compiler.Options{Mode: compiler.ModeSWP, VectorLoads: true})
		}
		for _, opts := range variants {
			k := b.Build(b.ScaledParams(), 8, true)
			c, err := compiler.Compile(k, opts)
			if err != nil {
				// A variant can be inapplicable at the scaled size (lane or
				// width mismatch); only verifier findings are failures.
				if strings.Contains(err.Error(), "static verification") {
					t.Errorf("%s %+v: %v", b.Name, opts, err)
				}
				continue
			}
			res, err := wncheck.Check(c.Program, wncheck.Options{})
			if err != nil {
				t.Errorf("%s %+v: check: %v", b.Name, opts, err)
				continue
			}
			if n := res.Count(wncheck.Warning); n > 0 {
				t.Errorf("%s %+v: %d diagnostics on generated code:", b.Name, opts, n)
				for _, d := range res.Diags {
					t.Errorf("  %s", d)
				}
			}
		}
	}
}

// TestNNKernelsClean extends the clean sweep to the NN inference family:
// every emitted NN image — precise and anytime, with and without the
// progress-embedding lowering, including the single-pass truncated builds
// the accuracy-vs-energy study sweeps — must carry zero warning-severity
// findings. The progress-embedded images include the resume-scan prologue,
// so this pins its crash-consistency cleanliness statically.
func TestNNKernelsClean(t *testing.T) {
	for _, b := range nn.All() {
		variants := []compiler.Options{
			{Mode: compiler.ModePrecise},
			{Mode: compiler.ModePrecise, ProgressEmbed: true},
		}
		if b.Mode != compiler.ModePrecise {
			variants = append(variants,
				compiler.Options{Mode: b.Mode},
				compiler.Options{Mode: b.Mode, ProgressEmbed: true},
				compiler.Options{Mode: b.Mode, ProgressEmbed: true, MaxPasses: 1},
			)
		}
		for _, bits := range []int{8, 4, 2} {
			for _, opts := range variants {
				k := b.Build(b.ScaledParams(), bits, true)
				c, err := compiler.Compile(k, opts)
				if err != nil {
					t.Errorf("%s bits=%d %+v: %v", b.Name, bits, opts, err)
					continue
				}
				res, err := wncheck.Check(c.Program, wncheck.Options{})
				if err != nil {
					t.Errorf("%s bits=%d %+v: check: %v", b.Name, bits, opts, err)
					continue
				}
				if n := res.Count(wncheck.Warning); n > 0 {
					t.Errorf("%s bits=%d %+v: %d diagnostics on generated code:", b.Name, bits, opts, n)
					for _, d := range res.Diags {
						t.Errorf("  %s", d)
					}
				}
			}
		}
	}
}

// TestHandWrittenProgramsClean lints the repository's hand-written example
// programs, which double as documentation and must stay clean.
func TestHandWrittenProgramsClean(t *testing.T) {
	files, err := filepath.Glob("../asm/testdata/*.s")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no programs under ../asm/testdata")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := asm.AssembleNamed(file, string(src))
		if err != nil {
			t.Fatalf("%s: assemble: %v", file, err)
		}
		res, err := wncheck.Check(p, wncheck.Options{})
		if err != nil {
			t.Fatalf("%s: check: %v", file, err)
		}
		if n := res.Count(wncheck.Warning); n > 0 {
			t.Errorf("%s: %d diagnostics:", file, n)
			for _, d := range res.Diags {
				t.Errorf("  %s", d.Format(file))
			}
		}
	}
}
