package wncheck_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/wncheck"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden assembles every seeded-violation program in testdata and
// compares the verifier's rendered diagnostics — including exact codes and
// line numbers — against the matching .golden file.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/*.s")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.s files")
	}
	sort.Strings(files)
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p, err := asm.AssembleNamed(file, string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			res, err := wncheck.Check(p, wncheck.Options{Info: true})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			var b strings.Builder
			for _, d := range res.Diags {
				b.WriteString(d.Format(file))
				b.WriteByte('\n')
			}
			got := b.String()

			goldenFile := strings.TrimSuffix(file, ".s") + ".golden"
			if *update {
				if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenFile)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenSeedsDetected guards the golden corpus itself: every seeded file
// must produce at least one warning-or-worse diagnostic, and the family each
// file is named for must be among them.
func TestGoldenSeedsDetected(t *testing.T) {
	wantCode := map[string]string{
		"war_hazard.s":  wncheck.CodeWARAmenable,
		"skm_missing.s": wncheck.CodeSkimMissing,
		"skm_orphan.s":  wncheck.CodeSkimOrphan,
		"asp_width.s":   wncheck.CodeASPPosition,
		"bad_flow.s":    wncheck.CodeBranchRange,
	}
	for name, code := range wantCode {
		file := filepath.Join("testdata", name)
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := asm.AssembleNamed(file, string(src))
		if err != nil {
			t.Fatalf("%s: assemble: %v", name, err)
		}
		res, err := wncheck.Check(p, wncheck.Options{})
		if err != nil {
			t.Fatalf("%s: check: %v", name, err)
		}
		if res.Count(wncheck.Warning) == 0 {
			t.Errorf("%s: no warning-or-worse diagnostics", name)
		}
		found := false
		for _, d := range res.Diags {
			if d.Code == code {
				found = true
				if d.Line <= 0 {
					t.Errorf("%s: %s diagnostic has no source line", name, code)
				}
			}
		}
		if !found {
			t.Errorf("%s: expected a %s diagnostic, got %v", name, code, res.Diags)
		}
	}
}
