// Package wncheck is a static verifier for assembled WN programs.
//
// It decodes a program image back into instructions, builds a basic-block
// control-flow graph, and runs three dataflow analyses over it:
//
//   - a forward abstract interpretation that propagates register constants,
//     the set of non-volatile words read since the last skim point, and
//     whether a skim target is armed on every path;
//   - reaching definitions (forward, may), used to flag reads of registers
//     that may never have been written;
//   - liveness (backward, may), used to flag register writes whose value is
//     never read.
//
// On top of those it checks the intermittency-safety and ISA invariants the
// What's Next architecture relies on:
//
//	WN101  WAR hazard through anytime code: a non-volatile data word is
//	       read, consumed by an amenable (anytime) instruction, and then
//	       overwritten with no skim point in between. Replaying the
//	       interval after a power failure re-runs the anytime work on the
//	       overwritten value, so the interval is not idempotent in value —
//	       a Clank checkpoint cannot repair it (the Alpaca WAR condition).
//	WN102  A WAR with no intervening anytime work — for example the
//	       compiler's cross-pass commit idiom LDR X; ADD; STR X; SKM. The
//	       Clank runtime forces a checkpoint before the store, which makes
//	       it safe at the cost of one checkpoint (info).
//	WN103  Volatile state crossing a possible power failure (crash
//	       analysis, Options.Crash): a volatile SRAM word is written and
//	       later read with at least one instruction boundary in between.
//	       An outage at that boundary wipes SRAM under every runtime —
//	       NVP resumes past the lost store, and Clank/undo-log
//	       re-execution from a mid-interval checkpoint re-reads the wiped
//	       word — so the read observes zeros instead of the stored value.
//	WN104  Stale registers on the skim-resume path (crash analysis): a
//	       register is live at a skim target and written while the skim
//	       is armed. After an outage the restore path jumps to the target
//	       with checkpoint-time (Clank, undo log) or interruption-time
//	       (NVP) register values, not the fall-through values, so the
//	       committed result differs from any uninterrupted execution.
//	WN105  Repeated input operation (crash analysis, requires declared
//	       Options.Input ranges): an input (sensor/IO) location is read
//	       on both sides of a possible power failure. The external world
//	       advances across the reboot, so re-execution observes a
//	       different sample than the first run did; if both samples flow
//	       into non-volatile results, the final state is consistent with
//	       no single uninterrupted execution.
//	WN106  Cross-checkpoint WAR at a congruent symbolic address (crash
//	       analysis): the reaching-defs generalization of WN101/WN102.
//	       A load whose effective address is not statically known is
//	       followed — possibly across basic-block boundaries — by a
//	       store through the same base/index registers and offset with
//	       neither register redefined on the path and no skim point in
//	       between: the same WAR hazard as WN101/WN102, at an address
//	       constant propagation cannot see.
//	WN107  Commit-ordering violation (crash analysis): a non-volatile
//	       word is written while a skim point is armed and read on the
//	       path from the skim target. The write is ordered after the
//	       commit point in program terms, but an outage inside the armed
//	       interval makes the resume path observe the partially-executed
//	       interval's value (or the pre-interval value), inverting the
//	       visible order relative to the commit.
//	WN108  Non-idempotent re-execution (crash analysis, warning): a
//	       non-volatile word is stored with a value derived from a load
//	       of the same word (read-modify-write without privatization).
//	       Re-executing the interval double-applies the update under any
//	       runtime that replays without WAR detection; Clank repairs it
//	       with a forced checkpoint and the undo log by rollback, both
//	       at a cost.
//	WN201  Livelock (forward-progress analysis, Options.Progress): a loop
//	       with no skim point inside and no finite trip bound — neither
//	       inferred from the constant lattice nor annotated with .bound.
//	       No finite cycle budget covers the region, so under intermittent
//	       power the program can re-execute forever without committing.
//	WN202  Region worst-case cycle count exceeds the configured cycle
//	       budget (forward-progress analysis, requires Options.Budget):
//	       the code between two consecutive commit boundaries cannot
//	       complete on one capacitor charge, so the region livelocks on
//	       the configured device.
//	WN203  Unprovable loop bound (forward-progress analysis, warning):
//	       the loop's trip count cannot be inferred and carries no .bound
//	       annotation. Per-region bounds survive when every iteration
//	       commits, but the program's total WCEC is unbounded.
//	WN211  A loop containing amenable instructions has no skim point armed
//	       on entry and none reachable from the loop.
//	WN212  A skim point that is not reachable from any amenable
//	       instruction: there is no anytime result for it to commit.
//	WN213  A skim target outside the image, misaligned, or not past the
//	       skim instruction itself.
//	WN301  A MUL_ASP subword position that shifts the product out of the
//	       32-bit result (bits*pos must stay below 32).
//	WN302  A reachable word that does not decode to a WN instruction.
//	WN303  A misaligned data access at a statically known address (packed
//	       subword-major planes are word-aligned by the layout engine, so
//	       plane accesses must stay aligned).
//	WN304  An anytime (ASP/ASV) instruction operating on SP, LR or PC.
//	WN401  Unreachable code (warning).
//	WN402  A branch whose target lies outside the image or between
//	       instructions.
//	WN403  A load or store at a statically known address that no memory
//	       region maps.
//	WN404  A store into instruction memory (warning).
//	WN405  Execution can run off the end of the image.
//	WN901  A register write whose value is never read (info).
//	WN902  A register read that may precede any write (info).
//
// The WN10x family is the crash-consistency (failure-atomicity) analysis.
// Non-volatile data is failure-atomic between commit boundaries — skim
// points and the runtime's checkpoints — and WN101/WN102 police writes that
// break re-execution within such a region. Volatile SRAM has no commit
// boundary at all (every runtime wipes it on an outage and nothing restores
// it), so any value that crosses an instruction boundary through SRAM is a
// hazard (WN103); likewise registers that reach a skim-resume target carry
// restore-time rather than fall-through values (WN104). WN103/WN104 run
// only when Options.Crash is set; internal/faultinject is the dynamic
// oracle that witnesses each of these hazards as a real memory divergence.
//
// Severities: errors break the build (the compiler's post-emit hook and
// wnlint both fail on them), warnings fail wnlint only, info diagnostics are
// reported only when Options.Info is set.
package wncheck

import (
	"fmt"
	"sort"

	"whatsnext/internal/asm"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

// Severity ranks a diagnostic.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic codes, grouped by family.
const (
	CodeWARAmenable   = "WN101" // WAR hazard through anytime work
	CodeWARPlain      = "WN102" // WAR handled by a forced Clank checkpoint
	CodeVolatileCross = "WN103" // volatile SRAM value crossing a possible power failure
	CodeSkimStaleReg  = "WN104" // stale register live at a skim-resume target
	CodeRepeatedInput = "WN105" // input location read on both sides of a possible reboot
	CodeWARCross      = "WN106" // cross-block WAR at a congruent symbolic address
	CodeCommitOrder   = "WN107" // NV write inside an armed skim interval observed at the target
	CodeNonIdempotent = "WN108" // NV read-modify-write without privatization
	CodeLivelock      = "WN201" // unbounded loop with no commit boundary inside
	CodeRegionBudget  = "WN202" // region WCEC exceeds the cycle budget
	CodeLoopBound     = "WN203" // unprovable loop bound, needs .bound
	CodeSkimMissing   = "WN211" // amenable loop with no skim coverage
	CodeSkimOrphan    = "WN212" // skim point no anytime work reaches
	CodeSkimTarget    = "WN213" // invalid skim target
	CodeASPPosition   = "WN301" // MUL_ASP position overflows the result
	CodeIllegalOp     = "WN302" // reachable word does not decode
	CodeMisaligned    = "WN303" // misaligned access at known address
	CodeAnytimeReg    = "WN304" // ASP/ASV on SP/LR/PC
	CodeUnreachable   = "WN401" // unreachable block
	CodeBranchRange   = "WN402" // branch target outside the image
	CodeOOBAccess     = "WN403" // access outside every memory region
	CodeCodeWrite     = "WN404" // store into instruction memory
	CodeMissingHalt   = "WN405" // execution runs off the image end
	CodeDeadWrite     = "WN901" // register write never read
	CodeUninitRead    = "WN902" // register read before any write
)

// Diagnostic is one finding, anchored to an instruction.
type Diagnostic struct {
	Code     string
	Severity Severity
	Addr     uint32 // absolute address of the instruction
	Index    int    // instruction index within the image
	Line     int    // 1-based source line, 0 when no line table is available
	Source   string // source text of the instruction, when available
	Msg      string

	// Count is how many hazards collapsed into this diagnostic: repeated
	// reports at the same (code, instruction) pair — a loop body reached
	// along several paths, a load covering several hazardous words — bump
	// the count instead of repeating the finding.
	Count int

	// RegionStart and RegionEnd delimit the vulnerable code interval of a
	// crash-consistency finding (WN103: store..load, WN104: skim..target),
	// as absolute instruction addresses. Both zero when not applicable.
	RegionStart, RegionEnd uint32
}

// occurrences renders the collapsed-report suffix.
func (d Diagnostic) occurrences() string {
	if d.Count > 1 {
		return fmt.Sprintf(" (%d occurrences)", d.Count)
	}
	return ""
}

func (d Diagnostic) String() string {
	at := fmt.Sprintf("%#08x", d.Addr)
	if d.Line > 0 {
		at = fmt.Sprintf("line %d", d.Line)
	}
	return fmt.Sprintf("%s %s at %s: %s%s", d.Code, d.Severity, at, d.Msg, d.occurrences())
}

// Format renders a diagnostic in file:line: form for tool output.
func (d Diagnostic) Format(file string) string {
	if file == "" {
		file = "<image>"
	}
	loc := fmt.Sprintf("%s:%#08x", file, d.Addr)
	if d.Line > 0 {
		loc = fmt.Sprintf("%s:%d", file, d.Line)
	}
	return fmt.Sprintf("%s: %s %s: %s%s", loc, d.Code, d.Severity, d.Msg, d.occurrences())
}

// SkimPolicy controls the skim-placement checks (WN211, WN212), which only
// make sense for programs that opted into skim protection.
type SkimPolicy int

const (
	// SkimAuto enables the placement checks iff the image contains at
	// least one reachable SKM instruction.
	SkimAuto SkimPolicy = iota
	// SkimRequire always runs the placement checks.
	SkimRequire
	// SkimOff disables them.
	SkimOff
)

// Options configures a verification run.
type Options struct {
	// Mem supplies the region sizes used for bounds checks. The zero value
	// selects mem.DefaultConfig().
	Mem mem.Config
	// Skim selects the skim-placement policy; default SkimAuto.
	Skim SkimPolicy
	// Info includes the info-severity dataflow findings (WN901, WN902).
	Info bool
	// Crash enables the crash-consistency analysis (WN103–WN108): state
	// that a power failure at an arbitrary instruction boundary would
	// corrupt under the intermittent runtimes. Off by default because raw
	// single-run programs need not be outage-safe; the compiler's post-emit
	// hook and wnlint -crash turn it on.
	Crash bool
	// Input declares input (sensor/IO) address ranges for the repeated-
	// input rule (WN105). Empty means no input locations: the rule is
	// vacuously satisfied.
	Input []AddrRange
	// Progress enables the forward-progress / WCEC analysis (WN201–WN203)
	// and populates Result.Progress: loop trip bounds from the constant
	// lattice and .bound annotations, and per-region worst-case cycle
	// counts between commit boundaries.
	Progress bool
	// Budget, when nonzero (with Progress set), is the per-charge cycle
	// budget every commit-to-commit region is checked against (WN202).
	// Zero disables the budget check.
	Budget uint64
	// Disable suppresses the listed diagnostic codes.
	Disable []string
	// Only, when non-empty, restricts reporting to the listed codes.
	Only []string
}

// Result is the outcome of a verification run.
type Result struct {
	Diags []Diagnostic

	// Progress carries the forward-progress analysis outcome; nil unless
	// Options.Progress was set.
	Progress *ProgressInfo

	// Analysis statistics, for observability and tests.
	NumInstructions int
	NumBlocks       int
	NumLoops        int
	UnreachableIns  int
}

// Count returns the number of diagnostics at or above the severity.
func (r *Result) Count(min Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// Errors returns the error-severity diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Check verifies an assembled program. It returns an error only for
// malformed input (image length not a multiple of the instruction size);
// findings about the program itself are diagnostics in the Result.
func Check(p *asm.Program, opts Options) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("wncheck: nil program")
	}
	if len(p.Image)%isa.InstBytes != 0 {
		return nil, fmt.Errorf("wncheck: image length %d is not a multiple of %d", len(p.Image), isa.InstBytes)
	}
	if opts.Mem == (mem.Config{}) {
		opts.Mem = mem.DefaultConfig()
	}

	c := &checker{
		prog:     p,
		opts:     opts,
		disabled: make(map[string]bool, len(opts.Disable)),
		only:     make(map[string]bool, len(opts.Only)),
		seen:     make(map[diagKey]int),
	}
	for _, code := range opts.Disable {
		c.disabled[code] = true
	}
	for _, code := range opts.Only {
		c.only[code] = true
	}

	c.decode()
	c.buildCFG()
	c.markReachable()
	c.findLoops()

	c.runForward()     // constants, read sets, skim arming + WN1xx/2xx/3xx/4xx
	c.runProgress()    // loop bounds + per-region WCEC (WN201–WN203)
	c.checkBlocks()    // unreachable code, fall-off-the-end, loop coverage
	c.runCrash()       // WN104 (WN103/WN105/WN106/WN108 piggyback on the forward pass)
	c.runCommitOrder() // WN107
	c.runLiveness()    // WN901
	c.runReaching()    // WN902

	res := &Result{
		Diags:           c.diags,
		Progress:        c.progress,
		NumInstructions: len(c.ins),
		NumBlocks:       len(c.blocks),
		NumLoops:        c.numLoops,
	}
	for _, b := range c.blocks {
		if !b.reachable {
			res.UnreachableIns += b.end - b.start
		}
	}
	// Sort by (Addr, Code): the anchor address is derived from the index, so
	// this is a total, run-independent order — together with the (code,
	// instruction) dedup in report it makes encoded output byte-stable.
	sort.SliceStable(res.Diags, func(i, j int) bool {
		if res.Diags[i].Addr != res.Diags[j].Addr {
			return res.Diags[i].Addr < res.Diags[j].Addr
		}
		return res.Diags[i].Code < res.Diags[j].Code
	})
	return res, nil
}

type diagKey struct {
	code string
	idx  int
}

// report files a diagnostic for the instruction at index idx. Repeated
// reports at the same (code, instruction) pair collapse into the first
// diagnostic, bumping its occurrence count.
func (c *checker) report(code string, sev Severity, idx int, format string, args ...any) {
	c.reportRegion(code, sev, idx, 0, 0, format, args...)
}

// reportRegion is report with a vulnerable-interval annotation, used by the
// crash-consistency findings.
func (c *checker) reportRegion(code string, sev Severity, idx int, regionStart, regionEnd uint32, format string, args ...any) {
	if c.disabled[code] {
		return
	}
	if len(c.only) > 0 && !c.only[code] {
		return
	}
	if sev == Info && !c.opts.Info {
		return
	}
	k := diagKey{code, idx}
	if j := c.seen[k]; j > 0 {
		c.diags[j-1].Count++
		return
	}
	d := Diagnostic{
		Code:        code,
		Severity:    sev,
		Index:       idx,
		Addr:        mem.CodeBase + uint32(idx*isa.InstBytes),
		Msg:         fmt.Sprintf(format, args...),
		Count:       1,
		RegionStart: regionStart,
		RegionEnd:   regionEnd,
	}
	if idx < len(c.prog.Lines) {
		d.Line = c.prog.Lines[idx]
	}
	if idx < len(c.prog.Source) {
		d.Source = c.prog.Source[idx]
	}
	c.diags = append(c.diags, d)
	c.seen[k] = len(c.diags)
}
