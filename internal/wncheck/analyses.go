package wncheck

import (
	"whatsnext/internal/isa"
)

// usesOf returns the registers an instruction reads.
func usesOf(in isa.Instruction) []isa.Reg {
	op := in.Op
	switch {
	case op == isa.OpNop || op == isa.OpHalt || op == isa.OpSkm ||
		op == isa.OpMovI || op == isa.OpBl ||
		(op.IsBranch() && op != isa.OpBx):
		return nil
	case op == isa.OpBx:
		return []isa.Reg{in.Rm}
	case op == isa.OpMov:
		return []isa.Reg{in.Rm}
	case op == isa.OpMovTI:
		return []isa.Reg{in.Rd}
	case op == isa.OpCmp:
		return []isa.Reg{in.Rn, in.Rm}
	case op == isa.OpCmpI:
		return []isa.Reg{in.Rn}
	case op.ASPBits() > 0 || op.ASVLane() > 0:
		// Anytime instructions read and write Rd.
		return []isa.Reg{in.Rd, in.Rm}
	case op.IsLoad():
		if op.HasRm() {
			return []isa.Reg{in.Rn, in.Rm}
		}
		return []isa.Reg{in.Rn}
	case op.IsStore():
		if op.HasRm() {
			return []isa.Reg{in.Rd, in.Rn, in.Rm}
		}
		return []isa.Reg{in.Rd, in.Rn}
	case op.HasRm():
		return []isa.Reg{in.Rn, in.Rm}
	default: // immediate-form ALU, SUBIS
		return []isa.Reg{in.Rn}
	}
}

// defOf returns the register an instruction writes, if any.
func defOf(in isa.Instruction) (isa.Reg, bool) {
	op := in.Op
	switch {
	case op == isa.OpNop || op == isa.OpHalt || op == isa.OpSkm ||
		op == isa.OpCmp || op == isa.OpCmpI || op.IsStore() ||
		op == isa.OpBx || (op.IsBranch() && op != isa.OpBl):
		return 0, false
	case op == isa.OpBl:
		return isa.LR, true
	default:
		return in.Rd, true
	}
}

type regSet uint16

func (s regSet) has(r isa.Reg) bool { return s&(1<<r) != 0 }
func (s *regSet) add(r isa.Reg)     { *s |= 1 << r }
func (s *regSet) remove(r isa.Reg)  { *s &^= 1 << r }

const allRegs regSet = 0xFFFF

// runLiveness computes backward may-liveness over the CFG and reports
// register writes whose value can never be read (WN901, info).
func (c *checker) runLiveness() {
	// Liveness only feeds info diagnostics; skip the pass when info
	// output is off.
	if len(c.blocks) == 0 || !c.opts.Info {
		return
	}
	c.ensureLiveness()

	for _, b := range c.blocks {
		if !b.reachable {
			continue
		}
		live := c.liveOut[b.id]
		// Walk backwards, checking each definition against the liveness
		// just after it.
		type defSite struct {
			idx int
			reg isa.Reg
		}
		var dead []defSite
		for i := b.end - 1; i >= b.start; i-- {
			ins := c.ins[i]
			if !ins.ok {
				continue
			}
			if ins.in.Op == isa.OpBx {
				live = allRegs
			}
			if d, ok := defOf(ins.in); ok {
				if !live.has(d) && d != isa.PC {
					dead = append(dead, defSite{i, d})
				}
				live.remove(d)
			}
			for _, u := range usesOf(ins.in) {
				live.add(u)
			}
		}
		for j := len(dead) - 1; j >= 0; j-- {
			c.report(CodeDeadWrite, Info, dead[j].idx,
				"value written to %s is never read", dead[j].reg)
		}
	}
}

// defSet is a reaching-definitions set for one register: the instruction
// indexes of definitions that may reach a point. Index -1 stands for the
// boot value (no explicit definition).
type defSet map[int]bool

type reachState struct {
	regs  [isa.NumRegs]defSet
	valid bool
}

func (s *reachState) clone() reachState {
	out := reachState{valid: s.valid}
	for r, ds := range s.regs {
		out.regs[r] = make(defSet, len(ds))
		for k := range ds {
			out.regs[r][k] = true
		}
	}
	return out
}

func (s *reachState) merge(o *reachState) bool {
	if !o.valid {
		return false
	}
	if !s.valid {
		*s = o.clone()
		return true
	}
	changed := false
	for r := range s.regs {
		for k := range o.regs[r] {
			if !s.regs[r][k] {
				s.regs[r][k] = true
				changed = true
			}
		}
	}
	return changed
}

// runReaching computes reaching definitions and reports register reads
// whose reaching definitions include the boot value — code depending on
// registers it never wrote (WN902, info).
func (c *checker) runReaching() {
	if len(c.blocks) == 0 || !c.opts.Info {
		return
	}
	states := make([]reachState, len(c.blocks))
	entry := reachState{valid: true}
	for r := range entry.regs {
		entry.regs[r] = defSet{-1: true}
	}
	// SP is established by the boot sequence; treat it as defined.
	entry.regs[isa.SP] = defSet{-2: true}
	states[0] = entry

	step := func(s *reachState, i int, check bool) {
		ins := c.ins[i]
		if !ins.ok {
			return
		}
		if check {
			for _, u := range usesOf(ins.in) {
				if s.regs[u][-1] {
					c.report(CodeUninitRead, Info, i,
						"%s may be read before it is written (it holds the boot value 0)", u)
				}
			}
		}
		if ins.in.Op == isa.OpBl {
			// The callee may define anything.
			for r := range s.regs {
				s.regs[r] = defSet{i: true}
			}
			return
		}
		if d, ok := defOf(ins.in); ok {
			s.regs[d] = defSet{i: true}
		}
	}

	work := []int{0}
	inWork := make([]bool, len(c.blocks))
	inWork[0] = true
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		b := c.blocks[id]
		s := states[id].clone()
		for i := b.start; i < b.end; i++ {
			step(&s, i, false)
		}
		for _, succ := range b.succs {
			if states[succ].merge(&s) && !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	for _, b := range c.blocks {
		if !b.reachable || !states[b.id].valid {
			continue
		}
		s := states[b.id].clone()
		for i := b.start; i < b.end; i++ {
			step(&s, i, true)
		}
	}
}
