package wncheck_test

import (
	"strings"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/wncheck"
)

func checkSrc(t *testing.T, src string, opts wncheck.Options) []wncheck.Diagnostic {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := wncheck.Check(p, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return res.Diags
}

func withCode(diags []wncheck.Diagnostic, code string) []wncheck.Diagnostic {
	var out []wncheck.Diagnostic
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

const srcVolatileCross = `
	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	MOVI R1, #0
	MOVTI R1, #8192      ; R1 = SRAM base
	LDR R2, [R0, #0]
	STR R2, [R1, #0]     ; stage the value in volatile SRAM
	LDR R3, [R1, #0]     ; WN103: a power failure in between wipes the word
	STR R3, [R0, #4]
	HALT
`

func TestCrashVolatileCross(t *testing.T) {
	diags := checkSrc(t, srcVolatileCross, wncheck.Options{Crash: true})
	got := withCode(diags, wncheck.CodeVolatileCross)
	if len(got) != 1 {
		t.Fatalf("want 1 WN103, got %d: %v", len(got), diags)
	}
	d := got[0]
	if d.Severity != wncheck.Error {
		t.Errorf("WN103 severity = %v, want Error", d.Severity)
	}
	// Store at instruction 5 (0x14), load at instruction 6 (0x18).
	if d.RegionStart != 0x14 || d.RegionEnd != 0x18 {
		t.Errorf("WN103 region = %#x..%#x, want 0x14..0x18", d.RegionStart, d.RegionEnd)
	}
	if d.Addr != d.RegionEnd {
		t.Errorf("WN103 reported at %#x, want the load site %#x", d.Addr, d.RegionEnd)
	}
}

func TestCrashOffByDefault(t *testing.T) {
	for _, src := range []string{srcVolatileCross, srcSkimStaleReg} {
		diags := checkSrc(t, src, wncheck.Options{})
		if n := len(withCode(diags, wncheck.CodeVolatileCross)); n != 0 {
			t.Errorf("WN103 reported with Crash off: %v", diags)
		}
		if n := len(withCode(diags, wncheck.CodeSkimStaleReg)); n != 0 {
			t.Errorf("WN104 reported with Crash off: %v", diags)
		}
	}
}

// A skim point commits anytime results to non-volatile memory; it does not
// persist SRAM, so a volatile crossing spanning a SKM is still a hazard.
func TestCrashSkimDoesNotCommitSRAM(t *testing.T) {
	const src = `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R1, #0
	MOVTI R1, #8192
	LDR R2, [R0, #0]
	STR R2, [R1, #0]
	SKM end
	LDR R3, [R1, #0]     ; WN103: the SKM in between is no commit for SRAM
	STR R3, [R0, #4]
end:
	HALT
`
	diags := checkSrc(t, src, wncheck.Options{Crash: true})
	if n := len(withCode(diags, wncheck.CodeVolatileCross)); n != 1 {
		t.Fatalf("want 1 WN103 across the SKM, got %d: %v", n, diags)
	}
}

const srcSkimStaleReg = `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	.amenable
	ADDI R1, R1, #5
	SKM commit
	ADDI R1, R1, #1      ; mutates R1 while the skim is armed
commit:
	STR R1, [R0, #4]     ; R1 is live at the skim-resume target
	HALT
`

func TestCrashSkimStaleReg(t *testing.T) {
	diags := checkSrc(t, srcSkimStaleReg, wncheck.Options{Crash: true})
	got := withCode(diags, wncheck.CodeSkimStaleReg)
	if len(got) != 1 {
		t.Fatalf("want 1 WN104, got %d: %v", len(got), diags)
	}
	d := got[0]
	if d.Severity != wncheck.Error {
		t.Errorf("WN104 severity = %v, want Error", d.Severity)
	}
	if !strings.Contains(d.Msg, "R1") {
		t.Errorf("WN104 should name R1: %q", d.Msg)
	}
	if strings.Contains(d.Msg, "R0") {
		t.Errorf("R0 is live but never written while armed; msg = %q", d.Msg)
	}
	// SKM at instruction 4 (0x10), target at instruction 6 (0x18).
	if d.RegionStart != 0x10 || d.RegionEnd != 0x18 {
		t.Errorf("WN104 region = %#x..%#x, want 0x10..0x18", d.RegionStart, d.RegionEnd)
	}
}

// The compiled-code idiom: the skim target consumes nothing that the armed
// interval writes, so the resume path is clean.
func TestCrashSkimCleanResume(t *testing.T) {
	const src = `
	MOVI R0, #0
	MOVTI R0, #4096
	LDR R1, [R0, #0]
	.amenable
	ADDI R1, R1, #5
	SKM commit
commit:
	STR R1, [R0, #4]
	HALT
`
	diags := checkSrc(t, src, wncheck.Options{Crash: true})
	if n := len(withCode(diags, wncheck.CodeSkimStaleReg)); n != 0 {
		t.Fatalf("unexpected WN104: %v", diags)
	}
	if n := len(withCode(diags, wncheck.CodeVolatileCross)); n != 0 {
		t.Fatalf("unexpected WN103: %v", diags)
	}
}

// Repeated findings at the same (code, instruction) collapse into one
// diagnostic carrying an occurrence count.
func TestDiagnosticOccurrenceCount(t *testing.T) {
	const src = `
	ADD R1, R0, R0
	HALT
`
	diags := checkSrc(t, src, wncheck.Options{Info: true})
	got := withCode(diags, wncheck.CodeUninitRead)
	if len(got) != 1 {
		t.Fatalf("want 1 collapsed WN902, got %d: %v", len(got), diags)
	}
	if got[0].Count != 2 {
		t.Errorf("Count = %d, want 2 (R0 read twice)", got[0].Count)
	}
	if !strings.Contains(got[0].String(), "(2 occurrences)") {
		t.Errorf("String() should render the count: %q", got[0].String())
	}
}
