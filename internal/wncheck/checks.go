package wncheck

import (
	"fmt"

	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
)

func lineRef(line int) string {
	if line <= 0 {
		return ""
	}
	return fmt.Sprintf("line %d", line)
}

func addrRef(addr uint32) string { return fmt.Sprintf("%#08x", addr) }

// siteRef names an instruction by source line when a line table exists,
// falling back to its address.
func (c *checker) siteRef(idx int) string {
	if idx < len(c.prog.Lines) {
		if r := lineRef(c.prog.Lines[idx]); r != "" {
			return r
		}
	}
	return addrRef(mem.CodeBase + uint32(idx*isa.InstBytes))
}

// checkInstr runs the per-instruction rules that need the abstract state at
// the instruction. Called only for reachable, decodable instructions.
func (c *checker) checkInstr(s *dfState, idx int) {
	in := c.ins[idx].in
	op := in.Op

	// WN301: MUL_ASP position must keep the shifted product inside the
	// 32-bit result.
	if bits := op.ASPBits(); bits > 0 {
		if uint(in.Imm)*bits >= 32 {
			c.report(CodeASPPosition, Error, idx,
				"%s position %d shifts the product by %d bits; subword position must satisfy bits*pos < 32",
				op.Name(), in.Imm, uint(in.Imm)*bits)
		}
	}

	// WN304: anytime instructions manipulate data values; SP, LR and PC
	// are not valid operands.
	if op.ASPBits() > 0 || op.ASVLane() > 0 {
		for _, r := range [...]isa.Reg{in.Rd, in.Rm} {
			if r >= isa.SP {
				c.report(CodeAnytimeReg, Error, idx,
					"anytime instruction %s operates on %s; ASP/ASV operands must be general-purpose registers", op.Name(), r)
				break
			}
		}
	}

	// WN402: branch targets must land on an instruction inside the image.
	if op.IsBranch() && op != isa.OpBx {
		target := c.ins[idx].addr + uint32(in.Imm)
		switch {
		case target%isa.InstBytes != 0:
			c.report(CodeBranchRange, Error, idx,
				"branch target %#08x is not instruction-aligned", target)
		case c.branchTargetIndex(idx) < 0:
			c.report(CodeBranchRange, Error, idx,
				"branch target %#08x is outside the program image (%d instructions)", target, len(c.ins))
		}
	}

	// WN213: skim targets are absolute; they must name an instruction in
	// the image and lie past the SKM that arms them (skim points commit
	// forward progress, they never rewind it).
	if op == isa.OpSkm {
		target := uint32(in.Imm)
		imgEnd := mem.CodeBase + uint32(len(c.ins)*isa.InstBytes)
		switch {
		case target%isa.InstBytes != 0:
			c.report(CodeSkimTarget, Error, idx,
				"skim target %#08x is not instruction-aligned", target)
		case target < mem.CodeBase || target >= imgEnd:
			c.report(CodeSkimTarget, Error, idx,
				"skim target %#08x is outside the program image", target)
		case target <= c.ins[idx].addr:
			c.report(CodeSkimTarget, Error, idx,
				"skim target %#08x does not advance past the skim point at %#08x", target, c.ins[idx].addr)
		}
	}

	// Memory bounds and alignment at statically known addresses.
	if op.IsLoad() || op.IsStore() {
		addr, ok := s.effAddr(in)
		if !ok {
			return
		}
		size := accessSize(op)
		kind := "load"
		if op.IsStore() {
			kind = "store"
		}
		region, regionEnd := c.region(addr)
		switch {
		case region == "":
			c.report(CodeOOBAccess, Error, idx,
				"%d-byte %s at %#08x is outside every memory region", size, kind, addr)
			return
		case addr+uint32(size) > regionEnd:
			c.report(CodeOOBAccess, Error, idx,
				"%d-byte %s at %#08x runs past the end of the %s region", size, kind, addr, region)
			return
		}
		if size > 1 && addr%uint32(size) != 0 {
			c.report(CodeMisaligned, Error, idx,
				"%d-byte %s at %#08x is misaligned; subword-major planes and arrays are %d-byte aligned", size, kind, addr, size)
		}
		if op.IsStore() && region == "code" {
			c.report(CodeCodeWrite, Warning, idx,
				"store into instruction memory at %#08x", addr)
		}
	}
}

// region names the memory region containing addr and returns its end.
func (c *checker) region(addr uint32) (string, uint32) {
	cfg := c.opts.Mem
	switch {
	case addr >= mem.CodeBase && addr < mem.CodeBase+uint32(cfg.CodeBytes):
		return "code", mem.CodeBase + uint32(cfg.CodeBytes)
	case addr >= mem.DataBase && addr < mem.DataBase+uint32(cfg.DataBytes):
		return "data", mem.DataBase + uint32(cfg.DataBytes)
	case addr >= mem.SRAMBase && addr < mem.SRAMBase+uint32(cfg.SRAMBytes):
		return "sram", mem.SRAMBase + uint32(cfg.SRAMBytes)
	}
	return "", 0
}

// checkBlocks runs the whole-CFG rules: unreachable code, execution falling
// off the image, and the skim-placement checks.
func (c *checker) checkBlocks() {
	for _, b := range c.blocks {
		if !b.reachable {
			c.report(CodeUnreachable, Warning, b.start, "unreachable code")
			continue
		}
		if b.fallsOff {
			c.report(CodeMissingHalt, Error, b.end-1,
				"execution can run off the end of the program image (missing HALT or branch)")
		}
	}

	skimChecks := false
	switch c.opts.Skim {
	case SkimRequire:
		skimChecks = true
	case SkimAuto:
		skimChecks = c.hasSkim()
	}
	if !skimChecks {
		return
	}

	// WN211: every loop that performs anytime work must be covered by a
	// skim point — either one armed on every path into the loop, or one
	// reachable from the loop so the result can still be committed.
	for _, l := range c.loops {
		head := c.blocks[l.head]
		if !head.reachable {
			continue
		}
		amen := false
		for _, id := range l.blocks {
			b := c.blocks[id]
			for i := b.start; i < b.end; i++ {
				if c.ins[i].amen {
					amen = true
				}
			}
		}
		if !amen {
			continue
		}
		if c.inStates[l.head].valid && c.inStates[l.head].armed {
			continue
		}
		if c.reachesSkim(l.head) {
			continue
		}
		c.report(CodeSkimMissing, Error, head.start,
			"loop at %#08x contains anytime (amenable) instructions but no skim point is armed on entry or reachable from the loop", c.ins[head.start].addr)
	}

	// WN212: a skim point must be reachable from some amenable
	// instruction — otherwise there is no anytime result to commit.
	justified := c.skimJustified()
	for _, b := range c.blocks {
		for i := b.start; i < b.end; i++ {
			if c.ins[i].ok && c.ins[i].in.Op == isa.OpSkm && !justified[i] {
				c.report(CodeSkimOrphan, Warning, i,
					"skim point is not reachable from any amenable instruction; there is no anytime result to commit")
			}
		}
	}
}

// skimJustified marks every instruction index reachable from (strictly
// after) some amenable instruction.
func (c *checker) skimJustified() map[int]bool {
	after := map[int]bool{}    // instruction indexes executed after amenable work
	blockAll := map[int]bool{} // block ids fully after amenable work
	var stack []int
	for _, b := range c.blocks {
		for i := b.start; i < b.end; i++ {
			if !c.ins[i].amen {
				continue
			}
			// The rest of this block runs after the amenable instruction.
			for j := i; j < b.end; j++ {
				after[j] = true
			}
			stack = append(stack, b.succs...)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blockAll[id] {
			continue
		}
		blockAll[id] = true
		b := c.blocks[id]
		for i := b.start; i < b.end; i++ {
			after[i] = true
		}
		stack = append(stack, b.succs...)
	}
	return after
}
