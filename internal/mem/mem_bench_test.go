package mem

import "testing"

// BenchmarkClankTracking measures the tracked access path the Clank runtime
// drives: an epoch-stamped read and write per word plus the violation probe
// and the O(1) checkpoint clear.
func BenchmarkClankTracking(b *testing.B) {
	m := New(DefaultConfig())
	m.SetTracking(true)
	const words = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := uint32(0); w < words; w++ {
			addr := DataBase + 4*w
			if _, err := m.LoadWord(addr); err != nil {
				b.Fatal(err)
			}
			if m.WouldViolate(addr, 4) {
				m.ClearAccessSets()
			}
			if err := m.StoreWord(addr, w); err != nil {
				b.Fatal(err)
			}
		}
		m.ClearAccessSets()
	}
	b.ReportMetric(words, "tracked_words/op")
}
