package mem

import (
	"testing"
	"testing/quick"
)

func newMem(t *testing.T) *Memory {
	t.Helper()
	return New(DefaultConfig())
}

func TestWordEndianness(t *testing.T) {
	m := newMem(t)
	if err := m.StoreWord(DataBase, 0x11223344); err != nil {
		t.Fatal(err)
	}
	b0, _ := m.LoadByte(DataBase)
	b3, _ := m.LoadByte(DataBase + 3)
	if b0 != 0x44 || b3 != 0x11 {
		t.Fatalf("little-endian layout violated: %#x %#x", b0, b3)
	}
	h, _ := m.LoadHalf(DataBase + 2)
	if h != 0x1122 {
		t.Fatalf("half = %#x", h)
	}
}

func TestRoundTripAllWidths(t *testing.T) {
	m := newMem(t)
	f := func(off uint16, v uint32) bool {
		addr := DataBase + uint32(off)*4
		if err := m.StoreWord(addr, v); err != nil {
			return false
		}
		w, err := m.LoadWord(addr)
		return err == nil && w == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRegions(t *testing.T) {
	m := newMem(t)
	for _, addr := range []uint32{CodeBase, DataBase, SRAMBase} {
		if err := m.StoreWord(addr, 42); err != nil {
			t.Errorf("store at %#x: %v", addr, err)
		}
	}
	if err := m.StoreWord(0x5000_0000, 1); err == nil {
		t.Error("unmapped store must fail")
	}
	if _, err := m.LoadWord(0x5000_0000); err == nil {
		t.Error("unmapped load must fail")
	}
	cfg := m.Config()
	if err := m.StoreWord(DataBase+uint32(cfg.DataBytes), 1); err == nil {
		t.Error("store past region end must fail")
	}
	// Errors carry context.
	err := m.StoreWord(0x5000_0000, 1)
	if ae, ok := err.(*AccessError); !ok || !ae.Write || ae.Size != 4 {
		t.Errorf("error detail wrong: %v", err)
	}
}

func TestMisalignment(t *testing.T) {
	m := newMem(t)
	if _, err := m.LoadWord(DataBase + 2); err == nil {
		t.Error("misaligned word load must fail")
	}
	if _, err := m.LoadHalf(DataBase + 1); err == nil {
		t.Error("misaligned half load must fail")
	}
	if _, err := m.LoadByte(DataBase + 1); err != nil {
		t.Error("byte loads have no alignment requirement")
	}
}

func TestPowerLossSemantics(t *testing.T) {
	m := newMem(t)
	m.StoreWord(DataBase, 7)
	m.StoreWord(SRAMBase, 9)
	m.PowerLoss()
	d, _ := m.LoadWord(DataBase)
	s, _ := m.LoadWord(SRAMBase)
	if d != 7 {
		t.Error("non-volatile data must survive an outage")
	}
	if s != 0 {
		t.Error("volatile SRAM must clear on an outage")
	}
}

func TestIdempotencyTracking(t *testing.T) {
	m := newMem(t)
	m.SetTracking(true)

	// A write with no prior read is not a violation.
	if m.WouldViolate(DataBase, 4) {
		t.Fatal("unread address cannot violate")
	}
	m.StoreWord(DataBase, 1)

	// write-after-write-only: still fine.
	if m.WouldViolate(DataBase, 4) {
		t.Fatal("write-after-write without an intervening first-read is idempotent")
	}

	// Read a fresh address then write it: violation.
	m.LoadWord(DataBase + 8)
	if !m.WouldViolate(DataBase+8, 4) {
		t.Fatal("write-after-read must violate")
	}

	// Sub-word overlap counts: reading one byte taints the covering word.
	m.LoadByte(DataBase + 13)
	if !m.WouldViolate(DataBase+12, 4) {
		t.Fatal("byte read should taint the containing word")
	}

	// Clearing the sets (a checkpoint) resets the analysis.
	m.ClearAccessSets()
	if m.WouldViolate(DataBase+8, 4) {
		t.Fatal("checkpoint should clear the read set")
	}

	// SRAM accesses are never violations (volatile state is rolled back
	// wholesale by the checkpoint).
	m.LoadWord(SRAMBase)
	if m.WouldViolate(SRAMBase, 4) {
		t.Fatal("SRAM is not tracked")
	}

	// Disabled tracking reports nothing.
	m.SetTracking(false)
	m.LoadWord(DataBase + 16)
	if m.WouldViolate(DataBase+16, 4) {
		t.Fatal("tracking disabled")
	}
}

func TestReadAfterOwnWriteIsNotViolation(t *testing.T) {
	m := newMem(t)
	m.SetTracking(true)
	m.StoreWord(DataBase, 5)
	m.LoadWord(DataBase) // read of a value this interval wrote
	if m.WouldViolate(DataBase, 4) {
		t.Fatal("read-after-write then write is WAW, not a violation")
	}
}

func TestBulkDataTransfer(t *testing.T) {
	m := newMem(t)
	src := []byte{1, 2, 3, 4, 5}
	if err := m.WriteData(DataBase+16, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 5)
	if err := m.ReadData(DataBase+16, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("bulk round trip byte %d: %d != %d", i, dst[i], src[i])
		}
	}
	if err := m.WriteData(SRAMBase, src); err == nil {
		t.Error("bulk writes outside the data region must fail")
	}
	if err := m.ReadData(DataBase+uint32(m.Config().DataBytes)-2, dst); err == nil {
		t.Error("bulk read past the end must fail")
	}
}

func TestZeroData(t *testing.T) {
	m := newMem(t)
	m.StoreWord(DataBase+64, 99)
	m.ZeroData()
	v, _ := m.LoadWord(DataBase + 64)
	if v != 0 {
		t.Fatal("ZeroData should clear the data region")
	}
}

func TestProgramLoading(t *testing.T) {
	m := newMem(t)
	img := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	if err := m.LoadProgram(img); err != nil {
		t.Fatal(err)
	}
	w, err := m.FetchWord(CodeBase)
	if err != nil || w != 0xDDCCBBAA {
		t.Fatalf("fetch = %#x, %v", w, err)
	}
	big := make([]byte, m.Config().CodeBytes+4)
	if err := m.LoadProgram(big); err == nil {
		t.Error("oversized program must be rejected")
	}
}

func TestStats(t *testing.T) {
	m := newMem(t)
	m.LoadWord(DataBase)
	m.StoreWord(DataBase, 1)
	m.StoreWord(SRAMBase, 1)
	if m.Reads != 1 || m.Writes != 2 || m.NVWrites != 1 {
		t.Fatalf("stats = %d reads, %d writes, %d nv", m.Reads, m.Writes, m.NVWrites)
	}
	m.ResetStats()
	if m.Reads != 0 || m.Writes != 0 || m.NVWrites != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestAccessErrorMessage(t *testing.T) {
	e := &AccessError{Addr: 0x123, Size: 4, Write: true, Msg: "unmapped"}
	if e.Error() == "" || e.Error() == "unmapped" {
		t.Fatal("error message should be descriptive")
	}
}

// TestEpochRollover drives the epoch counter through its 2^32 wraparound.
// Stale stamps issued before the rollover must not alias freshly issued
// epochs — ClearAccessSets scrubs both shadow arrays and restarts at 1.
func TestEpochRollover(t *testing.T) {
	m := newMem(t)
	m.SetTracking(true)

	// Stamp a read in epoch 1 (the post-New epoch): without the rollover
	// scrub this word's stamp would alias the post-rollover epoch 1.
	if _, err := m.LoadWord(DataBase); err != nil {
		t.Fatal(err)
	}
	if !m.WouldViolate(DataBase, 4) {
		t.Fatal("read-first word must register before rollover")
	}

	// Fast-forward to the last epoch and stamp a second word there.
	m.epoch = ^uint32(0)
	if _, err := m.LoadWord(DataBase + 4); err != nil {
		t.Fatal(err)
	}
	if !m.WouldViolate(DataBase+4, 4) {
		t.Fatal("read-first word must register in the final epoch")
	}

	m.ClearAccessSets()
	if m.epoch != 1 {
		t.Fatalf("epoch after rollover = %d, want 1", m.epoch)
	}
	if m.WouldViolate(DataBase, 4) {
		t.Error("stale epoch-1 stamp from before the rollover aliased the new epoch 1")
	}
	if m.WouldViolate(DataBase+4, 4) {
		t.Error("final-epoch stamp survived the rollover scrub")
	}

	// Tracking still works after the wrap.
	if _, err := m.LoadWord(DataBase + 8); err != nil {
		t.Fatal(err)
	}
	if !m.WouldViolate(DataBase+8, 4) {
		t.Error("tracking must keep working after the rollover")
	}
}

// TestPowerLossKeepsAccessSets pins the Clank filter semantics: the shadow
// arrays are non-volatile, so an outage does not clear the tracked sets —
// only an explicit ClearAccessSets (the checkpoint/restore boundary) does.
func TestPowerLossKeepsAccessSets(t *testing.T) {
	m := newMem(t)
	m.SetTracking(true)

	if _, err := m.LoadWord(DataBase); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(SRAMBase, 9); err != nil {
		t.Fatal(err)
	}

	m.PowerLoss()
	if s, _ := m.LoadWord(SRAMBase); s != 0 {
		t.Error("volatile SRAM must clear on an outage")
	}
	if !m.WouldViolate(DataBase, 4) {
		t.Error("the read-first set must survive a power loss")
	}

	// The runtime clears the sets at restore; only then is the word safe to
	// overwrite without forcing a checkpoint.
	m.ClearAccessSets()
	if m.WouldViolate(DataBase, 4) {
		t.Error("ClearAccessSets at restore must empty the read-first set")
	}
}
