// Package mem models the memory system of a WN-class energy-harvesting
// device: a non-volatile code region (flash/FRAM), a non-volatile data
// region (FRAM), and a volatile SRAM region.
//
// The memory tracks, per checkpoint interval, the set of addresses read and
// written. The Clank-style runtime uses this to detect idempotency
// violations (a write to non-volatile memory at an address previously read
// since the last checkpoint), which force a checkpoint before the write may
// proceed so that re-execution after a power outage observes consistent
// state.
package mem

import "fmt"

// Region boundaries. Addresses are 32-bit; each region is sized at
// construction time.
const (
	CodeBase = 0x0000_0000 // non-volatile instruction memory
	DataBase = 0x1000_0000 // non-volatile FRAM data
	SRAMBase = 0x2000_0000 // volatile SRAM (stack, scratch)
)

// AccessError reports an out-of-range or misaligned access.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
	Msg   string
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: invalid %d-byte %s at %#08x: %s", e.Size, kind, e.Addr, e.Msg)
}

// Config sizes the memory regions.
type Config struct {
	CodeBytes int // non-volatile instruction memory
	DataBytes int // non-volatile FRAM data memory
	SRAMBytes int // volatile SRAM
}

// DefaultConfig returns region sizes comfortable for every Table I benchmark
// at paper scale (a 128x128 16-bit image plus 32-bit accumulator planes).
func DefaultConfig() Config {
	return Config{
		CodeBytes: 64 << 10,
		DataBytes: 512 << 10,
		SRAMBytes: 16 << 10,
	}
}

// Memory is the device memory. It is not safe for concurrent use; each
// simulated device owns one Memory.
type Memory struct {
	cfg  Config
	code []byte
	data []byte
	sram []byte

	// Idempotency tracking for the Clank-style runtime. Keys are
	// word-aligned non-volatile data addresses.
	trackAccess bool
	readFirst   map[uint32]struct{} // read before any write since last checkpoint
	written     map[uint32]struct{}

	// Access statistics (since construction or ResetStats).
	Reads    uint64
	Writes   uint64
	NVWrites uint64
}

// New builds a Memory with the given region sizes.
func New(cfg Config) *Memory {
	return &Memory{
		cfg:       cfg,
		code:      make([]byte, cfg.CodeBytes),
		data:      make([]byte, cfg.DataBytes),
		sram:      make([]byte, cfg.SRAMBytes),
		readFirst: make(map[uint32]struct{}),
		written:   make(map[uint32]struct{}),
	}
}

// Config returns the sizes the memory was built with.
func (m *Memory) Config() Config { return m.cfg }

// SetTracking enables or disables read/write-set tracking. The Clank runtime
// enables it; the NVP runtime leaves it off.
func (m *Memory) SetTracking(on bool) { m.trackAccess = on }

// ClearAccessSets empties the tracked read/write sets. Called at every
// checkpoint boundary.
func (m *Memory) ClearAccessSets() {
	clear(m.readFirst)
	clear(m.written)
}

// WouldViolate reports whether a store of size bytes at addr would be an
// idempotency violation: a write to non-volatile data that was read (before
// being written) since the last checkpoint. Re-executing the interval after
// an outage would then read the new value instead of the original one.
func (m *Memory) WouldViolate(addr uint32, size int) bool {
	if !m.trackAccess || !inRegion(addr, DataBase, len(m.data)) {
		return false
	}
	for _, wa := range coveredWords(addr, size) {
		if _, ok := m.readFirst[wa]; ok {
			return true
		}
	}
	return false
}

func (m *Memory) noteRead(addr uint32, size int) {
	m.Reads++
	if !m.trackAccess || !inRegion(addr, DataBase, len(m.data)) {
		return
	}
	for _, wa := range coveredWords(addr, size) {
		if _, written := m.written[wa]; !written {
			m.readFirst[wa] = struct{}{}
		}
	}
}

func (m *Memory) noteWrite(addr uint32, size int) {
	m.Writes++
	if inRegion(addr, DataBase, len(m.data)) {
		m.NVWrites++
	}
	if !m.trackAccess || !inRegion(addr, DataBase, len(m.data)) {
		return
	}
	for _, wa := range coveredWords(addr, size) {
		m.written[wa] = struct{}{}
	}
}

// coveredWords lists the word-aligned addresses a size-byte access touches.
func coveredWords(addr uint32, size int) [2]uint32 {
	first := addr &^ 3
	last := (addr + uint32(size) - 1) &^ 3
	return [2]uint32{first, last} // equal entries when within one word
}

func inRegion(addr uint32, base uint32, size int) bool {
	return addr >= base && addr < base+uint32(size)
}

// backing returns the byte slice and offset for an access, or an error.
func (m *Memory) backing(addr uint32, size int, write bool) ([]byte, uint32, error) {
	var region []byte
	var base uint32
	switch {
	case inRegion(addr, CodeBase, len(m.code)):
		region, base = m.code, CodeBase
	case inRegion(addr, DataBase, len(m.data)):
		region, base = m.data, DataBase
	case inRegion(addr, SRAMBase, len(m.sram)):
		region, base = m.sram, SRAMBase
	default:
		return nil, 0, &AccessError{Addr: addr, Size: size, Write: write, Msg: "unmapped"}
	}
	off := addr - base
	if int(off)+size > len(region) {
		return nil, 0, &AccessError{Addr: addr, Size: size, Write: write, Msg: "past end of region"}
	}
	if uint32(size) > 1 && addr%uint32(size) != 0 {
		return nil, 0, &AccessError{Addr: addr, Size: size, Write: write, Msg: "misaligned"}
	}
	return region, off, nil
}

// LoadWord reads a 32-bit little-endian word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 4, false)
	if err != nil {
		return 0, err
	}
	m.noteRead(addr, 4)
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24, nil
}

// LoadHalf reads a 16-bit little-endian halfword (zero-extended).
func (m *Memory) LoadHalf(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 2, false)
	if err != nil {
		return 0, err
	}
	m.noteRead(addr, 2)
	return uint32(b[off]) | uint32(b[off+1])<<8, nil
}

// LoadByte reads one byte (zero-extended).
func (m *Memory) LoadByte(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 1, false)
	if err != nil {
		return 0, err
	}
	m.noteRead(addr, 1)
	return uint32(b[off]), nil
}

// StoreWord writes a 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	b, off, err := m.backing(addr, 4, true)
	if err != nil {
		return err
	}
	m.noteWrite(addr, 4)
	b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// StoreHalf writes a 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint32) error {
	b, off, err := m.backing(addr, 2, true)
	if err != nil {
		return err
	}
	m.noteWrite(addr, 2)
	b[off], b[off+1] = byte(v), byte(v>>8)
	return nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v uint32) error {
	b, off, err := m.backing(addr, 1, true)
	if err != nil {
		return err
	}
	m.noteWrite(addr, 1)
	b[off] = byte(v)
	return nil
}

// FetchWord reads an instruction word without touching access statistics or
// tracking (instruction fetch is from non-volatile code memory).
func (m *Memory) FetchWord(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 4, false)
	if err != nil {
		return 0, err
	}
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24, nil
}

// LoadProgram copies an encoded program image into code memory at CodeBase.
func (m *Memory) LoadProgram(image []byte) error {
	if len(image) > len(m.code) {
		return fmt.Errorf("mem: program image (%d bytes) exceeds code memory (%d bytes)", len(image), len(m.code))
	}
	clear(m.code)
	copy(m.code, image)
	return nil
}

// WriteData bulk-copies bytes into the non-volatile data region at addr,
// bypassing tracking. Used by harnesses to install benchmark inputs.
func (m *Memory) WriteData(addr uint32, b []byte) error {
	if !inRegion(addr, DataBase, len(m.data)) || int(addr-DataBase)+len(b) > len(m.data) {
		return &AccessError{Addr: addr, Size: len(b), Write: true, Msg: "bulk write out of data region"}
	}
	copy(m.data[addr-DataBase:], b)
	return nil
}

// ReadData bulk-copies len(b) bytes out of the non-volatile data region,
// bypassing tracking. Used by harnesses to extract benchmark outputs.
func (m *Memory) ReadData(addr uint32, b []byte) error {
	if !inRegion(addr, DataBase, len(m.data)) || int(addr-DataBase)+len(b) > len(m.data) {
		return &AccessError{Addr: addr, Size: len(b), Msg: "bulk read out of data region"}
	}
	copy(b, m.data[addr-DataBase:])
	return nil
}

// PowerLoss models a power outage: volatile SRAM contents are destroyed.
// Non-volatile code and data regions persist.
func (m *Memory) PowerLoss() {
	clear(m.sram)
}

// ZeroData clears the whole non-volatile data region. Harnesses call it
// between benchmark invocations.
func (m *Memory) ZeroData() {
	clear(m.data)
}

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() {
	m.Reads, m.Writes, m.NVWrites = 0, 0, 0
}
